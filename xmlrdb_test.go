package xmlrdb

import (
	"strings"
	"testing"

	"xmlrdb/internal/paper"
)

func open(t *testing.T, cfg Config) *Pipeline {
	t.Helper()
	p, err := Open(paper.Example1DTD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEndToEnd(t *testing.T) {
	p := open(t, Config{})
	id, err := p.LoadXML(paper.BookXML, "book1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := p.Query("/book/author")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Errorf("authors = %v", rows.Data)
	}
	xml, err := p.Reconstruct(id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "<booktitle>XML RDBMS</booktitle>") {
		t.Errorf("reconstructed:\n%s", xml)
	}
	if !strings.Contains(p.ConvertedDTD(), "NESTED_GROUP NG1 book") {
		t.Error("converted DTD missing NG1")
	}
	if !strings.Contains(p.ERInventory(), "entity author { id* }") {
		t.Errorf("inventory:\n%s", p.ERInventory())
	}
	if !strings.Contains(p.DDL(), "CREATE TABLE e_book") {
		t.Error("DDL missing e_book")
	}
	if !strings.Contains(p.ERDot(), "graph ER") {
		t.Error("DOT output missing")
	}
}

func TestSQLSurface(t *testing.T) {
	p := open(t, Config{})
	if _, err := p.LoadXML(paper.ArticleXML, "a"); err != nil {
		t.Fatal(err)
	}
	rows, err := p.SQL(`SELECT COUNT(*) FROM e_author`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != int64(3) {
		t.Errorf("authors = %v", rows.Data)
	}
	// Metadata tables are queryable.
	rows, err = p.SQL(`SELECT model_text FROM meta_elements WHERE name = 'article'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Errorf("meta = %v", rows.Data)
	}
}

func TestValidateSurface(t *testing.T) {
	p := open(t, Config{})
	viols, err := p.Validate(`<book><booktitle>X</booktitle><editor name="e"/></book>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Errorf("valid doc flagged: %v", viols)
	}
	viols, err = p.Validate(`<book><editor name="e"/></book>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) == 0 {
		t.Error("missing booktitle not flagged")
	}
}

func TestVerifyRoundTripSurface(t *testing.T) {
	for _, cfg := range []Config{{}, {Strategy: StrategyFoldFK}, {SkipDistill: true}} {
		p := open(t, cfg)
		for _, src := range []string{paper.BookXML, paper.ArticleXML, paper.EditorXML} {
			if err := p.VerifyRoundTrip(src, "rt"); err != nil {
				t.Errorf("cfg %+v: %v", cfg, err)
			}
		}
	}
}

func TestTranslatePath(t *testing.T) {
	p := open(t, Config{})
	sqls, err := p.TranslatePath("/book/booktitle/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(sqls) != 1 || !strings.Contains(sqls[0], "a_booktitle") {
		t.Errorf("sqls = %v", sqls)
	}
}

func TestStatsAndDocIDs(t *testing.T) {
	p := open(t, Config{})
	if _, err := p.LoadXML(paper.BookXML, "b1"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadXML(paper.ArticleXML, "a1"); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Tables == 0 || st.Rows == 0 || st.Bytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	ids, err := p.DocumentIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Errorf("ids = %v", ids)
	}
}

func TestAnalyzeVectorizesPathQuery(t *testing.T) {
	p := open(t, Config{})
	if _, err := p.LoadXML(paper.BookXML, "b1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	if ds := p.DictStats("e_book"); len(ds) == 0 {
		t.Error("no dictionary columns on e_book after Analyze")
	}
	// A single-table path query (descendant step, so no x_docs anchor
	// join) plans as a vectorized pipeline and the EXPLAIN report says so.
	out, err := p.ExplainPath("//book/booktitle/text()")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "VecPipeline") || !strings.Contains(out, "[vec") {
		t.Errorf("explain lacks vectorized pipeline:\n%s", out)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("not a dtd", Config{}); err == nil {
		t.Error("bad DTD should fail")
	}
}

func TestLoadValidXML(t *testing.T) {
	p := open(t, Config{})
	if _, err := p.LoadValidXML(paper.BookXML, "ok"); err != nil {
		t.Fatal(err)
	}
	_, err := p.LoadValidXML(`<book><editor name="e"/></book>`, "bad")
	if err == nil || !strings.Contains(err.Error(), "invalid") {
		t.Errorf("err = %v", err)
	}
	// Nothing from the invalid document was stored.
	rows, err := p.SQL(`SELECT COUNT(*) FROM e_book`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0] != int64(1) {
		t.Errorf("books = %v", rows.Data[0][0])
	}
}
