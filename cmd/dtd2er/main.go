// Command dtd2er runs the paper's Figure-1 algorithm on a DTD and
// prints the converted DTD (Example 2 notation), the ER diagram
// (inventory or Graphviz DOT), and the derived relational DDL.
//
// Usage:
//
//	dtd2er [-out converted|er|dot|ddl|all] [-strategy junction|fold]
//	       [-skip-distill] [file.dtd]
//
// With no file argument the DTD is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xmlrdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dtd2er:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("dtd2er", flag.ContinueOnError)
	out := fs.String("out", "all", "what to print: converted, er, dot, ddl, or all")
	strategy := fs.String("strategy", "junction", "relational strategy: junction or fold")
	skipDistill := fs.Bool("skip-distill", false, "disable mapping step 2 (attribute distilling)")
	stats := fs.Bool("stats", false, "print the pipeline metrics report (schema-build timing) after the output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	text, err := readInput(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg := xmlrdb.Config{SkipDistill: *skipDistill}
	switch *strategy {
	case "junction":
		cfg.Strategy = xmlrdb.StrategyJunction
	case "fold":
		cfg.Strategy = xmlrdb.StrategyFoldFK
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	p, err := xmlrdb.Open(text, cfg)
	if err != nil {
		return err
	}
	section := func(title, body string) {
		if *out == "all" {
			fmt.Fprintf(w, "---- %s ----\n", title)
		}
		fmt.Fprint(w, body)
		if *out == "all" {
			fmt.Fprintln(w)
		}
	}
	switch *out {
	case "converted":
		section("", p.ConvertedDTD())
	case "er":
		section("", p.ERInventory())
	case "dot":
		section("", p.ERDot())
	case "ddl":
		section("", p.DDL())
	case "all":
		section("converted DTD (paper Example 2 notation)", p.ConvertedDTD())
		section("ER model (paper Figure 2)", p.ERInventory())
		section("relational schema", p.DDL())
	default:
		return fmt.Errorf("unknown -out %q", *out)
	}
	if *stats {
		fmt.Fprint(w, p.MetricsReport())
	}
	return nil
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", fmt.Errorf("reading stdin: %w", err)
		}
		return string(b), nil
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
