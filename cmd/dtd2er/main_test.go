package main

import (
	"strings"
	"testing"
)

func TestRunAllSections(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"../../testdata/bib.dtd"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"NESTED_GROUP NG1 book",
		"entity author { id* }",
		"CREATE TABLE e_book",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleOutputs(t *testing.T) {
	for _, mode := range []string{"converted", "er", "dot", "ddl"} {
		var out strings.Builder
		if err := run([]string{"-out", mode, "../../testdata/bib.dtd"}, &out); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s: empty output", mode)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-out", "bogus", "../../testdata/bib.dtd"}, &out); err == nil {
		t.Error("bad -out should fail")
	}
	if err := run([]string{"-strategy", "bogus", "../../testdata/bib.dtd"}, &out); err == nil {
		t.Error("bad -strategy should fail")
	}
	if err := run([]string{"/nonexistent.dtd"}, &out); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRunFoldAndSkipDistill(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-strategy", "fold", "-skip-distill", "-out", "ddl", "../../testdata/bib.dtd"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "e_booktitle") {
		t.Error("skip-distill should keep booktitle as a table")
	}
}
