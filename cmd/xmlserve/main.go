// Command xmlserve keeps a pipeline open and serves its store over
// HTTP: SQL (/query), path queries (/path, ?explain=1), document
// reconstruction (/doc/{id}), /healthz, /stats and the /debug
// endpoints. Query endpoints run under a per-request deadline behind a
// bounded-concurrency admission gate (saturation sheds with 429 +
// Retry-After). SIGINT/SIGTERM drains in-flight requests before the
// store closes.
//
// Usage:
//
//	xmlserve -dtd schema.dtd -addr :8080 doc1.xml [doc2.xml ...]
//	xmlserve -dtd schema.dtd -data-dir ./store -addr 127.0.0.1:8080
//	xmlserve -dtd schema.dtd -max-concurrent 16 -timeout-ms 2000 docs...
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xmlrdb"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xmlserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xmlserve", flag.ContinueOnError)
	dtdPath := fs.String("dtd", "", "DTD file (required)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	strategy := fs.String("strategy", "junction", "relational strategy: junction or fold")
	dataDir := fs.String("data-dir", "", "serve a durable store rooted here (recovers previous contents; documents on the command line load on top)")
	maxConc := fs.Int("max-concurrent", 8, "admission gate: concurrently executing query requests")
	timeoutMS := fs.Int("timeout-ms", 5000, "per-request execution deadline in milliseconds")
	planCache := fs.Int("plan-cache", 0, "plan cache capacity in entries (0 = default, negative disables)")
	drainMS := fs.Int("drain-ms", 10000, "graceful-shutdown drain budget in milliseconds")
	stats := fs.Bool("stats", false, "print the pipeline metrics report on shutdown")
	slowMS := fs.Int("slow-query-ms", 0, "slow-query threshold in milliseconds: slower statements hit the slow-query log and their request traces are always retained by the flight recorder (0 disables)")
	traceSample := fs.Int("trace-sample", 1, "request tracing: 1 traces every request, N>1 one in N, negative disables tracing")
	traceBuf := fs.Int("trace-buffer", 0, "flight-recorder capacity in traces (0 = default 64)")
	vacuumMS := fs.Int("vacuum-ms", 60000, "background vacuum interval in milliseconds: compacts the slots DELETE leaves behind (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dtdPath == "" {
		return fmt.Errorf("-dtd is required")
	}
	if *dataDir == "" && fs.NArg() == 0 {
		return fmt.Errorf("no documents given (load some, or point -data-dir at a durable store)")
	}
	dtdText, err := os.ReadFile(*dtdPath)
	if err != nil {
		return err
	}
	cfg := xmlrdb.Config{DataDir: *dataDir, PlanCacheSize: *planCache}
	if *strategy == "fold" {
		cfg.Strategy = xmlrdb.StrategyFoldFK
	}
	p, err := xmlrdb.Open(string(dtdText), cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	for _, path := range fs.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, err := p.LoadXML(string(b), path); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}

	if *vacuumMS > 0 {
		stopVacuum := p.DB.StartVacuum(time.Duration(*vacuumMS) * time.Millisecond)
		defer stopVacuum()
	}

	slow := time.Duration(*slowMS) * time.Millisecond
	if slow > 0 {
		p.SetSlowQueryThreshold(slow)
		p.SetTracer(obs.NewWriterTracer(os.Stderr))
	}
	srv := serve.New(p, serve.Options{
		MaxConcurrent:  *maxConc,
		RequestTimeout: time.Duration(*timeoutMS) * time.Millisecond,
		SlowQuery:      slow,
		TraceSample:    *traceSample,
		Recorder:       obs.NewRecorder(*traceBuf, slow),
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	st := p.Stats()
	fmt.Fprintf(out, "xmlserve: listening on %s (%d tables, %d rows)\n",
		ln.Addr(), st.Tables, st.Rows)

	// Serve until a signal arrives, then drain before the deferred Close.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(out, "xmlserve: %v, draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainMS)*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; err != nil && err != http.ErrServerClosed {
		return err
	}
	if *stats {
		fmt.Fprint(out, p.MetricsReport())
	}
	fmt.Fprintln(out, "xmlserve: drained, store closed")
	return nil
}
