package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{}, io.Discard); err == nil || !strings.Contains(err.Error(), "-dtd") {
		t.Errorf("missing -dtd: %v", err)
	}
	if err := run([]string{"-dtd", "x.dtd"}, io.Discard); err == nil || !strings.Contains(err.Error(), "documents") {
		t.Errorf("missing docs: %v", err)
	}
}

// syncBuffer is a bytes.Buffer safe for the concurrent writes run()
// makes from the serving goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeAndSignalShutdown boots the server on an ephemeral port,
// queries it, then delivers SIGTERM and expects a clean drain.
func TestServeAndSignalShutdown(t *testing.T) {
	dir := t.TempDir()
	dtdPath := filepath.Join(dir, "bib.dtd")
	xmlPath := filepath.Join(dir, "book.xml")
	dtd, err := os.ReadFile("../../testdata/bib.dtd")
	if err != nil {
		t.Fatal(err)
	}
	xml, err := os.ReadFile("../../testdata/book.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dtdPath, dtd, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(xmlPath, xml, 0o644); err != nil {
		t.Fatal(err)
	}

	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-dtd", dtdPath, "-addr", "127.0.0.1:0", "-stats", xmlPath}, &out)
	}()

	// Wait for the listening line and extract the bound address.
	addrRe := regexp.MustCompile(`listening on ([0-9.:]+)`)
	var addr string
	for i := 0; i < 100; i++ {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v\n%s", err, out.String())
		case <-time.After(50 * time.Millisecond):
		}
	}
	if addr == "" {
		t.Fatalf("no listening line:\n%s", out.String())
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/path?q=/book/booktitle/text()", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("path query = %d %s", resp.StatusCode, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("run did not drain after SIGTERM:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained, store closed") {
		t.Fatalf("missing drain confirmation:\n%s", out.String())
	}
}
