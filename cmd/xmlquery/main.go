// Command xmlquery loads documents under the ER mapping and runs path
// queries (translated to SQL) or raw SQL against the store.
//
// Usage:
//
//	xmlquery -dtd schema.dtd -q '/book/author[@id]' doc1.xml [doc2.xml ...]
//	xmlquery -dtd schema.dtd -sql 'SELECT COUNT(*) FROM e_author' docs...
//	xmlquery -dtd schema.dtd -q '/a/b' -explain docs...
//	xmlquery -dtd schema.dtd -sql 'SELECT * FROM e_author' -explain docs...
//	xmlquery -dtd schema.dtd -data-dir ./store -q '/book/author'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"xmlrdb"
	"xmlrdb/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xmlquery:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xmlquery", flag.ContinueOnError)
	dtdPath := fs.String("dtd", "", "DTD file (required)")
	pathQ := fs.String("q", "", "path query to run")
	sqlQ := fs.String("sql", "", "raw SQL to run instead of a path query")
	explain := fs.Bool("explain", false, "print plan stats, generated SQL and the executed physical plan instead of the rows")
	strategy := fs.String("strategy", "junction", "relational strategy: junction or fold")
	stats := fs.Bool("stats", false, "print the pipeline metrics report after the query")
	slowMS := fs.Int("slow-query-ms", 0, "log statements at or above this many milliseconds to stderr (0 disables)")
	dataDir := fs.String("data-dir", "", "query a durable store previously populated with xmlshred -data-dir (documents on the command line load on top)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dtdPath == "" {
		return fmt.Errorf("-dtd is required")
	}
	if *pathQ == "" && *sqlQ == "" {
		return fmt.Errorf("one of -q or -sql is required")
	}
	if *dataDir == "" && fs.NArg() == 0 {
		return fmt.Errorf("no documents given (load some, or point -data-dir at a durable store)")
	}
	dtdText, err := os.ReadFile(*dtdPath)
	if err != nil {
		return err
	}
	cfg := xmlrdb.Config{DataDir: *dataDir}
	if *strategy == "fold" {
		cfg.Strategy = xmlrdb.StrategyFoldFK
	}
	p, err := xmlrdb.Open(string(dtdText), cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	if *slowMS > 0 {
		p.SetTracer(obs.NewWriterTracer(os.Stderr))
		p.SetSlowQueryThreshold(time.Duration(*slowMS) * time.Millisecond)
	}
	for _, path := range fs.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, err := p.LoadXML(string(b), path); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	ctx := context.Background()
	if *explain {
		var report string
		if *pathQ != "" {
			report, err = p.ExplainPathContext(ctx, *pathQ)
		} else {
			report, err = p.ExplainSQL(ctx, *sqlQ)
		}
		if err != nil {
			return err
		}
		fmt.Fprint(out, report)
		if *stats {
			fmt.Fprint(out, p.MetricsReport())
		}
		return nil
	}
	var cur xmlrdb.Cursor
	if *pathQ != "" {
		cur, err = p.QueryCursor(ctx, *pathQ)
	} else {
		cur, err = p.SQLCursor(ctx, *sqlQ)
	}
	if err != nil {
		return err
	}
	defer cur.Close()
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	for i, c := range cur.Cols() {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
	n := 0
	for cur.Next() {
		for i, v := range cur.Row() {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			if v == nil {
				fmt.Fprint(w, "NULL")
			} else {
				fmt.Fprintf(w, "%v", v)
			}
		}
		fmt.Fprintln(w)
		n++
	}
	if err := cur.Err(); err != nil {
		return err
	}
	w.Flush()
	fmt.Fprintf(out, "(%d rows)\n", n)
	if *stats {
		fmt.Fprint(out, p.MetricsReport())
	}
	return nil
}
