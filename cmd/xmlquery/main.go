// Command xmlquery loads documents under the ER mapping and runs path
// queries (translated to SQL) or raw SQL against the store.
//
// Usage:
//
//	xmlquery -dtd schema.dtd -q '/book/author[@id]' doc1.xml [doc2.xml ...]
//	xmlquery -dtd schema.dtd -sql 'SELECT COUNT(*) FROM e_author' docs...
//	xmlquery -dtd schema.dtd -q '/a/b' -explain docs...
//	xmlquery -dtd schema.dtd -data-dir ./store -q '/book/author'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"xmlrdb"
	"xmlrdb/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xmlquery:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xmlquery", flag.ContinueOnError)
	dtdPath := fs.String("dtd", "", "DTD file (required)")
	pathQ := fs.String("q", "", "path query to run")
	sqlQ := fs.String("sql", "", "raw SQL to run instead of a path query")
	explain := fs.Bool("explain", false, "print the generated SQL and plan stats without executing")
	strategy := fs.String("strategy", "junction", "relational strategy: junction or fold")
	stats := fs.Bool("stats", false, "print the pipeline metrics report after the query")
	slowMS := fs.Int("slow-query-ms", 0, "log statements at or above this many milliseconds to stderr (0 disables)")
	dataDir := fs.String("data-dir", "", "query a durable store previously populated with xmlshred -data-dir (documents on the command line load on top)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dtdPath == "" {
		return fmt.Errorf("-dtd is required")
	}
	if *pathQ == "" && *sqlQ == "" {
		return fmt.Errorf("one of -q or -sql is required")
	}
	if *dataDir == "" && fs.NArg() == 0 {
		return fmt.Errorf("no documents given (load some, or point -data-dir at a durable store)")
	}
	dtdText, err := os.ReadFile(*dtdPath)
	if err != nil {
		return err
	}
	cfg := xmlrdb.Config{DataDir: *dataDir}
	if *strategy == "fold" {
		cfg.Strategy = xmlrdb.StrategyFoldFK
	}
	p, err := xmlrdb.Open(string(dtdText), cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	if *slowMS > 0 {
		p.SetTracer(obs.NewWriterTracer(os.Stderr))
		p.SetSlowQueryThreshold(time.Duration(*slowMS) * time.Millisecond)
	}
	for _, path := range fs.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, err := p.LoadXML(string(b), path); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if *explain && *pathQ != "" {
		report, err := p.ExplainPath(*pathQ)
		if err != nil {
			return err
		}
		fmt.Fprint(out, report)
		if *stats {
			fmt.Fprint(out, p.MetricsReport())
		}
		return nil
	}
	var rows *xmlrdb.Rows
	if *pathQ != "" {
		rows, err = p.Query(*pathQ)
	} else {
		rows, err = p.SQL(*sqlQ)
	}
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	for i, c := range rows.Cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
	for _, r := range rows.Data {
		for i, v := range r {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			if v == nil {
				fmt.Fprint(w, "NULL")
			} else {
				fmt.Fprintf(w, "%v", v)
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Fprintf(out, "(%d rows)\n", len(rows.Data))
	if *stats {
		fmt.Fprint(out, p.MetricsReport())
	}
	return nil
}
