package main

import (
	"strings"
	"testing"
)

func TestQueryPath(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd", "-q", "//author",
		"../../testdata/book.xml", "../../testdata/article.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(4 rows)") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestQuerySQL(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd",
		"-sql", "SELECT COUNT(*) FROM e_author",
		"../../testdata/book.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestQueryExplain(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd", "-q", "/book/booktitle/text()", "-explain",
		"../../testdata/book.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "a_booktitle") {
		t.Errorf("explain output:\n%s", out.String())
	}
}

func TestQueryErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-q", "/x"}, &out); err == nil {
		t.Error("missing -dtd should fail")
	}
	if err := run([]string{"-dtd", "../../testdata/bib.dtd"}, &out); err == nil {
		t.Error("missing query should fail")
	}
}

func TestQueryExplainPlanStats(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd", "-q", "/book/booktitle/text()", "-explain",
		"../../testdata/book.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-- plan:") ||
		!strings.Contains(out.String(), "joins-avoided=2") {
		t.Errorf("explain plan stats missing:\n%s", out.String())
	}
}

func TestQueryStats(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd", "-q", "//author", "-stats",
		"../../testdata/book.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== metrics ==") ||
		!strings.Contains(out.String(), "docs=1") {
		t.Errorf("stats report missing:\n%s", out.String())
	}
}
