package main

import (
	"strings"
	"testing"
)

func TestShredAndVerify(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd", "-verify",
		"../../testdata/book.xml", "../../testdata/article.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "round-trip verified") != 2 {
		t.Errorf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "e_author") {
		t.Errorf("table summary missing:\n%s", out.String())
	}
}

func TestShredDump(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd", "-dump", "e_book",
		"../../testdata/book.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "XML RDBMS") {
		t.Errorf("dump missing row data:\n%s", out.String())
	}
}

func TestShredErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"../../testdata/book.xml"}, &out); err == nil {
		t.Error("missing -dtd should fail")
	}
	if err := run([]string{"-dtd", "../../testdata/bib.dtd"}, &out); err == nil {
		t.Error("no documents should fail")
	}
	if err := run([]string{"-dtd", "../../testdata/bib.dtd", "/nope.xml"}, &out); err == nil {
		t.Error("missing document should fail")
	}
}

func TestShredParallelWorkers(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd", "-workers", "4",
		"../../testdata/book.xml", "../../testdata/article.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "book.xml: loaded as document") ||
		!strings.Contains(got, "article.xml: loaded as document") {
		t.Errorf("per-file load lines missing:\n%s", got)
	}
	if !strings.Contains(got, "e_author") {
		t.Errorf("table summary missing:\n%s", got)
	}
}

func TestShredStats(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd", "-stats",
		"../../testdata/book.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== metrics ==") ||
		!strings.Contains(out.String(), "docs=1") {
		t.Errorf("stats report missing:\n%s", out.String())
	}
}

func TestShredDebugAddr(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-dtd", "../../testdata/bib.dtd", "-debug-addr", "127.0.0.1:0",
		"../../testdata/book.xml",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "debug endpoint on http://") {
		t.Errorf("debug endpoint line missing:\n%s", out.String())
	}
}
