// Command xmlshred loads XML documents into a relational store under
// the paper's ER mapping and reports what was stored.
//
// Usage:
//
//	xmlshred -dtd schema.dtd [-strategy junction|fold] [-verify]
//	         [-workers n] [-dump table] [-analyze]
//	         [-data-dir dir [-snapshot-every n]]
//	         doc1.xml [doc2.xml ...]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"xmlrdb"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/xmltree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xmlshred:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("xmlshred", flag.ContinueOnError)
	dtdPath := fs.String("dtd", "", "DTD file (required)")
	strategy := fs.String("strategy", "junction", "relational strategy: junction or fold")
	verify := fs.Bool("verify", false, "reconstruct each document and verify equivalence")
	workers := fs.Int("workers", 1, "parallel loader workers (>1 enables the bulk-load pipeline; ignored with -verify)")
	dump := fs.String("dump", "", "print the rows of one table after loading")
	stats := fs.Bool("stats", false, "print the pipeline metrics report after loading")
	debugAddr := fs.String("debug-addr", "", "serve /debug/metrics, /debug/vars and /debug/pprof on this address while loading")
	dataDir := fs.String("data-dir", "", "durable store directory (write-ahead logged; reopening recovers loaded documents)")
	snapEvery := fs.Int("snapshot-every", 0, "snapshot the store and truncate the log after this many WAL frames (0 disables; requires -data-dir)")
	analyze := fs.Bool("analyze", false, "run ANALYZE after loading: builds dictionaries and the optimizer statistics (persisted on durable stores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dtdPath == "" {
		return fmt.Errorf("-dtd is required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no documents given")
	}
	dtdText, err := os.ReadFile(*dtdPath)
	if err != nil {
		return err
	}
	if *snapEvery != 0 && *dataDir == "" {
		return fmt.Errorf("-snapshot-every requires -data-dir")
	}
	cfg := xmlrdb.Config{DataDir: *dataDir, SnapshotEvery: *snapEvery}
	if *strategy == "fold" {
		cfg.Strategy = xmlrdb.StrategyFoldFK
	}
	p, err := xmlrdb.Open(string(dtdText), cfg)
	if err != nil {
		return err
	}
	defer p.Close()
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, p.Obs, nil)
		if err != nil {
			return err
		}
		defer ds.Close(context.Background())
		fmt.Fprintf(w, "debug endpoint on http://%s/debug/metrics\n", ds.Addr())
	}
	if (*workers > 1 || *dataDir != "") && !*verify {
		// Bulk load: parse every document, then shred the corpus through
		// the staged batched loader. A durable store always takes this
		// path — each document flushes as one atomic WAL frame, so a
		// crash mid-run loses at most the in-flight documents, never part
		// of one.
		docs := make([]*xmltree.Document, 0, fs.NArg())
		for _, path := range fs.Args() {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			doc, err := p.ParseDocument(string(b))
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			docs = append(docs, doc)
		}
		ids, err := p.LoadCorpusNamed(docs, fs.Args(), *workers)
		if err != nil {
			return err
		}
		for i, path := range fs.Args() {
			fmt.Fprintf(w, "%s: loaded as document %d\n", path, ids[i])
		}
	} else {
		for _, path := range fs.Args() {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if *verify {
				if err := p.VerifyRoundTrip(string(b), path); err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
				fmt.Fprintf(w, "%s: loaded and round-trip verified\n", path)
				continue
			}
			id, err := p.LoadXML(string(b), path)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Fprintf(w, "%s: loaded as document %d\n", path, id)
		}
	}
	if *analyze {
		if err := p.Analyze(); err != nil {
			return fmt.Errorf("analyze: %w", err)
		}
		fmt.Fprintln(w, "analyzed: optimizer statistics collected for all tables")
	}
	st := p.Stats()
	fmt.Fprintf(w, "store: %d tables, %d rows, ~%d bytes\n", st.Tables, st.Rows, st.Bytes)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "table\trows")
	for _, name := range p.DB.TableNames() {
		if n := p.DB.RowCount(name); n > 0 {
			fmt.Fprintf(tw, "%s\t%d\n", name, n)
		}
	}
	tw.Flush()

	if *dump != "" {
		rows, err := p.SQL("SELECT * FROM " + *dump)
		if err != nil {
			return err
		}
		printRows(w, rows)
	}
	if *stats {
		fmt.Fprint(w, p.MetricsReport())
	}
	return nil
}

func printRows(out io.Writer, rows *xmlrdb.Rows) {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	for i, c := range rows.Cols {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, c)
	}
	fmt.Fprintln(w)
	for _, r := range rows.Data {
		for i, v := range r {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			if v == nil {
				fmt.Fprint(w, "NULL")
			} else {
				fmt.Fprintf(w, "%v", v)
			}
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}
