package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e7", "e12"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "e1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MATCHES the paper's Example 2 exactly") {
		t.Errorf("e1 output:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "e99"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
}
