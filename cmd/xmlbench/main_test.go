package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e7", "e12"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "e1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MATCHES the paper's Example 2 exactly") {
		t.Errorf("e1 output:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "e99"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestParallelLoadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a 200-document corpus")
	}
	var out strings.Builder
	if err := run([]string{"-exp", "e5b", "-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "parallel bulk-load scaling") ||
		!strings.Contains(got, "speedup") {
		t.Errorf("e5b output:\n%s", got)
	}
	// -workers 2 replaces the sweep with {1, 2}: two rows per DTD family.
	if strings.Contains(got, "\t8\t") {
		t.Errorf("default sweep ran despite -workers:\n%s", got)
	}
}
