// Command xmlbench regenerates every table and figure of the
// reproduction's experiment suite (see DESIGN.md §4 and EXPERIMENTS.md):
// the golden reproductions of the paper's Examples 1–2 and Figures 1–2,
// and the quantitative comparisons the paper deferred.
//
// Usage:
//
//	xmlbench              # run every experiment
//	xmlbench -exp e6      # run one
//	xmlbench -list        # list experiment ids
//	xmlbench -seed 7      # change the workload seed
//	xmlbench -exp e5b -workers 4   # parallel-load scaling at one worker count
//	xmlbench -exp e14 -json BENCH_E14.json   # machine-readable results
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"xmlrdb/internal/experiments"
	"xmlrdb/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xmlbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("xmlbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (e1..e14) or all")
	seed := fs.Int64("seed", 1, "workload seed")
	list := fs.Bool("list", false, "list experiments and exit")
	workers := fs.Int("workers", 0, "e5b: measure this worker count against the serial baseline (0 = default 1/2/4/8 sweep)")
	stats := fs.Bool("stats", false, "attach metrics to every experiment and print the final report")
	jsonPath := fs.String("json", "", "also write the run's results as JSON to this file")
	debugAddr := fs.String("debug-addr", "", "serve /debug/metrics, /debug/vars and /debug/pprof on this address while running")
	slowMS := fs.Int("slow-query-ms", 0, "log statements at or above this many milliseconds to stderr (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers > 0 {
		experiments.E5bWorkers = []int{1, *workers}
	}
	if *stats || *debugAddr != "" || *slowMS > 0 {
		experiments.Observe = obs.Default
		obs.Publish("xmlrdb", obs.Default)
	}
	if *slowMS > 0 {
		experiments.Trace = obs.NewWriterTracer(os.Stderr)
		experiments.SlowQuery = time.Duration(*slowMS) * time.Millisecond
	}
	if *debugAddr != "" {
		ds, err := obs.ServeDebug(*debugAddr, obs.Default, nil)
		if err != nil {
			return err
		}
		defer ds.Close(context.Background())
		fmt.Fprintf(w, "debug endpoint on http://%s/debug/metrics\n", ds.Addr())
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(w, "%-4s %s\n", r.ID, r.Title)
		}
		return nil
	}
	var runners []experiments.Runner
	if *exp == "all" {
		runners = experiments.All()
	} else {
		r, ok := experiments.Find(*exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		runners = []experiments.Runner{r}
	}
	var tables []*experiments.Table
	for _, r := range runners {
		tab, err := r.Run(*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Fprintln(w, tab.String())
		tables = append(tables, tab)
	}
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, *seed, tables); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *jsonPath)
	}
	if *stats {
		fmt.Fprint(w, obs.SnapshotDefault().Report())
	}
	return nil
}

// jsonTable is the machine-readable form of one experiment's result:
// the rendered rows plus the experiment's structured payload when it
// provides one (E14's timings and snapshot sizes).
type jsonTable struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Notes  []string   `json:"notes,omitempty"`
	Result any        `json:"result,omitempty"`
}

func writeJSON(path string, seed int64, tables []*experiments.Table) error {
	out := struct {
		GeneratedAt string      `json:"generated_at"`
		Seed        int64       `json:"seed"`
		Experiments []jsonTable `json:"experiments"`
	}{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        seed,
	}
	for _, t := range tables {
		out.Experiments = append(out.Experiments, jsonTable{
			ID: t.ID, Title: t.Title, Header: t.Header,
			Rows: t.Rows, Notes: t.Notes, Result: t.JSON,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
