package xmlrdb

import (
	"strings"
	"testing"

	"xmlrdb/internal/paper"
)

// TestPipelineDurableReopen loads documents into a durable pipeline,
// closes it, reopens the same directory and checks every document
// survived — then keeps loading without id collisions.
func TestPipelineDurableReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, SnapshotEvery: 0}
	p, err := Open(paper.Example1DTD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := p.LoadXML(paper.BookXML, "book1")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := p.LoadXML(paper.ArticleXML, "article1")
	if err != nil {
		t.Fatal(err)
	}
	want1, err := p.Reconstruct(id1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: both documents recover, and the id space continues.
	p2, err := Open(paper.Example1DTD, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()
	ids, err := p2.DocumentIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("recovered %d documents, want 2: %v", len(ids), ids)
	}
	got1, err := p2.Reconstruct(id1)
	if err != nil {
		t.Fatalf("reconstruct recovered doc: %v", err)
	}
	if got1 != want1 {
		t.Errorf("recovered reconstruction differs:\n%s\nvs\n%s", got1, want1)
	}
	id3, err := p2.LoadXML(paper.BookXML, "book2")
	if err != nil {
		t.Fatalf("load after reopen: %v", err)
	}
	if id3 == id1 || id3 == id2 {
		t.Fatalf("reused document id %d after reopen", id3)
	}
	if err := p2.DB.CheckAllFKs(); err != nil {
		t.Errorf("CheckAllFKs after resume: %v", err)
	}
	rows, err := p2.Query(`/book`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Errorf("books after resume = %d, want 2", len(rows.Data))
	}
}

// TestPipelineDurableCheckpoint checks explicit checkpointing truncates
// the log and the snapshot alone recovers the store.
func TestPipelineDurableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir}
	p, err := Open(paper.Example1DTD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadXML(paper.BookXML, "b"); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(paper.Example1DTD, cfg)
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer p2.Close()
	ids, err := p2.DocumentIDs()
	if err != nil || len(ids) != 1 {
		t.Fatalf("recovered docs = %v, %v", ids, err)
	}
}

// TestPipelineDataDirMismatch checks opening a data directory with a
// different DTD fails with a clear error instead of corrupting it.
func TestPipelineDataDirMismatch(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(paper.Example1DTD, Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadXML(paper.BookXML, "b"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = Open(`<!ELEMENT other (#PCDATA)>`, Config{DataDir: dir})
	if err == nil {
		t.Fatal("mismatched DTD opened a foreign data directory")
	}
	if !strings.Contains(err.Error(), "does not match") {
		t.Errorf("mismatch error %v lacks explanation", err)
	}
}

// TestPipelineDataDirColumnMismatch: a different DTD whose tables happen
// to share names must still be rejected — recovered table definitions
// are compared structurally (columns, types, constraints), not merely by
// name, so the store cannot be opened under a schema that would silently
// misread its rows.
func TestPipelineDataDirColumnMismatch(t *testing.T) {
	const withAttr = `<!ELEMENT book (title)>
<!ATTLIST book isbn CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>`
	const withoutAttr = `<!ELEMENT book (title)>
<!ELEMENT title (#PCDATA)>`
	dir := t.TempDir()
	p, err := Open(withAttr, Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = Open(withoutAttr, Config{DataDir: dir})
	if err == nil {
		t.Fatal("DTD with different columns opened a foreign data directory")
	}
	if !strings.Contains(err.Error(), "does not match") {
		t.Errorf("mismatch error %v lacks explanation", err)
	}
}

// TestPipelineCheckpointInMemory checks Checkpoint on an in-memory
// pipeline reports ErrNotDurable.
func TestPipelineCheckpointInMemory(t *testing.T) {
	p, err := Open(paper.Example1DTD, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on in-memory pipeline succeeded")
	}
	if err := p.Close(); err != nil {
		t.Errorf("Close on in-memory pipeline: %v", err)
	}
}
