// Orders: the data-centric e-commerce scenario the paper's introduction
// motivates ("XML is pushing the world into the e-commerce era") — a
// purchase-order DTD with customers referenced by ID, bulk-loaded and
// analyzed with SQL over the ER-mapped schema.
package main

import (
	"fmt"
	"os"
	"strings"

	"xmlrdb"
)

// ordersDTD is a typical data-centric B2B exchange schema.
const ordersDTD = `
<!ELEMENT orders (customer*, order*)>
<!ELEMENT customer (name, address)>
<!ATTLIST customer id ID #REQUIRED segment (retail | corporate) "retail">
<!ELEMENT name (#PCDATA)>
<!ELEMENT address (#PCDATA)>
<!ELEMENT order (item+, note?)>
<!ATTLIST order buyer IDREF #REQUIRED status (open | shipped | returned) "open">
<!ELEMENT item (sku, qty, price)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT note (#PCDATA)>
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "orders:", err)
		os.Exit(1)
	}
}

func run() error {
	p, err := xmlrdb.Open(ordersDTD, xmlrdb.Config{Strategy: xmlrdb.StrategyFoldFK})
	if err != nil {
		return err
	}
	fmt.Println("-- ER model for the orders DTD --")
	fmt.Print(p.ERInventory())

	// Build one exchange document with 40 customers and 300 orders.
	var b strings.Builder
	b.WriteString("<orders>")
	for c := 0; c < 40; c++ {
		seg := "retail"
		if c%4 == 0 {
			seg = "corporate"
		}
		fmt.Fprintf(&b, `<customer id="c%d" segment="%s"><name>Customer %d</name><address>%d Sylvan Road</address></customer>`,
			c, seg, c, c)
	}
	for o := 0; o < 300; o++ {
		status := []string{"open", "shipped", "returned"}[o%3]
		fmt.Fprintf(&b, `<order buyer="c%d" status="%s">`, o%40, status)
		for i := 0; i <= o%3; i++ {
			fmt.Fprintf(&b, `<item><sku>SKU-%d</sku><qty>%d</qty><price>%d</price></item>`,
				(o+i)%50, 1+i, 10+(o+i)%90)
		}
		if o%5 == 0 {
			b.WriteString(`<note>expedite</note>`)
		}
		b.WriteString(`</order>`)
	}
	b.WriteString("</orders>")

	if err := p.VerifyRoundTrip(b.String(), "po-batch-1"); err != nil {
		return fmt.Errorf("round trip: %w", err)
	}
	st := p.Stats()
	fmt.Printf("\nloaded exchange document: %d rows in %d tables (round-trip verified)\n\n", st.Rows, st.Tables)

	// Analytics directly in SQL: the item leaves were distilled into the
	// e_item row (sku/qty/price are columns, not joins).
	queries := []struct{ title, sql string }{
		{"orders per status", `
SELECT o.a_status, COUNT(*) n FROM e_order o GROUP BY o.a_status ORDER BY n DESC`},
		{"items and revenue per segment", `
SELECT c.a_segment, COUNT(*) items, SUM(NUM(i.a_price) * NUM(i.a_qty)) revenue
FROM e_item i
JOIN e_order o ON i.parent = o.id
JOIN r_buyer r ON r.source = o.id
JOIN e_customer c ON r.target = c.id
GROUP BY c.a_segment ORDER BY revenue DESC`},
		{"top customers by order count", `
SELECT c.a_id, COUNT(*) n
FROM r_buyer r JOIN e_customer c ON r.target = c.id
GROUP BY c.a_id ORDER BY n DESC, c.a_id LIMIT 3`},
	}
	for _, q := range queries {
		rows, err := p.SQL(q.sql)
		if err != nil {
			return fmt.Errorf("%s: %w", q.title, err)
		}
		fmt.Println(q.title + ":")
		for _, r := range rows.Data {
			fmt.Printf("  %v\n", r)
		}
	}

	// Path queries work on the same store.
	rows, err := p.Query("/orders/order[@status='returned']")
	if err != nil {
		return err
	}
	fmt.Printf("returned orders (path query): %d\n", len(rows.Data))
	return nil
}
