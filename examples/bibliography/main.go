// Bibliography: a document-centric scenario on the paper's DTD — a
// generated corpus of articles with IDREF contact authors, loaded,
// validated, queried across documents, and round-trip verified.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"xmlrdb"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/wgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bibliography:", err)
		os.Exit(1)
	}
}

func run() error {
	p, err := xmlrdb.Open(paper.Example1DTD, xmlrdb.Config{})
	if err != nil {
		return err
	}

	// A fixed corpus: the three paper fixtures plus 50 generated
	// articles.
	for i, src := range []string{paper.BookXML, paper.ArticleXML, paper.EditorXML} {
		if err := p.VerifyRoundTrip(src, fmt.Sprintf("fixture-%d", i)); err != nil {
			return err
		}
	}
	d := dtd.MustParse(paper.Example1DTD)
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < 50; i++ {
		doc, err := wgen.GenerateDoc(d, "article", rng, wgen.DocConfig{MaxRepeat: 4})
		if err != nil {
			return err
		}
		if _, err := p.LoadDocument(doc, fmt.Sprintf("gen-%d", i)); err != nil {
			return err
		}
	}
	st := p.Stats()
	fmt.Printf("corpus loaded: %d rows across %d tables\n", st.Rows, st.Tables)

	// Cross-document queries.
	for _, q := range []string{
		"/article/author",
		"/article/contactauthor[@authorid]",
		"//name",
	} {
		rows, err := p.Query(q)
		if err != nil {
			return err
		}
		fmt.Printf("%-40s %4d rows\n", q, len(rows.Data))
	}

	// SQL analytics over the shredded corpus: how many authors per
	// article, and how many contact authors resolve.
	rows, err := p.SQL(`
SELECT a.doc, COUNT(*) n FROM e_author a GROUP BY a.doc ORDER BY n DESC LIMIT 5`)
	if err != nil {
		return err
	}
	fmt.Println("top documents by author count:")
	for _, r := range rows.Data {
		fmt.Printf("  doc %v: %v authors\n", r[0], r[1])
	}
	rows, err = p.SQL(`SELECT COUNT(*) FROM r_authorid WHERE target IS NOT NULL`)
	if err != nil {
		return err
	}
	fmt.Printf("resolved contact-author references: %v\n", rows.Data[0][0])

	// Every generated document round-trips exactly.
	ids, err := p.DocumentIDs()
	if err != nil {
		return err
	}
	fmt.Printf("round-trip verified fixtures; %d documents stored in total\n", len(ids))
	return nil
}
