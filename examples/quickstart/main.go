// Quickstart: the paper's running example end to end — map the books/
// articles/authors DTD (Example 1), inspect the converted DTD
// (Example 2) and ER diagram (Figure 2), load the §3 sample document,
// query it, and reconstruct it from its relational form.
package main

import (
	"fmt"
	"os"

	"xmlrdb"
	"xmlrdb/internal/paper"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Map the DTD with the paper's four-step algorithm.
	p, err := xmlrdb.Open(paper.Example1DTD, xmlrdb.Config{})
	if err != nil {
		return err
	}
	fmt.Println("-- converted DTD (paper Example 2) --")
	fmt.Print(p.ConvertedDTD())
	fmt.Println("\n-- ER model (paper Figure 2) --")
	fmt.Print(p.ERInventory())
	fmt.Println("\n-- relational schema (first lines) --")
	ddl := p.DDL()
	if len(ddl) > 400 {
		ddl = ddl[:400] + "...\n"
	}
	fmt.Print(ddl)

	// 2. Load the paper's sample book document.
	docID, err := p.LoadXML(paper.BookXML, "paper-book")
	if err != nil {
		return err
	}
	fmt.Printf("\nloaded document %d; store: %+v\n", docID, p.Stats())

	// 3. Query it, as a path query and as SQL.
	rows, err := p.Query("/book/author/name")
	if err != nil {
		return err
	}
	fmt.Printf("/book/author/name -> %d names\n", len(rows.Data))

	rows, err = p.SQL(`
SELECT n.a_firstname, n.a_lastname
FROM r_NG1 g
JOIN e_author a ON g.child = a.id
JOIN r_Nname nn ON nn.parent = a.id
JOIN e_name n ON nn.child = n.id
ORDER BY g.ord`)
	if err != nil {
		return err
	}
	fmt.Println("authors in document order:")
	for _, r := range rows.Data {
		fmt.Printf("  %v %v\n", r[0], r[1])
	}

	// 4. Reconstruct the document from its rows.
	xml, err := p.Reconstruct(docID)
	if err != nil {
		return err
	}
	fmt.Println("\n-- reconstructed document --")
	fmt.Print(xml)
	return nil
}
