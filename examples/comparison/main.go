// Comparison: the same corpus under all seven mappings — the paper's ER
// mapping (junction and fold strategies), the Edge and Universal tables,
// and Basic/Shared/Hybrid inlining — side by side: schema size, rows
// stored, and the SQL each mapping generates for the same path query.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"xmlrdb/internal/baselines"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/xmltree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "comparison:", err)
		os.Exit(1)
	}
}

func run() error {
	d := dtd.MustParse(paper.Example1DTD)
	maps, err := baselines.All(d)
	if err != nil {
		return err
	}
	docs := []string{paper.BookXML, paper.ArticleXML, paper.EditorXML}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mapping\ttables\tcolumns\trows stored\t/article/author/name rows\tjoins")
	const query = "/article/author/name"
	q, err := pathquery.Parse(query)
	if err != nil {
		return err
	}
	for _, m := range maps {
		db := engine.Open()
		if err := db.CreateSchema(m.Schema()); err != nil {
			return err
		}
		for i, src := range docs {
			doc, err := xmltree.Parse(src)
			if err != nil {
				return err
			}
			if _, err := m.Load(db, doc, fmt.Sprintf("d%d", i)); err != nil {
				return fmt.Errorf("%s: %w", m.Name(), err)
			}
		}
		trans, err := m.Translator().Translate(q)
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name(), err)
		}
		rows, err := pathquery.Execute(db, trans)
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name(), err)
		}
		st := m.Schema().ComputeStats()
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
			m.Name(), st.Tables, st.Columns, db.TotalRows(), len(rows.Data), trans.Joins)
	}
	w.Flush()

	fmt.Printf("\n-- the SQL each mapping generates for %s --\n", query)
	for _, m := range maps {
		trans, err := m.Translator().Translate(q)
		if err != nil {
			return err
		}
		fmt.Printf("\n[%s]\n", m.Name())
		for _, sql := range trans.SQLs {
			fmt.Println(" ", sql)
		}
	}
	return nil
}
