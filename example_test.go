package xmlrdb_test

import (
	"fmt"

	"xmlrdb"
)

// Example maps a DTD, loads a document, queries it, and reconstructs it.
func Example() {
	const dtd = `
<!ELEMENT order (item+)>
<!ATTLIST order id ID #REQUIRED>
<!ELEMENT item (sku, qty)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT qty (#PCDATA)>
`
	p, err := xmlrdb.Open(dtd, xmlrdb.Config{})
	if err != nil {
		panic(err)
	}
	docID, err := p.LoadXML(
		`<order id="o1"><item><sku>A-1</sku><qty>2</qty></item><item><sku>B-9</sku><qty>1</qty></item></order>`,
		"order-1")
	if err != nil {
		panic(err)
	}
	rows, err := p.Query("/order/item")
	if err != nil {
		panic(err)
	}
	fmt.Println("items:", len(rows.Data))

	xml, err := p.Reconstruct(docID)
	if err != nil {
		panic(err)
	}
	fmt.Println(xml)
	// Output:
	// items: 2
	// <?xml version="1.0"?>
	// <order id="o1"><item><sku>A-1</sku><qty>2</qty></item><item><sku>B-9</sku><qty>1</qty></item></order>
}

// ExamplePipeline_ConvertedDTD shows the paper's Example-2 notation for a
// tiny DTD: the (#PCDATA) leaf is distilled into an attribute and the
// repeated child becomes a NESTED relationship.
func ExamplePipeline_ConvertedDTD() {
	p, err := xmlrdb.Open(`
<!ELEMENT order (sku, item*)>
<!ELEMENT sku (#PCDATA)>
<!ELEMENT item EMPTY>
`, xmlrdb.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Print(p.ConvertedDTD())
	// Output:
	// <!ELEMENT order ()>
	// <!ATTLIST order sku (#PCDATA) #REQUIRED>
	// <!NESTED Nitem order item>
	// <!ELEMENT item EMPTY>
}

// ExamplePipeline_SQL runs plain SQL over the shredded store.
func ExamplePipeline_SQL() {
	p, err := xmlrdb.Open(`
<!ELEMENT list (v*)>
<!ELEMENT v (#PCDATA)>
`, xmlrdb.Config{})
	if err != nil {
		panic(err)
	}
	if _, err := p.LoadXML(`<list><v>10</v><v>20</v><v>12</v></list>`, "l"); err != nil {
		panic(err)
	}
	rows, err := p.SQL(`SELECT COUNT(*), SUM(NUM(txt)) FROM e_v WHERE NUM(txt) >= 11`)
	if err != nil {
		panic(err)
	}
	fmt.Println(rows.Data[0][0], rows.Data[0][1])
	// Output: 2 32
}

// ExamplePipeline_TranslatePath shows the SQL a path query becomes.
func ExamplePipeline_TranslatePath() {
	p, err := xmlrdb.Open(`
<!ELEMENT a (b*)>
<!ELEMENT b EMPTY>
<!ATTLIST b k CDATA #IMPLIED>
`, xmlrdb.Config{})
	if err != nil {
		panic(err)
	}
	sqls, err := p.TranslatePath("/a/b[@k='v']")
	if err != nil {
		panic(err)
	}
	fmt.Println(sqls[0])
	// Output: SELECT e1.doc, e1.id FROM e_a e0, x_docs xd, r_Nb r0, e_b e1 WHERE xd.root_type = 'a' AND xd.root = e0.id AND r0.parent = e0.id AND r0.child = e1.id AND e1.a_k = 'v'
}
