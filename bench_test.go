package xmlrdb

// Benchmarks: one testing.B benchmark per experiment table/figure of
// EXPERIMENTS.md, so every reported number can be regenerated either via
// `go test -bench=.` or via `go run ./cmd/xmlbench`.

import (
	"fmt"
	"strings"
	"testing"

	"xmlrdb/internal/baselines"
	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/reconstruct"
	"xmlrdb/internal/shred"
	"xmlrdb/internal/wgen"
	"xmlrdb/internal/xmltree"
)

// BenchmarkParseDTD measures DTD parsing (substrate cost).
func BenchmarkParseDTD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dtd.Parse(paper.Example1DTD); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseXML measures document parsing (substrate cost).
func BenchmarkParseXML(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := xmltree.Parse(paper.ArticleXML); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapDTD is experiment E3: Figure-1 pipeline cost vs DTD size.
func BenchmarkMapDTD(b *testing.B) {
	for _, n := range []int{10, 50, 250} {
		d := wgen.GenerateDTD(wgen.DTDConfig{
			Elements: n, Seed: int64(n), AttrsPerElement: 2,
			IDProb: 0.2, IDREFProb: 0.2, OptionalProb: 0.3, RepeatProb: 0.3,
			ChoiceProb: 0.4, Levels: 6,
		})
		b.Run(fmt.Sprintf("elements=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Map(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchCorpus builds a fixed synthetic corpus once per benchmark.
func benchCorpus(b *testing.B, n int) (*dtd.DTD, []*xmltree.Document) {
	b.Helper()
	d := wgen.GenerateDTD(wgen.DTDConfig{
		Elements: 30, Seed: 5, AttrsPerElement: 2,
		IDProb: 0.3, IDREFProb: 0.3, OptionalProb: 0.3, RepeatProb: 0.3, Levels: 5,
	})
	docs, err := wgen.Corpus(d, n, 5, wgen.DocConfig{MaxRepeat: 3})
	if err != nil {
		b.Fatal(err)
	}
	return d, docs
}

// BenchmarkLoad is experiment E5: loading throughput per mapping.
func BenchmarkLoad(b *testing.B) {
	d, docs := benchCorpus(b, 50)
	maps, err := baselines.All(d)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range maps {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := engine.Open()
				if err := db.CreateSchema(m.Schema()); err != nil {
					b.Fatal(err)
				}
				fresh, err := baselines.All(d)
				if err != nil {
					b.Fatal(err)
				}
				var mm baselines.Mapping
				for _, c := range fresh {
					if c.Name() == m.Name() {
						mm = c
					}
				}
				b.StartTimer()
				for di, doc := range docs {
					if _, err := mm.Load(db, doc, fmt.Sprintf("d%d", di)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkParallelLoad is experiment E5b: corpus-loading throughput of
// the staged batch loader as the worker count grows. The serial
// LoadDocument path and workers=1 should be comparable; higher counts
// show how far per-table locking lets loads overlap.
func BenchmarkParallelLoad(b *testing.B) {
	d, docs := benchCorpus(b, 200)
	res, err := core.Map(d)
	if err != nil {
		b.Fatal(err)
	}
	m, err := ermap.Build(res.Model, ermap.Options{})
	if err != nil {
		b.Fatal(err)
	}
	fresh := func(b *testing.B) *shred.Loader {
		b.Helper()
		db := engine.Open()
		if err := db.CreateSchema(m.Schema); err != nil {
			b.Fatal(err)
		}
		loader, err := shred.NewLoader(res, m, db)
		if err != nil {
			b.Fatal(err)
		}
		return loader
	}
	b.Run("serial", func(b *testing.B) { // pre-pipeline baseline: one Insert per row
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			loader := fresh(b)
			b.StartTimer()
			for di, doc := range docs {
				if _, err := loader.LoadDocument(doc, fmt.Sprintf("doc-%d", di)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				loader := fresh(b)
				b.StartTimer()
				if _, err := loader.LoadCorpus(docs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryDepth is experiment E6: path-query latency vs depth per
// mapping (chain DTD).
func BenchmarkQueryDepth(b *testing.B) {
	const levels = 6
	var sb strings.Builder
	for i := 1; i <= levels; i++ {
		if i < levels {
			fmt.Fprintf(&sb, "<!ELEMENT c%d (c%d+)>", i, i+1)
		} else {
			fmt.Fprintf(&sb, "<!ELEMENT c%d (#PCDATA)>", i)
		}
	}
	d := dtd.MustParse(sb.String())
	var xb strings.Builder
	var emit func(level, fanout int)
	emit = func(level, fanout int) {
		fmt.Fprintf(&xb, "<c%d>", level)
		if level == levels {
			xb.WriteString("leaf")
		} else {
			for f := 0; f < fanout; f++ {
				emit(level+1, fanout)
			}
		}
		fmt.Fprintf(&xb, "</c%d>", level)
	}
	emit(1, 2)
	xmlSrc := xb.String()

	maps, err := baselines.All(d)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range maps {
		db := engine.Open()
		if err := db.CreateSchema(m.Schema()); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			doc := xmltree.MustParse(xmlSrc)
			if _, err := m.Load(db, doc, fmt.Sprintf("d%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		tr := m.Translator()
		for _, depth := range []int{1, 3, 6} {
			parts := make([]string, depth)
			for i := range parts {
				parts[i] = fmt.Sprintf("c%d", i+1)
			}
			q := pathquery.MustParse("/" + strings.Join(parts, "/"))
			trans, err := tr.Translate(q)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/depth=%d", m.Name(), depth), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pathquery.Execute(db, trans); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRoundTrip is the cost side of experiment E7: load plus
// reconstruct plus verify for one paper document.
func BenchmarkRoundTrip(b *testing.B) {
	p, err := Open(paper.Example1DTD, Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := p.VerifyRoundTrip(paper.ArticleXML, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconstruct is experiment E8: rebuild time for a loaded
// document.
func BenchmarkReconstruct(b *testing.B) {
	for _, fanout := range []int{2, 4} {
		const levels = 6
		var sb strings.Builder
		for i := 1; i <= levels; i++ {
			if i < levels {
				fmt.Fprintf(&sb, "<!ELEMENT c%d (c%d+)>", i, i+1)
			} else {
				fmt.Fprintf(&sb, "<!ELEMENT c%d (#PCDATA)>", i)
			}
		}
		d := dtd.MustParse(sb.String())
		res, err := core.Map(d)
		if err != nil {
			b.Fatal(err)
		}
		m, err := ermap.Build(res.Model, ermap.Options{})
		if err != nil {
			b.Fatal(err)
		}
		db := engine.Open()
		if err := db.CreateSchema(m.Schema); err != nil {
			b.Fatal(err)
		}
		loader, err := shred.NewLoader(res, m, db)
		if err != nil {
			b.Fatal(err)
		}
		var xb strings.Builder
		var emit func(level int)
		var count int
		emit = func(level int) {
			count++
			fmt.Fprintf(&xb, "<c%d>", level)
			if level == levels {
				xb.WriteString("leaf")
			} else {
				for f := 0; f < fanout; f++ {
					emit(level + 1)
				}
			}
			fmt.Fprintf(&xb, "</c%d>", level)
		}
		emit(1)
		st, err := loader.LoadXML(xb.String(), "big")
		if err != nil {
			b.Fatal(err)
		}
		recon := reconstruct.New(res, m, db)
		b.Run(fmt.Sprintf("elements=%d", count), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := recon.Document(st.DocID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRefJoin is experiment E11: point lookups with and without a
// secondary index.
func BenchmarkRefJoin(b *testing.B) {
	p, err := Open(`
<!ELEMENT net (node*)>
<!ELEMENT node EMPTY>
<!ATTLIST node id ID #REQUIRED kind CDATA #REQUIRED>
`, Config{})
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("<net>")
	for i := 0; i < 10000; i++ {
		fmt.Fprintf(&sb, `<node id="n%d" kind="k%d"/>`, i, i%100)
	}
	sb.WriteString("</net>")
	if _, err := p.LoadXML(sb.String(), "net"); err != nil {
		b.Fatal(err)
	}
	const sql = `SELECT id FROM e_node WHERE a_kind = 'k42'`
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SQL(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := p.DB.CreateIndex("ix_kind", "e_node", []string{"a_kind"}, false); err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SQL(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRangeScan measures the ordered-index extension: range
// predicates over a shredded attribute column (part of E11).
func BenchmarkRangeScan(b *testing.B) {
	p, err := Open(`
<!ELEMENT net (node*)>
<!ELEMENT node EMPTY>
<!ATTLIST node id ID #REQUIRED kind CDATA #REQUIRED>
`, Config{})
	if err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("<net>")
	for i := 0; i < 10000; i++ {
		fmt.Fprintf(&sb, `<node id="n%d" kind="k%d"/>`, i, i%100)
	}
	sb.WriteString("</net>")
	if _, err := p.LoadXML(sb.String(), "net"); err != nil {
		b.Fatal(err)
	}
	const sql = `SELECT COUNT(*) FROM e_node WHERE a_id >= 'n100' AND a_id < 'n101'`
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SQL(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := p.DB.CreateOrderedIndex("ox", "e_node", "a_id"); err != nil {
		b.Fatal(err)
	}
	b.Run("ordered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SQL(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPathTranslation measures translation alone (E9's cost proxy).
func BenchmarkPathTranslation(b *testing.B) {
	p, err := Open(paper.Example1DTD, Config{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := p.TranslatePath("/article/author/name"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShredPaperDoc measures single-document shredding on the
// paper's article fixture.
func BenchmarkShredPaperDoc(b *testing.B) {
	res, err := core.Map(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		b.Fatal(err)
	}
	m, err := ermap.Build(res.Model, ermap.Options{})
	if err != nil {
		b.Fatal(err)
	}
	doc := xmltree.MustParse(paper.ArticleXML)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := engine.Open()
		if err := db.CreateSchema(m.Schema); err != nil {
			b.Fatal(err)
		}
		loader, err := shred.NewLoader(res, m, db)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := loader.LoadDocument(doc, "a"); err != nil {
			b.Fatal(err)
		}
	}
}
