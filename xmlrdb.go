// Package xmlrdb integrates XML data with relational databases,
// reproducing Lee, Mitchell and Zhang, "Integrating XML Data with
// Relational Databases" (2000).
//
// The package is the public façade over the full pipeline:
//
//	DTD text ──parse──▶ logical DTD ──Figure-1 algorithm──▶ ER model
//	       ──[EN89]──▶ relational schema (+ §5 metadata tables)
//	       ──DOM traversal──▶ shredded rows ──SQL / path queries──▶ results
//	       ──ordinals + metadata──▶ reconstructed XML documents
//
// Quick start:
//
//	p, err := xmlrdb.Open(dtdText, xmlrdb.Config{})
//	docID, err := p.LoadXML(xmlText, "doc-1")
//	rows, err := p.Query("/book/author[@id='a1']")
//	xml, err := p.Reconstruct(docID)
package xmlrdb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/meta"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/reconstruct"
	"xmlrdb/internal/rel"
	"xmlrdb/internal/shred"
	"xmlrdb/internal/validate"
	"xmlrdb/internal/xmltree"
)

// Strategy selects how ER relationships map to tables.
type Strategy = ermap.Strategy

// Relational translation strategies.
const (
	// StrategyJunction gives every relationship its own table (default).
	StrategyJunction = ermap.StrategyJunction
	// StrategyFoldFK folds single-parent nesting relationships into
	// foreign keys on the child table.
	StrategyFoldFK = ermap.StrategyFoldFK
)

// Rows is a materialized query result.
type Rows = engine.Rows

// Cursor is a streaming query result: rows arrive one at a time as the
// caller pulls them, so early termination (LIMIT, a disconnected
// client) never pays for unread rows. Callers that may abandon a
// cursor must Close it; draining it closes it implicitly.
type Cursor = engine.Cursor

// Violation is one validity problem found by Validate.
type Violation = validate.Violation

// Config tunes pipeline construction.
type Config struct {
	// Strategy selects the relational translation (default junction).
	Strategy Strategy
	// SkipDistill disables the mapping's attribute-distilling step 2.
	SkipDistill bool
	// SkipMetaTables omits the §5 metadata tables.
	SkipMetaTables bool
	// DataDir, when non-empty, opens a durable store rooted there:
	// committed mutations are write-ahead logged, and reopening the same
	// directory recovers every previously loaded document (id sequences
	// resume past the recovered rows). Empty means in-memory only.
	DataDir string
	// SnapshotEvery snapshots the store (truncating the log) after this
	// many WAL frames; 0 disables automatic snapshots. Only meaningful
	// with DataDir.
	SnapshotEvery int
	// PlanCacheSize bounds the LRU translation (plan) cache used by
	// Query/ExplainPath: 0 selects the default capacity
	// (pathquery.DefaultCacheSize entries), negative disables caching.
	PlanCacheSize int
}

// Pipeline is a mapped DTD with its relational store: the end-to-end
// system of the paper.
type Pipeline struct {
	// DTD is the parsed source DTD.
	DTD *dtd.DTD
	// Result is the Figure-1 mapping output (converted DTD, ER model,
	// metadata).
	Result *core.Result
	// Mapping is the ER-to-relational translation.
	Mapping *ermap.Mapping
	// DB is the embedded relational engine holding the shredded data.
	DB *engine.DB
	// Obs is the pipeline's metrics hub: every subsystem (engine, shred,
	// pathquery, reconstruct) records into it. Snapshot it with
	// MetricsSnapshot, or read counters directly.
	Obs *obs.Metrics

	loader     *shred.Loader
	translator *pathquery.ERTranslator
	// qt is the translator Query/ExplainPath go through: the plan cache
	// when enabled, else the raw translator. planCache points at the
	// cache itself (nil when disabled) so ANALYZE can evict it.
	qt        pathquery.Translator
	planCache *pathquery.Cache
	recon     *reconstruct.Reconstructor
	validator *validate.Validator
}

// Open parses a DTD, runs the mapping algorithm, creates the relational
// schema (and metadata tables) in a fresh in-memory engine, and returns
// the ready pipeline.
func Open(dtdText string, cfg Config) (*Pipeline, error) {
	d, err := dtd.Parse(dtdText)
	if err != nil {
		return nil, err
	}
	return OpenDTD(d, cfg)
}

// OpenDTD is Open for an already-parsed DTD.
func OpenDTD(d *dtd.DTD, cfg Config) (*Pipeline, error) {
	hub := obs.New()
	start := time.Now()
	res, err := core.MapWith(d, core.Options{SkipDistill: cfg.SkipDistill})
	if err != nil {
		return nil, err
	}
	m, err := ermap.Build(res.Model, ermap.Options{Strategy: cfg.Strategy})
	if err != nil {
		return nil, err
	}
	var db *engine.DB
	resumed := false
	if cfg.DataDir != "" {
		db, err = engine.OpenAtOpts(cfg.DataDir, engine.DurabilityOptions{
			SnapshotEvery: cfg.SnapshotEvery,
			Metrics:       hub,
		})
		if err != nil {
			return nil, err
		}
		resumed = len(db.TableNames()) > 0
	} else {
		db = engine.Open()
		db.SetMetrics(hub)
	}
	if resumed {
		// Recovered store: the schema already exists; it must match the
		// mapping this pipeline was opened with — same columns, types and
		// constraints, not merely the same table names (a different DTD
		// can map to identically named tables whose rows would then be
		// silently misinterpreted).
		for _, t := range m.Schema.Tables {
			have := db.TableDef(t.Name)
			if have == nil {
				return nil, fmt.Errorf("xmlrdb: data directory %s does not match this DTD: missing table %q",
					cfg.DataDir, t.Name)
			}
			if why := tableMismatch(have, t); why != "" {
				return nil, fmt.Errorf("xmlrdb: data directory %s does not match this DTD: table %q %s",
					cfg.DataDir, t.Name, why)
			}
		}
	} else {
		if err := db.CreateSchema(m.Schema); err != nil {
			return nil, err
		}
		if !cfg.SkipMetaTables {
			if err := meta.Store(db, res, m); err != nil {
				return nil, err
			}
		}
	}
	hub.SchemaBuilds.Inc()
	hub.SchemaBuildLatency.ObserveDuration(time.Since(start))
	loader, err := shred.NewLoader(res, m, db)
	if err != nil {
		return nil, err
	}
	if resumed {
		if err := loader.ResumeFrom(db); err != nil {
			return nil, err
		}
	}
	loader.SetObserver(hub, nil)
	translator := pathquery.NewERTranslator(res, m)
	translator.SetObserver(hub, nil)
	var qt pathquery.Translator = translator
	var planCache *pathquery.Cache
	if cfg.PlanCacheSize >= 0 {
		planCache = pathquery.NewCache(translator, cfg.PlanCacheSize)
		planCache.SetObserver(hub)
		// Version every cache key with the statistics epoch: plans
		// compiled before an ANALYZE stop being served the moment fresher
		// statistics land.
		planCache.SetEpochSource(db.StatsEpoch)
		qt = planCache
	}
	recon := reconstruct.New(res, m, db)
	recon.SetObserver(hub, nil)
	return &Pipeline{
		DTD:        d,
		Result:     res,
		Mapping:    m,
		DB:         db,
		Obs:        hub,
		loader:     loader,
		translator: translator,
		qt:         qt,
		planCache:  planCache,
		recon:      recon,
		validator:  validate.New(d),
	}, nil
}

// tableMismatch reports the first structural difference between a
// recovered table definition and the one the mapping expects, or "" when
// they agree. Comments are provenance text, not structure, and are
// ignored; everything that affects how rows are written or read —
// columns, types, NOT NULL, primary key, uniques, foreign keys — must
// match exactly.
func tableMismatch(have, want *rel.Table) string {
	if len(have.Columns) != len(want.Columns) {
		return fmt.Sprintf("has %d columns, want %d", len(have.Columns), len(want.Columns))
	}
	for i, wc := range want.Columns {
		if have.Columns[i] != wc {
			return fmt.Sprintf("column %d is %s %s (not null: %v), want %s %s (not null: %v)",
				i, have.Columns[i].Name, have.Columns[i].Type, have.Columns[i].NotNull,
				wc.Name, wc.Type, wc.NotNull)
		}
	}
	if !sameStrings(have.PrimaryKey, want.PrimaryKey) {
		return fmt.Sprintf("primary key is %v, want %v", have.PrimaryKey, want.PrimaryKey)
	}
	if len(have.Uniques) != len(want.Uniques) {
		return fmt.Sprintf("has %d unique constraints, want %d", len(have.Uniques), len(want.Uniques))
	}
	for i := range want.Uniques {
		if !sameStrings(have.Uniques[i], want.Uniques[i]) {
			return fmt.Sprintf("unique constraint %d is %v, want %v", i, have.Uniques[i], want.Uniques[i])
		}
	}
	if len(have.ForeignKeys) != len(want.ForeignKeys) {
		return fmt.Sprintf("has %d foreign keys, want %d", len(have.ForeignKeys), len(want.ForeignKeys))
	}
	for i, wfk := range want.ForeignKeys {
		hfk := have.ForeignKeys[i]
		if hfk.RefTable != wfk.RefTable || !sameStrings(hfk.Columns, wfk.Columns) ||
			!sameStrings(hfk.RefColumns, wfk.RefColumns) {
			return fmt.Sprintf("foreign key %d is %v -> %s%v, want %v -> %s%v",
				i, hfk.Columns, hfk.RefTable, hfk.RefColumns, wfk.Columns, wfk.RefTable, wfk.RefColumns)
		}
	}
	return ""
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SetTracer attaches a tracer to every pipeline subsystem (nil
// detaches). Set it before concurrent use.
func (p *Pipeline) SetTracer(tr obs.Tracer) {
	p.DB.SetTracer(tr)
	p.loader.SetObserver(p.Obs, tr)
	p.translator.SetObserver(p.Obs, tr)
	p.recon.SetObserver(p.Obs, tr)
}

// SetSlowQueryThreshold makes the engine emit a slow-query trace event
// (and count it) for statements at or above d; zero disables.
func (p *Pipeline) SetSlowQueryThreshold(d time.Duration) {
	p.DB.SetSlowQueryThreshold(d)
}

// MetricsSnapshot returns a point-in-time copy of all pipeline metrics.
func (p *Pipeline) MetricsSnapshot() obs.Snapshot { return p.Obs.Snapshot() }

// MetricsReport renders the pipeline metrics as the human-readable
// -stats report.
func (p *Pipeline) MetricsReport() string { return p.Obs.Snapshot().Report() }

// LoadXML validates nothing beyond the mapping's own checks and shreds
// one XML document into the store, returning its document id.
func (p *Pipeline) LoadXML(src, name string) (int64, error) {
	st, err := p.loader.LoadXML(src, name)
	if err != nil {
		return 0, err
	}
	return st.DocID, nil
}

// LoadValidXML validates the document against the DTD first and only
// shreds it when it is valid; otherwise the violations are returned as
// one error.
func (p *Pipeline) LoadValidXML(src, name string) (int64, error) {
	doc, err := xmltree.ParseWith(src, xmltree.Options{ExternalDTD: p.DTD})
	if err != nil {
		return 0, err
	}
	if viols := p.validator.Validate(doc); len(viols) > 0 {
		msgs := make([]string, len(viols))
		for i, v := range viols {
			msgs[i] = v.String()
		}
		return 0, fmt.Errorf("xmlrdb: document %q is invalid:\n  %s",
			name, strings.Join(msgs, "\n  "))
	}
	st, err := p.loader.LoadDocument(doc, name)
	if err != nil {
		return 0, err
	}
	return st.DocID, nil
}

// LoadDocument shreds an already-parsed document.
func (p *Pipeline) LoadDocument(doc *xmltree.Document, name string) (int64, error) {
	st, err := p.loader.LoadDocument(doc, name)
	if err != nil {
		return 0, err
	}
	return st.DocID, nil
}

// ParseDocument parses XML text against the pipeline's DTD (applying
// declared attribute defaults) without loading it — the input form
// LoadCorpus takes.
func (p *Pipeline) ParseDocument(src string) (*xmltree.Document, error) {
	return xmltree.ParseWith(src, xmltree.Options{ExternalDTD: p.DTD})
}

// LoadCorpus shreds many parsed documents concurrently with a pool of
// workers (<= 0 means GOMAXPROCS), flushing each document as per-table
// row batches. It returns the assigned document ids in input order.
func (p *Pipeline) LoadCorpus(docs []*xmltree.Document, workers int) ([]int64, error) {
	return p.LoadCorpusNamed(docs, nil, workers)
}

// LoadCorpusNamed is LoadCorpus with explicit document names (nil names
// fall back to "doc-i").
func (p *Pipeline) LoadCorpusNamed(docs []*xmltree.Document, names []string, workers int) ([]int64, error) {
	return p.LoadCorpusContext(context.Background(), docs, names, workers)
}

// LoadCorpusContext is LoadCorpusNamed with cancellation: when ctx is
// cancelled no further documents start and the context's error is
// returned; documents already flushed stay loaded (whole documents
// only).
func (p *Pipeline) LoadCorpusContext(ctx context.Context, docs []*xmltree.Document, names []string, workers int) ([]int64, error) {
	sts, err := p.loader.LoadCorpusContext(ctx, docs, names, workers)
	if err != nil {
		return nil, err
	}
	ids := make([]int64, len(sts))
	for i, st := range sts {
		ids[i] = st.DocID
	}
	return ids, nil
}

// Checkpoint snapshots a durable store and truncates its write-ahead
// log; it returns engine.ErrNotDurable when no DataDir was configured.
func (p *Pipeline) Checkpoint() error { return p.DB.Checkpoint() }

// Analyze builds dictionary encodings for the string columns of every
// table (typically after a bulk load). Encoded columns let the engine
// run vectorized filters and aggregates over integer codes instead of
// strings; the dictionaries are durable (logged and snapshotted) on
// stores with a DataDir.
func (p *Pipeline) Analyze() error {
	err := p.DB.Analyze()
	if p.planCache != nil {
		p.planCache.Invalidate() // plans may embed pre-ANALYZE costing
	}
	return err
}

// AnalyzeTable is Analyze for a single table.
func (p *Pipeline) AnalyzeTable(name string) error {
	err := p.DB.AnalyzeTable(name)
	if p.planCache != nil {
		p.planCache.Invalidate()
	}
	return err
}

// DictStats reports the dictionary size per encoded column of a table
// (empty when the table has not been analyzed or nothing encoded).
func (p *Pipeline) DictStats(name string) map[string]int { return p.DB.DictStats(name) }

// TableStats returns a copy of one table's ANALYZE statistics (row
// count, per-column distinct/null counts, min/max, histograms), or nil
// when the table does not exist or was never analyzed.
func (p *Pipeline) TableStats(name string) *engine.TableStats {
	return p.DB.TableStatsSnapshot(name)
}

// StatsFreshness reports, per table, whether ANALYZE statistics exist
// and how many mutations have committed since they were collected —
// the signal for re-running ANALYZE.
func (p *Pipeline) StatsFreshness() map[string]engine.StatsFreshness {
	return p.DB.StatsFreshnessReport()
}

// Close flushes and closes the durable store (a no-op for in-memory
// pipelines). The pipeline must not be used afterwards.
func (p *Pipeline) Close() error { return p.DB.Close() }

// Validate checks a document against the DTD and returns all violations
// (nil means valid). Loading does not require prior validation, but
// invalid documents fail to shred with less precise errors.
func (p *Pipeline) Validate(src string) ([]Violation, error) {
	doc, err := xmltree.ParseWith(src, xmltree.Options{ExternalDTD: p.DTD})
	if err != nil {
		return nil, err
	}
	return p.validator.Validate(doc), nil
}

// Query runs a path query (see the pathquery syntax) translated to SQL
// over the ER-mapped store. Translations come from the plan cache when
// one is configured (the default).
func (p *Pipeline) Query(path string) (*Rows, error) {
	return pathquery.Run(p.DB, p.qt, path)
}

// QueryContext is Query under a context: cancellation or a deadline
// aborts execution mid-scan with the context's error.
func (p *Pipeline) QueryContext(ctx context.Context, path string) (*Rows, error) {
	return pathquery.RunContext(ctx, p.DB, p.qt, path)
}

// QueryCursor runs a path query and streams its result: union arms
// open lazily, one engine cursor at a time, so the first rows reach
// the caller before later arms have been planned or run.
func (p *Pipeline) QueryCursor(ctx context.Context, path string) (Cursor, error) {
	return pathquery.RunCursor(ctx, p.DB, p.qt, path)
}

// TranslatePath returns the SQL statements a path query translates to,
// without executing them.
func (p *Pipeline) TranslatePath(path string) ([]string, error) {
	tr, err := p.translate(path)
	if err != nil {
		return nil, err
	}
	return tr.SQLs, nil
}

// ExplainPath translates a path query and renders the full EXPLAIN
// report: plan statistics (union arms, joins emitted, joins avoided by
// distilled attributes), the generated SQL, and each arm's executed
// physical plan tree with per-operator row counts and timings.
func (p *Pipeline) ExplainPath(path string) (string, error) {
	return p.ExplainPathContext(context.Background(), path)
}

// ExplainPathContext is ExplainPath under a context: the physical plan
// sections come from executing each arm, so cancellation aborts the
// report mid-arm.
func (p *Pipeline) ExplainPathContext(ctx context.Context, path string) (string, error) {
	tr, err := p.translate(path)
	if err != nil {
		return "", err
	}
	return pathquery.ExplainContext(ctx, p.DB, tr)
}

func (p *Pipeline) translate(path string) (*pathquery.Translation, error) {
	q, err := pathquery.Parse(path)
	if err != nil {
		return nil, err
	}
	return p.qt.Translate(q)
}

// SQL runs a raw SQL statement against the store.
func (p *Pipeline) SQL(stmt string) (*Rows, error) {
	return p.SQLContext(context.Background(), stmt)
}

// SQLContext is SQL under a context: cancellation or a deadline aborts
// SELECT execution mid-scan with the context's error.
func (p *Pipeline) SQLContext(ctx context.Context, stmt string) (*Rows, error) {
	_, rows, err := p.DB.ExecContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		rows = &Rows{}
	}
	return rows, nil
}

// SQLCursor executes one SQL statement and returns its result as a
// streaming cursor: SELECTs stream row by row, other statements run to
// completion and yield an empty cursor.
func (p *Pipeline) SQLCursor(ctx context.Context, stmt string) (Cursor, error) {
	return p.DB.ExecCursorContext(ctx, stmt)
}

// ExplainSQL executes a SELECT and renders its physical plan tree with
// per-operator cardinality estimates, observed row counts and timings.
func (p *Pipeline) ExplainSQL(ctx context.Context, stmt string) (string, error) {
	return p.DB.ExplainQueryContext(ctx, stmt)
}

// Reconstruct rebuilds one loaded document from its relational form and
// returns its XML text.
func (p *Pipeline) Reconstruct(docID int64) (string, error) {
	doc, err := p.recon.Document(docID)
	if err != nil {
		return "", err
	}
	return doc.Render(xmltree.WriteOptions{}), nil
}

// DocumentIDs lists the loaded documents.
func (p *Pipeline) DocumentIDs() ([]int64, error) { return p.recon.DocumentIDs() }

// ConvertedDTD renders the steps-1..3 output in the paper's Example 2
// notation.
func (p *Pipeline) ConvertedDTD() string { return p.Result.Converted.String() }

// ERInventory renders the ER diagram (Figure 2) as a stable text
// inventory.
func (p *Pipeline) ERInventory() string { return p.Result.Model.Inventory() }

// ERDot renders the ER diagram as Graphviz DOT.
func (p *Pipeline) ERDot() string { return p.Result.Model.DOT() }

// DDL renders the generated relational schema.
func (p *Pipeline) DDL() string { return p.Mapping.Schema.DDL() }

// Stats summarizes the store.
type Stats struct {
	// Tables and Rows count schema objects and stored tuples.
	Tables, Rows int
	// Bytes approximates the storage footprint.
	Bytes int
}

// Stats returns store statistics.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Tables: len(p.DB.TableNames()),
		Rows:   p.DB.TotalRows(),
		Bytes:  p.DB.ApproxBytes(),
	}
}

// VerifyRoundTrip reloads the given XML text, reconstructs it from the
// store and checks equivalence — the E7 fidelity experiment as a single
// call.
func (p *Pipeline) VerifyRoundTrip(src, name string) error {
	doc, err := xmltree.ParseWith(src, xmltree.Options{ExternalDTD: p.DTD})
	if err != nil {
		return err
	}
	st, err := p.loader.LoadDocument(doc, name)
	if err != nil {
		return err
	}
	return p.recon.Verify(st.DocID, doc)
}
