package shred

import (
	"strings"
	"testing"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/meta"
	"xmlrdb/internal/paper"
)

// setup maps a DTD, creates the schema and returns a ready loader.
func setup(t *testing.T, dtdText string, opts ermap.Options) (*Loader, *engine.DB) {
	t.Helper()
	res, err := core.Map(dtd.MustParse(dtdText))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open()
	if err := db.CreateSchema(m.Schema); err != nil {
		t.Fatal(err)
	}
	if err := meta.Store(db, res, m); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(res, m, db)
	if err != nil {
		t.Fatal(err)
	}
	return l, db
}

func count(t *testing.T, db *engine.DB, sql string) int64 {
	t.Helper()
	rows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows.Data[0][0].(int64)
}

func TestLoadPaperBook(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	st, err := l.LoadXML(paper.BookXML, "book1")
	if err != nil {
		t.Fatal(err)
	}
	if st.DocID != 1 {
		t.Errorf("doc id = %d", st.DocID)
	}
	// book(1) + 2 authors + 2 names = 5 element rows (booktitle,
	// firstname, lastname distilled).
	if st.Elements != 5 {
		t.Errorf("elements = %d, want 5", st.Elements)
	}
	if got := count(t, db, `SELECT COUNT(*) FROM e_book`); got != 1 {
		t.Errorf("books = %d", got)
	}
	rows := db.MustQuery(`SELECT a_booktitle FROM e_book`)
	if rows.Data[0][0] != "XML RDBMS" {
		t.Errorf("booktitle = %v", rows.Data[0][0])
	}
	// Authors via NG1, in document order.
	rows = db.MustQuery(`
SELECT n.a_firstname FROM r_NG1 g
JOIN e_author a ON g.child = a.id
JOIN r_Nname nn ON nn.parent = a.id
JOIN e_name n ON nn.child = n.id
WHERE g.target = 'author'
ORDER BY g.ord`)
	if len(rows.Data) != 2 || rows.Data[0][0] != "John" || rows.Data[1][0] != "Dave" {
		t.Errorf("author order = %v", rows.Data)
	}
	// Data ordering: author ordinals are 1 and 2 (booktitle was child 0).
	ords := db.MustQuery(`SELECT ord FROM r_NG1 ORDER BY ord`)
	if len(ords.Data) != 2 || ords.Data[0][0] != int64(1) || ords.Data[1][0] != int64(2) {
		t.Errorf("ordinals = %v", ords.Data)
	}
	// Document registry.
	reg := db.MustQuery(`SELECT name, root_type, root FROM x_docs`)
	if reg.Data[0][0] != "book1" || reg.Data[0][1] != "book" {
		t.Errorf("registry = %v", reg.Data[0])
	}
}

func TestLoadArticleWithReference(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	if _, err := l.LoadXML(paper.ArticleXML, "a1"); err != nil {
		t.Fatal(err)
	}
	// The contactauthor IDREF resolves to the wlee author row.
	rows := db.MustQuery(`
SELECT r.refvalue, r.target_type, n.a_lastname
FROM r_authorid r
JOIN e_author a ON r.target = a.id
JOIN r_Nname nn ON nn.parent = a.id
JOIN e_name n ON nn.child = n.id`)
	if len(rows.Data) != 1 {
		t.Fatalf("ref rows = %v", rows.Data)
	}
	if rows.Data[0][0] != "wlee" || rows.Data[0][1] != "author" || rows.Data[0][2] != "Lee" {
		t.Errorf("resolved ref = %v", rows.Data[0])
	}
	// Group instances: 3 (author, affiliation?) iterations.
	grps := db.MustQuery(`SELECT COUNT(DISTINCT grp) FROM r_NG2`)
	if grps.Data[0][0] != int64(3) {
		t.Errorf("group instances = %v", grps.Data[0][0])
	}
	// Affiliation raw content (ANY).
	raw := db.MustQuery(`SELECT raw FROM e_affiliation ORDER BY id`)
	if len(raw.Data) != 2 || raw.Data[0][0] != "GTE Laboratories" {
		t.Errorf("raw = %v", raw.Data)
	}
}

func TestLoadRecursiveEditor(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	if _, err := l.LoadXML(paper.EditorXML, "e1"); err != nil {
		t.Fatal(err)
	}
	if got := count(t, db, `SELECT COUNT(*) FROM e_editor`); got != 2 {
		t.Errorf("editors = %d", got)
	}
	// The outer editor nests one book and one monograph via NG3.
	rows := db.MustQuery(`SELECT target FROM r_NG3 WHERE parent = 1 ORDER BY ord`)
	if len(rows.Data) != 2 || rows.Data[0][0] != "book" || rows.Data[1][0] != "monograph" {
		t.Errorf("NG3 = %v", rows.Data)
	}
}

func TestUnresolvedReferenceKept(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	xml := `<article><title>T</title>
<author id="a"><name><lastname>L</lastname></name></author>
<contactauthor authorid="ghost"/></article>`
	if _, err := l.LoadXML(xml, "a"); err != nil {
		t.Fatal(err)
	}
	rows := db.MustQuery(`SELECT refvalue, target FROM r_authorid`)
	if rows.Data[0][0] != "ghost" || rows.Data[0][1] != nil {
		t.Errorf("dangling ref = %v", rows.Data[0])
	}
}

func TestLoadInvalidDocuments(t *testing.T) {
	l, _ := setup(t, paper.Example1DTD, ermap.Options{})
	cases := []struct{ name, xml string }{
		{"undeclared element", `<zap/>`},
		{"content mismatch", `<book><author id="q"><name><lastname>x</lastname></name></author></book>`},
		{"undeclared attribute", `<book color="red"><booktitle>X</booktitle><editor name="e"/></book>`},
		{"text in element content", `<monograph>hello<title>T</title></monograph>`},
		{"duplicate id", `<article><title>T</title><author id="a"><name><lastname>x</lastname></name></author><author id="a"><name><lastname>y</lastname></name></author></article>`},
		{"EMPTY with content", `<article><title>T</title><author id="a"><name><lastname>x</lastname></name></author><contactauthor>zz</contactauthor></article>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := l.LoadXML(c.xml, c.name); err == nil {
				t.Errorf("LoadXML(%s) succeeded, want error", c.name)
			}
		})
	}
}

func TestMultipleDocumentsSeparateIDSpaces(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	xml := `<article><title>T</title><author id="same"><name><lastname>L</lastname></name></author><contactauthor authorid="same"/></article>`
	if _, err := l.LoadXML(xml, "d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadXML(xml, "d2"); err != nil {
		t.Fatalf("same ID in second document must be fine: %v", err)
	}
	// Each reference resolves within its own document.
	rows := db.MustQuery(`
SELECT r.doc, a.doc FROM r_authorid r JOIN e_author a ON r.target = a.id ORDER BY r.doc`)
	if len(rows.Data) != 2 {
		t.Fatalf("refs = %v", rows.Data)
	}
	for _, row := range rows.Data {
		if row[0] != row[1] {
			t.Errorf("cross-document resolution: %v", row)
		}
	}
}

func TestFoldFKLoading(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{Strategy: ermap.StrategyFoldFK})
	if _, err := l.LoadXML(paper.BookXML, "b"); err != nil {
		t.Fatal(err)
	}
	// name rows carry their author parent directly.
	rows := db.MustQuery(`
SELECT n.a_firstname FROM e_name n JOIN e_author a ON n.parent = a.id ORDER BY n.id`)
	if len(rows.Data) != 2 || rows.Data[0][0] != "John" {
		t.Errorf("folded parents = %v", rows.Data)
	}
	if db.TableDef("r_Nname") != nil {
		t.Error("r_Nname should not exist under fold")
	}
}

func TestMixedContentLoad(t *testing.T) {
	l, db := setup(t, `
<!ELEMENT para (#PCDATA | em | code)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT code (#PCDATA)>
`, ermap.Options{})
	st, err := l.LoadXML(`<para>alpha <em>beta</em> gamma <code>delta</code>!</para>`, "m")
	if err != nil {
		t.Fatal(err)
	}
	if st.TextChunks != 3 {
		t.Errorf("text chunks = %d, want 3", st.TextChunks)
	}
	// Interleaving preserved by shared ordinals.
	texts := db.MustQuery(`SELECT ord, txt FROM x_text ORDER BY ord`)
	if texts.Data[0][1] != "alpha " || texts.Data[2][1] != "!" {
		t.Errorf("chunks = %v", texts.Data)
	}
	kids := db.MustQuery(`SELECT ord, target FROM r_NGpara ORDER BY ord`)
	if len(kids.Data) != 2 || kids.Data[0][1] != "em" || kids.Data[0][0] != int64(1) {
		t.Errorf("mixed children = %v", kids.Data)
	}
	// txt convenience column holds full text content.
	full := db.MustQuery(`SELECT txt FROM e_para`)
	if full.Data[0][0] != "alpha beta gamma delta!" {
		t.Errorf("para txt = %q", full.Data[0][0])
	}
}

func TestNestedGroupsInsideGroups(t *testing.T) {
	l, db := setup(t, `
<!ELEMENT x ((a, b) | (c, d))>
<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>
`, ermap.Options{})
	if _, err := l.LoadXML(`<x><c/><d/></x>`, "g"); err != nil {
		t.Fatal(err)
	}
	// x links to one virtual entity (the chosen (c, d) branch), which
	// links to c and d.
	outer := db.MustQuery(`SELECT target FROM r_NG3`)
	if len(outer.Data) != 1 || outer.Data[0][0] != "G2" {
		t.Errorf("outer arcs = %v", outer.Data)
	}
	if got := count(t, db, `SELECT COUNT(*) FROM e_G2`); got != 1 {
		t.Errorf("virtual entities = %d", got)
	}
	inner := db.MustQuery(`SELECT target FROM r_NG2 ORDER BY ord`)
	if len(inner.Data) != 2 || inner.Data[0][0] != "c" || inner.Data[1][0] != "d" {
		t.Errorf("inner arcs = %v", inner.Data)
	}
}

func TestRepeatedPCDataLeafStaysEntity(t *testing.T) {
	l, db := setup(t, `
<!ELEMENT list (item*)>
<!ELEMENT item (#PCDATA)>
`, ermap.Options{})
	if _, err := l.LoadXML(`<list><item>one</item><item>two</item></list>`, "l"); err != nil {
		t.Fatal(err)
	}
	rows := db.MustQuery(`
SELECT i.txt FROM e_item i JOIN r_Nitem g ON g.child = i.id ORDER BY g.ord`)
	if len(rows.Data) != 2 || rows.Data[0][0] != "one" || rows.Data[1][0] != "two" {
		t.Errorf("items = %v", rows.Data)
	}
}

func TestIDREFSLoad(t *testing.T) {
	l, db := setup(t, `
<!ELEMENT net (node*)>
<!ELEMENT node EMPTY>
<!ATTLIST node id ID #REQUIRED peers IDREFS #IMPLIED>
`, ermap.Options{})
	if _, err := l.LoadXML(`<net><node id="n1"/><node id="n2" peers="n1 n3"/><node id="n3" peers="n1"/></net>`, "n"); err != nil {
		t.Fatal(err)
	}
	rows := db.MustQuery(`SELECT refvalue, ord FROM r_peers ORDER BY source, ord`)
	if len(rows.Data) != 3 {
		t.Fatalf("refs = %v", rows.Data)
	}
	if rows.Data[0][0] != "n1" || rows.Data[0][1] != int64(0) || rows.Data[1][0] != "n3" || rows.Data[1][1] != int64(1) {
		t.Errorf("ordered refs = %v", rows.Data)
	}
}

func TestAttributeDefaultsStored(t *testing.T) {
	l, db := setup(t, `
<!ELEMENT doc EMPTY>
<!ATTLIST doc lang CDATA "en" status (draft | final) "draft">
`, ermap.Options{})
	if _, err := l.LoadXML(`<doc status="final"/>`, "d"); err != nil {
		t.Fatal(err)
	}
	rows := db.MustQuery(`SELECT a_lang, a_status FROM e_doc`)
	if rows.Data[0][0] != "en" || rows.Data[0][1] != "final" {
		t.Errorf("defaults = %v", rows.Data[0])
	}
}

func TestMetaTablesPopulated(t *testing.T) {
	_, db := setup(t, paper.Example1DTD, ermap.Options{})
	if got := count(t, db, `SELECT COUNT(*) FROM meta_elements`); got != 12 {
		t.Errorf("meta_elements = %d", got)
	}
	if got := count(t, db, `SELECT COUNT(*) FROM meta_distilled`); got != 5 {
		t.Errorf("meta_distilled = %d", got)
	}
	rows := db.MustQuery(`SELECT model_text FROM meta_elements WHERE name = 'book'`)
	if rows.Data[0][0] != "(booktitle, (author* | editor))" {
		t.Errorf("model text = %v", rows.Data[0][0])
	}
	rows = db.MustQuery(`SELECT table_name FROM meta_mapping WHERE kind = 'entity' AND name = 'author'`)
	if rows.Data[0][0] != "e_author" {
		t.Errorf("mapping = %v", rows.Data)
	}
	if got := count(t, db, `SELECT COUNT(*) FROM meta_existence`); got != 1 {
		t.Errorf("existence = %d", got)
	}
}

func TestConcurrentLoading(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	docs := 16
	errc := make(chan error, docs)
	for i := 0; i < docs; i++ {
		go func() {
			_, err := l.LoadXML(paper.BookXML, "c")
			errc <- err
		}()
	}
	for i := 0; i < docs; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := count(t, db, `SELECT COUNT(*) FROM e_book`); got != int64(docs) {
		t.Errorf("books = %d", got)
	}
	if got := count(t, db, `SELECT COUNT(DISTINCT doc) FROM e_book`); got != int64(docs) {
		t.Errorf("distinct docs = %d", got)
	}
}

func TestStatsCounts(t *testing.T) {
	l, _ := setup(t, paper.Example1DTD, ermap.Options{})
	st, err := l.LoadXML(paper.ArticleXML, "s")
	if err != nil {
		t.Fatal(err)
	}
	if st.RefRows != 1 {
		t.Errorf("ref rows = %d", st.RefRows)
	}
	if st.RelRows == 0 || st.Elements == 0 {
		t.Errorf("stats = %+v", st)
	}
	if !strings.Contains(paper.ArticleXML, "contactauthor") {
		t.Fatal("fixture sanity")
	}
}
