// Package shred implements the paper's §5 data-loading algorithm: it
// traverses the DOM tree of an XML document and downloads the data items
// into the relational tables of the ER mapping, maintaining the ordering
// metadata (ordinal columns), group-instance numbers, mixed-content text
// chunks, and ID/IDREF resolution the paper's metadata design calls for.
//
// Children of an element are assigned to relationship instances by
// deriving the child-element sequence against the step-1 (grouped)
// content model, so every NESTED_GROUP instance — including groups
// nested inside groups, which surface as virtual entities — is
// identified exactly. Parents are inserted before their children, so
// the engine's foreign-key enforcement can stay on during loading.
package shred

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmlrdb/internal/cmodel"
	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/er"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/rel"
	"xmlrdb/internal/xmltree"
)

// Engine is the storage surface the loader writes through (satisfied by
// *engine.DB).
type Engine interface {
	// Insert appends one row in column order.
	Insert(table string, row []any) (int, error)
	// InsertMap appends one row given as column->value; omitted columns
	// are NULL.
	InsertMap(table string, vals map[string]any) (int, error)
}

// BatchEngine is an Engine that can also apply many rows of one table
// under a single lock acquisition (satisfied by *engine.DB). LoadCorpus
// uses it to flush whole documents as per-table batches.
type BatchEngine interface {
	Engine
	// InsertBatch atomically appends rows in column order.
	InsertBatch(table string, rows [][]any) (int, error)
}

// MultiBatchEngine is a BatchEngine that can apply batches to several
// tables as one atomic unit (satisfied by *engine.DB). When the engine
// offers it, a staged document flushes as a single multi-table batch —
// on a durable engine that is one write-ahead-log frame, so a crash
// mid-corpus loses only in-flight documents, never part of one.
type MultiBatchEngine interface {
	BatchEngine
	// InsertBatchMulti atomically appends per-table batches in slice
	// order.
	InsertBatchMulti(tables []string, batches [][][]any) (int, error)
}

// Scanner is the read surface ResumeFrom needs (satisfied by
// *engine.DB).
type Scanner interface {
	// TableNames returns the stored tables.
	TableNames() []string
	// ScanTable visits every live row; returning false stops the scan.
	ScanTable(name string, fn func(row []any) bool) error
}

// Loader shreds documents conforming to one mapped DTD into an engine
// database. It is safe for concurrent use: LoadDocument, LoadStaged and
// LoadCorpus may be called from multiple goroutines at once — document
// and per-entity row ids come from atomic counters, and all other
// loader state is immutable after NewLoader.
type Loader struct {
	res     *core.Result
	mapping *ermap.Mapping
	db      Engine

	groupBody map[string]*dtd.Particle
	groupRel  map[string]*core.Rel
	nestedRel map[string]map[string]*core.Rel
	refRels   map[string][]*core.Rel
	distilled map[string]map[string]bool

	// defs and flushOrder drive staged (batched) loading: defs maps
	// table names to their schemas; flushOrder is a parents-before-
	// children table order, nil when the FK graph is cyclic.
	defs       map[string]*rel.Table
	flushOrder []string

	nextID  map[string]*atomic.Int64
	nextDoc atomic.Int64

	// obsM and tracer are the observability hooks: per-document shred
	// time, row counts, flush fallbacks and corpus worker utilization.
	// Both nil by default; set before concurrent use.
	obsM   *obs.Metrics
	tracer obs.Tracer
}

// SetObserver attaches a metrics hub and tracer (either may be nil).
// Attach before loading concurrently.
func (l *Loader) SetObserver(m *obs.Metrics, tr obs.Tracer) {
	l.obsM = m
	l.tracer = tr
}

// Stats reports what one document contributed.
type Stats struct {
	// DocID is the assigned document number.
	DocID int64
	// Elements, RelRows, RefRows and TextChunks count inserted rows.
	Elements, RelRows, RefRows, TextChunks int
}

// NewLoader builds a loader for a mapping. The engine database must
// already contain the mapping's schema.
func NewLoader(res *core.Result, m *ermap.Mapping, db Engine) (*Loader, error) {
	l := &Loader{
		res:       res,
		mapping:   m,
		db:        db,
		groupBody: make(map[string]*dtd.Particle),
		groupRel:  make(map[string]*core.Rel),
		nestedRel: make(map[string]map[string]*core.Rel),
		refRels:   make(map[string][]*core.Rel),
		distilled: make(map[string]map[string]bool),
		defs:      make(map[string]*rel.Table, len(m.Schema.Tables)),
		nextID:    make(map[string]*atomic.Int64, len(m.Entities)),
	}
	for name := range m.Entities {
		l.nextID[name] = new(atomic.Int64)
	}
	for _, t := range m.Schema.Tables {
		l.defs[t.Name] = t
	}
	l.flushOrder = flushOrderFor(m.Schema)
	relByParticle := make(map[*dtd.Particle]*core.Rel)
	for _, r := range res.Converted.Rels {
		switch r.Kind {
		case er.RelNestedGroup:
			relByParticle[r.Particle] = r
		case er.RelNested:
			if l.nestedRel[r.Parent] == nil {
				l.nestedRel[r.Parent] = make(map[string]*core.Rel)
			}
			l.nestedRel[r.Parent][r.Child] = r
		case er.RelReference:
			l.refRels[r.Parent] = append(l.refRels[r.Parent], r)
		}
	}
	for i := range res.Groups {
		g := &res.Groups[i]
		l.groupBody[g.Name] = g.Particle
		r := relByParticle[g.Particle]
		if r == nil {
			return nil, fmt.Errorf("shred: group %s has no relationship declaration", g.Name)
		}
		l.groupRel[g.Name] = r
	}
	for _, e := range res.Metadata.Distilled {
		if l.distilled[e.Parent] == nil {
			l.distilled[e.Parent] = make(map[string]bool)
		}
		l.distilled[e.Parent][e.Attr] = true
	}
	return l, nil
}

// ResumeFrom seeds the loader's document and per-entity id counters
// from rows already stored in db, so documents loaded after reopening a
// durable database continue the id sequences instead of colliding with
// recovered rows. Call it once, before loading.
func (l *Loader) ResumeFrom(db Scanner) error {
	stored := make(map[string]bool)
	for _, name := range db.TableNames() {
		stored[name] = true
	}
	maxOf := func(table, col string) (int64, error) {
		def := l.defs[table]
		if def == nil || !stored[table] {
			return 0, nil
		}
		_, pos := def.Column(col)
		if pos < 0 {
			return 0, nil
		}
		var max int64
		err := db.ScanTable(table, func(row []any) bool {
			if v, ok := row[pos].(int64); ok && v > max {
				max = v
			}
			return true
		})
		return max, err
	}
	// Every mapped table carries the document number; taking the global
	// maximum works with or without the x_docs system table.
	var maxDoc int64
	for name := range l.defs {
		v, err := maxOf(name, "doc")
		if err != nil {
			return fmt.Errorf("shred: resume: %w", err)
		}
		if v > maxDoc {
			maxDoc = v
		}
	}
	if maxDoc > l.nextDoc.Load() {
		l.nextDoc.Store(maxDoc)
	}
	for entity, ctr := range l.nextID {
		v, err := maxOf(l.mapping.EntityTable(entity), "id")
		if err != nil {
			return fmt.Errorf("shred: resume: %w", err)
		}
		if v > ctr.Load() {
			ctr.Store(v)
		}
	}
	return nil
}

// LoadXML parses and loads one document given as XML text.
func (l *Loader) LoadXML(src, name string) (Stats, error) {
	doc, err := xmltree.ParseWith(src, xmltree.Options{ExternalDTD: l.res.Original})
	if err != nil {
		return Stats{}, fmt.Errorf("shred: %w", err)
	}
	return l.LoadDocument(doc, name)
}

// LoadDocument shreds one parsed document into the database, one row
// insert at a time.
func (l *Loader) LoadDocument(doc *xmltree.Document, name string) (Stats, error) {
	start := time.Now()
	st, err := l.loadVia(l.db, doc, name)
	l.observeDoc(name, start, st, err)
	return st, err
}

// observeDoc records one document load into the metrics and tracer.
func (l *Loader) observeDoc(name string, start time.Time, st Stats, err error) {
	if l.obsM == nil && l.tracer == nil {
		return
	}
	d := time.Since(start)
	rows := st.Elements + st.RelRows + st.RefRows + st.TextChunks
	if l.obsM != nil {
		if err != nil {
			l.obsM.DocsFailed.Inc()
		} else {
			l.obsM.DocsLoaded.Inc()
			l.obsM.ShredLatency.ObserveDuration(d)
			l.obsM.DocRows.Observe(int64(rows))
		}
	}
	if l.tracer != nil {
		ev := obs.Event{Scope: "shred", Name: "document", Detail: name, Dur: d,
			Attrs: []obs.Attr{{Key: "rows", Val: rows}}}
		if err != nil {
			ev.Err = err.Error()
		}
		l.tracer.Emit(ev)
	}
}

// loadVia shreds one document, writing every row through the given
// engine (the live database, or a stagedBatch during batched loading).
func (l *Loader) loadVia(db Engine, doc *xmltree.Document, name string) (Stats, error) {
	if doc.Root == nil {
		return Stats{}, fmt.Errorf("shred: document %q has no root element", name)
	}
	st := &docState{
		l:       l,
		db:      db,
		ids:     make(map[string][2]any),
		deriver: cmodel.NewDeriver(func(n string) *dtd.Particle { return l.groupBody[n] }),
	}
	st.docID = l.allocDoc()
	rootID, err := st.element(doc.Root, nil)
	if err != nil {
		return Stats{}, fmt.Errorf("shred: document %q: %w", name, err)
	}
	if err := st.resolveRefs(); err != nil {
		return Stats{}, fmt.Errorf("shred: document %q: %w", name, err)
	}
	if _, err := db.Insert("x_docs", []any{st.docID, name, doc.Root.Name, rootID}); err != nil {
		return Stats{}, err
	}
	st.stats.DocID = st.docID
	return st.stats, nil
}

// LoadStaged shreds one document into per-table row batches and flushes
// them through the engine's batch API, so a whole document costs a
// handful of lock acquisitions instead of one per row. Constraint
// violations surface at flush time rather than mid-traversal. Falls
// back to LoadDocument when the engine has no batch support.
func (l *Loader) LoadStaged(doc *xmltree.Document, name string) (Stats, error) {
	be, ok := l.db.(BatchEngine)
	if !ok {
		return l.LoadDocument(doc, name)
	}
	start := time.Now()
	st, err := l.loadStagedVia(be, doc, name)
	l.observeDoc(name, start, st, err)
	return st, err
}

func (l *Loader) loadStagedVia(be BatchEngine, doc *xmltree.Document, name string) (Stats, error) {
	stg := &stagedBatch{defs: l.defs}
	st, err := l.loadVia(stg, doc, name)
	if err != nil {
		return Stats{}, err
	}
	if l.flushOrder == nil && l.obsM != nil {
		l.obsM.FlushFallbacks.Inc()
	}
	if err := stg.flush(be, l.flushOrder); err != nil {
		return Stats{}, fmt.Errorf("shred: document %q: %w", name, err)
	}
	return st, nil
}

// LoadCorpus shreds many documents concurrently with a pool of workers
// (workers <= 0 uses GOMAXPROCS). Each worker stages one document at a
// time and flushes it as per-table batches in parents-before-children
// order, so the engine's foreign-key enforcement stays on throughout.
// Document i is registered under the name "doc-i". It returns the
// per-document stats in input order; on error the corpus may be
// partially loaded (whole documents only — a document either flushes
// its batches or contributes nothing past the failed one). Failures
// carry per-document context: the error is a *CorpusError whose Docs
// list each failed document's index, name and cause.
func (l *Loader) LoadCorpus(docs []*xmltree.Document, workers int) ([]Stats, error) {
	return l.LoadCorpusNamed(docs, nil, workers)
}

// LoadCorpusNamed is LoadCorpus with explicit document names; names may
// be nil or shorter than docs, in which case document i falls back to
// "doc-i".
func (l *Loader) LoadCorpusNamed(docs []*xmltree.Document, names []string, workers int) ([]Stats, error) {
	return l.LoadCorpusContext(context.Background(), docs, names, workers)
}

// LoadCorpusContext is LoadCorpusNamed with cancellation: when ctx is
// cancelled no further documents start (in-flight ones finish and their
// flushes stay atomic) and the context's error is returned unless a
// document failure already occurred. A panic inside a per-document
// worker is recovered and reported as that document's *DocError instead
// of taking the process down.
func (l *Loader) LoadCorpusContext(ctx context.Context, docs []*xmltree.Document, names []string, workers int) ([]Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	stats := make([]Stats, len(docs))
	jobs := make(chan int)
	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		docErrs []*DocError
		failed  atomic.Bool
		busy    atomic.Int64
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() || ctx.Err() != nil {
					continue
				}
				name := fmt.Sprintf("doc-%d", i)
				if i < len(names) && names[i] != "" {
					name = names[i]
				}
				t0 := time.Now()
				st, err := l.loadStagedGuard(docs[i], name)
				busy.Add(int64(time.Since(t0)))
				if err != nil {
					failed.Store(true)
					errMu.Lock()
					docErrs = append(docErrs, &DocError{Index: i, Name: name, Err: err})
					errMu.Unlock()
					continue
				}
				stats[i] = st
			}
		}()
	}
feed:
	for i := range docs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)
	if l.obsM != nil && workers > 0 {
		l.obsM.CorpusRuns.Inc()
		l.obsM.WorkerBusy.Add(busy.Load())
		l.obsM.WorkerCapacity.Add(int64(wall) * int64(workers))
	}
	if l.tracer != nil {
		util := 0.0
		if wall > 0 && workers > 0 {
			util = float64(busy.Load()) / (float64(wall) * float64(workers))
		}
		ev := obs.Event{Scope: "shred", Name: "corpus", Dur: wall, Attrs: []obs.Attr{
			{Key: "docs", Val: len(docs)},
			{Key: "workers", Val: workers},
			{Key: "failed", Val: len(docErrs)},
			{Key: "utilization", Val: fmt.Sprintf("%.2f", util)},
		}}
		l.tracer.Emit(ev)
	}
	if len(docErrs) > 0 {
		sort.Slice(docErrs, func(i, j int) bool { return docErrs[i].Index < docErrs[j].Index })
		return stats, &CorpusError{Docs: docErrs}
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	return stats, nil
}

// loadStagedGuard is LoadStaged behind a panic fence: a shredder bug or
// a nil document surfaces as an error on that document, not a crash of
// the whole corpus load.
func (l *Loader) loadStagedGuard(doc *xmltree.Document, name string) (st Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			st = Stats{}
			err = fmt.Errorf("shred: panic loading document %q: %v", name, r)
		}
	}()
	return l.LoadStaged(doc, name)
}

func (l *Loader) allocDoc() int64 {
	return l.nextDoc.Add(1)
}

// allocID returns the next row id of an entity. The counter exists for
// every entity of the mapping; callers check the entity is mapped
// before allocating.
func (l *Loader) allocID(entity string) int64 {
	return l.nextID[entity].Add(1)
}

// foldLink carries the parent reference stored on a child row when its
// nesting relationship was folded (StrategyFoldFK).
type foldLink struct {
	parentID int64
	ord      int
}

type pendingRef struct {
	rel      *core.Rel
	sourceID int64
	value    string
	ord      int
}

type docState struct {
	l       *Loader
	db      Engine // the live database, or a stagedBatch
	docID   int64
	deriver *cmodel.Deriver
	ids     map[string][2]any // ID value -> {entity name, row id}
	refs    []pendingRef
	stats   Stats
}

// element loads one element subtree and returns its entity row id. The
// parent row is inserted before any children, with distilled attribute
// values already in place.
func (st *docState) element(el *xmltree.Node, fold *foldLink) (int64, error) {
	l := st.l
	ce := l.res.Converted.Element(el.Name)
	em := l.mapping.Entities[el.Name]
	if ce == nil || em == nil {
		return 0, fmt.Errorf("element type %q is not part of the mapped DTD (at %s)", el.Name, el.Path())
	}
	id := l.allocID(el.Name)
	row := map[string]any{"id": id, "doc": st.docID}
	if fold != nil {
		row["parent"] = fold.parentID
		row["ord"] = int64(fold.ord)
	}

	// XML attributes (including DTD defaults applied by the parser).
	refByAttr := make(map[string]*core.Rel)
	for _, r := range l.refRels[el.Name] {
		refByAttr[r.ViaAttr] = r
	}
	declaredID, _ := l.res.Original.IDAttr(el.Name)
	for _, a := range el.Attrs {
		if r, isRef := refByAttr[a.Name]; isRef {
			toks := []string{a.Value}
			if r.Multiple {
				toks = strings.Fields(a.Value)
			}
			for i, tok := range toks {
				st.refs = append(st.refs, pendingRef{rel: r, sourceID: id, value: tok, ord: i})
			}
			continue
		}
		col, known := em.AttrCols[a.Name]
		if !known {
			return 0, fmt.Errorf("attribute %q of %q is not declared (at %s)", a.Name, el.Name, el.Path())
		}
		row[col] = a.Value
		if a.Name == declaredID {
			if _, dup := st.ids[a.Value]; dup {
				return 0, fmt.Errorf("duplicate ID %q (at %s)", a.Value, el.Path())
			}
			st.ids[a.Value] = [2]any{el.Name, id}
		}
	}

	// Derive element content and fill distilled attribute values before
	// the row is inserted.
	var deriv *cmodel.Deriv
	var children []*xmltree.Node
	switch ce.Kind {
	case core.ConvEmpty:
		if el.HasElementChildren() || strings.TrimSpace(el.Text()) != "" {
			return 0, fmt.Errorf("element %q is declared EMPTY but has content (at %s)", el.Name, el.Path())
		}
	case core.ConvAny:
		row["raw"] = innerXML(el)
	case core.ConvPCData:
		if el.HasElementChildren() {
			return 0, fmt.Errorf("element %q is (#PCDATA) but has element children (at %s)", el.Name, el.Path())
		}
		row["txt"] = el.Text()
	case core.ConvBare:
		if ce.MixedText {
			row["txt"] = el.Text()
			break
		}
		if t := strings.TrimSpace(el.DirectText()); t != "" {
			return 0, fmt.Errorf("element %q has element content but contains text %q (at %s)",
				el.Name, t, el.Path())
		}
		decl := l.res.Grouped.Element(el.Name)
		if decl == nil {
			return 0, fmt.Errorf("no grouped declaration for %q", el.Name)
		}
		children = el.ChildElements()
		names := make([]string, len(children))
		for i, c := range children {
			names[i] = c.Name
		}
		var err error
		deriv, err = st.deriver.Derive(decl.Content.Particle, names)
		if err != nil {
			return 0, fmt.Errorf("content of %q does not match its model (at %s): %w", el.Name, el.Path(), err)
		}
		// Distilled values.
		if deriv != nil && len(deriv.Reps) > 0 {
			for _, itemDeriv := range deriv.Reps[0].Children {
				p := itemDeriv.Particle
				if p.Kind == dtd.PKName && l.distilled[el.Name] != nil && l.distilled[el.Name][p.Name] {
					for _, rep := range itemDeriv.Reps {
						row[em.AttrCols[p.Name]] = children[rep.Index].Text()
					}
				}
			}
		}
	}

	if _, err := st.db.InsertMap(em.Table, row); err != nil {
		return 0, fmt.Errorf("at %s: %w", el.Path(), err)
	}
	st.stats.Elements++

	// Children after the parent row exists.
	switch {
	case ce.Kind == core.ConvBare && ce.MixedText:
		if err := st.mixedContent(el, id); err != nil {
			return 0, err
		}
	case deriv != nil && len(deriv.Reps) > 0:
		nextOrd := len(children)
		for _, itemDeriv := range deriv.Reps[0].Children {
			if err := st.item(el, id, itemDeriv, children, &nextOrd); err != nil {
				return 0, err
			}
		}
	}
	return id, nil
}

// innerXML serializes the children of an element (the stored form of
// ANY content).
func innerXML(el *xmltree.Node) string {
	var b strings.Builder
	for _, c := range el.Children {
		b.WriteString(c.XML())
	}
	return b.String()
}

// mixedContent loads mixed-content children: element children attach to
// the single mixed nested-group relationship; text chunks go to x_text.
// Ordinals number all child nodes so interleaving is preserved.
func (st *docState) mixedContent(el *xmltree.Node, parentID int64) error {
	l := st.l
	var mixRel *core.Rel
	for _, r := range l.res.Converted.RelsOf(el.Name) {
		if r.Kind == er.RelNestedGroup {
			mixRel = r
			break
		}
	}
	for ord, c := range el.Children {
		switch c.Kind {
		case xmltree.TextNode:
			if c.Data == "" {
				continue
			}
			if _, err := st.db.Insert("x_text", []any{st.docID, el.Name, parentID, ord, c.Data}); err != nil {
				return err
			}
			st.stats.TextChunks++
		case xmltree.ElementNode:
			if mixRel == nil {
				return fmt.Errorf("element %q in mixed content of %q has no relationship (at %s)",
					c.Name, el.Name, el.Path())
			}
			if err := st.loadChild(mixRel, parentID, c, ord, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// item processes one top-level content item: distilled names were
// already consumed; group references and plain nested names load
// children and relationship rows.
func (st *docState) item(el *xmltree.Node, parentID int64, d *cmodel.Deriv, children []*xmltree.Node, nextOrd *int) error {
	l := st.l
	p := d.Particle
	if p.Kind != dtd.PKName {
		return fmt.Errorf("internal: non-name item %s in content of %q after step 1", p, el.Name)
	}
	switch {
	case l.distilled[el.Name] != nil && l.distilled[el.Name][p.Name]:
		return nil // already folded into the parent row
	case l.groupBody[p.Name] != nil:
		rel := l.groupRel[p.Name]
		for grpIdx, rep := range d.Reps {
			if err := st.groupInstance(rel, parentID, rep.Body, children, grpIdx, nextOrd); err != nil {
				return err
			}
		}
		return nil
	default:
		rel := l.nestedRel[el.Name][p.Name]
		if rel == nil {
			return fmt.Errorf("no NESTED relationship for %s/%s", el.Name, p.Name)
		}
		for _, rep := range d.Reps {
			if err := st.loadChild(rel, parentID, children[rep.Index], rep.Index, nil); err != nil {
				return err
			}
		}
		return nil
	}
}

// groupInstance loads one instance of a nested group. Groups nested
// inside the body surface as virtual entity rows.
func (st *docState) groupInstance(rel *core.Rel, parentID int64, body *cmodel.Deriv, children []*xmltree.Node, grpIdx int, nextOrd *int) error {
	l := st.l
	var walk func(d *cmodel.Deriv) error
	walk = func(d *cmodel.Deriv) error {
		p := d.Particle
		if p.Kind == dtd.PKName {
			if l.groupBody[p.Name] != nil {
				innerRel := l.groupRel[p.Name]
				for innerIdx, rep := range d.Reps {
					ord := ordOfBody(rep.Body, nextOrd)
					vid, err := st.virtualEntity(rel, p.Name, parentID, ord, groupVal(rel, grpIdx))
					if err != nil {
						return err
					}
					if err := st.groupInstance(innerRel, vid, rep.Body, children, innerIdx, nextOrd); err != nil {
						return err
					}
				}
				return nil
			}
			for _, rep := range d.Reps {
				if err := st.loadChild(rel, parentID, children[rep.Index], rep.Index, groupVal(rel, grpIdx)); err != nil {
					return err
				}
			}
			return nil
		}
		for _, rep := range d.Reps {
			for _, c := range rep.Children {
				if err := walk(c); err != nil {
					return err
				}
			}
			if rep.Chosen != nil {
				if err := walk(rep.Chosen); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(body)
}

// loadChild loads one child element and links it to the relationship —
// via a junction row, or via parent columns on the child when folded.
func (st *docState) loadChild(rel *core.Rel, parentID int64, child *xmltree.Node, ord int, grp any) error {
	l := st.l
	rm := l.mapping.Rels[rel.Name]
	if rm == nil {
		return fmt.Errorf("internal: relationship %q has no mapping", rel.Name)
	}
	if rm.Folded {
		_, err := st.element(child, &foldLink{parentID: parentID, ord: ord})
		return err
	}
	childID, err := st.element(child, nil)
	if err != nil {
		return err
	}
	vals := map[string]any{
		"doc": st.docID, "parent": parentID, "child": childID, "ord": int64(ord),
	}
	if !rm.SingleTarget {
		vals["target"] = child.Name
	}
	if grp != nil {
		vals["grp"] = grp
	}
	if _, err := st.db.InsertMap(rm.Table, vals); err != nil {
		return err
	}
	st.stats.RelRows++
	return nil
}

// virtualEntity inserts a row for a virtual (group) entity instance and
// links it to its enclosing relationship.
func (st *docState) virtualEntity(rel *core.Rel, entity string, parentID int64, ord int, grp any) (int64, error) {
	l := st.l
	em := l.mapping.Entities[entity]
	if em == nil {
		return 0, fmt.Errorf("internal: no entity for virtual group %q", entity)
	}
	rm := l.mapping.Rels[rel.Name]
	vid := l.allocID(entity)
	row := map[string]any{"id": vid, "doc": st.docID}
	if rm != nil && rm.Folded {
		row["parent"] = parentID
		row["ord"] = int64(ord)
	}
	if _, err := st.db.InsertMap(em.Table, row); err != nil {
		return 0, err
	}
	st.stats.Elements++
	if rm != nil && !rm.Folded {
		vals := map[string]any{
			"doc": st.docID, "parent": parentID, "child": vid, "ord": int64(ord),
		}
		if !rm.SingleTarget {
			vals["target"] = entity
		}
		if grp != nil {
			vals["grp"] = grp
		}
		if _, err := st.db.InsertMap(rm.Table, vals); err != nil {
			return 0, err
		}
		st.stats.RelRows++
	}
	return vid, nil
}

// groupVal returns the grp column value for relationships that track
// group instances, nil otherwise.
func groupVal(rel *core.Rel, grpIdx int) any {
	if rel.Kind == er.RelNestedGroup && rel.GroupOcc.Repeatable() {
		return int64(grpIdx)
	}
	return nil
}

// ordOfBody picks the ordinal for a virtual group row: the first
// document position it covers, or a fresh ordinal past the real
// children when the instance matched nothing.
func ordOfBody(body *cmodel.Deriv, nextOrd *int) int {
	if idxs := body.Indexes(); len(idxs) > 0 {
		return idxs[0]
	}
	ord := *nextOrd
	*nextOrd++
	return ord
}

// resolveRefs resolves and inserts the document's pending IDREF rows.
func (st *docState) resolveRefs() error {
	l := st.l
	for _, ref := range st.refs {
		rm := l.mapping.Rels[ref.rel.Name]
		vals := map[string]any{
			"doc": st.docID, "source": ref.sourceID,
			"refvalue": ref.value, "ord": int64(ref.ord),
		}
		if hit, ok := st.ids[ref.value]; ok {
			vals["target_type"] = hit[0]
			vals["target"] = hit[1]
		}
		if _, err := st.db.InsertMap(rm.Table, vals); err != nil {
			return err
		}
		st.stats.RefRows++
	}
	return nil
}

// stagedBatch is a write-only Engine that buffers a document's rows as
// runs of consecutive same-table inserts, in exact insert order. It
// lets one worker shred a whole document without touching the shared
// database, then flush it as a few large batches.
type stagedBatch struct {
	defs map[string]*rel.Table
	runs []stagedRun
}

type stagedRun struct {
	table string
	rows  [][]any
}

func (s *stagedBatch) Insert(table string, row []any) (int, error) {
	def := s.defs[table]
	if def == nil {
		return 0, fmt.Errorf("shred: no such table %q", table)
	}
	if len(row) != len(def.Columns) {
		return 0, fmt.Errorf("shred: table %q expects %d values, got %d",
			table, len(def.Columns), len(row))
	}
	s.add(table, row)
	return 0, nil
}

func (s *stagedBatch) InsertMap(table string, vals map[string]any) (int, error) {
	def := s.defs[table]
	if def == nil {
		return 0, fmt.Errorf("shred: no such table %q", table)
	}
	row := make([]any, len(def.Columns))
	for k, v := range vals {
		_, pos := def.Column(k)
		if pos < 0 {
			return 0, fmt.Errorf("shred: table %q has no column %q", table, k)
		}
		row[pos] = v
	}
	s.add(table, row)
	return 0, nil
}

func (s *stagedBatch) add(table string, row []any) {
	if n := len(s.runs); n > 0 && s.runs[n-1].table == table {
		s.runs[n-1].rows = append(s.runs[n-1].rows, row)
		return
	}
	s.runs = append(s.runs, stagedRun{table: table, rows: [][]any{row}})
}

// flush applies the staged rows through the batch API. With a
// parents-before-children table order each table's rows go out as one
// batch; without one (cyclic FK graph, possible under the fold strategy
// with mutually recursive element types) the runs are flushed in exact
// document order, which reproduces the serial loader's semantics. When
// the engine supports multi-table batches the whole document goes out
// as one atomic call, so a crash never leaves a partial document.
func (s *stagedBatch) flush(db BatchEngine, order []string) error {
	tables, batches := s.plan(order)
	if len(tables) == 0 {
		return nil
	}
	if mbe, ok := db.(MultiBatchEngine); ok {
		_, err := mbe.InsertBatchMulti(tables, batches)
		return err
	}
	for i, table := range tables {
		if _, err := db.InsertBatch(table, batches[i]); err != nil {
			return err
		}
	}
	return nil
}

// plan lays the staged runs out as per-table batches ready for flushing:
// one batch per table in the given order, or one per run in document
// order when no order exists.
func (s *stagedBatch) plan(order []string) (tables []string, batches [][][]any) {
	if order == nil {
		for _, run := range s.runs {
			tables = append(tables, run.table)
			batches = append(batches, run.rows)
		}
		return tables, batches
	}
	byTable := make(map[string][][]any, len(s.runs))
	for _, run := range s.runs {
		byTable[run.table] = append(byTable[run.table], run.rows...)
	}
	for _, table := range order {
		rows := byTable[table]
		if len(rows) == 0 {
			continue
		}
		tables = append(tables, table)
		batches = append(batches, rows)
	}
	return tables, batches
}

// flushOrderFor computes a parents-before-children flush order over the
// schema: every table appears after the tables its foreign keys
// reference (self references are fine — within a table, document order
// already puts parents first). It returns nil when the FK graph is
// cyclic; staged loads then fall back to flushing runs in document
// order.
func flushOrderFor(s *rel.Schema) []string {
	index := make(map[string]int, len(s.Tables))
	for i, t := range s.Tables {
		index[t.Name] = i
	}
	indeg := make([]int, len(s.Tables))
	dependents := make([][]int, len(s.Tables))
	for i, t := range s.Tables {
		seen := make(map[int]bool, len(t.ForeignKeys))
		for _, fk := range t.ForeignKeys {
			j, ok := index[fk.RefTable]
			if !ok || j == i || seen[j] {
				continue
			}
			seen[j] = true
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]string, 0, len(s.Tables))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, s.Tables[i].Name)
		for _, j := range dependents[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) != len(s.Tables) {
		return nil
	}
	return order
}
