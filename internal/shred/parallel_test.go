package shred

import (
	"fmt"
	"sync"
	"testing"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/reconstruct"
	"xmlrdb/internal/wgen"
	"xmlrdb/internal/xmltree"
)

// testCorpus generates a small deterministic corpus over a DTD with
// repetition, references and attributes.
func testCorpus(t *testing.T, n int) (*dtd.DTD, []*xmltree.Document) {
	t.Helper()
	d := wgen.GenerateDTD(wgen.DTDConfig{
		Elements: 20, Seed: 11, AttrsPerElement: 2, Levels: 4,
		IDProb: 0.3, IDREFProb: 0.3, OptionalProb: 0.3, RepeatProb: 0.4,
	})
	docs, err := wgen.Corpus(d, n, 11, wgen.DocConfig{MaxRepeat: 3})
	if err != nil {
		t.Fatal(err)
	}
	return d, docs
}

// TestConcurrentLoadDocument proves the Loader itself is safe for
// concurrent LoadDocument calls (atomic id allocation, no shared doc
// state); meaningful under -race.
func TestConcurrentLoadDocument(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	const n = 8
	ids := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doc, err := xmltree.ParseWith(paper.BookXML, xmltree.Options{ExternalDTD: l.res.Original})
			if err != nil {
				t.Error(err)
				return
			}
			st, err := l.LoadDocument(doc, fmt.Sprintf("copy-%d", i))
			if err != nil {
				t.Errorf("load %d: %v", i, err)
				return
			}
			ids[i] = st.DocID
		}(i)
	}
	wg.Wait()
	seen := map[int64]bool{}
	for _, id := range ids {
		if id == 0 || seen[id] {
			t.Fatalf("doc ids not unique: %v", ids)
		}
		seen[id] = true
	}
	if got := count(t, db, `SELECT COUNT(*) FROM e_book`); got != n {
		t.Errorf("books = %d, want %d", got, n)
	}
	if err := db.CheckAllFKs(); err != nil {
		t.Errorf("CheckAllFKs: %v", err)
	}
}

// loadBoth loads the same corpus serially (LoadDocument) and through
// LoadCorpus with the given worker count, returning both databases.
func loadBoth(t *testing.T, d *dtd.DTD, docs []*xmltree.Document, opts ermap.Options, workers int) (serial, parallel *engine.DB) {
	t.Helper()
	res, err := core.Map(d)
	if err != nil {
		t.Fatal(err)
	}
	build := func() (*Loader, *engine.DB) {
		m, err := ermap.Build(res.Model, opts)
		if err != nil {
			t.Fatal(err)
		}
		db := engine.Open()
		if err := db.CreateSchema(m.Schema); err != nil {
			t.Fatal(err)
		}
		l, err := NewLoader(res, m, db)
		if err != nil {
			t.Fatal(err)
		}
		return l, db
	}
	ls, serial := build()
	for i, doc := range docs {
		if _, err := ls.LoadDocument(doc, fmt.Sprintf("doc-%d", i)); err != nil {
			t.Fatalf("serial doc %d: %v", i, err)
		}
	}
	lp, parallel := build()
	sts, err := lp.LoadCorpus(docs, workers)
	if err != nil {
		t.Fatalf("LoadCorpus: %v", err)
	}
	if len(sts) != len(docs) {
		t.Fatalf("stats for %d docs, want %d", len(sts), len(docs))
	}
	return serial, parallel
}

// TestLoadCorpusMatchesSerial checks the parallel staged pipeline
// produces the same per-table row counts as document-at-a-time loading,
// keeps every FK valid, and that each loaded document reconstructs.
func TestLoadCorpusMatchesSerial(t *testing.T) {
	d, docs := testCorpus(t, 12)
	serial, parallel := loadBoth(t, d, docs, ermap.Options{}, 4)
	for _, name := range serial.TableNames() {
		if got, want := parallel.RowCount(name), serial.RowCount(name); got != want {
			t.Errorf("RowCount(%s) = %d parallel, %d serial", name, got, want)
		}
	}
	if err := parallel.CheckAllFKs(); err != nil {
		t.Errorf("CheckAllFKs: %v", err)
	}
}

// TestLoadCorpusRoundTrip reconstructs every document loaded through
// the parallel pipeline and verifies equivalence with the original.
func TestLoadCorpusRoundTrip(t *testing.T) {
	d, docs := testCorpus(t, 6)
	res, err := core.Map(d)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, ermap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open()
	if err := db.CreateSchema(m.Schema); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(res, m, db)
	if err != nil {
		t.Fatal(err)
	}
	sts, err := l.LoadCorpus(docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := reconstruct.New(res, m, db)
	for i, st := range sts {
		if err := r.Verify(st.DocID, docs[i]); err != nil {
			t.Errorf("doc %d: %v", i, err)
		}
	}
}

// TestLoadCorpusRecursiveFold exercises the cyclic-FK fallback: under
// the fold strategy a mutually recursive DTD folds parent FKs into the
// entity tables, so no FK-topological flush order exists and the staged
// batches must flush run-by-run in document order.
func TestLoadCorpusRecursiveFold(t *testing.T) {
	const dtdText = `<!ELEMENT a (b*)> <!ELEMENT b (a*)>`
	d := dtd.MustParse(dtdText)
	docs := []*xmltree.Document{
		xmltree.MustParse(`<a><b><a></a><a><b></b></a></b><b></b></a>`),
		xmltree.MustParse(`<a><b><a><b><a></a></b></a></b></a>`),
	}
	serial, parallel := loadBoth(t, d, docs, ermap.Options{Strategy: ermap.StrategyFoldFK}, 2)
	for _, name := range serial.TableNames() {
		if got, want := parallel.RowCount(name), serial.RowCount(name); got != want {
			t.Errorf("RowCount(%s) = %d parallel, %d serial", name, got, want)
		}
	}
	if err := parallel.CheckAllFKs(); err != nil {
		t.Errorf("CheckAllFKs: %v", err)
	}
}

// TestLoadCorpusNamed checks explicit names land in the registry and
// missing names fall back to doc-i.
func TestLoadCorpusNamed(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	doc := func() *xmltree.Document {
		d, err := xmltree.ParseWith(paper.BookXML, xmltree.Options{ExternalDTD: l.res.Original})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	sts, err := l.LoadCorpusNamed([]*xmltree.Document{doc(), doc()}, []string{"first.xml"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	names := map[int64]string{}
	rows := db.MustQuery(`SELECT doc, name FROM x_docs`)
	for _, r := range rows.Data {
		names[r[0].(int64)] = r[1].(string)
	}
	if got := names[sts[0].DocID]; got != "first.xml" {
		t.Errorf("doc 0 name = %q, want first.xml", got)
	}
	if got := names[sts[1].DocID]; got != "doc-1" {
		t.Errorf("doc 1 name = %q, want doc-1", got)
	}
}

// TestLoadCorpusError checks a failing document aborts the corpus load
// with an error naming it.
func TestLoadCorpusError(t *testing.T) {
	l, _ := setup(t, paper.Example1DTD, ermap.Options{})
	good, err := xmltree.ParseWith(paper.BookXML, xmltree.Options{ExternalDTD: l.res.Original})
	if err != nil {
		t.Fatal(err)
	}
	bad := xmltree.MustParse(`<unmapped></unmapped>`)
	if _, err := l.LoadCorpus([]*xmltree.Document{good, bad}, 2); err == nil {
		t.Fatal("corpus with unmapped root loaded")
	}
}

// plainEngine hides InsertBatch so LoadStaged must fall back to the
// per-row LoadDocument path.
type plainEngine struct{ Engine }

// TestLoadCorpusNonBatchEngine checks the corpus loader still works
// against an Engine without batch support.
func TestLoadCorpusNonBatchEngine(t *testing.T) {
	res, err := core.Map(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, ermap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open()
	if err := db.CreateSchema(m.Schema); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(res, m, plainEngine{db})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseWith(paper.BookXML, xmltree.Options{ExternalDTD: res.Original})
	if err != nil {
		t.Fatal(err)
	}
	sts, err := l.LoadCorpus([]*xmltree.Document{doc}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := count(t, db, `SELECT COUNT(*) FROM e_book`); got != 1 || sts[0].Elements == 0 {
		t.Errorf("books = %d, stats = %+v", got, sts[0])
	}
}
