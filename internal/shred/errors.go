package shred

import (
	"fmt"
	"strings"
)

// DocError is one document's loading failure within a corpus: the
// document's input index and name plus the underlying error.
type DocError struct {
	// Index is the document's position in the input slice.
	Index int
	// Name is the document's registered name.
	Name string
	// Err is the underlying loading error.
	Err error
}

// Error implements error.
func (e *DocError) Error() string {
	return fmt.Sprintf("document %d (%s): %v", e.Index, e.Name, e.Err)
}

// Unwrap returns the underlying error.
func (e *DocError) Unwrap() error { return e.Err }

// CorpusError aggregates the per-document failures of one LoadCorpus
// run, sorted by input index. Multiple workers can fail concurrently
// before the corpus stops, so there may be more than one.
type CorpusError struct {
	// Docs are the failed documents in input order.
	Docs []*DocError
}

// Error implements error.
func (e *CorpusError) Error() string {
	if len(e.Docs) == 1 {
		return "shred: corpus " + e.Docs[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shred: corpus: %d documents failed:", len(e.Docs))
	for _, d := range e.Docs {
		b.WriteString("\n  " + d.Error())
	}
	return b.String()
}

// Unwrap returns the first failed document's error, so errors.Is/As
// reach the underlying cause.
func (e *CorpusError) Unwrap() error {
	if len(e.Docs) == 0 {
		return nil
	}
	return e.Docs[0]
}
