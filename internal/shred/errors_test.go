package shred

import (
	"errors"
	"strings"
	"testing"

	"xmlrdb/internal/ermap"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/xmltree"
)

// TestCorpusErrorContext proves a corpus failure names the failing
// document: its input index, its registered name, and the underlying
// cause — and that the failure is counted in the metrics.
func TestCorpusErrorContext(t *testing.T) {
	l, _ := setup(t, paper.Example1DTD, ermap.Options{})
	m := obs.New()
	l.SetObserver(m, nil)

	good, err := xmltree.ParseWith(paper.BookXML, xmltree.Options{ExternalDTD: l.res.Original})
	if err != nil {
		t.Fatal(err)
	}
	badRoot := xmltree.NewElement("bogus")
	bad := &xmltree.Document{Root: badRoot, Children: []*xmltree.Node{badRoot}}

	docs := []*xmltree.Document{good, bad, good}
	names := []string{"good-0", "bad-doc", "good-2"}
	_, err = l.LoadCorpusNamed(docs, names, 2)
	if err == nil {
		t.Fatal("corpus with an unmappable document loaded cleanly")
	}

	var ce *CorpusError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CorpusError: %v", err, err)
	}
	if len(ce.Docs) != 1 {
		t.Fatalf("failed docs = %d, want 1: %v", len(ce.Docs), ce)
	}
	de := ce.Docs[0]
	if de.Index != 1 || de.Name != "bad-doc" || de.Err == nil {
		t.Errorf("DocError = {Index: %d, Name: %q, Err: %v}, want index 1, name bad-doc",
			de.Index, de.Name, de.Err)
	}
	if msg := err.Error(); !strings.Contains(msg, "document 1 (bad-doc)") {
		t.Errorf("error message lacks doc context: %s", msg)
	}

	s := m.Snapshot()
	if s.Load.DocsFailed != 1 {
		t.Errorf("DocsFailed = %d, want 1", s.Load.DocsFailed)
	}
}

// TestCorpusErrorMultiple checks several concurrent failures are all
// reported, in input order.
func TestCorpusErrorMultiple(t *testing.T) {
	l, _ := setup(t, paper.Example1DTD, ermap.Options{})
	mkBad := func() *xmltree.Document {
		root := xmltree.NewElement("bogus")
		return &xmltree.Document{Root: root, Children: []*xmltree.Node{root}}
	}
	docs := []*xmltree.Document{mkBad(), mkBad(), mkBad()}
	_, err := l.LoadCorpus(docs, 3)
	var ce *CorpusError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CorpusError: %v", err, err)
	}
	if len(ce.Docs) == 0 {
		t.Fatal("no per-document failures recorded")
	}
	for i := 1; i < len(ce.Docs); i++ {
		if ce.Docs[i-1].Index >= ce.Docs[i].Index {
			t.Errorf("failures not in input order: %v", ce.Docs)
		}
	}
	if len(ce.Docs) > 1 && !strings.Contains(err.Error(), "documents failed") {
		t.Errorf("multi-failure message: %s", err.Error())
	}
}

// TestDocErrorUnwrap checks the error chain reaches the cause.
func TestDocErrorUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	de := &DocError{Index: 3, Name: "d3", Err: cause}
	if !errors.Is(de, cause) {
		t.Error("DocError does not unwrap to its cause")
	}
	ce := &CorpusError{Docs: []*DocError{de}}
	if !errors.Is(ce, cause) {
		t.Error("CorpusError does not unwrap to its cause")
	}
}

// TestCorpusMetricsObserved checks a clean corpus run records worker
// accounting and per-document metrics.
func TestCorpusMetricsObserved(t *testing.T) {
	l, _ := setup(t, paper.Example1DTD, ermap.Options{})
	m := obs.New()
	var ct obs.CollectTracer
	l.SetObserver(m, &ct)

	const n = 6
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		doc, err := xmltree.ParseWith(paper.BookXML, xmltree.Options{ExternalDTD: l.res.Original})
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = doc
	}
	if _, err := l.LoadCorpus(docs, 2); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Load.DocsLoaded != n {
		t.Errorf("DocsLoaded = %d, want %d", s.Load.DocsLoaded, n)
	}
	if s.Load.CorpusRuns != 1 {
		t.Errorf("CorpusRuns = %d, want 1", s.Load.CorpusRuns)
	}
	if s.Load.WorkerCapacity == 0 || s.Load.WorkerBusy == 0 {
		t.Errorf("worker accounting empty: busy=%d capacity=%d",
			s.Load.WorkerBusy, s.Load.WorkerCapacity)
	}
	if u := s.WorkerUtilization(); u <= 0 || u > 1 {
		t.Errorf("WorkerUtilization = %v, want (0, 1]", u)
	}
	var corpusEvents int
	for _, ev := range ct.Events() {
		if ev.Scope == "shred" && ev.Name == "corpus" {
			corpusEvents++
		}
	}
	if corpusEvents != 1 {
		t.Errorf("corpus trace events = %d, want 1", corpusEvents)
	}
}
