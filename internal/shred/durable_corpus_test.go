package shred

import (
	"context"
	"errors"
	"strings"
	"testing"

	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/xmltree"
)

func bookDoc(t *testing.T, l *Loader) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseWith(paper.BookXML, xmltree.Options{ExternalDTD: l.res.Original})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestLoadCorpusPanicRecovered checks a panicking per-document worker
// (here: a nil document) is reported as that document's DocError rather
// than crashing the corpus load, and other documents still load.
func TestLoadCorpusPanicRecovered(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	docs := []*xmltree.Document{bookDoc(t, l), nil, bookDoc(t, l)}
	_, err := l.LoadCorpusNamed(docs, []string{"ok-0", "boom", "ok-2"}, 1)
	var ce *CorpusError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorpusError", err)
	}
	found := false
	for _, de := range ce.Docs {
		if de.Name == "boom" {
			found = true
			if !strings.Contains(de.Err.Error(), "panic") {
				t.Errorf("doc error %v does not mention the panic", de.Err)
			}
		}
	}
	if !found {
		t.Fatalf("no DocError for the panicking document: %v", ce)
	}
	// The document before the panic landed whole.
	if got := count(t, db, `SELECT COUNT(*) FROM e_book`); got < 1 {
		t.Errorf("books = %d, want at least the pre-panic document", got)
	}
	if err := db.CheckAllFKs(); err != nil {
		t.Errorf("CheckAllFKs: %v", err)
	}
}

// TestLoadCorpusContextCancelled checks a cancelled context stops the
// corpus load and surfaces the context's error.
func TestLoadCorpusContextCancelled(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	docs := []*xmltree.Document{bookDoc(t, l), bookDoc(t, l), bookDoc(t, l)}
	_, err := l.LoadCorpusContext(ctx, docs, nil, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := count(t, db, `SELECT COUNT(*) FROM e_book`); got != 0 {
		t.Errorf("cancelled before start but loaded %d documents", got)
	}
	if err := db.CheckAllFKs(); err != nil {
		t.Errorf("CheckAllFKs: %v", err)
	}
}

// TestResumeFrom checks a fresh loader over an already-populated
// database continues the document and entity id sequences instead of
// colliding with stored rows.
func TestResumeFrom(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	for i := 0; i < 2; i++ {
		if _, err := l.LoadXML(paper.BookXML, "pre"); err != nil {
			t.Fatal(err)
		}
	}
	// A second loader simulates reopening after recovery: its counters
	// start at zero and must be reseeded from the stored rows.
	l2, err := NewLoader(l.res, l.mapping, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.ResumeFrom(db); err != nil {
		t.Fatal(err)
	}
	st, err := l2.LoadXML(paper.BookXML, "post")
	if err != nil {
		t.Fatalf("load after resume: %v", err)
	}
	if st.DocID != 3 {
		t.Errorf("resumed doc id = %d, want 3", st.DocID)
	}
	// Three whole books, no id collisions, FKs intact.
	if got := count(t, db, `SELECT COUNT(*) FROM e_book`); got != 3 {
		t.Errorf("books = %d, want 3", got)
	}
	ids := db.MustQuery(`SELECT id FROM e_author ORDER BY id`)
	seen := map[int64]bool{}
	for _, r := range ids.Data {
		id := r[0].(int64)
		if seen[id] {
			t.Fatalf("duplicate author id %d after resume", id)
		}
		seen[id] = true
	}
	if err := db.CheckAllFKs(); err != nil {
		t.Errorf("CheckAllFKs: %v", err)
	}
}

// multiRecorder wraps an engine and counts which batch entry points the
// staged flush used.
type multiRecorder struct {
	*engine.DB
	single int
	multi  int
}

func (m *multiRecorder) InsertBatch(table string, rows [][]any) (int, error) {
	m.single++
	return m.DB.InsertBatch(table, rows)
}

func (m *multiRecorder) InsertBatchMulti(tables []string, batches [][][]any) (int, error) {
	m.multi++
	return m.DB.InsertBatchMulti(tables, batches)
}

// TestStagedFlushUsesMultiBatch checks a staged document flushes as one
// atomic multi-table batch when the engine supports it — the property
// that makes a crash lose whole documents only.
func TestStagedFlushUsesMultiBatch(t *testing.T) {
	l, db := setup(t, paper.Example1DTD, ermap.Options{})
	rec := &multiRecorder{DB: db}
	l.db = rec
	if _, err := l.LoadStaged(bookDoc(t, l), "b"); err != nil {
		t.Fatal(err)
	}
	if rec.multi != 1 || rec.single != 0 {
		t.Errorf("flush used %d multi / %d single calls, want 1/0", rec.multi, rec.single)
	}
	if got := count(t, db, `SELECT COUNT(*) FROM e_book`); got != 1 {
		t.Errorf("books = %d", got)
	}
}
