package cmodel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xmlrdb/internal/dtd"
)

// mustParticle parses "<!ELEMENT x SPEC>" and returns x's particle.
func mustParticle(t *testing.T, spec string) *dtd.Particle {
	t.Helper()
	d, err := dtd.Parse("<!ELEMENT x " + spec + ">")
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	cm := d.Element("x").Content
	if cm.Kind != dtd.ContentChildren {
		t.Fatalf("spec %q is not element content", spec)
	}
	return cm.Particle
}

func TestAccepts(t *testing.T) {
	tests := []struct {
		spec   string
		accept []string
		reject []string
	}{
		{
			spec:   "(a)",
			accept: []string{"a"},
			reject: []string{"", "a a", "b"},
		},
		{
			spec:   "(a, b)",
			accept: []string{"a b"},
			reject: []string{"a", "b", "b a", "a b b"},
		},
		{
			spec:   "(a | b)",
			accept: []string{"a", "b"},
			reject: []string{"", "a b", "c"},
		},
		{
			spec:   "(a?, b)",
			accept: []string{"b", "a b"},
			reject: []string{"a", "a a b"},
		},
		{
			spec:   "(a*)",
			accept: []string{"", "a", "a a a a"},
			reject: []string{"b", "a b"},
		},
		{
			spec:   "(a+)",
			accept: []string{"a", "a a"},
			reject: []string{""},
		},
		{
			spec:   "(a, (b | c)*, d?)",
			accept: []string{"a", "a b c b", "a d", "a c d"},
			reject: []string{"", "b", "a d d", "a d b"},
		},
		{
			spec:   "((a, b)+)",
			accept: []string{"a b", "a b a b"},
			reject: []string{"", "a", "a b a"},
		},
		{
			// The paper's book element.
			spec:   "(booktitle, (author* | editor))",
			accept: []string{"booktitle", "booktitle editor", "booktitle author", "booktitle author author"},
			reject: []string{"", "editor", "booktitle author editor", "booktitle editor editor"},
		},
		{
			// The paper's article element.
			spec:   "(title, (author, affiliation?)+, contactauthor?)",
			accept: []string{"title author", "title author affiliation", "title author author affiliation contactauthor"},
			reject: []string{"title", "title affiliation", "title author contactauthor author"},
		},
		{
			// Nested optionality: whole thing nullable.
			spec:   "((a?, b?)*)",
			accept: []string{"", "a", "b", "a b a b", "b b a"},
			reject: []string{"c"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			a := Compile(mustParticle(t, tt.spec))
			for _, s := range tt.accept {
				if !a.Accepts(fields(s)) {
					t.Errorf("%s should accept %q", tt.spec, s)
				}
			}
			for _, s := range tt.reject {
				if a.Accepts(fields(s)) {
					t.Errorf("%s should reject %q", tt.spec, s)
				}
			}
		})
	}
}

func fields(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Fields(s)
}

func TestDeterminism(t *testing.T) {
	det := []string{
		"(a, b)", "(a | b)", "(a*, b)", "((a, b) | (c, d))",
		"(booktitle, (author* | editor))",
	}
	nondet := []string{
		"((a, b) | (a, c))", // classic 1-ambiguous model
		"(a?, a)",
		"((a*)?, a)",
	}
	for _, spec := range det {
		if a := Compile(mustParticle(t, spec)); !a.Deterministic() {
			t.Errorf("%s should be deterministic; conflict: %s", spec, a.Conflict())
		}
	}
	for _, spec := range nondet {
		a := Compile(mustParticle(t, spec))
		if a.Deterministic() {
			t.Errorf("%s should be nondeterministic", spec)
		}
		if a.Conflict() == "" {
			t.Errorf("%s: empty conflict description", spec)
		}
	}
}

func TestNondeterministicModelsStillMatch(t *testing.T) {
	// Subset simulation must handle 1-ambiguous models correctly.
	a := Compile(mustParticle(t, "((a, b) | (a, c))"))
	for _, s := range []string{"a b", "a c"} {
		if !a.Accepts(fields(s)) {
			t.Errorf("should accept %q", s)
		}
	}
	for _, s := range []string{"a", "a b c", "b"} {
		if a.Accepts(fields(s)) {
			t.Errorf("should reject %q", s)
		}
	}
}

func TestEmptyAutomaton(t *testing.T) {
	a := Compile(nil)
	if !a.Accepts(nil) {
		t.Error("nil particle should accept empty sequence")
	}
	if a.Accepts([]string{"a"}) {
		t.Error("nil particle should reject non-empty sequence")
	}
	if !a.Deterministic() {
		t.Error("empty automaton should be deterministic")
	}
}

func TestCompileModel(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT e EMPTY>
<!ELEMENT anyel ANY>
<!ELEMENT m (#PCDATA | a)*>
<!ELEMENT c (a, b)>
`)
	if a := CompileModel(d.Element("e").Content); a == nil || !a.Accepts(nil) || a.Accepts([]string{"a"}) {
		t.Error("EMPTY model should accept only the empty sequence")
	}
	if a := CompileModel(d.Element("anyel").Content); a != nil {
		t.Error("ANY model should compile to nil")
	}
	if a := CompileModel(d.Element("m").Content); a != nil {
		t.Error("mixed model should compile to nil")
	}
	if a := CompileModel(d.Element("c").Content); a == nil || !a.Accepts([]string{"a", "b"}) {
		t.Error("children model should compile and accept")
	}
}

func TestMatcherDiagnostics(t *testing.T) {
	a := Compile(mustParticle(t, "(a, (b | c), d?)"))
	m := a.NewMatcher()
	if got := m.Expected(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Expected at start = %v", got)
	}
	if !m.Step("a") {
		t.Fatal("step a")
	}
	if got := strings.Join(m.Expected(), ","); got != "b,c" {
		t.Errorf("Expected after a = %q", got)
	}
	if m.Accepting() {
		t.Error("should not accept after a")
	}
	if !m.Step("b") {
		t.Fatal("step b")
	}
	if !m.Accepting() {
		t.Error("should accept after a b")
	}
	if !strings.Contains(m.ExpectedString(), "end of content") {
		t.Errorf("ExpectedString = %q", m.ExpectedString())
	}
	if m.Step("x") {
		t.Error("step x should fail")
	}
	if !m.Dead() {
		t.Error("matcher should be dead")
	}
	if m.Step("d") {
		t.Error("dead matcher must reject everything")
	}
	if m.ExpectedString() != "nothing (dead state)" {
		t.Errorf("dead ExpectedString = %q", m.ExpectedString())
	}
}

func TestGenerateAlwaysValid(t *testing.T) {
	specs := []string{
		"(a)", "(a, b)", "(a | b)", "(a?, b*, c+)",
		"(title, (author, affiliation?)+, contactauthor?)",
		"(booktitle, (author* | editor))",
		"((a, b)* , (c | (d, e))+)",
	}
	rng := rand.New(rand.NewSource(42))
	for _, spec := range specs {
		p := mustParticle(t, spec)
		a := Compile(p)
		for i := 0; i < 200; i++ {
			seq := Generate(p, rng, GenOptions{MaxRepeat: 4})
			if !a.Accepts(seq) {
				t.Fatalf("%s: generated invalid sequence %v", spec, seq)
			}
		}
	}
}

func TestGenerateRespectsMaxRepeat(t *testing.T) {
	p := mustParticle(t, "(a+)")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		seq := Generate(p, rng, GenOptions{MaxRepeat: 3})
		if len(seq) < 1 || len(seq) > 3 {
			t.Fatalf("sequence length %d outside [1,3]", len(seq))
		}
	}
}

// TestGlushkovProperty cross-checks the automaton against a slow
// regexp-style recursive matcher on random sequences.
func TestGlushkovProperty(t *testing.T) {
	specs := []string{
		"(a, (b | c)*, d?)",
		"((a, b)+ | c)",
		"(a*, b?, a?)", // nondeterministic but subset simulation handles it
	}
	for _, spec := range specs {
		p := mustParticle(t, spec)
		a := Compile(p)
		f := func(raw []byte) bool {
			seq := make([]string, 0, len(raw)%8)
			for i := 0; i < len(raw)%8 && i < len(raw); i++ {
				seq = append(seq, string(rune('a'+int(raw[i])%4)))
			}
			return a.Accepts(seq) == slowMatch(p, seq)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
}

// slowMatch is an oracle: can particle p derive exactly seq? Implemented
// as a memoized "derives seq[i:j]" check.
func slowMatch(p *dtd.Particle, seq []string) bool {
	return derives(p, seq, 0, len(seq))
}

func derives(p *dtd.Particle, seq []string, i, j int) bool {
	// Handle occurrence by reduction to the base particle.
	base := *p
	base.Occ = dtd.OccOnce
	switch p.Occ {
	case dtd.OccOptional:
		return i == j || derives(&base, seq, i, j)
	case dtd.OccZeroPlus:
		if i == j {
			return true
		}
		fallthrough
	case dtd.OccOnePlus:
		// one or more base matches covering [i,j)
		for k := i + 1; k <= j; k++ {
			if derives(&base, seq, i, k) {
				if k == j {
					return true
				}
				rest := *p
				rest.Occ = dtd.OccZeroPlus
				if derives(&rest, seq, k, j) {
					return true
				}
			}
		}
		return false
	}
	switch p.Kind {
	case dtd.PKName:
		return j == i+1 && seq[i] == p.Name
	case dtd.PKChoice:
		for _, ch := range p.Children {
			if derives(ch, seq, i, j) {
				return true
			}
		}
		return false
	case dtd.PKSequence:
		return derivesSeq(p.Children, seq, i, j)
	}
	return false
}

func derivesSeq(children []*dtd.Particle, seq []string, i, j int) bool {
	if len(children) == 0 {
		return i == j
	}
	for k := i; k <= j; k++ {
		if derives(children[0], seq, i, k) && derivesSeq(children[1:], seq, k, j) {
			return true
		}
	}
	return false
}

func TestPositions(t *testing.T) {
	a := Compile(mustParticle(t, "(a, (b | c)*, a?)"))
	if a.Positions() != 4 {
		t.Errorf("Positions = %d, want 4", a.Positions())
	}
}
