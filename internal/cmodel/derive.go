package cmodel

import (
	"fmt"
	"strings"

	"xmlrdb/internal/dtd"
)

// Deriv is a derivation tree: the proof that an element-name sequence
// matches a content particle, recording which alternative each choice
// took and how many times each repeatable particle iterated. The XML
// shredder walks derivations to assign child elements to the
// relationship (and virtual group-entity) instances of the ER mapping.
type Deriv struct {
	// Particle is the particle this node derives.
	Particle *dtd.Particle
	// Reps holds one entry per iteration of the particle (zero entries
	// when an optional particle matched nothing).
	Reps []Rep
}

// Rep is one iteration of a particle.
type Rep struct {
	// Index is the consumed sequence position for plain name particles;
	// -1 otherwise.
	Index int
	// Children holds one derivation per member of a sequence group.
	Children []*Deriv
	// Chosen is the taken alternative of a choice group.
	Chosen *Deriv
	// Body is the derivation of a resolved (virtual group) name's body.
	Body *Deriv
}

// Deriver derives sequences against content particles, transparently
// expanding "virtual element" names (the G1, G2, ... group elements of
// the mapping's step 1) into their bodies. Derivation is greedy with
// one-token lookahead, which is exact for the deterministic content
// models XML 1.0 requires.
type Deriver struct {
	resolve  func(name string) *dtd.Particle
	firsts   map[*dtd.Particle]map[string]bool
	nullable map[*dtd.Particle]bool
}

// NewDeriver returns a deriver. resolve maps virtual element names to
// their bodies and returns nil for ordinary element names; it may be nil
// when no virtual elements exist.
func NewDeriver(resolve func(name string) *dtd.Particle) *Deriver {
	if resolve == nil {
		resolve = func(string) *dtd.Particle { return nil }
	}
	return &Deriver{
		resolve:  resolve,
		firsts:   make(map[*dtd.Particle]map[string]bool),
		nullable: make(map[*dtd.Particle]bool),
	}
}

// Derive matches the whole sequence against the particle and returns the
// derivation tree. A nil particle derives only the empty sequence.
func (dv *Deriver) Derive(p *dtd.Particle, seq []string) (*Deriv, error) {
	if p == nil {
		if len(seq) != 0 {
			return nil, fmt.Errorf("cmodel: empty content model cannot derive %v", seq)
		}
		return &Deriv{}, nil
	}
	d, rest, err := dv.derive(p, seq, 0)
	if err != nil {
		return nil, err
	}
	if rest != len(seq) {
		return nil, fmt.Errorf("cmodel: trailing content at position %d: %q not permitted by %s",
			rest, seq[rest], p)
	}
	return d, nil
}

func (dv *Deriver) derive(p *dtd.Particle, seq []string, i int) (*Deriv, int, error) {
	d := &Deriv{Particle: p}
	maxReps := 1
	if p.Occ.Repeatable() {
		maxReps = len(seq) - i + 1 // enough for any sequence
	}
	for rep := 0; rep < maxReps; rep++ {
		if !dv.canStart(p, seq, i) {
			if rep == 0 && !p.Occ.Optional() {
				// A required particle may still derive the empty sequence
				// if its base is nullable.
				if dv.isNullableBase(p) {
					r, ni, err := dv.deriveOnce(p, seq, i)
					if err != nil {
						return nil, i, err
					}
					d.Reps = append(d.Reps, r)
					return d, ni, nil
				}
				return nil, i, dv.mismatch(p, seq, i)
			}
			break
		}
		r, ni, err := dv.deriveOnce(p, seq, i)
		if err != nil {
			return nil, i, err
		}
		d.Reps = append(d.Reps, r)
		if ni == i {
			break // empty match; further iterations cannot progress
		}
		i = ni
	}
	return d, i, nil
}

func (dv *Deriver) mismatch(p *dtd.Particle, seq []string, i int) error {
	have := "end of content"
	if i < len(seq) {
		have = fmt.Sprintf("%q", seq[i])
	}
	var want []string
	for n := range dv.first(p) {
		want = append(want, n)
	}
	return fmt.Errorf("cmodel: at position %d: found %s, expected one of {%s} (particle %s)",
		i, have, strings.Join(want, " "), p)
}

// deriveOnce matches one iteration of the particle's base (ignoring its
// occurrence indicator).
func (dv *Deriver) deriveOnce(p *dtd.Particle, seq []string, i int) (Rep, int, error) {
	switch p.Kind {
	case dtd.PKName:
		if body := dv.resolve(p.Name); body != nil {
			sub, ni, err := dv.derive(body, seq, i)
			if err != nil {
				return Rep{}, i, err
			}
			return Rep{Index: -1, Body: sub}, ni, nil
		}
		if i >= len(seq) || seq[i] != p.Name {
			return Rep{}, i, dv.mismatch(p, seq, i)
		}
		return Rep{Index: i}, i + 1, nil
	case dtd.PKSequence:
		rep := Rep{Index: -1}
		for _, ch := range p.Children {
			cd, ni, err := dv.derive(ch, seq, i)
			if err != nil {
				return Rep{}, i, err
			}
			rep.Children = append(rep.Children, cd)
			i = ni
		}
		return rep, i, nil
	case dtd.PKChoice:
		for _, ch := range p.Children {
			if dv.canStart(ch, seq, i) {
				cd, ni, err := dv.derive(ch, seq, i)
				if err != nil {
					return Rep{}, i, err
				}
				return Rep{Index: -1, Chosen: cd}, ni, nil
			}
		}
		// No alternative starts here: take the first nullable one (the
		// choice then derives the empty sequence).
		for _, ch := range p.Children {
			if ch.Occ.Optional() || dv.isNullableBase(ch) {
				cd, ni, err := dv.derive(ch, seq, i)
				if err != nil {
					return Rep{}, i, err
				}
				return Rep{Index: -1, Chosen: cd}, ni, nil
			}
		}
		return Rep{}, i, dv.mismatch(p, seq, i)
	default:
		return Rep{}, i, fmt.Errorf("cmodel: unknown particle kind %v", p.Kind)
	}
}

// canStart reports whether seq[i] can begin a non-empty match of p.
func (dv *Deriver) canStart(p *dtd.Particle, seq []string, i int) bool {
	if i >= len(seq) {
		return false
	}
	return dv.first(p)[seq[i]]
}

// first returns the set of names that can begin a non-empty match of p,
// resolving virtual names through their bodies.
func (dv *Deriver) first(p *dtd.Particle) map[string]bool {
	if f, ok := dv.firsts[p]; ok {
		return f
	}
	f := make(map[string]bool)
	dv.firsts[p] = f // pre-set to terminate on (malformed) cycles
	switch p.Kind {
	case dtd.PKName:
		if body := dv.resolve(p.Name); body != nil {
			for n := range dv.first(body) {
				f[n] = true
			}
		} else {
			f[p.Name] = true
		}
	case dtd.PKChoice:
		for _, ch := range p.Children {
			for n := range dv.first(ch) {
				f[n] = true
			}
		}
	case dtd.PKSequence:
		for _, ch := range p.Children {
			for n := range dv.first(ch) {
				f[n] = true
			}
			if !ch.Occ.Optional() && !dv.isNullableBase(ch) {
				break
			}
		}
	}
	return f
}

// isNullableBase reports whether the particle's base (ignoring its own
// occurrence indicator) can derive the empty sequence.
func (dv *Deriver) isNullableBase(p *dtd.Particle) bool {
	if v, ok := dv.nullable[p]; ok {
		return v
	}
	dv.nullable[p] = false // terminate cycles pessimistically
	var v bool
	switch p.Kind {
	case dtd.PKName:
		if body := dv.resolve(p.Name); body != nil {
			v = body.Occ.Optional() || dv.isNullableBase(body)
		} else {
			v = false
		}
	case dtd.PKSequence:
		v = true
		for _, ch := range p.Children {
			if !ch.Occ.Optional() && !dv.isNullableBase(ch) {
				v = false
				break
			}
		}
	case dtd.PKChoice:
		v = false
		for _, ch := range p.Children {
			if ch.Occ.Optional() || dv.isNullableBase(ch) {
				v = true
				break
			}
		}
	}
	dv.nullable[p] = v
	return v
}

// Indexes returns every consumed sequence position in the derivation, in
// order — useful for verifying that a derivation covers a sequence.
func (d *Deriv) Indexes() []int {
	var out []int
	var walk func(*Deriv)
	walk = func(x *Deriv) {
		if x == nil {
			return
		}
		for _, r := range x.Reps {
			if r.Index >= 0 {
				out = append(out, r.Index)
			}
			for _, c := range r.Children {
				walk(c)
			}
			walk(r.Chosen)
			walk(r.Body)
		}
	}
	walk(d)
	return out
}
