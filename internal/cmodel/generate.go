package cmodel

import (
	"math/rand"

	"xmlrdb/internal/dtd"
)

// GenOptions tunes random sequence generation.
type GenOptions struct {
	// MaxRepeat caps the number of iterations generated for "*" and "+"
	// particles. Values below 1 are treated as 1.
	MaxRepeat int
	// OptionalProb is the probability an optional ("?" or "*") particle
	// is instantiated at all. Zero means 0.5.
	OptionalProb float64
}

func (o GenOptions) maxRepeat() int {
	if o.MaxRepeat < 1 {
		return 1
	}
	return o.MaxRepeat
}

func (o GenOptions) optionalProb() float64 {
	if o.OptionalProb == 0 {
		return 0.5
	}
	return o.OptionalProb
}

// Generate produces a random element-name sequence conforming to the
// content particle, by structural recursion (so the result is valid by
// construction). A nil particle yields an empty sequence.
func Generate(p *dtd.Particle, rng *rand.Rand, opts GenOptions) []string {
	var out []string
	gen(p, rng, opts, &out)
	return out
}

func gen(p *dtd.Particle, rng *rand.Rand, opts GenOptions, out *[]string) {
	if p == nil {
		return
	}
	reps := 1
	switch p.Occ {
	case dtd.OccOptional:
		if rng.Float64() >= opts.optionalProb() {
			return
		}
	case dtd.OccZeroPlus:
		if rng.Float64() >= opts.optionalProb() {
			return
		}
		reps = 1 + rng.Intn(opts.maxRepeat())
	case dtd.OccOnePlus:
		reps = 1 + rng.Intn(opts.maxRepeat())
	}
	for i := 0; i < reps; i++ {
		switch p.Kind {
		case dtd.PKName:
			*out = append(*out, p.Name)
		case dtd.PKSequence:
			for _, ch := range p.Children {
				gen(ch, rng, opts, out)
			}
		case dtd.PKChoice:
			if len(p.Children) > 0 {
				gen(p.Children[rng.Intn(len(p.Children))], rng, opts, out)
			}
		}
	}
}
