// Package cmodel compiles DTD content models into Glushkov position
// automata. The automata support streaming validation of element-content
// sequences (used by the document validator), the XML 1.0 determinism
// ("1-unambiguity") check on content models, and enumeration of the
// element names permitted at any point (used for diagnostics and for
// random document generation).
package cmodel

import (
	"fmt"
	"sort"
	"strings"

	"xmlrdb/internal/dtd"
)

// Automaton is a Glushkov automaton compiled from one content particle.
// States are: the start state, plus one state per name position in the
// particle tree. The automaton accepts exactly the element-name sequences
// admitted by the content model.
type Automaton struct {
	names    []string // element name at each position
	first    []int    // positions reachable from the start state
	follow   [][]int  // positions reachable from each position
	last     []bool   // whether each position may end a match
	nullable bool     // whether the empty sequence is accepted

	deterministic bool
	conflict      string // description of the first determinism conflict
}

// Compile builds the Glushkov automaton for a content particle. A nil
// particle yields an automaton accepting only the empty sequence (the
// paper's "()" converted form).
func Compile(p *dtd.Particle) *Automaton {
	c := &compiler{}
	a := &Automaton{deterministic: true}
	if p == nil || (p.IsGroup() && len(p.Children) == 0) {
		a.nullable = true
		a.follow = [][]int{}
		return a
	}
	info := c.analyze(p)
	a.names = c.names
	a.first = info.first
	a.nullable = info.nullable
	a.last = make([]bool, len(c.names))
	for _, pos := range info.last {
		a.last[pos] = true
	}
	a.follow = make([][]int, len(c.names))
	for i := range a.follow {
		a.follow[i] = c.follow[i]
	}
	a.checkDeterminism()
	return a
}

// CompileModel builds an automaton for a full content model. EMPTY
// accepts only the empty sequence. ANY and mixed content return nil: the
// caller validates those by name-set membership, not by automaton.
func CompileModel(m dtd.ContentModel) *Automaton {
	switch m.Kind {
	case dtd.ContentChildren:
		return Compile(m.Particle)
	case dtd.ContentEmpty:
		return Compile(nil)
	default:
		return nil
	}
}

// Deterministic reports whether the content model satisfies the XML 1.0
// determinism constraint (appendix E: "deterministic content models").
func (a *Automaton) Deterministic() bool { return a.deterministic }

// Conflict describes the first determinism violation found, or "".
func (a *Automaton) Conflict() string { return a.conflict }

// Positions returns the number of name positions (automaton states minus
// the start state).
func (a *Automaton) Positions() int { return len(a.names) }

// Accepts reports whether the automaton accepts the given element-name
// sequence.
func (a *Automaton) Accepts(seq []string) bool {
	m := a.NewMatcher()
	for _, n := range seq {
		if !m.Step(n) {
			return false
		}
	}
	return m.Accepting()
}

// checkDeterminism verifies that no state has two successor positions
// carrying the same element name.
func (a *Automaton) checkDeterminism() {
	check := func(state string, cands []int) {
		seen := make(map[string]bool, len(cands))
		for _, pos := range cands {
			n := a.names[pos]
			if seen[n] {
				a.deterministic = false
				if a.conflict == "" {
					a.conflict = fmt.Sprintf("element %q reachable by two paths from %s", n, state)
				}
				return
			}
			seen[n] = true
		}
	}
	check("the start state", a.first)
	for i, f := range a.follow {
		if !a.deterministic {
			return
		}
		check(fmt.Sprintf("position %d (%s)", i, a.names[i]), f)
	}
}

// Matcher is the streaming execution state of an automaton over one
// element-content sequence. It performs NFA subset simulation, so it is
// correct for nondeterministic models too. The zero value is not usable;
// obtain one from Automaton.NewMatcher.
type Matcher struct {
	a     *Automaton
	cur   []int // current position set; nil means at start state
	start bool
	dead  bool
}

// NewMatcher returns a matcher positioned at the start state.
func (a *Automaton) NewMatcher() *Matcher {
	return &Matcher{a: a, start: true}
}

// Step consumes one child-element name. It returns false — and the
// matcher becomes dead — if the name is not permitted here.
func (m *Matcher) Step(name string) bool {
	if m.dead {
		return false
	}
	var next []int
	appendMatches := func(cands []int) {
		for _, pos := range cands {
			if m.a.names[pos] == name {
				next = append(next, pos)
			}
		}
	}
	if m.start {
		appendMatches(m.a.first)
	} else {
		for _, pos := range m.cur {
			appendMatches(m.a.follow[pos])
		}
	}
	if len(next) == 0 {
		m.dead = true
		return false
	}
	sort.Ints(next)
	next = dedupInts(next)
	m.cur = next
	m.start = false
	return true
}

// Accepting reports whether the sequence consumed so far is a complete
// match of the content model.
func (m *Matcher) Accepting() bool {
	if m.dead {
		return false
	}
	if m.start {
		return m.a.nullable
	}
	for _, pos := range m.cur {
		if m.a.last[pos] {
			return true
		}
	}
	return false
}

// Dead reports whether the matcher has rejected the sequence.
func (m *Matcher) Dead() bool { return m.dead }

// Expected returns the sorted set of element names permitted next, for
// error messages ("expected one of: ...").
func (m *Matcher) Expected() []string {
	if m.dead {
		return nil
	}
	set := make(map[string]bool)
	if m.start {
		for _, pos := range m.a.first {
			set[m.a.names[pos]] = true
		}
	} else {
		for _, pos := range m.cur {
			for _, f := range m.a.follow[pos] {
				set[m.a.names[f]] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ExpectedString renders Expected() for diagnostics, with "end of
// content" included when the current sequence is already complete.
func (m *Matcher) ExpectedString() string {
	parts := m.Expected()
	if m.Accepting() {
		parts = append(parts, "end of content")
	}
	if len(parts) == 0 {
		return "nothing (dead state)"
	}
	return strings.Join(parts, ", ")
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// compiler assigns positions and computes Glushkov sets.
type compiler struct {
	names  []string
	follow [][]int
}

// nodeInfo carries the Glushkov attributes of one particle.
type nodeInfo struct {
	first, last []int
	nullable    bool
}

func (c *compiler) analyze(p *dtd.Particle) nodeInfo {
	var info nodeInfo
	switch p.Kind {
	case dtd.PKName:
		pos := len(c.names)
		c.names = append(c.names, p.Name)
		c.follow = append(c.follow, nil)
		info = nodeInfo{first: []int{pos}, last: []int{pos}, nullable: false}
	case dtd.PKSequence:
		info = c.sequence(p.Children)
	case dtd.PKChoice:
		info = c.choice(p.Children)
	}
	if p.Occ.Optional() {
		info.nullable = true
	}
	if p.Occ.Repeatable() {
		// Loop: every last position can be followed by every first.
		for _, l := range info.last {
			c.addFollow(l, info.first)
		}
	}
	return info
}

func (c *compiler) sequence(children []*dtd.Particle) nodeInfo {
	if len(children) == 0 {
		return nodeInfo{nullable: true}
	}
	infos := make([]nodeInfo, len(children))
	for i, ch := range children {
		infos[i] = c.analyze(ch)
	}
	var out nodeInfo
	out.nullable = true
	for _, in := range infos {
		out.nullable = out.nullable && in.nullable
	}
	// first: union of children firsts up to and including the first
	// non-nullable child.
	for _, in := range infos {
		out.first = append(out.first, in.first...)
		if !in.nullable {
			break
		}
	}
	// last: union of children lasts from the last non-nullable child on.
	for i := len(infos) - 1; i >= 0; i-- {
		out.last = append(out.last, infos[i].last...)
		if !infos[i].nullable {
			break
		}
	}
	// follow: last(ci) -> first(cj) for the chain of nullable children
	// between i and j.
	for i := 0; i < len(infos)-1; i++ {
		for j := i + 1; j < len(infos); j++ {
			for _, l := range infos[i].last {
				c.addFollow(l, infos[j].first)
			}
			if !infos[j].nullable {
				break
			}
		}
	}
	return out
}

func (c *compiler) choice(children []*dtd.Particle) nodeInfo {
	var out nodeInfo
	for _, ch := range children {
		in := c.analyze(ch)
		out.first = append(out.first, in.first...)
		out.last = append(out.last, in.last...)
		out.nullable = out.nullable || in.nullable
	}
	if len(children) == 0 {
		out.nullable = true
	}
	return out
}

func (c *compiler) addFollow(pos int, succ []int) {
	existing := c.follow[pos]
	have := make(map[int]bool, len(existing))
	for _, e := range existing {
		have[e] = true
	}
	for _, s := range succ {
		if !have[s] {
			existing = append(existing, s)
			have[s] = true
		}
	}
	sort.Ints(existing)
	c.follow[pos] = existing
}
