package cmodel

import (
	"math/rand"
	"reflect"
	"testing"

	"xmlrdb/internal/dtd"
)

func TestDeriveCoversSequence(t *testing.T) {
	specs := []string{
		"(a)", "(a, b)", "(a | b)", "(a?, b*, c+)",
		"(title, (author, affiliation?)+, contactauthor?)",
		"(booktitle, (author* | editor))",
		"((a, b)*, (c | (d, e))+)",
		"((a*, b?)+, c)",
	}
	rng := rand.New(rand.NewSource(7))
	for _, spec := range specs {
		p := mustParticle(t, spec)
		dv := NewDeriver(nil)
		for trial := 0; trial < 100; trial++ {
			seq := Generate(p, rng, GenOptions{MaxRepeat: 3})
			d, err := dv.Derive(p, seq)
			if err != nil {
				t.Fatalf("%s: derive %v: %v", spec, seq, err)
			}
			got := d.Indexes()
			want := make([]int, len(seq))
			for i := range seq {
				want[i] = i
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: derivation of %v covers %v, want %v", spec, seq, got, want)
			}
		}
	}
}

func TestDeriveRejectsInvalid(t *testing.T) {
	tests := []struct {
		spec string
		seq  []string
	}{
		{"(a, b)", []string{"a"}},
		{"(a, b)", []string{"b", "a"}},
		{"(a)", []string{"a", "a"}},
		{"(a | b)", []string{"c"}},
		{"(a+)", nil},
	}
	dv := NewDeriver(nil)
	for _, tt := range tests {
		p := mustParticle(t, tt.spec)
		if _, err := dv.Derive(p, tt.seq); err == nil {
			t.Errorf("%s should reject %v", tt.spec, tt.seq)
		}
	}
}

func TestDeriveStructure(t *testing.T) {
	p := mustParticle(t, "(title, (author, affiliation?)+, contactauthor?)")
	dv := NewDeriver(nil)
	d, err := dv.Derive(p, []string{"title", "author", "author", "affiliation", "contactauthor"})
	if err != nil {
		t.Fatal(err)
	}
	root := d.Reps[0]
	if len(root.Children) != 3 {
		t.Fatalf("root children = %d", len(root.Children))
	}
	group := root.Children[1]
	if len(group.Reps) != 2 {
		t.Fatalf("group iterations = %d, want 2", len(group.Reps))
	}
	// Second iteration has author and affiliation.
	it2 := group.Reps[1]
	if len(it2.Children) != 2 {
		t.Fatalf("iteration children = %d", len(it2.Children))
	}
	if got := it2.Children[0].Reps[0].Index; got != 2 {
		t.Errorf("second author index = %d, want 2", got)
	}
	if got := it2.Children[1].Reps[0].Index; got != 3 {
		t.Errorf("affiliation index = %d, want 3", got)
	}
	// First iteration's affiliation matched empty.
	if n := len(group.Reps[0].Children[1].Reps); n != 0 {
		t.Errorf("first affiliation reps = %d, want 0", n)
	}
	// Optional contactauthor consumed.
	ca := root.Children[2]
	if len(ca.Reps) != 1 || ca.Reps[0].Index != 4 {
		t.Errorf("contactauthor = %+v", ca)
	}
}

func TestDeriveChoice(t *testing.T) {
	p := mustParticle(t, "(booktitle, (author* | editor))")
	dv := NewDeriver(nil)

	d, err := dv.Derive(p, []string{"booktitle", "editor"})
	if err != nil {
		t.Fatal(err)
	}
	choice := d.Reps[0].Children[1]
	chosen := choice.Reps[0].Chosen
	if chosen.Particle.Name != "editor" {
		t.Errorf("chosen = %s", chosen.Particle)
	}

	// Nullable alternative: bare booktitle takes the author* branch empty.
	d, err = dv.Derive(p, []string{"booktitle"})
	if err != nil {
		t.Fatal(err)
	}
	choice = d.Reps[0].Children[1]
	chosen = choice.Reps[0].Chosen
	if chosen.Particle.Name != "author" || len(chosen.Reps) != 0 {
		t.Errorf("nullable choice = %+v", chosen)
	}
}

func TestDeriveVirtualGroups(t *testing.T) {
	// Simulate the mapping's step-1 output: article = (title, G2+, ca?)
	// with G2 = (author, affiliation?).
	g2 := mustParticle(t, "(author, affiliation?)")
	p := mustParticle(t, "(title, G2+, ca?)")
	dv := NewDeriver(func(name string) *dtd.Particle {
		if name == "G2" {
			return g2
		}
		return nil
	})
	d, err := dv.Derive(p, []string{"title", "author", "affiliation", "author", "ca"})
	if err != nil {
		t.Fatal(err)
	}
	g2ref := d.Reps[0].Children[1]
	if len(g2ref.Reps) != 2 {
		t.Fatalf("G2 instances = %d, want 2", len(g2ref.Reps))
	}
	if g2ref.Reps[0].Body == nil {
		t.Fatal("virtual name should carry a Body derivation")
	}
	first := g2ref.Reps[0].Body.Reps[0]
	if first.Children[0].Reps[0].Index != 1 || first.Children[1].Reps[0].Index != 2 {
		t.Errorf("first G2 instance = %+v", first)
	}
	second := g2ref.Reps[1].Body.Reps[0]
	if second.Children[0].Reps[0].Index != 3 {
		t.Errorf("second G2 instance = %+v", second)
	}
	if n := len(second.Children[1].Reps); n != 0 {
		t.Errorf("second affiliation reps = %d", n)
	}
}

func TestDeriveNilParticle(t *testing.T) {
	dv := NewDeriver(nil)
	if _, err := dv.Derive(nil, nil); err != nil {
		t.Errorf("nil particle, empty seq: %v", err)
	}
	if _, err := dv.Derive(nil, []string{"a"}); err == nil {
		t.Error("nil particle should reject non-empty seq")
	}
}

func TestDeriveAgainstAutomaton(t *testing.T) {
	// Property: Derive succeeds exactly when the Glushkov automaton
	// accepts, across random sequences over a small alphabet.
	specs := []string{
		"(a, (b | c)*, d?)",
		"((a, b)+ | c)",
		"(a?, (b, a?)*)",
	}
	rng := rand.New(rand.NewSource(99))
	for _, spec := range specs {
		p := mustParticle(t, spec)
		a := Compile(p)
		dv := NewDeriver(nil)
		for trial := 0; trial < 500; trial++ {
			n := rng.Intn(6)
			seq := make([]string, n)
			for i := range seq {
				seq[i] = string(rune('a' + rng.Intn(4)))
			}
			_, err := dv.Derive(p, seq)
			if accepts := a.Accepts(seq); accepts != (err == nil) {
				t.Fatalf("%s: seq %v: automaton=%v deriver err=%v", spec, seq, accepts, err)
			}
		}
	}
}
