package pathquery

import (
	"strings"
	"testing"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/paper"
)

func explainTranslator(t *testing.T, opts ermap.Options) *ERTranslator {
	t.Helper()
	res, err := core.Map(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	return NewERTranslator(res, m)
}

// TestExplainGoldenDistilled pins the EXPLAIN report for the paper's
// Example 1 booktitle query: booktitle is distilled into e_book by
// mapping step 2, so the plan reports the two junction-strategy joins
// (junction table + child entity) the query avoided.
func TestExplainGoldenDistilled(t *testing.T) {
	tr := explainTranslator(t, ermap.Options{})
	trans, err := tr.Translate(MustParse("/book/booktitle/text()"))
	if err != nil {
		t.Fatal(err)
	}
	const want = "-- plan: arms=1 joins-max=1 joins-total=1 joins-avoided=2 distilled-steps=1\n" +
		"SELECT e0.doc, e0.id, e0.a_booktitle AS value FROM e_book e0, x_docs xd WHERE xd.root_type = 'book' AND xd.root = e0.id AND e0.a_booktitle IS NOT NULL;\n"
	if got := trans.Explain(); got != want {
		t.Errorf("Explain() =\n%s\nwant:\n%s", got, want)
	}
	if trans.Stats.JoinsAvoided == 0 {
		t.Error("JoinsAvoided = 0 for a distilled-attribute query")
	}
}

// TestExplainFoldAvoidsOneJoin checks the strategy-dependent avoided
// cost: under fold-FK a distilled step would only have cost the parent
// reference join.
func TestExplainFoldAvoidsOneJoin(t *testing.T) {
	tr := explainTranslator(t, ermap.Options{Strategy: ermap.StrategyFoldFK})
	trans, err := tr.Translate(MustParse("/book/booktitle/text()"))
	if err != nil {
		t.Fatal(err)
	}
	if trans.Stats.JoinsAvoided != 1 || trans.Stats.DistilledSteps != 1 {
		t.Errorf("fold stats = %+v, want JoinsAvoided=1 DistilledSteps=1", trans.Stats)
	}
}

// TestExplainUndistilledQuery checks a chain query reports its joins
// and no avoided ones.
func TestExplainUndistilledQuery(t *testing.T) {
	tr := explainTranslator(t, ermap.Options{})
	trans, err := tr.Translate(MustParse("/article/author/name"))
	if err != nil {
		t.Fatal(err)
	}
	st := trans.Stats
	if st.Arms != 1 || st.JoinsAvoided != 0 || st.DistilledSteps != 0 {
		t.Errorf("stats = %+v, want arms=1 and nothing avoided", st)
	}
	if st.JoinsTotal == 0 || st.JoinsMax != trans.Joins {
		t.Errorf("stats = %+v inconsistent with Joins=%d", st, trans.Joins)
	}
	if !strings.HasPrefix(trans.Explain(), "-- plan: ") {
		t.Errorf("Explain missing plan header:\n%s", trans.Explain())
	}
}

// TestTranslateObserved checks the translator records into an attached
// hub and emits a trace event.
func TestTranslateObserved(t *testing.T) {
	tr := explainTranslator(t, ermap.Options{})
	m := obs.New()
	var ct obs.CollectTracer
	tr.SetObserver(m, &ct)
	if _, err := tr.Translate(MustParse("/book/booktitle")); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Query.Translations != 1 {
		t.Errorf("Translations = %d, want 1", s.Query.Translations)
	}
	if s.Query.JoinsAvoided != 2 || s.Query.DistilledHits != 1 {
		t.Errorf("JoinsAvoided = %d DistilledHits = %d, want 2/1",
			s.Query.JoinsAvoided, s.Query.DistilledHits)
	}
	evs := ct.Events()
	if len(evs) != 1 || evs[0].Scope != "pathquery" || evs[0].Name != "translate" {
		t.Errorf("trace events = %+v", evs)
	}
}
