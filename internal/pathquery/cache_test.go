package pathquery

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"xmlrdb/internal/obs"
)

// countingTranslator counts Translate calls and returns a distinct
// translation per path.
type countingTranslator struct {
	mu    sync.Mutex
	calls int
	name  string
}

func (c *countingTranslator) Name() string { return c.name }

func (c *countingTranslator) Translate(q *Query) (*Translation, error) {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return &Translation{
		SQLs:  []string{"SELECT 1 -- " + q.String()},
		Cols:  []string{"v"},
		Joins: 1,
	}, nil
}

func (c *countingTranslator) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func TestCacheHitAvoidsRetranslation(t *testing.T) {
	ct := &countingTranslator{name: "er-junction"}
	hub := obs.New()
	cache := NewCache(ct, 8)
	cache.SetObserver(hub)

	q := MustParse("/book/booktitle/text()")
	tr1, err := cache.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.Cached {
		t.Fatal("first translation reported Cached")
	}
	tr2, err := cache.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.Cached {
		t.Fatal("second translation not served from cache")
	}
	if ct.count() != 1 {
		t.Fatalf("translator called %d times, want 1", ct.count())
	}
	if tr2.SQLs[0] != tr1.SQLs[0] {
		t.Fatalf("cached SQL differs: %q vs %q", tr2.SQLs[0], tr1.SQLs[0])
	}
	s := hub.Snapshot()
	if s.Query.PlanCacheHits != 1 || s.Query.PlanCacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.Query.PlanCacheHits, s.Query.PlanCacheMisses)
	}
	// The cache-hit note appears only on the hit copy.
	if strings.Contains(tr1.Explain(), "plan-cache") {
		t.Fatal("miss translation carries the cache-hit note")
	}
	if !strings.Contains(tr2.Explain(), "-- plan-cache: hit") {
		t.Fatalf("hit translation lacks the cache-hit note:\n%s", tr2.Explain())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	ct := &countingTranslator{name: "er-junction"}
	hub := obs.New()
	cache := NewCache(ct, 2)
	cache.SetObserver(hub)

	a, b, c := MustParse("/a"), MustParse("/b"), MustParse("/c")
	for _, q := range []*Query{a, b} {
		if _, err := cache.Translate(q); err != nil {
			t.Fatal(err)
		}
	}
	// Touch /a so /b becomes least recently used, then insert /c.
	if _, err := cache.Translate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Translate(c); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache length %d, want 2", cache.Len())
	}
	if tr, _ := cache.Translate(a); !tr.Cached {
		t.Fatal("/a was evicted although recently used")
	}
	if tr, _ := cache.Translate(b); tr.Cached {
		t.Fatal("/b survived although least recently used")
	}
	if s := hub.Snapshot(); s.Query.PlanCacheEvictions < 1 {
		t.Fatalf("evictions = %d, want >= 1", s.Query.PlanCacheEvictions)
	}
}

func TestCacheKeyIncludesTranslatorName(t *testing.T) {
	// Two caches sharing nothing is the normal case; here one cache is
	// rebuilt around a differently named translator to prove the key
	// namespace separates strategies.
	ct1 := &countingTranslator{name: "er-junction"}
	ct2 := &countingTranslator{name: "er-fold-fk"}
	q := MustParse("/book")
	c1 := NewCache(ct1, 4)
	if _, err := c1.Translate(q); err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(ct2, 4)
	if tr, err := c2.Translate(q); err != nil {
		t.Fatal(err)
	} else if tr.Cached {
		t.Fatal("fresh cache served a hit")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	ct := &countingTranslator{name: "er-junction"}
	cache := NewCache(ct, 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := MustParse(fmt.Sprintf("/p%d", i%32))
				if _, err := cache.Translate(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
