package pathquery

import (
	"math/rand"
	"strings"
	"testing"
)

// TestPathParserNeverPanics throws garbage paths at the parser; whatever
// parses must print and reparse to the same string.
func TestPathParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pieces := []string{"/", "//", "a", "b", "*", "[", "]", "@", "=", "'v'", "text()", "''", "'", "x"}
	for i := 0; i < 5000; i++ {
		var b strings.Builder
		n := 1 + rng.Intn(12)
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			q, err := Parse(src)
			if err == nil {
				printed := q.String()
				q2, err2 := Parse(printed)
				if err2 != nil {
					t.Fatalf("printed form %q (from %q) unparsable: %v", printed, src, err2)
				}
				if q2.String() != printed {
					t.Fatalf("print not a fixpoint: %q -> %q", printed, q2.String())
				}
			}
		}()
	}
}
