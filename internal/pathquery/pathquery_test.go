package pathquery

import (
	"strings"
	"testing"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/shred"
)

func TestParsePath(t *testing.T) {
	tests := []struct {
		in    string
		steps int
		str   string
	}{
		{"/book", 1, "/book"},
		{"/book/booktitle", 2, "/book/booktitle"},
		{"//author", 1, "//author"},
		{"/article//lastname", 2, "/article//lastname"},
		{"/a/*/c", 3, "/a/*/c"},
		{"/article/author[@id='x']", 2, "/article/author[@id='x']"},
		{"/a/b[@x]", 2, "/a/b[@x]"},
		{"/a/b[text()='v']", 2, "/a/b[text()='v']"},
		{"/a/b/text()", 2, "/a/b/text()"},
		{"/a/b/@x", 2, "/a/b/@x"},
	}
	for _, tt := range tests {
		q, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if q.Depth() != tt.steps {
			t.Errorf("%q: depth = %d, want %d", tt.in, q.Depth(), tt.steps)
		}
		if q.String() != tt.str {
			t.Errorf("%q: String = %q", tt.in, q.String())
		}
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, in := range []string{
		"", "book", "/", "/a/b/text()/c", "/a/@x/b", "/text()",
		"/a[b]", "/a[@x='unterminated]", "/a[@x=v]", "//text()",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

// loadedStore builds the paper store with all three fixture documents.
func loadedStore(t *testing.T, strategy ermap.Strategy) (*ERTranslator, *engine.DB) {
	t.Helper()
	res, err := core.Map(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, ermap.Options{Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open()
	if err := db.CreateSchema(m.Schema); err != nil {
		t.Fatal(err)
	}
	l, err := shred.NewLoader(res, m, db)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{paper.BookXML, paper.ArticleXML, paper.EditorXML} {
		if _, err := l.LoadXML(src, string(rune('a'+i))); err != nil {
			t.Fatal(err)
		}
	}
	return NewERTranslator(res, m), db
}

func runPath(t *testing.T, tr *ERTranslator, db *engine.DB, path string) *engine.Rows {
	t.Helper()
	rows, err := Run(db, tr, path)
	if err != nil {
		t.Fatalf("Run(%q): %v", path, err)
	}
	return rows
}

func TestDistilledLeafQuery(t *testing.T) {
	tr, db := loadedStore(t, 0)
	rows := runPath(t, tr, db, "/book/booktitle/text()")
	if len(rows.Data) != 1 || rows.Data[0][2] != "XML RDBMS" {
		t.Errorf("booktitle = %v", rows.Data)
	}
	// A distilled leaf requires no relationship join: only the root
	// anchor join.
	q := MustParse("/book/booktitle/text()")
	trans, err := tr.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if trans.Joins != 1 {
		t.Errorf("joins = %d, want 1 (root anchor only)", trans.Joins)
	}
}

func TestChildStepThroughGroup(t *testing.T) {
	tr, db := loadedStore(t, 0)
	// Root-anchored /book/author: only the book document's authors.
	rows := runPath(t, tr, db, "/book/author")
	if len(rows.Data) != 2 {
		t.Errorf("/book/author = %v", rows.Data)
	}
	// /article/author: the three article authors.
	rows = runPath(t, tr, db, "/article/author")
	if len(rows.Data) != 3 {
		t.Errorf("/article/author = %v", rows.Data)
	}
}

func TestDescendantQuery(t *testing.T) {
	tr, db := loadedStore(t, 0)
	// All authors anywhere: 2 (book) + 3 (article) + 2 (editor doc).
	rows := runPath(t, tr, db, "//author")
	if len(rows.Data) != 7 {
		t.Errorf("//author = %d rows", len(rows.Data))
	}
	// Editors nested at any depth under the editor document.
	rows = runPath(t, tr, db, "/editor//editor")
	if len(rows.Data) != 1 {
		t.Errorf("/editor//editor = %d rows, want 1 (the leaf editor)", len(rows.Data))
	}
}

func TestPredicateQueries(t *testing.T) {
	tr, db := loadedStore(t, 0)
	rows := runPath(t, tr, db, "/article/author[@id='wlee']")
	if len(rows.Data) != 1 {
		t.Errorf("author[@id='wlee'] = %v", rows.Data)
	}
	rows = runPath(t, tr, db, "/article/contactauthor[@authorid='wlee']")
	if len(rows.Data) != 1 {
		t.Errorf("reference predicate = %v", rows.Data)
	}
	rows = runPath(t, tr, db, "/article/contactauthor[@authorid]")
	if len(rows.Data) != 1 {
		t.Errorf("reference existence = %v", rows.Data)
	}
	rows = runPath(t, tr, db, "/editor[@name='Knuth']")
	if len(rows.Data) != 1 {
		t.Errorf("editor[@name] = %v", rows.Data)
	}
}

func TestAttrProjection(t *testing.T) {
	tr, db := loadedStore(t, 0)
	rows := runPath(t, tr, db, "/article/author/@id")
	if len(rows.Data) != 3 {
		t.Fatalf("@id rows = %v", rows.Data)
	}
	vals := map[string]bool{}
	for _, r := range rows.Data {
		vals[r[2].(string)] = true
	}
	if !vals["wlee"] || !vals["gmitchell"] || !vals["xzhang"] {
		t.Errorf("ids = %v", vals)
	}
}

func TestWildcardStep(t *testing.T) {
	tr, db := loadedStore(t, 0)
	// /article/*: authors, affiliations, contactauthor (title distilled
	// away, so not an element).
	rows := runPath(t, tr, db, "/article/*")
	if len(rows.Data) != 6 {
		t.Errorf("/article/* = %d rows, want 6", len(rows.Data))
	}
}

func TestTextOnPCDataEntity(t *testing.T) {
	res, err := core.Map(dtd.MustParse(`
<!ELEMENT list (item*)>
<!ELEMENT item (#PCDATA)>
`))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, ermap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open()
	if err := db.CreateSchema(m.Schema); err != nil {
		t.Fatal(err)
	}
	l, err := shred.NewLoader(res, m, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadXML(`<list><item>one</item><item>two</item></list>`, "l"); err != nil {
		t.Fatal(err)
	}
	tr := NewERTranslator(res, m)
	rows, err := Run(db, tr, "/list/item[text()='two']")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Errorf("text predicate = %v", rows.Data)
	}
	rows, err = Run(db, tr, "/list/item/text()")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Errorf("text projection = %v", rows.Data)
	}
}

func TestFoldStrategyQueries(t *testing.T) {
	tr, db := loadedStore(t, ermap.StrategyFoldFK)
	rows := runPath(t, tr, db, "/article/author/name")
	if len(rows.Data) != 3 {
		t.Errorf("folded name step = %v", rows.Data)
	}
	// Folded joins are cheaper: name is reached via child.parent = a.id.
	q := MustParse("/article/author/name")
	trans, err := tr.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	junctionTr, junctionDB := loadedStore(t, 0)
	jt, err := junctionTr.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	_ = junctionDB
	if trans.Joins >= jt.Joins {
		t.Errorf("fold joins %d should be < junction joins %d", trans.Joins, jt.Joins)
	}
}

func TestTranslationErrors(t *testing.T) {
	tr, _ := loadedStore(t, 0)
	cases := []string{
		"/nosuch",
		"/book/booktitle/impossible",
		"/book/author[@nope='x']",
		"/book/author/text()",
		"/article/author/@nope",
	}
	for _, path := range cases {
		q, err := Parse(path)
		if err != nil {
			t.Fatalf("parse %q: %v", path, err)
		}
		if _, err := tr.Translate(q); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", path)
		}
	}
}

func TestJoinCountsGrowWithDepth(t *testing.T) {
	tr, _ := loadedStore(t, 0)
	j := func(path string) int {
		trans, err := tr.Translate(MustParse(path))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return trans.Joins
	}
	d1 := j("/article")
	d2 := j("/article/author")
	d3 := j("/article/author/name")
	if !(d1 < d2 && d2 < d3) {
		t.Errorf("join growth: %d %d %d", d1, d2, d3)
	}
}

func TestTranslatorName(t *testing.T) {
	tr, _ := loadedStore(t, 0)
	if !strings.HasPrefix(tr.Name(), "er-") {
		t.Errorf("name = %q", tr.Name())
	}
}

func TestQuoteEscapingInPredicates(t *testing.T) {
	tr, db := loadedStore(t, 0)
	rows, err := Run(db, tr, "/editor[@name='O''Brien']")
	if err != nil {
		t.Fatalf("escaped quote: %v", err)
	}
	if len(rows.Data) != 0 {
		t.Errorf("rows = %v", rows.Data)
	}
}
