package pathquery

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
)

// TestRunCursorMatchesRun checks the streaming union produces exactly
// the rows of the materialized path — same data, same arm order.
func TestRunCursorMatchesRun(t *testing.T) {
	tr, db := loadedStore(t, ermap.StrategyJunction)
	ctx := context.Background()
	for _, path := range []string{
		"/book/booktitle/text()",
		"/book/author",
		"//author/name",
		"/book/author[@id='a1']",
	} {
		want, err := RunContext(ctx, db, tr, path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		cur, err := RunCursor(ctx, db, tr, path)
		if err != nil {
			t.Fatalf("%s: RunCursor: %v", path, err)
		}
		got, err := engine.DrainCursor(cur)
		if err != nil {
			t.Fatalf("%s: drain: %v", path, err)
		}
		if !reflect.DeepEqual(got.Data, want.Data) || !reflect.DeepEqual(got.Cols, want.Cols) {
			t.Errorf("%s: cursor result %v %v, want %v %v", path, got.Cols, got.Data, want.Cols, want.Data)
		}
	}
}

// TestUnionCursorEarlyClose abandons a union cursor after one row and
// checks the engine's read locks are released: a write must succeed.
func TestUnionCursorEarlyClose(t *testing.T) {
	tr, db := loadedStore(t, ermap.StrategyJunction)
	cur, err := RunCursor(context.Background(), db, tr, "/book/author")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("no first row: %v", cur.Err())
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if cur.Next() {
		t.Fatal("Next after Close returned a row")
	}
	if _, _, err := db.Exec(`DELETE FROM e_author WHERE 1 = 0`); err != nil {
		t.Fatalf("write after cursor Close: %v", err)
	}
}

// TestExplainContextIncludesPhysicalPlans checks the executed EXPLAIN
// report keeps the translation explain as its prefix and appends one
// physical-plan section per union arm, rendered from the operator tree
// that actually ran.
func TestExplainContextIncludesPhysicalPlans(t *testing.T) {
	tr, db := loadedStore(t, ermap.StrategyJunction)
	trans, err := tr.Translate(MustParse("/book/author/name"))
	if err != nil {
		t.Fatal(err)
	}
	report, err := ExplainContext(context.Background(), db, trans)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(report, trans.Explain()) {
		t.Errorf("report does not start with the translation explain:\n%s", report)
	}
	if n := strings.Count(report, "-- physical plan (arm "); n != len(trans.SQLs) {
		t.Errorf("report has %d physical plan sections, want %d:\n%s", n, len(trans.SQLs), report)
	}
	for _, op := range []string{"Scan(", "Project(", "rows=", "est="} {
		if !strings.Contains(report, op) {
			t.Errorf("report lacks %q:\n%s", op, report)
		}
	}
}
