package pathquery

import (
	"fmt"
	"strings"
	"time"

	"xmlrdb/internal/core"
	"xmlrdb/internal/er"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/obs"
)

// ERTranslator translates path queries to SQL over the paper's ER
// mapping. Distilled (#PCDATA) subelements resolve to parent columns —
// no join — which is the measurable payoff of the mapping's step 2.
type ERTranslator struct {
	res *core.Result
	m   *ermap.Mapping
	// MaxDepth bounds descendant-step expansion (default 8).
	MaxDepth int
	// MaxPaths bounds the number of generated join chains (default 128).
	MaxPaths int

	virtual   map[string]bool
	chains    map[string][]chain // non-virtual entity -> child-step chains
	distilled map[string]map[string]bool
	refAttrs  map[string]map[string]*ermap.RelMap

	// obsM and tracer are the observability hooks (nil by default; set
	// before concurrent use).
	obsM   *obs.Metrics
	tracer obs.Tracer
}

// SetObserver attaches a metrics hub and tracer (either may be nil):
// translations are timed and their plan stats (chains expanded, joins
// emitted, joins avoided by distillation) accumulated.
func (t *ERTranslator) SetObserver(m *obs.Metrics, tr obs.Tracer) {
	t.obsM = m
	t.tracer = tr
}

// hop is one traversal of a nesting relationship.
type hop struct {
	rel *er.Relationship
	rm  *ermap.RelMap
	to  string
}

// chain is a child step: one or more hops whose intermediate entities
// are all virtual groups.
type chain []hop

// NewERTranslator builds a translator for a mapping result.
func NewERTranslator(res *core.Result, m *ermap.Mapping) *ERTranslator {
	t := &ERTranslator{
		res: res, m: m, MaxDepth: 8, MaxPaths: 128,
		virtual:   make(map[string]bool),
		chains:    make(map[string][]chain),
		distilled: make(map[string]map[string]bool),
		refAttrs:  make(map[string]map[string]*ermap.RelMap),
	}
	for i := range res.Groups {
		t.virtual[res.Groups[i].Name] = true
	}
	for _, e := range res.Metadata.Distilled {
		if t.distilled[e.Parent] == nil {
			t.distilled[e.Parent] = make(map[string]bool)
		}
		t.distilled[e.Parent][e.Attr] = true
	}
	for _, r := range m.Model.Relationships {
		if r.Kind == er.RelReference {
			if t.refAttrs[r.Parent] == nil {
				t.refAttrs[r.Parent] = make(map[string]*ermap.RelMap)
			}
			t.refAttrs[r.Parent][r.ViaAttr] = m.Rels[r.Name]
		}
	}
	// Child-step chains from every non-virtual entity, expanding through
	// virtual group entities.
	for _, e := range m.Model.Entities {
		if t.virtual[e.Name] {
			continue
		}
		var expand func(from string, prefix chain)
		expand = func(from string, prefix chain) {
			for _, r := range m.Model.RelationshipsOf(from) {
				if r.Kind == er.RelReference {
					continue
				}
				for _, arc := range r.Arcs {
					h := hop{rel: r, rm: m.Rels[r.Name], to: arc.Target}
					next := append(append(chain(nil), prefix...), h)
					if t.virtual[arc.Target] {
						expand(arc.Target, next)
						continue
					}
					t.chains[e.Name] = append(t.chains[e.Name], next)
				}
			}
		}
		expand(e.Name, nil)
	}
	return t
}

// Name implements Translator.
func (t *ERTranslator) Name() string { return "er-" + t.m.Strategy.String() }

// access is one partial join chain during translation.
type access struct {
	entity string   // current entity
	froms  []string // FROM items ("e_book e0")
	conds  []string
	joins  int
	nextE  int // alias counters
	nextR  int
}

// Translate implements Translator.
func (t *ERTranslator) Translate(q *Query) (*Translation, error) {
	if t.obsM == nil && t.tracer == nil {
		return t.translate(q)
	}
	start := time.Now()
	tr, err := t.translate(q)
	d := time.Since(start)
	if t.obsM != nil {
		t.obsM.Translations.Inc()
		t.obsM.TranslateLatency.ObserveDuration(d)
		if err == nil {
			t.obsM.ChainsExpanded.Add(int64(tr.Stats.Arms))
			t.obsM.JoinsEmitted.Add(int64(tr.Stats.JoinsTotal))
			t.obsM.JoinsAvoided.Add(int64(tr.Stats.JoinsAvoided))
			t.obsM.DistilledHits.Add(int64(tr.Stats.DistilledSteps))
		}
	}
	if t.tracer != nil {
		ev := obs.Event{Scope: "pathquery", Name: "translate", Detail: q.String(), Dur: d}
		if err != nil {
			ev.Err = err.Error()
		} else {
			ev.Attrs = []obs.Attr{
				{Key: "arms", Val: tr.Stats.Arms},
				{Key: "joins", Val: tr.Joins},
				{Key: "joins_avoided", Val: tr.Stats.JoinsAvoided},
			}
		}
		t.tracer.Emit(ev)
	}
	return tr, err
}

// distilledStepCost is the join-predicate count a distilled step would
// have cost without distilling: one parent-reference join under the
// fold strategy, a junction-table hop plus the child entity otherwise.
func (t *ERTranslator) distilledStepCost() int {
	if t.m.Strategy == ermap.StrategyFoldFK {
		return 1
	}
	return 2
}

func (t *ERTranslator) translate(q *Query) (*Translation, error) {
	if len(q.Steps) == 0 {
		return nil, fmt.Errorf("pathquery: empty query")
	}
	// First step: entities whose name matches, as document roots.
	var cur []access
	first := q.Steps[0]
	if first.Axis == AxisDescendant {
		// //x from the document: any entity named x at any depth — the
		// same as matching the entity directly.
		for _, e := range t.m.Model.Entities {
			if t.virtual[e.Name] || !nameMatches(first.Name, e.Name) {
				continue
			}
			cur = append(cur, t.start(e.Name))
		}
	} else {
		for _, e := range t.m.Model.Entities {
			if t.virtual[e.Name] || !nameMatches(first.Name, e.Name) {
				continue
			}
			a := t.start(e.Name)
			// Anchor at document roots via the registry.
			alias := fmt.Sprintf("e%d", a.nextE-1)
			a.froms = append(a.froms, "x_docs xd")
			a.conds = append(a.conds,
				fmt.Sprintf("xd.root_type = '%s'", e.Name),
				fmt.Sprintf("xd.root = %s.id", alias))
			a.joins++
			cur = append(cur, a)
		}
	}
	if err := t.applyPreds(&cur, first.Preds); err != nil {
		return nil, err
	}

	terminalDistill := ""
	distilledHits := 0
	for si := 1; si < len(q.Steps); si++ {
		step := q.Steps[si]
		var next []access
		for _, a := range cur {
			// Distilled subelement: resolves to a parent column; only
			// legal as the final step.
			if step.Axis == AxisChild && t.distilled[a.entity] != nil && t.distilled[a.entity][step.Name] {
				if si != len(q.Steps)-1 {
					return nil, fmt.Errorf("pathquery: %q was distilled into an attribute of %q; it has no children",
						step.Name, a.entity)
				}
				if len(step.Preds) > 0 {
					return nil, fmt.Errorf("pathquery: distilled element %q supports no predicates", step.Name)
				}
				b := a
				b.conds = append(append([]string(nil), a.conds...),
					fmt.Sprintf("%s.a_%s IS NOT NULL", t.alias(&b), step.Name))
				next = append(next, b)
				terminalDistill = step.Name
				distilledHits++
				continue
			}
			expanded, err := t.step(a, step)
			if err != nil {
				return nil, err
			}
			next = append(next, expanded...)
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("pathquery: step %q matches nothing in the schema", step.Name)
		}
		if len(next) > t.maxPaths() {
			return nil, fmt.Errorf("pathquery: query expands to %d join chains (limit %d)", len(next), t.maxPaths())
		}
		if terminalDistill == "" {
			if err := t.applyPreds(&next, step.Preds); err != nil {
				return nil, err
			}
		}
		cur = next
	}

	tr, err := t.project(q, cur, terminalDistill)
	if err != nil {
		return nil, err
	}
	tr.Stats.DistilledSteps = distilledHits
	tr.Stats.JoinsAvoided = distilledHits * t.distilledStepCost()
	return tr, nil
}

func (t *ERTranslator) maxPaths() int {
	if t.MaxPaths <= 0 {
		return 128
	}
	return t.MaxPaths
}

func (t *ERTranslator) maxDepth() int {
	if t.MaxDepth <= 0 {
		return 8
	}
	return t.MaxDepth
}

func (t *ERTranslator) start(entity string) access {
	em := t.m.Entities[entity]
	return access{
		entity: entity,
		froms:  []string{em.Table + " e0"},
		nextE:  1,
		nextR:  0,
	}
}

func (t *ERTranslator) alias(a *access) string { return fmt.Sprintf("e%d", a.nextE-1) }

// step expands one location step from an access path.
func (t *ERTranslator) step(a access, step Step) ([]access, error) {
	switch step.Axis {
	case AxisChild:
		var out []access
		for _, ch := range t.chains[a.entity] {
			if !nameMatches(step.Name, ch[len(ch)-1].to) {
				continue
			}
			out = append(out, t.follow(a, ch))
		}
		return out, nil
	case AxisDescendant:
		// Bounded BFS over child chains.
		type state struct {
			acc   access
			depth int
		}
		var out []access
		frontier := []state{{acc: a, depth: 0}}
		for len(frontier) > 0 {
			var nextFrontier []state
			for _, st := range frontier {
				if st.depth >= t.maxDepth() {
					continue
				}
				for _, ch := range t.chains[st.acc.entity] {
					b := t.follow(st.acc, ch)
					if nameMatches(step.Name, ch[len(ch)-1].to) {
						out = append(out, b)
					}
					nextFrontier = append(nextFrontier, state{acc: b, depth: st.depth + 1})
					if len(out) > t.maxPaths() || len(nextFrontier) > 4*t.maxPaths() {
						return nil, fmt.Errorf("pathquery: descendant step %q expands past %d chains", step.Name, t.maxPaths())
					}
				}
			}
			frontier = nextFrontier
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pathquery: unknown axis")
	}
}

// follow extends an access path along one child chain.
func (t *ERTranslator) follow(a access, ch chain) access {
	b := access{
		entity: ch[len(ch)-1].to,
		froms:  append([]string(nil), a.froms...),
		conds:  append([]string(nil), a.conds...),
		joins:  a.joins,
		nextE:  a.nextE,
		nextR:  a.nextR,
	}
	fromAlias := fmt.Sprintf("e%d", a.nextE-1)
	for _, h := range ch {
		toEM := t.m.Entities[h.to]
		toAlias := fmt.Sprintf("e%d", b.nextE)
		b.nextE++
		if h.rm.Folded {
			b.froms = append(b.froms, toEM.Table+" "+toAlias)
			b.conds = append(b.conds, fmt.Sprintf("%s.parent = %s.id", toAlias, fromAlias))
			b.joins++
		} else {
			// List the junction table before the child entity so the
			// engine's left-to-right join pipeline always has an
			// equi-join condition available (no cartesian intermediate).
			rAlias := fmt.Sprintf("r%d", b.nextR)
			b.nextR++
			b.froms = append(b.froms, h.rm.Table+" "+rAlias, toEM.Table+" "+toAlias)
			b.conds = append(b.conds,
				fmt.Sprintf("%s.parent = %s.id", rAlias, fromAlias),
				fmt.Sprintf("%s.child = %s.id", rAlias, toAlias))
			b.joins += 2
			if !h.rm.SingleTarget {
				b.conds = append(b.conds, fmt.Sprintf("%s.target = '%s'", rAlias, h.to))
			}
		}
		fromAlias = toAlias
	}
	return b
}

// applyPreds adds predicate conditions to every access path.
func (t *ERTranslator) applyPreds(paths *[]access, preds []Pred) error {
	if len(preds) == 0 {
		return nil
	}
	out := (*paths)[:0]
	for _, a := range *paths {
		b := a
		b.conds = append([]string(nil), a.conds...)
		b.froms = append([]string(nil), a.froms...)
		ok := true
		for _, p := range preds {
			if err := t.applyPred(&b, p); err != nil {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return fmt.Errorf("pathquery: predicate matches no schema path")
	}
	*paths = out
	return nil
}

func (t *ERTranslator) applyPred(a *access, p Pred) error {
	alias := t.alias(a)
	em := t.m.Entities[a.entity]
	if p.Text {
		if !em.HasText {
			return fmt.Errorf("pathquery: entity %q has no text content", a.entity)
		}
		if p.HasValue {
			a.conds = append(a.conds, fmt.Sprintf("%s.txt = '%s'", alias, escape(p.Value)))
		} else {
			a.conds = append(a.conds, fmt.Sprintf("%s.txt IS NOT NULL", alias))
		}
		return nil
	}
	// Reference attribute predicates join through the reference table.
	if rm, isRef := t.refAttrs[a.entity][p.Attr]; isRef {
		rAlias := fmt.Sprintf("r%d", a.nextR)
		a.nextR++
		a.froms = append(a.froms, rm.Table+" "+rAlias)
		a.conds = append(a.conds, fmt.Sprintf("%s.source = %s.id", rAlias, alias))
		a.joins++
		if p.HasValue {
			a.conds = append(a.conds, fmt.Sprintf("%s.refvalue = '%s'", rAlias, escape(p.Value)))
		}
		return nil
	}
	if _, ok := em.AttrCols[p.Attr]; !ok {
		return fmt.Errorf("pathquery: entity %q has no attribute %q", a.entity, p.Attr)
	}
	col := fmt.Sprintf("%s.a_%s", alias, p.Attr)
	if p.HasValue {
		a.conds = append(a.conds, fmt.Sprintf("%s = '%s'", col, escape(p.Value)))
	} else {
		a.conds = append(a.conds, col+" IS NOT NULL")
	}
	return nil
}

// project builds the final SELECT statements.
func (t *ERTranslator) project(q *Query, paths []access, terminalDistill string) (*Translation, error) {
	tr := &Translation{}
	for _, a := range paths {
		alias := t.alias(&a)
		var sel string
		switch {
		case terminalDistill != "":
			switch q.Proj {
			case ProjText, ProjElement:
				sel = fmt.Sprintf("%s.doc, %s.id, %s.a_%s AS value", alias, alias, alias, terminalDistill)
				tr.Cols = []string{"doc", "id", "value"}
			default:
				return nil, fmt.Errorf("pathquery: distilled element %q has no attributes", terminalDistill)
			}
		case q.Proj == ProjText:
			em := t.m.Entities[a.entity]
			if !em.HasText {
				return nil, fmt.Errorf("pathquery: entity %q has no text content", a.entity)
			}
			sel = fmt.Sprintf("%s.doc, %s.id, %s.txt AS value", alias, alias, alias)
			tr.Cols = []string{"doc", "id", "value"}
		case q.Proj == ProjAttr:
			em := t.m.Entities[a.entity]
			if _, ok := em.AttrCols[q.AttrName]; !ok {
				return nil, fmt.Errorf("pathquery: entity %q has no attribute %q", a.entity, q.AttrName)
			}
			a.conds = append(a.conds, fmt.Sprintf("%s.a_%s IS NOT NULL", alias, q.AttrName))
			sel = fmt.Sprintf("%s.doc, %s.id, %s.a_%s AS value", alias, alias, alias, q.AttrName)
			tr.Cols = []string{"doc", "id", "value"}
		default:
			sel = fmt.Sprintf("%s.doc, %s.id", alias, alias)
			tr.Cols = []string{"doc", "id"}
		}
		sql := "SELECT " + sel + " FROM " + strings.Join(a.froms, ", ")
		if len(a.conds) > 0 {
			sql += " WHERE " + strings.Join(a.conds, " AND ")
		}
		tr.SQLs = append(tr.SQLs, sql)
		tr.Stats.JoinsTotal += a.joins
		if a.joins > tr.Joins {
			tr.Joins = a.joins
		}
	}
	if len(tr.SQLs) == 0 {
		return nil, fmt.Errorf("pathquery: query matches nothing in the schema")
	}
	tr.Stats.Arms = len(tr.SQLs)
	tr.Stats.JoinsMax = tr.Joins
	return tr, nil
}

func nameMatches(pattern, name string) bool { return pattern == "*" || pattern == name }

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }
