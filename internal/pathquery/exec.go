package pathquery

import (
	"context"

	"xmlrdb/internal/engine"
)

// Execute runs every statement of a translation against the engine and
// concatenates the results (the union of the generated join chains).
func Execute(db *engine.DB, tr *Translation) (*engine.Rows, error) {
	return ExecuteContext(context.Background(), db, tr)
}

// ExecuteContext is Execute under a context: cancellation aborts the
// current arm mid-scan and returns the context's error.
func ExecuteContext(ctx context.Context, db *engine.DB, tr *Translation) (*engine.Rows, error) {
	out := &engine.Rows{Cols: tr.Cols}
	for _, sql := range tr.SQLs {
		rows, err := db.QueryContext(ctx, sql)
		if err != nil {
			return nil, err
		}
		out.Data = append(out.Data, rows.Data...)
	}
	return out, nil
}

// Run parses, translates and executes a path query in one call.
func Run(db *engine.DB, t Translator, path string) (*engine.Rows, error) {
	return RunContext(context.Background(), db, t, path)
}

// RunContext is Run under a context.
func RunContext(ctx context.Context, db *engine.DB, t Translator, path string) (*engine.Rows, error) {
	q, err := Parse(path)
	if err != nil {
		return nil, err
	}
	tr, err := t.Translate(q)
	if err != nil {
		return nil, err
	}
	return ExecuteContext(ctx, db, tr)
}
