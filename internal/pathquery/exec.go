package pathquery

import (
	"context"
	"fmt"
	"sync"

	"xmlrdb/internal/engine"
	"xmlrdb/internal/obs"
)

// Execute runs every statement of a translation against the engine and
// concatenates the results (the union of the generated join chains).
func Execute(db *engine.DB, tr *Translation) (*engine.Rows, error) {
	return ExecuteContext(context.Background(), db, tr)
}

// ExecuteContext is Execute under a context: cancellation aborts the
// current arm mid-scan and returns the context's error.
func ExecuteContext(ctx context.Context, db *engine.DB, tr *Translation) (*engine.Rows, error) {
	out := &engine.Rows{Cols: tr.Cols}
	for _, sql := range tr.SQLs {
		rows, err := db.QueryContext(ctx, sql)
		if err != nil {
			return nil, err
		}
		out.Data = append(out.Data, rows.Data...)
	}
	return out, nil
}

// ExecuteCursor streams a translation's result: the union arms open
// lazily, one engine cursor at a time, so the first arm's rows reach
// the caller before later arms have run (or been planned). The caller
// must Close the cursor unless it drains it.
func ExecuteCursor(ctx context.Context, db *engine.DB, tr *Translation) engine.Cursor {
	return &unionCursor{ctx: ctx, db: db, sqls: tr.SQLs, cols: tr.Cols}
}

// unionCursor concatenates the per-arm engine cursors. Close may be
// called from another goroutine while Next runs (the serve layer closes
// abandoned cursors from a request-context watchdog), so both entry
// points serialize on mu.
type unionCursor struct {
	ctx  context.Context
	db   *engine.DB
	sqls []string
	cols []string

	mu     sync.Mutex
	i      int
	cur    engine.Cursor
	row    []any
	err    error
	closed bool
}

func (u *unionCursor) Cols() []string { return u.cols }
func (u *unionCursor) Row() []any     { return u.row }

func (u *unionCursor) Err() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.err
}

func (u *unionCursor) Next() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	for {
		if u.closed || u.err != nil {
			return false
		}
		if u.cur == nil {
			if u.i >= len(u.sqls) {
				u.closeLocked()
				return false
			}
			cur, err := u.db.QueryCursorContext(u.ctx, u.sqls[u.i])
			u.i++
			if err != nil {
				u.err = err
				u.closeLocked()
				return false
			}
			u.cur = cur
		}
		if u.cur.Next() {
			u.row = u.cur.Row()
			return true
		}
		if err := u.cur.Err(); err != nil {
			u.err = err
			u.closeLocked()
			return false
		}
		u.cur = nil // arm exhausted (already self-closed); advance
	}
}

func (u *unionCursor) Close() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.closeLocked()
	return nil
}

func (u *unionCursor) closeLocked() {
	if u.closed {
		return
	}
	u.closed = true
	if u.cur != nil {
		u.cur.Close()
		u.cur = nil
	}
}

// translateTraced wraps Translate in a pathquery.translate span: path,
// whether the plan cache served it, and the number of union arms.
func translateTraced(ctx context.Context, t Translator, q *Query, path string) (*Translation, error) {
	sp := obs.TraceFrom(ctx).StartChild(obs.CurrentSpan(ctx), "pathquery.translate")
	tr, err := t.Translate(q)
	if sp != nil {
		sp.SetAttr("path", path)
		if tr != nil {
			sp.SetAttr("cached", tr.Cached)
			sp.SetAttr("arms", len(tr.SQLs))
		}
		sp.SetErr(err)
		sp.End()
	}
	return tr, err
}

// Run parses, translates and executes a path query in one call.
func Run(db *engine.DB, t Translator, path string) (*engine.Rows, error) {
	return RunContext(context.Background(), db, t, path)
}

// RunContext is Run under a context.
func RunContext(ctx context.Context, db *engine.DB, t Translator, path string) (*engine.Rows, error) {
	q, err := Parse(path)
	if err != nil {
		return nil, err
	}
	tr, err := translateTraced(ctx, t, q, path)
	if err != nil {
		return nil, err
	}
	return ExecuteContext(ctx, db, tr)
}

// RunCursor parses, translates and opens a streaming cursor over a path
// query's result. The caller must Close the cursor unless it drains it.
func RunCursor(ctx context.Context, db *engine.DB, t Translator, path string) (engine.Cursor, error) {
	q, err := Parse(path)
	if err != nil {
		return nil, err
	}
	tr, err := translateTraced(ctx, t, q, path)
	if err != nil {
		return nil, err
	}
	return ExecuteCursor(ctx, db, tr), nil
}

// ExplainContext renders the full EXPLAIN report for a translation: the
// translation header and generated SQL (Translation.Explain), followed
// by each arm's executed physical plan tree with per-operator row
// counts and timings.
func ExplainContext(ctx context.Context, db *engine.DB, tr *Translation) (string, error) {
	out := tr.Explain()
	for i, sql := range tr.SQLs {
		plan, err := db.ExplainQueryContext(ctx, sql)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("-- physical plan (arm %d):\n%s", i+1, plan)
	}
	return out, nil
}
