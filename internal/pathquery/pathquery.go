// Package pathquery implements a small XPath-like path language and its
// translation to SQL over shredded XML stores — the paper's §5 "Query
// Processing" direction ("how do we transform XQL or XML-QL queries into
// meaningful SQL queries?").
//
// Supported syntax:
//
//	/a/b/c              child steps from a document root
//	//c                 descendant step (any depth, bounded)
//	/a/*/c              wildcard element step
//	/a/b[@x='v']        attribute equality predicate
//	/a/b[@x]            attribute existence predicate
//	/a/b[text()='v']    text predicate on PCDATA content
//	/a/b/text()         project the element's text value
//	/a/b/@x             project an attribute value
//
// A Translation holds one or more SELECT statements whose union is the
// query result: descendant steps over recursive DTDs enumerate the
// acyclic-bounded join chains the relational schema requires, which is
// precisely the effect the paper's evaluation questions probe.
package pathquery

import (
	"fmt"
	"strings"
)

// Axis selects how a step relates to its context.
type Axis int

// Axes.
const (
	// AxisChild is the "/" step.
	AxisChild Axis = iota + 1
	// AxisDescendant is the "//" step (descendant-or-self of a child).
	AxisDescendant
)

// Pred is one step predicate.
type Pred struct {
	// Attr names an attribute predicate; empty for text() predicates.
	Attr string
	// Text marks a text() = 'v' predicate.
	Text bool
	// Value is the comparison literal; HasValue false means existence.
	Value    string
	HasValue bool
}

// Step is one location step.
type Step struct {
	// Axis is child or descendant.
	Axis Axis
	// Name is the element name, or "*".
	Name string
	// Preds are the step's predicates.
	Preds []Pred
}

// ProjKind selects the query output.
type ProjKind int

// Projections.
const (
	// ProjElement returns matched element identity (doc, id).
	ProjElement ProjKind = iota + 1
	// ProjText returns the matched element's text value.
	ProjText
	// ProjAttr returns an attribute of the matched element.
	ProjAttr
)

// Query is a parsed path query.
type Query struct {
	// Steps are the location steps, outermost first.
	Steps []Step
	// Proj selects the output; AttrName names the attribute for ProjAttr.
	Proj     ProjKind
	AttrName string
}

// String renders the query in path syntax.
func (q *Query) String() string {
	var b strings.Builder
	for _, s := range q.Steps {
		if s.Axis == AxisDescendant {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		b.WriteString(s.Name)
		for _, p := range s.Preds {
			b.WriteString("[")
			switch {
			case p.Text:
				b.WriteString("text()")
			default:
				b.WriteString("@" + p.Attr)
			}
			if p.HasValue {
				b.WriteString("='" + p.Value + "'")
			}
			b.WriteString("]")
		}
	}
	switch q.Proj {
	case ProjText:
		b.WriteString("/text()")
	case ProjAttr:
		b.WriteString("/@" + q.AttrName)
	}
	return b.String()
}

// Depth returns the number of location steps.
func (q *Query) Depth() int { return len(q.Steps) }

// Parse parses a path query.
func Parse(src string) (*Query, error) {
	p := &pparser{src: src}
	return p.parse()
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type pparser struct {
	src string
	pos int
}

func (p *pparser) errf(format string, args ...any) error {
	return fmt.Errorf("pathquery: at %d in %q: %s", p.pos, p.src, fmt.Sprintf(format, args...))
}

func (p *pparser) eof() bool { return p.pos >= len(p.src) }

func (p *pparser) parse() (*Query, error) {
	q := &Query{Proj: ProjElement}
	if p.eof() || p.src[p.pos] != '/' {
		return nil, p.errf("path must start with '/'")
	}
	for !p.eof() {
		axis := AxisChild
		if !strings.HasPrefix(p.src[p.pos:], "/") {
			return nil, p.errf("expected '/'")
		}
		p.pos++
		if !p.eof() && p.src[p.pos] == '/' {
			axis = AxisDescendant
			p.pos++
		}
		// Terminal projections.
		if strings.HasPrefix(p.src[p.pos:], "text()") {
			if axis == AxisDescendant {
				return nil, p.errf("//text() is not supported")
			}
			p.pos += len("text()")
			if !p.eof() {
				return nil, p.errf("text() must end the path")
			}
			if len(q.Steps) == 0 {
				return nil, p.errf("text() needs a preceding step")
			}
			q.Proj = ProjText
			return q, nil
		}
		if !p.eof() && p.src[p.pos] == '@' {
			p.pos++
			name, err := p.name()
			if err != nil {
				return nil, err
			}
			if !p.eof() {
				return nil, p.errf("@%s must end the path", name)
			}
			if len(q.Steps) == 0 {
				return nil, p.errf("attribute projection needs a preceding step")
			}
			q.Proj = ProjAttr
			q.AttrName = name
			return q, nil
		}
		var name string
		if !p.eof() && p.src[p.pos] == '*' {
			p.pos++
			name = "*"
		} else {
			var err error
			name, err = p.name()
			if err != nil {
				return nil, err
			}
		}
		step := Step{Axis: axis, Name: name}
		for !p.eof() && p.src[p.pos] == '[' {
			pred, err := p.pred()
			if err != nil {
				return nil, err
			}
			step.Preds = append(step.Preds, pred)
		}
		q.Steps = append(q.Steps, step)
	}
	if len(q.Steps) == 0 {
		return nil, p.errf("empty path")
	}
	return q, nil
}

func (p *pparser) name() (string, error) {
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if c == '/' || c == '[' || c == ']' || c == '@' || c == '=' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected a name")
	}
	return p.src[start:p.pos], nil
}

func (p *pparser) pred() (Pred, error) {
	p.pos++ // consume '['
	var pred Pred
	switch {
	case strings.HasPrefix(p.src[p.pos:], "text()"):
		p.pos += len("text()")
		pred.Text = true
	case !p.eof() && p.src[p.pos] == '@':
		p.pos++
		name, err := p.name()
		if err != nil {
			return pred, err
		}
		pred.Attr = name
	default:
		return pred, p.errf("predicate must be @attr or text()")
	}
	if !p.eof() && p.src[p.pos] == '=' {
		p.pos++
		if p.eof() || p.src[p.pos] != '\'' {
			return pred, p.errf("expected quoted literal")
		}
		p.pos++
		var sb strings.Builder
		closed := false
		for !p.eof() {
			if p.src[p.pos] == '\'' {
				if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\'' {
					sb.WriteByte('\'') // doubled quote escapes itself
					p.pos += 2
					continue
				}
				closed = true
				p.pos++
				break
			}
			sb.WriteByte(p.src[p.pos])
			p.pos++
		}
		if !closed {
			return pred, p.errf("unterminated literal")
		}
		pred.Value = sb.String()
		pred.HasValue = true
	}
	if p.eof() || p.src[p.pos] != ']' {
		return pred, p.errf("expected ']'")
	}
	p.pos++
	return pred, nil
}

// Translation is the SQL form of a path query: the union of the SQLs is
// the result.
type Translation struct {
	// SQLs are SELECT statements; their union is the query result.
	SQLs []string
	// Cols describes the output columns.
	Cols []string
	// Joins is the number of join predicates in the largest statement —
	// the cost proxy experiments E6/E9 report.
	Joins int
	// Stats are the plan statistics the EXPLAIN mode and the metrics
	// layer report (filled by the ER translator; baselines leave it
	// zero and Explain falls back to derivable values).
	Stats PlanStats
	// Cached marks a translation served from a plan cache (set on the
	// returned copy, never on the cached entry).
	Cached bool
}

// PlanStats accounts for what a translation cost and what the mapping
// saved: how many join chains the query expanded into, the join
// predicates emitted, and — the paper's step-2 claim made measurable —
// the joins avoided because distilled attributes resolved a child step
// to a parent column.
type PlanStats struct {
	// Arms is the number of union arms (join chains) generated.
	Arms int
	// JoinsTotal is the join-predicate count summed over all arms;
	// JoinsMax is the largest single arm (equals Translation.Joins).
	JoinsTotal int
	JoinsMax   int
	// DistilledSteps counts location steps that resolved to a distilled
	// parent column; JoinsAvoided is the join predicates those steps
	// would have cost under the same strategy without distilling.
	DistilledSteps int
	JoinsAvoided   int
}

// Explain renders the translation as the EXPLAIN report: one plan-stats
// header line followed by the generated SQL statements.
func (tr *Translation) Explain() string {
	arms := tr.Stats.Arms
	if arms == 0 {
		arms = len(tr.SQLs)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "-- plan: arms=%d joins-max=%d joins-total=%d joins-avoided=%d distilled-steps=%d\n",
		arms, tr.Joins, tr.Stats.JoinsTotal, tr.Stats.JoinsAvoided, tr.Stats.DistilledSteps)
	if tr.Cached {
		b.WriteString("-- plan-cache: hit\n")
	}
	for _, s := range tr.SQLs {
		b.WriteString(s)
		b.WriteString(";\n")
	}
	return b.String()
}

// Translator converts path queries to SQL for one storage mapping. The
// ER mapping and each baseline implement it.
type Translator interface {
	// Translate converts a parsed query.
	Translate(q *Query) (*Translation, error)
	// Name identifies the mapping for reports.
	Name() string
}
