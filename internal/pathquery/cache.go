package pathquery

import (
	"container/list"
	"strconv"
	"sync"

	"xmlrdb/internal/obs"
)

// DefaultCacheSize is the entry capacity a Cache gets when none is
// requested.
const DefaultCacheSize = 256

// Cache is an LRU translation (plan) cache wrapping any Translator.
// Keys combine the wrapped translator's name, the database's statistics
// epoch and the query's canonical path rendering, so pipelines that
// switch strategies never serve a plan built for another mapping, and
// plans compiled before an ANALYZE (against older statistics) never
// outlive it: the epoch bump re-keys every lookup and the stale entries
// age out of the LRU. Cached translations are shared and read-only; a
// hit returns a shallow copy with Cached set, which Explain renders as
// a cache-hit note.
//
// Cache itself implements Translator and is safe for concurrent use.
type Cache struct {
	t     Translator
	obs   *obs.Metrics
	epoch func() uint64 // statistics epoch source; nil means unversioned

	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	tr  *Translation
}

// NewCache wraps t with an LRU plan cache of the given capacity
// (entries); size <= 0 selects DefaultCacheSize.
func NewCache(t Translator, size int) *Cache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &Cache{t: t, max: size, ll: list.New(), m: make(map[string]*list.Element)}
}

// SetObserver attaches a metrics hub recording hits, misses and
// evictions. Attach before concurrent use.
func (c *Cache) SetObserver(m *obs.Metrics) { c.obs = m }

// SetEpochSource attaches the statistics-epoch source (typically the
// engine's DB.StatsEpoch) that versions every cache key. Attach before
// concurrent use.
func (c *Cache) SetEpochSource(fn func() uint64) { c.epoch = fn }

// Invalidate drops every cached plan. ANALYZE calls it so plans whose
// SQL or costing assumptions predate the new statistics are rebuilt
// immediately rather than lingering until LRU pressure ages them out.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.obs != nil {
		for n := c.ll.Len(); n > 0; n-- {
			c.obs.PlanCacheEvictions.Inc()
		}
	}
	c.ll.Init()
	c.m = make(map[string]*list.Element)
}

// key renders one versioned cache key.
func (c *Cache) key(q *Query) string {
	var epoch uint64
	if c.epoch != nil {
		epoch = c.epoch()
	}
	return c.t.Name() + "\x00" + strconv.FormatUint(epoch, 10) + "\x00" + q.String()
}

// Name reports the wrapped translator's name.
func (c *Cache) Name() string { return c.t.Name() }

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Translate returns the cached translation of q, translating and
// caching on a miss. Translation errors are not cached (they are cheap
// to reproduce and may be transient across schema changes).
func (c *Cache) Translate(q *Query) (*Translation, error) {
	key := c.key(q)
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		tr := el.Value.(*cacheEntry).tr
		c.mu.Unlock()
		if c.obs != nil {
			c.obs.PlanCacheHits.Inc()
		}
		cp := *tr // the entry is shared: flag the copy, not the original
		cp.Cached = true
		return &cp, nil
	}
	c.mu.Unlock()
	if c.obs != nil {
		c.obs.PlanCacheMisses.Inc()
	}
	tr, err := c.t.Translate(q)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, dup := c.m[key]; !dup { // a racing miss may have filled it
		c.m[key] = c.ll.PushFront(&cacheEntry{key: key, tr: tr})
		if c.ll.Len() > c.max {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.m, back.Value.(*cacheEntry).key)
			if c.obs != nil {
				c.obs.PlanCacheEvictions.Inc()
			}
		}
	}
	c.mu.Unlock()
	return tr, nil
}
