package pathquery

import (
	"container/list"
	"sync"

	"xmlrdb/internal/obs"
)

// DefaultCacheSize is the entry capacity a Cache gets when none is
// requested.
const DefaultCacheSize = 256

// Cache is an LRU translation (plan) cache wrapping any Translator.
// Keys combine the wrapped translator's name with the query's canonical
// path rendering, so pipelines that switch strategies never serve a
// plan built for another mapping. Cached translations are shared and
// read-only; a hit returns a shallow copy with Cached set, which
// Explain renders as a cache-hit note.
//
// Cache itself implements Translator and is safe for concurrent use.
type Cache struct {
	t   Translator
	obs *obs.Metrics

	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	tr  *Translation
}

// NewCache wraps t with an LRU plan cache of the given capacity
// (entries); size <= 0 selects DefaultCacheSize.
func NewCache(t Translator, size int) *Cache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &Cache{t: t, max: size, ll: list.New(), m: make(map[string]*list.Element)}
}

// SetObserver attaches a metrics hub recording hits, misses and
// evictions. Attach before concurrent use.
func (c *Cache) SetObserver(m *obs.Metrics) { c.obs = m }

// Name reports the wrapped translator's name.
func (c *Cache) Name() string { return c.t.Name() }

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Translate returns the cached translation of q, translating and
// caching on a miss. Translation errors are not cached (they are cheap
// to reproduce and may be transient across schema changes).
func (c *Cache) Translate(q *Query) (*Translation, error) {
	key := c.t.Name() + "\x00" + q.String()
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		tr := el.Value.(*cacheEntry).tr
		c.mu.Unlock()
		if c.obs != nil {
			c.obs.PlanCacheHits.Inc()
		}
		cp := *tr // the entry is shared: flag the copy, not the original
		cp.Cached = true
		return &cp, nil
	}
	c.mu.Unlock()
	if c.obs != nil {
		c.obs.PlanCacheMisses.Inc()
	}
	tr, err := c.t.Translate(q)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, dup := c.m[key]; !dup { // a racing miss may have filled it
		c.m[key] = c.ll.PushFront(&cacheEntry{key: key, tr: tr})
		if c.ll.Len() > c.max {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.m, back.Value.(*cacheEntry).key)
			if c.obs != nil {
				c.obs.PlanCacheEvictions.Inc()
			}
		}
	}
	c.mu.Unlock()
	return tr, nil
}
