package baselines

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/xmltree"
)

// loadAll creates the mapping's schema in a fresh db and loads the
// paper's three fixture documents.
func loadAll(t *testing.T, m Mapping) *engine.DB {
	t.Helper()
	db := engine.Open()
	if err := db.CreateSchema(m.Schema()); err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{paper.BookXML, paper.ArticleXML, paper.EditorXML} {
		doc, err := xmltree.ParseWith(src, xmltree.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Load(db, doc, fmt.Sprintf("doc%d", i)); err != nil {
			t.Fatalf("%s: load doc %d: %v", m.Name(), i, err)
		}
	}
	return db
}

func allMappings(t *testing.T) []Mapping {
	t.Helper()
	ms, err := All(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// queryCount runs a path query and returns the row count.
func queryCount(t *testing.T, m Mapping, db *engine.DB, path string) int {
	t.Helper()
	tr := m.Translator()
	q, err := pathquery.Parse(path)
	if err != nil {
		t.Fatal(err)
	}
	trans, err := tr.Translate(q)
	if err != nil {
		t.Fatalf("%s: translate %s: %v", m.Name(), path, err)
	}
	rows, err := pathquery.Execute(db, trans)
	if err != nil {
		t.Fatalf("%s: execute %s: %v", m.Name(), path, err)
	}
	return len(rows.Data)
}

// TestAllMappingsAgreeOnQueries is the cross-mapping differential test:
// every mapping must return the same result cardinalities for the same
// path queries over the same corpus.
func TestAllMappingsAgreeOnQueries(t *testing.T) {
	queries := map[string]int{
		"/book":                                    1,
		"/book/author":                             2,
		"/article/author":                          3,
		"/article/author[@id='wlee']":              1,
		"//author":                                 7,
		"/article/author/name":                     3,
		"/editor/book":                             1,
		"/editor/monograph/author":                 1,
		"/article/affiliation":                     2,
		"/article/contactauthor":                   1,
		"/article/contactauthor[@authorid='wlee']": 1,
	}
	for _, m := range allMappings(t) {
		db := loadAll(t, m)
		for path, want := range queries {
			if got := queryCount(t, m, db, path); got != want {
				t.Errorf("%s: %s = %d rows, want %d", m.Name(), path, got, want)
			}
		}
	}
}

func TestTextProjectionAcrossMappings(t *testing.T) {
	for _, m := range allMappings(t) {
		db := loadAll(t, m)
		tr := m.Translator()
		q := pathquery.MustParse("/book/booktitle/text()")
		trans, err := tr.Translate(q)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		rows, err := pathquery.Execute(db, trans)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(rows.Data) != 1 || rows.Data[0][2] != "XML RDBMS" {
			t.Errorf("%s: booktitle text = %v", m.Name(), rows.Data)
		}
	}
}

// TestJoinCostOrdering checks the headline cost shape: for a deep path,
// the edge table needs at least as many joins as every schema-aware
// mapping, and the ER mapping's distilled leaf beats edge's extra text
// join.
func TestJoinCostOrdering(t *testing.T) {
	ms := allMappings(t)
	joins := map[string]int{}
	q := pathquery.MustParse("/article/author/name")
	for _, m := range ms {
		trans, err := m.Translator().Translate(q)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		joins[m.Name()] = trans.Joins
	}
	if joins["edge"] < joins["shared"] {
		t.Errorf("edge joins (%d) should be >= shared joins (%d)", joins["edge"], joins["shared"])
	}
	// Shared inlining collapses name into author: fewer joins than the
	// junction-table ER mapping.
	if joins["shared"] >= joins["er-junction"] {
		t.Errorf("shared (%d) should be < er-junction (%d)", joins["shared"], joins["er-junction"])
	}
	t.Logf("join counts for /article/author/name: %v", joins)
}

func TestSchemaSizeOrdering(t *testing.T) {
	ms := allMappings(t)
	tables := map[string]int{}
	for _, m := range ms {
		tables[m.Name()] = len(m.Schema().Tables)
	}
	if tables["edge"] != 2 {
		t.Errorf("edge tables = %d, want 2", tables["edge"])
	}
	if tables["universal"] != 2 {
		t.Errorf("universal tables = %d, want 2", tables["universal"])
	}
	if !(tables["basic"] > tables["shared"] && tables["shared"] >= tables["hybrid"]) {
		t.Errorf("inlining table counts out of order: %v", tables)
	}
	if tables["er-junction"] <= tables["er-fold-fk"] {
		t.Errorf("junction should have more tables than fold: %v", tables)
	}
	t.Logf("table counts: %v", tables)
}

func TestInliningTableChoice(t *testing.T) {
	d := dtd.MustParse(paper.Example1DTD)

	basic := NewInlining(d, Basic)
	for _, name := range d.ElementOrder {
		if !basic.tableElems[name] {
			t.Errorf("basic should give %q a table", name)
		}
	}

	shared := NewInlining(d, Shared)
	// name has indegree 1, not recursive, not repeated: inlined.
	if shared.tableElems["name"] {
		t.Error("shared should inline name into author")
	}
	// author is repeated (author*): table.
	if !shared.tableElems["author"] {
		t.Error("shared should table author")
	}
	// book/editor/monograph are recursive: tables.
	for _, n := range []string{"book", "editor", "monograph"} {
		if !shared.tableElems[n] {
			t.Errorf("shared should table recursive %q", n)
		}
	}
	// title has two parents (article, monograph): table under shared.
	if !shared.tableElems["title"] {
		t.Error("shared should table multi-parent title")
	}

	hybrid := NewInlining(d, Hybrid)
	// hybrid inlines the multi-parent, non-recursive title.
	if hybrid.tableElems["title"] {
		t.Error("hybrid should inline title")
	}

	// Inlined columns: author table has name_txt? name has children
	// firstname/lastname, so author's table gets name_firstname_txt etc.
	at := shared.tables["author"]
	if at == nil {
		t.Fatal("author table missing")
	}
	if _, ok := at.colOf[keyTxt([]string{"name", "firstname"})]; !ok {
		t.Errorf("author columns = %v", at.colOf)
	}
	if _, ok := at.colOf[keyAttr(nil, "id")]; !ok {
		t.Errorf("author id column missing: %v", at.colOf)
	}
}

func TestEdgeLoadCounts(t *testing.T) {
	m := NewEdge()
	db := engine.Open()
	if err := db.CreateSchema(m.Schema()); err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParse(`<a x="1"><b>t</b><c/></a>`)
	st, err := m.Load(db, doc, "d")
	if err != nil {
		t.Fatal(err)
	}
	// rows: a, @x, b, text(t), c = 5
	if st.Rows != 5 {
		t.Errorf("rows = %d, want 5", st.Rows)
	}
	if db.RowCount("edge") != 5 {
		t.Errorf("edge rows = %d", db.RowCount("edge"))
	}
}

func TestUniversalWidth(t *testing.T) {
	m := NewUniversal(dtd.MustParse(paper.Example1DTD))
	def := m.Schema().Table("uni")
	// 6 fixed + distinct attrs: authorid, name, id = 9.
	if len(def.Columns) != 9 {
		t.Errorf("uni columns = %d: %v", len(def.Columns), def.ColumnNames())
	}
}

func TestInlineRejectsNonconformingDoc(t *testing.T) {
	m := NewInlining(dtd.MustParse(paper.Example1DTD), Shared)
	db := engine.Open()
	if err := db.CreateSchema(m.Schema()); err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParse(`<zap/>`)
	if _, err := m.Load(db, doc, "bad"); err == nil {
		t.Error("undeclared root should fail")
	}
}

func TestDescendantConsistency(t *testing.T) {
	// //lastname via different mappings: inlined stores count the
	// occurrences too (lastname is inlined under author in shared).
	var counts []int
	var names []string
	for _, m := range allMappings(t) {
		db := loadAll(t, m)
		tr := m.Translator()
		q := pathquery.MustParse("//lastname")
		trans, err := tr.Translate(q)
		if err != nil {
			// The ER mapping distills lastname into name: //lastname is
			// not addressable as an element there. That asymmetry is a
			// real property of the mapping, not a bug; skip those.
			if strings.HasPrefix(m.Name(), "er-") {
				continue
			}
			t.Fatalf("%s: %v", m.Name(), err)
		}
		rows, err := pathquery.Execute(db, trans)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		counts = append(counts, len(rows.Data))
		names = append(names, m.Name())
	}
	sort.Ints(counts)
	if len(counts) > 0 && counts[0] != counts[len(counts)-1] {
		t.Errorf("descendant counts disagree: %v %v", names, counts)
	}
	// 7 authors, each with a name/lastname.
	if len(counts) > 0 && counts[0] != 7 {
		t.Errorf("//lastname = %d, want 7", counts[0])
	}
}

func TestLoadStatsRowsMatchStorage(t *testing.T) {
	for _, m := range allMappings(t) {
		db := engine.Open()
		if err := db.CreateSchema(m.Schema()); err != nil {
			t.Fatal(err)
		}
		doc := xmltree.MustParse(paper.BookXML)
		st, err := m.Load(db, doc, "b")
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if st.Rows <= 0 {
			t.Errorf("%s: rows = %d", m.Name(), st.Rows)
		}
		if db.TotalRows() == 0 {
			t.Errorf("%s: nothing stored", m.Name())
		}
	}
}
