package baselines

import (
	"fmt"
	"strings"

	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/rel"
	"xmlrdb/internal/xmltree"
)

// EdgeMapping is the schema-oblivious Edge-table approach of Florescu
// and Kossmann: every parent-child edge, attribute and text value is a
// row of one table. It needs no DTD at all, loads fast, and pays one
// self-join per path step — the shape experiments E4–E6 exhibit.
type EdgeMapping struct {
	counter docCounter
}

// NewEdge returns an edge-table mapping.
func NewEdge() *EdgeMapping { return &EdgeMapping{} }

// Name implements Mapping.
func (m *EdgeMapping) Name() string { return "edge" }

// Schema implements Mapping: one edge table plus the document registry.
func (m *EdgeMapping) Schema() *rel.Schema {
	s := rel.NewSchema("edge")
	must := func(err error) {
		if err != nil {
			panic(err) // static definitions; cannot fail
		}
	}
	must(s.AddTable(&rel.Table{
		Name:    "edge",
		Comment: "every XML edge: elements, attributes and text values",
		Columns: []rel.Column{
			{Name: "doc", Type: rel.TypeInt, NotNull: true},
			{Name: "src", Type: rel.TypeInt, NotNull: true}, // 0 = document node
			{Name: "ord", Type: rel.TypeInt, NotNull: true},
			{Name: "label", Type: rel.TypeText, NotNull: true},
			{Name: "kind", Type: rel.TypeText, NotNull: true}, // element | attr | text
			{Name: "target", Type: rel.TypeInt},               // element edges
			{Name: "value", Type: rel.TypeText},               // attr and text edges
		},
	}))
	must(s.AddTable(&rel.Table{
		Name:    "x_docs",
		Comment: "document registry",
		Columns: []rel.Column{
			{Name: "doc", Type: rel.TypeInt, NotNull: true},
			{Name: "name", Type: rel.TypeText},
			{Name: "root_type", Type: rel.TypeText, NotNull: true},
			{Name: "root", Type: rel.TypeInt, NotNull: true},
		},
		PrimaryKey: []string{"doc"},
	}))
	return s
}

// Load implements Mapping.
func (m *EdgeMapping) Load(db Engine, doc *xmltree.Document, name string) (LoadStats, error) {
	if doc.Root == nil {
		return LoadStats{}, fmt.Errorf("edge: document %q has no root", name)
	}
	docID := m.counter.doc()
	stats := LoadStats{DocID: docID}
	var loadEl func(el *xmltree.Node, src int64, ord int) (int64, error)
	loadEl = func(el *xmltree.Node, src int64, ord int) (int64, error) {
		id := m.counter.node()
		if _, err := db.Insert("edge", []any{docID, src, ord, el.Name, "element", id, nil}); err != nil {
			return 0, err
		}
		stats.Rows++
		for i, a := range el.Attrs {
			if _, err := db.Insert("edge", []any{docID, id, i, a.Name, "attr", nil, a.Value}); err != nil {
				return 0, err
			}
			stats.Rows++
		}
		for i, c := range el.Children {
			switch c.Kind {
			case xmltree.ElementNode:
				if _, err := loadEl(c, id, i); err != nil {
					return 0, err
				}
			case xmltree.TextNode:
				if strings.TrimSpace(c.Data) == "" && el.HasElementChildren() {
					continue // insignificant whitespace between elements
				}
				if _, err := db.Insert("edge", []any{docID, id, i, "#text", "text", nil, c.Data}); err != nil {
					return 0, err
				}
				stats.Rows++
			}
		}
		return id, nil
	}
	rootID, err := loadEl(doc.Root, 0, 0)
	if err != nil {
		return stats, fmt.Errorf("edge: document %q: %w", name, err)
	}
	if _, err := db.Insert("x_docs", []any{docID, name, doc.Root.Name, rootID}); err != nil {
		return stats, err
	}
	return stats, nil
}

// Translator implements Mapping.
func (m *EdgeMapping) Translator() pathquery.Translator {
	return &edgeTranslator{maxDepth: 8}
}

type edgeTranslator struct {
	maxDepth int
}

func (t *edgeTranslator) Name() string { return "edge" }

// edgeAccess is one partial chain of edge self-joins.
type edgeAccess struct {
	alias string // alias of the edge row matching the current element
	froms []string
	conds []string
	joins int
	next  int
}

// Translate implements pathquery.Translator: each child step is one
// self-join of the edge table; descendant steps union the chains of
// length 1..maxDepth.
func (t *edgeTranslator) Translate(q *pathquery.Query) (*pathquery.Translation, error) {
	first := q.Steps[0]
	a := edgeAccess{alias: "g0", froms: []string{"edge g0"}, next: 1}
	a.conds = append(a.conds, "g0.kind = 'element'")
	if first.Name != "*" {
		a.conds = append(a.conds, fmt.Sprintf("g0.label = '%s'", escapeSQL(first.Name)))
	}
	if first.Axis == pathquery.AxisChild {
		// Anchor at document roots via the registry, like every other
		// mapping, so join counts are comparable.
		a.froms = append(a.froms, "x_docs xd")
		a.conds = append(a.conds, fmt.Sprintf("xd.root = %s.target", a.alias))
		if first.Name != "*" {
			a.conds = append(a.conds, fmt.Sprintf("xd.root_type = '%s'", escapeSQL(first.Name)))
		}
		a.joins++
	}
	cur := []edgeAccess{a}
	var err error
	if cur, err = t.applyPreds(cur, first.Preds); err != nil {
		return nil, err
	}
	for si := 1; si < len(q.Steps); si++ {
		step := q.Steps[si]
		var next []edgeAccess
		for _, acc := range cur {
			switch step.Axis {
			case pathquery.AxisChild:
				next = append(next, t.childStep(acc, step.Name))
			case pathquery.AxisDescendant:
				for depth := 1; depth <= t.maxDepth; depth++ {
					b := acc
					for i := 0; i < depth-1; i++ {
						b = t.childStep(b, "*")
					}
					next = append(next, t.childStep(b, step.Name))
				}
			}
		}
		if cur, err = t.applyPreds(next, step.Preds); err != nil {
			return nil, err
		}
	}
	tr := &pathquery.Translation{}
	for _, acc := range cur {
		var sel string
		switch q.Proj {
		case pathquery.ProjText:
			v := fmt.Sprintf("v%d", acc.next)
			acc.froms = append(acc.froms, "edge "+v)
			acc.conds = append(acc.conds,
				fmt.Sprintf("%s.src = %s.target", v, acc.alias),
				fmt.Sprintf("%s.kind = 'text'", v))
			acc.joins++
			sel = fmt.Sprintf("%s.doc, %s.target, %s.value AS value", acc.alias, acc.alias, v)
			tr.Cols = []string{"doc", "id", "value"}
		case pathquery.ProjAttr:
			v := fmt.Sprintf("v%d", acc.next)
			acc.froms = append(acc.froms, "edge "+v)
			acc.conds = append(acc.conds,
				fmt.Sprintf("%s.src = %s.target", v, acc.alias),
				fmt.Sprintf("%s.kind = 'attr'", v),
				fmt.Sprintf("%s.label = '%s'", v, escapeSQL(q.AttrName)))
			acc.joins++
			sel = fmt.Sprintf("%s.doc, %s.target, %s.value AS value", acc.alias, acc.alias, v)
			tr.Cols = []string{"doc", "id", "value"}
		default:
			sel = fmt.Sprintf("%s.doc, %s.target", acc.alias, acc.alias)
			tr.Cols = []string{"doc", "id"}
		}
		sql := "SELECT " + sel + " FROM " + strings.Join(acc.froms, ", ") +
			" WHERE " + strings.Join(acc.conds, " AND ")
		tr.SQLs = append(tr.SQLs, sql)
		if acc.joins > tr.Joins {
			tr.Joins = acc.joins
		}
	}
	return tr, nil
}

func (t *edgeTranslator) childStep(a edgeAccess, name string) edgeAccess {
	b := edgeAccess{
		alias: fmt.Sprintf("g%d", a.next),
		froms: append(append([]string(nil), a.froms...), fmt.Sprintf("edge g%d", a.next)),
		conds: append([]string(nil), a.conds...),
		joins: a.joins + 1,
		next:  a.next + 1,
	}
	b.conds = append(b.conds,
		fmt.Sprintf("%s.src = %s.target", b.alias, a.alias),
		fmt.Sprintf("%s.kind = 'element'", b.alias))
	if name != "*" {
		b.conds = append(b.conds, fmt.Sprintf("%s.label = '%s'", b.alias, escapeSQL(name)))
	}
	return b
}

func (t *edgeTranslator) applyPreds(paths []edgeAccess, preds []pathquery.Pred) ([]edgeAccess, error) {
	if len(preds) == 0 {
		return paths, nil
	}
	out := make([]edgeAccess, 0, len(paths))
	for _, a := range paths {
		b := a
		b.froms = append([]string(nil), a.froms...)
		b.conds = append([]string(nil), a.conds...)
		for _, p := range preds {
			alias := fmt.Sprintf("p%d", b.next)
			b.next++
			b.froms = append(b.froms, "edge "+alias)
			b.conds = append(b.conds, fmt.Sprintf("%s.src = %s.target", alias, b.alias))
			b.joins++
			if p.Text {
				b.conds = append(b.conds, fmt.Sprintf("%s.kind = 'text'", alias))
			} else {
				b.conds = append(b.conds,
					fmt.Sprintf("%s.kind = 'attr'", alias),
					fmt.Sprintf("%s.label = '%s'", alias, escapeSQL(p.Attr)))
			}
			if p.HasValue {
				b.conds = append(b.conds, fmt.Sprintf("%s.value = '%s'", alias, escapeSQL(p.Value)))
			}
		}
		out = append(out, b)
	}
	return out, nil
}
