package baselines

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/wgen"
)

// TestDifferentialGeneratedWorkloads is the cross-mapping differential
// property: over random DTDs, random corpora, and random path queries,
// every mapping that can translate a query must return the same result
// multiset of (doc, id ordinal-free) cardinalities. The ER mappings may
// legitimately reject queries that address distilled elements as
// elements; those are skipped per-mapping, not globally.
func TestDifferentialGeneratedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test is heavyweight")
	}
	for seed := int64(1); seed <= 5; seed++ {
		d := wgen.GenerateDTD(wgen.DTDConfig{
			Elements: 18, Seed: seed, Levels: 4, AttrsPerElement: 2,
			IDProb: 0.3, OptionalProb: 0.3, RepeatProb: 0.4, ChoiceProb: 0.4,
		})
		docs, err := wgen.Corpus(d, 20, seed*31, wgen.DocConfig{MaxRepeat: 3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		maps, err := All(d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dbs := make([]*engine.DB, len(maps))
		for i, m := range maps {
			db := engine.Open()
			if err := db.CreateSchema(m.Schema()); err != nil {
				t.Fatalf("seed %d %s: %v", seed, m.Name(), err)
			}
			for di, doc := range docs {
				if _, err := m.Load(db, doc, fmt.Sprintf("d%d", di)); err != nil {
					t.Fatalf("seed %d %s doc %d: %v", seed, m.Name(), di, err)
				}
			}
			dbs[i] = db
		}
		queries := wgen.GenerateQueries(d, 15, seed*97, wgen.QueryConfig{Depth: 3, PredProb: 0.3})
		for _, qs := range queries {
			q, err := pathquery.Parse(qs)
			if err != nil {
				t.Fatalf("seed %d: parse %q: %v", seed, qs, err)
			}
			type outcome struct {
				name  string
				count int
				docs  string // sorted doc-count signature
			}
			var outs []outcome
			for i, m := range maps {
				trans, err := m.Translator().Translate(q)
				if err != nil {
					continue // mapping cannot address this query (e.g. distilled)
				}
				rows, err := pathquery.Execute(dbs[i], trans)
				if err != nil {
					t.Fatalf("seed %d %s: %q: %v", seed, m.Name(), qs, err)
				}
				perDoc := map[int64]int{}
				for _, r := range rows.Data {
					if docID, ok := r[0].(int64); ok {
						perDoc[docID]++
					}
				}
				var sig []string
				for docID, n := range perDoc {
					sig = append(sig, fmt.Sprintf("%d:%d", docID, n))
				}
				sort.Strings(sig)
				outs = append(outs, outcome{m.Name(), len(rows.Data), strings.Join(sig, ",")})
			}
			for _, o := range outs[1:] {
				if o.count != outs[0].count || o.docs != outs[0].docs {
					t.Errorf("seed %d: %q disagrees:\n  %s: %d (%s)\n  %s: %d (%s)",
						seed, qs, outs[0].name, outs[0].count, outs[0].docs,
						o.name, o.count, o.docs)
				}
			}
		}
	}
}

// TestDifferentialPaperCorpusGenerated runs generated article documents
// through every mapping and cross-checks a fixed query set.
func TestDifferentialPaperCorpusGenerated(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT article (title, (author, affiliation?)+, contactauthor?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT contactauthor EMPTY>
<!ATTLIST contactauthor authorid IDREF #IMPLIED>
<!ELEMENT author (name)>
<!ATTLIST author id ID #REQUIRED>
<!ELEMENT name (firstname?, lastname)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT affiliation ANY>
`)
	docs, err := wgen.Corpus(d, 40, 11, wgen.DocConfig{MaxRepeat: 4})
	if err != nil {
		t.Fatal(err)
	}
	maps, err := All(d)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"/article", "/article/author", "/article/author/name", "//affiliation"}
	counts := make(map[string][]int)
	for _, m := range maps {
		db := engine.Open()
		if err := db.CreateSchema(m.Schema()); err != nil {
			t.Fatal(err)
		}
		for di, doc := range docs {
			if _, err := m.Load(db, doc, fmt.Sprintf("d%d", di)); err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
		}
		for _, qs := range queries {
			trans, err := m.Translator().Translate(pathquery.MustParse(qs))
			if err != nil {
				t.Fatalf("%s: %q: %v", m.Name(), qs, err)
			}
			rows, err := pathquery.Execute(db, trans)
			if err != nil {
				t.Fatalf("%s: %q: %v", m.Name(), qs, err)
			}
			counts[qs] = append(counts[qs], len(rows.Data))
		}
	}
	for qs, ns := range counts {
		for _, n := range ns[1:] {
			if n != ns[0] {
				t.Errorf("%q: counts disagree across mappings: %v", qs, ns)
				break
			}
		}
	}
	if counts["/article"][0] != 40 {
		t.Errorf("/article = %d, want 40", counts["/article"][0])
	}
}
