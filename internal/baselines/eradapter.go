package baselines

import (
	"fmt"
	"sync"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/rel"
	"xmlrdb/internal/shred"
	"xmlrdb/internal/xmltree"
)

// ERAdapter presents the paper's ER mapping through the common Mapping
// interface, so the bench harness can compare it against the baselines
// on equal footing.
type ERAdapter struct {
	// Result is the core mapping output.
	Result *core.Result
	// Mapping is the relational translation.
	Mapping *ermap.Mapping

	mu      sync.Mutex
	loaders map[Engine]*shred.Loader
}

// NewER maps a DTD with the paper's algorithm and the given relational
// strategy.
func NewER(d *dtd.DTD, opts ermap.Options) (*ERAdapter, error) {
	res, err := core.Map(d)
	if err != nil {
		return nil, fmt.Errorf("er baseline: %w", err)
	}
	m, err := ermap.Build(res.Model, opts)
	if err != nil {
		return nil, fmt.Errorf("er baseline: %w", err)
	}
	return &ERAdapter{Result: res, Mapping: m, loaders: make(map[Engine]*shred.Loader)}, nil
}

// Name implements Mapping.
func (a *ERAdapter) Name() string { return "er-" + a.Mapping.Strategy.String() }

// Schema implements Mapping.
func (a *ERAdapter) Schema() *rel.Schema { return a.Mapping.Schema }

// Load implements Mapping.
func (a *ERAdapter) Load(db Engine, doc *xmltree.Document, name string) (LoadStats, error) {
	a.mu.Lock()
	l, ok := a.loaders[db]
	if !ok {
		var err error
		l, err = shred.NewLoader(a.Result, a.Mapping, db)
		if err != nil {
			a.mu.Unlock()
			return LoadStats{}, err
		}
		a.loaders[db] = l
	}
	a.mu.Unlock()
	st, err := l.LoadDocument(doc, name)
	if err != nil {
		return LoadStats{}, err
	}
	return LoadStats{
		DocID: st.DocID,
		Rows:  st.Elements + st.RelRows + st.RefRows + st.TextChunks + 1,
	}, nil
}

// Translator implements Mapping.
func (a *ERAdapter) Translator() pathquery.Translator {
	return pathquery.NewERTranslator(a.Result, a.Mapping)
}

// Interface compliance checks for every mapping implementation.
var (
	_ Mapping = (*ERAdapter)(nil)
	_ Mapping = (*EdgeMapping)(nil)
	_ Mapping = (*UniversalMapping)(nil)
	_ Mapping = (*InlineMapping)(nil)
)

// All returns one instance of every mapping for a DTD: the paper's ER
// mapping (both strategies) and the four baselines, in report order.
func All(d *dtd.DTD) ([]Mapping, error) {
	er1, err := NewER(d, ermap.Options{})
	if err != nil {
		return nil, err
	}
	er2, err := NewER(d, ermap.Options{Strategy: ermap.StrategyFoldFK})
	if err != nil {
		return nil, err
	}
	return []Mapping{
		er1, er2,
		NewEdge(),
		NewUniversal(d),
		NewInlining(d, Basic),
		NewInlining(d, Shared),
		NewInlining(d, Hybrid),
	}, nil
}
