// Package baselines implements the comparison mappings the paper's §6
// names as the context for its deferred evaluation: the Edge table of
// Florescu–Kossmann, a Universal table, and the Basic / Shared / Hybrid
// inlining strategies of Shanmugasundaram et al. (VLDB'99). Every
// baseline presents the same surface as the ER mapping — schema
// generation, document loading, and path-query translation — so the
// xmlbench harness can compare schema size (E4), loading throughput
// (E5), query joins and latency (E6/E9), and storage footprint (E12)
// across all of them.
package baselines

import (
	"sort"
	"sync"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/rel"
	"xmlrdb/internal/xmltree"
)

// Engine is the storage surface loaders write through (satisfied by
// *engine.DB).
type Engine interface {
	// Insert appends one row in column order.
	Insert(table string, row []any) (int, error)
	// InsertMap appends one row given as column->value.
	InsertMap(table string, vals map[string]any) (int, error)
}

// LoadStats reports what one document contributed.
type LoadStats struct {
	// DocID is the assigned document number.
	DocID int64
	// Rows counts inserted rows across all tables.
	Rows int
}

// Mapping is the common surface of an XML-to-relational mapping: the ER
// mapping of the paper and every baseline implement it.
type Mapping interface {
	// Name identifies the mapping in reports.
	Name() string
	// Schema returns the generated relational schema.
	Schema() *rel.Schema
	// Load shreds one document.
	Load(db Engine, doc *xmltree.Document, name string) (LoadStats, error)
	// Translator converts path queries to SQL over this schema.
	Translator() pathquery.Translator
}

// flat is the flattened structural view of a DTD shared by the
// baselines: per-element ordered child sets with repetition flags,
// in-degrees, recursion, text/any classification.
type flat struct {
	d     *dtd.DTD
	order []string // declaration order
	// children: element -> ordered distinct child names.
	children map[string][]string
	// repeated: element -> child -> the child may occur more than once.
	repeated map[string]map[string]bool
	// optionalChild: element -> child -> the child may be absent.
	optionalChild map[string]map[string]bool
	indegree      map[string]int
	recursive     map[string]bool
	hasText       map[string]bool // #PCDATA or mixed
	anyContent    map[string]bool
	roots         []string
}

func flatten(d *dtd.DTD) *flat {
	f := &flat{
		d:             d,
		order:         append([]string(nil), d.ElementOrder...),
		children:      make(map[string][]string),
		repeated:      make(map[string]map[string]bool),
		optionalChild: make(map[string]map[string]bool),
		indegree:      make(map[string]int),
		recursive:     make(map[string]bool),
		hasText:       make(map[string]bool),
		anyContent:    make(map[string]bool),
	}
	addChild := func(parent, child string, repeated, optional bool) {
		if f.repeated[parent] == nil {
			f.repeated[parent] = make(map[string]bool)
			f.optionalChild[parent] = make(map[string]bool)
		}
		if _, seen := f.repeated[parent][child]; !seen {
			f.children[parent] = append(f.children[parent], child)
			f.repeated[parent][child] = repeated
			f.optionalChild[parent][child] = optional
			return
		}
		// A second occurrence in the model means the child can repeat.
		f.repeated[parent][child] = true
		f.optionalChild[parent][child] = f.optionalChild[parent][child] && optional
	}
	for _, name := range f.order {
		decl := d.Elements[name]
		switch decl.Content.Kind {
		case dtd.ContentMixed:
			f.hasText[name] = true
			for _, child := range decl.Content.MixedNames {
				addChild(name, child, true, true)
			}
			if decl.Content.IsPCDataOnly() {
				// plain text leaf
			}
		case dtd.ContentAny:
			f.anyContent[name] = true
		case dtd.ContentChildren:
			var walk func(p *dtd.Particle, repeated, optional bool)
			walk = func(p *dtd.Particle, repeated, optional bool) {
				rep := repeated || p.Occ.Repeatable()
				opt := optional || p.Occ.Optional() || (p.Kind == dtd.PKChoice && len(p.Children) > 1)
				if p.Kind == dtd.PKName {
					addChild(name, p.Name, rep, opt)
					return
				}
				for _, ch := range p.Children {
					walk(ch, rep, opt)
				}
			}
			if decl.Content.Particle != nil {
				walk(decl.Content.Particle, false, false)
			}
		}
	}
	// In-degrees over distinct parent-child pairs.
	for _, parent := range f.order {
		for _, child := range f.children[parent] {
			f.indegree[child]++
		}
	}
	// Recursion: elements on a cycle in the child graph.
	f.recursive = findRecursive(f)
	for _, name := range f.order {
		if f.indegree[name] == 0 {
			f.roots = append(f.roots, name)
		}
	}
	if len(f.roots) == 0 && len(f.order) > 0 {
		// Fully recursive DTD: treat every declared element as a root
		// candidate so documents remain loadable.
		f.roots = append(f.roots, f.order...)
	}
	return f
}

// findRecursive returns the elements participating in a cycle.
func findRecursive(f *flat) map[string]bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	onCycle := make(map[string]bool)
	var stack []string
	var visit func(string)
	visit = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		for _, c := range f.children[n] {
			switch color[c] {
			case white:
				visit(c)
			case gray:
				// Everything on the stack from c onward is cyclic.
				for i := len(stack) - 1; i >= 0; i-- {
					onCycle[stack[i]] = true
					if stack[i] == c {
						break
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range f.order {
		if color[n] == white {
			visit(n)
		}
	}
	return onCycle
}

// textLeaf reports whether the element is pure #PCDATA (storable as one
// value).
func (f *flat) textLeaf(name string) bool {
	decl := f.d.Elements[name]
	return decl != nil && decl.Content.IsPCDataOnly()
}

// attNames returns the declared attribute names of an element in order.
func (f *flat) attNames(name string) []string {
	var out []string
	for _, a := range f.d.Atts(name) {
		out = append(out, a.Name)
	}
	return out
}

// sortedNames returns map keys sorted, for deterministic schemas.
func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// escapeSQL doubles single quotes for SQL literals.
func escapeSQL(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// innerXML serializes an element's children (raw storage of ANY
// content).
func innerXML(el *xmltree.Node) string {
	out := ""
	for _, c := range el.Children {
		out += c.XML()
	}
	return out
}

// docCounter allocates document and node ids for baseline loaders.
type docCounter struct {
	mu      sync.Mutex
	nextDoc int64
	nextID  int64
}

func (c *docCounter) doc() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextDoc++
	return c.nextDoc
}

func (c *docCounter) node() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}
