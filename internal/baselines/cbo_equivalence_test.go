package baselines

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/wgen"
)

// e9Queries is the E9 matrix: the per-query-class join-count queries
// over the paper DTD that EXPERIMENTS.md reports per mapping.
var e9Queries = []string{
	"/book",
	"/book/booktitle/text()",
	"/book/author",
	"/article/author/name",
	"/article/author[@id='wlee']",
	"/article/contactauthor[@authorid]",
	"//author",
	"/editor//editor",
}

// sortedRowSet renders every result row as JSON and sorts the
// renderings: join reordering and build-side swaps may change emission
// order, but the row multiset must be byte-identical.
func sortedRowSet(t *testing.T, db *engine.DB, trans *pathquery.Translation) []string {
	t.Helper()
	rows, err := pathquery.Execute(db, trans)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	out := make([]string, len(rows.Data))
	for i, r := range rows.Data {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

// TestCBOEquivalenceE9Matrix is the planner-equivalence battery the
// cost-based optimizer ships with: reordered plans must return
// byte-identical rows to the seed planner across the whole E9 matrix
// (every mapping × every query class), with and without statistics.
func TestCBOEquivalenceE9Matrix(t *testing.T) {
	d := dtd.MustParse(paper.Example1DTD)
	docs, err := wgen.Corpus(d, 30, 7, wgen.DocConfig{MaxRepeat: 4})
	if err != nil {
		t.Fatal(err)
	}
	maps, err := All(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range maps {
		db := engine.Open()
		if err := db.CreateSchema(m.Schema()); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for di, doc := range docs {
			if _, err := m.Load(db, doc, fmt.Sprintf("d%d", di)); err != nil {
				t.Fatalf("%s doc %d: %v", m.Name(), di, err)
			}
		}
		for _, qs := range e9Queries {
			trans, err := m.Translator().Translate(pathquery.MustParse(qs))
			if err != nil {
				continue // mapping cannot address this query class
			}
			db.SetCostBased(false)
			want := sortedRowSet(t, db, trans)
			check := func(variant string) {
				got := sortedRowSet(t, db, trans)
				if len(got) != len(want) {
					t.Errorf("%s %q [%s]: %d rows, seed planner %d",
						m.Name(), qs, variant, len(got), len(want))
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s %q [%s]: row %d = %s, seed planner %s",
							m.Name(), qs, variant, i, got[i], want[i])
						return
					}
				}
			}
			db.SetCostBased(true)
			check("cost, no stats")
			if err := db.Analyze(); err != nil {
				t.Fatalf("%s: analyze: %v", m.Name(), err)
			}
			check("cost, with stats")
		}
	}
}

// TestCBOEquivalenceGeneratedWorkloads widens the battery beyond the
// paper DTD: generated DTDs, corpora, and path queries, same
// byte-identical-rows contract per mapping.
func TestCBOEquivalenceGeneratedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("generated equivalence battery is heavyweight")
	}
	for seed := int64(1); seed <= 3; seed++ {
		d := wgen.GenerateDTD(wgen.DTDConfig{
			Elements: 14, Seed: seed, Levels: 4, AttrsPerElement: 2,
			IDProb: 0.3, OptionalProb: 0.3, RepeatProb: 0.4, ChoiceProb: 0.4,
		})
		docs, err := wgen.Corpus(d, 12, seed*31, wgen.DocConfig{MaxRepeat: 3})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		maps, err := All(d)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		queries := wgen.GenerateQueries(d, 10, seed*97, wgen.QueryConfig{Depth: 3, PredProb: 0.3})
		for _, m := range maps {
			db := engine.Open()
			if err := db.CreateSchema(m.Schema()); err != nil {
				t.Fatalf("seed %d %s: %v", seed, m.Name(), err)
			}
			for di, doc := range docs {
				if _, err := m.Load(db, doc, fmt.Sprintf("d%d", di)); err != nil {
					t.Fatalf("seed %d %s doc %d: %v", seed, m.Name(), di, err)
				}
			}
			if err := db.Analyze(); err != nil {
				t.Fatalf("seed %d %s: analyze: %v", seed, m.Name(), err)
			}
			for _, qs := range queries {
				trans, err := m.Translator().Translate(pathquery.MustParse(qs))
				if err != nil {
					continue
				}
				db.SetCostBased(false)
				want := sortedRowSet(t, db, trans)
				db.SetCostBased(true)
				got := sortedRowSet(t, db, trans)
				if len(got) != len(want) {
					t.Errorf("seed %d %s %q: %d rows, seed planner %d",
						seed, m.Name(), qs, len(got), len(want))
					continue
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("seed %d %s %q: row %d = %s, seed planner %s",
							seed, m.Name(), qs, i, got[i], want[i])
						break
					}
				}
			}
		}
	}
}
