package baselines

import (
	"fmt"
	"strings"

	"xmlrdb/internal/dtd"

	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/rel"
	"xmlrdb/internal/xmltree"
)

// InlineVariant selects an inlining strategy of Shanmugasundaram et al.
type InlineVariant int

// Inlining variants.
const (
	// Basic creates a relation for every element type.
	Basic InlineVariant = iota + 1
	// Shared creates relations only for roots, set-valued (repeatable)
	// children, recursive elements, and elements with multiple parents;
	// everything else inlines into its parent's relation.
	Shared
	// Hybrid additionally inlines multi-parent elements that are neither
	// recursive nor set-valued, duplicating their columns per parent.
	Hybrid
)

// String returns the variant name.
func (v InlineVariant) String() string {
	switch v {
	case Basic:
		return "basic"
	case Shared:
		return "shared"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("InlineVariant(%d)", int(v))
	}
}

// InlineMapping implements the Basic/Shared/Hybrid inlining baselines.
// Known lossiness, as reported in VLDB'99 and surfaced by experiment E7:
// the relative order of inlined siblings and the interleaving of mixed
// content are not represented, so inlined stores cannot reproduce
// byte-exact documents.
type InlineMapping struct {
	f       *flat
	variant InlineVariant
	// tableElems: element types that own a relation.
	tableElems map[string]bool
	tables     map[string]*inlineTable
	counter    docCounter
}

// inlineTable is the relation of one table element.
type inlineTable struct {
	name    string
	element string
	def     *rel.Table
	// colOf maps logical keys (path#txt, path@attr, path#raw) to column
	// names; the path is "__"-joined, empty for the element itself.
	colOf map[string]string
}

// logical column keys: path#txt, path#raw, path#p (presence), path@attr.
func keyTxt(prefix []string) string  { return strings.Join(prefix, "__") + "#txt" }
func keyPres(prefix []string) string { return strings.Join(prefix, "__") + "#p" }
func keyRaw(prefix []string) string  { return strings.Join(prefix, "__") + "#raw" }
func keyAttr(prefix []string, a string) string {
	return strings.Join(prefix, "__") + "@" + a
}

// NewInlining builds an inlining baseline for a DTD.
func NewInlining(d *dtd.DTD, variant InlineVariant) *InlineMapping {
	m := &InlineMapping{
		f:          flatten(d),
		variant:    variant,
		tableElems: make(map[string]bool),
		tables:     make(map[string]*inlineTable),
	}
	m.decideTables()
	m.buildTables()
	return m
}

func (m *InlineMapping) decideTables() {
	f := m.f
	repeatedAnywhere := make(map[string]bool)
	for _, parent := range f.order {
		for child, rep := range f.repeated[parent] {
			if rep {
				repeatedAnywhere[child] = true
			}
		}
	}
	for _, name := range f.order {
		switch m.variant {
		case Basic:
			m.tableElems[name] = true
		case Shared:
			if f.indegree[name] == 0 || f.indegree[name] >= 2 ||
				f.recursive[name] || repeatedAnywhere[name] {
				m.tableElems[name] = true
			}
		case Hybrid:
			if f.indegree[name] == 0 || f.recursive[name] || repeatedAnywhere[name] {
				m.tableElems[name] = true
			}
		}
	}
}

func (m *InlineMapping) buildTables() {
	for _, name := range m.f.order {
		if !m.tableElems[name] {
			continue
		}
		t := &inlineTable{
			name:    "t_" + name,
			element: name,
			colOf:   make(map[string]string),
		}
		def := &rel.Table{
			Name:    t.name,
			Comment: fmt.Sprintf("%s inlining: relation of %s", m.variant, name),
			Columns: []rel.Column{
				{Name: "id", Type: rel.TypeInt, NotNull: true},
				{Name: "doc", Type: rel.TypeInt, NotNull: true},
				{Name: "parent", Type: rel.TypeInt},
				{Name: "parent_code", Type: rel.TypeText},
				{Name: "ord", Type: rel.TypeInt},
			},
			PrimaryKey: []string{"id"},
		}
		used := map[string]bool{"id": true, "doc": true, "parent": true, "parent_code": true, "ord": true}
		addCol := func(key, base string) {
			col := base
			for i := 2; used[col]; i++ {
				col = fmt.Sprintf("%s_%d", base, i)
			}
			used[col] = true
			t.colOf[key] = col
			def.Columns = append(def.Columns, rel.Column{Name: col, Type: rel.TypeText})
		}
		var inline func(elem string, prefix []string)
		inline = func(elem string, prefix []string) {
			base := strings.Join(prefix, "_")
			joinName := func(suffix string) string {
				if base == "" {
					return suffix
				}
				return base + "_" + suffix
			}
			if len(prefix) > 0 {
				// Presence flag: inlining loses the existence of optional
				// inlined elements otherwise (the VLDB'99 schemes track
				// this the same way).
				addCol(keyPres(prefix), joinName("p"))
			}
			if m.f.hasText[elem] || m.f.textLeaf(elem) {
				addCol(keyTxt(prefix), joinName("txt"))
			}
			if m.f.anyContent[elem] {
				addCol(keyRaw(prefix), joinName("raw"))
			}
			for _, a := range m.f.attNames(elem) {
				addCol(keyAttr(prefix, a), joinName("a_"+a))
			}
			for _, child := range m.f.children[elem] {
				if m.tableElems[child] {
					continue
				}
				if m.f.d.Element(child) == nil {
					// Referenced but undeclared: opaque text column.
					addCol(keyTxt(append(prefix, child)), joinName(child+"_txt"))
					continue
				}
				inline(child, append(append([]string(nil), prefix...), child))
			}
		}
		inline(name, nil)
		t.def = def
		m.tables[name] = t
	}
}

// Name implements Mapping.
func (m *InlineMapping) Name() string { return m.variant.String() }

// Schema implements Mapping.
func (m *InlineMapping) Schema() *rel.Schema {
	s := rel.NewSchema(m.variant.String())
	for _, name := range m.f.order {
		if t, ok := m.tables[name]; ok {
			if err := s.AddTable(t.def); err != nil {
				panic(err) // unique by construction
			}
		}
	}
	if err := s.AddTable(&rel.Table{
		Name:    "x_docs",
		Comment: "document registry",
		Columns: []rel.Column{
			{Name: "doc", Type: rel.TypeInt, NotNull: true},
			{Name: "name", Type: rel.TypeText},
			{Name: "root_type", Type: rel.TypeText, NotNull: true},
			{Name: "root", Type: rel.TypeInt, NotNull: true},
		},
		PrimaryKey: []string{"doc"},
	}); err != nil {
		panic(err)
	}
	return s
}

// Load implements Mapping.
func (m *InlineMapping) Load(db Engine, doc *xmltree.Document, name string) (LoadStats, error) {
	if doc.Root == nil {
		return LoadStats{}, fmt.Errorf("%s: document %q has no root", m.variant, name)
	}
	if !m.tableElems[doc.Root.Name] {
		return LoadStats{}, fmt.Errorf("%s: root element %q has no relation", m.variant, doc.Root.Name)
	}
	docID := m.counter.doc()
	stats := LoadStats{DocID: docID}

	type deferred struct {
		el  *xmltree.Node
		ord int
	}
	var process func(el *xmltree.Node, parent any, parentCode any, ord int) (int64, error)
	process = func(el *xmltree.Node, parent any, parentCode any, ord int) (int64, error) {
		t := m.tables[el.Name]
		if t == nil {
			return 0, fmt.Errorf("%s: element %q reached without a relation (at %s)", m.variant, el.Name, el.Path())
		}
		id := m.counter.node()
		row := map[string]any{
			"id": id, "doc": docID, "parent": parent, "parent_code": parentCode, "ord": int64(ord),
		}
		var defers []deferred
		var fill func(node *xmltree.Node, prefix []string) error
		fill = func(node *xmltree.Node, prefix []string) error {
			if col, ok := t.colOf[keyPres(prefix)]; ok {
				row[col] = "1"
			}
			if col, ok := t.colOf[keyTxt(prefix)]; ok {
				if txt := node.Text(); txt != "" {
					row[col] = txt
				}
			}
			if col, ok := t.colOf[keyRaw(prefix)]; ok {
				row[col] = innerXML(node)
				return nil // opaque subtree
			}
			for _, a := range node.Attrs {
				col, ok := t.colOf[keyAttr(prefix, a.Name)]
				if !ok {
					return fmt.Errorf("%s: undeclared attribute %q on %q (at %s)",
						m.variant, a.Name, node.Name, node.Path())
				}
				row[col] = a.Value
			}
			for i, c := range node.Children {
				if c.Kind != xmltree.ElementNode {
					continue
				}
				if m.tableElems[c.Name] {
					defers = append(defers, deferred{el: c, ord: i})
					continue
				}
				childPrefix := append(append([]string(nil), prefix...), c.Name)
				if _, ok := t.colOf[keyPres(childPrefix)]; !ok {
					if m.f.d.Element(c.Name) == nil {
						return fmt.Errorf("%s: element %q not in DTD (at %s)", m.variant, c.Name, c.Path())
					}
				}
				if row[t.colOf[keyPres(childPrefix)]] != nil {
					return fmt.Errorf("%s: inlined element %q repeats (at %s)", m.variant, c.Name, c.Path())
				}
				if err := fill(c, childPrefix); err != nil {
					return err
				}
			}
			return nil
		}
		if err := fill(el, nil); err != nil {
			return 0, err
		}
		if _, err := db.InsertMap(t.name, row); err != nil {
			return 0, fmt.Errorf("at %s: %w", el.Path(), err)
		}
		stats.Rows++
		for _, d := range defers {
			if _, err := process(d.el, id, el.Name, d.ord); err != nil {
				return 0, err
			}
		}
		return id, nil
	}
	rootID, err := process(doc.Root, nil, nil, 0)
	if err != nil {
		return stats, fmt.Errorf("%s: document %q: %w", m.variant, name, err)
	}
	if _, err := db.Insert("x_docs", []any{docID, name, doc.Root.Name, rootID}); err != nil {
		return stats, err
	}
	return stats, nil
}

// Translator implements Mapping.
func (m *InlineMapping) Translator() pathquery.Translator {
	return &inlineTranslator{m: m, maxDepth: 8, maxPaths: 128}
}

type inlineTranslator struct {
	m        *InlineMapping
	maxDepth int
	maxPaths int
}

func (t *inlineTranslator) Name() string { return t.m.variant.String() }

// inAccess is one partial chain: the current element may be the table
// row itself (prefix empty) or an inlined descendant.
type inAccess struct {
	tableElem string
	elem      string
	prefix    []string
	alias     string
	froms     []string
	conds     []string
	joins     int
	next      int
}

// Translate implements pathquery.Translator.
func (t *inlineTranslator) Translate(q *pathquery.Query) (*pathquery.Translation, error) {
	m := t.m
	first := q.Steps[0]
	var cur []inAccess
	for _, name := range m.f.order {
		if !nameMatchesBase(first.Name, name) {
			continue
		}
		if !m.tableElems[name] {
			continue // non-table elements cannot start an absolute path here
		}
		tab := m.tables[name]
		a := inAccess{
			tableElem: name, elem: name, alias: "i0",
			froms: []string{tab.name + " i0"}, next: 1,
		}
		if first.Axis == pathquery.AxisChild {
			a.froms = append(a.froms, "x_docs xd")
			a.conds = append(a.conds,
				fmt.Sprintf("xd.root_type = '%s'", escapeSQL(name)),
				fmt.Sprintf("xd.root = %s.id", a.alias))
			a.joins++
		}
		cur = append(cur, a)
	}
	if first.Axis == pathquery.AxisDescendant {
		// //x also matches inlined occurrences; enumerate every table
		// element whose closure contains x.
		for _, name := range m.f.order {
			tab := m.tables[name]
			if tab == nil {
				continue
			}
			for key := range tab.colOf {
				path := keyPath(key)
				if len(path) > 0 && path[len(path)-1] == first.Name {
					a := inAccess{
						tableElem: name, elem: first.Name,
						prefix: path, alias: "i0",
						froms: []string{tab.name + " i0"}, next: 1,
					}
					if col, ok := tab.colOf[keyPres(path)]; ok {
						a.conds = append(a.conds, fmt.Sprintf("i0.%s IS NOT NULL", col))
					}
					cur = append(cur, a)
				}
			}
		}
		cur = dedupAccess(cur)
	}
	var err error
	if cur, err = t.applyPreds(cur, first.Preds); err != nil {
		return nil, err
	}
	for si := 1; si < len(q.Steps); si++ {
		step := q.Steps[si]
		var next []inAccess
		for _, a := range cur {
			expanded := t.step(a, step)
			next = append(next, expanded...)
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("%s: step %q matches nothing", m.variant, step.Name)
		}
		if len(next) > t.maxPaths {
			return nil, fmt.Errorf("%s: query expands past %d chains", m.variant, t.maxPaths)
		}
		if next, err = t.applyPreds(next, step.Preds); err != nil {
			return nil, err
		}
		cur = next
	}
	return t.project(q, cur)
}

// keyPath extracts the path part of a logical column key.
func keyPath(key string) []string {
	cut := strings.IndexAny(key, "#@")
	if cut < 0 {
		return nil
	}
	p := key[:cut]
	if p == "" {
		return nil
	}
	return strings.Split(p, "__")
}

func dedupAccess(in []inAccess) []inAccess {
	seen := make(map[string]bool)
	out := in[:0]
	for _, a := range in {
		k := a.tableElem + "\x00" + strings.Join(a.prefix, "__")
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}

// step expands one location step.
func (t *inlineTranslator) step(a inAccess, step pathquery.Step) []inAccess {
	switch step.Axis {
	case pathquery.AxisChild:
		return t.childSteps(a, step.Name)
	case pathquery.AxisDescendant:
		var out []inAccess
		frontier := []inAccess{a}
		for depth := 0; depth < t.maxDepth && len(frontier) > 0; depth++ {
			var nextFrontier []inAccess
			for _, acc := range frontier {
				for _, b := range t.childSteps(acc, "*") {
					if nameMatchesBase(step.Name, b.elem) {
						out = append(out, b)
					}
					nextFrontier = append(nextFrontier, b)
					if len(out) > t.maxPaths || len(nextFrontier) > 4*t.maxPaths {
						return out
					}
				}
			}
			frontier = nextFrontier
		}
		return out
	}
	return nil
}

// childSteps expands a child step: inlined children stay in the same
// row; table children join.
func (t *inlineTranslator) childSteps(a inAccess, name string) []inAccess {
	m := t.m
	var out []inAccess
	for _, child := range m.f.children[a.elem] {
		if !nameMatchesBase(name, child) {
			continue
		}
		if m.tableElems[child] {
			tab := m.tables[child]
			b := inAccess{
				tableElem: child, elem: child,
				alias: fmt.Sprintf("i%d", a.next),
				froms: append(append([]string(nil), a.froms...), fmt.Sprintf("%s i%d", tab.name, a.next)),
				conds: append([]string(nil), a.conds...),
				joins: a.joins + 1,
				next:  a.next + 1,
			}
			b.conds = append(b.conds,
				fmt.Sprintf("%s.parent = %s.id", b.alias, a.alias),
				fmt.Sprintf("%s.parent_code = '%s'", b.alias, escapeSQL(a.tableElem)))
			out = append(out, b)
			continue
		}
		if m.f.d.Element(child) == nil {
			continue
		}
		b := a
		b.elem = child
		b.prefix = append(append([]string(nil), a.prefix...), child)
		b.froms = append([]string(nil), a.froms...)
		b.conds = append([]string(nil), a.conds...)
		if col, ok := m.tables[a.tableElem].colOf[keyPres(b.prefix)]; ok {
			b.conds = append(b.conds, fmt.Sprintf("%s.%s IS NOT NULL", b.alias, col))
		}
		out = append(out, b)
	}
	return out
}

func (t *inlineTranslator) applyPreds(paths []inAccess, preds []pathquery.Pred) ([]inAccess, error) {
	if len(preds) == 0 {
		return paths, nil
	}
	out := make([]inAccess, 0, len(paths))
	for _, a := range paths {
		b := a
		b.conds = append([]string(nil), a.conds...)
		ok := true
		for _, p := range preds {
			cond, err := t.predCond(&b, p)
			if err != nil {
				ok = false
				break
			}
			b.conds = append(b.conds, cond)
		}
		if ok {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: predicate matches no schema path", t.m.variant)
	}
	return out, nil
}

func (t *inlineTranslator) predCond(a *inAccess, p pathquery.Pred) (string, error) {
	tab := t.m.tables[a.tableElem]
	var key string
	if p.Text {
		key = keyTxt(a.prefix)
	} else {
		key = keyAttr(a.prefix, p.Attr)
	}
	col, ok := tab.colOf[key]
	if !ok {
		return "", fmt.Errorf("%s: no column for %q on %s", t.m.variant, key, a.elem)
	}
	ref := a.alias + "." + col
	if p.HasValue {
		return fmt.Sprintf("%s = '%s'", ref, escapeSQL(p.Value)), nil
	}
	return ref + " IS NOT NULL", nil
}

func (t *inlineTranslator) project(q *pathquery.Query, paths []inAccess) (*pathquery.Translation, error) {
	tr := &pathquery.Translation{}
	for _, a := range paths {
		tab := t.m.tables[a.tableElem]
		var sel string
		switch q.Proj {
		case pathquery.ProjText:
			col, ok := tab.colOf[keyTxt(a.prefix)]
			if !ok {
				return nil, fmt.Errorf("%s: %q has no text column", t.m.variant, a.elem)
			}
			sel = fmt.Sprintf("%s.doc, %s.id, %s.%s AS value", a.alias, a.alias, a.alias, col)
			tr.Cols = []string{"doc", "id", "value"}
		case pathquery.ProjAttr:
			col, ok := tab.colOf[keyAttr(a.prefix, q.AttrName)]
			if !ok {
				return nil, fmt.Errorf("%s: %q has no attribute %q", t.m.variant, a.elem, q.AttrName)
			}
			a.conds = append(a.conds, fmt.Sprintf("%s.%s IS NOT NULL", a.alias, col))
			sel = fmt.Sprintf("%s.doc, %s.id, %s.%s AS value", a.alias, a.alias, a.alias, col)
			tr.Cols = []string{"doc", "id", "value"}
		default:
			sel = fmt.Sprintf("%s.doc, %s.id", a.alias, a.alias)
			tr.Cols = []string{"doc", "id"}
		}
		sql := "SELECT " + sel + " FROM " + strings.Join(a.froms, ", ")
		if len(a.conds) > 0 {
			sql += " WHERE " + strings.Join(a.conds, " AND ")
		}
		tr.SQLs = append(tr.SQLs, sql)
		if a.joins > tr.Joins {
			tr.Joins = a.joins
		}
	}
	if len(tr.SQLs) == 0 {
		return nil, fmt.Errorf("%s: query matches nothing", t.m.variant)
	}
	return tr, nil
}

func nameMatchesBase(pattern, name string) bool { return pattern == "*" || pattern == name }
