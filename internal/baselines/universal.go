package baselines

import (
	"fmt"
	"strings"

	"xmlrdb/internal/dtd"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/rel"
	"xmlrdb/internal/xmltree"
)

// UniversalMapping stores every element instance as one row of a single
// wide table whose columns are the union of all attribute names in the
// DTD (the "universal relation" strawman of the VLDB'99 comparison). It
// trades extreme width and sparsity for a uniform one-table layout;
// child steps are still self-joins via the parent column.
type UniversalMapping struct {
	d       *dtd.DTD
	attCols []string // deduped union of attribute names, in order
	counter docCounter
}

// NewUniversal builds the universal-table mapping for a DTD.
func NewUniversal(d *dtd.DTD) *UniversalMapping {
	m := &UniversalMapping{d: d}
	seen := make(map[string]bool)
	for _, el := range d.ElementOrder {
		for _, a := range d.Atts(el) {
			if !seen[a.Name] {
				seen[a.Name] = true
				m.attCols = append(m.attCols, a.Name)
			}
		}
	}
	// Attribute lists can name undeclared elements too.
	var extra []string
	for el := range d.Attlists {
		if d.Element(el) != nil {
			continue
		}
		for _, a := range d.Atts(el) {
			if !seen[a.Name] {
				seen[a.Name] = true
				extra = append(extra, a.Name)
			}
		}
	}
	m.attCols = append(m.attCols, extra...)
	return m
}

// Name implements Mapping.
func (m *UniversalMapping) Name() string { return "universal" }

// Schema implements Mapping.
func (m *UniversalMapping) Schema() *rel.Schema {
	s := rel.NewSchema("universal")
	cols := []rel.Column{
		{Name: "doc", Type: rel.TypeInt, NotNull: true},
		{Name: "id", Type: rel.TypeInt, NotNull: true},
		{Name: "parent", Type: rel.TypeInt}, // NULL for roots
		{Name: "ord", Type: rel.TypeInt, NotNull: true},
		{Name: "tag", Type: rel.TypeText, NotNull: true},
		{Name: "txt", Type: rel.TypeText},
	}
	for _, a := range m.attCols {
		cols = append(cols, rel.Column{Name: "a_" + a, Type: rel.TypeText})
	}
	if err := s.AddTable(&rel.Table{
		Name:       "uni",
		Comment:    "universal table: one row per element, all attributes as columns",
		Columns:    cols,
		PrimaryKey: []string{"id"},
	}); err != nil {
		panic(err) // static definition; cannot fail
	}
	if err := s.AddTable(&rel.Table{
		Name:    "x_docs",
		Comment: "document registry",
		Columns: []rel.Column{
			{Name: "doc", Type: rel.TypeInt, NotNull: true},
			{Name: "name", Type: rel.TypeText},
			{Name: "root_type", Type: rel.TypeText, NotNull: true},
			{Name: "root", Type: rel.TypeInt, NotNull: true},
		},
		PrimaryKey: []string{"doc"},
	}); err != nil {
		panic(err)
	}
	return s
}

// Load implements Mapping.
func (m *UniversalMapping) Load(db Engine, doc *xmltree.Document, name string) (LoadStats, error) {
	if doc.Root == nil {
		return LoadStats{}, fmt.Errorf("universal: document %q has no root", name)
	}
	docID := m.counter.doc()
	stats := LoadStats{DocID: docID}
	var loadEl func(el *xmltree.Node, parent any, ord int) (int64, error)
	loadEl = func(el *xmltree.Node, parent any, ord int) (int64, error) {
		id := m.counter.node()
		vals := map[string]any{
			"doc": docID, "id": id, "parent": parent, "ord": int64(ord), "tag": el.Name,
		}
		if !el.HasElementChildren() {
			if t := el.Text(); t != "" {
				vals["txt"] = t
			}
		} else if t := el.Text(); strings.TrimSpace(t) != "" {
			vals["txt"] = t // mixed content keeps its flattened text
		}
		for _, a := range el.Attrs {
			vals["a_"+a.Name] = a.Value
		}
		if _, err := db.InsertMap("uni", vals); err != nil {
			return 0, err
		}
		stats.Rows++
		for i, c := range el.Children {
			if c.Kind == xmltree.ElementNode {
				if _, err := loadEl(c, id, i); err != nil {
					return 0, err
				}
			}
		}
		return id, nil
	}
	rootID, err := loadEl(doc.Root, nil, 0)
	if err != nil {
		return stats, fmt.Errorf("universal: document %q: %w", name, err)
	}
	if _, err := db.Insert("x_docs", []any{docID, name, doc.Root.Name, rootID}); err != nil {
		return stats, err
	}
	return stats, nil
}

// Translator implements Mapping.
func (m *UniversalMapping) Translator() pathquery.Translator {
	cols := make(map[string]bool, len(m.attCols))
	for _, a := range m.attCols {
		cols[a] = true
	}
	return &uniTranslator{attCols: cols, maxDepth: 8}
}

type uniTranslator struct {
	attCols  map[string]bool
	maxDepth int
}

func (t *uniTranslator) Name() string { return "universal" }

type uniAccess struct {
	alias string
	froms []string
	conds []string
	joins int
	next  int
}

// Translate implements pathquery.Translator.
func (t *uniTranslator) Translate(q *pathquery.Query) (*pathquery.Translation, error) {
	first := q.Steps[0]
	a := uniAccess{alias: "u0", froms: []string{"uni u0"}, next: 1}
	if first.Name != "*" {
		a.conds = append(a.conds, fmt.Sprintf("u0.tag = '%s'", escapeSQL(first.Name)))
	}
	if first.Axis == pathquery.AxisChild {
		a.conds = append(a.conds, "u0.parent IS NULL")
	}
	cur := []uniAccess{a}
	var err error
	if cur, err = t.applyPreds(cur, first.Preds); err != nil {
		return nil, err
	}
	for si := 1; si < len(q.Steps); si++ {
		step := q.Steps[si]
		var next []uniAccess
		for _, acc := range cur {
			switch step.Axis {
			case pathquery.AxisChild:
				next = append(next, t.childStep(acc, step.Name))
			case pathquery.AxisDescendant:
				for depth := 1; depth <= t.maxDepth; depth++ {
					b := acc
					for i := 0; i < depth-1; i++ {
						b = t.childStep(b, "*")
					}
					next = append(next, t.childStep(b, step.Name))
				}
			}
		}
		if cur, err = t.applyPreds(next, step.Preds); err != nil {
			return nil, err
		}
	}
	tr := &pathquery.Translation{}
	for _, acc := range cur {
		var sel string
		switch q.Proj {
		case pathquery.ProjText:
			sel = fmt.Sprintf("%s.doc, %s.id, %s.txt AS value", acc.alias, acc.alias, acc.alias)
			tr.Cols = []string{"doc", "id", "value"}
		case pathquery.ProjAttr:
			if !t.attCols[q.AttrName] {
				return nil, fmt.Errorf("universal: no attribute %q in the DTD", q.AttrName)
			}
			acc.conds = append(acc.conds, fmt.Sprintf("%s.a_%s IS NOT NULL", acc.alias, q.AttrName))
			sel = fmt.Sprintf("%s.doc, %s.id, %s.a_%s AS value", acc.alias, acc.alias, acc.alias, q.AttrName)
			tr.Cols = []string{"doc", "id", "value"}
		default:
			sel = fmt.Sprintf("%s.doc, %s.id", acc.alias, acc.alias)
			tr.Cols = []string{"doc", "id"}
		}
		sql := "SELECT " + sel + " FROM " + strings.Join(acc.froms, ", ")
		if len(acc.conds) > 0 {
			sql += " WHERE " + strings.Join(acc.conds, " AND ")
		}
		tr.SQLs = append(tr.SQLs, sql)
		if acc.joins > tr.Joins {
			tr.Joins = acc.joins
		}
	}
	return tr, nil
}

func (t *uniTranslator) childStep(a uniAccess, name string) uniAccess {
	b := uniAccess{
		alias: fmt.Sprintf("u%d", a.next),
		froms: append(append([]string(nil), a.froms...), fmt.Sprintf("uni u%d", a.next)),
		conds: append([]string(nil), a.conds...),
		joins: a.joins + 1,
		next:  a.next + 1,
	}
	b.conds = append(b.conds, fmt.Sprintf("%s.parent = %s.id", b.alias, a.alias))
	if name != "*" {
		b.conds = append(b.conds, fmt.Sprintf("%s.tag = '%s'", b.alias, escapeSQL(name)))
	}
	return b
}

func (t *uniTranslator) applyPreds(paths []uniAccess, preds []pathquery.Pred) ([]uniAccess, error) {
	if len(preds) == 0 {
		return paths, nil
	}
	out := make([]uniAccess, 0, len(paths))
	for _, a := range paths {
		b := a
		b.conds = append([]string(nil), a.conds...)
		for _, p := range preds {
			switch {
			case p.Text:
				if p.HasValue {
					b.conds = append(b.conds, fmt.Sprintf("%s.txt = '%s'", b.alias, escapeSQL(p.Value)))
				} else {
					b.conds = append(b.conds, fmt.Sprintf("%s.txt IS NOT NULL", b.alias))
				}
			default:
				if !t.attCols[p.Attr] {
					return nil, fmt.Errorf("universal: no attribute %q in the DTD", p.Attr)
				}
				col := fmt.Sprintf("%s.a_%s", b.alias, p.Attr)
				if p.HasValue {
					b.conds = append(b.conds, fmt.Sprintf("%s = '%s'", col, escapeSQL(p.Value)))
				} else {
					b.conds = append(b.conds, col+" IS NOT NULL")
				}
			}
		}
		out = append(out, b)
	}
	return out, nil
}
