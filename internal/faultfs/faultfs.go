// Package faultfs abstracts the handful of file operations the engine's
// durability layer performs (append-only log writes, write-then-rename
// snapshot publication, directory listing) behind a small interface with
// two implementations: the real OS filesystem, and an in-memory
// filesystem with deterministic fault injection — a byte or fsync budget
// that "crashes" the store mid-write, leaving exactly the bytes a torn
// write would leave. Crash-recovery tests drive the injected filesystem
// through every byte offset of a scripted workload and assert the
// reopened store equals a committed prefix of the reference run.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every operation of an injected filesystem
// after its fault budget is exhausted: from the process's point of view
// the machine has lost power.
var ErrCrashed = errors.New("faultfs: injected crash")

// File is the handle surface the durability layer needs: sequential
// reads (recovery), sequential writes (log append, snapshot dump), and
// durability barriers.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's written bytes to durable storage.
	Sync() error
}

// FS is the filesystem surface of the durability layer.
type FS interface {
	// MkdirAll creates a directory and its parents.
	MkdirAll(dir string) error
	// Create opens a file for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens a file for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// List returns the base names of the directory's entries, sorted.
	List(dir string) ([]string, error)
	// SyncDir flushes the directory's entries to durable storage. On
	// POSIX a created, renamed or removed file is not a durable
	// directory entry until its parent directory is fsynced; a crash
	// before SyncDir can make the file vanish even when its own content
	// was synced.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FS.
func (OS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// SyncDir implements FS by fsyncing the directory's file descriptor.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// List implements FS.
func (OS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Mem is an in-memory FS with deterministic fault injection. The zero
// budget configuration never fails; SetWriteBudget and SetSyncBudget arm
// a crash. All methods are safe for concurrent use.
//
// Crash model: a write that would exceed the byte budget stores only the
// bytes that fit (a torn write) and fails; when the sync budget reaches
// zero the Sync call itself fails. After either event the filesystem is
// "crashed": every later operation returns ErrCrashed, mirroring a
// process that lost its disk. If DropUnsynced is set, crashing also
// truncates every file to its last-synced length, modeling page-cache
// loss on power failure — and reverts every directory to its state at
// the last SyncDir, modeling directory-entry loss: a file created or
// renamed without a subsequent SyncDir vanishes (or reappears under
// its old name), exactly as an unjournaled dirent would on POSIX.
// ClearCrash simulates the machine coming back up: the surviving bytes
// stay, the budgets are disarmed, and the store can be reopened.
type Mem struct {
	mu      sync.Mutex
	files   map[string]*memFile
	durable map[string]*memFile // directory view at the last SyncDir
	dirs    map[string]bool

	// DropUnsynced, when set before the workload, truncates files to
	// their last-synced length at crash time.
	DropUnsynced bool

	writeBudget int64 // bytes that may still be written; -1 = unlimited
	syncBudget  int64 // syncs that may still succeed; -1 = unlimited
	crashed     bool

	bytesWritten int64
	syncs        int64
}

type memFile struct {
	data   []byte
	synced int // length at last successful Sync
}

// NewMem returns an empty in-memory filesystem with no fault armed.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memFile), durable: make(map[string]*memFile),
		dirs: make(map[string]bool), writeBudget: -1, syncBudget: -1}
}

// SetWriteBudget arms a crash after n more written bytes (0 crashes on
// the next write; negative disarms).
func (m *Mem) SetWriteBudget(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeBudget = n
}

// SetSyncBudget arms a crash on the (n+1)-th Sync call from now.
func (m *Mem) SetSyncBudget(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncBudget = n
}

// BytesWritten returns the total bytes written so far (for sizing a
// byte-offset crash matrix).
func (m *Mem) BytesWritten() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesWritten
}

// Syncs returns the number of successful Sync calls so far.
func (m *Mem) Syncs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// Crashed reports whether the injected crash has fired.
func (m *Mem) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// ClearCrash simulates the machine restarting: budgets are disarmed and
// operations succeed again over the bytes that survived the crash.
func (m *Mem) ClearCrash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
	m.writeBudget = -1
	m.syncBudget = -1
}

// crashLocked fires the injected crash; the caller holds m.mu.
func (m *Mem) crashLocked() {
	m.crashed = true
	if m.DropUnsynced {
		// Directory-entry loss: every directory reverts to its state at
		// the last SyncDir — unsynced creates and renames are undone.
		m.files = make(map[string]*memFile, len(m.durable))
		for name, f := range m.durable {
			m.files[name] = f
		}
		// Page-cache loss: surviving files keep only their synced bytes.
		for _, f := range m.files {
			if f.synced < len(f.data) {
				f.data = f.data[:f.synced]
			}
		}
	}
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	m.dirs[filepath.Clean(dir)] = true
	return nil
}

// Create implements FS.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f := &memFile{}
	m.files[filepath.Clean(name)] = f
	return &memHandle{fs: m, f: f, name: filepath.Clean(name), writable: true}, nil
}

// Open implements FS.
func (m *Mem) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	f := m.files[filepath.Clean(name)]
	if f == nil {
		return nil, fmt.Errorf("faultfs: open %s: %w", name, os.ErrNotExist)
	}
	return &memHandle{fs: m, f: f, name: filepath.Clean(name)}, nil
}

// Rename implements FS. The replacement is atomic: no crash point leaves
// a half-renamed file (matching rename(2) on a journaling filesystem).
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	f := m.files[filepath.Clean(oldname)]
	if f == nil {
		return fmt.Errorf("faultfs: rename %s: %w", oldname, os.ErrNotExist)
	}
	delete(m.files, filepath.Clean(oldname))
	m.files[filepath.Clean(newname)] = f
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.files[filepath.Clean(name)] == nil {
		return fmt.Errorf("faultfs: remove %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, filepath.Clean(name))
	return nil
}

// List implements FS.
func (m *Mem) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	var names []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir implements FS: the directory's current entries become the
// state a crash reverts to. Like Sync it is a durability barrier, so it
// consumes the sync budget — the crash matrix covers the instants just
// before and during directory fsyncs too.
func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.syncBudget == 0 {
		m.crashLocked()
		return ErrCrashed
	}
	if m.syncBudget > 0 {
		m.syncBudget--
	}
	clean := filepath.Clean(dir)
	for name := range m.durable {
		if filepath.Dir(name) == clean {
			if _, ok := m.files[name]; !ok {
				delete(m.durable, name) // removal is now durable
			}
		}
	}
	for name, f := range m.files {
		if filepath.Dir(name) == clean {
			m.durable[name] = f
		}
	}
	m.syncs++
	return nil
}

type memHandle struct {
	fs       *Mem
	f        *memFile
	name     string
	off      int // read offset
	writable bool
	closed   bool
}

// Read implements io.Reader over the file's surviving bytes.
func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

// Write appends to the file, consuming the write budget; a write that
// exceeds it is torn at the budget boundary and fires the crash.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if h.closed || !h.writable {
		return 0, os.ErrClosed
	}
	n := len(p)
	if h.fs.writeBudget >= 0 && int64(n) > h.fs.writeBudget {
		n = int(h.fs.writeBudget)
		h.f.data = append(h.f.data, p[:n]...)
		h.fs.bytesWritten += int64(n)
		h.fs.crashLocked()
		return n, ErrCrashed
	}
	h.f.data = append(h.f.data, p...)
	h.fs.bytesWritten += int64(n)
	if h.fs.writeBudget >= 0 {
		h.fs.writeBudget -= int64(n)
	}
	return n, nil
}

// Sync marks the file's current length durable, consuming the sync
// budget.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return ErrCrashed
	}
	if h.closed {
		return os.ErrClosed
	}
	if h.fs.syncBudget == 0 {
		h.fs.crashLocked()
		return ErrCrashed
	}
	if h.fs.syncBudget > 0 {
		h.fs.syncBudget--
	}
	h.f.synced = len(h.f.data)
	h.fs.syncs++
	return nil
}

// Close implements io.Closer.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
