package faultfs

import (
	"errors"
	"io"
	"testing"
)

func writeFile(t *testing.T, fs FS, name, content string) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func readFile(t *testing.T, fs FS, name string) string {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestMemRoundTrip(t *testing.T) {
	fs := NewMem()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, "d/b.log", "bbb")
	writeFile(t, fs, "d/a.log", "aaa")
	if got := readFile(t, fs, "d/a.log"); got != "aaa" {
		t.Errorf("read back %q", got)
	}
	names, err := fs.List("d")
	if err != nil || len(names) != 2 || names[0] != "a.log" || names[1] != "b.log" {
		t.Errorf("List = %v, %v", names, err)
	}
	if err := fs.Rename("d/a.log", "d/c.log"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "d/c.log"); got != "aaa" {
		t.Errorf("renamed content %q", got)
	}
	if err := fs.Remove("d/b.log"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("d/b.log"); err == nil {
		t.Error("removed file still opens")
	}
}

func TestMemWriteBudgetTearsAndCrashes(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("x")
	fs.SetWriteBudget(5)
	n, err := f.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if !fs.Crashed() {
		t.Fatal("crash did not fire")
	}
	if _, err := fs.Create("y"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash Create = %v, want ErrCrashed", err)
	}
	fs.ClearCrash()
	if got := readFile(t, fs, "x"); got != "01234" {
		t.Errorf("surviving bytes %q, want the torn prefix", got)
	}
}

func TestMemSyncBudgetAndDropUnsynced(t *testing.T) {
	fs := NewMem()
	fs.DropUnsynced = true
	f, _ := fs.Create("x")
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("-lost"))
	fs.SetSyncBudget(0)
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync with exhausted budget = %v", err)
	}
	fs.ClearCrash()
	if got := readFile(t, fs, "x"); got != "durable" {
		t.Errorf("after crash got %q, want only the synced prefix", got)
	}
}

func TestMemCounters(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("x")
	f.Write([]byte("abc"))
	f.Sync()
	f.Write([]byte("de"))
	f.Sync()
	if fs.BytesWritten() != 5 {
		t.Errorf("BytesWritten = %d", fs.BytesWritten())
	}
	if fs.Syncs() != 2 {
		t.Errorf("Syncs = %d", fs.Syncs())
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS{}
	if err := fs.MkdirAll(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, dir+"/sub/a.log", "hello")
	if got := readFile(t, fs, dir+"/sub/a.log"); got != "hello" {
		t.Errorf("read back %q", got)
	}
	if err := fs.Rename(dir+"/sub/a.log", dir+"/sub/b.log"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "b.log" {
		t.Errorf("List = %v, %v", names, err)
	}
}
