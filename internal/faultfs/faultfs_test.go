package faultfs

import (
	"errors"
	"io"
	"testing"
)

func writeFile(t *testing.T, fs FS, name, content string) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func readFile(t *testing.T, fs FS, name string) string {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestMemRoundTrip(t *testing.T) {
	fs := NewMem()
	if err := fs.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, "d/b.log", "bbb")
	writeFile(t, fs, "d/a.log", "aaa")
	if got := readFile(t, fs, "d/a.log"); got != "aaa" {
		t.Errorf("read back %q", got)
	}
	names, err := fs.List("d")
	if err != nil || len(names) != 2 || names[0] != "a.log" || names[1] != "b.log" {
		t.Errorf("List = %v, %v", names, err)
	}
	if err := fs.Rename("d/a.log", "d/c.log"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "d/c.log"); got != "aaa" {
		t.Errorf("renamed content %q", got)
	}
	if err := fs.Remove("d/b.log"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("d/b.log"); err == nil {
		t.Error("removed file still opens")
	}
}

func TestMemWriteBudgetTearsAndCrashes(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("x")
	fs.SetWriteBudget(5)
	n, err := f.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if !fs.Crashed() {
		t.Fatal("crash did not fire")
	}
	if _, err := fs.Create("y"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash Create = %v, want ErrCrashed", err)
	}
	fs.ClearCrash()
	if got := readFile(t, fs, "x"); got != "01234" {
		t.Errorf("surviving bytes %q, want the torn prefix", got)
	}
}

func TestMemSyncBudgetAndDropUnsynced(t *testing.T) {
	fs := NewMem()
	fs.DropUnsynced = true
	f, _ := fs.Create("x")
	if err := fs.SyncDir("."); err != nil { // make the directory entry durable
		t.Fatal(err)
	}
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("-lost"))
	fs.SetSyncBudget(0)
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync with exhausted budget = %v", err)
	}
	fs.ClearCrash()
	if got := readFile(t, fs, "x"); got != "durable" {
		t.Errorf("after crash got %q, want only the synced prefix", got)
	}
}

// TestMemDirEntryLoss: a created file whose parent directory was never
// fsynced is not a durable entry — a power-loss crash drops the whole
// file even when its content was synced.
func TestMemDirEntryLoss(t *testing.T) {
	fs := NewMem()
	fs.DropUnsynced = true
	f, _ := fs.Create("d/orphan.log")
	f.Write([]byte("synced but unlinked"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.SetSyncBudget(0)
	f.Sync() // fires the crash
	fs.ClearCrash()
	if _, err := fs.Open("d/orphan.log"); err == nil {
		t.Fatal("file without a durable directory entry survived the crash")
	}
}

// TestMemRenameDurableOnlyAfterSyncDir: a rename reverts at crash time
// unless the directory was fsynced after it.
func TestMemRenameDurableOnlyAfterSyncDir(t *testing.T) {
	fs := NewMem()
	fs.DropUnsynced = true
	writeFile(t, fs, "d/a.tmp", "snapshot")
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("d/a.tmp", "d/a.snap"); err != nil {
		t.Fatal(err)
	}
	fs.SetSyncBudget(0)
	if f, _ := fs.Create("d/later"); f != nil {
		f.Sync() // fires the crash before any SyncDir
	}
	fs.ClearCrash()
	if _, err := fs.Open("d/a.snap"); err == nil {
		t.Fatal("unsynced rename survived the crash")
	}
	if got := readFile(t, fs, "d/a.tmp"); got != "snapshot" {
		t.Errorf("old name content %q, want the synced bytes", got)
	}

	// Same again, but with the rename made durable.
	fs2 := NewMem()
	fs2.DropUnsynced = true
	writeFile(t, fs2, "d/a.tmp", "snapshot")
	if err := fs2.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Rename("d/a.tmp", "d/a.snap"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fs2.SetSyncBudget(0)
	if f, _ := fs2.Create("d/later"); f != nil {
		f.Sync()
	}
	fs2.ClearCrash()
	if got := readFile(t, fs2, "d/a.snap"); got != "snapshot" {
		t.Errorf("durable rename lost: %q", got)
	}
	if _, err := fs2.Open("d/a.tmp"); err == nil {
		t.Error("old name still present after durable rename")
	}
}

// TestMemSyncDirConsumesBudget: SyncDir is a durability barrier like
// Sync, so the crash matrix can land on it.
func TestMemSyncDirConsumesBudget(t *testing.T) {
	fs := NewMem()
	fs.Create("d/x")
	fs.SetSyncBudget(0)
	if err := fs.SyncDir("d"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("SyncDir with exhausted budget = %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("crash did not fire")
	}
}

func TestMemCounters(t *testing.T) {
	fs := NewMem()
	f, _ := fs.Create("x")
	f.Write([]byte("abc"))
	f.Sync()
	f.Write([]byte("de"))
	f.Sync()
	if fs.BytesWritten() != 5 {
		t.Errorf("BytesWritten = %d", fs.BytesWritten())
	}
	if fs.Syncs() != 2 {
		t.Errorf("Syncs = %d", fs.Syncs())
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS{}
	if err := fs.MkdirAll(dir + "/sub"); err != nil {
		t.Fatal(err)
	}
	writeFile(t, fs, dir+"/sub/a.log", "hello")
	if got := readFile(t, fs, dir+"/sub/a.log"); got != "hello" {
		t.Errorf("read back %q", got)
	}
	if err := fs.Rename(dir+"/sub/a.log", dir+"/sub/b.log"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List(dir + "/sub")
	if err != nil || len(names) != 1 || names[0] != "b.log" {
		t.Errorf("List = %v, %v", names, err)
	}
	if err := fs.SyncDir(dir + "/sub"); err != nil {
		t.Errorf("SyncDir = %v", err)
	}
}
