// Package reconstruct rebuilds XML documents from their shredded
// relational form — the inverse of the §5 loading algorithm — using the
// ordinal columns (data ordering), the schema-ordering metadata, the
// mixed-content text chunks, and the raw storage of ANY elements. A
// successful byte-equivalent round trip demonstrates that the paper's
// metadata design compensates for the information the relational model
// drops (experiment E7).
package reconstruct

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"xmlrdb/internal/core"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/er"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/xmltree"
)

// Reconstructor rebuilds documents from one mapped store.
type Reconstructor struct {
	res     *core.Result
	mapping *ermap.Mapping
	db      *engine.DB
	// itemPos maps entity -> item name (relationship or distilled
	// attribute) -> schema-order position.
	itemPos map[string]map[string]int
	// IgnoreOrdinals disables the data-ordering metadata (the ordinal
	// columns): children are then ordered only by schema order and row
	// identity. This is the E7 ablation showing why the paper's §5
	// metadata is necessary; leave it false for faithful reconstruction.
	IgnoreOrdinals bool

	// obsM and tracer are the observability hooks (nil by default; set
	// before concurrent use).
	obsM   *obs.Metrics
	tracer obs.Tracer
}

// SetObserver attaches a metrics hub and tracer (either may be nil):
// document reconstructions are counted and timed.
func (r *Reconstructor) SetObserver(m *obs.Metrics, tr obs.Tracer) {
	r.obsM = m
	r.tracer = tr
}

// New builds a reconstructor over a loaded database.
func New(res *core.Result, m *ermap.Mapping, db *engine.DB) *Reconstructor {
	r := &Reconstructor{res: res, mapping: m, db: db, itemPos: make(map[string]map[string]int)}
	for _, e := range res.Metadata.SchemaOrder {
		if r.itemPos[e.Parent] == nil {
			r.itemPos[e.Parent] = make(map[string]int)
		}
		r.itemPos[e.Parent][e.Item] = e.Pos
	}
	return r
}

// docData is the per-document working set, prefetched table by table.
type docData struct {
	// entityRows: entity name -> id -> column map.
	entityRows map[string]map[int64]map[string]any
	// relRows: relationship name -> parent id -> ordered children.
	relRows map[string]map[int64][]relRow
	// refRows: source entity -> source id -> ordered ref values per attr.
	refRows map[string]map[int64]map[string][]refRow
	// textChunks: entity name -> parent id -> chunks.
	textChunks map[string]map[int64][]textChunk
}

type relRow struct {
	ord    int64
	child  int64
	target string
}

type refRow struct {
	ord   int64
	value string
}

type textChunk struct {
	ord int64
	txt string
}

// Document rebuilds one document by its registry id.
func (r *Reconstructor) Document(docID int64) (*xmltree.Document, error) {
	if r.obsM == nil && r.tracer == nil {
		return r.document(docID)
	}
	start := time.Now()
	doc, err := r.document(docID)
	d := time.Since(start)
	if r.obsM != nil && err == nil {
		r.obsM.ReconDocs.Inc()
		r.obsM.ReconLatency.ObserveDuration(d)
	}
	if r.tracer != nil {
		ev := obs.Event{Scope: "reconstruct", Name: "document",
			Detail: fmt.Sprintf("doc-%d", docID), Dur: d}
		if err != nil {
			ev.Err = err.Error()
		}
		r.tracer.Emit(ev)
	}
	return doc, err
}

func (r *Reconstructor) document(docID int64) (*xmltree.Document, error) {
	regRows, err := r.db.Lookup("x_docs", []string{"doc"}, []any{docID})
	if err != nil {
		return nil, fmt.Errorf("reconstruct: %w", err)
	}
	if len(regRows) == 0 {
		return nil, fmt.Errorf("reconstruct: no document %d", docID)
	}
	reg := regRows[0]
	rootType, _ := reg[2].(string)
	rootID, _ := reg[3].(int64)

	data, err := r.fetch(docID)
	if err != nil {
		return nil, err
	}
	root, err := r.buildElement(data, rootType, rootID)
	if err != nil {
		return nil, err
	}
	doc := &xmltree.Document{Root: root, Children: []*xmltree.Node{root}, Version: "1.0"}
	return doc, nil
}

// DocumentIDs lists the loaded document ids in load order.
func (r *Reconstructor) DocumentIDs() ([]int64, error) {
	var ids []int64
	err := r.db.ScanTable("x_docs", func(row []any) bool {
		if id, ok := row[0].(int64); ok {
			ids = append(ids, id)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// fetch loads the document's rows from every mapped table.
func (r *Reconstructor) fetch(docID int64) (*docData, error) {
	data := &docData{
		entityRows: make(map[string]map[int64]map[string]any),
		relRows:    make(map[string]map[int64][]relRow),
		refRows:    make(map[string]map[int64]map[string][]refRow),
		textChunks: make(map[string]map[int64][]textChunk),
	}
	for _, e := range r.mapping.Model.Entities {
		em := r.mapping.Entities[e.Name]
		def := r.db.TableDef(em.Table)
		rows, err := r.db.Lookup(em.Table, []string{"doc"}, []any{docID})
		if err != nil {
			return nil, err
		}
		byID := make(map[int64]map[string]any, len(rows))
		for _, row := range rows {
			vals := make(map[string]any, len(row))
			for i, col := range def.Columns {
				vals[col.Name] = row[i]
			}
			id, _ := vals["id"].(int64)
			byID[id] = vals
		}
		data.entityRows[e.Name] = byID
	}
	for _, relModel := range r.mapping.Model.Relationships {
		rm := r.mapping.Rels[relModel.Name]
		switch {
		case relModel.Kind == er.RelReference:
			rows, err := r.db.Lookup(rm.Table, []string{"doc"}, []any{docID})
			if err != nil {
				return nil, err
			}
			def := r.db.TableDef(rm.Table)
			byEnt := data.refRows[relModel.Parent]
			if byEnt == nil {
				byEnt = make(map[int64]map[string][]refRow)
				data.refRows[relModel.Parent] = byEnt
			}
			for _, row := range rows {
				vals := rowMap(def, row)
				src, _ := vals["source"].(int64)
				if byEnt[src] == nil {
					byEnt[src] = make(map[string][]refRow)
				}
				value, _ := vals["refvalue"].(string)
				ord, _ := vals["ord"].(int64)
				byEnt[src][relModel.ViaAttr] = append(byEnt[src][relModel.ViaAttr], refRow{ord: ord, value: value})
			}
		case rm.Folded:
			// Children carry parent/ord on their own rows.
			child := relModel.Arcs[0].Target
			byParent := make(map[int64][]relRow)
			for id, vals := range data.entityRows[child] {
				p, ok := vals["parent"].(int64)
				if !ok {
					continue
				}
				ord, _ := vals["ord"].(int64)
				byParent[p] = append(byParent[p], relRow{ord: ord, child: id, target: child})
			}
			data.relRows[relModel.Name] = byParent
		default:
			rows, err := r.db.Lookup(rm.Table, []string{"doc"}, []any{docID})
			if err != nil {
				return nil, err
			}
			def := r.db.TableDef(rm.Table)
			byParent := make(map[int64][]relRow)
			single := ""
			if rm.SingleTarget {
				single = relModel.Arcs[0].Target
			}
			for _, row := range rows {
				vals := rowMap(def, row)
				p, _ := vals["parent"].(int64)
				rr := relRow{target: single}
				rr.ord, _ = vals["ord"].(int64)
				rr.child, _ = vals["child"].(int64)
				if t, ok := vals["target"].(string); ok {
					rr.target = t
				}
				byParent[p] = append(byParent[p], rr)
			}
			data.relRows[relModel.Name] = byParent
		}
	}
	// Mixed-content text chunks.
	chunks, err := r.db.Lookup("x_text", []string{"doc"}, []any{docID})
	if err == nil {
		def := r.db.TableDef("x_text")
		for _, row := range chunks {
			vals := rowMap(def, row)
			ptype, _ := vals["ptype"].(string)
			pid, _ := vals["pid"].(int64)
			ord, _ := vals["ord"].(int64)
			txt, _ := vals["txt"].(string)
			if data.textChunks[ptype] == nil {
				data.textChunks[ptype] = make(map[int64][]textChunk)
			}
			data.textChunks[ptype][pid] = append(data.textChunks[ptype][pid], textChunk{ord: ord, txt: txt})
		}
	}
	// Sort everything by ordinal — or, under the E7 ablation, by row
	// identity, deliberately discarding the data-ordering metadata.
	for _, byParent := range data.relRows {
		for _, rows := range byParent {
			rows := rows
			if r.IgnoreOrdinals {
				sort.Slice(rows, func(i, j int) bool {
					if rows[i].target != rows[j].target {
						return rows[i].target < rows[j].target
					}
					return rows[i].child < rows[j].child
				})
				continue
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].ord < rows[j].ord })
		}
	}
	for _, byID := range data.refRows {
		for _, byAttr := range byID {
			for _, refs := range byAttr {
				sort.Slice(refs, func(i, j int) bool { return refs[i].ord < refs[j].ord })
			}
		}
	}
	for _, byID := range data.textChunks {
		for _, cs := range byID {
			cs := cs
			if r.IgnoreOrdinals {
				sort.Slice(cs, func(i, j int) bool { return cs[i].txt < cs[j].txt })
				continue
			}
			sort.Slice(cs, func(i, j int) bool { return cs[i].ord < cs[j].ord })
		}
	}
	return data, nil
}

func rowMap(def interface{ ColumnNames() []string }, row []any) map[string]any {
	names := def.ColumnNames()
	vals := make(map[string]any, len(names))
	for i, n := range names {
		vals[n] = row[i]
	}
	return vals
}

// childPair is one reconstructed child with its merge keys.
type childPair struct {
	itemPos int
	ord     int64
	node    *xmltree.Node
}

// buildElement rebuilds one element subtree.
func (r *Reconstructor) buildElement(data *docData, entity string, id int64) (*xmltree.Node, error) {
	ce := r.res.Converted.Element(entity)
	em := r.mapping.Entities[entity]
	if ce == nil || em == nil {
		return nil, fmt.Errorf("reconstruct: unknown entity %q", entity)
	}
	vals := data.entityRows[entity][id]
	if vals == nil {
		return nil, fmt.Errorf("reconstruct: missing row %s/%d", entity, id)
	}
	el := xmltree.NewElement(entity)

	// Attributes, in the converted declaration order.
	for _, att := range ce.Atts {
		if att.Type.String() == "(#PCDATA)" {
			continue // distilled: re-emitted as a subelement below
		}
		if v, ok := vals[em.AttrCols[att.Name]].(string); ok {
			el.SetAttr(att.Name, v)
		}
	}
	// Reference attributes.
	if byAttr := data.refRows[entity][id]; byAttr != nil {
		for _, relModel := range r.mapping.Model.RelationshipsOf(entity) {
			if relModel.Kind != er.RelReference {
				continue
			}
			refs := byAttr[relModel.ViaAttr]
			if len(refs) == 0 {
				continue
			}
			toks := make([]string, len(refs))
			for i, rr := range refs {
				toks[i] = rr.value
			}
			el.SetAttr(relModel.ViaAttr, strings.Join(toks, " "))
		}
	}

	switch ce.Kind {
	case core.ConvEmpty:
		return el, nil
	case core.ConvAny:
		raw, _ := vals["raw"].(string)
		if raw != "" {
			if err := appendRawChildren(el, raw); err != nil {
				return nil, fmt.Errorf("reconstruct: %s/%d raw content: %w", entity, id, err)
			}
		}
		return el, nil
	case core.ConvPCData:
		if txt, ok := vals["txt"].(string); ok && txt != "" {
			el.AppendText(txt)
		}
		return el, nil
	}

	// ConvBare: merge relationship children (and, for mixed elements,
	// text chunks) by schema-order item position, then ordinal.
	var pairs []childPair
	collect, err := r.collectChildren(data, entity, id)
	if err != nil {
		return nil, err
	}
	pairs = append(pairs, collect...)

	if ce.MixedText {
		for _, tc := range data.textChunks[entity][id] {
			pairs = append(pairs, childPair{itemPos: 0, ord: tc.ord, node: xmltree.NewText(tc.txt)})
		}
	}
	// Distilled subelements re-emitted at their schema positions.
	positions := r.itemPos[entity]
	for _, d := range r.res.Metadata.Distilled {
		if d.Parent != entity {
			continue
		}
		if v, ok := vals[em.AttrCols[d.Attr]].(string); ok {
			sub := xmltree.NewElement(d.Attr)
			if v != "" {
				sub.AppendText(v)
			}
			pairs = append(pairs, childPair{itemPos: d.Pos, ord: -1, node: sub})
		}
	}
	_ = positions
	sort.SliceStable(pairs, func(i, j int) bool {
		if pairs[i].itemPos != pairs[j].itemPos {
			return pairs[i].itemPos < pairs[j].itemPos
		}
		return pairs[i].ord < pairs[j].ord
	})
	for _, p := range pairs {
		el.AppendChild(p.node)
	}
	return el, nil
}

// collectChildren gathers the element children of one parent across all
// its nesting relationships, expanding virtual group entities in place.
func (r *Reconstructor) collectChildren(data *docData, entity string, id int64) ([]childPair, error) {
	var pairs []childPair
	positions := r.itemPos[entity]
	for _, relModel := range r.mapping.Model.RelationshipsOf(entity) {
		if relModel.Kind == er.RelReference {
			continue
		}
		pos := 0
		if positions != nil {
			if p, ok := positions[relModel.Name]; ok {
				pos = p
			} else if len(relModel.Arcs) == 1 {
				// NESTED relationships are recorded under the child name.
				if p, ok := positions[relModel.Arcs[0].Target]; ok {
					pos = p
				}
			}
		}
		for seq, rr := range data.relRows[relModel.Name][id] {
			if r.IgnoreOrdinals {
				rr.ord = int64(seq)
			}
			if r.isVirtual(rr.target) {
				// Splice the virtual group's own children in place; their
				// ordinals live in the same sibling space.
				sub, err := r.collectChildren(data, rr.target, rr.child)
				if err != nil {
					return nil, err
				}
				for _, sp := range sub {
					pairs = append(pairs, childPair{itemPos: pos, ord: sp.ord, node: sp.node})
				}
				continue
			}
			node, err := r.buildElement(data, rr.target, rr.child)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, childPair{itemPos: pos, ord: rr.ord, node: node})
		}
	}
	return pairs, nil
}

// isVirtual reports whether an entity is a step-1 virtual group element.
func (r *Reconstructor) isVirtual(entity string) bool {
	for i := range r.res.Groups {
		if r.res.Groups[i].Name == entity {
			return true
		}
	}
	return false
}

// appendRawChildren reparses serialized ANY content into child nodes.
func appendRawChildren(el *xmltree.Node, raw string) error {
	doc, err := xmltree.Parse("<x>" + raw + "</x>")
	if err != nil {
		return err
	}
	for _, c := range doc.Root.Children {
		el.AppendChild(c)
		c.Parent = el
	}
	return nil
}

// Verify rebuilds a document and compares it with the original,
// returning a descriptive error on mismatch. Comments, processing
// instructions and whitespace-only text are ignored, as the mapping does
// not store them.
func (r *Reconstructor) Verify(docID int64, original *xmltree.Document) error {
	rebuilt, err := r.Document(docID)
	if err != nil {
		return err
	}
	opts := xmltree.EqualOptions{
		IgnoreComments:       true,
		IgnorePIs:            true,
		IgnoreWhitespaceText: true,
		IgnoreAttrOrder:      true,
	}
	if !xmltree.Equal(original.Root, rebuilt.Root, opts) {
		return fmt.Errorf("reconstruct: document %d differs from original\n--- original ---\n%s\n--- rebuilt ---\n%s",
			docID, original.Root.XMLIndent("  "), rebuilt.Root.XMLIndent("  "))
	}
	return nil
}
