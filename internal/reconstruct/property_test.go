package reconstruct

import (
	"fmt"
	"testing"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/shred"
	"xmlrdb/internal/wgen"
	"xmlrdb/internal/xmltree"
)

// TestPropertyRandomRoundTrips is the repository's strongest invariant:
// for random DTDs and random conforming documents, shredding into the
// relational store and reconstructing yields an equivalent document —
// under both relational strategies and with distilling on and off.
func TestPropertyRandomRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is heavyweight")
	}
	dtdSeeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	configs := []struct {
		name     string
		strategy ermap.Strategy
		skip     bool
	}{
		{"junction", ermap.StrategyJunction, false},
		{"fold", ermap.StrategyFoldFK, false},
		{"junction-nodistill", ermap.StrategyJunction, true},
	}
	for _, seed := range dtdSeeds {
		d := wgen.GenerateDTD(wgen.DTDConfig{
			Elements: 24, Seed: seed, AttrsPerElement: 2, Levels: 5,
			IDProb: 0.3, IDREFProb: 0.3, OptionalProb: 0.35, RepeatProb: 0.35,
			ChoiceProb: 0.5,
		})
		docs, err := wgen.Corpus(d, 15, seed*100, wgen.DocConfig{MaxRepeat: 3})
		if err != nil {
			t.Fatalf("seed %d: corpus: %v", seed, err)
		}
		for _, cfg := range configs {
			res, err := core.MapWith(d, core.Options{SkipDistill: cfg.skip})
			if err != nil {
				t.Fatalf("seed %d %s: map: %v", seed, cfg.name, err)
			}
			m, err := ermap.Build(res.Model, ermap.Options{Strategy: cfg.strategy})
			if err != nil {
				t.Fatalf("seed %d %s: build: %v", seed, cfg.name, err)
			}
			db := engine.Open()
			if err := db.CreateSchema(m.Schema); err != nil {
				t.Fatalf("seed %d %s: schema: %v", seed, cfg.name, err)
			}
			loader, err := shred.NewLoader(res, m, db)
			if err != nil {
				t.Fatalf("seed %d %s: loader: %v", seed, cfg.name, err)
			}
			recon := New(res, m, db)
			for di, doc := range docs {
				st, err := loader.LoadDocument(doc, fmt.Sprintf("s%d-d%d", seed, di))
				if err != nil {
					t.Fatalf("seed %d %s doc %d: load: %v\n%s",
						seed, cfg.name, di, err, doc.Root.XMLIndent("  "))
				}
				if err := recon.Verify(st.DocID, doc); err != nil {
					t.Fatalf("seed %d %s doc %d: %v", seed, cfg.name, di, err)
				}
			}
			// Foreign keys hold across the whole store.
			if err := db.CheckAllFKs(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg.name, err)
			}
		}
	}
}

// TestPropertyMixedHeavyRoundTrips exercises DTDs dominated by mixed
// content and text leaves, where ordering metadata does the most work.
func TestPropertyMixedHeavyRoundTrips(t *testing.T) {
	dtdText := `
<!ELEMENT doc (sect+)>
<!ELEMENT sect (title, para*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT para (#PCDATA | em | strong | link)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT strong (#PCDATA)>
<!ELEMENT link (#PCDATA)>
<!ATTLIST link href CDATA #REQUIRED>
`
	docs := []string{
		`<doc><sect><title>T</title><para>a <em>b</em> c <strong>d</strong> e</para></sect></doc>`,
		`<doc><sect><title>T</title><para><em>lead</em>tail</para><para>only text</para></sect>
<sect><title>U</title></sect></doc>`,
		`<doc><sect><title></title><para>x<link href="h">l</link>y<em></em></para></sect></doc>`,
		`<doc><sect><title>ws</title><para>  leading and trailing  </para></sect></doc>`,
	}
	for _, strategy := range []ermap.Strategy{ermap.StrategyJunction, ermap.StrategyFoldFK} {
		res, err := core.Map(mustDTD(t, dtdText))
		if err != nil {
			t.Fatal(err)
		}
		m, err := ermap.Build(res.Model, ermap.Options{Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		db := engine.Open()
		if err := db.CreateSchema(m.Schema); err != nil {
			t.Fatal(err)
		}
		loader, err := shred.NewLoader(res, m, db)
		if err != nil {
			t.Fatal(err)
		}
		recon := New(res, m, db)
		for i, src := range docs {
			st, err := loader.LoadXML(src, fmt.Sprintf("m%d", i))
			if err != nil {
				t.Fatalf("%v doc %d: %v", strategy, i, err)
			}
			doc, err := parseDoc(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := recon.Verify(st.DocID, doc); err != nil {
				t.Errorf("%v doc %d: %v", strategy, i, err)
			}
		}
	}
}

func mustDTD(t *testing.T, src string) *dtd.DTD {
	t.Helper()
	d, err := dtd.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func parseDoc(src string) (*xmltree.Document, error) { return xmltree.Parse(src) }
