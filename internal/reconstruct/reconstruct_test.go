package reconstruct

import (
	"strings"
	"testing"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/engine"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/shred"
	"xmlrdb/internal/xmltree"
)

// pipeline maps a DTD, loads documents, and returns a reconstructor.
func pipeline(t *testing.T, dtdText string, opts ermap.Options, docs ...string) (*Reconstructor, []*xmltree.Document) {
	t.Helper()
	res, err := core.Map(dtd.MustParse(dtdText))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open()
	if err := db.CreateSchema(m.Schema); err != nil {
		t.Fatal(err)
	}
	l, err := shred.NewLoader(res, m, db)
	if err != nil {
		t.Fatal(err)
	}
	var parsed []*xmltree.Document
	for i, src := range docs {
		doc, err := xmltree.ParseWith(src, xmltree.Options{ExternalDTD: res.Original})
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if _, err := l.LoadDocument(doc, ""); err != nil {
			t.Fatalf("load doc %d: %v", i, err)
		}
		parsed = append(parsed, doc)
	}
	return New(res, m, db), parsed
}

func roundTrip(t *testing.T, dtdText string, opts ermap.Options, docs ...string) {
	t.Helper()
	r, parsed := pipeline(t, dtdText, opts, docs...)
	ids, err := r.DocumentIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(docs) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range ids {
		if err := r.Verify(id, parsed[i]); err != nil {
			t.Errorf("doc %d: %v", i, err)
		}
	}
}

func TestRoundTripPaperDocuments(t *testing.T) {
	roundTrip(t, paper.Example1DTD, ermap.Options{},
		paper.BookXML, paper.ArticleXML, paper.EditorXML)
}

func TestRoundTripFoldFK(t *testing.T) {
	roundTrip(t, paper.Example1DTD, ermap.Options{Strategy: ermap.StrategyFoldFK},
		paper.BookXML, paper.ArticleXML, paper.EditorXML)
}

func TestRoundTripSkipDistillStillWorks(t *testing.T) {
	res, err := core.MapWith(dtd.MustParse(paper.Example1DTD), core.Options{SkipDistill: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, ermap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open()
	if err := db.CreateSchema(m.Schema); err != nil {
		t.Fatal(err)
	}
	l, err := shred.NewLoader(res, m, db)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParse(paper.BookXML)
	if _, err := l.LoadDocument(doc, "b"); err != nil {
		t.Fatal(err)
	}
	r := New(res, m, db)
	if err := r.Verify(1, doc); err != nil {
		t.Error(err)
	}
}

func TestRoundTripMixedContent(t *testing.T) {
	roundTrip(t, `
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (para+)>
<!ELEMENT para (#PCDATA | em | code)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT code (#PCDATA)>
`, ermap.Options{},
		`<article><title>T</title><body>
<para>alpha <em>beta</em> gamma <code>x &lt; y</code> omega</para>
<para><em>lead</em> then text</para>
<para>only text</para>
</body></article>`)
}

func TestRoundTripOrderingWithinRepeatedGroups(t *testing.T) {
	// (author, affiliation?)+ interleaves; order must survive exactly.
	roundTrip(t, paper.Example1DTD, ermap.Options{},
		`<article><title>T</title>
<author id="a1"><name><lastname>One</lastname></name></author>
<author id="a2"><name><lastname>Two</lastname></name></author>
<affiliation>X</affiliation>
<author id="a3"><name><firstname>F</firstname><lastname>Three</lastname></name></author>
<affiliation>Y</affiliation>
<contactauthor authorid="a2"/>
</article>`)
}

func TestRoundTripNestedGroupsInsideGroups(t *testing.T) {
	roundTrip(t, `
<!ELEMENT x ((a, b) | (c, d))+>
<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>
`, ermap.Options{},
		`<x><a/><b/><c/><d/><a/><b/></x>`)
}

func TestRoundTripIDREFS(t *testing.T) {
	roundTrip(t, `
<!ELEMENT net (node*)>
<!ELEMENT node EMPTY>
<!ATTLIST node id ID #REQUIRED peers IDREFS #IMPLIED label CDATA #IMPLIED>
`, ermap.Options{},
		`<net><node id="n1" label="first"/><node id="n2" peers="n1 n3"/><node id="n3" peers="n2 n1"/></net>`)
}

func TestRoundTripAnyContent(t *testing.T) {
	roundTrip(t, paper.Example1DTD, ermap.Options{},
		`<article><title>T</title>
<author id="q"><name><lastname>L</lastname></name></author>
<affiliation>Nested <title>markup</title> inside &amp; entities</affiliation>
</article>`)
}

func TestRoundTripRecursive(t *testing.T) {
	roundTrip(t, paper.Example1DTD, ermap.Options{}, `<editor name="Top">
<book><booktitle>B1</booktitle><editor name="Mid">
<monograph><title>M</title><author id="z"><name><lastname>Z</lastname></name></author><editor name="Leaf"></editor></monograph>
</editor></book>
</editor>`)
}

func TestRoundTripOptionalAbsent(t *testing.T) {
	roundTrip(t, `
<!ELEMENT r (a?, b, c?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>
`, ermap.Options{},
		`<r><b>only b</b></r>`,
		`<r><a>a</a><b>b</b></r>`,
		`<r><b>b</b><c>c</c></r>`)
}

func TestRoundTripEmptyStringValues(t *testing.T) {
	roundTrip(t, `
<!ELEMENT r (a, b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>
<!ATTLIST r k CDATA #IMPLIED>
`, ermap.Options{},
		`<r k=""><a></a><b></b></r>`)
}

func TestDocumentErrors(t *testing.T) {
	r, _ := pipeline(t, paper.Example1DTD, ermap.Options{}, paper.BookXML)
	if _, err := r.Document(99); err == nil {
		t.Error("missing document should fail")
	}
}

func TestReconstructedSerializationParses(t *testing.T) {
	r, _ := pipeline(t, paper.Example1DTD, ermap.Options{}, paper.ArticleXML)
	doc, err := r.Document(1)
	if err != nil {
		t.Fatal(err)
	}
	out := doc.Render(xmltree.WriteOptions{})
	if !strings.Contains(out, `<?xml version="1.0"?>`) {
		t.Errorf("missing declaration: %s", out)
	}
	re, err := xmltree.Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !xmltree.Equal(doc.Root, re.Root, xmltree.EqualOptions{}) {
		t.Error("serialization round trip changed tree")
	}
}

func TestStabilityAcrossReconstructions(t *testing.T) {
	r, _ := pipeline(t, paper.Example1DTD, ermap.Options{}, paper.ArticleXML)
	a, err := r.Document(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Document(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Root.XML() != b.Root.XML() {
		t.Error("reconstruction not deterministic")
	}
}
