// Package rel models relational schemas: tables, typed columns, primary
// and foreign keys, and unique constraints, with DDL rendering. It is
// the target vocabulary of the ER-to-relational translation and the
// schema layer of the in-memory engine.
package rel

import (
	"fmt"
	"strings"
)

// Type is a column type.
type Type int

// Column types (a deliberately small, SQL-92-ish set).
const (
	// TypeInt is a 64-bit integer.
	TypeInt Type = iota + 1
	// TypeText is a variable-length string.
	TypeText
	// TypeFloat is a 64-bit float.
	TypeFloat
	// TypeBool is a boolean.
	TypeBool
)

// String returns the DDL keyword for the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeText:
		return "TEXT"
	case TypeFloat:
		return "FLOAT"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// TypeFromKeyword parses a DDL type keyword, case-insensitively.
func TypeFromKeyword(s string) (Type, bool) {
	switch strings.ToUpper(s) {
	case "INTEGER", "INT", "BIGINT":
		return TypeInt, true
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return TypeText, true
	case "FLOAT", "REAL", "DOUBLE":
		return TypeFloat, true
	case "BOOLEAN", "BOOL":
		return TypeBool, true
	default:
		return 0, false
	}
}

// Column is one table column.
type Column struct {
	// Name is the column name.
	Name string
	// Type is the column type.
	Type Type
	// NotNull forbids NULL values.
	NotNull bool
}

// ForeignKey is a referential constraint.
type ForeignKey struct {
	// Columns are the referencing columns of this table.
	Columns []string
	// RefTable and RefColumns identify the referenced key.
	RefTable   string
	RefColumns []string
}

// Table is one relation schema.
type Table struct {
	// Name is the table name.
	Name string
	// Columns in declaration order.
	Columns []Column
	// PrimaryKey lists the key column names (empty for heap tables).
	PrimaryKey []string
	// Uniques lists additional unique constraints.
	Uniques [][]string
	// ForeignKeys lists referential constraints.
	ForeignKeys []ForeignKey
	// Comment is rendered above the DDL, documenting provenance (which
	// entity or relationship produced the table).
	Comment string
}

// Column returns the named column and its position, or -1.
func (t *Table) Column(name string) (Column, int) {
	for i, c := range t.Columns {
		if c.Name == name {
			return c, i
		}
	}
	return Column{}, -1
}

// ColumnNames returns the column names in order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// DDL renders a CREATE TABLE statement.
func (t *Table) DDL() string {
	var b strings.Builder
	if t.Comment != "" {
		b.WriteString("-- " + t.Comment + "\n")
	}
	b.WriteString("CREATE TABLE " + t.Name + " (\n")
	var lines []string
	for _, c := range t.Columns {
		line := "  " + c.Name + " " + c.Type.String()
		if c.NotNull {
			line += " NOT NULL"
		}
		lines = append(lines, line)
	}
	if len(t.PrimaryKey) > 0 {
		lines = append(lines, "  PRIMARY KEY ("+strings.Join(t.PrimaryKey, ", ")+")")
	}
	for _, u := range t.Uniques {
		lines = append(lines, "  UNIQUE ("+strings.Join(u, ", ")+")")
	}
	for _, fk := range t.ForeignKeys {
		lines = append(lines, "  FOREIGN KEY ("+strings.Join(fk.Columns, ", ")+
			") REFERENCES "+fk.RefTable+" ("+strings.Join(fk.RefColumns, ", ")+")")
	}
	b.WriteString(strings.Join(lines, ",\n"))
	b.WriteString("\n);\n")
	return b.String()
}

// Schema is a named set of tables.
type Schema struct {
	// Name labels the schema.
	Name string
	// Tables in creation order.
	Tables []*Table

	byName map[string]*Table
}

// NewSchema returns an empty schema.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, byName: make(map[string]*Table)}
}

// AddTable appends a table; the name must be unique.
func (s *Schema) AddTable(t *Table) error {
	if _, dup := s.byName[t.Name]; dup {
		return fmt.Errorf("rel: table %q already defined", t.Name)
	}
	s.Tables = append(s.Tables, t)
	s.byName[t.Name] = t
	return nil
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table { return s.byName[name] }

// DDL renders CREATE TABLE statements for every table.
func (s *Schema) DDL() string {
	var b strings.Builder
	for i, t := range s.Tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.DDL())
	}
	return b.String()
}

// Stats summarizes schema size for the E4 experiment.
type Stats struct {
	// Tables and Columns count schema objects.
	Tables, Columns int
	// ForeignKeys counts referential constraints.
	ForeignKeys int
}

// ComputeStats returns size statistics.
func (s *Schema) ComputeStats() Stats {
	var st Stats
	st.Tables = len(s.Tables)
	for _, t := range s.Tables {
		st.Columns += len(t.Columns)
		st.ForeignKeys += len(t.ForeignKeys)
	}
	return st
}

// Validate checks referential consistency of the schema itself: foreign
// keys must reference existing tables and columns, and key columns must
// exist.
func (s *Schema) Validate() error {
	for _, t := range s.Tables {
		for _, pk := range t.PrimaryKey {
			if _, i := t.Column(pk); i < 0 {
				return fmt.Errorf("rel: table %q: primary key column %q missing", t.Name, pk)
			}
		}
		for _, u := range t.Uniques {
			for _, c := range u {
				if _, i := t.Column(c); i < 0 {
					return fmt.Errorf("rel: table %q: unique column %q missing", t.Name, c)
				}
			}
		}
		for _, fk := range t.ForeignKeys {
			ref := s.Table(fk.RefTable)
			if ref == nil {
				return fmt.Errorf("rel: table %q: foreign key references unknown table %q", t.Name, fk.RefTable)
			}
			if len(fk.Columns) != len(fk.RefColumns) {
				return fmt.Errorf("rel: table %q: foreign key column count mismatch", t.Name)
			}
			for _, c := range fk.Columns {
				if _, i := t.Column(c); i < 0 {
					return fmt.Errorf("rel: table %q: foreign key column %q missing", t.Name, c)
				}
			}
			for _, c := range fk.RefColumns {
				if _, i := ref.Column(c); i < 0 {
					return fmt.Errorf("rel: table %q: referenced column %s.%q missing", t.Name, fk.RefTable, c)
				}
			}
		}
	}
	return nil
}
