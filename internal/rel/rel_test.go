package rel

import (
	"strings"
	"testing"
)

func sampleSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema("sample")
	authors := &Table{
		Name:    "authors",
		Comment: "people",
		Columns: []Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "name", Type: TypeText, NotNull: true},
			{Name: "rating", Type: TypeFloat},
			{Name: "active", Type: TypeBool},
		},
		PrimaryKey: []string{"id"},
		Uniques:    [][]string{{"name"}},
	}
	books := &Table{
		Name: "books",
		Columns: []Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "author", Type: TypeInt},
		},
		PrimaryKey: []string{"id"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"author"}, RefTable: "authors", RefColumns: []string{"id"}},
		},
	}
	for _, tab := range []*Table{authors, books} {
		if err := s.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		TypeInt: "INTEGER", TypeText: "TEXT", TypeFloat: "FLOAT", TypeBool: "BOOLEAN",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Errorf("%v.String() = %q", typ, typ.String())
		}
	}
}

func TestTypeFromKeyword(t *testing.T) {
	cases := map[string]Type{
		"INTEGER": TypeInt, "int": TypeInt, "BIGINT": TypeInt,
		"text": TypeText, "VARCHAR": TypeText,
		"Float": TypeFloat, "REAL": TypeFloat, "double": TypeFloat,
		"BOOLEAN": TypeBool, "bool": TypeBool,
	}
	for kw, want := range cases {
		got, ok := TypeFromKeyword(kw)
		if !ok || got != want {
			t.Errorf("TypeFromKeyword(%q) = %v, %v", kw, got, ok)
		}
	}
	if _, ok := TypeFromKeyword("BLOB"); ok {
		t.Error("unknown keyword accepted")
	}
}

func TestColumnLookup(t *testing.T) {
	s := sampleSchema(t)
	tab := s.Table("authors")
	c, i := tab.Column("name")
	if i != 1 || c.Type != TypeText {
		t.Errorf("Column(name) = %+v @ %d", c, i)
	}
	if _, i := tab.Column("ghost"); i != -1 {
		t.Error("missing column should return -1")
	}
	if got := strings.Join(tab.ColumnNames(), ","); got != "id,name,rating,active" {
		t.Errorf("ColumnNames = %s", got)
	}
}

func TestDDLRendering(t *testing.T) {
	s := sampleSchema(t)
	ddl := s.DDL()
	for _, want := range []string{
		"-- people",
		"CREATE TABLE authors (",
		"id INTEGER NOT NULL",
		"rating FLOAT",
		"active BOOLEAN",
		"PRIMARY KEY (id)",
		"UNIQUE (name)",
		"FOREIGN KEY (author) REFERENCES authors (id)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}

func TestSchemaDuplicate(t *testing.T) {
	s := sampleSchema(t)
	if err := s.AddTable(&Table{Name: "authors"}); err == nil {
		t.Error("duplicate table should fail")
	}
	if s.Table("nope") != nil {
		t.Error("missing table lookup")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := sampleSchema(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tab  *Table
	}{
		{"missing pk column", &Table{Name: "a", PrimaryKey: []string{"nope"}}},
		{"missing unique column", &Table{Name: "b", Uniques: [][]string{{"nope"}}}},
		{"fk to missing table", &Table{
			Name:        "c",
			Columns:     []Column{{Name: "x", Type: TypeInt}},
			ForeignKeys: []ForeignKey{{Columns: []string{"x"}, RefTable: "ghost", RefColumns: []string{"id"}}},
		}},
		{"fk column count mismatch", &Table{
			Name:        "d",
			Columns:     []Column{{Name: "x", Type: TypeInt}},
			ForeignKeys: []ForeignKey{{Columns: []string{"x"}, RefTable: "authors", RefColumns: []string{"id", "name"}}},
		}},
		{"fk missing local column", &Table{
			Name:        "e",
			ForeignKeys: []ForeignKey{{Columns: []string{"nope"}, RefTable: "authors", RefColumns: []string{"id"}}},
		}},
		{"fk missing remote column", &Table{
			Name:        "f",
			Columns:     []Column{{Name: "x", Type: TypeInt}},
			ForeignKeys: []ForeignKey{{Columns: []string{"x"}, RefTable: "authors", RefColumns: []string{"nope"}}},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s2 := sampleSchema(t)
			if err := s2.AddTable(c.tab); err != nil {
				t.Fatal(err)
			}
			if err := s2.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestComputeStats(t *testing.T) {
	s := sampleSchema(t)
	st := s.ComputeStats()
	if st.Tables != 2 || st.Columns != 6 || st.ForeignKeys != 1 {
		t.Errorf("stats = %+v", st)
	}
}
