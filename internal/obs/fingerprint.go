package obs

import "strings"

// Fingerprint normalizes a statement to its shape: single-quoted
// string literals and numeric literals become '?', whitespace
// collapses to single spaces, and keywords keep their original case
// only when outside literals (the engine is case-preserving, so no
// folding here — two queries differing only in keyword case are rare
// enough not to matter for aggregation). The result keys the
// query-telemetry store, so `SELECT * FROM t WHERE id = 7` and
// `... id = 42` aggregate together. Works on SQL and on path-query
// expressions (which carry predicates in the same literal syntax).
func Fingerprint(stmt string) string {
	var b strings.Builder
	b.Grow(len(stmt))
	i := 0
	n := len(stmt)
	lastSpace := true // swallow leading whitespace
	for i < n {
		c := stmt[i]
		switch {
		case c == '\'':
			// String literal: skip to closing quote, honoring ''
			// escapes; emit a single placeholder.
			i++
			for i < n {
				if stmt[i] == '\'' {
					if i+1 < n && stmt[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			b.WriteByte('?')
			lastSpace = false
		case c >= '0' && c <= '9':
			// Numeric literal — but not when part of an identifier
			// (e.g. table_1): check the previous emitted byte.
			if !lastSpace && b.Len() > 0 {
				prev := b.String()[b.Len()-1]
				if isIdentByte(prev) && prev != '?' {
					b.WriteByte(c)
					i++
					continue
				}
			}
			for i < n && (isDigitish(stmt[i])) {
				i++
			}
			b.WriteByte('?')
			lastSpace = false
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			for i < n && (stmt[i] == ' ' || stmt[i] == '\t' || stmt[i] == '\n' || stmt[i] == '\r') {
				i++
			}
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		default:
			b.WriteByte(c)
			lastSpace = false
			i++
		}
	}
	return strings.TrimRight(b.String(), " ")
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// isDigitish accepts the characters that can continue a numeric
// literal: digits, decimal point, exponent markers and their signs.
func isDigitish(c byte) bool {
	return (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E'
}
