package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Recorder is the flight recorder: a fixed-size ring of recently
// completed request traces. Slow and errored traces go to a second,
// separate ring, so a flood of fast healthy traffic can never evict
// the requests worth debugging — the retention invariant the
// /debug/traces endpoint depends on.
//
// Traces are stored pre-marshaled: one flat JSON []byte per trace plus
// a scalar summary. A few hundred retained span trees full of strings
// and boxed attribute values would otherwise add tens of thousands of
// heap pointers for every GC mark cycle to chase — measured at ~20%
// request throughput on the serving benchmark — while byte slices are
// pointer-free to the collector. Each trace marshals directly into its
// ring slot's recycled buffer, so once the rings are warm a recorded
// trace allocates nothing and the recorder's live heap stays constant.
// Reads copy out under the lock and unmarshal on demand; they are
// debug-endpoint rare, records happen on every traced request.
type Recorder struct {
	mu       sync.Mutex
	recent   ring
	retained ring
	slow     time.Duration // 0 = nothing is "slow"
}

// storedTrace is one ring slot: the listing summary and the marshaled
// TraceRecord.
type storedTrace struct {
	sum  TraceSummary
	json []byte
}

type ring struct {
	buf  []storedTrace
	next int
	n    int // number of valid entries
}

// slot advances the ring and returns the next entry for reuse; the
// caller overwrites its summary and appends into json[:0], keeping the
// warmed-up buffer capacity.
func (r *ring) slot() *storedTrace {
	if len(r.buf) == 0 {
		return nil
	}
	st := &r.buf[r.next]
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	return st
}

func (r *ring) each(fn func(*storedTrace)) {
	for i := 0; i < r.n; i++ {
		fn(&r.buf[i])
	}
}

// DefaultRecorderSize is the capacity of the recent-traces ring; the
// slow/errored ring is a quarter of it. Deliberately modest: the
// serving heap is small, and every retained trace raises the live-heap
// floor the GC re-marks each cycle — depth beyond "the last few dozen
// requests" buys little because slow and errored traces survive in
// their own ring regardless.
const DefaultRecorderSize = 64

// NewRecorder returns a flight recorder holding up to size recent
// traces (DefaultRecorderSize if size <= 0). Traces slower than slow
// (if > 0) and errored traces are additionally retained in a separate
// ring that normal traffic cannot evict.
func NewRecorder(size int, slow time.Duration) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	retain := size / 4
	if retain < 16 {
		retain = 16
	}
	return &Recorder{
		recent:   ring{buf: make([]storedTrace, size)},
		retained: ring{buf: make([]storedTrace, retain)},
		slow:     slow,
	}
}

// SlowThreshold reports the duration above which a trace is marked
// slow (0 = disabled).
func (rc *Recorder) SlowThreshold() time.Duration {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.slow
}

// Record stores the finished trace. Safe on a nil recorder. The trace
// marshals itself straight into the recycled ring-slot buffer — no
// intermediate record, and at steady state no allocation. Marshaling
// under the recorder lock is fine: it is a few microseconds once per
// traced request, and readers are debug-endpoint rare.
func (rc *Recorder) Record(tr *Trace) {
	if rc == nil || tr == nil {
		return
	}
	tr.mu.Lock()
	sum := TraceSummary{
		ID: tr.ID, Name: tr.Name, Start: tr.Start,
		DurNS: int64(tr.Dur), Err: tr.Err, Spans: len(tr.spans),
	}
	tr.mu.Unlock()
	if rc.slow > 0 && sum.DurNS >= rc.slow.Nanoseconds() {
		sum.Slow = true
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	st := rc.recent.slot()
	if st == nil {
		return
	}
	st.sum = sum
	st.json = tr.appendJSON(st.json[:0], sum.Slow)
	if sum.Slow || sum.Err != "" {
		if r := rc.retained.slot(); r != nil {
			r.sum = sum
			r.json = append(r.json[:0], st.json...)
		}
	}
}

// TraceSummary is the /debug/traces listing entry.
type TraceSummary struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	DurNS int64     `json:"dur_ns"`
	Err   string    `json:"err,omitempty"`
	Slow  bool      `json:"slow,omitempty"`
	Spans int       `json:"spans"`
}

// List returns summaries of every held trace (both rings, deduplicated
// by ID), newest first.
func (rc *Recorder) List() []TraceSummary {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	seen := make(map[string]bool)
	var out []TraceSummary
	add := func(st *storedTrace) {
		if seen[st.sum.ID] {
			return
		}
		seen[st.sum.ID] = true
		out = append(out, st.sum)
	}
	rc.retained.each(add)
	rc.recent.each(add)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Get returns the full trace record for id. The rings are small, so a
// linear scan under the lock beats maintaining an index across
// evictions.
func (rc *Recorder) Get(id string) (TraceRecord, bool) {
	if rc == nil {
		return TraceRecord{}, false
	}
	rc.mu.Lock()
	var data []byte
	check := func(st *storedTrace) {
		if st.sum.ID == id {
			// Copy: the slot's buffer is recycled on eviction.
			data = append([]byte(nil), st.json...)
		}
	}
	rc.retained.each(check)
	if data == nil {
		rc.recent.each(check)
	}
	rc.mu.Unlock()
	if data == nil {
		return TraceRecord{}, false
	}
	var rec TraceRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return TraceRecord{}, false
	}
	return rec, true
}
