package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Event is one span-style structured trace event: a completed unit of
// work (a statement execution, a document shred, a query translation)
// with its duration and scope-specific attributes.
type Event struct {
	// Scope is the emitting layer: engine, shred, pathquery, reconstruct.
	Scope string
	// Name is the event kind within the scope (exec, slow-query,
	// document, corpus, translate, ...).
	Name string
	// Detail carries the primary operand: SQL text, document name,
	// query path.
	Detail string
	// Dur is the span duration (zero for instantaneous events).
	Dur time.Duration
	// Err is the failure message, empty on success.
	Err string
	// Attrs are additional key=value pairs, in order.
	Attrs []Attr
}

// Attr is one structured attribute: an event annotation or a span
// annotation (the flight recorder serializes these as JSON).
type Attr struct {
	Key string `json:"k"`
	Val any    `json:"v"`
}

// A Tracer consumes trace events. Implementations must be safe for
// concurrent use; Emit is called from loader workers and query paths.
type Tracer interface {
	Emit(Event)
}

// NopTracer discards every event.
type NopTracer struct{}

// Emit implements Tracer.
func (NopTracer) Emit(Event) {}

// WriterTracer writes events as single logfmt-style lines. It
// serializes writes with a mutex, so one event is never interleaved
// with another.
type WriterTracer struct {
	mu sync.Mutex
	w  io.Writer
	// Now is the clock (overridable in tests); nil means time.Now.
	Now func() time.Time
}

// NewWriterTracer returns a tracer writing structured lines to w.
func NewWriterTracer(w io.Writer) *WriterTracer {
	return &WriterTracer{w: w}
}

// Emit implements Tracer.
func (t *WriterTracer) Emit(ev Event) {
	now := time.Now
	if t.Now != nil {
		now = t.Now
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ts=%s scope=%s event=%s", now().Format(time.RFC3339Nano), ev.Scope, ev.Name)
	if ev.Dur != 0 {
		fmt.Fprintf(&b, " dur=%s", ev.Dur)
	}
	if ev.Detail != "" {
		fmt.Fprintf(&b, " detail=%s", quoteVal(ev.Detail))
	}
	for _, a := range ev.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, quoteVal(fmt.Sprint(a.Val)))
	}
	if ev.Err != "" {
		fmt.Fprintf(&b, " err=%s", quoteVal(ev.Err))
	}
	b.WriteByte('\n')
	t.mu.Lock()
	defer t.mu.Unlock()
	io.WriteString(t.w, b.String())
}

// quoteVal quotes a logfmt value when it contains spaces, quotes or
// equals signs.
func quoteVal(s string) string {
	if strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// CollectTracer buffers events in memory; for tests and snapshots.
type CollectTracer struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (t *CollectTracer) Emit(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of the buffered events.
func (t *CollectTracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}
