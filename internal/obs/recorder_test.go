package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var contextBackground = context.Background()

func finishedTrace(id string, err error) *Trace {
	tr := NewTrace("req", id)
	tr.Finish(err)
	return tr
}

// TestRecorderRetainsSlowAndErrored pins the retention invariant: a
// flood of healthy traffic must never evict an errored trace.
func TestRecorderRetainsSlowAndErrored(t *testing.T) {
	rc := NewRecorder(8, time.Hour) // nothing qualifies as slow
	rc.Record(finishedTrace("bad", errors.New("boom")))
	// Far more healthy traces than the recent ring holds.
	for i := 0; i < 100; i++ {
		rc.Record(finishedTrace(fmt.Sprintf("ok-%d", i), nil))
	}
	if _, ok := rc.Get("bad"); !ok {
		t.Fatal("errored trace evicted by healthy traffic")
	}
	// The earliest healthy traces must be gone (ring of 8).
	if _, ok := rc.Get("ok-0"); ok {
		t.Fatal("recent ring did not evict")
	}
	// Listing includes the retained errored trace exactly once.
	seen := 0
	for _, s := range rc.List() {
		if s.ID == "bad" {
			seen++
			if s.Err == "" {
				t.Fatal("errored summary lost its error")
			}
		}
	}
	if seen != 1 {
		t.Fatalf("errored trace listed %d times, want 1", seen)
	}
}

// TestRecorderSlowMarking proves traces over the threshold are marked
// and survive eviction pressure from fast traces.
func TestRecorderSlowMarking(t *testing.T) {
	rc := NewRecorder(4, time.Millisecond)
	slow := NewTrace("slow-req", "s1")
	time.Sleep(2 * time.Millisecond)
	slow.Finish(nil)
	rc.Record(slow)
	for i := 0; i < 50; i++ {
		rc.Record(finishedTrace(fmt.Sprintf("fast-%d", i), nil)) // sub-threshold
	}
	got, ok := rc.Get("s1")
	if !ok {
		t.Fatal("slow trace evicted by fast traffic")
	}
	if !got.Slow {
		t.Fatal("slow trace not marked Slow")
	}
}

// TestRecorderConcurrent drives request writers against /debug/traces
// readers; run under -race this pins the recorder's thread safety.
func TestRecorderConcurrent(t *testing.T) {
	rc := NewRecorder(16, time.Hour)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				var err error
				if i%10 == 0 {
					err = errors.New("boom")
				}
				rc.Record(finishedTrace(fmt.Sprintf("w%d-%d", w, i), err))
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range rc.List() {
					rc.Get(s.ID)
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if len(rc.List()) == 0 {
		t.Fatal("no traces recorded")
	}
}

// BenchmarkRecorderRecord pins the per-request cost of recording a
// realistic trace (root + a dozen spans with attrs).
func BenchmarkRecorderRecord(b *testing.B) {
	rc := NewRecorder(0, 250*time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTrace("serve.path", "")
		for j := 0; j < 11; j++ {
			_, sp := StartSpan(WithTrace(contextBackground, tr), "op.scan")
			sp.SetAttr("op", "SeqScan e_author")
			sp.SetAttr("rows", int64(42))
			sp.End()
		}
		tr.Finish(nil)
		rc.Record(tr)
	}
}
