package obs

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestSpanNilSafety(t *testing.T) {
	// No trace in context: StartSpan returns a nil span and every
	// method must be a no-op rather than a panic.
	ctx, sp := StartSpan(context.Background(), "work")
	if sp != nil {
		t.Fatalf("StartSpan without a trace returned %v", sp)
	}
	sp.SetAttr("k", "v")
	sp.SetErr(errors.New("boom"))
	sp.End()
	if got := TraceFrom(ctx); got != nil {
		t.Fatalf("TraceFrom = %v, want nil", got)
	}
	var tr *Trace
	tr.Finish(nil)
	tr.AddCompletedSpan(nil, "x", time.Now(), 0)
	if tr.Root() != nil {
		t.Fatal("nil trace has a root")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace("request", "req-1")
	if tr.ID != "req-1" {
		t.Fatalf("ID = %q, want the caller-supplied one", tr.ID)
	}
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom lost the trace")
	}

	ctx1, parent := StartSpan(ctx, "outer")
	_, child := StartSpan(ctx1, "inner")
	child.SetAttr("rows", 7)
	child.End()
	parent.End()
	tr.AddCompletedSpan(parent, "op", time.Now(), 5*time.Millisecond,
		Attr{Key: "est", Val: 10})
	tr.Finish(nil)

	rec := tr.Record()
	if rec.ID != "req-1" || len(rec.Spans) != 4 {
		t.Fatalf("record = %+v", rec)
	}
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	root, outer, inner, op := byName["request"], byName["outer"], byName["inner"], byName["op"]
	if root.Parent != 0 {
		t.Fatalf("root has parent %d", root.Parent)
	}
	if outer.Parent != root.ID {
		t.Fatalf("outer.Parent = %d, want root %d", outer.Parent, root.ID)
	}
	if inner.Parent != outer.ID {
		t.Fatalf("inner.Parent = %d, want outer %d", inner.Parent, outer.ID)
	}
	if op.Parent != outer.ID {
		t.Fatalf("completed span parent = %d, want outer %d", op.Parent, outer.ID)
	}
	if op.DurNS != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("op.DurNS = %d", op.DurNS)
	}
	if len(inner.Attrs) != 1 || inner.Attrs[0].Key != "rows" {
		t.Fatalf("inner attrs = %+v", inner.Attrs)
	}
}

func TestTraceGeneratedIDAndErr(t *testing.T) {
	tr := NewTrace("r", "")
	if len(tr.ID) != 16 {
		t.Fatalf("generated ID %q, want 16 hex chars", tr.ID)
	}
	tr.Finish(errors.New("deadline"))
	tr.Finish(nil) // idempotent: must not clear the error
	rec := tr.Record()
	if rec.Err != "deadline" {
		t.Fatalf("Err = %q", rec.Err)
	}
	if rec.DurNS <= 0 {
		t.Fatalf("DurNS = %d", rec.DurNS)
	}
}

func TestStartSpanChildOfCompletedParentContext(t *testing.T) {
	// Spans started from a context whose span already ended still attach
	// to the trace (the engine hands contexts to deferred work).
	tr := NewTrace("r", "")
	ctx := WithTrace(context.Background(), tr)
	ctx1, a := StartSpan(ctx, "a")
	a.End()
	_, b := StartSpan(ctx1, "b")
	b.End()
	tr.Finish(nil)
	if n := len(tr.Record().Spans); n != 3 {
		t.Fatalf("spans = %d, want 3", n)
	}
}

// TestAppendJSONMatchesEncodingJSON pins the hand-rolled trace
// encoder to the encoding/json shape: what the recorder stores must
// unmarshal to exactly what reflectively marshaling the trace's
// Record() would round-trip.
func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	tr := NewTrace("serve.query", "req with \"quotes\"\n")
	ctx := WithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "engine.select")
	sp.SetAttr("sql", `SELECT * FROM t WHERE a = 'x"y'`)
	sp.SetAttr("rows", int64(42))
	sp.SetAttr("est", 12.5)
	sp.SetAttr("cached", true)
	sp.SetAttr("tables", 3)
	sp.SetAttr("wait", 150*time.Millisecond)
	sp.SetErr(errors.New("boom\tline"))
	sp.End()
	tr.Finish(errors.New("deadline"))
	rec := tr.Record()
	rec.Slow = true

	hand := tr.appendJSON(nil, true)
	var fromHand, fromStd TraceRecord
	if err := json.Unmarshal(hand, &fromHand); err != nil {
		t.Fatalf("hand-rolled JSON does not parse: %v\n%s", err, hand)
	}
	std, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(std, &fromStd); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromHand, fromStd) {
		t.Fatalf("round-trip mismatch:\nhand: %+v\nstd:  %+v", fromHand, fromStd)
	}
}
