// Package obs is the engine-wide observability layer: allocation-lean
// atomic counters, power-of-two bucketed histograms, a pluggable Tracer
// for span-style structured events, and snapshot/report/publication
// surfaces (typed Snapshot API, expvar, an optional HTTP debug
// endpoint).
//
// The hot layers — engine, shred, pathquery, reconstruct — hold a
// *Metrics and record into it with single atomic adds; a nil *Metrics
// disables collection entirely, so unobserved paths pay only a nil
// check. Snapshots are consistent enough for reporting (each counter is
// read atomically; cross-counter skew is possible under concurrent
// load, exactness holds once writers are quiescent).
package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is an atomic monotonic counter. The zero value is ready to
// use. Counters must not be copied after first use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (in-flight requests, queue
// depth). The zero value is ready to use. Gauges must not be copied
// after first use.
type Gauge struct {
	v atomic.Int64
}

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// holds observations v with bits.Len64(v) == i, i.e. 1<<(i-1) <= v <
// 1<<i (bucket 0 holds v <= 0). 63 buckets cover the full int64 range.
const histBuckets = 64

// Histogram is a fixed-size power-of-two bucketed histogram of int64
// observations (durations in nanoseconds, batch sizes, row counts).
// The zero value is ready to use; all operations are lock-free single
// atomic adds. Histograms must not be copied after first use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
	max    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Snapshot returns the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketBound(i), N: n})
		}
	}
	return s
}

// bucketBound is the inclusive upper bound of bucket i.
func bucketBound(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<i - 1
}

// Bucket is one non-empty histogram bucket: N observations <= Le (and
// greater than the previous bucket's bound).
type Bucket struct {
	// Le is the bucket's inclusive upper bound.
	Le int64 `json:"le"`
	// N is the observation count in this bucket.
	N int64 `json:"n"`
}

// HistSnapshot is a point-in-time view of a Histogram.
type HistSnapshot struct {
	// Count, Sum and Max summarize all observations.
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	// Buckets lists the non-empty buckets in ascending bound order.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 with no observations.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1) — an upper estimate within a factor of two.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.N
		if seen >= target {
			return b.Le
		}
	}
	return s.Max
}

// durString renders a nanosecond value as a rounded duration.
func durString(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}

// DurSummary renders the snapshot as a latency summary line.
func (s HistSnapshot) DurSummary() string {
	if s.Count == 0 {
		return "count=0"
	}
	return fmt.Sprintf("count=%d mean=%s p50<=%s p95<=%s max=%s",
		s.Count, durString(s.Mean()), durString(s.Quantile(0.50)),
		durString(s.Quantile(0.95)), durString(s.Max))
}

// SizeSummary renders the snapshot as a size/count summary line.
func (s HistSnapshot) SizeSummary() string {
	if s.Count == 0 {
		return "count=0"
	}
	return fmt.Sprintf("count=%d mean=%d p50<=%d p95<=%d max=%d",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.95), s.Max)
}
