package obs

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promLine matches one sample line of the text exposition format:
// metric name, optional {labels}, and a value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_]+="(?:[^"\\]|\\.)*")*\})? (?:[-+]?[0-9.eE+-]+|\+Inf|NaN)$`)

func promFixture() *Metrics {
	m := New()
	m.Selects.Add(12)
	m.InsertStmts.Add(3)
	m.SlowQueries.Inc()
	m.ExecLatency.Observe(1_500_000) // 1.5ms in ns
	m.ExecLatency.Observe(3_000_000)
	m.RowsOut.Add(40)
	m.Table("e_book").RowsInserted.Add(7)
	m.Table("e_author").Scans.Add(2)
	m.Translations.Add(5)
	m.PlanCacheHits.Add(4)
	m.ServeRequests.Add(9)
	m.ServeInflight.Inc()
	m.WALFrames.Add(11)
	m.DocsLoaded.Add(2)
	return m
}

func TestWritePromGolden(t *testing.T) {
	var sb strings.Builder
	WriteProm(&sb, promFixture().Snapshot())
	text := sb.String()

	// Exact sample lines the fixture must produce.
	for _, want := range []string{
		`xmlrdb_engine_selects_total 12`,
		`xmlrdb_engine_inserts_total 3`,
		`xmlrdb_engine_slow_queries_total 1`,
		`xmlrdb_engine_exec_latency_seconds_count 2`,
		`xmlrdb_engine_exec_latency_seconds_bucket{le="+Inf"} 2`,
		`xmlrdb_engine_rows_out_total 40`,
		`xmlrdb_table_rows_inserted_total{table="e_book"} 7`,
		`xmlrdb_table_scans_total{table="e_author"} 2`,
		`xmlrdb_query_translations_total 5`,
		`xmlrdb_query_plan_cache_hits_total 4`,
		`xmlrdb_serve_requests_total 9`,
		`xmlrdb_serve_inflight 1`,
		`xmlrdb_wal_frames_total 11`,
		`xmlrdb_load_docs_total 2`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing line %q", want)
		}
	}
	// The 4.5ms total latency is reported in seconds (ns × 1e-9); allow
	// for binary floating-point rounding in the last digits.
	if !strings.Contains(text, "xmlrdb_engine_exec_latency_seconds_sum 0.0045") {
		t.Error("latency sum not scaled to seconds")
	}
	if !strings.Contains(text, "# TYPE xmlrdb_serve_inflight gauge\n") {
		t.Error("inflight must be declared a gauge")
	}
	if !strings.Contains(text, "# TYPE xmlrdb_engine_exec_latency_seconds histogram\n") {
		t.Error("latency must be declared a histogram")
	}
}

// TestWritePromFormat validates every emitted line against the text
// exposition grammar and checks histogram bucket invariants.
func TestWritePromFormat(t *testing.T) {
	var sb strings.Builder
	WriteProm(&sb, promFixture().Snapshot())

	var lastBucket string
	var lastCum int64 = -1
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			lastBucket, lastCum = "", -1
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		// Cumulative buckets must be non-decreasing within a family.
		if i := strings.Index(line, `_bucket{le="`); i >= 0 {
			name := line[:i]
			val, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if name == lastBucket && val < lastCum {
				t.Fatalf("bucket counts decreased in %q (%d after %d)", line, val, lastCum)
			}
			lastBucket, lastCum = name, val
		}
	}
}

func TestPromHandler(t *testing.T) {
	h := PromHandler(promFixture())
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "xmlrdb_engine_selects_total 12") {
		t.Fatal("handler body missing fixture counter")
	}
}
