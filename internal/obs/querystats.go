package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Query telemetry: per-statement-shape aggregates keyed by the
// Fingerprint of the executed statement. This is the ground truth the
// planned cost-based optimizer needs — how far estimated cardinalities
// diverge from actual rows, per operator, per query shape — and what
// /debug/querystats serves.

// OpDigest is one operator's estimated-vs-actual row accounting from
// an executed plan.
type OpDigest struct {
	Name string `json:"name"` // operator describe() line, e.g. "SeqScan book"
	Est  int64  `json:"est"`  // planner cardinality hint
	Rows int64  `json:"rows"` // rows actually produced
}

// PlanDigest is the compact executed-plan summary attached to query
// telemetry and slow-query events.
type PlanDigest struct {
	Summary string     `json:"summary"` // one-line plan shape, root-first
	Ops     []OpDigest `json:"ops,omitempty"`
}

// EstError returns the mean relative cardinality-estimate error across
// the digest's operators: |est-actual| / max(actual, 1), averaged.
// 0 is perfect; 1 means off by 100% of actual.
func (d *PlanDigest) EstError() float64 {
	if d == nil || len(d.Ops) == 0 {
		return 0
	}
	var sum float64
	for _, op := range d.Ops {
		den := op.Rows
		if den < 1 {
			den = 1
		}
		diff := op.Est - op.Rows
		if diff < 0 {
			diff = -diff
		}
		sum += float64(diff) / float64(den)
	}
	return sum / float64(len(d.Ops))
}

// queryStat is one fingerprint's live accumulator.
type queryStat struct {
	fingerprint string
	example     string // first raw statement seen with this shape
	count       int64
	errors      int64
	rows        int64
	latency     Histogram
	rowsOut     Histogram
	estErrSum   float64 // sum of per-execution mean relative est errors
	estErrN     int64
	lastPlan    string
	lastOps     []OpDigest
}

// QueryStatsStore aggregates executions by statement fingerprint. It
// holds at most cap entries; when full, a new fingerprint evicts the
// least-executed existing one.
type QueryStatsStore struct {
	mu    sync.Mutex
	stats map[string]*queryStat
	cap   int
}

// DefaultQueryStatsCap bounds the number of distinct fingerprints held.
const DefaultQueryStatsCap = 512

// NewQueryStatsStore returns a store holding up to capacity
// fingerprints (DefaultQueryStatsCap if <= 0).
func NewQueryStatsStore(capacity int) *QueryStatsStore {
	if capacity <= 0 {
		capacity = DefaultQueryStatsCap
	}
	return &QueryStatsStore{stats: make(map[string]*queryStat), cap: capacity}
}

// Observe records one execution of stmt. digest may be nil (non-SELECT
// statements, failed plans). Safe on a nil store.
func (qs *QueryStatsStore) Observe(stmt string, dur time.Duration, rows int64, execErr error, digest *PlanDigest) {
	if qs == nil {
		return
	}
	fp := Fingerprint(stmt)
	qs.mu.Lock()
	st := qs.stats[fp]
	if st == nil {
		if len(qs.stats) >= qs.cap {
			qs.evictLocked()
		}
		st = &queryStat{fingerprint: fp, example: stmt}
		qs.stats[fp] = st
	}
	st.count++
	if execErr != nil {
		st.errors++
	}
	st.rows += rows
	st.latency.Observe(dur.Nanoseconds())
	st.rowsOut.Observe(rows)
	if digest != nil {
		st.estErrSum += digest.EstError()
		st.estErrN++
		st.lastPlan = digest.Summary
		st.lastOps = digest.Ops
	}
	qs.mu.Unlock()
}

// evictLocked drops the least-executed fingerprint.
func (qs *QueryStatsStore) evictLocked() {
	var victim string
	var min int64 = -1
	for fp, st := range qs.stats {
		if min < 0 || st.count < min {
			min = st.count
			victim = fp
		}
	}
	if victim != "" {
		delete(qs.stats, victim)
	}
}

// QueryStatSnapshot is the JSON/-stats view of one fingerprint.
type QueryStatSnapshot struct {
	Fingerprint string       `json:"fingerprint"`
	Example     string       `json:"example,omitempty"`
	Count       int64        `json:"count"`
	Errors      int64        `json:"errors,omitempty"`
	Rows        int64        `json:"rows"`
	Latency     HistSnapshot `json:"latency"`
	RowsOut     HistSnapshot `json:"rows_out"`
	// EstRowError is the mean relative cardinality-estimate error
	// (|est-actual|/max(actual,1)) across executed-plan operators,
	// averaged over executions that carried a plan.
	EstRowError float64    `json:"est_row_error"`
	LastPlan    string     `json:"last_plan,omitempty"`
	LastOps     []OpDigest `json:"last_ops,omitempty"`
}

// Snapshot returns all held fingerprints, most-executed first.
func (qs *QueryStatsStore) Snapshot() []QueryStatSnapshot {
	if qs == nil {
		return nil
	}
	qs.mu.Lock()
	out := make([]QueryStatSnapshot, 0, len(qs.stats))
	for _, st := range qs.stats {
		snap := QueryStatSnapshot{
			Fingerprint: st.fingerprint,
			Example:     st.example,
			Count:       st.count,
			Errors:      st.errors,
			Rows:        st.rows,
			Latency:     st.latency.Snapshot(),
			RowsOut:     st.rowsOut.Snapshot(),
			LastPlan:    st.lastPlan,
			LastOps:     st.lastOps,
		}
		if st.estErrN > 0 {
			snap.EstRowError = st.estErrSum / float64(st.estErrN)
		}
		out = append(out, snap)
	}
	qs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// reportQueryStats renders the top-n fingerprints for the -stats dump.
func reportQueryStats(b *strings.Builder, stats []QueryStatSnapshot, n int) {
	if len(stats) == 0 {
		return
	}
	if n > len(stats) {
		n = len(stats)
	}
	fmt.Fprintf(b, "queries: %d distinct shapes, top %d by count:\n", len(stats), n)
	for _, q := range stats[:n] {
		fp := q.Fingerprint
		if len(fp) > 72 {
			fp = fp[:69] + "..."
		}
		fmt.Fprintf(b, "  [%d×] %s\n", q.Count, fp)
		fmt.Fprintf(b, "       latency %s rows %s", q.Latency.DurSummary(), q.RowsOut.SizeSummary())
		if q.EstRowError > 0 {
			fmt.Fprintf(b, " est-err %.2f", q.EstRowError)
		}
		if q.Errors > 0 {
			fmt.Fprintf(b, " errors=%d", q.Errors)
		}
		b.WriteByte('\n')
		if q.LastPlan != "" {
			fmt.Fprintf(b, "       plan %s\n", q.LastPlan)
		}
	}
}
