package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// Prometheus text exposition (format v0.0.4) rendered straight from a
// Snapshot — no client library, no registry. Counters become
// `<name>_total`, gauges keep their name, and the power-of-two
// histograms are emitted as cumulative `_bucket`/`_sum`/`_count`
// series. Duration histograms (stored as nanoseconds) are converted to
// seconds, the Prometheus base unit.

// promCounter emits one counter family with a single unlabeled series.
func promCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// promGauge emits one gauge family with a single unlabeled series.
func promGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// promFloat renders a float without trailing-zero noise.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promHist emits one histogram family. scale multiplies bounds and sum
// (1e-9 converts stored nanoseconds to seconds; 1 keeps raw units).
// Buckets are cumulative per the exposition format, ending in +Inf.
func promHist(w io.Writer, name, help string, s HistSnapshot, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for _, b := range s.Buckets {
		cum += b.N
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, promFloat(float64(b.Le)*scale), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(float64(s.Sum)*scale))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// perTable is one per-table counter family: the field extractor runs
// for every table so the family is emitted with `table` labels.
type perTable struct {
	name, help string
	get        func(TableSnapshot) int64
}

// WriteProm renders the snapshot in Prometheus text format v0.0.4.
func WriteProm(w io.Writer, s Snapshot) {
	// Engine statement counters.
	promCounter(w, "xmlrdb_engine_selects_total", "SELECT statements executed.", s.Engine.Selects)
	promCounter(w, "xmlrdb_engine_inserts_total", "INSERT statements executed.", s.Engine.InsertStmts)
	promCounter(w, "xmlrdb_engine_updates_total", "UPDATE statements executed.", s.Engine.Updates)
	promCounter(w, "xmlrdb_engine_deletes_total", "DELETE statements executed.", s.Engine.Deletes)
	promCounter(w, "xmlrdb_engine_other_stmts_total", "Other (DDL) statements executed.", s.Engine.OtherStmts)
	promCounter(w, "xmlrdb_engine_slow_queries_total", "Statements over the slow-query threshold.", s.Engine.SlowQueries)
	promHist(w, "xmlrdb_engine_exec_latency_seconds", "Statement execution latency.", s.Engine.ExecLatency, 1e-9)

	// Per-operator row counts from the streaming executor.
	op := s.Engine.OpRows
	fmt.Fprintf(w, "# HELP xmlrdb_engine_op_rows_total Rows produced per operator kind by the streaming executor.\n")
	fmt.Fprintf(w, "# TYPE xmlrdb_engine_op_rows_total counter\n")
	for _, kv := range []struct {
		k string
		v int64
	}{
		{"scan", op.Scan}, {"filter", op.Filter}, {"join", op.Join},
		{"aggregate", op.Aggregate}, {"project", op.Project},
		{"sort", op.Sort}, {"distinct", op.Distinct}, {"limit", op.Limit},
	} {
		fmt.Fprintf(w, "xmlrdb_engine_op_rows_total{op=%q} %d\n", kv.k, kv.v)
	}
	promCounter(w, "xmlrdb_engine_rows_out_total", "Rows emitted by SELECT plan roots.", s.Engine.RowsOut)
	promCounter(w, "xmlrdb_engine_vec_batches_total", "Vectorized batches executed.", s.Engine.VecBatches)
	promCounter(w, "xmlrdb_engine_vec_fallbacks_total", "Vectorizable pipelines that fell back to row-at-a-time.", s.Engine.VecFallbacks)
	promHist(w, "xmlrdb_engine_vec_batch_rows", "Post-filter rows per vectorized batch.", s.Engine.VecBatchRows, 1)

	// Per-table families.
	if len(s.Tables) > 0 {
		names := make([]string, 0, len(s.Tables))
		for n := range s.Tables {
			names = append(names, n)
		}
		sort.Strings(names)
		families := []perTable{
			{"xmlrdb_table_rows_inserted_total", "Rows appended per table.", func(t TableSnapshot) int64 { return t.RowsInserted }},
			{"xmlrdb_table_scans_total", "Full-table scans per table.", func(t TableSnapshot) int64 { return t.Scans }},
			{"xmlrdb_table_index_hits_total", "Index-assisted lookups per table.", func(t TableSnapshot) int64 { return t.IndexHits }},
			{"xmlrdb_table_rows_scanned_total", "Rows visited by scans and probes per table.", func(t TableSnapshot) int64 { return t.RowsScanned }},
			{"xmlrdb_table_lock_waits_total", "Row-lock acquisitions per table.", func(t TableSnapshot) int64 { return t.LockWaits }},
		}
		for _, f := range families {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", f.name, f.help, f.name)
			for _, n := range names {
				fmt.Fprintf(w, "%s{table=%q} %d\n", f.name, n, f.get(s.Tables[n]))
			}
		}
	}

	// Pathquery translation and plan cache.
	promCounter(w, "xmlrdb_query_translations_total", "Path queries translated to SQL.", s.Query.Translations)
	promHist(w, "xmlrdb_query_translate_latency_seconds", "Path-to-SQL translation latency.", s.Query.TranslateLatency, 1e-9)
	promCounter(w, "xmlrdb_query_plan_cache_hits_total", "Plan cache hits.", s.Query.PlanCacheHits)
	promCounter(w, "xmlrdb_query_plan_cache_misses_total", "Plan cache misses.", s.Query.PlanCacheMisses)
	promCounter(w, "xmlrdb_query_plan_cache_evictions_total", "Plan cache evictions.", s.Query.PlanCacheEvictions)

	// Serving layer.
	promCounter(w, "xmlrdb_serve_requests_total", "Requests admitted and executed.", s.Serve.Requests)
	promCounter(w, "xmlrdb_serve_errors_total", "Admitted requests that failed.", s.Serve.Errors)
	promCounter(w, "xmlrdb_serve_shed_total", "Requests rejected by the admission gate.", s.Serve.Shed)
	promCounter(w, "xmlrdb_serve_timeouts_total", "Admitted requests that hit their deadline.", s.Serve.Timeouts)
	promGauge(w, "xmlrdb_serve_inflight", "Requests currently executing.", s.Serve.Inflight)
	promCounter(w, "xmlrdb_serve_rows_streamed_total", "Result rows streamed to clients.", s.Serve.RowsStreamed)
	promHist(w, "xmlrdb_serve_latency_seconds", "Admitted-request latency.", s.Serve.Latency, 1e-9)

	// Durability.
	promCounter(w, "xmlrdb_wal_frames_total", "WAL frames appended.", s.WAL.Frames)
	promCounter(w, "xmlrdb_wal_bytes_total", "WAL bytes appended.", s.WAL.Bytes)
	promCounter(w, "xmlrdb_wal_fsyncs_total", "WAL durability barriers issued.", s.WAL.Fsyncs)
	promCounter(w, "xmlrdb_wal_snapshots_total", "Snapshots written.", s.WAL.Snapshots)
	promCounter(w, "xmlrdb_wal_recoveries_total", "Recoveries performed.", s.WAL.Recoveries)
	promCounter(w, "xmlrdb_wal_replay_frames_total", "WAL frames re-applied during recovery.", s.WAL.ReplayFrames)

	// Load pipeline.
	promCounter(w, "xmlrdb_load_docs_total", "Documents shredded successfully.", s.Load.DocsLoaded)
	promCounter(w, "xmlrdb_load_docs_failed_total", "Documents that failed to shred.", s.Load.DocsFailed)
	promHist(w, "xmlrdb_load_shred_latency_seconds", "Per-document shred latency.", s.Load.ShredLatency, 1e-9)
}

// PromHandler serves the hub in Prometheus text format at /metrics.
func PromHandler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, m.Snapshot())
	})
}
