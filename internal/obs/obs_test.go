package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("Load = %d, want %d", got, workers*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if s.Sum != 1110 {
		t.Fatalf("Sum = %d, want 1110", s.Sum)
	}
	if s.Max != 1000 {
		t.Fatalf("Max = %d, want 1000", s.Max)
	}
	if got := s.Mean(); got != 1110/7 {
		t.Fatalf("Mean = %v, want %d", got, 1110/7)
	}
	// Every observation must land in a bucket whose bound covers it.
	var total int64
	for _, b := range s.Buckets {
		total += b.N
	}
	if total != 7 {
		t.Fatalf("bucket total = %d, want 7", total)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	p95 := s.Quantile(0.95)
	if p50 <= 0 || p95 < p50 {
		t.Fatalf("quantiles: p50=%d p95=%d", p50, p95)
	}
	// Bucket upper bounds are powers of two: p50 of 1..100 is <= 64,
	// p95 <= 128.
	if p50 > 64 {
		t.Errorf("p50 = %d, want <= 64", p50)
	}
	if p95 > 128 {
		t.Errorf("p95 = %d, want <= 128", p95)
	}
}

func TestHistogramConcurrentMax(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(int64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 4000 {
		t.Fatalf("Count = %d, want 4000", s.Count)
	}
	if s.Max != 7499 {
		t.Fatalf("Max = %d, want 7499", s.Max)
	}
}

func TestMetricsTable(t *testing.T) {
	m := New()
	a := m.Table("e_book")
	b := m.Table("e_book")
	if a != b {
		t.Fatal("Table returned distinct pointers for one name")
	}
	a.RowsInserted.Add(3)
	s := m.Snapshot()
	if s.Tables["e_book"].RowsInserted != 3 {
		t.Fatalf("snapshot rows = %d, want 3", s.Tables["e_book"].RowsInserted)
	}
}

func TestSnapshotReport(t *testing.T) {
	m := New()
	m.Table("e_book").RowsInserted.Add(7)
	m.DocsLoaded.Inc()
	m.Translations.Inc()
	m.JoinsAvoided.Add(2)
	rep := m.Snapshot().Report()
	for _, want := range []string{"== metrics ==", "e_book", "docs=1", "joins-avoided=2"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report missing %q:\n%s", want, rep)
		}
	}
}

func TestWorkerUtilization(t *testing.T) {
	m := New()
	if got := m.Snapshot().WorkerUtilization(); got != 0 {
		t.Fatalf("utilization with no runs = %v, want 0", got)
	}
	m.WorkerBusy.Add(500)
	m.WorkerCapacity.Add(1000)
	if got := m.Snapshot().WorkerUtilization(); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

func TestWriterTracerFormat(t *testing.T) {
	var sb strings.Builder
	tr := NewWriterTracer(&sb)
	tr.Now = func() time.Time { return time.Unix(1000, 0).UTC() }
	tr.Emit(Event{
		Scope: "engine", Name: "slow-query", Detail: "SELECT * FROM t",
		Dur:   150 * time.Millisecond,
		Attrs: []Attr{{Key: "rows", Val: 3}},
		Err:   "boom",
	})
	line := sb.String()
	for _, want := range []string{
		"scope=engine", "event=slow-query", `detail="SELECT * FROM t"`,
		"dur=150ms", "rows=3", "err=boom", "\n",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("trace line missing %q: %s", want, line)
		}
	}
}

func TestCollectTracer(t *testing.T) {
	var ct CollectTracer
	ct.Emit(Event{Scope: "s", Name: "n"})
	ct.Emit(Event{Scope: "s", Name: "m"})
	evs := ct.Events()
	if len(evs) != 2 || evs[0].Name != "n" || evs[1].Name != "m" {
		t.Fatalf("Events = %+v", evs)
	}
}

func TestPublishAndDebugMux(t *testing.T) {
	m := New()
	m.Table("e_x").RowsInserted.Add(5)
	Publish("test-hub", m)
	Publish("test-hub", m) // duplicate must not panic

	srv := httptest.NewServer(DebugMux(m))
	defer srv.Close()

	for _, path := range []string{"/debug/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Tables["e_x"].RowsInserted != 5 {
		t.Fatalf("debug metrics rows = %d, want 5", snap.Tables["e_x"].RowsInserted)
	}
}

func TestServeDebug(t *testing.T) {
	m := New()
	ds, err := ServeDebug("127.0.0.1:0", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/metrics", ds.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Close releases the listener: the address must stop accepting.
	if err := ds.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/debug/metrics", ds.Addr())); err == nil {
		t.Fatal("debug endpoint still reachable after Close")
	}
}
