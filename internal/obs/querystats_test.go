package obs

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestFingerprint(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM e_book WHERE id = 42", "SELECT * FROM e_book WHERE id = ?"},
		{"SELECT * FROM e_book WHERE title = 'XML'", "SELECT * FROM e_book WHERE title = ?"},
		{"SELECT * FROM e_book WHERE title = 'it''s'", "SELECT * FROM e_book WHERE title = ?"},
		{"SELECT  *\n FROM\te_book", "SELECT * FROM e_book"},
		// Digits inside identifiers survive; literals do not.
		{"SELECT c1 FROM table_1 WHERE c1 = 10", "SELECT c1 FROM table_1 WHERE c1 = ?"},
		{"SELECT * FROM t WHERE x = 1.5e3", "SELECT * FROM t WHERE x = ?"},
		{"SELECT * FROM t WHERE a = 1 AND b = 'x'", "SELECT * FROM t WHERE a = ? AND b = ?"},
	}
	for _, c := range cases {
		if got := Fingerprint(c.in); got != c.want {
			t.Errorf("Fingerprint(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Same shape, different literals → same key.
	a := Fingerprint("SELECT * FROM t WHERE id = 1")
	b := Fingerprint("SELECT * FROM t WHERE id = 99")
	if a != b {
		t.Fatalf("shapes diverged: %q vs %q", a, b)
	}
}

func TestQueryStatsAggregation(t *testing.T) {
	qs := NewQueryStatsStore(0)
	dig := &PlanDigest{
		Summary: "Project <- SeqScan t",
		Ops: []OpDigest{
			{Name: "SeqScan t", Est: 100, Rows: 50}, // err 1.0
			{Name: "Project", Est: 50, Rows: 50},    // err 0.0
		},
	}
	qs.Observe("SELECT * FROM t WHERE id = 1", time.Millisecond, 5, nil, dig)
	qs.Observe("SELECT * FROM t WHERE id = 2", 2*time.Millisecond, 7, nil, dig)
	qs.Observe("SELECT * FROM u", time.Millisecond, 0, errors.New("boom"), nil)

	snaps := qs.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	top := snaps[0] // most-executed first
	if top.Fingerprint != "SELECT * FROM t WHERE id = ?" || top.Count != 2 {
		t.Fatalf("top = %+v", top)
	}
	if top.Rows != 12 {
		t.Fatalf("rows = %d, want 12", top.Rows)
	}
	if top.EstRowError != 0.5 { // mean of per-op errors 1.0 and 0.0
		t.Fatalf("EstRowError = %v, want 0.5", top.EstRowError)
	}
	if top.LastPlan != "Project <- SeqScan t" || len(top.LastOps) != 2 {
		t.Fatalf("plan digest lost: %+v", top)
	}
	if top.Latency.Count != 2 {
		t.Fatalf("latency count = %d", top.Latency.Count)
	}
	errStat := snaps[1]
	if errStat.Errors != 1 || errStat.EstRowError != 0 {
		t.Fatalf("errored stat = %+v", errStat)
	}
}

func TestQueryStatsEviction(t *testing.T) {
	qs := NewQueryStatsStore(3)
	// "hot" executes many times; fillers once each.
	for i := 0; i < 10; i++ {
		qs.Observe("SELECT hot FROM t", time.Microsecond, 1, nil, nil)
	}
	for i := 0; i < 5; i++ {
		qs.Observe(fmt.Sprintf("SELECT f%d FROM t", i), time.Microsecond, 1, nil, nil)
	}
	snaps := qs.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("len = %d, want cap 3", len(snaps))
	}
	if snaps[0].Fingerprint != "SELECT hot FROM t" {
		t.Fatalf("hot fingerprint evicted; top = %q", snaps[0].Fingerprint)
	}
}

func TestPlanDigestEstError(t *testing.T) {
	var nilDig *PlanDigest
	if got := nilDig.EstError(); got != 0 {
		t.Fatalf("nil digest EstError = %v", got)
	}
	d := &PlanDigest{Ops: []OpDigest{
		{Est: 10, Rows: 10}, // exact
		{Est: 0, Rows: 4},   // err 1.0
		{Est: 3, Rows: 0},   // denominator clamps to 1 → err 3.0
	}}
	want := (0.0 + 1.0 + 3.0) / 3
	if got := d.EstError(); got != want {
		t.Fatalf("EstError = %v, want %v", got, want)
	}
}

func TestQueryStatsNilStore(t *testing.T) {
	var qs *QueryStatsStore
	qs.Observe("SELECT 1", time.Millisecond, 0, nil, nil) // must not panic
	if got := qs.Snapshot(); got != nil {
		t.Fatalf("nil store snapshot = %v", got)
	}
}
