package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span-structured tracing. A Trace is created per request (or per
// top-level operation), carried through the call tree in a Context,
// and collected as a flat list of spans with parent links — enough to
// reconstruct the tree without the collection cost of a nested
// structure. All Span methods are nil-receiver safe so instrumented
// code pays only a nil check when tracing is off.

// Span is one timed region inside a Trace.
type Span struct {
	tr     *Trace
	id     uint64
	parent uint64 // 0 = root has no parent
	name   string
	start  time.Time
	dur    time.Duration
	attrs  []Attr
	err    string
	ended  bool
}

// Trace is one request's span collection. It is safe for concurrent
// use: spans may be started and ended from multiple goroutines.
type Trace struct {
	mu       sync.Mutex
	ID       string
	Name     string
	Start    time.Time
	Dur      time.Duration
	Err      string
	spans    []*Span
	chunk    []Span // bulk backing storage: spans allocate 8 at a time
	nextSpan uint64
	root     *Span
	done     bool
}

// NewTraceID returns a random 16-hex-char trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a clock-derived ID; uniqueness is best-effort.
		v := uint64(time.Now().UnixNano())
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts a trace with a root span of the same name. An empty
// id generates a random one; callers pass a client-supplied request ID
// to honor X-Request-ID.
func NewTrace(name, id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	tr := &Trace{ID: id, Name: name, Start: time.Now(), spans: make([]*Span, 0, 16)}
	tr.mu.Lock()
	root := tr.allocSpanLocked()
	*root = Span{tr: tr, id: tr.newSpanID(), name: name, start: tr.Start}
	tr.root = root
	tr.spans = append(tr.spans, root)
	tr.mu.Unlock()
	return tr
}

func (tr *Trace) newSpanID() uint64 { return atomic.AddUint64(&tr.nextSpan, 1) }

// allocSpanLocked hands out span storage from a bulk-allocated chunk:
// a traced request creates a dozen-odd spans, and one allocation per 8
// spans keeps tracing's per-request garbage low.
func (tr *Trace) allocSpanLocked() *Span {
	if len(tr.chunk) == 0 {
		tr.chunk = make([]Span, 8)
	}
	sp := &tr.chunk[0]
	tr.chunk = tr.chunk[1:]
	return sp
}

// Root returns the trace's root span.
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Finish ends the root span and seals the trace. err may be nil.
func (tr *Trace) Finish(err error) {
	if tr == nil {
		return
	}
	tr.root.End()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return
	}
	tr.done = true
	tr.Dur = time.Since(tr.Start)
	if err != nil {
		tr.Err = err.Error()
	}
}

// startSpan records a child span under parent (0 = under the root).
func (tr *Trace) startSpan(parent uint64, name string) *Span {
	if tr == nil {
		return nil
	}
	start := time.Now()
	tr.mu.Lock()
	sp := tr.allocSpanLocked()
	*sp = Span{tr: tr, id: tr.newSpanID(), parent: parent, name: name, start: start}
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return sp
}

// StartChild opens a live child span under parent (the root when
// parent is nil) without threading a context — for instrumentation
// that already holds the parent span and would otherwise pay a
// context allocation per span. Safe on a nil trace.
func (tr *Trace) StartChild(parent *Span, name string) *Span {
	if tr == nil {
		return nil
	}
	var pid uint64
	if parent != nil {
		pid = parent.id
	} else if tr.root != nil {
		pid = tr.root.id
	}
	return tr.startSpan(pid, name)
}

// AddCompletedSpan records a span whose timing was measured externally
// (operator accounting flushed at cursor close). parent may be nil to
// attach under the root.
func (tr *Trace) AddCompletedSpan(parent *Span, name string, start time.Time, dur time.Duration, attrs ...Attr) {
	if tr == nil {
		return
	}
	var pid uint64
	if parent != nil {
		pid = parent.id
	} else if tr.root != nil {
		pid = tr.root.id
	}
	tr.mu.Lock()
	sp := tr.allocSpanLocked()
	*sp = Span{
		tr: tr, id: tr.newSpanID(), parent: pid, name: name,
		start: start, dur: dur, attrs: attrs, ended: true,
	}
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
}

// End closes the span, fixing its duration. Safe on nil and idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if !sp.ended {
		sp.ended = true
		sp.dur = time.Since(sp.start)
	}
}

// SetAttr annotates the span. Safe on nil.
func (sp *Span) SetAttr(key string, val any) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = make([]Attr, 0, 4)
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Val: val})
	sp.tr.mu.Unlock()
}

// SetErr marks the span failed. Safe on nil; nil err is a no-op.
func (sp *Span) SetErr(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.err = err.Error()
	sp.tr.mu.Unlock()
}

type traceCtxKey struct{}
type spanCtxKey struct{}

// WithTrace attaches tr to ctx; the trace's root span becomes the
// current span.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceCtxKey{}, tr)
	return context.WithValue(ctx, spanCtxKey{}, tr.root)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}

// CurrentSpan returns the innermost span attached to ctx, or nil.
func CurrentSpan(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// StartSpan opens a child of ctx's current span and returns a context
// carrying it. With no trace in ctx it returns (ctx, nil) — and every
// Span method tolerates nil, so call sites need no guards.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	var parent uint64
	if cur := CurrentSpan(ctx); cur != nil {
		parent = cur.id
	}
	sp := tr.startSpan(parent, name)
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// SpanRecord is the JSON-ready form of a completed span. StartNS is
// relative to the trace start.
type SpanRecord struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
	Err     string `json:"err,omitempty"`
}

// TraceRecord is the JSON-ready form of a completed trace, as stored
// by the flight recorder and served at /debug/traces/{id}.
type TraceRecord struct {
	ID    string       `json:"id"`
	Name  string       `json:"name"`
	Start time.Time    `json:"start"`
	DurNS int64        `json:"dur_ns"`
	Err   string       `json:"err,omitempty"`
	Slow  bool         `json:"slow,omitempty"`
	Spans []SpanRecord `json:"spans"`
}

// Record converts the (finished) trace into its immutable record form.
func (tr *Trace) Record() TraceRecord {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	rec := TraceRecord{
		ID:    tr.ID,
		Name:  tr.Name,
		Start: tr.Start,
		DurNS: int64(tr.Dur),
		Err:   tr.Err,
		Spans: make([]SpanRecord, 0, len(tr.spans)),
	}
	for _, sp := range tr.spans {
		dur := sp.dur
		if !sp.ended {
			dur = time.Since(sp.start)
		}
		rec.Spans = append(rec.Spans, SpanRecord{
			ID:      sp.id,
			Parent:  sp.parent,
			Name:    sp.name,
			StartNS: sp.start.Sub(tr.Start).Nanoseconds(),
			DurNS:   dur.Nanoseconds(),
			Attrs:   sp.attrs,
			Err:     sp.err,
		})
	}
	return rec
}

// appendJSONString appends s as a JSON string literal: quotes,
// backslashes and control bytes escaped, everything else verbatim
// (valid UTF-8 passes through untouched).
func appendJSONString(b []byte, s string) []byte {
	const hexDigits = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	return append(b, '"')
}

// appendAttrVal appends one attribute value as JSON. The concrete types
// instrumentation actually attaches are handled without reflection;
// anything else is stringified.
func appendAttrVal(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return appendJSONString(b, x)
	case bool:
		if x {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case time.Duration:
		// encoding/json renders Duration as its int64 nanoseconds.
		return strconv.AppendInt(b, int64(x), 10)
	default:
		return appendJSONString(b, fmt.Sprint(x))
	}
}

// appendJSON renders the trace in the exact shape encoding/json gives
// its TraceRecord (same field tags, same omitempty behavior), without
// reflection and without materializing the record: the flight recorder
// marshals on every traced request, and both the reflective marshal and
// the intermediate SpanRecord slice measurably dent serving throughput.
// slow is stamped by the caller (the recorder owns the threshold).
func (tr *Trace) appendJSON(b []byte, slow bool) []byte {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	b = append(b, `{"id":`...)
	b = appendJSONString(b, tr.ID)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, tr.Name)
	b = append(b, `,"start":"`...)
	b = tr.Start.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","dur_ns":`...)
	b = strconv.AppendInt(b, int64(tr.Dur), 10)
	if tr.Err != "" {
		b = append(b, `,"err":`...)
		b = appendJSONString(b, tr.Err)
	}
	if slow {
		b = append(b, `,"slow":true`...)
	}
	b = append(b, `,"spans":[`...)
	for i, sp := range tr.spans {
		if i > 0 {
			b = append(b, ',')
		}
		dur := sp.dur
		if !sp.ended {
			dur = time.Since(sp.start)
		}
		b = append(b, `{"id":`...)
		b = strconv.AppendUint(b, sp.id, 10)
		if sp.parent != 0 {
			b = append(b, `,"parent":`...)
			b = strconv.AppendUint(b, sp.parent, 10)
		}
		b = append(b, `,"name":`...)
		b = appendJSONString(b, sp.name)
		b = append(b, `,"start_ns":`...)
		b = strconv.AppendInt(b, sp.start.Sub(tr.Start).Nanoseconds(), 10)
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, dur.Nanoseconds(), 10)
		if len(sp.attrs) > 0 {
			b = append(b, `,"attrs":[`...)
			for j := range sp.attrs {
				if j > 0 {
					b = append(b, ',')
				}
				b = append(b, `{"k":`...)
				b = appendJSONString(b, sp.attrs[j].Key)
				b = append(b, `,"v":`...)
				b = appendAttrVal(b, sp.attrs[j].Val)
				b = append(b, '}')
			}
			b = append(b, ']')
		}
		if sp.err != "" {
			b = append(b, `,"err":`...)
			b = appendJSONString(b, sp.err)
		}
		b = append(b, '}')
	}
	return append(b, `]}`...)
}
