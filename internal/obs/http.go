package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

var publishMu sync.Mutex
var published = map[string]bool{}

// Publish registers the hub under name as an expvar variable (a JSON
// snapshot recomputed on read). Repeated calls with the same name are
// no-ops, so CLIs can publish unconditionally.
func Publish(name string, m *Metrics) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// DebugMux returns an HTTP mux exposing the hub: /debug/metrics (JSON
// snapshot), /debug/querystats (per-fingerprint telemetry),
// /debug/vars (expvar), /metrics (Prometheus text format), and the
// /debug/pprof profiling endpoints.
func DebugMux(m *Metrics) *http.ServeMux {
	return DebugMuxWith(m, nil)
}

// DebugMuxWith is DebugMux plus the flight recorder's /debug/traces
// and /debug/traces/{id} endpoints (omitted when rec is nil).
func DebugMuxWith(m *Metrics, rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.Snapshot())
	})
	mux.HandleFunc("/debug/querystats", func(w http.ResponseWriter, r *http.Request) {
		stats := m.Queries.Snapshot()
		if stats == nil {
			stats = []QueryStatSnapshot{}
		}
		writeJSON(w, stats)
	})
	mux.Handle("/metrics", PromHandler(m))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if rec != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			list := rec.List()
			if list == nil {
				list = []TraceSummary{}
			}
			writeJSON(w, list)
		})
		mux.HandleFunc("/debug/traces/", func(w http.ResponseWriter, r *http.Request) {
			id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
			tr, ok := rec.Get(id)
			if !ok {
				http.Error(w, "no such trace", http.StatusNotFound)
				return
			}
			writeJSON(w, tr)
		})
	}
	return mux
}

// DebugServer is a running debug endpoint; Close shuts it down and
// releases the listener.
type DebugServer struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound address (useful with ":0").
func (ds *DebugServer) Addr() string {
	if ds == nil {
		return ""
	}
	return ds.addr
}

// Close gracefully shuts the server down, waiting up to the context's
// deadline for in-flight requests. Safe on nil.
func (ds *DebugServer) Close(ctx context.Context) error {
	if ds == nil {
		return nil
	}
	return ds.srv.Shutdown(ctx)
}

// ServeDebug starts the debug endpoint on addr in a background
// goroutine and returns a handle exposing the bound address and a
// Close method. rec may be nil (no trace endpoints).
func ServeDebug(addr string, m *Metrics, rec *Recorder) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           DebugMuxWith(m, rec),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return &DebugServer{srv: srv, addr: ln.Addr().String()}, nil
}
