package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishMu sync.Mutex
var published = map[string]bool{}

// Publish registers the hub under name as an expvar variable (a JSON
// snapshot recomputed on read). Repeated calls with the same name are
// no-ops, so CLIs can publish unconditionally.
func Publish(name string, m *Metrics) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}

// DebugMux returns an HTTP mux exposing the hub: /debug/metrics (JSON
// snapshot), /debug/vars (expvar), and the /debug/pprof profiling
// endpoints.
func DebugMux(m *Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(m.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug endpoint on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// server lives until the process exits.
func ServeDebug(addr string, m *Metrics) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugMux(m)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
