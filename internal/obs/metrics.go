package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
)

// TableMetrics is the per-table accounting of the engine's hot paths.
// All fields are atomic; the engine caches a pointer per table so a row
// operation never performs a map lookup.
type TableMetrics struct {
	// RowsInserted counts rows appended (single inserts and batches).
	RowsInserted Counter
	// Inserts counts single-row insert operations.
	Inserts Counter
	// Batches counts InsertBatch calls; BatchRows is their size
	// distribution.
	Batches   Counter
	BatchRows Histogram
	// Scans counts full-table scans; IndexHits counts index-assisted
	// lookups that avoided one.
	Scans     Counter
	IndexHits Counter
	// RowsScanned counts rows visited by scans and index probes.
	RowsScanned Counter
	// LockWaits counts row-lock acquisitions; LockWaitNanos is the total
	// time spent waiting for them.
	LockWaits     Counter
	LockWaitNanos Counter
}

// TableSnapshot is the point-in-time view of one table's metrics.
type TableSnapshot struct {
	RowsInserted  int64        `json:"rows_inserted"`
	Inserts       int64        `json:"inserts"`
	Batches       int64        `json:"batches"`
	BatchRows     HistSnapshot `json:"batch_rows"`
	Scans         int64        `json:"scans"`
	IndexHits     int64        `json:"index_hits"`
	RowsScanned   int64        `json:"rows_scanned"`
	LockWaits     int64        `json:"lock_waits"`
	LockWaitNanos int64        `json:"lock_wait_nanos"`
}

// Metrics is the engine-wide metrics hub. One instance is shared by a
// pipeline's engine, loader, translator and reconstructor; independent
// pipelines (or tests needing exact counts) create their own with New.
type Metrics struct {
	mu     sync.RWMutex
	tables map[string]*TableMetrics

	// Engine: per-statement execution.
	Selects     Counter
	InsertStmts Counter
	Updates     Counter
	Deletes     Counter
	OtherStmts  Counter
	ExecLatency Histogram
	SlowQueries Counter

	// Engine: per-operator-kind row counts from the streaming executor,
	// flushed when a plan's cursor closes. A LIMIT that short-circuits a
	// scan is visible here: OpScanRows stops at what was actually read.
	OpScanRows      Counter
	OpFilterRows    Counter
	OpJoinRows      Counter
	OpAggregateRows Counter
	OpProjectRows   Counter
	OpSortRows      Counter
	OpDistinctRows  Counter
	OpLimitRows     Counter
	// RowsOut counts rows emitted by SELECT plan roots (streamed or
	// materialized).
	RowsOut Counter
	// Vectorized executor (engine vector.go): batches executed,
	// post-filter rows-per-batch distribution, and pipelines that had
	// the vectorizable shape but fell back to row-at-a-time.
	VecBatches   Counter
	VecBatchRows Histogram
	VecFallbacks Counter

	// Shred: document loading.
	DocsLoaded     Counter
	DocsFailed     Counter
	ShredLatency   Histogram
	DocRows        Histogram
	FlushFallbacks Counter
	CorpusRuns     Counter
	WorkerBusy     Counter // nanoseconds workers spent shredding, summed
	WorkerCapacity Counter // workers × corpus wall-clock, nanoseconds

	// Pathquery: translation.
	Translations     Counter
	TranslateLatency Histogram
	ChainsExpanded   Counter
	JoinsEmitted     Counter
	JoinsAvoided     Counter
	DistilledHits    Counter
	// Plan cache (pathquery.Cache): hit/miss/eviction counts.
	PlanCacheHits      Counter
	PlanCacheMisses    Counter
	PlanCacheEvictions Counter

	// Reconstruct.
	ReconDocs    Counter
	ReconLatency Histogram

	// Pipeline: schema construction.
	SchemaBuilds       Counter
	SchemaBuildLatency Histogram

	// Serve: the HTTP query-serving layer.
	ServeRequests Counter   // requests admitted and executed
	ServeErrors   Counter   // admitted requests that failed (4xx/5xx)
	ServeShed     Counter   // requests rejected by the admission gate (429)
	ServeTimeouts Counter   // admitted requests that hit their deadline
	ServeLatency  Histogram // admitted-request latency, nanoseconds
	ServeInflight Gauge     // requests currently executing
	// ServeRowsStreamed counts result rows written to clients by the
	// chunked /query and /path encoders.
	ServeRowsStreamed Counter

	// Durability: write-ahead log, snapshots and recovery.
	WALFrames       Counter // frames appended
	WALBytes        Counter // bytes appended (frame headers included)
	WALFsyncs       Counter // durability barriers issued
	WALReplayFrames Counter // frames re-applied during recovery
	Snapshots       Counter
	SnapshotLatency Histogram
	Recoveries      Counter
	RecoveryLatency Histogram
	// RecoveryStaleFallbacks counts recoveries that (with AllowStale)
	// fell back past an unreadable newer snapshot the WAL no longer
	// covered — each one is committed data lost to corruption.
	RecoveryStaleFallbacks Counter

	// Queries aggregates executions by normalized statement fingerprint
	// (latency, rows, per-operator estimated-vs-actual row error).
	Queries *QueryStatsStore
}

// New returns an empty metrics hub.
func New() *Metrics {
	return &Metrics{
		tables:  make(map[string]*TableMetrics),
		Queries: NewQueryStatsStore(0),
	}
}

// Default is the process-wide metrics hub the CLIs publish; libraries
// attach explicit instances instead.
var Default = New()

// Table returns the per-table metrics for name, creating them on first
// use. Callers on hot paths should cache the returned pointer.
func (m *Metrics) Table(name string) *TableMetrics {
	m.mu.RLock()
	t := m.tables[name]
	m.mu.RUnlock()
	if t != nil {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t = m.tables[name]; t == nil {
		t = &TableMetrics{}
		m.tables[name] = t
	}
	return t
}

// Snapshot is the typed point-in-time view of a Metrics hub.
type Snapshot struct {
	Engine struct {
		Selects      int64          `json:"selects"`
		InsertStmts  int64          `json:"insert_stmts"`
		Updates      int64          `json:"updates"`
		Deletes      int64          `json:"deletes"`
		OtherStmts   int64          `json:"other_stmts"`
		ExecLatency  HistSnapshot   `json:"exec_latency"`
		SlowQueries  int64          `json:"slow_queries"`
		OpRows       OpRowsSnapshot `json:"op_rows"`
		RowsOut      int64          `json:"rows_out"`
		VecBatches   int64          `json:"vec_batches,omitempty"`
		VecBatchRows HistSnapshot   `json:"vec_batch_rows,omitempty"`
		VecFallbacks int64          `json:"vec_fallbacks,omitempty"`
	} `json:"engine"`
	Tables map[string]TableSnapshot `json:"tables,omitempty"`
	Load   struct {
		DocsLoaded     int64        `json:"docs_loaded"`
		DocsFailed     int64        `json:"docs_failed"`
		ShredLatency   HistSnapshot `json:"shred_latency"`
		DocRows        HistSnapshot `json:"doc_rows"`
		FlushFallbacks int64        `json:"flush_fallbacks"`
		CorpusRuns     int64        `json:"corpus_runs"`
		WorkerBusy     int64        `json:"worker_busy_nanos"`
		WorkerCapacity int64        `json:"worker_capacity_nanos"`
	} `json:"load"`
	Query struct {
		Translations       int64        `json:"translations"`
		TranslateLatency   HistSnapshot `json:"translate_latency"`
		ChainsExpanded     int64        `json:"chains_expanded"`
		JoinsEmitted       int64        `json:"joins_emitted"`
		JoinsAvoided       int64        `json:"joins_avoided"`
		DistilledHits      int64        `json:"distilled_hits"`
		PlanCacheHits      int64        `json:"plan_cache_hits,omitempty"`
		PlanCacheMisses    int64        `json:"plan_cache_misses,omitempty"`
		PlanCacheEvictions int64        `json:"plan_cache_evictions,omitempty"`
	} `json:"query"`
	Reconstruct struct {
		Docs    int64        `json:"docs"`
		Latency HistSnapshot `json:"latency"`
	} `json:"reconstruct"`
	Schema struct {
		Builds  int64        `json:"builds"`
		Latency HistSnapshot `json:"latency"`
	} `json:"schema"`
	Serve struct {
		Requests     int64        `json:"requests"`
		Errors       int64        `json:"errors"`
		Shed         int64        `json:"shed"`
		Timeouts     int64        `json:"timeouts"`
		Latency      HistSnapshot `json:"latency"`
		Inflight     int64        `json:"inflight"`
		RowsStreamed int64        `json:"rows_streamed"`
	} `json:"serve"`
	WAL struct {
		Frames          int64        `json:"frames"`
		Bytes           int64        `json:"bytes"`
		Fsyncs          int64        `json:"fsyncs"`
		ReplayFrames    int64        `json:"replay_frames"`
		Snapshots       int64        `json:"snapshots"`
		SnapshotLatency HistSnapshot `json:"snapshot_latency"`
		Recoveries      int64        `json:"recoveries"`
		RecoveryLatency HistSnapshot `json:"recovery_latency"`
		StaleFallbacks  int64        `json:"stale_fallbacks,omitempty"`
	} `json:"wal"`
	// Queries is the per-fingerprint telemetry, most-executed first.
	Queries []QueryStatSnapshot `json:"queries,omitempty"`
}

// OpRowsSnapshot is the per-operator-kind row accounting of the
// streaming executor.
type OpRowsSnapshot struct {
	Scan      int64 `json:"scan"`
	Filter    int64 `json:"filter"`
	Join      int64 `json:"join"`
	Aggregate int64 `json:"aggregate"`
	Project   int64 `json:"project"`
	Sort      int64 `json:"sort"`
	Distinct  int64 `json:"distinct"`
	Limit     int64 `json:"limit"`
}

// Snapshot captures the hub's current state.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	s.Engine.Selects = m.Selects.Load()
	s.Engine.InsertStmts = m.InsertStmts.Load()
	s.Engine.Updates = m.Updates.Load()
	s.Engine.Deletes = m.Deletes.Load()
	s.Engine.OtherStmts = m.OtherStmts.Load()
	s.Engine.ExecLatency = m.ExecLatency.Snapshot()
	s.Engine.SlowQueries = m.SlowQueries.Load()
	s.Engine.OpRows = OpRowsSnapshot{
		Scan:      m.OpScanRows.Load(),
		Filter:    m.OpFilterRows.Load(),
		Join:      m.OpJoinRows.Load(),
		Aggregate: m.OpAggregateRows.Load(),
		Project:   m.OpProjectRows.Load(),
		Sort:      m.OpSortRows.Load(),
		Distinct:  m.OpDistinctRows.Load(),
		Limit:     m.OpLimitRows.Load(),
	}
	s.Engine.RowsOut = m.RowsOut.Load()
	s.Engine.VecBatches = m.VecBatches.Load()
	s.Engine.VecBatchRows = m.VecBatchRows.Snapshot()
	s.Engine.VecFallbacks = m.VecFallbacks.Load()

	m.mu.RLock()
	if len(m.tables) > 0 {
		s.Tables = make(map[string]TableSnapshot, len(m.tables))
		for name, t := range m.tables {
			s.Tables[name] = TableSnapshot{
				RowsInserted:  t.RowsInserted.Load(),
				Inserts:       t.Inserts.Load(),
				Batches:       t.Batches.Load(),
				BatchRows:     t.BatchRows.Snapshot(),
				Scans:         t.Scans.Load(),
				IndexHits:     t.IndexHits.Load(),
				RowsScanned:   t.RowsScanned.Load(),
				LockWaits:     t.LockWaits.Load(),
				LockWaitNanos: t.LockWaitNanos.Load(),
			}
		}
	}
	m.mu.RUnlock()

	s.Load.DocsLoaded = m.DocsLoaded.Load()
	s.Load.DocsFailed = m.DocsFailed.Load()
	s.Load.ShredLatency = m.ShredLatency.Snapshot()
	s.Load.DocRows = m.DocRows.Snapshot()
	s.Load.FlushFallbacks = m.FlushFallbacks.Load()
	s.Load.CorpusRuns = m.CorpusRuns.Load()
	s.Load.WorkerBusy = m.WorkerBusy.Load()
	s.Load.WorkerCapacity = m.WorkerCapacity.Load()

	s.Query.Translations = m.Translations.Load()
	s.Query.TranslateLatency = m.TranslateLatency.Snapshot()
	s.Query.ChainsExpanded = m.ChainsExpanded.Load()
	s.Query.JoinsEmitted = m.JoinsEmitted.Load()
	s.Query.JoinsAvoided = m.JoinsAvoided.Load()
	s.Query.DistilledHits = m.DistilledHits.Load()
	s.Query.PlanCacheHits = m.PlanCacheHits.Load()
	s.Query.PlanCacheMisses = m.PlanCacheMisses.Load()
	s.Query.PlanCacheEvictions = m.PlanCacheEvictions.Load()

	s.Reconstruct.Docs = m.ReconDocs.Load()
	s.Reconstruct.Latency = m.ReconLatency.Snapshot()

	s.Schema.Builds = m.SchemaBuilds.Load()
	s.Schema.Latency = m.SchemaBuildLatency.Snapshot()

	s.Serve.Requests = m.ServeRequests.Load()
	s.Serve.Errors = m.ServeErrors.Load()
	s.Serve.Shed = m.ServeShed.Load()
	s.Serve.Timeouts = m.ServeTimeouts.Load()
	s.Serve.Latency = m.ServeLatency.Snapshot()
	s.Serve.Inflight = m.ServeInflight.Load()
	s.Serve.RowsStreamed = m.ServeRowsStreamed.Load()

	s.WAL.Frames = m.WALFrames.Load()
	s.WAL.Bytes = m.WALBytes.Load()
	s.WAL.Fsyncs = m.WALFsyncs.Load()
	s.WAL.ReplayFrames = m.WALReplayFrames.Load()
	s.WAL.Snapshots = m.Snapshots.Load()
	s.WAL.SnapshotLatency = m.SnapshotLatency.Snapshot()
	s.WAL.Recoveries = m.Recoveries.Load()
	s.WAL.RecoveryLatency = m.RecoveryLatency.Snapshot()
	s.WAL.StaleFallbacks = m.RecoveryStaleFallbacks.Load()
	s.Queries = m.Queries.Snapshot()
	return s
}

// SnapshotDefault captures the process-wide Default hub.
func SnapshotDefault() Snapshot { return Default.Snapshot() }

// WorkerUtilization returns the fraction of corpus worker capacity
// (workers × wall-clock) spent shredding (0 with no corpus runs).
func (s Snapshot) WorkerUtilization() float64 {
	if s.Load.WorkerCapacity == 0 {
		return 0
	}
	return float64(s.Load.WorkerBusy) / float64(s.Load.WorkerCapacity)
}

// Report renders the snapshot as the human-readable -stats dump.
func (s Snapshot) Report() string {
	var b strings.Builder
	b.WriteString("== metrics ==\n")
	fmt.Fprintf(&b, "engine: selects=%d inserts=%d updates=%d deletes=%d other=%d slow=%d\n",
		s.Engine.Selects, s.Engine.InsertStmts, s.Engine.Updates,
		s.Engine.Deletes, s.Engine.OtherStmts, s.Engine.SlowQueries)
	fmt.Fprintf(&b, "engine: exec latency %s\n", s.Engine.ExecLatency.DurSummary())
	if op := s.Engine.OpRows; op != (OpRowsSnapshot{}) {
		fmt.Fprintf(&b, "engine: op rows scan=%d filter=%d join=%d agg=%d project=%d sort=%d distinct=%d limit=%d out=%d\n",
			op.Scan, op.Filter, op.Join, op.Aggregate, op.Project,
			op.Sort, op.Distinct, op.Limit, s.Engine.RowsOut)
	}
	if s.Engine.VecBatches > 0 || s.Engine.VecFallbacks > 0 {
		fmt.Fprintf(&b, "engine: vec batches=%d fallbacks=%d rows per batch %s\n",
			s.Engine.VecBatches, s.Engine.VecFallbacks, s.Engine.VecBatchRows.SizeSummary())
	}
	if len(s.Tables) > 0 {
		names := make([]string, 0, len(s.Tables))
		for n := range s.Tables {
			names = append(names, n)
		}
		sort.Strings(names)
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "table\trows-in\tbatches\tscans\tindex-hits\trows-scanned\tlock-waits\tlock-wait")
		for _, n := range names {
			t := s.Tables[n]
			if t.RowsInserted == 0 && t.Scans == 0 && t.IndexHits == 0 && t.LockWaits == 0 {
				continue
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
				n, t.RowsInserted, t.Batches, t.Scans, t.IndexHits,
				t.RowsScanned, t.LockWaits, durString(t.LockWaitNanos))
		}
		w.Flush()
	}
	if s.Load.DocsLoaded > 0 || s.Load.DocsFailed > 0 {
		fmt.Fprintf(&b, "load: docs=%d failed=%d flush-fallbacks=%d\n",
			s.Load.DocsLoaded, s.Load.DocsFailed, s.Load.FlushFallbacks)
		fmt.Fprintf(&b, "load: shred latency %s\n", s.Load.ShredLatency.DurSummary())
		fmt.Fprintf(&b, "load: rows per document %s\n", s.Load.DocRows.SizeSummary())
		if s.Load.CorpusRuns > 0 {
			fmt.Fprintf(&b, "load: corpus runs=%d worker utilization=%.2f\n",
				s.Load.CorpusRuns, s.WorkerUtilization())
		}
	}
	if s.Query.Translations > 0 {
		fmt.Fprintf(&b, "query: translations=%d chains=%d joins-emitted=%d joins-avoided=%d distilled-hits=%d\n",
			s.Query.Translations, s.Query.ChainsExpanded, s.Query.JoinsEmitted,
			s.Query.JoinsAvoided, s.Query.DistilledHits)
		fmt.Fprintf(&b, "query: translate latency %s\n", s.Query.TranslateLatency.DurSummary())
	}
	if s.Query.PlanCacheHits > 0 || s.Query.PlanCacheMisses > 0 {
		fmt.Fprintf(&b, "query: plan cache hits=%d misses=%d evictions=%d\n",
			s.Query.PlanCacheHits, s.Query.PlanCacheMisses, s.Query.PlanCacheEvictions)
	}
	reportQueryStats(&b, s.Queries, 5)
	if s.Reconstruct.Docs > 0 {
		fmt.Fprintf(&b, "reconstruct: docs=%d latency %s\n",
			s.Reconstruct.Docs, s.Reconstruct.Latency.DurSummary())
	}
	if s.Schema.Builds > 0 {
		fmt.Fprintf(&b, "schema: builds=%d latency %s\n",
			s.Schema.Builds, s.Schema.Latency.DurSummary())
	}
	if s.Serve.Requests > 0 || s.Serve.Shed > 0 {
		fmt.Fprintf(&b, "serve: requests=%d errors=%d shed=%d timeouts=%d inflight=%d rows-streamed=%d\n",
			s.Serve.Requests, s.Serve.Errors, s.Serve.Shed, s.Serve.Timeouts,
			s.Serve.Inflight, s.Serve.RowsStreamed)
		fmt.Fprintf(&b, "serve: request latency %s\n", s.Serve.Latency.DurSummary())
	}
	if s.WAL.Frames > 0 || s.WAL.Recoveries > 0 {
		fmt.Fprintf(&b, "wal: frames=%d bytes=%d fsyncs=%d snapshots=%d\n",
			s.WAL.Frames, s.WAL.Bytes, s.WAL.Fsyncs, s.WAL.Snapshots)
		if s.WAL.Snapshots > 0 {
			fmt.Fprintf(&b, "wal: snapshot latency %s\n", s.WAL.SnapshotLatency.DurSummary())
		}
		if s.WAL.Recoveries > 0 {
			fmt.Fprintf(&b, "wal: recoveries=%d replay-frames=%d recovery latency %s\n",
				s.WAL.Recoveries, s.WAL.ReplayFrames, s.WAL.RecoveryLatency.DurSummary())
		}
		if s.WAL.StaleFallbacks > 0 {
			fmt.Fprintf(&b, "wal: STALE RECOVERIES=%d (committed data lost to snapshot corruption)\n",
				s.WAL.StaleFallbacks)
		}
	}
	return b.String()
}
