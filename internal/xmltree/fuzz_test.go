package xmltree

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics throws structured garbage at the parser: it may
// (and usually must) return errors, but it must never panic, hang, or
// accept ill-formed input as two different trees.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	pieces := []string{
		"<", ">", "/", "a", "b", "=", `"`, "'", "&", ";", "]]>", "<![CDATA[",
		"<!--", "-->", "<?", "?>", "<!DOCTYPE", "[", "]", "&lt;", "&#65;",
		"&#x41;", " ", "\n", "<a>", "</a>", "x", "<!ELEMENT", "é", "\x00",
	}
	// Seeded adversarial inputs ride along with the random soup; the
	// first one overflows the default nesting limit and must come back
	// as ErrTooDeep, not a stack overflow.
	seeds := []string{
		strings.Repeat("<a>", DefaultMaxDepth+10),
		strings.Repeat("<a ", 500),
		strings.Repeat("<![CDATA[", 200),
	}
	if _, err := Parse(seeds[0]); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("deep-nesting seed: got %v, want ErrTooDeep", err)
	}
	for i := 0; i < 5000+len(seeds); i++ {
		var src string
		if i < len(seeds) {
			src = seeds[i]
		} else {
			var b strings.Builder
			n := 1 + rng.Intn(20)
			for j := 0; j < n; j++ {
				b.WriteString(pieces[rng.Intn(len(pieces))])
			}
			src = b.String()
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			doc, err := Parse(src)
			if err == nil && doc.Root != nil {
				// Whatever parsed must serialize and reparse to an equal
				// tree.
				out := doc.Render(WriteOptions{OmitXMLDecl: true})
				doc2, err2 := Parse(out)
				if err2 != nil {
					t.Fatalf("reparse of %q (from %q): %v", out, src, err2)
				}
				if !Equal(doc.Root, doc2.Root, EqualOptions{}) {
					t.Fatalf("unstable round trip for %q", src)
				}
			}
		}()
	}
}
