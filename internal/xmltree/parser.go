package xmltree

import (
	"errors"
	"fmt"
	"strings"

	"xmlrdb/internal/dtd"
)

// Document is a parsed XML document: an optional prolog, optional
// DOCTYPE, and one root element (plus any top-level comments and PIs).
type Document struct {
	// Version, Encoding and Standalone echo the XML declaration, when
	// present.
	Version, Encoding string
	// Standalone is "yes", "no" or "".
	Standalone string
	// DoctypeName is the name from <!DOCTYPE name ...>.
	DoctypeName string
	// PublicID and SystemID locate the external DTD subset, if declared.
	PublicID, SystemID string
	// InternalSubset is the raw text between [ and ] in the DOCTYPE.
	InternalSubset string
	// DTD is the effective DTD: the parsed internal subset merged over
	// any externally supplied subset. Nil when the document has neither.
	DTD *dtd.DTD
	// Children are the top-level nodes in document order; exactly one is
	// the root element.
	Children []*Node
	// Root is the document element.
	Root *Node
}

// Options configures document parsing.
type Options struct {
	// ExternalDTD supplies a pre-parsed external DTD subset. Internal
	// subset declarations take precedence, per XML 1.0.
	ExternalDTD *dtd.DTD
	// Resolver fetches the external subset named by the DOCTYPE system
	// identifier. Ignored when ExternalDTD is set. When both are nil the
	// external subset is skipped.
	Resolver dtd.Resolver
	// DropComments discards comment nodes during parsing.
	DropComments bool
	// DropPIs discards processing-instruction nodes during parsing.
	DropPIs bool
	// MaxDepth bounds element nesting: adversarial input like
	// "<a><a><a>…" otherwise recurses without limit (the same class of
	// attack the DTD parser's expansion-depth guard stops). Zero means
	// DefaultMaxDepth; negative disables the limit.
	MaxDepth int
	// MaxBytes rejects documents larger than this many bytes before any
	// parsing work. Zero or negative means unlimited.
	MaxBytes int
}

// DefaultMaxDepth is the element-nesting limit when Options.MaxDepth is
// zero — far beyond any real document, far short of stack exhaustion.
const DefaultMaxDepth = 1024

// Limit errors, matchable with errors.Is through the positioned
// *SyntaxError wrapper.
var (
	// ErrTooDeep reports element nesting beyond Options.MaxDepth.
	ErrTooDeep = errors.New("element nesting too deep")
	// ErrTooLarge reports a document larger than Options.MaxBytes.
	ErrTooLarge = errors.New("document too large")
)

func (o Options) maxDepth() int {
	if o.MaxDepth == 0 {
		return DefaultMaxDepth
	}
	if o.MaxDepth < 0 {
		return 0 // unlimited
	}
	return o.MaxDepth
}

// Parse parses an XML document with default options.
func Parse(src string) (*Document, error) { return ParseWith(src, Options{}) }

// MustParse is Parse but panics on error; for tests and fixtures.
func MustParse(src string) *Document {
	doc, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return doc
}

// ParseWith parses an XML document with explicit options.
func ParseWith(src string, opts Options) (*Document, error) {
	if opts.MaxBytes > 0 && len(src) > opts.MaxBytes {
		return nil, fmt.Errorf("xml: %w: %d bytes (limit %d)", ErrTooLarge, len(src), opts.MaxBytes)
	}
	p := &docParser{src: src, line: 1, col: 1, opts: opts}
	doc, err := p.parseDocument()
	if err != nil {
		return nil, err
	}
	return doc, nil
}

// SyntaxError is an XML well-formedness error with position.
type SyntaxError struct {
	// Line and Col locate the error (1-based).
	Line, Col int
	// Msg describes the problem.
	Msg string

	// cause carries a sentinel (ErrTooDeep) for errors.Is matching.
	cause error
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xml: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Unwrap exposes the sentinel behind limit errors.
func (e *SyntaxError) Unwrap() error { return e.cause }

type docParser struct {
	src       string
	pos       int
	line, col int
	depth     int
	opts      Options
	doc       *Document
}

func (p *docParser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *docParser) limitErr(cause error, format string, args ...any) error {
	return &SyntaxError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...), cause: cause}
}

func (p *docParser) eof() bool { return p.pos >= len(p.src) }

func (p *docParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *docParser) peekAt(off int) byte {
	if p.pos+off >= len(p.src) {
		return 0
	}
	return p.src[p.pos+off]
}

func (p *docParser) next() byte {
	if p.eof() {
		return 0
	}
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *docParser) hasPrefix(s string) bool { return strings.HasPrefix(p.src[p.pos:], s) }

func (p *docParser) consume(s string) bool {
	if !p.hasPrefix(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		p.next()
	}
	return true
}

func (p *docParser) skipSpace() bool {
	any := false
	for !p.eof() && isXMLSpace(p.peek()) {
		p.next()
		any = true
	}
	return any
}

func isXMLSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *docParser) name() (string, error) {
	if p.eof() || !isNameStart(p.peek()) {
		return "", p.errf("expected a name")
	}
	start := p.pos
	for !p.eof() && isNameChar(p.peek()) {
		p.next()
	}
	return p.src[start:p.pos], nil
}

func (p *docParser) parseDocument() (*Document, error) {
	p.doc = &Document{}
	if p.opts.ExternalDTD != nil {
		// Documents without a DOCTYPE still get the supplied external
		// subset (attribute defaults, entities); a DOCTYPE, when present,
		// merges its internal subset over it.
		p.doc.DTD = p.opts.ExternalDTD
	}
	if err := p.parseProlog(); err != nil {
		return nil, err
	}
	// Document element.
	if p.eof() || p.peek() != '<' {
		return nil, p.errf("expected document element")
	}
	root, err := p.parseElement()
	if err != nil {
		return nil, err
	}
	p.doc.Root = root
	p.doc.Children = append(p.doc.Children, root)
	// Trailing misc.
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		switch {
		case p.hasPrefix("<!--"):
			n, err := p.parseComment()
			if err != nil {
				return nil, err
			}
			p.appendMisc(n)
		case p.hasPrefix("<?"):
			n, err := p.parsePI()
			if err != nil {
				return nil, err
			}
			p.appendMisc(n)
		default:
			return nil, p.errf("unexpected content after document element")
		}
	}
	return p.doc, nil
}

func (p *docParser) appendMisc(n *Node) {
	if n != nil {
		p.doc.Children = append(p.doc.Children, n)
	}
}

func (p *docParser) parseProlog() error {
	p.consume("\ufeff") // byte-order mark
	if p.hasPrefix("<?xml") && isXMLSpace(p.peekAt(5)) {
		if err := p.parseXMLDecl(); err != nil {
			return err
		}
	}
	for {
		p.skipSpace()
		switch {
		case p.hasPrefix("<!--"):
			n, err := p.parseComment()
			if err != nil {
				return err
			}
			p.appendMisc(n)
		case p.hasPrefix("<!DOCTYPE"):
			if err := p.parseDoctype(); err != nil {
				return err
			}
		case p.hasPrefix("<?"):
			n, err := p.parsePI()
			if err != nil {
				return err
			}
			p.appendMisc(n)
		default:
			return nil
		}
	}
}

func (p *docParser) parseXMLDecl() error {
	p.consume("<?xml")
	for {
		p.skipSpace()
		if p.consume("?>") {
			return nil
		}
		if p.eof() {
			return p.errf("unterminated XML declaration")
		}
		nm, err := p.name()
		if err != nil {
			return err
		}
		p.skipSpace()
		if p.next() != '=' {
			return p.errf("expected '=' in XML declaration")
		}
		p.skipSpace()
		v, err := p.quotedLiteral()
		if err != nil {
			return err
		}
		switch nm {
		case "version":
			p.doc.Version = v
		case "encoding":
			p.doc.Encoding = v
		case "standalone":
			p.doc.Standalone = v
		default:
			return p.errf("unknown XML declaration attribute %q", nm)
		}
	}
}

func (p *docParser) quotedLiteral() (string, error) {
	q := p.next()
	if q != '"' && q != '\'' {
		return "", p.errf("expected quoted literal")
	}
	start := p.pos
	for !p.eof() && p.peek() != q {
		p.next()
	}
	if p.eof() {
		return "", p.errf("unterminated literal")
	}
	v := p.src[start:p.pos]
	p.next()
	return v, nil
}

func (p *docParser) parseDoctype() error {
	p.consume("<!DOCTYPE")
	p.skipSpace()
	nm, err := p.name()
	if err != nil {
		return err
	}
	p.doc.DoctypeName = nm
	p.skipSpace()
	if p.hasPrefix("PUBLIC") {
		p.consume("PUBLIC")
		p.skipSpace()
		if p.doc.PublicID, err = p.quotedLiteral(); err != nil {
			return err
		}
		p.skipSpace()
		if p.doc.SystemID, err = p.quotedLiteral(); err != nil {
			return err
		}
	} else if p.hasPrefix("SYSTEM") {
		p.consume("SYSTEM")
		p.skipSpace()
		if p.doc.SystemID, err = p.quotedLiteral(); err != nil {
			return err
		}
	}
	p.skipSpace()
	if p.peek() == '[' {
		p.next()
		subset, err := p.internalSubsetText()
		if err != nil {
			return err
		}
		p.doc.InternalSubset = subset
		p.skipSpace()
	}
	if p.next() != '>' {
		return p.errf("unterminated DOCTYPE")
	}
	return p.buildDTD()
}

// internalSubsetText scans the raw internal subset up to the matching
// ']', honoring quoted literals and comments so stray brackets inside
// them do not terminate the subset.
func (p *docParser) internalSubsetText() (string, error) {
	start := p.pos
	for !p.eof() {
		c := p.peek()
		switch c {
		case ']':
			text := p.src[start:p.pos]
			p.next()
			return text, nil
		case '"', '\'':
			p.next()
			for !p.eof() && p.peek() != c {
				p.next()
			}
			if p.eof() {
				return "", p.errf("unterminated literal in internal subset")
			}
			p.next()
		default:
			if p.hasPrefix("<!--") {
				for !p.eof() && !p.hasPrefix("-->") {
					p.next()
				}
				if !p.consume("-->") {
					return "", p.errf("unterminated comment in internal subset")
				}
			} else {
				p.next()
			}
		}
	}
	return "", p.errf("unterminated internal subset")
}

// buildDTD parses the internal subset and merges it over the external
// subset (internal declarations take precedence, per XML 1.0 entity and
// attlist binding rules).
func (p *docParser) buildDTD() error {
	var internal *dtd.DTD
	if p.doc.InternalSubset != "" {
		d, err := dtd.ParseWith(p.doc.InternalSubset, dtd.ParseOptions{
			Resolver:     p.opts.Resolver,
			SkipExternal: p.opts.Resolver == nil,
		})
		if err != nil {
			return fmt.Errorf("internal subset: %w", err)
		}
		internal = d
	}
	external := p.opts.ExternalDTD
	if external == nil && p.doc.SystemID != "" && p.opts.Resolver != nil {
		text, err := p.opts.Resolver(p.doc.PublicID, p.doc.SystemID)
		if err != nil {
			return fmt.Errorf("external subset %q: %w", p.doc.SystemID, err)
		}
		d, err := dtd.ParseWith(text, dtd.ParseOptions{Resolver: p.opts.Resolver})
		if err != nil {
			return fmt.Errorf("external subset %q: %w", p.doc.SystemID, err)
		}
		external = d
	}
	switch {
	case internal == nil && external == nil:
		return nil
	case internal == nil:
		p.doc.DTD = external.Clone()
	case external == nil:
		p.doc.DTD = internal
	default:
		merged := external.Clone()
		// Internal element declarations override; internal attlists and
		// entities take precedence by being merged first.
		for _, name := range internal.ElementOrder {
			if _, dup := merged.Elements[name]; dup {
				merged.Elements[name] = internal.Elements[name]
				continue
			}
			if err := merged.AddElement(internal.Elements[name]); err != nil {
				return err
			}
		}
		for el, atts := range internal.Attlists {
			pre := append([]dtd.AttDef(nil), atts...)
			pre = append(pre, merged.Attlists[el]...)
			merged.Attlists[el] = nil
			merged.AddAttDefs(el, pre)
		}
		for n, e := range internal.Entities {
			merged.Entities[n] = e
		}
		for n, e := range internal.ParamEntities {
			merged.ParamEntities[n] = e
		}
		for n, e := range internal.Notations {
			merged.Notations[n] = e
		}
		p.doc.DTD = merged
	}
	if p.doc.DTD != nil {
		p.doc.DTD.Name = p.doc.DoctypeName
	}
	return nil
}

func (p *docParser) parseComment() (*Node, error) {
	p.consume("<!--")
	start := p.pos
	for !p.eof() && !p.hasPrefix("-->") {
		if p.hasPrefix("--") && !p.hasPrefix("-->") {
			return nil, p.errf(`"--" not allowed inside comment`)
		}
		p.next()
	}
	if p.eof() {
		return nil, p.errf("unterminated comment")
	}
	data := p.src[start:p.pos]
	p.consume("-->")
	if p.opts.DropComments {
		return nil, nil
	}
	return &Node{Kind: CommentNode, Data: data}, nil
}

func (p *docParser) parsePI() (*Node, error) {
	p.consume("<?")
	target, err := p.name()
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(target, "xml") {
		return nil, p.errf("processing instruction target may not be %q", target)
	}
	p.skipSpace()
	start := p.pos
	for !p.eof() && !p.hasPrefix("?>") {
		p.next()
	}
	if p.eof() {
		return nil, p.errf("unterminated processing instruction")
	}
	data := p.src[start:p.pos]
	p.consume("?>")
	if p.opts.DropPIs {
		return nil, nil
	}
	return &Node{Kind: PINode, Name: target, Data: data}, nil
}

// parseElement parses one element starting at '<'.
func (p *docParser) parseElement() (*Node, error) {
	p.depth++
	defer func() { p.depth-- }()
	if max := p.opts.maxDepth(); max > 0 && p.depth > max {
		return nil, p.limitErr(ErrTooDeep, "element nesting exceeds %d levels", max)
	}
	if p.next() != '<' {
		return nil, p.errf("expected '<'")
	}
	nm, err := p.name()
	if err != nil {
		return nil, err
	}
	el := NewElement(nm)
	// Attributes.
	for {
		hadSpace := p.skipSpace()
		c := p.peek()
		if c == '>' || c == '/' {
			break
		}
		if c == 0 {
			return nil, p.errf("unterminated start tag <%s", nm)
		}
		if !hadSpace {
			return nil, p.errf("expected whitespace before attribute in <%s>", nm)
		}
		an, err := p.name()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.next() != '=' {
			return nil, p.errf("expected '=' after attribute %q", an)
		}
		p.skipSpace()
		av, err := p.attValue()
		if err != nil {
			return nil, err
		}
		if _, dup := el.Attr(an); dup {
			return nil, p.errf("duplicate attribute %q on <%s>", an, nm)
		}
		el.Attrs = append(el.Attrs, Attr{Name: an, Value: av, Specified: true})
	}
	p.applyAttrDefaults(el)
	if p.peek() == '/' {
		p.next()
		if p.next() != '>' {
			return nil, p.errf("malformed empty-element tag <%s/>", nm)
		}
		return el, nil
	}
	p.next() // '>'
	if err := p.parseContent(el); err != nil {
		return nil, err
	}
	return el, nil
}

// applyAttrDefaults adds DTD-declared default values for attributes not
// present in the start tag.
func (p *docParser) applyAttrDefaults(el *Node) {
	if p.doc == nil || p.doc.DTD == nil {
		return
	}
	for _, def := range p.doc.DTD.Atts(el.Name) {
		if def.Default != dtd.DefValue && def.Default != dtd.DefFixed {
			continue
		}
		if _, present := el.Attr(def.Name); present {
			continue
		}
		el.Attrs = append(el.Attrs, Attr{Name: def.Name, Value: def.Value, Specified: false})
	}
}

// attValue parses a quoted attribute value, normalizing references.
func (p *docParser) attValue() (string, error) {
	q := p.next()
	if q != '"' && q != '\'' {
		return "", p.errf("expected quoted attribute value")
	}
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated attribute value")
		}
		c := p.next()
		switch c {
		case q:
			return b.String(), nil
		case '<':
			return "", p.errf("'<' not allowed in attribute value")
		case '&':
			s, err := p.reference()
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		case '\t', '\n', '\r':
			// Attribute-value normalization.
			b.WriteByte(' ')
		default:
			b.WriteByte(c)
		}
	}
}

// reference resolves a reference after '&': character references, the
// five predefined entities, or a general entity declared in the DTD.
// Entity replacement text must not contain markup (a simplification: such
// entities are rejected rather than re-parsed).
func (p *docParser) reference() (string, error) {
	if p.peek() == '#' {
		p.next()
		hex := false
		if p.peek() == 'x' || p.peek() == 'X' {
			hex = true
			p.next()
		}
		start := p.pos
		for !p.eof() && p.peek() != ';' {
			p.next()
		}
		if p.eof() {
			return "", p.errf("unterminated character reference")
		}
		digits := p.src[start:p.pos]
		p.next()
		var n int64
		for _, c := range digits {
			var v int64
			switch {
			case c >= '0' && c <= '9':
				v = int64(c - '0')
			case hex && c >= 'a' && c <= 'f':
				v = int64(c-'a') + 10
			case hex && c >= 'A' && c <= 'F':
				v = int64(c-'A') + 10
			default:
				return "", p.errf("invalid character reference")
			}
			base := int64(10)
			if hex {
				base = 16
			}
			n = n*base + v
			if n > 0x10FFFF {
				return "", p.errf("character reference out of range")
			}
		}
		if digits == "" || (hex && digits == "x") {
			return "", p.errf("empty character reference")
		}
		return string(rune(n)), nil
	}
	nm, err := p.name()
	if err != nil {
		return "", err
	}
	if p.next() != ';' {
		return "", p.errf("unterminated entity reference &%s", nm)
	}
	switch nm {
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "amp":
		return "&", nil
	case "apos":
		return "'", nil
	case "quot":
		return `"`, nil
	}
	if p.doc != nil && p.doc.DTD != nil {
		expanded, err := p.doc.DTD.ExpandText("&" + nm + ";")
		if err != nil {
			return "", p.errf("%v", err)
		}
		if strings.ContainsRune(expanded, '<') {
			return "", p.errf("entity &%s; expands to markup, which this parser does not re-parse", nm)
		}
		return expanded, nil
	}
	return "", p.errf("undeclared entity &%s;", nm)
}

// parseContent parses element content until the matching end tag.
func (p *docParser) parseContent(el *Node) error {
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			el.AppendText(text.String())
			text.Reset()
		}
	}
	for {
		if p.eof() {
			return p.errf("unexpected end of input inside <%s>", el.Name)
		}
		c := p.peek()
		switch {
		case p.hasPrefix("</"):
			flush()
			p.consume("</")
			nm, err := p.name()
			if err != nil {
				return err
			}
			p.skipSpace()
			if p.next() != '>' {
				return p.errf("malformed end tag </%s", nm)
			}
			if nm != el.Name {
				return p.errf("end tag </%s> does not match <%s>", nm, el.Name)
			}
			return nil
		case p.hasPrefix("<!--"):
			flush()
			n, err := p.parseComment()
			if err != nil {
				return err
			}
			if n != nil {
				el.AppendChild(n)
			}
		case p.hasPrefix("<![CDATA["):
			p.consume("<![CDATA[")
			start := p.pos
			for !p.eof() && !p.hasPrefix("]]>") {
				p.next()
			}
			if p.eof() {
				return p.errf("unterminated CDATA section")
			}
			data := p.src[start:p.pos]
			p.consume("]]>")
			flush()
			cd := NewText(data)
			cd.CData = true
			el.AppendChild(cd)
		case p.hasPrefix("<?"):
			flush()
			n, err := p.parsePI()
			if err != nil {
				return err
			}
			if n != nil {
				el.AppendChild(n)
			}
		case c == '<':
			flush()
			child, err := p.parseElement()
			if err != nil {
				return err
			}
			el.AppendChild(child)
		case c == '&':
			p.next()
			s, err := p.reference()
			if err != nil {
				return err
			}
			text.WriteString(s)
		default:
			if p.hasPrefix("]]>") {
				return p.errf(`"]]>" not allowed in character data`)
			}
			text.WriteByte(p.next())
		}
	}
}
