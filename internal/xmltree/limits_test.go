package xmltree

import (
	"errors"
	"strings"
	"testing"
)

func TestMaxDepthDefault(t *testing.T) {
	deep := strings.Repeat("<a>", DefaultMaxDepth+1) + "x" + strings.Repeat("</a>", DefaultMaxDepth+1)
	_, err := Parse(deep)
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("got %v, want ErrTooDeep", err)
	}
	var syn *SyntaxError
	if !errors.As(err, &syn) {
		t.Fatalf("limit error carries no position: %v", err)
	}
	// One level under the limit parses.
	ok := strings.Repeat("<a>", DefaultMaxDepth) + "x" + strings.Repeat("</a>", DefaultMaxDepth)
	if _, err := Parse(ok); err != nil {
		t.Fatalf("document at the limit rejected: %v", err)
	}
}

func TestMaxDepthConfigured(t *testing.T) {
	src := "<a><b><c><d>x</d></c></b></a>"
	if _, err := ParseWith(src, Options{MaxDepth: 3}); !errors.Is(err, ErrTooDeep) {
		t.Errorf("MaxDepth=3 on 4-deep doc: got %v, want ErrTooDeep", err)
	}
	if _, err := ParseWith(src, Options{MaxDepth: 4}); err != nil {
		t.Errorf("MaxDepth=4 on 4-deep doc: %v", err)
	}
	// Negative disables the limit entirely.
	deep := strings.Repeat("<a>", DefaultMaxDepth+5) + "x" + strings.Repeat("</a>", DefaultMaxDepth+5)
	if _, err := ParseWith(deep, Options{MaxDepth: -1}); err != nil {
		t.Errorf("MaxDepth=-1: %v", err)
	}
}

func TestMaxBytes(t *testing.T) {
	src := "<a>" + strings.Repeat("x", 100) + "</a>"
	if _, err := ParseWith(src, Options{MaxBytes: 50}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("MaxBytes=50: got %v, want ErrTooLarge", err)
	}
	if _, err := ParseWith(src, Options{MaxBytes: len(src)}); err != nil {
		t.Errorf("MaxBytes=len(src): %v", err)
	}
	if _, err := ParseWith(src, Options{}); err != nil {
		t.Errorf("MaxBytes=0 (unlimited): %v", err)
	}
}
