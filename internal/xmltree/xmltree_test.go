package xmltree

import (
	"strings"
	"testing"

	"xmlrdb/internal/dtd"
)

// paperBook is the XML fragment of §3 of the paper (with the paper's
// typographically mangled end tags repaired).
const paperBook = `<book>
  <booktitle>XML RDBMS</booktitle>
  <author><name><firstname>John</firstname><lastname>Smith</lastname></name></author>
  <author><name><firstname>Dave</firstname><lastname>Brown</lastname></name></author>
</book>`

func TestParsePaperBook(t *testing.T) {
	doc, err := Parse(paperBook)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root
	if root.Name != "book" {
		t.Fatalf("root = %q", root.Name)
	}
	if got := root.FirstChildElement("booktitle").Text(); got != "XML RDBMS" {
		t.Errorf("booktitle = %q", got)
	}
	authors := root.Elements("author")
	if len(authors) != 2 {
		t.Fatalf("got %d authors", len(authors))
	}
	// Data ordering: John before Dave.
	first := authors[0].FirstChildElement("name").FirstChildElement("firstname").Text()
	second := authors[1].FirstChildElement("name").FirstChildElement("firstname").Text()
	if first != "John" || second != "Dave" {
		t.Errorf("author order = %q, %q; want John, Dave", first, second)
	}
	if got := root.ChildElementNames(); strings.Join(got, " ") != "booktitle author author" {
		t.Errorf("child elements = %v", got)
	}
}

func TestXMLDecl(t *testing.T) {
	doc, err := Parse(`<?xml version="1.0" encoding="UTF-8" standalone="yes"?><r/>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != "1.0" || doc.Encoding != "UTF-8" || doc.Standalone != "yes" {
		t.Errorf("decl = %q %q %q", doc.Version, doc.Encoding, doc.Standalone)
	}
}

func TestDoctypeInternalSubset(t *testing.T) {
	src := `<!DOCTYPE book [
<!ELEMENT book (title)>
<!ELEMENT title (#PCDATA)>
<!ATTLIST book isbn CDATA #IMPLIED lang CDATA "en">
<!ENTITY pub "O'Reilly">
]>
<book><title>About &pub;</title></book>`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if doc.DoctypeName != "book" {
		t.Errorf("doctype name = %q", doc.DoctypeName)
	}
	if doc.DTD == nil || doc.DTD.Element("book") == nil {
		t.Fatal("internal subset not parsed")
	}
	if got := doc.Root.FirstChildElement("title").Text(); got != "About O'Reilly" {
		t.Errorf("entity expansion: title = %q", got)
	}
	// Attribute default applied, marked unspecified.
	v, ok := doc.Root.Attr("lang")
	if !ok || v != "en" {
		t.Errorf("lang default = %q, %v", v, ok)
	}
	for _, a := range doc.Root.Attrs {
		if a.Name == "lang" && a.Specified {
			t.Error("defaulted attribute should not be Specified")
		}
	}
	if _, ok := doc.Root.Attr("isbn"); ok {
		t.Error("#IMPLIED attribute should not be defaulted")
	}
}

func TestExternalDTDOption(t *testing.T) {
	ext := dtd.MustParse(`<!ELEMENT r EMPTY><!ATTLIST r kind CDATA "basic">`)
	doc, err := ParseWith(`<!DOCTYPE r SYSTEM "r.dtd"><r/>`, Options{ExternalDTD: ext})
	if err != nil {
		t.Fatal(err)
	}
	if doc.SystemID != "r.dtd" {
		t.Errorf("system id = %q", doc.SystemID)
	}
	if v, _ := doc.Root.Attr("kind"); v != "basic" {
		t.Errorf("external default not applied: %q", v)
	}
}

func TestInternalOverridesExternal(t *testing.T) {
	ext := dtd.MustParse(`<!ELEMENT r (a)><!ENTITY who "external">`)
	src := `<!DOCTYPE r SYSTEM "r.dtd" [<!ENTITY who "internal">]><r><a>&who;</a></r>`
	doc, err := ParseWith(src, Options{ExternalDTD: ext})
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.Text(); got != "internal" {
		t.Errorf("entity = %q, want internal declaration to win", got)
	}
	if doc.DTD.Element("r") == nil {
		t.Error("external element declarations missing from merged DTD")
	}
}

func TestResolverLoadsExternalSubset(t *testing.T) {
	resolver := func(pub, sys string) (string, error) {
		return `<!ELEMENT r EMPTY><!ATTLIST r x CDATA "42">`, nil
	}
	doc, err := ParseWith(`<!DOCTYPE r SYSTEM "whatever.dtd"><r/>`, Options{Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Root.Attr("x"); v != "42" {
		t.Errorf("x = %q", v)
	}
}

func TestReferences(t *testing.T) {
	doc, err := Parse(`<r a="1 &amp; 2&#x21;">&lt;tag&gt; &#65;&#x42;</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Root.Attr("a"); v != "1 & 2!" {
		t.Errorf("attr = %q", v)
	}
	if got := doc.Root.Text(); got != "<tag> AB" {
		t.Errorf("text = %q", got)
	}
}

func TestAttributeValueNormalization(t *testing.T) {
	doc, err := Parse("<r a=\"one\ntwo\tthree\"/>")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Root.Attr("a"); v != "one two three" {
		t.Errorf("normalized attr = %q", v)
	}
}

func TestCDATA(t *testing.T) {
	doc, err := Parse(`<r><![CDATA[a < b & c]]></r>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Root.Text(); got != "a < b & c" {
		t.Errorf("cdata text = %q", got)
	}
	if !doc.Root.Children[0].CData {
		t.Error("CData flag missing")
	}
	// Round trip preserves the CDATA form.
	if !strings.Contains(doc.Root.XML(), "<![CDATA[a < b & c]]>") {
		t.Errorf("serialized = %q", doc.Root.XML())
	}
}

func TestCommentsAndPIs(t *testing.T) {
	src := `<?xml version="1.0"?><!-- head --><?style css?><r><!-- in --><?p d?>x</r><!-- tail -->`
	doc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Children) != 4 { // comment, pi, root, comment
		t.Fatalf("top-level children = %d", len(doc.Children))
	}
	kinds := []NodeKind{CommentNode, PINode, ElementNode, CommentNode}
	for i, k := range kinds {
		if doc.Children[i].Kind != k {
			t.Errorf("child %d kind = %v, want %v", i, doc.Children[i].Kind, k)
		}
	}
	if len(doc.Root.Children) != 3 {
		t.Fatalf("root children = %d", len(doc.Root.Children))
	}

	doc, err = ParseWith(src, Options{DropComments: true, DropPIs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Children) != 1 || len(doc.Root.Children) != 1 {
		t.Errorf("drop options kept extra nodes: %d top, %d in root",
			len(doc.Children), len(doc.Root.Children))
	}
}

func TestEmptyElementForms(t *testing.T) {
	a := MustParse(`<r><x/></r>`)
	b := MustParse(`<r><x></x></r>`)
	if !Equal(a.Root, b.Root, EqualOptions{}) {
		t.Error("<x/> and <x></x> should be equal")
	}
}

func TestWellFormednessErrors(t *testing.T) {
	tests := []struct{ name, in string }{
		{"mismatched tags", `<a><b></a></b>`},
		{"unterminated", `<a>`},
		{"duplicate attr", `<a x="1" x="2"/>`},
		{"lt in attr", `<a x="<"/>`},
		{"two roots", `<a/><b/>`},
		{"text at top", `hello<a/>`},
		{"bad end tag", `<a></a b>`},
		{"cdata end in text", `<a>]]></a>`},
		{"undeclared entity", `<a>&nope;</a>`},
		{"bad char ref", `<a>&#xQQ;</a>`},
		{"double dash comment", `<a><!-- x -- y --></a>`},
		{"xml pi target", `<a><?XML x?></a>`},
		{"attr without value", `<a x></a>`},
		{"no space between attrs", `<a x="1"y="2"/>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.in); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("<a>\n  <b>\n</a>")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if se.Line != 3 {
		t.Errorf("line = %d, want 3", se.Line)
	}
}

func TestEntityExpandingToMarkupRejected(t *testing.T) {
	src := `<!DOCTYPE r [<!ENTITY m "<x/>">]><r>&m;</r>`
	if _, err := Parse(src); err == nil {
		t.Fatal("entity expanding to markup should be rejected")
	}
}

func TestNavigation(t *testing.T) {
	doc := MustParse(`<lib><book id="1"><t>A</t></book><book id="2"><t>B</t></book><cd/></lib>`)
	root := doc.Root
	if root.FirstChildElement("").Name != "book" {
		t.Error("FirstChildElement any")
	}
	if root.FirstChildElement("cd") == nil {
		t.Error("FirstChildElement cd")
	}
	if root.FirstChildElement("dvd") != nil {
		t.Error("FirstChildElement dvd should be nil")
	}
	if n := len(root.Find("t")); n != 2 {
		t.Errorf("Find(t) = %d", n)
	}
	if n := len(root.Find("lib")); n != 1 {
		t.Errorf("Find(lib) = %d (self)", n)
	}
	if got := root.Elements("book")[1].Path(); got != "/lib/book" {
		t.Errorf("Path = %q", got)
	}
	if !root.HasElementChildren() {
		t.Error("HasElementChildren")
	}
	if root.CountElements() != 6 {
		t.Errorf("CountElements = %d", root.CountElements())
	}
	if got := root.AttrOr("missing", "d"); got != "d" {
		t.Errorf("AttrOr = %q", got)
	}
}

func TestDirectText(t *testing.T) {
	doc := MustParse(`<p>one<b>bold</b>two</p>`)
	if got := doc.Root.DirectText(); got != "onetwo" {
		t.Errorf("DirectText = %q", got)
	}
	if got := doc.Root.Text(); got != "oneboldtwo" {
		t.Errorf("Text = %q", got)
	}
}

func TestMutation(t *testing.T) {
	root := NewElement("order")
	root.SetAttr("id", "7")
	root.SetAttr("id", "8") // replace
	item := root.AppendElement("item")
	item.AppendText("widget")
	if got := root.XML(); got != `<order id="8"><item>widget</item></order>` {
		t.Errorf("XML = %q", got)
	}
	c := root.Clone()
	c.SetAttr("id", "9")
	if v, _ := root.Attr("id"); v != "8" {
		t.Error("Clone shares attrs")
	}
}

func TestSerializeEscaping(t *testing.T) {
	root := NewElement("r")
	root.SetAttr("a", `x"y<z&`+"\n")
	root.AppendText("a<b&c>d")
	out := root.XML()
	want := `<r a="x&quot;y&lt;z&amp;&#10;">a&lt;b&amp;c&gt;d</r>`
	if out != want {
		t.Errorf("XML = %q, want %q", out, want)
	}
	back := MustParse(out)
	if !Equal(root, back.Root, EqualOptions{}) {
		t.Error("escape round trip failed")
	}
}

func TestRoundTripStability(t *testing.T) {
	docs := []string{
		paperBook,
		`<r><a x="1"/><b>text &amp; more</b><!-- c --><?pi d?></r>`,
		`<a><b><c><d>deep</d></c></b></a>`,
	}
	for _, src := range docs {
		d1 := MustParse(src)
		out1 := d1.Render(WriteOptions{OmitXMLDecl: true})
		d2 := MustParse(out1)
		if !Equal(d1.Root, d2.Root, EqualOptions{}) {
			t.Errorf("round trip changed tree for %q", src)
		}
		out2 := d2.Render(WriteOptions{OmitXMLDecl: true})
		if out1 != out2 {
			t.Errorf("serialization unstable:\n%s\n%s", out1, out2)
		}
	}
}

func TestIndentLeavesMixedContentAlone(t *testing.T) {
	doc := MustParse(`<r><a><b>x</b><c>y</c></a><m>text<b>bold</b></m></r>`)
	out := doc.Root.XMLIndent("  ")
	if !strings.Contains(out, "\n  <a>") {
		t.Errorf("element content not indented:\n%s", out)
	}
	if !strings.Contains(out, "<m>text<b>bold</b></m>") {
		t.Errorf("mixed content was reformatted:\n%s", out)
	}
	if !Equal(MustParse(out).Root, doc.Root, EqualOptions{IgnoreWhitespaceText: true}) {
		t.Error("indent changed non-whitespace structure")
	}
}

func TestEqualOptions(t *testing.T) {
	a := MustParse(`<r x="1" y="2"><!-- c -->t</r>`).Root
	b := MustParse(`<r y="2" x="1">t</r>`).Root
	if Equal(a, b, EqualOptions{}) {
		t.Error("should differ: attr order and comment")
	}
	if !Equal(a, b, EqualOptions{IgnoreComments: true, IgnoreAttrOrder: true}) {
		t.Error("should match with options")
	}
	c := MustParse(`<r x="1" y="2">  t  </r>`).Root
	if Equal(a, c, EqualOptions{IgnoreComments: true}) {
		t.Error("different text should differ")
	}
}

func TestDoctypeRoundTrip(t *testing.T) {
	src := `<!DOCTYPE r SYSTEM "r.dtd" [<!ENTITY e "v">]>` + "\n" + `<r>&e;</r>`
	doc := MustParse(src)
	out := doc.Render(WriteOptions{OmitXMLDecl: true})
	if !strings.Contains(out, `<!DOCTYPE r SYSTEM "r.dtd" [<!ENTITY e "v">]>`) {
		t.Errorf("doctype lost: %s", out)
	}
	// The parsed entity value is baked into the tree.
	if !strings.Contains(out, "<r>v</r>") {
		t.Errorf("content = %s", out)
	}
}

func TestBOM(t *testing.T) {
	doc, err := Parse("\ufeff<r/>")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Name != "r" {
		t.Errorf("root = %q", doc.Root.Name)
	}
}

func TestCountNodes(t *testing.T) {
	doc := MustParse(`<a>t<b/><!--c--></a>`)
	if got := doc.Root.CountNodes(); got != 4 {
		t.Errorf("CountNodes = %d, want 4", got)
	}
}

func TestWhitespacePreserved(t *testing.T) {
	doc := MustParse("<r>  <a/>  </r>")
	if len(doc.Root.Children) != 3 {
		t.Fatalf("children = %d, want text, element, text", len(doc.Root.Children))
	}
	if doc.Root.Children[0].Data != "  " {
		t.Errorf("leading ws = %q", doc.Root.Children[0].Data)
	}
}
