// Package xmltree parses XML 1.0 documents into a mutable DOM-like tree
// and serializes trees back to XML text.
//
// The tree deliberately mirrors the W3C DOM Level 1 traversal surface the
// paper's data-loading algorithm assumes ("the process of loading the XML
// data into a relational database can be realized by an algorithm that
// traverses the DOM tree"): parent/child/sibling navigation, element
// attributes, and text content. Unlike encoding/xml, the parser reads the
// DOCTYPE declaration, parses any internal subset with the dtd package,
// applies attribute defaults, and expands general entity references
// declared in the DTD.
package xmltree

import (
	"fmt"
	"strings"
)

// NodeKind discriminates tree node variants.
type NodeKind int

// Node kinds.
const (
	// ElementNode is an element; Name holds the tag.
	ElementNode NodeKind = iota + 1
	// TextNode is character data; Data holds the text.
	TextNode
	// CommentNode is a comment; Data holds the body.
	CommentNode
	// PINode is a processing instruction; Name is the target, Data the rest.
	PINode
)

// String returns a short kind name.
func (k NodeKind) String() string {
	switch k {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case PINode:
		return "pi"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Attr is one attribute of an element.
type Attr struct {
	// Name and Value are the attribute name and (reference-expanded) value.
	Name, Value string
	// Specified is false when the value came from a DTD default rather
	// than appearing in the document.
	Specified bool
}

// Node is one node of the document tree.
type Node struct {
	// Kind discriminates the variant.
	Kind NodeKind
	// Name is the element tag or PI target.
	Name string
	// Data is the content of text, comment and PI nodes.
	Data string
	// CData marks text nodes that came from a CDATA section.
	CData bool
	// Attrs lists element attributes in document order.
	Attrs []Attr
	// Parent is the enclosing element, or nil at the top level.
	Parent *Node
	// Children are the child nodes in document order.
	Children []*Node
}

// NewElement returns a parentless element node.
func NewElement(name string) *Node { return &Node{Kind: ElementNode, Name: name} }

// NewText returns a parentless text node.
func NewText(data string) *Node { return &Node{Kind: TextNode, Data: data} }

// AppendChild attaches c as the last child of n and returns c.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return c
}

// AppendElement creates, attaches and returns a new child element.
func (n *Node) AppendElement(name string) *Node { return n.AppendChild(NewElement(name)) }

// AppendText creates, attaches and returns a new child text node.
func (n *Node) AppendText(data string) *Node { return n.AppendChild(NewText(data)) }

// SetAttr sets (or replaces) an attribute value.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			n.Attrs[i].Specified = true
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value, Specified: true})
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute's value, or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// ChildElements returns the element children, in order.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// ChildElementNames returns the names of the element children, in order —
// the sequence validated against the element's content model.
func (n *Node) ChildElementNames() []string {
	var out []string
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			out = append(out, c.Name)
		}
	}
	return out
}

// FirstChildElement returns the first child element named name ("" for
// any), or nil.
func (n *Node) FirstChildElement(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && (name == "" || c.Name == name) {
			return c
		}
	}
	return nil
}

// Elements returns all child elements with the given name.
func (n *Node) Elements(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Descendants visits n and all element descendants in document order.
func (n *Node) Descendants(visit func(*Node) bool) {
	if n.Kind == ElementNode && !visit(n) {
		return
	}
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			c.Descendants(visit)
		}
	}
}

// Find returns every descendant element (including n itself) with the
// given name, in document order.
func (n *Node) Find(name string) []*Node {
	var out []*Node
	n.Descendants(func(e *Node) bool {
		if e.Name == name {
			out = append(out, e)
		}
		return true
	})
	return out
}

// Text returns the concatenation of all descendant text, in document
// order — the DOM textContent of the node.
func (n *Node) Text() string {
	var b strings.Builder
	var walk func(*Node)
	walk = func(x *Node) {
		if x.Kind == TextNode {
			b.WriteString(x.Data)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	return b.String()
}

// DirectText returns the concatenation of the node's immediate text
// children only.
func (n *Node) DirectText() string {
	var b strings.Builder
	for _, c := range n.Children {
		if c.Kind == TextNode {
			b.WriteString(c.Data)
		}
	}
	return b.String()
}

// HasElementChildren reports whether any child is an element.
func (n *Node) HasElementChildren() bool {
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			return true
		}
	}
	return false
}

// Path returns the slash-separated element path from the root to n, for
// diagnostics (e.g. "/book/author/name").
func (n *Node) Path() string {
	if n.Parent == nil {
		return "/" + n.Name
	}
	return n.Parent.Path() + "/" + n.Name
}

// Clone returns a deep copy of the subtree rooted at n, with a nil parent.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data, CData: n.CData}
	if len(n.Attrs) > 0 {
		c.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, ch := range n.Children {
		c.AppendChild(ch.Clone())
	}
	return c
}

// CountNodes returns the number of nodes in the subtree (elements, text,
// comments, PIs), including n itself.
func (n *Node) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// CountElements returns the number of element nodes in the subtree.
func (n *Node) CountElements() int {
	total := 0
	if n.Kind == ElementNode {
		total = 1
	}
	for _, c := range n.Children {
		total += c.CountElements()
	}
	return total
}

// EqualOptions configures tree comparison.
type EqualOptions struct {
	// IgnoreComments skips comment nodes.
	IgnoreComments bool
	// IgnorePIs skips processing instructions.
	IgnorePIs bool
	// IgnoreWhitespaceText skips text nodes that are entirely whitespace.
	IgnoreWhitespaceText bool
	// IgnoreAttrOrder compares attributes as a set rather than a sequence.
	IgnoreAttrOrder bool
}

// Equal reports whether two subtrees are structurally identical under the
// given options. Attribute Specified flags and CData flags are ignored:
// they record provenance, not content.
func Equal(a, b *Node, opts EqualOptions) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name {
		return false
	}
	if a.Kind == TextNode || a.Kind == CommentNode || a.Kind == PINode {
		if a.Data != b.Data {
			return false
		}
	}
	if !attrsEqual(a.Attrs, b.Attrs, opts.IgnoreAttrOrder) {
		return false
	}
	ac := filteredChildren(a, opts)
	bc := filteredChildren(b, opts)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !Equal(ac[i], bc[i], opts) {
			return false
		}
	}
	return true
}

func filteredChildren(n *Node, opts EqualOptions) []*Node {
	var out []*Node
	for _, c := range n.Children {
		switch c.Kind {
		case CommentNode:
			if opts.IgnoreComments {
				continue
			}
		case PINode:
			if opts.IgnorePIs {
				continue
			}
		case TextNode:
			if opts.IgnoreWhitespaceText && strings.TrimSpace(c.Data) == "" {
				continue
			}
		}
		out = append(out, c)
	}
	return out
}

func attrsEqual(a, b []Attr, ignoreOrder bool) bool {
	if len(a) != len(b) {
		return false
	}
	if !ignoreOrder {
		for i := range a {
			if a[i].Name != b[i].Name || a[i].Value != b[i].Value {
				return false
			}
		}
		return true
	}
	am := make(map[string]string, len(a))
	for _, x := range a {
		am[x.Name] = x.Value
	}
	for _, y := range b {
		if v, ok := am[y.Name]; !ok || v != y.Value {
			return false
		}
	}
	return true
}
