package xmltree

import (
	"strings"
	"testing"
)

func TestRenderOptions(t *testing.T) {
	doc := MustParse(`<?xml version="1.0" encoding="UTF-8" standalone="no"?><r><a/></r>`)
	full := doc.Render(WriteOptions{})
	if !strings.Contains(full, `encoding="UTF-8"`) || !strings.Contains(full, `standalone="no"`) {
		t.Errorf("declaration lost: %s", full)
	}
	bare := doc.Render(WriteOptions{OmitXMLDecl: true})
	if strings.Contains(bare, "<?xml") {
		t.Errorf("OmitXMLDecl ignored: %s", bare)
	}
	pretty := doc.Render(WriteOptions{Indent: "  ", OmitXMLDecl: true})
	if !strings.Contains(pretty, "\n  <a/>") {
		t.Errorf("indent missing: %q", pretty)
	}
}

func TestRenderDoctypeForms(t *testing.T) {
	pub := MustParse(`<!DOCTYPE r PUBLIC "pubid" "sysid"><r/>`)
	out := pub.Render(WriteOptions{OmitXMLDecl: true})
	if !strings.Contains(out, `<!DOCTYPE r PUBLIC "pubid" "sysid">`) {
		t.Errorf("public doctype: %s", out)
	}
	sys := MustParse(`<!DOCTYPE r SYSTEM "sysid"><r/>`)
	out = sys.Render(WriteOptions{OmitXMLDecl: true})
	if !strings.Contains(out, `<!DOCTYPE r SYSTEM "sysid">`) {
		t.Errorf("system doctype: %s", out)
	}
	out = sys.Render(WriteOptions{OmitXMLDecl: true, OmitDoctype: true})
	if strings.Contains(out, "DOCTYPE") {
		t.Errorf("OmitDoctype ignored: %s", out)
	}
}

func TestSerializePIAndComment(t *testing.T) {
	doc := MustParse(`<r><?target data?><!--note--></r>`)
	out := doc.Root.XML()
	if out != `<r><?target data?><!--note--></r>` {
		t.Errorf("out = %q", out)
	}
	// PI with no data.
	n := &Node{Kind: PINode, Name: "t"}
	if n.XML() != "<?t?>" {
		t.Errorf("bare pi = %q", n.XML())
	}
}

func TestEqualNilAndKindMismatch(t *testing.T) {
	a := NewElement("x")
	if Equal(a, nil, EqualOptions{}) || Equal(nil, a, EqualOptions{}) {
		t.Error("nil mismatch should be false")
	}
	if !Equal(nil, nil, EqualOptions{}) {
		t.Error("nil == nil")
	}
	if Equal(NewElement("x"), NewText("x"), EqualOptions{}) {
		t.Error("kind mismatch")
	}
	if Equal(NewText("a"), NewText("b"), EqualOptions{}) {
		t.Error("text mismatch")
	}
	x := NewElement("e")
	x.SetAttr("a", "1")
	y := NewElement("e")
	y.SetAttr("b", "1")
	if Equal(x, y, EqualOptions{IgnoreAttrOrder: true}) {
		t.Error("different attr names should differ")
	}
}

func TestEscapeHelpers(t *testing.T) {
	if EscapeText("a<b>c&d") != "a&lt;b&gt;c&amp;d" {
		t.Errorf("EscapeText = %q", EscapeText("a<b>c&d"))
	}
	if EscapeAttr(`"<&`) != `&quot;&lt;&amp;` {
		t.Errorf("EscapeAttr = %q", EscapeAttr(`"<&`))
	}
}
