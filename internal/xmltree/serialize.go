package xmltree

import (
	"strings"
)

// WriteOptions configures serialization.
type WriteOptions struct {
	// Indent, when non-empty, pretty-prints element content with the
	// given unit (e.g. "  "). Mixed content (elements with text siblings)
	// is never re-indented, so indentation cannot corrupt data.
	Indent string
	// OmitXMLDecl suppresses the <?xml ...?> declaration.
	OmitXMLDecl bool
	// OmitDoctype suppresses the <!DOCTYPE ...> declaration.
	OmitDoctype bool
}

// String serializes the document with an XML declaration and any DOCTYPE
// (internal subset included verbatim).
func (d *Document) String() string { return d.Render(WriteOptions{}) }

// Render serializes the document with explicit options.
func (d *Document) Render(opts WriteOptions) string {
	var b strings.Builder
	if !opts.OmitXMLDecl {
		version := d.Version
		if version == "" {
			version = "1.0"
		}
		b.WriteString(`<?xml version="` + version + `"`)
		if d.Encoding != "" {
			b.WriteString(` encoding="` + d.Encoding + `"`)
		}
		if d.Standalone != "" {
			b.WriteString(` standalone="` + d.Standalone + `"`)
		}
		b.WriteString("?>\n")
	}
	if !opts.OmitDoctype && d.DoctypeName != "" {
		b.WriteString("<!DOCTYPE " + d.DoctypeName)
		switch {
		case d.PublicID != "":
			b.WriteString(` PUBLIC "` + d.PublicID + `" "` + d.SystemID + `"`)
		case d.SystemID != "":
			b.WriteString(` SYSTEM "` + d.SystemID + `"`)
		}
		if d.InternalSubset != "" {
			b.WriteString(" [" + d.InternalSubset + "]")
		}
		b.WriteString(">\n")
	}
	for _, c := range d.Children {
		writeNode(&b, c, opts, 0)
		if opts.Indent != "" {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// XML serializes the subtree rooted at n.
func (n *Node) XML() string {
	var b strings.Builder
	writeNode(&b, n, WriteOptions{}, 0)
	return b.String()
}

// XMLIndent serializes the subtree with pretty-printing.
func (n *Node) XMLIndent(indent string) string {
	var b strings.Builder
	writeNode(&b, n, WriteOptions{Indent: indent}, 0)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, opts WriteOptions, depth int) {
	switch n.Kind {
	case TextNode:
		if n.CData {
			b.WriteString("<![CDATA[")
			b.WriteString(n.Data)
			b.WriteString("]]>")
		} else {
			b.WriteString(EscapeText(n.Data))
		}
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case PINode:
		b.WriteString("<?")
		b.WriteString(n.Name)
		if n.Data != "" {
			b.WriteByte(' ')
			b.WriteString(n.Data)
		}
		b.WriteString("?>")
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Name)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(EscapeAttr(a.Value))
			b.WriteByte('"')
		}
		if len(n.Children) == 0 {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		pretty := opts.Indent != "" && elementOnlyContent(n)
		for _, c := range n.Children {
			if pretty {
				b.WriteByte('\n')
				b.WriteString(strings.Repeat(opts.Indent, depth+1))
			}
			writeNode(b, c, opts, depth+1)
		}
		if pretty {
			b.WriteByte('\n')
			b.WriteString(strings.Repeat(opts.Indent, depth))
		}
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteByte('>')
	}
}

// elementOnlyContent reports whether every child is an element, comment
// or PI — i.e. indentation will not alter character data.
func elementOnlyContent(n *Node) bool {
	for _, c := range n.Children {
		if c.Kind == TextNode {
			return false
		}
	}
	return true
}

// EscapeText escapes character data for element content.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", `"`, "&quot;",
		"\t", "&#9;", "\n", "&#10;", "\r", "&#13;",
	)
	return r.Replace(s)
}
