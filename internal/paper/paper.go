// Package paper holds the literal artifacts of Lee, Mitchell and Zhang,
// "Integrating XML Data with Relational Databases" (2000): the Example 1
// DTD, the expected Example 2 converted DTD, the §3 sample document, and
// the Figure 2 diagram inventory. Golden tests across the repository
// compare against these fixtures.
package paper

// Example1DTD is the paper's Example 1: the DTD for books, articles and
// authors. The paper's PDF renders choice bars inconsistently ("(author*
// editor)"); the bars are restored here as the prose requires ("the
// elements author and editor have a choice grouping relationship").
const Example1DTD = `<!ELEMENT book (booktitle, (author* | editor))>
<!ELEMENT booktitle (#PCDATA)>
<!ELEMENT article (title, (author, affiliation?)+, contactauthor?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT contactauthor EMPTY>
<!ATTLIST contactauthor authorid IDREF #IMPLIED>
<!ELEMENT monograph (title, author, editor)>
<!ELEMENT editor ((book | monograph)*)>
<!ATTLIST editor name CDATA #REQUIRED>
<!ELEMENT author (name)>
<!ATTLIST author id ID #REQUIRED>
<!ELEMENT name (firstname?, lastname)>
<!ELEMENT firstname (#PCDATA)>
<!ELEMENT lastname (#PCDATA)>
<!ELEMENT affiliation ANY>
`

// Example2Converted is the paper's Example 2: the converted DTD after
// defining group elements, distilling attributes, and identifying
// relationships. Two typographic slips in the paper are normalized: the
// superseded "<!ATTLIST contactauthor authorid IDREF #IMPLIES>" line is
// omitted (its information lives in the REFERENCE declaration, as the
// paper's step 3c prescribes), and missing choice bars are restored.
const Example2Converted = `<!ELEMENT book ()>
<!ATTLIST book booktitle (#PCDATA) #REQUIRED>
<!NESTED_GROUP NG1 book (author* | editor)>
<!ELEMENT article ()>
<!ATTLIST article title (#PCDATA) #REQUIRED>
<!NESTED_GROUP NG2 article (author, affiliation?)>
<!NESTED Ncontactauthor article contactauthor>
<!ELEMENT contactauthor EMPTY>
<!REFERENCE authorid contactauthor (author)>
<!ELEMENT monograph ()>
<!ATTLIST monograph title (#PCDATA) #REQUIRED>
<!NESTED Nauthor monograph author>
<!NESTED Neditor monograph editor>
<!ELEMENT editor ()>
<!ATTLIST editor name CDATA #REQUIRED>
<!NESTED_GROUP NG3 editor (book | monograph)>
<!ELEMENT author ()>
<!ATTLIST author id ID #REQUIRED>
<!NESTED Nname author name>
<!ELEMENT name ()>
<!ATTLIST name firstname (#PCDATA) #IMPLIED lastname (#PCDATA) #REQUIRED>
<!ELEMENT affiliation ANY>
`

// BookXML is the §3 sample document (end tags repaired; the paper's PDF
// mangles them as <booktitle/> etc.).
const BookXML = `<book>
<booktitle>XML RDBMS</booktitle>
<author id="a1"><name><firstname>John</firstname><lastname>Smith</lastname></name></author>
<author id="a2"><name><firstname>Dave</firstname><lastname>Brown</lastname></name></author>
</book>`

// ArticleXML is a conforming article document exercising the IDREF
// reference relationship of the example DTD.
const ArticleXML = `<article>
<title>Integrating XML Data with Relational Databases</title>
<author id="wlee"><name><firstname>Wang-Chien</firstname><lastname>Lee</lastname></name></author>
<affiliation>GTE Laboratories</affiliation>
<author id="gmitchell"><name><lastname>Mitchell</lastname></name></author>
<author id="xzhang"><name><firstname>Xin</firstname><lastname>Zhang</lastname></name></author>
<affiliation>Worcester Polytechnic Institute</affiliation>
<contactauthor authorid="wlee"/>
</article>`

// EditorXML exercises the recursive editor -> (book | monograph) loop.
const EditorXML = `<editor name="Knuth">
<book>
<booktitle>Volume 1</booktitle>
<author id="k1"><name><lastname>Author One</lastname></name></author>
</book>
<monograph>
<title>A Monograph</title>
<author id="k2"><name><lastname>Author Two</lastname></name></author>
<editor name="Sub Editor"></editor>
</monograph>
</editor>`

// Figure2Entities lists the entities of the paper's Figure 2 diagram, in
// the converted DTD's declaration order.
var Figure2Entities = []string{
	"book", "article", "contactauthor", "monograph",
	"editor", "author", "name", "affiliation",
}

// Figure2Relationships lists the relationship nodes of Figure 2.
var Figure2Relationships = []string{
	"NG1", "NG2", "Ncontactauthor", "authorid",
	"Nauthor", "Neditor", "NG3", "Nname",
}
