package engine

import (
	"testing"
	"testing/quick"

	"xmlrdb/internal/rel"
)

// TestCompareTotalOrder checks the comparator's order properties over
// random values: antisymmetry and transitivity within comparable types.
func TestCompareTotalOrder(t *testing.T) {
	antisym := func(a, b int64) bool {
		return compare(a, b) == -compare(b, a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	antisymStr := func(a, b string) bool {
		return compare(a, b) == -compare(b, a)
	}
	if err := quick.Check(antisymStr, nil); err != nil {
		t.Error(err)
	}
	trans := func(a, b, c float64) bool {
		x, y, z := any(a), any(b), any(c)
		if compare(x, y) <= 0 && compare(y, z) <= 0 {
			return compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
}

// TestCompareCrossNumeric checks int/float comparisons agree with the
// mathematical order.
func TestCompareCrossNumeric(t *testing.T) {
	f := func(i int32, g float64) bool {
		a, b := any(int64(i)), any(g)
		switch {
		case float64(i) < g:
			return compare(a, b) < 0
		case float64(i) > g:
			return compare(a, b) > 0
		default:
			return compare(a, b) == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEncodeKeyInjective checks that distinct rows of simple values get
// distinct keys (the property hash indexes and GROUP BY rely on).
func TestEncodeKeyInjective(t *testing.T) {
	f := func(a1, a2 int64, b1, b2 string) bool {
		k1 := encodeKey([]any{a1, b1})
		k2 := encodeKey([]any{a2, b2})
		if a1 == a2 && b1 == b2 {
			return k1 == k2
		}
		return k1 != k2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Type confusion must not collide: 1 vs "1" vs 1.0 vs true.
	keys := map[string]bool{}
	for _, v := range []any{int64(1), "1", float64(1), true, nil} {
		k := encodeKey([]any{v})
		if keys[k] {
			t.Errorf("key collision for %#v", v)
		}
		keys[k] = true
	}
	// Concatenation boundaries must not collide: ["ab","c"] vs ["a","bc"].
	if encodeKey([]any{"ab", "c"}) == encodeKey([]any{"a", "bc"}) {
		t.Error("boundary collision")
	}
}

// TestCoerceRoundTrip checks coercion into each type produces a value of
// the right dynamic type (or an error), never silently wrong.
func TestCoerceRoundTrip(t *testing.T) {
	cases := []struct {
		v    any
		typ  rel.Type
		want any
		ok   bool
	}{
		{int64(5), rel.TypeInt, int64(5), true},
		{5, rel.TypeInt, int64(5), true},
		{"42", rel.TypeInt, int64(42), true},
		{"x", rel.TypeInt, nil, false},
		{3.7, rel.TypeInt, int64(3), true},
		{true, rel.TypeInt, int64(1), true},
		{int64(5), rel.TypeFloat, float64(5), true},
		{"2.5", rel.TypeFloat, 2.5, true},
		{"x", rel.TypeFloat, nil, false},
		{int64(5), rel.TypeText, "5", true},
		{2.5, rel.TypeText, "2.5", true},
		{false, rel.TypeText, "false", true},
		{"true", rel.TypeBool, true, true},
		{int64(0), rel.TypeBool, false, true},
		{"zz", rel.TypeBool, nil, false},
		{nil, rel.TypeInt, nil, true},
	}
	for _, c := range cases {
		got, err := coerce(c.v, c.typ)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("coerce(%#v, %v) = %#v, %v; want %#v", c.v, c.typ, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("coerce(%#v, %v) should fail", c.v, c.typ)
		}
	}
}

// TestTruthy documents the predicate interpretation of values.
func TestTruthy(t *testing.T) {
	truthyVals := []any{true, int64(1), int64(-1), 0.5, "x"}
	falsyVals := []any{nil, false, int64(0), 0.0, ""}
	for _, v := range truthyVals {
		if !truthy(v) {
			t.Errorf("truthy(%#v) = false", v)
		}
	}
	for _, v := range falsyVals {
		if truthy(v) {
			t.Errorf("truthy(%#v) = true", v)
		}
	}
}

// TestNullsSortFirst verifies NULL ordering used by ORDER BY.
func TestNullsSortFirst(t *testing.T) {
	if compare(nil, int64(0)) != -1 || compare(int64(0), nil) != 1 || compare(nil, nil) != 0 {
		t.Error("NULL ordering wrong")
	}
}

// TestNUMFunction exercises the NUM cast end to end.
func TestNUMFunction(t *testing.T) {
	db := Open()
	_, _, err := db.ExecScript(`
CREATE TABLE t (v TEXT, f TEXT);
INSERT INTO t VALUES ('10', '2.5'), ('3', '0.5');
`)
	if err != nil {
		t.Fatal(err)
	}
	rows := db.MustQuery(`SELECT SUM(NUM(v)), SUM(NUM(v) * NUM(f)) FROM t`)
	if rows.Data[0][0] != int64(13) {
		t.Errorf("SUM(NUM(v)) = %v", rows.Data[0][0])
	}
	if rows.Data[0][1] != 26.5 {
		t.Errorf("weighted sum = %v", rows.Data[0][1])
	}
	if _, err := db.Query(`SELECT NUM('abc') FROM t`); err == nil {
		t.Error("NUM of non-number should fail")
	}
	rows = db.MustQuery(`SELECT NUM(NULL) FROM t LIMIT 1`)
	if rows.Data[0][0] != nil {
		t.Errorf("NUM(NULL) = %v", rows.Data[0][0])
	}
}
