package engine

import (
	"context"
	"errors"
	"io"
	"time"

	"xmlrdb/internal/obs"
	"xmlrdb/internal/sqldb"
)

// Cursor is a streaming query result: rows are produced one at a time
// as the caller pulls them, so a consumer that stops early (LIMIT, a
// disconnected client) never pays for the rows it didn't read. The
// cursor holds the engine's read locks while open; it closes itself
// when the stream ends or fails, and callers that may abandon a cursor
// early must Close it (Close is idempotent).
//
//	cur, err := db.QueryCursorContext(ctx, sql)
//	if err != nil { ... }
//	defer cur.Close()
//	for cur.Next() {
//		use(cur.Row())
//	}
//	if err := cur.Err(); err != nil { ... }
type Cursor interface {
	// Cols returns the output column names.
	Cols() []string
	// Next advances to the next row, reporting whether one is available.
	Next() bool
	// Row returns the current row; valid until the next call to Next.
	Row() []any
	// Err returns the terminal error, if the stream failed.
	Err() error
	// Close releases the cursor's locks and flushes its plan statistics.
	Close() error
}

// selectCursor is the engine's streaming cursor over one physical plan.
type selectCursor struct {
	db      *DB
	plan    *physPlan
	it      rowIter
	ec      *execCtx
	row     []any
	err     error
	unlock  func() // row locks + db.mu shared; nil once released
	onClose func(c *selectCursor)
	start   time.Time
	sql     string
}

// openSelect plans a SELECT and opens its iterator tree. On success the
// returned cursor holds db.mu shared plus read locks on every source
// table until Close.
func (db *DB) openSelect(s *sqldb.Select, cc *cancelCheck, timing bool) (*selectCursor, error) {
	db.mu.RLock()
	srcs, env, err := db.bindSelect(s)
	if err != nil {
		db.mu.RUnlock()
		return nil, err
	}
	reads := make([]string, 0, len(srcs))
	for _, src := range srcs {
		reads = append(reads, src.ref.Table)
	}
	rowUnlock := db.lockRows(nil, reads)
	unlock := func() {
		rowUnlock()
		db.mu.RUnlock()
	}
	plan, err := db.buildPlan(s, srcs, env)
	if err != nil {
		unlock()
		return nil, err
	}
	ec := &execCtx{env: env, cc: cc, timing: timing}
	it, err := openNode(plan.root, ec)
	if err != nil {
		plan.finish(db)
		unlock()
		return nil, err
	}
	return &selectCursor{db: db, plan: plan, it: it, ec: ec,
		unlock: unlock, start: time.Now()}, nil
}

func (c *selectCursor) Cols() []string { return c.plan.cols }
func (c *selectCursor) Row() []any     { return c.row }
func (c *selectCursor) Err() error     { return c.err }

func (c *selectCursor) Next() bool {
	if c.err != nil || c.unlock == nil {
		return false
	}
	row, err := c.it.Next()
	if err == io.EOF {
		c.Close()
		return false
	}
	if err != nil {
		c.err = err
		c.Close()
		return false
	}
	c.row = row
	return true
}

func (c *selectCursor) Close() error {
	if c.unlock == nil {
		return nil
	}
	c.plan.finish(c.db)
	c.unlock()
	c.unlock = nil
	if c.onClose != nil {
		c.onClose(c)
	}
	return nil
}

// finish flushes the plan's runtime statistics into the metrics hub:
// per-scan visited rows into the table's RowsScanned and per-operator
// row counts into the engine's operator counters. Idempotent.
func (p *physPlan) finish(db *DB) {
	if p.finished {
		return
	}
	p.finished = true
	m := db.obs
	walkPlan(p.root, 0, func(n planNode, depth int) {
		if sc, ok := n.(*scanNode); ok && sc.src.t.obs != nil {
			sc.src.t.obs.RowsScanned.Add(sc.visited)
		}
		if m == nil {
			return
		}
		if v, ok := n.(*vecNode); ok {
			m.VecBatches.Add(v.batches)
			for _, sel := range v.batchSel {
				m.VecBatchRows.Observe(sel)
			}
		}
		rows := n.stats().rows
		if rows == 0 {
			return
		}
		switch n.kind() {
		case "scan":
			m.OpScanRows.Add(rows)
		case "filter":
			m.OpFilterRows.Add(rows)
		case "join":
			m.OpJoinRows.Add(rows)
		case "aggregate":
			m.OpAggregateRows.Add(rows)
		case "project":
			m.OpProjectRows.Add(rows)
		case "sort":
			m.OpSortRows.Add(rows)
		case "distinct":
			m.OpDistinctRows.Add(rows)
		case "limit":
			m.OpLimitRows.Add(rows)
		}
	})
	if m != nil {
		m.RowsOut.Add(p.root.stats().rows)
	}
}

// execSelect runs a SELECT to completion for the materialized APIs
// (Query, ExecContext): open a cursor, drain it, release the locks
// before returning.
func (db *DB) execSelect(s *sqldb.Select, cc *cancelCheck) (*Rows, error) {
	cur, err := db.openSelect(s, cc, false)
	if err != nil {
		return nil, err
	}
	return DrainCursor(cur)
}

// cardinalityHinter is implemented by cursors that know their plan's
// estimated output size, so DrainCursor can preallocate.
type cardinalityHinter interface {
	CardinalityHint() int
}

// drainPreallocCap bounds the hint-driven preallocation: a wild
// overestimate must not allocate an arbitrarily large empty slice.
const drainPreallocCap = 4096

// CardinalityHint returns the planner's estimate for the root operator.
func (c *selectCursor) CardinalityHint() int {
	if c.plan == nil || c.plan.root == nil {
		return 0
	}
	return c.plan.root.estimate()
}

// DrainCursor materializes a cursor into Rows, closing it. A failed
// stream returns the error and no partial result. Cursors exposing a
// cardinality hint get their result slice preallocated from it.
func DrainCursor(c Cursor) (*Rows, error) {
	defer c.Close()
	res := &Rows{Cols: c.Cols()}
	if h, ok := c.(cardinalityHinter); ok {
		if hint := h.CardinalityHint(); hint > 0 {
			res.Data = make([][]any, 0, minInt(hint, drainPreallocCap))
		}
	}
	for c.Next() {
		res.Data = append(res.Data, c.Row())
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	if len(res.Data) == 0 {
		res.Data = nil // empty results stay nil regardless of preallocation
	}
	return res, nil
}

// QueryCursorContext parses a SELECT and returns a streaming cursor
// over its result. Unlike QueryContext nothing is materialized: rows
// are produced as the caller pulls them, and the statement's read locks
// are held until the cursor is closed (or the stream ends). A non-query
// statement is an error; use ExecCursorContext to accept both.
func (db *DB) QueryCursorContext(ctx context.Context, sql string) (Cursor, error) {
	st, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqldb.Select)
	if !ok {
		return nil, errors.New("engine: statement is not a query")
	}
	return db.queryCursor(ctx, sel, sql)
}

func (db *DB) queryCursor(ctx context.Context, sel *sqldb.Select, sql string) (Cursor, error) {
	cc := newCancelCheck(ctx)
	if err := cc.now(); err != nil {
		return nil, err
	}
	cur, err := db.openSelect(sel, cc, false)
	if err != nil {
		return nil, err
	}
	db.observeCursor(cur, sql)
	return cur, nil
}

// ExecCursorContext parses and executes one statement, returning its
// result as a cursor: SELECTs stream, everything else executes to
// completion and yields an empty cursor (so callers like the HTTP
// layer handle both uniformly).
func (db *DB) ExecCursorContext(ctx context.Context, sql string) (Cursor, error) {
	st, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := st.(*sqldb.Select); ok {
		return db.queryCursor(ctx, sel, sql)
	}
	_, _, err = db.execStmtObserved(ctx, st, sql)
	if err != nil {
		return nil, err
	}
	return NewRowsCursor(&Rows{}), nil
}

// observeCursor wires the streaming statement into the observability
// hooks: the statement counts when opened, and latency (open through
// close) plus the slow-query trace record when the cursor closes.
func (db *DB) observeCursor(c *selectCursor, sql string) {
	if db.obs == nil && db.tracer == nil {
		return
	}
	if db.obs != nil {
		db.obs.Selects.Inc()
	}
	c.sql = sql
	c.onClose = func(c *selectCursor) {
		d := time.Since(c.start)
		if db.obs != nil {
			db.obs.ExecLatency.ObserveDuration(d)
		}
		if thr := db.slowQuery; thr > 0 && d >= thr {
			if db.obs != nil {
				db.obs.SlowQueries.Inc()
			}
			if db.tracer != nil {
				detail := c.sql
				if detail == "" {
					detail = "streamed select"
				}
				ev := obs.Event{Scope: "engine", Name: "slow-query", Detail: detail, Dur: d}
				if c.err != nil {
					ev.Err = c.err.Error()
				}
				db.tracer.Emit(ev)
			}
		}
	}
}

// NewRowsCursor adapts a materialized Rows into a Cursor.
func NewRowsCursor(r *Rows) Cursor {
	return &rowsCursor{rows: r}
}

type rowsCursor struct {
	rows *Rows
	i    int
	row  []any
}

func (c *rowsCursor) Cols() []string { return c.rows.Cols }
func (c *rowsCursor) Row() []any     { return c.row }
func (c *rowsCursor) Err() error     { return nil }
func (c *rowsCursor) Close() error   { return nil }

func (c *rowsCursor) Next() bool {
	if c.i >= len(c.rows.Data) {
		return false
	}
	c.row = c.rows.Data[c.i]
	c.i++
	return true
}
