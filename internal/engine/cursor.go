package engine

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"time"

	"xmlrdb/internal/obs"
	"xmlrdb/internal/sqldb"
)

// Cursor is a streaming query result: rows are produced one at a time
// as the caller pulls them, so a consumer that stops early (LIMIT, a
// disconnected client) never pays for the rows it didn't read. The
// cursor holds no locks while open: it pins an immutable snapshot of
// its source tables at open (see version.go), so writers, Checkpoint
// and DDL proceed freely while the stream runs and the cursor's rows
// are exactly the tables' state at open time. It closes itself when the
// stream ends or fails, and callers that may abandon a cursor early
// must Close it to release the snapshot pin (Close is idempotent, and
// safe to call concurrently with Next — serve's request-scoped guard
// relies on that).
//
//	cur, err := db.QueryCursorContext(ctx, sql)
//	if err != nil { ... }
//	defer cur.Close()
//	for cur.Next() {
//		use(cur.Row())
//	}
//	if err := cur.Err(); err != nil { ... }
type Cursor interface {
	// Cols returns the output column names.
	Cols() []string
	// Next advances to the next row, reporting whether one is available.
	Next() bool
	// Row returns the current row; valid until the next call to Next.
	Row() []any
	// Err returns the terminal error, if the stream failed.
	Err() error
	// Close releases the cursor's snapshot pin and flushes its plan
	// statistics.
	Close() error
}

// selectCursor is the engine's streaming cursor over one physical plan.
// mu serializes Next and Close: Next is single-consumer, but Close may
// arrive from another goroutine (the serve layer closes abandoned
// cursors from a request-context watchdog).
type selectCursor struct {
	db      *DB
	plan    *physPlan
	it      rowIter
	ec      *execCtx
	row     []any
	err     error
	mu      sync.Mutex
	closed  bool
	release func() // version refs + epoch pin; nil once released
	onClose func(c *selectCursor)
	start   time.Time
	sql     string
	trace   *obs.Trace // request trace, nil when the context carried none
	span    *obs.Span  // the cursor's engine.select span, ended at Close
}

// openSelect plans a SELECT and opens its iterator tree. The read locks
// are held only inside this call: binding, version capture and planning
// run under db.mu shared plus read locks on every source table (taken
// together, so multi-table captures are mutually consistent), then the
// locks drop and the returned cursor streams from the captured versions
// holding nothing but its snapshot pin. A trace in ctx forces
// per-operator timing on and records planning and (at Close) operator
// spans.
func (db *DB) openSelect(ctx context.Context, s *sqldb.Select, cc *cancelCheck, timing bool) (*selectCursor, error) {
	tr := obs.TraceFrom(ctx)
	var selSpan *obs.Span
	var sampleMask int64
	if tr != nil {
		if !timing {
			// Traced production query: time a 1-in-16 sample of Next
			// calls rather than every row, so always-on tracing stays
			// cheap. EXPLAIN (timing already true) keeps full timing.
			sampleMask = 15
		}
		timing = true
		// StartChild rather than StartSpan: the derived context would
		// only feed the engine.plan span below, so skip the two
		// context.WithValue allocations per traced query.
		selSpan = tr.StartChild(obs.CurrentSpan(ctx), "engine.select")
	}
	fail := func(err error) (*selectCursor, error) {
		selSpan.SetErr(err)
		selSpan.End()
		return nil, err
	}
	db.mu.RLock()
	srcs, env, err := db.bindSelect(s)
	if err != nil {
		db.mu.RUnlock()
		return fail(err)
	}
	reads := make([]string, 0, len(srcs))
	for _, src := range srcs {
		reads = append(reads, src.ref.Table)
	}
	rowUnlock := db.lockRows(nil, reads)
	// Pin the statement's snapshot: every source's current version is
	// captured while all source read locks are held together, so the
	// captures are mutually consistent, and the epoch is registered for
	// the vacuum/observability surface.
	epoch := db.clock.Load()
	for i := range srcs {
		srcs[i].ver = srcs[i].t.capture(epoch)
	}
	db.pins.pin(epoch)
	release := func() {
		for i := range srcs {
			srcs[i].ver.release()
		}
		db.pins.unpin(epoch)
	}
	var planSpan *obs.Span
	if tr != nil {
		planSpan = tr.StartChild(selSpan, "engine.plan")
	}
	plan, err := db.buildPlan(s, srcs, env)
	if planSpan != nil {
		planSpan.SetAttr("tables", len(srcs))
		planSpan.SetErr(err)
		planSpan.End()
	}
	// Planning consulted the catalog and copied the index postings it
	// needs; execution reads only the captured versions, so the locks
	// drop here and the cursor streams without blocking any writer.
	rowUnlock()
	db.mu.RUnlock()
	if err != nil {
		release()
		return fail(err)
	}
	ec := &execCtx{env: env, cc: cc, timing: timing, sampleMask: sampleMask}
	it, err := openNode(plan.root, ec)
	if err != nil {
		plan.finish(db)
		release()
		return fail(err)
	}
	return &selectCursor{db: db, plan: plan, it: it, ec: ec,
		release: release, start: time.Now(), trace: tr, span: selSpan}, nil
}

func (c *selectCursor) Cols() []string { return c.plan.cols }
func (c *selectCursor) Row() []any     { return c.row }
func (c *selectCursor) Err() error     { return c.err }

func (c *selectCursor) Next() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil || c.closed {
		return false
	}
	row, err := c.it.Next()
	if err == io.EOF {
		c.closeLocked()
		return false
	}
	if err != nil {
		c.err = err
		c.closeLocked()
		return false
	}
	c.row = row
	return true
}

func (c *selectCursor) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeLocked()
	return nil
}

func (c *selectCursor) closeLocked() {
	if c.closed {
		return
	}
	c.closed = true
	c.plan.finish(c.db)
	c.plan.emitSpans(c.trace, c.span, c.start)
	c.release()
	c.release = nil
	if c.onClose != nil {
		c.onClose(c)
	}
	c.span.SetAttr("rows", c.plan.root.stats().rows)
	c.span.SetErr(c.err)
	c.span.End()
}

// finish flushes the plan's runtime statistics into the metrics hub:
// per-scan visited rows into the table's RowsScanned and per-operator
// row counts into the engine's operator counters. Idempotent.
func (p *physPlan) finish(db *DB) {
	if p.finished {
		return
	}
	p.finished = true
	m := db.obs
	walkPlan(p.root, 0, func(n planNode, depth int) {
		if sc, ok := n.(*scanNode); ok && sc.src.t.obs != nil {
			sc.src.t.obs.RowsScanned.Add(sc.visited)
		}
		if m == nil {
			return
		}
		if v, ok := n.(*vecNode); ok {
			m.VecBatches.Add(v.batches)
			for _, sel := range v.batchSel {
				m.VecBatchRows.Observe(sel)
			}
		}
		rows := n.stats().rows
		if rows == 0 {
			return
		}
		switch n.kind() {
		case "scan":
			m.OpScanRows.Add(rows)
		case "filter":
			m.OpFilterRows.Add(rows)
		case "join":
			m.OpJoinRows.Add(rows)
		case "aggregate":
			m.OpAggregateRows.Add(rows)
		case "project":
			m.OpProjectRows.Add(rows)
		case "sort":
			m.OpSortRows.Add(rows)
		case "distinct":
			m.OpDistinctRows.Add(rows)
		case "limit":
			m.OpLimitRows.Add(rows)
		}
	})
	if m != nil {
		m.RowsOut.Add(p.root.stats().rows)
	}
}

// emitSpans records one completed span per operator into the request
// trace: the node's describe line, its estimated and actual row counts,
// and the time accounted by its statIter wrapper (timing is forced on
// for traced cursors). All operator spans attach under parent. The
// describe/est/rows triple comes from the memoized digest — walkPlan
// visits nodes in the same order — so traced requests render each
// operator's describe line once, not once here and once for telemetry.
func (p *physPlan) emitSpans(tr *obs.Trace, parent *obs.Span, start time.Time) {
	if tr == nil {
		return
	}
	dig := p.digest()
	i := 0
	walkPlan(p.root, 0, func(n planNode, depth int) {
		st := n.stats()
		od := dig.Ops[i]
		i++
		attrs := []obs.Attr{
			{Key: "op", Val: od.Name},
			{Key: "est", Val: od.Est},
			{Key: "rows", Val: od.Rows},
		}
		if v, ok := n.(*vecNode); ok {
			attrs = append(attrs, obs.Attr{Key: "batches", Val: v.batches})
		}
		tr.AddCompletedSpan(parent, "op."+n.kind(),
			start, time.Duration(st.openNanos+st.estNanos()), attrs...)
	})
}

// digest summarizes the executed plan for query telemetry and the
// slow-query log: per-operator estimated-vs-actual rows, plus a
// root-first one-line shape. Memoized — the trace's operator spans and
// the telemetry hook both want it at cursor close, and describe()
// builds strings.
func (p *physPlan) digest() *obs.PlanDigest {
	if p.dig != nil {
		return p.dig
	}
	d := &obs.PlanDigest{}
	var parts []string
	walkPlan(p.root, 0, func(n planNode, depth int) {
		d.Ops = append(d.Ops, obs.OpDigest{
			Name: n.describe(), Est: int64(n.estimate()), Rows: n.stats().rows,
		})
		if len(parts) < 8 {
			parts = append(parts, n.describe())
		}
	})
	d.Summary = strings.Join(parts, " <- ")
	if len(d.Summary) > 240 {
		d.Summary = d.Summary[:237] + "..."
	}
	p.dig = d
	return d
}

// execSelect runs a SELECT to completion for the materialized APIs
// (Query, ExecContext): open a cursor, drain it, release the locks
// before returning.
func (db *DB) execSelect(ctx context.Context, s *sqldb.Select, cc *cancelCheck) (*Rows, error) {
	cur, err := db.openSelect(ctx, s, cc, false)
	if err != nil {
		return nil, err
	}
	return DrainCursor(cur)
}

// cardinalityHinter is implemented by cursors that know their plan's
// estimated output size, so DrainCursor can preallocate.
type cardinalityHinter interface {
	CardinalityHint() int
}

// drainPreallocCap bounds the hint-driven preallocation: a wild
// overestimate must not allocate an arbitrarily large empty slice.
const drainPreallocCap = 4096

// CardinalityHint returns the planner's estimate for the root operator.
func (c *selectCursor) CardinalityHint() int {
	if c.plan == nil || c.plan.root == nil {
		return 0
	}
	return c.plan.root.estimate()
}

// DrainCursor materializes a cursor into Rows, closing it. A failed
// stream returns the error and no partial result. Cursors exposing a
// cardinality hint get their result slice preallocated from it.
func DrainCursor(c Cursor) (*Rows, error) {
	defer c.Close()
	res := &Rows{Cols: c.Cols()}
	if h, ok := c.(cardinalityHinter); ok {
		if hint := h.CardinalityHint(); hint > 0 {
			res.Data = make([][]any, 0, minInt(hint, drainPreallocCap))
		}
	}
	for c.Next() {
		res.Data = append(res.Data, c.Row())
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	if len(res.Data) == 0 {
		res.Data = nil // empty results stay nil regardless of preallocation
	}
	return res, nil
}

// QueryCursorContext parses a SELECT and returns a streaming cursor
// over its result. Unlike QueryContext nothing is materialized: rows
// are produced as the caller pulls them out of the snapshot the cursor
// pinned at open, which stays pinned until the cursor is closed (or the
// stream ends). A non-query statement is an error; use
// ExecCursorContext to accept both.
func (db *DB) QueryCursorContext(ctx context.Context, sql string) (Cursor, error) {
	st, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqldb.Select)
	if !ok {
		return nil, errors.New("engine: statement is not a query")
	}
	return db.queryCursor(ctx, sel, sql)
}

func (db *DB) queryCursor(ctx context.Context, sel *sqldb.Select, sql string) (Cursor, error) {
	cc := newCancelCheck(ctx)
	if err := cc.now(); err != nil {
		return nil, err
	}
	cur, err := db.openSelect(ctx, sel, cc, false)
	if err != nil {
		return nil, err
	}
	db.observeCursor(cur, sql)
	return cur, nil
}

// ExecCursorContext parses and executes one statement, returning its
// result as a cursor: SELECTs stream, everything else executes to
// completion and yields an empty cursor (so callers like the HTTP
// layer handle both uniformly).
func (db *DB) ExecCursorContext(ctx context.Context, sql string) (Cursor, error) {
	st, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := st.(*sqldb.Select); ok {
		return db.queryCursor(ctx, sel, sql)
	}
	_, _, err = db.execStmtObserved(ctx, st, sql)
	if err != nil {
		return nil, err
	}
	return NewRowsCursor(&Rows{}), nil
}

// observeCursor wires the streaming statement into the observability
// hooks: the statement counts when opened; latency (open through
// close), per-fingerprint query telemetry with the executed-plan
// digest, and the slow-query trace record follow when the cursor
// closes.
func (db *DB) observeCursor(c *selectCursor, sql string) {
	if db.obs == nil && db.tracer == nil && c.trace == nil {
		return
	}
	if db.obs != nil {
		db.obs.Selects.Inc()
	}
	c.sql = sql
	c.onClose = func(c *selectCursor) {
		d := time.Since(c.start)
		var dig *obs.PlanDigest
		if db.obs != nil || db.tracer != nil {
			dig = c.plan.digest()
		}
		if db.obs != nil {
			db.obs.ExecLatency.ObserveDuration(d)
			if c.sql != "" {
				db.obs.Queries.Observe(c.sql, d, c.plan.root.stats().rows, c.err, dig)
			}
		}
		if thr := db.slowQuery; thr > 0 && d >= thr {
			if db.obs != nil {
				db.obs.SlowQueries.Inc()
			}
			if db.tracer != nil {
				detail := c.sql
				if detail == "" {
					detail = "streamed select"
				}
				ev := obs.Event{Scope: "engine", Name: "slow-query", Detail: detail, Dur: d,
					Attrs: []obs.Attr{
						{Key: "fingerprint", Val: obs.Fingerprint(detail)},
						{Key: "plan", Val: dig.Summary},
					}}
				if c.err != nil {
					ev.Err = c.err.Error()
				}
				db.tracer.Emit(ev)
			}
		}
	}
}

// NewRowsCursor adapts a materialized Rows into a Cursor.
func NewRowsCursor(r *Rows) Cursor {
	return &rowsCursor{rows: r}
}

type rowsCursor struct {
	rows *Rows
	i    int
	row  []any
}

func (c *rowsCursor) Cols() []string { return c.rows.Cols }
func (c *rowsCursor) Row() []any     { return c.row }
func (c *rowsCursor) Err() error     { return nil }
func (c *rowsCursor) Close() error   { return nil }

func (c *rowsCursor) Next() bool {
	if c.i >= len(c.rows.Data) {
		return false
	}
	c.row = c.rows.Data[c.i]
	c.i++
	return true
}
