package engine

import (
	"context"
	"errors"

	"xmlrdb/internal/sqldb"
)

// Context-aware execution: the serving layer runs statements with
// per-request deadlines, and a long scan or join must notice
// cancellation mid-flight instead of holding its read locks until the
// full result is materialized. Cancellation is polled at checkpoints
// every cancelStride rows, so the uncancelled hot path pays one
// increment and a modulo per row — and a cancelled statement returns
// the context's error with no partial result.

// cancelStride is the row interval between cancellation polls.
const cancelStride = 512

// cancelCheck polls a context's done channel at a fixed row stride. A
// nil *cancelCheck (no context, or a context that can never be
// cancelled) checks nothing.
type cancelCheck struct {
	ctx context.Context
	n   int
}

// newCancelCheck returns a checker for ctx, or nil when ctx can never
// be cancelled (context.Background() and friends).
func newCancelCheck(ctx context.Context) *cancelCheck {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &cancelCheck{ctx: ctx}
}

// step accounts one row and polls the context every cancelStride rows.
func (c *cancelCheck) step() error {
	if c == nil {
		return nil
	}
	c.n++
	if c.n%cancelStride != 0 {
		return nil
	}
	return c.now()
}

// now polls the context immediately.
func (c *cancelCheck) now() error {
	if c == nil {
		return nil
	}
	select {
	case <-c.ctx.Done():
		return c.ctx.Err()
	default:
		return nil
	}
}

// ExecContext parses and executes one statement under a context: a
// cancelled or timed-out context aborts long scans, joins and
// projections at the next checkpoint and returns the context's error
// (context.Canceled or context.DeadlineExceeded) with no partial
// result. Mutations are checked once before they start; a statement
// that began applying is never half-cancelled (the engine's own
// atomicity rules decide what it keeps).
func (db *DB) ExecContext(ctx context.Context, sql string) (Result, *Rows, error) {
	st, err := sqldb.Parse(sql)
	if err != nil {
		return Result{}, nil, err
	}
	return db.execStmtObserved(ctx, st, sql)
}

// QueryContext parses and executes a SELECT under a context.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Rows, error) {
	_, rows, err := db.ExecContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		return nil, errors.New("engine: statement is not a query")
	}
	return rows, nil
}

// ExecStmtContext executes a parsed statement under a context.
func (db *DB) ExecStmtContext(ctx context.Context, st sqldb.Stmt) (Result, *Rows, error) {
	return db.execStmtObserved(ctx, st, "")
}
