package engine

import (
	"fmt"
	"io"

	"xmlrdb/internal/sqldb"
)

// Vectorized batch execution: when a plan's hot pipeline is exactly
// scan → [pushed predicates] → aggregate-or-project, the planner swaps
// the top of that subtree for a vecNode that pulls row positions in
// batches, filters them through compiled predicate kernels over a
// selection vector, and aggregates or projects in tight loops reading
// the table's rows directly — no per-row wide-row allocation, no
// expression-tree interpretation. On dictionary-encoded columns
// (dict.go) equality, IN and IS NULL predicates compare integer codes
// instead of strings, and single-column GROUP BY keys index a dense
// group table by code.
//
// The rewrite is conservative: anything it cannot prove equivalent —
// joins, residual filters, LIKE/OR/expression predicates, HAVING,
// DISTINCT aggregates, computed projections, ORDER BY keys that need
// the input row — leaves the row-at-a-time tree untouched, so the two
// paths always produce identical results (pinned by equivalence tests).
// SQL semantics mirrored bit-for-bit from operators.go / exec.go:
// NULL comparisons are false, IN over NULL is false regardless of NOT,
// aggregates skip NULLs, SUM stays int64 until a float appears, groups
// emit in first-seen order, empty non-grouped input yields one group.

// vecBatchMax is the full batch size; the first batches ramp up through
// vecBatchRamp so a LIMIT above the pipeline still reads O(limit) rows.
const vecBatchMax = 1024

var vecBatchRamp = [...]int{64, 256, vecBatchMax}

// --- compiled predicates ---

const (
	vpBin    = iota // col <op> literal
	vpIn            // col [NOT] IN (literals)
	vpIsNull        // col IS [NOT] NULL
)

// vecPred is one pushed scan predicate in compiled form: a table-local
// column index against constant operands.
type vecPred struct {
	kind   int
	col    int
	op     string // vpBin: OpEq/OpNe/OpLt/OpLe/OpGt/OpGe
	lit    any
	list   []any
	negate bool
}

// Dict-resolved predicate modes (resolved at open against the table's
// current code sidecar).
const (
	prValue   = iota // evaluate against the stored value
	prNever          // constant false: empty selection
	prEqCode         // code == c
	prNeCode         // code != c and not NULL
	prNotNull        // not NULL (Ne against a value outside the dict)
	prInSet          // code-set membership
	prIsNull         // NULL test via the code vector
)

// predRun is a predicate bound to one execution: either a code-vector
// kernel or a per-value closure.
type predRun struct {
	mode   int
	col    int
	codes  []uint32
	code   uint32
	set    map[uint32]struct{}
	negate bool
	val    func(any) bool
}

// compileVecPreds translates the scan's pushed predicates; any conjunct
// outside the supported shapes rejects the whole pipeline (clean
// fallback to the row-at-a-time tree).
func compileVecPreds(scan *scanNode) ([]vecPred, bool) {
	flip := map[string]string{
		sqldb.OpEq: sqldb.OpEq, sqldb.OpNe: sqldb.OpNe,
		sqldb.OpLt: sqldb.OpGt, sqldb.OpLe: sqldb.OpGe,
		sqldb.OpGt: sqldb.OpLt, sqldb.OpGe: sqldb.OpLe,
	}
	out := make([]vecPred, 0, len(scan.preds))
	for _, pr := range scan.preds {
		switch x := pr.(type) {
		case *sqldb.Bin:
			switch x.Op {
			case sqldb.OpEq, sqldb.OpNe, sqldb.OpLt, sqldb.OpLe, sqldb.OpGt, sqldb.OpGe:
			default:
				return nil, false
			}
			col, lit := asColLit(x.L, x.R)
			op := x.Op
			if col == nil {
				col, lit = asColLit(x.R, x.L)
				op = flip[x.Op]
			}
			if col == nil {
				return nil, false
			}
			ci, ok := vecResolveCol(scan, col)
			if !ok {
				return nil, false
			}
			v, err := evalConst(lit)
			if err != nil {
				return nil, false
			}
			out = append(out, vecPred{kind: vpBin, col: ci, op: op, lit: v})
		case *sqldb.In:
			c, ok := x.X.(*sqldb.Col)
			if !ok {
				return nil, false
			}
			ci, ok := vecResolveCol(scan, c)
			if !ok {
				return nil, false
			}
			vals := make([]any, len(x.List))
			for i, cand := range x.List {
				l, ok := cand.(*sqldb.Lit)
				if !ok {
					return nil, false
				}
				vals[i] = l.Value
			}
			out = append(out, vecPred{kind: vpIn, col: ci, list: vals, negate: x.Negate})
		case *sqldb.IsNull:
			c, ok := x.X.(*sqldb.Col)
			if !ok {
				return nil, false
			}
			ci, ok := vecResolveCol(scan, c)
			if !ok {
				return nil, false
			}
			out = append(out, vecPred{kind: vpIsNull, col: ci, negate: x.Negate})
		default:
			return nil, false
		}
	}
	return out, true
}

// vecResolveCol resolves a column reference to a table-local index on
// the scanned source.
func vecResolveCol(scan *scanNode, c *sqldb.Col) (int, bool) {
	if c.Table != "" && c.Table != scan.src.ref.Name() {
		return 0, false
	}
	_, pos := scan.src.t.def.Column(c.Name)
	if pos < 0 {
		return 0, false
	}
	return pos, true
}

// compilePredRun binds a predicate to the execution's code sidecar,
// choosing the dictionary kernel when the column is encoded. TEXT
// columns hold only strings (coerce guarantees it, and buildVecCache
// disables encoding otherwise), so a literal of any other type can
// never equal a stored value.
func compilePredRun(p vecPred, vc *vecCache) predRun {
	var codes []uint32
	var d *colDict
	if p.col < len(vc.codes) && vc.codes[p.col] != nil {
		codes, d = vc.codes[p.col], vc.dicts[p.col]
	}
	if codes != nil {
		switch p.kind {
		case vpIsNull:
			return predRun{mode: prIsNull, codes: codes, negate: p.negate}
		case vpIn:
			set := make(map[uint32]struct{}, len(p.list))
			for _, cand := range p.list {
				if s, ok := cand.(string); ok {
					if c, ok := d.lookup(s); ok {
						set[c] = struct{}{}
					}
				}
			}
			if len(set) == 0 && !p.negate {
				return predRun{mode: prNever}
			}
			return predRun{mode: prInSet, codes: codes, set: set, negate: p.negate}
		case vpBin:
			switch p.op {
			case sqldb.OpEq:
				s, ok := p.lit.(string)
				if !ok {
					return predRun{mode: prNever}
				}
				c, ok := d.lookup(s)
				if !ok {
					// The effective dictionary covers every present value, so
					// a miss means no row matches.
					return predRun{mode: prNever}
				}
				return predRun{mode: prEqCode, codes: codes, code: c}
			case sqldb.OpNe:
				if p.lit == nil {
					return predRun{mode: prNever}
				}
				if s, ok := p.lit.(string); ok {
					if c, ok := d.lookup(s); ok {
						return predRun{mode: prNeCode, codes: codes, code: c}
					}
				}
				// Literal not present (or not a string): every non-NULL
				// value differs.
				return predRun{mode: prNotNull, codes: codes}
			}
		}
	}
	return predRun{mode: prValue, col: p.col, val: valuePred(p)}
}

// valuePred builds the per-value fallback closure, mirroring evalExpr's
// NULL semantics exactly.
func valuePred(p vecPred) func(any) bool {
	switch p.kind {
	case vpIsNull:
		neg := p.negate
		return func(v any) bool { return (v == nil) != neg }
	case vpIn:
		list, neg := p.list, p.negate
		return func(v any) bool {
			if v == nil {
				return false
			}
			for _, cand := range list {
				if equalVals(v, cand) {
					return !neg
				}
			}
			return neg
		}
	}
	lit := p.lit
	switch p.op {
	case sqldb.OpEq:
		return func(v any) bool { return equalVals(v, lit) }
	case sqldb.OpNe:
		return func(v any) bool { return v != nil && lit != nil && compare(v, lit) != 0 }
	case sqldb.OpLt:
		return func(v any) bool { return v != nil && lit != nil && compare(v, lit) < 0 }
	case sqldb.OpLe:
		return func(v any) bool { return v != nil && lit != nil && compare(v, lit) <= 0 }
	case sqldb.OpGt:
		return func(v any) bool { return v != nil && lit != nil && compare(v, lit) > 0 }
	default: // OpGe
		return func(v any) bool { return v != nil && lit != nil && compare(v, lit) >= 0 }
	}
}

// filter narrows a selection vector in place.
func (r *predRun) filter(rows [][]any, sel []int) []int {
	out := sel[:0]
	switch r.mode {
	case prNever:
	case prEqCode:
		for _, pos := range sel {
			if r.codes[pos] == r.code {
				out = append(out, pos)
			}
		}
	case prNeCode:
		for _, pos := range sel {
			if c := r.codes[pos]; c != dictNull && c != r.code {
				out = append(out, pos)
			}
		}
	case prNotNull:
		for _, pos := range sel {
			if r.codes[pos] != dictNull {
				out = append(out, pos)
			}
		}
	case prInSet:
		for _, pos := range sel {
			c := r.codes[pos]
			if c == dictNull {
				continue
			}
			_, in := r.set[c]
			if in != r.negate {
				out = append(out, pos)
			}
		}
	case prIsNull:
		for _, pos := range sel {
			if (r.codes[pos] == dictNull) != r.negate {
				out = append(out, pos)
			}
		}
	default: // prValue
		for _, pos := range sel {
			if r.val(rows[pos][r.col]) {
				out = append(out, pos)
			}
		}
	}
	return out
}

// --- compiled aggregate / projection ---

// vecAggItem is one output of a vectorized aggregate: a plain group
// column ('c', first-row value), COUNT(*) ('*'), or a one-column
// aggregate ('a').
type vecAggItem struct {
	kind byte
	col  int
	fn   string
}

type vecAggPlan struct {
	groupCols []int
	items     []vecAggItem
	accOf     []int // per item: accumulator index, -1 for non-aggregates
	nAccs     int
	orderIdx  []int // per ORDER BY key: source output index
}

type vecProjPlan struct {
	cols     []int
	orderIdx []int
}

// vecOrderIdx maps ORDER BY keys onto output indexes, following
// orderKey's resolution rules (output-column name match first, then
// positional). Keys that would fall back to expression evaluation —
// which needs the input row — reject the pipeline.
func vecOrderIdx(orderBy []sqldb.OrderItem, items []sqldb.SelectItem, cols []string) ([]int, bool) {
	idx := make([]int, len(orderBy))
	for j, oi := range orderBy {
		if c, ok := oi.Expr.(*sqldb.Col); ok && c.Table == "" {
			found := -1
			for i, name := range cols {
				if name == c.Name {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, false
			}
			idx[j] = found
			continue
		}
		if l, ok := oi.Expr.(*sqldb.Lit); ok {
			if n, isInt := l.Value.(int64); isInt && n >= 1 && int(n) <= len(items) {
				idx[j] = int(n - 1)
				continue
			}
		}
		return nil, false
	}
	return idx, true
}

// compileVecAgg attempts the vectorized rewrite of an Aggregate
// directly over a scan.
func compileVecAgg(n *aggNode) *vecNode {
	scan, ok := n.child.(*scanNode)
	if !ok {
		return nil
	}
	preds, ok := compileVecPreds(scan)
	if !ok {
		return nil
	}
	if n.sel.Having != nil {
		return nil
	}
	a := &vecAggPlan{accOf: make([]int, len(n.items))}
	for _, g := range n.sel.GroupBy {
		c, ok := g.(*sqldb.Col)
		if !ok {
			return nil
		}
		col, ok := vecResolveCol(scan, c)
		if !ok {
			return nil
		}
		a.groupCols = append(a.groupCols, col)
	}
	for i, it := range n.items {
		a.accOf[i] = -1
		switch x := it.Expr.(type) {
		case *sqldb.Col:
			col, ok := vecResolveCol(scan, x)
			if !ok {
				return nil
			}
			a.items = append(a.items, vecAggItem{kind: 'c', col: col})
		case *sqldb.Call:
			if !x.IsAggregate() || x.Distinct {
				return nil
			}
			if x.Star {
				if x.Fn != "COUNT" {
					return nil
				}
				a.items = append(a.items, vecAggItem{kind: '*'})
				continue
			}
			switch x.Fn {
			case "COUNT", "SUM", "AVG", "MIN", "MAX":
			default:
				return nil
			}
			if len(x.Args) != 1 {
				return nil
			}
			c, ok := x.Args[0].(*sqldb.Col)
			if !ok {
				return nil
			}
			col, ok := vecResolveCol(scan, c)
			if !ok {
				return nil
			}
			a.accOf[i] = a.nAccs
			a.nAccs++
			a.items = append(a.items, vecAggItem{kind: 'a', col: col, fn: x.Fn})
		default:
			return nil
		}
	}
	idx, ok := vecOrderIdx(n.sel.OrderBy, n.items, n.cols)
	if !ok {
		return nil
	}
	a.orderIdx = idx
	return &vecNode{nodeBase: nodeBase{hint: n.hint}, inner: n, scan: scan, preds: preds, agg: a}
}

// compileVecProj attempts the vectorized rewrite of a plain-column
// projection directly over a scan.
func compileVecProj(n *projectNode) *vecNode {
	scan, ok := n.child.(*scanNode)
	if !ok {
		return nil
	}
	preds, ok := compileVecPreds(scan)
	if !ok {
		return nil
	}
	p := &vecProjPlan{}
	for _, it := range n.items {
		c, ok := it.Expr.(*sqldb.Col)
		if !ok {
			return nil
		}
		col, ok := vecResolveCol(scan, c)
		if !ok {
			return nil
		}
		p.cols = append(p.cols, col)
	}
	idx, ok := vecOrderIdx(n.sel.OrderBy, n.items, n.cols)
	if !ok {
		return nil
	}
	p.orderIdx = idx
	return &vecNode{nodeBase: nodeBase{hint: n.hint}, inner: n, scan: scan, preds: preds, proj: p}
}

// vectorize rewrites the vectorizable pipelines of a plan tree,
// descending through the streaming wrapper operators. Everything it
// does not recognize is left as built.
func (db *DB) vectorize(node planNode) planNode {
	return db.vectorizeBudget(node, -1)
}

// vectorizeBudget carries the row budget a LIMIT/OFFSET chain imposes
// on a streaming pipeline below it, so the first batch of a vectorized
// projection under LIMIT k reads O(k) rows — preserving the iterator
// model's short-circuit guarantee. Pipeline breakers (sort, top-k) and
// Distinct consume an unbounded amount of input, so they reset it.
func (db *DB) vectorizeBudget(node planNode, budget int) planNode {
	switch n := node.(type) {
	case *limitNode:
		n.child = db.vectorizeBudget(n.child, n.n)
	case *offsetNode:
		if budget >= 0 {
			budget += n.n
		}
		n.child = db.vectorizeBudget(n.child, budget)
	case *distinctNode:
		n.child = db.vectorizeBudget(n.child, -1)
	case *sortNode:
		n.child = db.vectorizeBudget(n.child, -1)
	case *topKNode:
		n.child = db.vectorizeBudget(n.child, -1)
	case *aggNode:
		if v := compileVecAgg(n); v != nil {
			return v
		}
		db.countVecFallback(n.child)
	case *projectNode:
		if v := compileVecProj(n); v != nil {
			if budget >= 0 && budget < vecBatchRamp[0] {
				v.firstBatch = budget
			}
			return v
		}
		db.countVecFallback(n.child)
	}
	return node
}

// countVecFallback counts pipelines that had the vectorizable shape
// (aggregate/project directly over a scan) but could not be compiled.
func (db *DB) countVecFallback(child planNode) {
	if db.obs == nil {
		return
	}
	if _, ok := child.(*scanNode); ok {
		db.obs.VecFallbacks.Inc()
	}
}

// --- the vecNode operator ---

// vecNode replaces an aggNode or projectNode (kept as its only child,
// so EXPLAIN still renders the logical pipeline) and executes the whole
// scan → filter → aggregate/project chain batch-at-a-time.
type vecNode struct {
	nodeBase
	inner planNode // the replaced aggregate/project node
	scan  *scanNode
	preds []vecPred
	agg   *vecAggPlan
	proj  *vecProjPlan

	// firstBatch overrides the first ramp step when a LIMIT above the
	// pipeline bounds how many rows will be pulled.
	firstBatch int

	batches  int64
	selRows  int64
	batchSel []int64
}

func (n *vecNode) kind() string         { return "vec" }
func (n *vecNode) children() []planNode { return []planNode{n.inner} }

func (n *vecNode) describe() string {
	shape := "project"
	if n.agg != nil {
		shape = "aggregate"
	}
	return fmt.Sprintf("VecPipeline(%s) [vec, batch<=%d]", shape, vecBatchMax)
}

// rowsPerBatch is the mean post-filter selection size, for EXPLAIN.
func (n *vecNode) rowsPerBatch() int64 {
	if n.batches == 0 {
		return 0
	}
	return n.selRows / n.batches
}

func (n *vecNode) open(ec *execCtx) (rowIter, error) {
	t := n.scan.src.t
	if t.obs != nil {
		if n.scan.access == accessSeq {
			t.obs.Scans.Inc()
		} else {
			t.obs.IndexHits.Inc()
		}
	}
	ver := n.scan.src.ver
	vc := ver.sidecar()
	runs := make([]predRun, len(n.preds))
	for i, p := range n.preds {
		runs[i] = compilePredRun(p, vc)
	}
	it := &vecIter{n: n, ec: ec, ex: &vecExec{n: n, rows: ver.rows, runs: runs}, vc: vc}
	if n.agg != nil {
		// Aggregation is a pipeline breaker, exactly like aggNode.
		if err := it.runAgg(); err != nil {
			return nil, err
		}
		it.done = true
	}
	return it, nil
}

// vecExec feeds batches of live row positions through the predicate
// kernels, reading the immutable open-time snapshot.
type vecExec struct {
	n      *vecNode
	rows   [][]any // the captured version's rows
	runs   []predRun
	cursor int
	ramp   int
	buf    []int
}

// nextBatch returns the next batch's surviving positions; ok=false when
// the scan is exhausted. Cancellation is polled once per batch.
func (e *vecExec) nextBatch(ec *execCtx) (sel []int, ok bool, err error) {
	size := vecBatchRamp[e.ramp]
	if e.ramp == 0 && e.n.firstBatch > 0 && e.n.firstBatch < size {
		size = e.n.firstBatch
	}
	if e.ramp < len(vecBatchRamp)-1 {
		e.ramp++
	}
	sc := e.n.scan
	e.buf = e.buf[:0]
	if sc.positions != nil {
		for e.cursor < len(sc.positions) && len(e.buf) < size {
			pos := sc.positions[e.cursor]
			e.cursor++
			if e.rows[pos] == nil {
				continue
			}
			sc.visited++
			e.buf = append(e.buf, pos)
		}
	} else {
		for e.cursor < len(e.rows) && len(e.buf) < size {
			pos := e.cursor
			e.cursor++
			if e.rows[pos] == nil {
				continue
			}
			sc.visited++
			e.buf = append(e.buf, pos)
		}
	}
	if len(e.buf) == 0 {
		return nil, false, nil
	}
	if err := ec.cc.now(); err != nil {
		return nil, false, err
	}
	sel = e.buf
	for i := range e.runs {
		if len(sel) == 0 {
			break
		}
		sel = e.runs[i].filter(e.rows, sel)
	}
	e.n.batches++
	e.n.selRows += int64(len(sel))
	e.n.batchSel = append(e.n.batchSel, int64(len(sel)))
	sc.st.rows += int64(len(sel))
	return sel, true, nil
}

type vecIter struct {
	n    *vecNode
	ec   *execCtx
	ex   *vecExec
	vc   *vecCache
	out  [][]any
	oi   int
	done bool
}

func (it *vecIter) Next() ([]any, error) {
	for it.oi >= len(it.out) {
		if it.done {
			return nil, io.EOF
		}
		if err := it.fill(); err != nil {
			return nil, err
		}
	}
	row := it.out[it.oi]
	it.oi++
	// The replaced node never opens, so keep its row count live for
	// EXPLAIN and the per-operator metrics.
	it.n.inner.stats().rows++
	return row, nil
}

// fill materializes the projection of one batch (streaming: a LIMIT
// above stops the scan after the current batch).
func (it *vecIter) fill() error {
	sel, ok, err := it.ex.nextBatch(it.ec)
	if err != nil {
		return err
	}
	if !ok {
		it.done = true
		return nil
	}
	p := it.n.proj
	rows := it.ex.rows
	width := len(p.cols) + len(p.orderIdx)
	out := it.out[:0]
	for _, pos := range sel {
		row := rows[pos]
		o := make([]any, width)
		for i, c := range p.cols {
			o[i] = row[c]
		}
		for j, oi := range p.orderIdx {
			o[len(p.cols)+j] = o[oi]
		}
		out = append(out, o)
	}
	it.out, it.oi = out, 0
	return nil
}

// --- vectorized aggregation ---

// vecAcc is one aggregate accumulator, mirroring aggEnv.aggregate:
// count of non-NULL inputs, parallel int/float sums (SUM stays integer
// until a float appears), and the current MIN/MAX candidate.
type vecAcc struct {
	count   int64
	isum    int64
	fsum    float64
	allInt  bool
	best    any
	hasBest bool
}

type vecGroup struct {
	firstPos int
	count    int64
	accs     []vecAcc
}

func newVecGroup(firstPos, nAccs int) vecGroup {
	g := vecGroup{firstPos: firstPos, accs: make([]vecAcc, nAccs)}
	for i := range g.accs {
		g.accs[i].allInt = true
	}
	return g
}

// runAgg consumes the whole scan, grouping and accumulating in place,
// then materializes the output rows in first-seen group order.
func (it *vecIter) runAgg() error {
	a := it.n.agg
	rows := it.ex.rows
	var groups []vecGroup

	// Group-id assignment: a single dictionary-encoded key indexes a
	// dense slot table by code (NULL gets the last slot); otherwise the
	// key columns are encoded into a hash key per row.
	var codes []uint32
	var slots []int32
	var byKey map[string]int
	if len(a.groupCols) == 1 && a.groupCols[0] < len(it.vc.codes) && it.vc.codes[a.groupCols[0]] != nil {
		codes = it.vc.codes[a.groupCols[0]]
		slots = make([]int32, len(it.vc.dicts[a.groupCols[0]].vals)+1)
		for i := range slots {
			slots[i] = -1
		}
	} else if len(a.groupCols) > 0 {
		byKey = make(map[string]int)
	}

	for {
		sel, ok, err := it.ex.nextBatch(it.ec)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, pos := range sel {
			row := rows[pos]
			var gid int
			switch {
			case slots != nil:
				slot := len(slots) - 1
				if c := codes[pos]; c != dictNull {
					slot = int(c)
				}
				if slots[slot] < 0 {
					slots[slot] = int32(len(groups))
					groups = append(groups, newVecGroup(pos, a.nAccs))
				}
				gid = int(slots[slot])
			case byKey != nil:
				k := encodeKeyCols(row, a.groupCols)
				g, seen := byKey[k]
				if !seen {
					g = len(groups)
					byKey[k] = g
					groups = append(groups, newVecGroup(pos, a.nAccs))
				}
				gid = g
			default:
				if len(groups) == 0 {
					groups = append(groups, newVecGroup(pos, a.nAccs))
				}
				gid = 0
			}
			g := &groups[gid]
			g.count++
			for i, item := range a.items {
				if item.kind != 'a' {
					continue
				}
				v := row[item.col]
				if v == nil {
					continue
				}
				acc := &g.accs[a.accOf[i]]
				switch item.fn {
				case "COUNT":
					acc.count++
				case "MIN":
					if !acc.hasBest || compare(v, acc.best) < 0 {
						acc.best, acc.hasBest = v, true
					}
				case "MAX":
					if !acc.hasBest || compare(v, acc.best) > 0 {
						acc.best, acc.hasBest = v, true
					}
				default: // SUM, AVG
					acc.count++
					if iv, isInt := v.(int64); isInt {
						acc.isum += iv
						acc.fsum += float64(iv)
					} else {
						f, numeric := toFloat(v)
						if !numeric {
							return fmt.Errorf("engine: %s over non-numeric value %T", item.fn, v)
						}
						acc.allInt = false
						acc.fsum += f
					}
				}
			}
		}
	}

	if len(groups) == 0 && len(a.groupCols) == 0 {
		// Aggregate over an empty input still yields one group.
		groups = append(groups, newVecGroup(-1, a.nAccs))
	}
	out := make([][]any, 0, len(groups))
	for gi := range groups {
		g := &groups[gi]
		row := make([]any, len(a.items)+len(a.orderIdx))
		for i, item := range a.items {
			switch item.kind {
			case 'c':
				if g.firstPos >= 0 {
					row[i] = rows[g.firstPos][item.col]
				}
			case '*':
				row[i] = g.count
			default: // 'a'
				acc := &g.accs[a.accOf[i]]
				switch item.fn {
				case "COUNT":
					row[i] = acc.count
				case "MIN", "MAX":
					if acc.hasBest {
						row[i] = acc.best
					}
				case "SUM":
					if acc.count > 0 {
						if acc.allInt {
							row[i] = acc.isum
						} else {
							row[i] = acc.fsum
						}
					}
				default: // AVG
					if acc.count > 0 {
						row[i] = acc.fsum / float64(acc.count)
					}
				}
			}
		}
		for j, oi := range a.orderIdx {
			row[len(a.items)+j] = row[oi]
		}
		out = append(out, row)
	}
	it.out = out
	return nil
}
