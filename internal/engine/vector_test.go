package engine

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"xmlrdb/internal/faultfs"
	"xmlrdb/internal/obs"
)

// vecDB builds a table with enough rows and value shapes (repeated
// strings, NULLs in two columns, integer spread) to exercise every
// vectorized kernel, plus a deterministic seed so failures reproduce.
func vecDB(tb testing.TB, rows int) *DB {
	tb.Helper()
	db := Open()
	_, _, err := db.ExecScript(`
CREATE TABLE ev (id INTEGER PRIMARY KEY, tag TEXT, val TEXT NOT NULL, n INTEGER);
`)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	tags := []string{"alpha", "beta", "gamma", "delta"}
	const chunk = 2000
	for at := 0; at < rows; at += chunk {
		k := chunk
		if at+k > rows {
			k = rows - at
		}
		batch := make([][]any, k)
		for i := range batch {
			id := at + i
			var tag any
			if rng.Intn(10) != 0 { // ~10% NULL tags
				tag = tags[rng.Intn(len(tags))]
			}
			var n any
			if rng.Intn(20) != 0 { // ~5% NULL n
				n = rng.Intn(1000)
			}
			batch[i] = []any{id, tag, fmt.Sprintf("v%d", id%97), n}
		}
		if _, err := db.InsertBatch("ev", batch); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

// vecEquivalenceQueries covers the vectorized shapes (dict and value
// kernels, grouped and global aggregates, projections under LIMIT) and
// shapes that must fall back — both paths have to agree on all of them.
var vecEquivalenceQueries = []string{
	`SELECT COUNT(*) FROM ev`,
	`SELECT COUNT(*) FROM ev WHERE tag = 'beta'`,
	`SELECT COUNT(*) FROM ev WHERE tag != 'beta'`,
	`SELECT COUNT(*) FROM ev WHERE tag IN ('alpha', 'gamma')`,
	`SELECT COUNT(*) FROM ev WHERE tag NOT IN ('alpha', 'gamma')`,
	`SELECT COUNT(*) FROM ev WHERE tag IS NULL`,
	`SELECT COUNT(*) FROM ev WHERE tag IS NOT NULL`,
	`SELECT COUNT(*) FROM ev WHERE tag = 'no-such-tag'`,
	`SELECT COUNT(*) FROM ev WHERE tag = 7`,
	`SELECT COUNT(*) FROM ev WHERE n >= 500`,
	`SELECT COUNT(*) FROM ev WHERE n < 500 AND tag = 'alpha'`,
	`SELECT tag, COUNT(*) AS c, SUM(n) AS s, AVG(n) AS a, MIN(n) AS lo, MAX(n) AS hi
	   FROM ev GROUP BY tag ORDER BY tag`,
	`SELECT tag, COUNT(n) AS c FROM ev WHERE n >= 100 GROUP BY tag ORDER BY c DESC, tag`,
	`SELECT val, COUNT(*) AS c FROM ev GROUP BY val ORDER BY val LIMIT 10`,
	`SELECT tag, val, COUNT(*) AS c FROM ev WHERE tag IN ('alpha', 'beta')
	   GROUP BY tag, val ORDER BY tag, val LIMIT 25`,
	`SELECT MIN(val) AS lo, MAX(val) AS hi, COUNT(*) AS c FROM ev`,
	`SELECT SUM(n) FROM ev WHERE tag = 'nothing-matches'`,
	`SELECT id, val FROM ev WHERE tag = 'gamma' ORDER BY id LIMIT 20`,
	`SELECT id FROM ev WHERE n IS NULL ORDER BY id LIMIT 20`,
	`SELECT val FROM ev LIMIT 3`,
	`SELECT val FROM ev ORDER BY id DESC LIMIT 5 OFFSET 2`,
	`SELECT DISTINCT tag FROM ev ORDER BY tag`,
	// Fallback shapes (LIKE, expressions, joins stay row-at-a-time).
	`SELECT COUNT(*) FROM ev WHERE val LIKE 'v1%'`,
	`SELECT id, n + 1 AS m FROM ev WHERE n > 990 ORDER BY id LIMIT 10`,
}

func runEquivalence(t *testing.T, db *DB) {
	t.Helper()
	for _, sql := range vecEquivalenceQueries {
		db.SetVectorized(true)
		vec, err := db.Query(sql)
		if err != nil {
			t.Fatalf("vec %q: %v", sql, err)
		}
		db.SetVectorized(false)
		row, err := db.Query(sql)
		if err != nil {
			t.Fatalf("row %q: %v", sql, err)
		}
		db.SetVectorized(true)
		if !reflect.DeepEqual(vec.Cols, row.Cols) || !reflect.DeepEqual(vec.Data, row.Data) {
			t.Errorf("%q: vectorized and row-at-a-time disagree\nvec: %v\nrow: %v",
				sql, vec.Data, row.Data)
		}
	}
}

// TestVecRowEquivalence pins the acceptance bar: the batched path must
// return byte-identical results to the row-at-a-time path on every
// supported and fallback shape — before ANALYZE (value kernels), after
// ANALYZE (dictionary kernels), and after post-ANALYZE writes (overlay
// dictionaries).
func TestVecRowEquivalence(t *testing.T) {
	db := vecDB(t, 5000)
	runEquivalence(t, db)

	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, db)

	// Post-ANALYZE writes: new strings outside the persisted dictionary,
	// plus deletes (holes in the code vector).
	if _, _, err := db.Exec(`INSERT INTO ev VALUES (100001, 'epsilon', 'fresh', 7)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`DELETE FROM ev WHERE id < 50`); err != nil {
		t.Fatal(err)
	}
	runEquivalence(t, db)
	if got := queryData(t, db, `SELECT COUNT(*) FROM ev WHERE tag = 'epsilon'`); got[0][0] != int64(1) {
		t.Errorf("overlay value not found: %v", got)
	}
}

// TestDictRoundTrip is the codec property: for every analyzed column,
// decoding each row's code through the dictionary reproduces the stored
// value exactly, and dictNull appears iff the value is SQL NULL.
func TestDictRoundTrip(t *testing.T) {
	db := vecDB(t, 3000)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	// Post-ANALYZE values must round-trip through the overlay too.
	if _, _, err := db.Exec(`INSERT INTO ev VALUES (100001, 'omega', 'overlay-only', NULL)`); err != nil {
		t.Fatal(err)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	tbl := db.tables["ev"]
	tbl.mu.RLock()
	defer tbl.mu.RUnlock()
	ver := tbl.capture(db.clock.Load())
	defer ver.release()
	vc := ver.sidecar()
	encoded := 0
	for c, codes := range vc.codes {
		if codes == nil {
			continue
		}
		encoded++
		d := vc.dicts[c]
		if len(codes) != len(tbl.rows) {
			t.Fatalf("col %d: %d codes for %d rows", c, len(codes), len(tbl.rows))
		}
		for pos, row := range tbl.rows {
			switch {
			case row == nil || row[c] == nil:
				if codes[pos] != dictNull {
					t.Fatalf("col %d pos %d: NULL coded as %d", c, pos, codes[pos])
				}
			case codes[pos] == dictNull:
				t.Fatalf("col %d pos %d: value %v coded as NULL", c, pos, row[c])
			case int(codes[pos]) >= len(d.vals):
				t.Fatalf("col %d pos %d: code %d out of range %d", c, pos, codes[pos], len(d.vals))
			case d.vals[codes[pos]] != row[c].(string):
				t.Fatalf("col %d pos %d: code %d decodes to %q, row holds %q",
					c, pos, codes[pos], d.vals[codes[pos]], row[c])
			}
		}
	}
	if encoded != 2 { // tag and val are TEXT; id and n are not
		t.Errorf("encoded %d columns, want 2", encoded)
	}
}

// TestDictRecovery proves dictionaries are durable state: they survive
// WAL replay, travel inside snapshots, and the recovered store is
// exactly (dumpState-identical to) the pre-crash store — including
// values inserted after ANALYZE that only the overlay knows.
func TestDictRecovery(t *testing.T) {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("data", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ExecScript(`
CREATE TABLE ev (id INTEGER PRIMARY KEY, tag TEXT, val TEXT NOT NULL);
INSERT INTO ev VALUES (1, 'alpha', 'x'), (2, 'beta', 'y'), (3, NULL, 'x');
`); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	// Snapshot with dictionary sections, then post-snapshot WAL traffic:
	// rows with out-of-dictionary strings and a second ANALYZE frame.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`INSERT INTO ev VALUES (4, 'gamma', 'z')`); err != nil {
		t.Fatal(err)
	}
	if err := db.AnalyzeTable("ev"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`INSERT INTO ev VALUES (5, 'delta', 'w')`); err != nil {
		t.Fatal(err)
	}
	want := dumpState(db)
	wantRows := queryData(t, db, `SELECT tag, COUNT(*) AS c FROM ev GROUP BY tag ORDER BY tag`)
	db.Close()

	re, err := OpenAtOpts("data", DurabilityOptions{FS: fs, VerifyOnRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := dumpState(re); got != want {
		t.Fatalf("recovered state differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if ds := re.DictStats("ev"); ds["tag"] != 3 || ds["val"] != 3 {
		t.Errorf("recovered dict stats = %v", ds)
	}
	if got := queryData(t, re, `SELECT tag, COUNT(*) AS c FROM ev GROUP BY tag ORDER BY tag`); !reflect.DeepEqual(got, wantRows) {
		t.Errorf("recovered query = %v, want %v", got, wantRows)
	}

	// A second checkpoint from the recovered store must also round-trip
	// (snapshot v2 dictionaries re-encode what recovery decoded).
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := OpenAtOpts("data", DurabilityOptions{FS: fs, VerifyOnRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := dumpState(re2); got != want {
		t.Fatalf("post-checkpoint recovery differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestDictSnapshotCompression pins the other half of the dictionary
// payoff: a snapshot of an analyzed store (codes instead of repeated
// strings) is measurably smaller than the unanalyzed snapshot of the
// same data.
func TestDictSnapshotCompression(t *testing.T) {
	load := func(analyze bool) int64 {
		fs := faultfs.NewMem()
		db, err := OpenAtOpts("data", DurabilityOptions{FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if _, _, err := db.Exec(`CREATE TABLE ev (id INTEGER PRIMARY KEY, tag TEXT NOT NULL)`); err != nil {
			t.Fatal(err)
		}
		batch := make([][]any, 5000)
		for i := range batch {
			batch[i] = []any{i, fmt.Sprintf("repeated-tag-value-%d", i%8)}
		}
		if _, err := db.InsertBatch("ev", batch); err != nil {
			t.Fatal(err)
		}
		if analyze {
			if err := db.Analyze(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		names, err := fs.List("data")
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			if !strings.HasSuffix(name, ".snap") {
				continue
			}
			f, err := fs.Open("data/" + name)
			if err != nil {
				t.Fatal(err)
			}
			data, err := io.ReadAll(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			return int64(len(data))
		}
		t.Fatal("no snapshot written")
		return 0
	}
	plain := load(false)
	encoded := load(true)
	if encoded >= plain*2/3 {
		t.Errorf("dictionary snapshot %d bytes, plain %d: want at least 1/3 smaller", encoded, plain)
	}
}

// TestVecExplainAndMetrics pins the observability surface: executed
// EXPLAIN carries the [vec] marker with batch counts, the metrics hub
// counts batches and per-batch rows, and an unvectorizable shape counts
// a fallback.
func TestVecExplainAndMetrics(t *testing.T) {
	db := vecDB(t, 5000)
	m := obs.New()
	db.SetMetrics(m)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}

	plan := planRows(t, db, `SELECT tag, COUNT(*) AS c FROM ev GROUP BY tag ORDER BY tag`)
	if !strings.Contains(plan, "[vec, batch<=1024]") || !strings.Contains(plan, "batches=") {
		t.Errorf("EXPLAIN lacks vec markers:\n%s", plan)
	}

	s := m.Snapshot()
	if s.Engine.VecBatches < 5 { // 5000 rows / 1024 with the ramp
		t.Errorf("VecBatches = %d, want >= 5", s.Engine.VecBatches)
	}
	if s.Engine.VecBatchRows.Count == 0 {
		t.Error("VecBatchRows histogram empty")
	}
	if s.Engine.VecFallbacks != 0 {
		t.Errorf("VecFallbacks = %d before any fallback", s.Engine.VecFallbacks)
	}

	if _, err := db.Query(`SELECT COUNT(*) FROM ev WHERE val LIKE 'v1%'`); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Engine.VecFallbacks; got == 0 {
		t.Error("LIKE pipeline did not count a vec fallback")
	}
}

// TestVecBatchRamp checks the adaptive batch sizing: a tiny LIMIT reads
// one small batch instead of a full 1024-row vector, and a full scan
// ramps 64 → 256 → 1024.
func TestVecBatchRamp(t *testing.T) {
	db := vecDB(t, 5000)

	plan := planRows(t, db, `SELECT val FROM ev LIMIT 3`)
	if !strings.Contains(plan, "batches=1 rows/batch=3") {
		t.Errorf("LIMIT 3 should read one 3-row batch:\n%s", plan)
	}

	plan = planRows(t, db, `SELECT tag, COUNT(*) AS c FROM ev GROUP BY tag`)
	// 5000 rows: 64 + 256 + 1024 + 1024 + 1024 + 1024 + 584 = 7 batches.
	if !strings.Contains(plan, "batches=7") {
		t.Errorf("full aggregate should ramp to 7 batches:\n%s", plan)
	}
}

// TestVecConcurrent hammers the vectorized path from many goroutines
// while writers concurrently invalidate and force rebuilds of the
// columnar sidecar. Run under -race this is the data-race proof for the
// vecCache publish/invalidate protocol.
func TestVecConcurrent(t *testing.T) {
	db := vecDB(t, 2000)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := db.Query(`SELECT tag, COUNT(*) AS c, MAX(val) AS m FROM ev GROUP BY tag`); err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			sql := fmt.Sprintf(`INSERT INTO ev VALUES (%d, 'writer', 'w%d', %d)`, 200000+i, i, i)
			if _, _, err := db.Exec(sql); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := queryData(t, db, `SELECT COUNT(*) FROM ev WHERE tag = 'writer'`); got[0][0] != int64(50) {
		t.Errorf("writer rows = %v, want 50", got[0][0])
	}
}

// BenchmarkVecAggregate is the E14 micro form: a scan-heavy grouped
// aggregate over 100k rows, per executor configuration. Every iteration
// re-checks the result against the row-at-a-time answer, so the
// one-iteration smoke run (make bench-vec-smoke) fails outright if the
// batched path ever diverges.
func BenchmarkVecAggregate(b *testing.B) {
	db := vecDB(b, 100_000)
	const sql = `SELECT tag, COUNT(*) AS c, SUM(n) AS s, MIN(n) AS lo, MAX(n) AS hi
	  FROM ev GROUP BY tag ORDER BY tag`
	db.SetVectorized(false)
	want, err := db.Query(sql)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := db.Query(sql)
			if err != nil {
				b.Fatal(err)
			}
			if !reflect.DeepEqual(got.Data, want.Data) {
				b.Fatalf("result diverged:\ngot  %v\nwant %v", got.Data, want.Data)
			}
		}
	}
	b.Run("row", func(b *testing.B) {
		db.SetVectorized(false)
		run(b)
	})
	b.Run("vec", func(b *testing.B) {
		db.SetVectorized(true)
		run(b)
	})
	b.Run("vec-dict", func(b *testing.B) {
		db.SetVectorized(true)
		if err := db.Analyze(); err != nil {
			b.Fatal(err)
		}
		run(b)
	})
}
