package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"xmlrdb/internal/faultfs"
	"xmlrdb/internal/obs"
)

// ErrNotDurable is returned by durability operations on a database that
// was opened without a data directory.
var ErrNotDurable = errors.New("engine: database is not durable (no data directory)")

// DurabilityOptions configures OpenAtOpts.
type DurabilityOptions struct {
	// SnapshotEvery takes a snapshot (and truncates the log) after this
	// many WAL frames; 0 disables automatic snapshots (Checkpoint can
	// still be called explicitly).
	SnapshotEvery int
	// Sync selects the durability-barrier policy (default SyncAlways).
	Sync SyncMode
	// Metrics, when non-nil, receives WAL/snapshot/recovery counters and
	// is attached to the recovered database (like SetMetrics).
	Metrics *obs.Metrics
	// FS overrides the filesystem — tests inject faults here. Nil means
	// the real OS filesystem.
	FS faultfs.FS
	// VerifyOnRecover runs VerifyIntegrity after recovery and fails the
	// open if the recovered state is internally inconsistent.
	VerifyOnRecover bool
	// AllowStale accepts a recovery that falls back past an unreadable
	// newer snapshot whose frames the WAL no longer covers (they were
	// deleted at checkpoint): committed data is knowingly lost and the
	// regression is counted in Metrics. Without it such an open fails —
	// silent time travel is worse than an error.
	AllowStale bool
}

// OpenAt opens a durable database rooted at dir, recovering whatever a
// previous process left there: the newest valid snapshot plus the WAL
// tail, stopping at the last valid frame (a torn or truncated final
// record is expected after a crash, not an error). An empty or missing
// directory yields an empty database. Every subsequent committed
// mutation is appended to the write-ahead log before the call returns.
func OpenAt(dir string) (*DB, error) {
	return OpenAtOpts(dir, DurabilityOptions{})
}

// OpenAtOpts is OpenAt with explicit durability options.
func OpenAtOpts(dir string, opts DurabilityOptions) (*DB, error) {
	fs := opts.FS
	if fs == nil {
		fs = faultfs.OS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("engine: open %s: %w", dir, err)
	}
	db := Open()
	start := time.Now()
	lastSeq, err := db.recoverFrom(fs, dir, opts.Metrics, opts.AllowStale)
	if err != nil {
		return nil, fmt.Errorf("engine: recover %s: %w", dir, err)
	}
	if opts.Metrics != nil {
		opts.Metrics.Recoveries.Inc()
		opts.Metrics.RecoveryLatency.ObserveDuration(time.Since(start))
	}
	if opts.VerifyOnRecover {
		if err := db.VerifyIntegrity(); err != nil {
			return nil, fmt.Errorf("engine: recover %s: %w", dir, err)
		}
	}
	w, err := newWALWriter(fs, dir, lastSeq, opts.Sync, opts.Metrics)
	if err != nil {
		return nil, fmt.Errorf("engine: open wal in %s: %w", dir, err)
	}
	db.wal = w
	db.walFS = fs
	db.walDir = dir
	db.snapshotEvery = opts.SnapshotEvery
	if opts.Metrics != nil {
		db.SetMetrics(opts.Metrics)
	}
	return db, nil
}

// recoverFrom rebuilds the state from the newest valid snapshot plus
// the contiguous valid WAL frames after it, and returns the last
// applied sequence number. The database is not yet shared, so no locks
// are taken; foreign-key enforcement is suspended during replay (the
// logged operations were validated when they first ran, and loaders may
// have toggled enforcement, which is a session setting, not data).
func (db *DB) recoverFrom(fs faultfs.FS, dir string, m *obs.Metrics, allowStale bool) (uint64, error) {
	segments, snapshots, err := listWALFiles(fs, dir)
	if err != nil {
		return 0, err
	}
	var snapSeq uint64
	var skippedSeq uint64 // newest unreadable snapshot we fell back past
	for i := len(snapshots) - 1; i >= 0; i-- {
		data, rerr := readAll(fs, filepath.Join(dir, snapshots[i]))
		var lerr error
		var tables map[string]*table
		var order []string
		var seq uint64
		if rerr == nil {
			tables, order, seq, lerr = loadSnapshot(data)
		}
		if rerr != nil || lerr != nil {
			// Fall back to an older snapshot, remembering how far forward
			// the broken one reached (its name carries the covered seq).
			if s, ok := parseSnapshotName(snapshots[i]); ok && s > skippedSeq {
				skippedSeq = s
			}
			continue
		}
		db.tables, db.order, snapSeq = tables, order, seq
		break
	}
	// Snapshot-loaded tables carry none of the MVCC bookkeeping
	// (loadSnapshot predates the catalog); wire them to this database's
	// epoch clock and give them a live refcount before replay.
	for _, t := range db.tables {
		t.clock = &db.clock
		t.liveRefs = &atomic.Int64{}
	}
	enforce := db.enforceFK
	db.enforceFK = false
	defer func() { db.enforceFK = enforce }()
	last := snapSeq
replay:
	for _, seg := range segments {
		data, rerr := readAll(fs, filepath.Join(dir, seg))
		if rerr != nil {
			continue // a vanished segment shows up as a sequence gap below
		}
		for _, fr := range decodeFrames(data) {
			if fr.seq <= snapSeq {
				continue // already covered by the snapshot
			}
			if fr.seq != last+1 {
				break replay // gap or duplicate: the durable prefix ends here
			}
			if err := db.applyFrame(fr); err != nil {
				return 0, fmt.Errorf("wal frame %d: %w", fr.seq, err)
			}
			last++
			if m != nil {
				m.WALReplayFrames.Inc()
			}
		}
	}
	// Falling back past a broken newer snapshot is only safe when the WAL
	// still covers the frames that snapshot did; checkpoints delete those
	// segments, so usually it does not — and the recovered state would
	// silently be older than what the last process committed.
	if skippedSeq > last {
		if !allowStale {
			return 0, fmt.Errorf(
				"engine: newest snapshot (seq %d) is unreadable and the wal ends at seq %d: recovery would lose committed data (set AllowStale to accept the older state)",
				skippedSeq, last)
		}
		if m != nil {
			m.RecoveryStaleFallbacks.Inc()
		}
	}
	return last, nil
}

// applyFrame re-executes one WAL frame. Payloads are fully decoded and
// validated before any mutation, so CRC-valid frames either apply
// exactly as they originally ran or fail the recovery with an error —
// never a panic, never a half-checked write.
func (db *DB) applyFrame(fr walFrame) error {
	r := &walReader{data: fr.payload}
	switch fr.kind {
	case frameInsert:
		name, err := r.str()
		if err != nil {
			return err
		}
		row, err := r.row()
		if err != nil {
			return err
		}
		_, err = db.insertLocked(context.Background(), name, row)
		return err

	case frameBatch:
		name, err := r.str()
		if err != nil {
			return err
		}
		rows, err := r.rows()
		if err != nil {
			return err
		}
		return db.replayBatch(name, rows)

	case frameMulti:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(fr.payload)) {
			return errWALCorrupt
		}
		names := make([]string, n)
		batches := make([][][]any, n)
		for i := range names {
			if names[i], err = r.str(); err != nil {
				return err
			}
			if batches[i], err = r.rows(); err != nil {
				return err
			}
		}
		starts := make(map[string]int)
		for i, name := range names {
			t := db.tables[name]
			if t == nil {
				db.rollbackMulti(starts)
				return fmt.Errorf("%w: %q", ErrNoTable, name)
			}
			if _, ok := starts[name]; !ok {
				starts[name] = len(t.rows)
			}
			for _, row := range batches[i] {
				stored, cerr := coerceRow(t, name, row)
				if cerr == nil {
					_, cerr = db.applyRowLocked(t, name, stored)
				}
				if cerr != nil {
					db.rollbackMulti(starts)
					return cerr
				}
			}
		}
		return nil

	case frameUpdate:
		name, err := r.str()
		if err != nil {
			return err
		}
		t := db.tables[name]
		if t == nil {
			return fmt.Errorf("%w: %q", ErrNoTable, name)
		}
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(fr.payload)) {
			return errWALCorrupt
		}
		positions := make([]int, n)
		rows := make([][]any, n)
		for i := range positions {
			p, perr := r.uvarint()
			if perr != nil {
				return perr
			}
			row, rerr := r.row()
			if rerr != nil {
				return rerr
			}
			if p >= uint64(len(t.rows)) || t.rows[p] == nil || len(row) != len(t.def.Columns) {
				return errWALCorrupt
			}
			positions[i], rows[i] = int(p), row
		}
		for i, pos := range positions {
			old, newRow := t.rows[pos], rows[i]
			for _, ix := range t.indexes {
				oldKey, newKey := ix.keyOf(old), ix.keyOf(newRow)
				if oldKey == newKey {
					continue
				}
				if ix.unique && len(ix.m[newKey]) > 0 {
					return fmt.Errorf("%w: replayed update duplicates key in %s (index %s)",
						ErrConstraint, name, ix.name)
				}
				ix.m[oldKey] = removeInt(ix.m[oldKey], pos)
				ix.m[newKey] = append(ix.m[newKey], pos)
			}
			t.rows[pos] = newRow
		}
		t.markOrderedDirty()
		return nil

	case frameDelete:
		name, err := r.str()
		if err != nil {
			return err
		}
		t := db.tables[name]
		if t == nil {
			return fmt.Errorf("%w: %q", ErrNoTable, name)
		}
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(fr.payload)) {
			return errWALCorrupt
		}
		positions := make([]int, n)
		for i := range positions {
			p, perr := r.uvarint()
			if perr != nil {
				return perr
			}
			if p >= uint64(len(t.rows)) || t.rows[p] == nil {
				return errWALCorrupt
			}
			positions[i] = int(p)
		}
		for _, pos := range positions {
			row := t.rows[pos]
			for _, ix := range t.indexes {
				key := ix.keyOf(row)
				ix.m[key] = removeInt(ix.m[key], pos)
			}
			t.rows[pos] = nil
		}
		t.markOrderedDirty()
		return nil

	case frameAnalyze:
		return db.applyAnalyzeFrame(r)

	case frameStats:
		return db.applyStatsFrame(r)

	case frameCompact:
		name, err := r.str()
		if err != nil {
			return err
		}
		keep, err := r.uvarint()
		if err != nil {
			return err
		}
		t := db.tables[name]
		if t == nil {
			return fmt.Errorf("%w: %q", ErrNoTable, name)
		}
		// db.wal is nil during recovery, so compactLocked's logCompact is
		// a no-op: the compaction re-runs deterministically and the logged
		// row count cross-checks it.
		if _, err := db.compactLocked(name, t); err != nil {
			return err
		}
		if uint64(len(t.rows)) != keep {
			return errWALCorrupt
		}
		return nil

	case frameDDL:
		var rec ddlRecord
		if err := json.Unmarshal(fr.payload, &rec); err != nil {
			return fmt.Errorf("engine: corrupt ddl frame: %w", err)
		}
		switch rec.Op {
		case "create_table":
			if rec.Def == nil || rec.Def.Name == "" {
				return errWALCorrupt
			}
			return db.CreateTable(rec.Def)
		case "create_index":
			if rec.Ordered {
				if len(rec.Cols) != 1 {
					return errWALCorrupt
				}
				return db.CreateOrderedIndex(rec.Name, rec.Table, rec.Cols[0])
			}
			return db.CreateIndex(rec.Name, rec.Table, rec.Cols, rec.Unique)
		case "drop_index":
			if rec.Ordered {
				return db.DropOrderedIndex(rec.Name)
			}
			return db.DropIndex(rec.Name)
		case "drop_table":
			return db.DropTable(rec.Name)
		default:
			return errWALCorrupt
		}

	default:
		return errWALCorrupt
	}
}

// replayBatch re-applies one logged batch atomically.
func (db *DB) replayBatch(name string, rows [][]any) error {
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	start := len(t.rows)
	for _, row := range rows {
		stored, err := coerceRow(t, name, row)
		if err == nil {
			_, err = db.applyRowLocked(t, name, stored)
		}
		if err != nil {
			db.rollbackToLocked(t, start)
			return err
		}
	}
	return nil
}

// rollbackMulti unwinds the tables touched by a partially-applied
// multi-table frame.
func (db *DB) rollbackMulti(starts map[string]int) {
	for name, start := range starts {
		if t := db.tables[name]; t != nil {
			db.rollbackToLocked(t, start)
		}
	}
}

// Checkpoint takes a snapshot of the current state, rotates the WAL to
// a fresh segment, and deletes the log and snapshot files the new
// snapshot makes redundant. It runs under read locks on every table, so
// it serializes against writers but not readers — and since cursors
// release their locks at open (MVCC snapshot reads, version.go), a
// slow streaming client can no longer wedge a checkpoint behind its
// open cursor.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return ErrNotDurable
	}
	start := time.Now()
	db.mu.RLock()
	defer db.mu.RUnlock()
	unlock := db.lockRows(nil, db.order)
	defer unlock()
	db.wal.mu.Lock()
	defer db.wal.mu.Unlock()
	if db.wal.broken != nil {
		return fmt.Errorf("engine: wal unavailable after earlier failure: %w", db.wal.broken)
	}
	seq := db.wal.seq
	if err := db.writeSnapshotLocked(db.walFS, db.walDir, seq); err != nil {
		return err
	}
	if err := db.wal.rotateLocked(seq); err != nil {
		return err
	}
	if db.obs != nil {
		db.obs.Snapshots.Inc()
		db.obs.SnapshotLatency.ObserveDuration(time.Since(start))
	}
	return nil
}

// maybeCheckpoint triggers an automatic checkpoint when the configured
// frame budget is used up. Called by the public mutators after their
// locks are released; a checkpoint failure is not the mutation's error
// (the mutation is durable in the WAL), and a broken writer surfaces on
// the next append.
func (db *DB) maybeCheckpoint() {
	w := db.wal
	if w == nil || db.snapshotEvery <= 0 {
		return
	}
	w.mu.Lock()
	due := w.frames >= db.snapshotEvery && w.broken == nil
	w.mu.Unlock()
	if due {
		_ = db.Checkpoint()
	}
}

// Close flushes and closes the write-ahead log. The in-memory state
// stays usable; on a non-durable database Close is a no-op.
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.close()
}

// VerifyIntegrity cross-checks the redundant state after a recovery:
// every hash index must agree with a fresh rebuild from the rows, and
// every foreign key must resolve. It is an assertion for tests and
// recovery auditing, not a normal-path operation.
func (db *DB) VerifyIntegrity() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	unlock := db.lockRows(nil, db.order)
	defer unlock()
	for _, name := range db.order {
		t := db.tables[name]
		for _, ix := range t.indexes {
			rebuilt := make(map[string][]int)
			for pos, row := range t.rows {
				if row == nil {
					continue
				}
				key := ix.keyOf(row)
				if ix.unique && len(rebuilt[key]) > 0 {
					return fmt.Errorf("%w: table %s index %s has duplicate key", ErrConstraint, name, ix.name)
				}
				rebuilt[key] = append(rebuilt[key], pos)
			}
			for key, want := range rebuilt {
				if !samePositions(ix.m[key], want) {
					return fmt.Errorf("engine: table %s index %s out of sync on key %q", name, ix.name, key)
				}
			}
			for key, have := range ix.m {
				if len(have) > 0 && len(rebuilt[key]) == 0 {
					return fmt.Errorf("engine: table %s index %s has dangling key %q", name, ix.name, key)
				}
			}
		}
		for _, fk := range t.def.ForeignKeys {
			for _, row := range t.rows {
				if row == nil {
					continue
				}
				if err := db.checkFKLocked(t, row, fk); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func samePositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// ---- WAL logging hooks (no-ops when the database is not durable) ----

func (db *DB) logInsert(ctx context.Context, table string, row []any) error {
	if db.wal == nil {
		return nil
	}
	payload, err := encodeInsertFrame(table, row)
	if err != nil {
		return err
	}
	return db.wal.appendCtx(ctx, frameInsert, payload)
}

func (db *DB) logBatch(table string, rows [][]any) error {
	if db.wal == nil {
		return nil
	}
	payload, err := encodeBatchFrame(table, rows)
	if err != nil {
		return err
	}
	return db.wal.append(frameBatch, payload)
}

func (db *DB) logMulti(tables []string, batches [][][]any) error {
	if db.wal == nil {
		return nil
	}
	payload, err := encodeMultiFrame(tables, batches)
	if err != nil {
		return err
	}
	return db.wal.append(frameMulti, payload)
}

func (db *DB) logUpdate(ctx context.Context, table string, positions []int, rows [][]any) error {
	if db.wal == nil || len(positions) == 0 {
		return nil
	}
	payload, err := encodeUpdateFrame(table, positions, rows)
	if err != nil {
		return err
	}
	return db.wal.appendCtx(ctx, frameUpdate, payload)
}

func (db *DB) logDelete(ctx context.Context, table string, positions []int) error {
	if db.wal == nil || len(positions) == 0 {
		return nil
	}
	return db.wal.appendCtx(ctx, frameDelete, encodeDeleteFrame(table, positions))
}

func (db *DB) logCompact(table string, keep int) error {
	if db.wal == nil {
		return nil
	}
	return db.wal.append(frameCompact, encodeCompactFrame(table, keep))
}

func (db *DB) logDDL(rec ddlRecord) error {
	if db.wal == nil {
		return nil
	}
	payload, err := encodeDDLFrame(rec)
	if err != nil {
		return err
	}
	return db.wal.append(frameDDL, payload)
}
