package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"xmlrdb/internal/faultfs"
	"xmlrdb/internal/rel"
)

// A snapshot is a full dump of the catalog and every table's row slice
// (holes included, so row positions — which WAL update/delete frames
// reference — survive the round trip) tagged with the WAL sequence
// number it covers:
//
//	8 bytes  magic "XRDBSNP2" (version 1 is still readable)
//	uvarint  covered WAL sequence number
//	uvarint  table count, then per table in creation order:
//	         uvarint-length-prefixed JSON snapTableHeader,
//	         per column named in the header's dict_cols, in order:
//	         uvarint value count + length-prefixed strings (the
//	         persisted dictionary in code order),
//	         uvarint slot count, then per slot 0x00 (hole) or
//	         0x01 + row in the WAL value codec extended with tag 'd'
//	         (uvarint dictionary code) for TEXT values found in the
//	         column's dictionary
//	uint32   IEEE CRC-32 of everything above (little endian)
//
// Dictionary compression is what makes snapshots of shredded corpora
// small: the repetitive element/attr-name and PCDATA strings collapse
// to one dictionary entry plus a varint code per occurrence.
//
// Snapshots are published atomically: written to a .tmp file, synced,
// then renamed into place. Hash-index contents are rebuilt from the
// rows on load; ordered indexes are recreated dirty and rebuild lazily.

var (
	snapMagic   = [8]byte{'X', 'R', 'D', 'B', 'S', 'N', 'P', '2'}
	snapMagicV1 = [8]byte{'X', 'R', 'D', 'B', 'S', 'N', 'P', '1'}
)

// snapTableHeader is the per-table JSON header of a snapshot.
type snapTableHeader struct {
	Def     *rel.Table    `json:"def"`
	Indexes []snapIndex   `json:"indexes,omitempty"`
	Ordered []snapOrdered `json:"ordered,omitempty"`
	// DictCols names the columns whose dictionaries follow the header,
	// in emission order.
	DictCols []string `json:"dict_cols,omitempty"`
	// Stats carries the table's ANALYZE statistics (stats.go). Absent
	// for unanalyzed tables and in snapshots written before statistics
	// existed — readers of either kind just plan without them.
	Stats *TableStats `json:"stats,omitempty"`
}

type snapIndex struct {
	Name   string   `json:"name"`
	Cols   []string `json:"cols"`
	Unique bool     `json:"unique,omitempty"`
	// Constraint marks the auto-created pk/unique indexes, which must
	// stay undroppable after recovery.
	Constraint bool `json:"constraint,omitempty"`
}

type snapOrdered struct {
	Name string `json:"name"`
	Col  string `json:"col"`
}

// appendSnapVal extends the WAL value codec with dictionary coding:
// TEXT values found in the column's persisted dictionary are written as
// 'd' + uvarint code; everything else (including post-ANALYZE strings
// the dictionary has never seen) uses the plain codec.
func appendSnapVal(buf []byte, v any, d *colDict) ([]byte, error) {
	if d != nil {
		if s, ok := v.(string); ok {
			if code, ok := d.lookup(s); ok {
				buf = append(buf, 'd')
				return binary.AppendUvarint(buf, uint64(code)), nil
			}
		}
	}
	return appendWALVal(buf, v)
}

func appendSnapRow(buf []byte, row []any, dicts []*colDict) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	var err error
	for i, v := range row {
		var d *colDict
		if i < len(dicts) {
			d = dicts[i]
		}
		if buf, err = appendSnapVal(buf, v, d); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// snapVal decodes one value, resolving 'd' tags against the column's
// dictionary.
func (r *walReader) snapVal(d *colDict) (any, error) {
	if r.pos < len(r.data) && r.data[r.pos] == 'd' {
		r.pos++
		code, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if d == nil || code >= uint64(len(d.vals)) {
			return nil, errWALCorrupt
		}
		return d.vals[code], nil
	}
	return r.val()
}

func (r *walReader) snapRow(dicts []*colDict) ([]any, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos) { // each value costs >= 1 byte
		return nil, errWALCorrupt
	}
	row := make([]any, n)
	for i := range row {
		var d *colDict
		if i < len(dicts) {
			d = dicts[i]
		}
		if row[i], err = r.snapVal(d); err != nil {
			return nil, err
		}
	}
	return row, nil
}

// encodeSnapshot serializes the database under the caller's locks
// (db.mu shared plus read locks on every table).
func (db *DB) encodeSnapshot(seq uint64) ([]byte, error) {
	buf := append([]byte(nil), snapMagic[:]...)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(db.order)))
	for _, name := range db.order {
		t := db.tables[name]
		hdr := snapTableHeader{Def: t.def, Stats: t.stats}
		for _, ix := range t.indexes {
			cols := make([]string, len(ix.cols))
			for i, c := range ix.cols {
				cols[i] = t.def.Columns[c].Name
			}
			hdr.Indexes = append(hdr.Indexes, snapIndex{Name: ix.name, Cols: cols, Unique: ix.unique, Constraint: ix.constraint})
		}
		for _, ox := range t.ordered {
			hdr.Ordered = append(hdr.Ordered, snapOrdered{Name: ox.name, Col: t.def.Columns[ox.col].Name})
		}
		var dicts []*colDict
		if len(t.dicts) == len(t.def.Columns) {
			dicts = t.dicts
			for c, d := range t.dicts {
				if d != nil {
					hdr.DictCols = append(hdr.DictCols, t.def.Columns[c].Name)
				}
			}
		}
		hj, err := json.Marshal(hdr)
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(hj)))
		buf = append(buf, hj...)
		for _, d := range dicts {
			if d == nil {
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(len(d.vals)))
			for _, s := range d.vals {
				buf = appendWALString(buf, s)
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(t.rows)))
		for _, row := range t.rows {
			if row == nil {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 1)
			if buf, err = appendSnapRow(buf, row, dicts); err != nil {
				return nil, err
			}
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// writeSnapshotLocked dumps the database to snap-<seq>.snap via a
// temp-file rename. The caller holds db.mu (shared), read locks on
// every table, and wal.mu — so the dump is exactly the state produced
// by frames 1..seq.
func (db *DB) writeSnapshotLocked(fs faultfs.FS, dir string, seq uint64) error {
	data, err := db.encodeSnapshot(seq)
	if err != nil {
		return err
	}
	final := filepath.Join(dir, snapshotName(seq))
	tmp := final + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	// The rename is not a durable directory entry until the directory
	// itself is fsynced; the caller deletes the now-redundant WAL
	// segments only after this barrier, so no crash can surface the
	// deletions without the snapshot.
	if err := fs.SyncDir(dir); err != nil {
		return err
	}
	if db.obs != nil {
		db.obs.WALFsyncs.Add(2) // snapshot content + directory entry
	}
	return nil
}

// loadSnapshot validates and decodes a snapshot into a fresh table set.
// Every length and name is checked before use, so corrupt input yields
// an error, never a panic; the CRC makes accidental corruption all but
// impossible to miss.
func loadSnapshot(data []byte) (tables map[string]*table, order []string, seq uint64, err error) {
	if len(data) < len(snapMagic)+4 {
		return nil, nil, 0, fmt.Errorf("engine: snapshot too short")
	}
	var withDicts bool
	switch string(data[:len(snapMagic)]) {
	case string(snapMagic[:]):
		withDicts = true
	case string(snapMagicV1[:]):
		withDicts = false
	default:
		return nil, nil, 0, fmt.Errorf("engine: bad snapshot magic")
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, nil, 0, fmt.Errorf("engine: snapshot checksum mismatch")
	}
	r := &walReader{data: body, pos: len(snapMagic)}
	if seq, err = r.uvarint(); err != nil {
		return nil, nil, 0, err
	}
	ntables, err := r.uvarint()
	if err != nil {
		return nil, nil, 0, err
	}
	if ntables > uint64(len(body)) {
		return nil, nil, 0, errWALCorrupt
	}
	tables = make(map[string]*table, ntables)
	for i := uint64(0); i < ntables; i++ {
		hlen, err := r.uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		hj, err := r.bytes(hlen)
		if err != nil {
			return nil, nil, 0, err
		}
		var hdr snapTableHeader
		if err := json.Unmarshal(hj, &hdr); err != nil {
			return nil, nil, 0, fmt.Errorf("engine: snapshot table header: %w", err)
		}
		if hdr.Def == nil || hdr.Def.Name == "" {
			return nil, nil, 0, fmt.Errorf("engine: snapshot table header missing definition")
		}
		if _, dup := tables[hdr.Def.Name]; dup {
			return nil, nil, 0, fmt.Errorf("engine: snapshot duplicates table %q", hdr.Def.Name)
		}
		t := &table{def: hdr.Def, indexes: make(map[string]*index), stats: hdr.Stats}
		for _, ixh := range hdr.Indexes {
			if _, dup := t.indexes[ixh.Name]; dup {
				return nil, nil, 0, fmt.Errorf("engine: snapshot duplicates index %q", ixh.Name)
			}
			if err := t.addIndex(ixh.Name, ixh.Cols, ixh.Unique, ixh.Constraint); err != nil {
				return nil, nil, 0, err
			}
		}
		for _, oxh := range hdr.Ordered {
			_, pos := t.def.Column(oxh.Col)
			if pos < 0 {
				return nil, nil, 0, fmt.Errorf("engine: snapshot ordered index %q on missing column %q", oxh.Name, oxh.Col)
			}
			if t.ordered == nil {
				t.ordered = make(map[string]*orderedIndex)
			}
			t.ordered[oxh.Name] = &orderedIndex{name: oxh.Name, col: pos, dirty: true}
		}
		// Dictionary sections, in dict_cols order.
		var dicts []*colDict
		if withDicts && len(hdr.DictCols) > 0 {
			dicts = make([]*colDict, len(t.def.Columns))
			for _, cn := range hdr.DictCols {
				_, pos := t.def.Column(cn)
				if pos < 0 {
					return nil, nil, 0, fmt.Errorf("engine: snapshot dictionary on missing column %q", cn)
				}
				if dicts[pos] != nil {
					return nil, nil, 0, fmt.Errorf("engine: snapshot duplicates dictionary for column %q", cn)
				}
				nvals, err := r.uvarint()
				if err != nil {
					return nil, nil, 0, err
				}
				if nvals > uint64(len(body)-r.pos)+1 {
					return nil, nil, 0, errWALCorrupt
				}
				d := newColDict(int(nvals))
				for j := uint64(0); j < nvals; j++ {
					s, err := r.str()
					if err != nil {
						return nil, nil, 0, err
					}
					d.add(s)
				}
				dicts[pos] = d
			}
			t.dicts = dicts
		} else if withDicts && hdr.DictCols != nil {
			// An analyzed table may legitimately have zero encoded columns;
			// keep a full-width nil slice so ANALYZE state survives.
			t.dicts = make([]*colDict, len(t.def.Columns))
		}
		nrows, err := r.uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		if nrows > uint64(len(body)-r.pos) { // each slot costs >= 1 byte
			return nil, nil, 0, errWALCorrupt
		}
		t.rows = make([][]any, 0, nrows)
		for j := uint64(0); j < nrows; j++ {
			tag, err := r.byte1()
			if err != nil {
				return nil, nil, 0, err
			}
			switch tag {
			case 0:
				t.rows = append(t.rows, nil)
			case 1:
				row, err := r.snapRow(dicts)
				if err != nil {
					return nil, nil, 0, err
				}
				if len(row) != len(t.def.Columns) {
					return nil, nil, 0, fmt.Errorf("engine: snapshot row width mismatch in %q", t.def.Name)
				}
				t.rows = append(t.rows, row)
			default:
				return nil, nil, 0, errWALCorrupt
			}
		}
		// Rebuild the hash-index contents from the rows.
		for pos, row := range t.rows {
			if row == nil {
				continue
			}
			for _, ix := range t.indexes {
				key := ix.keyOf(row)
				if ix.unique && len(ix.m[key]) > 0 {
					return nil, nil, 0, fmt.Errorf("%w: snapshot violates unique index %q", ErrConstraint, ix.name)
				}
				ix.m[key] = append(ix.m[key], pos)
			}
		}
		tables[hdr.Def.Name] = t
		order = append(order, hdr.Def.Name)
	}
	return tables, order, seq, nil
}
