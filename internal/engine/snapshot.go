package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"xmlrdb/internal/faultfs"
	"xmlrdb/internal/rel"
)

// A snapshot is a full dump of the catalog and every table's row slice
// (holes included, so row positions — which WAL update/delete frames
// reference — survive the round trip) tagged with the WAL sequence
// number it covers:
//
//	8 bytes  magic "XRDBSNP1"
//	uvarint  covered WAL sequence number
//	uvarint  table count, then per table in creation order:
//	         uvarint-length-prefixed JSON snapTableHeader,
//	         uvarint slot count, then per slot 0x00 (hole) or
//	         0x01 + row in the WAL value codec
//	uint32   IEEE CRC-32 of everything above (little endian)
//
// Snapshots are published atomically: written to a .tmp file, synced,
// then renamed into place. Hash-index contents are rebuilt from the
// rows on load; ordered indexes are recreated dirty and rebuild lazily.

var snapMagic = [8]byte{'X', 'R', 'D', 'B', 'S', 'N', 'P', '1'}

// snapTableHeader is the per-table JSON header of a snapshot.
type snapTableHeader struct {
	Def     *rel.Table    `json:"def"`
	Indexes []snapIndex   `json:"indexes,omitempty"`
	Ordered []snapOrdered `json:"ordered,omitempty"`
}

type snapIndex struct {
	Name   string   `json:"name"`
	Cols   []string `json:"cols"`
	Unique bool     `json:"unique,omitempty"`
	// Constraint marks the auto-created pk/unique indexes, which must
	// stay undroppable after recovery.
	Constraint bool `json:"constraint,omitempty"`
}

type snapOrdered struct {
	Name string `json:"name"`
	Col  string `json:"col"`
}

// encodeSnapshot serializes the database under the caller's locks
// (db.mu shared plus read locks on every table).
func (db *DB) encodeSnapshot(seq uint64) ([]byte, error) {
	buf := append([]byte(nil), snapMagic[:]...)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(db.order)))
	for _, name := range db.order {
		t := db.tables[name]
		hdr := snapTableHeader{Def: t.def}
		for _, ix := range t.indexes {
			cols := make([]string, len(ix.cols))
			for i, c := range ix.cols {
				cols[i] = t.def.Columns[c].Name
			}
			hdr.Indexes = append(hdr.Indexes, snapIndex{Name: ix.name, Cols: cols, Unique: ix.unique, Constraint: ix.constraint})
		}
		for _, ox := range t.ordered {
			hdr.Ordered = append(hdr.Ordered, snapOrdered{Name: ox.name, Col: t.def.Columns[ox.col].Name})
		}
		hj, err := json.Marshal(hdr)
		if err != nil {
			return nil, err
		}
		buf = binary.AppendUvarint(buf, uint64(len(hj)))
		buf = append(buf, hj...)
		buf = binary.AppendUvarint(buf, uint64(len(t.rows)))
		for _, row := range t.rows {
			if row == nil {
				buf = append(buf, 0)
				continue
			}
			buf = append(buf, 1)
			if buf, err = appendWALRow(buf, row); err != nil {
				return nil, err
			}
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// writeSnapshotLocked dumps the database to snap-<seq>.snap via a
// temp-file rename. The caller holds db.mu (shared), read locks on
// every table, and wal.mu — so the dump is exactly the state produced
// by frames 1..seq.
func (db *DB) writeSnapshotLocked(fs faultfs.FS, dir string, seq uint64) error {
	data, err := db.encodeSnapshot(seq)
	if err != nil {
		return err
	}
	final := filepath.Join(dir, snapshotName(seq))
	tmp := final + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	// The rename is not a durable directory entry until the directory
	// itself is fsynced; the caller deletes the now-redundant WAL
	// segments only after this barrier, so no crash can surface the
	// deletions without the snapshot.
	if err := fs.SyncDir(dir); err != nil {
		return err
	}
	if db.obs != nil {
		db.obs.WALFsyncs.Add(2) // snapshot content + directory entry
	}
	return nil
}

// loadSnapshot validates and decodes a snapshot into a fresh table set.
// Every length and name is checked before use, so corrupt input yields
// an error, never a panic; the CRC makes accidental corruption all but
// impossible to miss.
func loadSnapshot(data []byte) (tables map[string]*table, order []string, seq uint64, err error) {
	if len(data) < len(snapMagic)+4 {
		return nil, nil, 0, fmt.Errorf("engine: snapshot too short")
	}
	if string(data[:len(snapMagic)]) != string(snapMagic[:]) {
		return nil, nil, 0, fmt.Errorf("engine: bad snapshot magic")
	}
	body, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, nil, 0, fmt.Errorf("engine: snapshot checksum mismatch")
	}
	r := &walReader{data: body, pos: len(snapMagic)}
	if seq, err = r.uvarint(); err != nil {
		return nil, nil, 0, err
	}
	ntables, err := r.uvarint()
	if err != nil {
		return nil, nil, 0, err
	}
	if ntables > uint64(len(body)) {
		return nil, nil, 0, errWALCorrupt
	}
	tables = make(map[string]*table, ntables)
	for i := uint64(0); i < ntables; i++ {
		hlen, err := r.uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		hj, err := r.bytes(hlen)
		if err != nil {
			return nil, nil, 0, err
		}
		var hdr snapTableHeader
		if err := json.Unmarshal(hj, &hdr); err != nil {
			return nil, nil, 0, fmt.Errorf("engine: snapshot table header: %w", err)
		}
		if hdr.Def == nil || hdr.Def.Name == "" {
			return nil, nil, 0, fmt.Errorf("engine: snapshot table header missing definition")
		}
		if _, dup := tables[hdr.Def.Name]; dup {
			return nil, nil, 0, fmt.Errorf("engine: snapshot duplicates table %q", hdr.Def.Name)
		}
		t := &table{def: hdr.Def, indexes: make(map[string]*index)}
		for _, ixh := range hdr.Indexes {
			if _, dup := t.indexes[ixh.Name]; dup {
				return nil, nil, 0, fmt.Errorf("engine: snapshot duplicates index %q", ixh.Name)
			}
			if err := t.addIndex(ixh.Name, ixh.Cols, ixh.Unique, ixh.Constraint); err != nil {
				return nil, nil, 0, err
			}
		}
		for _, oxh := range hdr.Ordered {
			_, pos := t.def.Column(oxh.Col)
			if pos < 0 {
				return nil, nil, 0, fmt.Errorf("engine: snapshot ordered index %q on missing column %q", oxh.Name, oxh.Col)
			}
			if t.ordered == nil {
				t.ordered = make(map[string]*orderedIndex)
			}
			t.ordered[oxh.Name] = &orderedIndex{name: oxh.Name, col: pos, dirty: true}
		}
		nrows, err := r.uvarint()
		if err != nil {
			return nil, nil, 0, err
		}
		if nrows > uint64(len(body)-r.pos) { // each slot costs >= 1 byte
			return nil, nil, 0, errWALCorrupt
		}
		t.rows = make([][]any, 0, nrows)
		for j := uint64(0); j < nrows; j++ {
			tag, err := r.byte1()
			if err != nil {
				return nil, nil, 0, err
			}
			switch tag {
			case 0:
				t.rows = append(t.rows, nil)
			case 1:
				row, err := r.row()
				if err != nil {
					return nil, nil, 0, err
				}
				if len(row) != len(t.def.Columns) {
					return nil, nil, 0, fmt.Errorf("engine: snapshot row width mismatch in %q", t.def.Name)
				}
				t.rows = append(t.rows, row)
			default:
				return nil, nil, 0, errWALCorrupt
			}
		}
		// Rebuild the hash-index contents from the rows.
		for pos, row := range t.rows {
			if row == nil {
				continue
			}
			for _, ix := range t.indexes {
				key := ix.keyOf(row)
				if ix.unique && len(ix.m[key]) > 0 {
					return nil, nil, 0, fmt.Errorf("%w: snapshot violates unique index %q", ErrConstraint, ix.name)
				}
				ix.m[key] = append(ix.m[key], pos)
			}
		}
		tables[hdr.Def.Name] = t
		order = append(order, hdr.Def.Name)
	}
	return tables, order, seq, nil
}
