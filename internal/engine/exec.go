package engine

import (
	"fmt"

	"xmlrdb/internal/sqldb"
)

// SELECT execution is split Volcano-style: plan.go binds sources and
// builds the physical operator tree, operators.go streams rows through
// it one at a time, cursor.go exposes the pull loop (and materializes
// it for the non-streaming APIs). This file keeps the helpers both
// halves share: predicate/projection analysis and group-context
// expression evaluation.

// source is one table binding participating in a SELECT. ver is the
// immutable snapshot captured at cursor open (version.go): planning
// consults the live table under the open-time locks, execution reads
// only ver.
type source struct {
	ref  sqldb.TableRef
	t    *table
	ver  *tableVersion
	on   sqldb.Expr // explicit JOIN condition (nil for FROM items)
	left bool       // LEFT OUTER join
}

// extractEqualities finds "col = literal" predicates on the source and
// returns the column positions, literal values, and the remaining
// predicates.
func extractEqualities(preds []sqldb.Expr, src source, env *rowEnv) ([]int, []any, []sqldb.Expr, error) {
	var cols []int
	var vals []any
	var rest []sqldb.Expr
	for _, p := range preds {
		b, ok := p.(*sqldb.Bin)
		if !ok || b.Op != sqldb.OpEq {
			rest = append(rest, p)
			continue
		}
		col, lit := asColLit(b.L, b.R)
		if col == nil {
			col, lit = asColLit(b.R, b.L)
		}
		if col == nil || (col.Table != "" && col.Table != src.ref.Name()) {
			rest = append(rest, p)
			continue
		}
		_, pos := src.t.def.Column(col.Name)
		if pos < 0 {
			rest = append(rest, p)
			continue
		}
		v, err := evalConst(lit)
		if err != nil {
			rest = append(rest, p)
			continue
		}
		cols = append(cols, pos)
		vals = append(vals, v)
	}
	// Only use the index when a single equality matches an index exactly,
	// or try multi-column in given order.
	return cols, vals, rest, nil
}

func asColLit(a, b sqldb.Expr) (*sqldb.Col, sqldb.Expr) {
	c, ok := a.(*sqldb.Col)
	if !ok {
		return nil, nil
	}
	if _, isLit := b.(*sqldb.Lit); !isLit {
		return nil, nil
	}
	return c, b
}

func anyNil(vals []any) bool {
	for _, v := range vals {
		if v == nil {
			return true
		}
	}
	return false
}

// orderKey computes one sort key: an output alias or column name wins;
// otherwise the expression is evaluated in the supplied context.
func orderKey(oi sqldb.OrderItem, items []sqldb.SelectItem, cols []string, vals []any, eval func(sqldb.Expr) (any, error)) (any, error) {
	if c, ok := oi.Expr.(*sqldb.Col); ok && c.Table == "" {
		for i, name := range cols {
			if name == c.Name {
				// Prefer an explicit alias match; plain column names also
				// resolve here, which matches SQL's output-column rule.
				if items[i].Alias == c.Name || name == c.Name {
					return vals[i], nil
				}
			}
		}
	}
	// Positional ORDER BY n.
	if l, ok := oi.Expr.(*sqldb.Lit); ok {
		if n, isInt := l.Value.(int64); isInt && n >= 1 && int(n) <= len(vals) {
			return vals[n-1], nil
		}
	}
	return eval(oi.Expr)
}

// expandItems resolves the projection list: stars expand to their
// binding's columns; outputs get names.
func expandItems(s *sqldb.Select, env *rowEnv) ([]sqldb.SelectItem, []string, error) {
	var items []sqldb.SelectItem
	var cols []string
	for _, it := range s.Items {
		if !it.Star {
			items = append(items, it)
			name := it.Alias
			if name == "" {
				if c, ok := it.Expr.(*sqldb.Col); ok {
					name = c.Name
				} else {
					name = fmt.Sprintf("col%d", len(cols)+1)
				}
			}
			cols = append(cols, name)
			continue
		}
		for _, b := range env.bindings {
			if it.Table != "" && b.name != it.Table {
				continue
			}
			for _, c := range b.cols {
				items = append(items, sqldb.SelectItem{Expr: &sqldb.Col{Table: b.name, Name: c}})
				cols = append(cols, c)
			}
		}
	}
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("engine: empty projection")
	}
	return items, cols, nil
}

// aggEnv evaluates expressions in group context: aggregates fold over
// the group's rows; other column references bind to the group's first
// row.
type aggEnv struct {
	env  *rowEnv
	rows [][]any
}

func (g *aggEnv) eval(e sqldb.Expr) (any, error) {
	switch x := e.(type) {
	case *sqldb.Call:
		if x.IsAggregate() {
			return g.aggregate(x)
		}
	case *sqldb.Bin:
		l, err := g.eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := g.eval(x.R)
		if err != nil {
			return nil, err
		}
		return evalBin(&sqldb.Bin{Op: x.Op, L: &sqldb.Lit{Value: l}, R: &sqldb.Lit{Value: r}}, g.env)
	case *sqldb.Not:
		v, err := g.eval(x.X)
		if err != nil {
			return nil, err
		}
		return !truthy(v), nil
	case *sqldb.IsNull:
		v, err := g.eval(x.X)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Negate, nil
	case *sqldb.In:
		v, err := g.eval(x.X)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return false, nil
		}
		for _, cand := range x.List {
			cv, err := g.eval(cand)
			if err != nil {
				return nil, err
			}
			if equalVals(v, cv) {
				return !x.Negate, nil
			}
		}
		return x.Negate, nil
	case *sqldb.Like:
		v, err := g.eval(x.X)
		if err != nil {
			return nil, err
		}
		s, ok := v.(string)
		if !ok {
			return false, nil
		}
		return likeMatch(s, x.Pattern) != x.Negate, nil
	}
	// Non-aggregate leaf: evaluate against the first row of the group.
	if len(g.rows) > 0 {
		g.env.row = g.rows[0]
	} else {
		g.env.row = make([]any, g.env.width())
	}
	return evalExpr(e, g.env)
}

func (g *aggEnv) aggregate(c *sqldb.Call) (any, error) {
	if c.Star {
		if c.Fn != "COUNT" {
			return nil, fmt.Errorf("engine: %s(*) is not valid", c.Fn)
		}
		return int64(len(g.rows)), nil
	}
	if len(c.Args) != 1 {
		return nil, fmt.Errorf("engine: %s takes one argument", c.Fn)
	}
	var vals []any
	seen := make(map[string]bool)
	for _, row := range g.rows {
		g.env.row = row
		v, err := evalExpr(c.Args[0], g.env)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		if c.Distinct {
			k := encodeKey([]any{v})
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch c.Fn {
	case "COUNT":
		return int64(len(vals)), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cp := compare(v, best)
			if (c.Fn == "MIN" && cp < 0) || (c.Fn == "MAX" && cp > 0) {
				best = v
			}
		}
		return best, nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return nil, nil
		}
		allInt := true
		var fsum float64
		var isum int64
		for _, v := range vals {
			if i, ok := v.(int64); ok {
				isum += i
				fsum += float64(i)
				continue
			}
			allInt = false
			f, ok := toFloat(v)
			if !ok {
				return nil, fmt.Errorf("engine: %s over non-numeric value %T", c.Fn, v)
			}
			fsum += f
		}
		if c.Fn == "SUM" {
			if allInt {
				return isum, nil
			}
			return fsum, nil
		}
		return fsum / float64(len(vals)), nil
	default:
		return nil, fmt.Errorf("engine: unknown aggregate %s", c.Fn)
	}
}
