package engine

import (
	"fmt"
	"sort"

	"xmlrdb/internal/sqldb"
)

// source is one table binding participating in a SELECT.
type source struct {
	ref  sqldb.TableRef
	t    *table
	on   sqldb.Expr // explicit JOIN condition (nil for FROM items)
	left bool       // LEFT OUTER join
}

// execSelect plans and runs a SELECT: scans with pushed-down predicates
// (index scans for indexed equality), left-to-right joins (hash join on
// equi-predicates, else filtered nested loops), then grouping,
// having, ordering, projection, distinct and limit. cc (possibly nil)
// polls for context cancellation between rows; a cancelled SELECT
// returns the context's error and no rows.
func (db *DB) execSelect(s *sqldb.Select, cc *cancelCheck) (*Rows, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()

	// Bind sources.
	var srcs []source
	for _, ref := range s.From {
		t := db.tables[ref.Table]
		if t == nil {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, ref.Table)
		}
		srcs = append(srcs, source{ref: ref, t: t})
	}
	for _, j := range s.Joins {
		t := db.tables[j.Ref.Table]
		if t == nil {
			return nil, fmt.Errorf("%w: %q", ErrNoTable, j.Ref.Table)
		}
		srcs = append(srcs, source{ref: j.Ref, t: t, on: j.On, left: j.Left})
	}

	// Row locks on every source table (lockRows dedupes repeated
	// bindings of the same table).
	reads := make([]string, 0, len(srcs))
	for _, src := range srcs {
		reads = append(reads, src.ref.Table)
	}
	unlock := db.lockRows(nil, reads)
	defer unlock()

	// Build the full environment metadata (all bindings).
	env := &rowEnv{}
	offset := 0
	seen := make(map[string]bool)
	for _, src := range srcs {
		name := src.ref.Name()
		if seen[name] {
			return nil, fmt.Errorf("engine: duplicate table binding %q", name)
		}
		seen[name] = true
		env.bindings = append(env.bindings, envBinding{
			name: name, cols: src.t.def.ColumnNames(), offset: offset,
		})
		offset += len(src.t.def.Columns)
	}

	// Classify WHERE conjuncts.
	whereConjs := splitAnd(s.Where)
	bindingIdx := make(map[string]int, len(srcs))
	for i, src := range srcs {
		bindingIdx[src.ref.Name()] = i
	}
	// leftProtected marks bindings on the null-padded side of a LEFT
	// join: WHERE predicates on them must not be pushed into their scan.
	leftProtected := make([]bool, len(srcs))
	for i, src := range srcs {
		if src.left {
			leftProtected[i] = true
		}
	}
	type classified struct {
		expr    sqldb.Expr
		maxBind int // highest binding index referenced
		binds   map[string]bool
	}
	var pushed [][]sqldb.Expr = make([][]sqldb.Expr, len(srcs))
	var joinConjs []classified
	var residual []sqldb.Expr
	for _, c := range whereConjs {
		refs, err := exprRefs(c, env)
		if err != nil {
			return nil, err
		}
		maxB, only := -1, -1
		for name := range refs {
			bi, ok := bindingIdx[name]
			if !ok {
				return nil, fmt.Errorf("engine: unknown table %q in WHERE", name)
			}
			if bi > maxB {
				maxB = bi
			}
			only = bi
		}
		switch {
		case len(refs) == 0:
			residual = append(residual, c)
		case len(refs) == 1 && !leftProtected[only]:
			pushed[only] = append(pushed[only], c)
		case anyLeftAtOrBelow(leftProtected, maxB):
			// Mixed predicates involving LEFT-join sides stay residual to
			// preserve outer-join semantics.
			residual = append(residual, c)
		default:
			joinConjs = append(joinConjs, classified{expr: c, maxBind: maxB, binds: refs})
		}
	}

	// Join pipeline.
	rows, err := db.scanSource(srcs[0], env, pushed[0], cc)
	if err != nil {
		return nil, err
	}
	for bi := 1; bi < len(srcs); bi++ {
		src := srcs[bi]
		// Gather applicable conditions: the source's ON conjuncts plus
		// WHERE join conjuncts whose bindings are all available now.
		var conds []sqldb.Expr
		conds = append(conds, splitAnd(src.on)...)
		if !src.left {
			rest := joinConjs[:0]
			for _, jc := range joinConjs {
				if jc.maxBind == bi {
					conds = append(conds, jc.expr)
				} else {
					rest = append(rest, jc)
				}
			}
			joinConjs = rest
		}
		inner, err := db.scanSource(src, env, pushed[bi], cc)
		if err != nil {
			return nil, err
		}
		rows, err = joinRows(rows, inner, srcs, bi, conds, env, src.left, cc)
		if err != nil {
			return nil, err
		}
	}
	// Any join conjuncts never consumed (e.g. referencing only later
	// bindings under LEFT joins) become residual filters.
	for _, jc := range joinConjs {
		residual = append(residual, jc.expr)
	}

	// Residual WHERE.
	if len(residual) > 0 {
		var kept [][]any
		for _, row := range rows {
			if err := cc.step(); err != nil {
				return nil, err
			}
			env.row = row
			ok := true
			for _, c := range residual {
				v, err := evalExpr(c, env)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	return db.project(s, env, rows, cc)
}

func anyLeftAtOrBelow(leftProtected []bool, maxB int) bool {
	for i := 0; i <= maxB && i < len(leftProtected); i++ {
		if leftProtected[i] {
			return true
		}
	}
	return false
}

// scanSource produces the (filtered) rows of one source, widened to the
// full environment layout with their binding's columns filled in.
func (db *DB) scanSource(src source, env *rowEnv, preds []sqldb.Expr, cc *cancelCheck) ([][]any, error) {
	bi := -1
	for i, b := range env.bindings {
		if b.name == src.ref.Name() {
			bi = i
			break
		}
	}
	b := env.bindings[bi]
	width := env.width()

	// Index scan: find an equality predicate set covered by one index.
	candidates := src.t.rows
	var fromIndex []int
	eqCols, eqVals, restPreds, err := extractEqualities(preds, src, env)
	if err != nil {
		return nil, err
	}
	if len(eqCols) > 0 {
		if ix := src.t.findIndex(eqCols); ix != nil {
			// A consulted index with no postings must yield an empty scan,
			// not nil: nil means "no index", and falling through to the
			// full scan would drop the consumed equality predicates from
			// restPreds and return every row.
			if fromIndex = ix.m[encodeKey(eqVals)]; fromIndex == nil {
				fromIndex = []int{}
			}
		} else {
			restPreds = preds // no hash index: evaluate all predicates per row
		}
	} else {
		restPreds = preds
	}
	if fromIndex == nil {
		// Range scan via an ordered index; every predicate is still
		// re-checked per row, so the window is purely an optimization.
		if ix, bounds, ok := extractRange(preds, src); ok {
			fromIndex = ix.scan(src.t, bounds)
			restPreds = preds
			if fromIndex == nil {
				fromIndex = []int{}
			}
		}
	}

	localEnv := &rowEnv{bindings: env.bindings}
	var out [][]any
	emit := func(row []any) error {
		if err := cc.step(); err != nil {
			return err
		}
		wide := make([]any, width)
		copy(wide[b.offset:], row)
		localEnv.row = wide
		for _, p := range restPreds {
			v, err := evalExpr(p, localEnv)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		out = append(out, wide)
		return nil
	}
	if fromIndex != nil {
		if src.t.obs != nil {
			src.t.obs.IndexHits.Inc()
			src.t.obs.RowsScanned.Add(int64(len(fromIndex)))
		}
		for _, pos := range fromIndex {
			row := src.t.rows[pos]
			if row == nil {
				continue
			}
			if err := emit(row); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if src.t.obs != nil {
		src.t.obs.Scans.Inc()
		src.t.obs.RowsScanned.Add(int64(len(candidates)))
	}
	for _, row := range candidates {
		if row == nil {
			continue
		}
		if err := emit(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// extractEqualities finds "col = literal" predicates on the source and
// returns the column positions, literal values, and the remaining
// predicates.
func extractEqualities(preds []sqldb.Expr, src source, env *rowEnv) ([]int, []any, []sqldb.Expr, error) {
	var cols []int
	var vals []any
	var rest []sqldb.Expr
	for _, p := range preds {
		b, ok := p.(*sqldb.Bin)
		if !ok || b.Op != sqldb.OpEq {
			rest = append(rest, p)
			continue
		}
		col, lit := asColLit(b.L, b.R)
		if col == nil {
			col, lit = asColLit(b.R, b.L)
		}
		if col == nil || (col.Table != "" && col.Table != src.ref.Name()) {
			rest = append(rest, p)
			continue
		}
		_, pos := src.t.def.Column(col.Name)
		if pos < 0 {
			rest = append(rest, p)
			continue
		}
		v, err := evalConst(lit)
		if err != nil {
			rest = append(rest, p)
			continue
		}
		cols = append(cols, pos)
		vals = append(vals, v)
	}
	// Only use the index when a single equality matches an index exactly,
	// or try multi-column in given order.
	return cols, vals, rest, nil
}

func asColLit(a, b sqldb.Expr) (*sqldb.Col, sqldb.Expr) {
	c, ok := a.(*sqldb.Col)
	if !ok {
		return nil, nil
	}
	if _, isLit := b.(*sqldb.Lit); !isLit {
		return nil, nil
	}
	return c, b
}

// joinRows joins the accumulated rows with the new source's rows using a
// hash join on equi-conditions when possible, else a filtered nested
// loop. Rows are full-width; the new source's columns are merged in.
func joinRows(outer, inner [][]any, srcs []source, bi int, conds []sqldb.Expr, env *rowEnv, left bool, cc *cancelCheck) ([][]any, error) {
	b := env.bindings[bi]
	// Find equi conditions col(earlier) = col(current).
	type equi struct{ outerIdx, innerIdx int }
	var equis []equi
	var others []sqldb.Expr
	for _, c := range conds {
		bin, ok := c.(*sqldb.Bin)
		if !ok || bin.Op != sqldb.OpEq {
			others = append(others, c)
			continue
		}
		lc, lok := bin.L.(*sqldb.Col)
		rc, rok := bin.R.(*sqldb.Col)
		if !lok || !rok {
			others = append(others, c)
			continue
		}
		li, lerr := env.resolve(lc.Table, lc.Name)
		ri, rerr := env.resolve(rc.Table, rc.Name)
		if lerr != nil || rerr != nil {
			others = append(others, c)
			continue
		}
		lIsInner := li >= b.offset && li < b.offset+len(b.cols)
		rIsInner := ri >= b.offset && ri < b.offset+len(b.cols)
		switch {
		case lIsInner && !rIsInner:
			equis = append(equis, equi{outerIdx: ri, innerIdx: li})
		case rIsInner && !lIsInner:
			equis = append(equis, equi{outerIdx: li, innerIdx: ri})
		default:
			others = append(others, c)
		}
	}

	evalOthers := func(merged []any) (bool, error) {
		env.row = merged
		for _, c := range others {
			v, err := evalExpr(c, env)
			if err != nil {
				return false, err
			}
			if !truthy(v) {
				return false, nil
			}
		}
		return true, nil
	}
	merge := func(o, in []any) []any {
		m := append([]any(nil), o...)
		copy(m[b.offset:b.offset+len(b.cols)], in[b.offset:b.offset+len(b.cols)])
		return m
	}

	var out [][]any
	if len(equis) > 0 {
		// Hash join: build on inner.
		build := make(map[string][][]any, len(inner))
		keyBuf := make([]any, len(equis))
		for _, in := range inner {
			for i, e := range equis {
				keyBuf[i] = in[e.innerIdx]
			}
			if anyNil(keyBuf) {
				continue
			}
			k := encodeKey(keyBuf)
			build[k] = append(build[k], in)
		}
		for _, o := range outer {
			if err := cc.step(); err != nil {
				return nil, err
			}
			for i, e := range equis {
				keyBuf[i] = o[e.outerIdx]
			}
			matched := false
			if !anyNil(keyBuf) {
				for _, in := range build[encodeKey(keyBuf)] {
					m := merge(o, in)
					ok, err := evalOthers(m)
					if err != nil {
						return nil, err
					}
					if ok {
						out = append(out, m)
						matched = true
					}
				}
			}
			if left && !matched {
				out = append(out, o) // inner columns stay NULL
			}
		}
		return out, nil
	}
	// Nested loop.
	for _, o := range outer {
		matched := false
		for _, in := range inner {
			if err := cc.step(); err != nil {
				return nil, err
			}
			m := merge(o, in)
			ok, err := evalOthers(m)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, m)
				matched = true
			}
		}
		if left && !matched {
			out = append(out, o)
		}
	}
	return out, nil
}

func anyNil(vals []any) bool {
	for _, v := range vals {
		if v == nil {
			return true
		}
	}
	return false
}

// project applies grouping/aggregation, HAVING, ORDER BY, projection,
// DISTINCT and LIMIT.
func (db *DB) project(s *sqldb.Select, env *rowEnv, rows [][]any, cc *cancelCheck) (*Rows, error) {
	// Expand stars and name outputs.
	items, cols, err := expandItems(s, env)
	if err != nil {
		return nil, err
	}

	aggregated := len(s.GroupBy) > 0 || hasAggregate(s.Having)
	for _, it := range items {
		if it.Expr != nil && hasAggregate(it.Expr) {
			aggregated = true
		}
	}
	for _, oi := range s.OrderBy {
		if hasAggregate(oi.Expr) {
			aggregated = true
		}
	}

	type outRow struct {
		vals []any
		sort []any
	}
	var outs []outRow

	if aggregated {
		// Group rows.
		groups := make(map[string][][]any)
		var order []string
		for _, row := range rows {
			if err := cc.step(); err != nil {
				return nil, err
			}
			env.row = row
			keyVals := make([]any, len(s.GroupBy))
			for i, g := range s.GroupBy {
				v, err := evalExpr(g, env)
				if err != nil {
					return nil, err
				}
				keyVals[i] = v
			}
			k := encodeKey(keyVals)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], row)
		}
		if len(s.GroupBy) == 0 && len(order) == 0 {
			// Aggregate over an empty input still yields one group.
			order = append(order, "")
			groups[""] = nil
		}
		for _, k := range order {
			grows := groups[k]
			genv := &aggEnv{env: env, rows: grows}
			if s.Having != nil {
				v, err := genv.eval(s.Having)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					continue
				}
			}
			o := outRow{vals: make([]any, len(items))}
			for i, it := range items {
				v, err := genv.eval(it.Expr)
				if err != nil {
					return nil, err
				}
				o.vals[i] = v
			}
			for _, oi := range s.OrderBy {
				v, err := orderKey(oi, items, cols, o.vals, func(e sqldb.Expr) (any, error) { return genv.eval(e) })
				if err != nil {
					return nil, err
				}
				o.sort = append(o.sort, v)
			}
			outs = append(outs, o)
		}
	} else {
		for _, row := range rows {
			if err := cc.step(); err != nil {
				return nil, err
			}
			env.row = row
			o := outRow{vals: make([]any, len(items))}
			for i, it := range items {
				v, err := evalExpr(it.Expr, env)
				if err != nil {
					return nil, err
				}
				o.vals[i] = v
			}
			for _, oi := range s.OrderBy {
				envRow := row
				v, err := orderKey(oi, items, cols, o.vals, func(e sqldb.Expr) (any, error) {
					env.row = envRow
					return evalExpr(e, env)
				})
				if err != nil {
					return nil, err
				}
				o.sort = append(o.sort, v)
			}
			outs = append(outs, o)
		}
	}

	// ORDER BY.
	if len(s.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			for k, oi := range s.OrderBy {
				c := compare(outs[i].sort[k], outs[j].sort[k])
				if c != 0 {
					if oi.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}

	// DISTINCT.
	if s.Distinct {
		seen := make(map[string]bool, len(outs))
		kept := outs[:0]
		for _, o := range outs {
			k := encodeKey(o.vals)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, o)
			}
		}
		outs = kept
	}

	// OFFSET / LIMIT.
	if s.Offset > 0 {
		if s.Offset >= len(outs) {
			outs = nil
		} else {
			outs = outs[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < len(outs) {
		outs = outs[:s.Limit]
	}

	res := &Rows{Cols: cols}
	for _, o := range outs {
		res.Data = append(res.Data, o.vals)
	}
	return res, nil
}

// orderKey computes one sort key: an output alias or column name wins;
// otherwise the expression is evaluated in the supplied context.
func orderKey(oi sqldb.OrderItem, items []sqldb.SelectItem, cols []string, vals []any, eval func(sqldb.Expr) (any, error)) (any, error) {
	if c, ok := oi.Expr.(*sqldb.Col); ok && c.Table == "" {
		for i, name := range cols {
			if name == c.Name {
				// Prefer an explicit alias match; plain column names also
				// resolve here, which matches SQL's output-column rule.
				if items[i].Alias == c.Name || name == c.Name {
					return vals[i], nil
				}
			}
		}
	}
	// Positional ORDER BY n.
	if l, ok := oi.Expr.(*sqldb.Lit); ok {
		if n, isInt := l.Value.(int64); isInt && n >= 1 && int(n) <= len(vals) {
			return vals[n-1], nil
		}
	}
	return eval(oi.Expr)
}

// expandItems resolves the projection list: stars expand to their
// binding's columns; outputs get names.
func expandItems(s *sqldb.Select, env *rowEnv) ([]sqldb.SelectItem, []string, error) {
	var items []sqldb.SelectItem
	var cols []string
	for _, it := range s.Items {
		if !it.Star {
			items = append(items, it)
			name := it.Alias
			if name == "" {
				if c, ok := it.Expr.(*sqldb.Col); ok {
					name = c.Name
				} else {
					name = fmt.Sprintf("col%d", len(cols)+1)
				}
			}
			cols = append(cols, name)
			continue
		}
		for _, b := range env.bindings {
			if it.Table != "" && b.name != it.Table {
				continue
			}
			for _, c := range b.cols {
				items = append(items, sqldb.SelectItem{Expr: &sqldb.Col{Table: b.name, Name: c}})
				cols = append(cols, c)
			}
		}
	}
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("engine: empty projection")
	}
	return items, cols, nil
}

// aggEnv evaluates expressions in group context: aggregates fold over
// the group's rows; other column references bind to the group's first
// row.
type aggEnv struct {
	env  *rowEnv
	rows [][]any
}

func (g *aggEnv) eval(e sqldb.Expr) (any, error) {
	switch x := e.(type) {
	case *sqldb.Call:
		if x.IsAggregate() {
			return g.aggregate(x)
		}
	case *sqldb.Bin:
		l, err := g.eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := g.eval(x.R)
		if err != nil {
			return nil, err
		}
		return evalBin(&sqldb.Bin{Op: x.Op, L: &sqldb.Lit{Value: l}, R: &sqldb.Lit{Value: r}}, g.env)
	case *sqldb.Not:
		v, err := g.eval(x.X)
		if err != nil {
			return nil, err
		}
		return !truthy(v), nil
	case *sqldb.IsNull:
		v, err := g.eval(x.X)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Negate, nil
	case *sqldb.In:
		v, err := g.eval(x.X)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return false, nil
		}
		for _, cand := range x.List {
			cv, err := g.eval(cand)
			if err != nil {
				return nil, err
			}
			if equalVals(v, cv) {
				return !x.Negate, nil
			}
		}
		return x.Negate, nil
	case *sqldb.Like:
		v, err := g.eval(x.X)
		if err != nil {
			return nil, err
		}
		s, ok := v.(string)
		if !ok {
			return false, nil
		}
		return likeMatch(s, x.Pattern) != x.Negate, nil
	}
	// Non-aggregate leaf: evaluate against the first row of the group.
	if len(g.rows) > 0 {
		g.env.row = g.rows[0]
	} else {
		g.env.row = make([]any, g.env.width())
	}
	return evalExpr(e, g.env)
}

func (g *aggEnv) aggregate(c *sqldb.Call) (any, error) {
	if c.Star {
		if c.Fn != "COUNT" {
			return nil, fmt.Errorf("engine: %s(*) is not valid", c.Fn)
		}
		return int64(len(g.rows)), nil
	}
	if len(c.Args) != 1 {
		return nil, fmt.Errorf("engine: %s takes one argument", c.Fn)
	}
	var vals []any
	seen := make(map[string]bool)
	for _, row := range g.rows {
		g.env.row = row
		v, err := evalExpr(c.Args[0], g.env)
		if err != nil {
			return nil, err
		}
		if v == nil {
			continue
		}
		if c.Distinct {
			k := encodeKey([]any{v})
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch c.Fn {
	case "COUNT":
		return int64(len(vals)), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cp := compare(v, best)
			if (c.Fn == "MIN" && cp < 0) || (c.Fn == "MAX" && cp > 0) {
				best = v
			}
		}
		return best, nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return nil, nil
		}
		allInt := true
		var fsum float64
		var isum int64
		for _, v := range vals {
			if i, ok := v.(int64); ok {
				isum += i
				fsum += float64(i)
				continue
			}
			allInt = false
			f, ok := toFloat(v)
			if !ok {
				return nil, fmt.Errorf("engine: %s over non-numeric value %T", c.Fn, v)
			}
			fsum += f
		}
		if c.Fn == "SUM" {
			if allInt {
				return isum, nil
			}
			return fsum, nil
		}
		return fsum / float64(len(vals)), nil
	default:
		return nil, fmt.Errorf("engine: unknown aggregate %s", c.Fn)
	}
}
