package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"xmlrdb/internal/obs"
)

// obsDB opens a one-table engine with a fresh metrics hub attached.
func obsDB(t *testing.T) (*DB, *obs.Metrics) {
	t.Helper()
	db := Open()
	m := obs.New()
	db.SetMetrics(m)
	_, _, err := db.ExecScript(`
CREATE TABLE items (id INTEGER PRIMARY KEY, grp INTEGER NOT NULL, label TEXT NOT NULL);
`)
	if err != nil {
		t.Fatal(err)
	}
	return db, m
}

// TestMetricsExactUnderParallelInsertBatch is the race-detector proof
// that the counters are both data-race-free and exact: G goroutines
// each issue B batches of R rows, and every counter must land on the
// precise expected value — no lost updates, no double counting.
func TestMetricsExactUnderParallelInsertBatch(t *testing.T) {
	db, m := obsDB(t)
	const (
		goroutines = 8
		batches    = 25
		rowsPer    = 10
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([][]any, rowsPer)
				for r := 0; r < rowsPer; r++ {
					id := g*batches*rowsPer + b*rowsPer + r
					rows[r] = []any{id, g, fmt.Sprintf("g%d-b%d-r%d", g, b, r)}
				}
				if _, err := db.InsertBatch("items", rows); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	const wantRows = goroutines * batches * rowsPer
	if got := db.RowCount("items"); got != wantRows {
		t.Fatalf("RowCount = %d, want %d", got, wantRows)
	}
	s := m.Snapshot()
	ts := s.Tables["items"]
	if ts.RowsInserted != wantRows {
		t.Errorf("RowsInserted = %d, want %d", ts.RowsInserted, wantRows)
	}
	if ts.Batches != goroutines*batches {
		t.Errorf("Batches = %d, want %d", ts.Batches, goroutines*batches)
	}
	if ts.BatchRows.Count != goroutines*batches {
		t.Errorf("BatchRows.Count = %d, want %d", ts.BatchRows.Count, goroutines*batches)
	}
	if ts.BatchRows.Sum != wantRows {
		t.Errorf("BatchRows.Sum = %d, want %d", ts.BatchRows.Sum, wantRows)
	}
	if ts.BatchRows.Max != rowsPer {
		t.Errorf("BatchRows.Max = %d, want %d", ts.BatchRows.Max, rowsPer)
	}
	// Every batch acquires the table's row lock at least once.
	if ts.LockWaits < goroutines*batches {
		t.Errorf("LockWaits = %d, want >= %d", ts.LockWaits, goroutines*batches)
	}
}

// TestMetricsFailedBatchNotCounted proves a rolled-back batch leaves
// the row counters untouched.
func TestMetricsFailedBatchNotCounted(t *testing.T) {
	db, m := obsDB(t)
	if _, err := db.InsertBatch("items", [][]any{
		{1, 1, "ok"},
		{1, 1, "dup primary key"},
	}); err == nil {
		t.Fatal("duplicate-key batch succeeded")
	}
	ts := m.Snapshot().Tables["items"]
	if ts.RowsInserted != 0 || ts.Batches != 0 {
		t.Fatalf("failed batch counted: rows=%d batches=%d", ts.RowsInserted, ts.Batches)
	}
	if got := db.RowCount("items"); got != 0 {
		t.Fatalf("RowCount = %d after rollback, want 0", got)
	}
}

func TestMetricsStatementKinds(t *testing.T) {
	db, m := obsDB(t)
	stmts := []string{
		`INSERT INTO items (id, grp, label) VALUES (1, 1, 'a')`,
		`SELECT label FROM items`,
		`UPDATE items SET label = 'b' WHERE id = 1`,
		`DELETE FROM items WHERE id = 1`,
	}
	for _, s := range stmts {
		if _, _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	s := m.Snapshot()
	if s.Engine.InsertStmts != 1 || s.Engine.Selects != 1 ||
		s.Engine.Updates != 1 || s.Engine.Deletes != 1 {
		t.Fatalf("stmt counters = %+v", s.Engine)
	}
	// +1: the CREATE TABLE from setup counts as an "other" statement.
	if s.Engine.OtherStmts != 1 {
		t.Fatalf("OtherStmts = %d, want 1", s.Engine.OtherStmts)
	}
	if s.Engine.ExecLatency.Count != int64(len(stmts))+1 {
		t.Fatalf("ExecLatency.Count = %d, want %d", s.Engine.ExecLatency.Count, len(stmts)+1)
	}
}

func TestSlowQueryTrace(t *testing.T) {
	db, m := obsDB(t)
	var ct obs.CollectTracer
	db.SetTracer(&ct)
	db.SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	if _, _, err := db.Exec(`SELECT id FROM items`); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Engine.SlowQueries; got < 1 {
		t.Fatalf("SlowQueries = %d, want >= 1", got)
	}
	evs := ct.Events()
	if len(evs) == 0 {
		t.Fatal("no trace events emitted")
	}
	found := false
	for _, ev := range evs {
		if ev.Scope == "engine" && ev.Name == "slow-query" && ev.Detail == `SELECT id FROM items` {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow-query event with SQL detail: %+v", evs)
	}
}

// TestSlowQueryOffByDefault proves the threshold defaults to disabled.
func TestSlowQueryOffByDefault(t *testing.T) {
	db, m := obsDB(t)
	var ct obs.CollectTracer
	db.SetTracer(&ct)
	if _, _, err := db.Exec(`SELECT id FROM items`); err != nil {
		t.Fatal(err)
	}
	if got := m.Snapshot().Engine.SlowQueries; got != 0 {
		t.Fatalf("SlowQueries = %d with no threshold, want 0", got)
	}
	for _, ev := range ct.Events() {
		if ev.Name == "slow-query" {
			t.Fatalf("slow-query event emitted with no threshold: %+v", ev)
		}
	}
}

func TestMetricsLookupPaths(t *testing.T) {
	db, m := obsDB(t)
	for i := 1; i <= 4; i++ {
		if _, err := db.Insert("items", []any{i, i % 2, "x"}); err != nil {
			t.Fatal(err)
		}
	}
	// Primary-key lookup hits the index; grp has none and scans.
	if _, err := db.Lookup("items", []string{"id"}, []any{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Lookup("items", []string{"grp"}, []any{1}); err != nil {
		t.Fatal(err)
	}
	ts := m.Snapshot().Tables["items"]
	if ts.IndexHits < 1 {
		t.Errorf("IndexHits = %d, want >= 1", ts.IndexHits)
	}
	if ts.Scans < 1 {
		t.Errorf("Scans = %d, want >= 1", ts.Scans)
	}
	if ts.Inserts != 4 || ts.RowsInserted != 4 {
		t.Errorf("Inserts = %d RowsInserted = %d, want 4/4", ts.Inserts, ts.RowsInserted)
	}
}
