package engine

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xmlrdb/internal/faultfs"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/rel"
)

// The write-ahead log is a sequence of length-prefixed, CRC-checksummed
// frames, one per committed mutation:
//
//	uint32  body length N (little endian)
//	N bytes body: uint64 seq, uint8 kind, payload
//	uint32  IEEE CRC-32 of the body
//
// Frames carry monotonically increasing sequence numbers. The log is
// split into segment files named wal-<firstSeq>.log; a snapshot at
// sequence S rotates the writer to a fresh segment starting at S+1 and
// deletes the older ones. Recovery replays frames in sequence order and
// stops at the first torn, truncated or corrupt frame — the surviving
// state is always a committed prefix of the original run.

// Frame kinds.
const (
	frameInsert  byte = 1 // table, row
	frameBatch   byte = 2 // table, rows
	frameMulti   byte = 3 // (table, rows)* — one atomic multi-table batch
	frameUpdate  byte = 4 // table, (pos, post-image row)*
	frameDelete  byte = 5 // table, pos*
	frameDDL     byte = 6 // JSON ddlRecord
	frameAnalyze byte = 7 // table, per-column dictionaries (dict.go)
	frameCompact byte = 8 // table, post-compaction row count (vacuum.go)
	frameStats   byte = 9 // analyze payload + JSON table statistics (stats.go)
)

// walMaxFrame bounds a single frame body; larger length prefixes are
// treated as corruption.
const walMaxFrame = 1 << 30

// ddlRecord is the JSON payload of a frameDDL frame. DDL is rare, so the
// self-describing encoding is worth its verbosity.
type ddlRecord struct {
	// Op is one of create_table, create_index, drop_index, drop_table.
	Op string `json:"op"`
	// Def is the table definition for create_table.
	Def *rel.Table `json:"def,omitempty"`
	// Name is the index name (create_index, drop_index) or table name
	// (drop_table).
	Name string `json:"name,omitempty"`
	// Table, Cols, Unique and Ordered describe create_index; Ordered also
	// disambiguates drop_index.
	Table   string   `json:"table,omitempty"`
	Cols    []string `json:"cols,omitempty"`
	Unique  bool     `json:"unique,omitempty"`
	Ordered bool     `json:"ordered,omitempty"`
}

// SyncMode selects the WAL durability barrier policy.
type SyncMode int

const (
	// SyncAlways issues a durability barrier after every frame (default):
	// a committed operation survives any crash.
	SyncAlways SyncMode = iota
	// SyncNever leaves flushing to the OS: crashes may lose a committed
	// suffix, never corrupt the prefix.
	SyncNever
)

// walWriter appends frames to the active segment. Appends happen while
// the caller holds the mutated tables' row locks, so per-table WAL order
// matches apply order; wal.mu serializes cross-table appends.
type walWriter struct {
	mu       sync.Mutex
	fs       faultfs.FS
	dir      string
	f        faultfs.File
	seq      uint64 // last assigned sequence number
	segStart uint64
	sync     SyncMode
	frames   int // frames since the last snapshot
	broken   error
	buf      []byte
	obs      *obs.Metrics
	// lastSync is the duration of the most recent appendLocked fsync
	// (0 when the append didn't sync), read back by appendCtx to emit
	// the wal.fsync span.
	lastSync time.Duration
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016d.log", firstSeq)
}

func snapshotName(seq uint64) string {
	return fmt.Sprintf("snap-%016d.snap", seq)
}

// newWALWriter opens a fresh segment whose first frame will carry
// lastSeq+1. The directory is fsynced after the create: without that
// barrier the segment is not a durable directory entry, and a power
// loss could drop the whole file despite every per-frame fsync.
func newWALWriter(fs faultfs.FS, dir string, lastSeq uint64, mode SyncMode, m *obs.Metrics) (*walWriter, error) {
	w := &walWriter{fs: fs, dir: dir, seq: lastSeq, segStart: lastSeq + 1, sync: mode, obs: m}
	f, err := fs.Create(filepath.Join(dir, segmentName(lastSeq+1)))
	if err != nil {
		return nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	if m != nil {
		m.WALFsyncs.Inc()
	}
	w.f = f
	return w, nil
}

// append assigns the next sequence number to one frame and writes it
// out. A failed append marks the writer broken: the in-memory state may
// run ahead of the log, so no further mutation is allowed to claim
// durability.
func (w *walWriter) append(kind byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(kind, payload)
}

// appendCtx is append plus request tracing: when ctx carries a trace,
// the frame write becomes a wal.append span with a nested wal.fsync
// span covering the durability barrier. Untraced contexts pay one
// context lookup.
func (w *walWriter) appendCtx(ctx context.Context, kind byte, payload []byte) error {
	tr := obs.TraceFrom(ctx)
	if tr == nil {
		return w.append(kind, payload)
	}
	sp := tr.StartChild(obs.CurrentSpan(ctx), "wal.append")
	sp.SetAttr("bytes", len(payload))
	w.mu.Lock()
	err := w.appendLocked(kind, payload)
	syncDur := w.lastSync
	w.mu.Unlock()
	if syncDur > 0 {
		tr.AddCompletedSpan(sp, "wal.fsync", time.Now().Add(-syncDur), syncDur)
	}
	sp.SetErr(err)
	sp.End()
	return err
}

func (w *walWriter) appendLocked(kind byte, payload []byte) error {
	if w.broken != nil {
		return fmt.Errorf("engine: wal unavailable after earlier failure: %w", w.broken)
	}
	w.seq++
	body := 8 + 1 + len(payload)
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(body))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, w.seq)
	w.buf = append(w.buf, kind)
	w.buf = append(w.buf, payload...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(w.buf[4:]))
	if _, err := w.f.Write(w.buf); err != nil {
		w.broken = err
		return err
	}
	w.lastSync = 0
	if w.sync == SyncAlways {
		t0 := time.Now()
		if err := w.f.Sync(); err != nil {
			w.broken = err
			return err
		}
		w.lastSync = time.Since(t0)
		if w.obs != nil {
			w.obs.WALFsyncs.Inc()
		}
	}
	w.frames++
	if w.obs != nil {
		w.obs.WALFrames.Inc()
		w.obs.WALBytes.Add(int64(len(w.buf)))
	}
	return nil
}

// rotateLocked closes the active segment and starts a new one at
// seq+1, deleting the now-redundant older segments and snapshots (all
// frames at or below snapSeq are covered by the snapshot). The caller
// holds w.mu and guarantees no frame beyond snapSeq exists.
func (w *walWriter) rotateLocked(snapSeq uint64) error {
	if w.f != nil {
		w.f.Close()
	}
	f, err := w.fs.Create(filepath.Join(w.dir, segmentName(snapSeq+1)))
	if err != nil {
		w.broken = err
		return err
	}
	w.f = f
	w.segStart = snapSeq + 1
	w.frames = 0
	// The new segment — and, crucially, the snapshot rename that made
	// the old ones redundant — must be durable directory entries before
	// any old file is deleted; otherwise a crash could surface the
	// deletions without the snapshot, losing the whole covered prefix.
	if err := w.fs.SyncDir(w.dir); err != nil {
		w.broken = err
		return err
	}
	if w.obs != nil {
		w.obs.WALFsyncs.Inc()
	}
	// Best-effort cleanup: the snapshot covers every frame at or below
	// snapSeq, so all other segments and older snapshots are redundant.
	// Stale files left by a crash here are harmless — recovery picks the
	// newest valid snapshot and filters frames by sequence number.
	names, err := w.fs.List(w.dir)
	if err != nil {
		return nil
	}
	for _, name := range names {
		if first, ok := parseSegmentName(name); ok && first != snapSeq+1 {
			w.fs.Remove(filepath.Join(w.dir, name))
		} else if seq, ok := parseSnapshotName(name); ok && seq < snapSeq {
			w.fs.Remove(filepath.Join(w.dir, name))
		} else if strings.HasSuffix(name, ".tmp") {
			w.fs.Remove(filepath.Join(w.dir, name))
		}
	}
	// Making the removals durable is space reclamation, not correctness:
	// resurrected stale files are filtered at recovery, so a failure
	// here (including an injected crash) is ignored.
	_ = w.fs.SyncDir(w.dir)
	return nil
}

// close flushes and closes the active segment.
func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	return n, err == nil
}

func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 10, 64)
	return n, err == nil
}

// listSorted returns the directory's segment and snapshot files in
// ascending sequence order.
func listWALFiles(fs faultfs.FS, dir string) (segments, snapshots []string, err error) {
	names, err := fs.List(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, name := range names {
		if _, ok := parseSegmentName(name); ok {
			segments = append(segments, name)
		} else if _, ok := parseSnapshotName(name); ok {
			snapshots = append(snapshots, name)
		}
	}
	sort.Strings(segments) // zero-padded names sort numerically
	sort.Strings(snapshots)
	return segments, snapshots, nil
}

// walFrame is one decoded frame.
type walFrame struct {
	seq     uint64
	kind    byte
	payload []byte
}

// decodeFrames parses a segment's bytes into valid frames, stopping at
// the first torn, truncated or corrupt frame.
func decodeFrames(data []byte) []walFrame {
	var frames []walFrame
	for len(data) >= 4 {
		body := binary.LittleEndian.Uint32(data)
		if body < 9 || body > walMaxFrame || len(data) < int(4+body+4) {
			break
		}
		payload := data[4 : 4+body]
		crc := binary.LittleEndian.Uint32(data[4+body:])
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		frames = append(frames, walFrame{
			seq:     binary.LittleEndian.Uint64(payload),
			kind:    payload[8],
			payload: payload[9:],
		})
		data = data[4+body+4:]
	}
	return frames
}

// readAll slurps one file through the FS abstraction.
func readAll(fs faultfs.FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// ---- payload value codec ----
//
// Row values are the engine's dynamic types (nil, int64, float64,
// string, bool), already coerced to their column types, so the codec is
// a tag byte plus a fixed or varint body.

func appendWALVal(buf []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(buf, 'n'), nil
	case int64:
		buf = append(buf, 'i')
		return binary.AppendVarint(buf, x), nil
	case float64:
		buf = append(buf, 'f')
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x)), nil
	case string:
		buf = append(buf, 's')
		buf = binary.AppendUvarint(buf, uint64(len(x)))
		return append(buf, x...), nil
	case bool:
		if x {
			return append(buf, 'b', 1), nil
		}
		return append(buf, 'b', 0), nil
	default:
		return nil, fmt.Errorf("engine: wal cannot encode %T", v)
	}
}

func appendWALRow(buf []byte, row []any) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	var err error
	for _, v := range row {
		if buf, err = appendWALVal(buf, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendWALString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendWALRows(buf []byte, rows [][]any) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	var err error
	for _, row := range rows {
		if buf, err = appendWALRow(buf, row); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// walReader decodes payloads defensively: every length is bounds-checked
// against the remaining bytes, so adversarial or bit-flipped payloads
// yield errors, never panics or huge allocations.
type walReader struct {
	data []byte
	pos  int
}

var errWALCorrupt = fmt.Errorf("engine: corrupt wal payload")

func (r *walReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, errWALCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *walReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, errWALCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *walReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.data)-r.pos) {
		return nil, errWALCorrupt
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

func (r *walReader) byte1() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, errWALCorrupt
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *walReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	return string(b), err
}

func (r *walReader) val() (any, error) {
	tag, err := r.byte1()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 'n':
		return nil, nil
	case 'i':
		return r.varint()
	case 'f':
		b, err := r.bytes(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
	case 's':
		return r.str()
	case 'b':
		b, err := r.byte1()
		return b != 0, err
	default:
		return nil, errWALCorrupt
	}
}

func (r *walReader) row() ([]any, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos) { // each value costs >= 1 byte
		return nil, errWALCorrupt
	}
	row := make([]any, n)
	for i := range row {
		if row[i], err = r.val(); err != nil {
			return nil, err
		}
	}
	return row, nil
}

func (r *walReader) rows() ([][]any, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos) {
		return nil, errWALCorrupt
	}
	rows := make([][]any, n)
	for i := range rows {
		if rows[i], err = r.row(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// ---- frame payload builders ----

func encodeInsertFrame(table string, row []any) ([]byte, error) {
	buf := appendWALString(nil, table)
	return appendWALRow(buf, row)
}

func encodeBatchFrame(table string, rows [][]any) ([]byte, error) {
	buf := appendWALString(nil, table)
	return appendWALRows(buf, rows)
}

func encodeMultiFrame(tables []string, batches [][][]any) ([]byte, error) {
	buf := binary.AppendUvarint(nil, uint64(len(tables)))
	var err error
	for i, table := range tables {
		buf = appendWALString(buf, table)
		if buf, err = appendWALRows(buf, batches[i]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func encodeUpdateFrame(table string, positions []int, rows [][]any) ([]byte, error) {
	buf := appendWALString(nil, table)
	buf = binary.AppendUvarint(buf, uint64(len(positions)))
	var err error
	for i, pos := range positions {
		buf = binary.AppendUvarint(buf, uint64(pos))
		if buf, err = appendWALRow(buf, rows[i]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func encodeDeleteFrame(table string, positions []int) []byte {
	buf := appendWALString(nil, table)
	buf = binary.AppendUvarint(buf, uint64(len(positions)))
	for _, pos := range positions {
		buf = binary.AppendUvarint(buf, uint64(pos))
	}
	return buf
}

func encodeDDLFrame(rec ddlRecord) ([]byte, error) {
	return json.Marshal(rec)
}

// encodeCompactFrame records a vacuum compaction: the replayer re-runs
// the (deterministic) compaction and validates the surviving row count
// against keep.
func encodeCompactFrame(table string, keep int) []byte {
	buf := appendWALString(nil, table)
	return binary.AppendUvarint(buf, uint64(keep))
}
