package engine

import (
	"errors"
	"fmt"
	"testing"

	"xmlrdb/internal/faultfs"
)

// The crash matrix kills a scripted workload at every byte offset (torn
// writes) and at every fsync boundary (page-cache loss), then asserts
// the recovered database is exactly the state after the last operation
// whose API call returned success — committed operations fully present,
// the crashed operation fully absent, indexes and foreign keys intact.
//
// Every scripted op commits at most one WAL frame, so op-level success
// is the unit of durability the matrix checks.

type scriptOp struct {
	name string
	run  func(db *DB) error
}

func exec1(sql string) func(db *DB) error {
	return func(db *DB) error {
		_, _, err := db.Exec(sql)
		return err
	}
}

// crashWorkload covers every frame kind: single inserts, an atomic
// batch, an atomic multi-table batch, UPDATE, DELETE, all four DDL
// forms, an explicit checkpoint mid-stream, and vacuum compactions
// (frameCompact) both directly and through the Vacuum sweep — a kill
// during version reclamation must recover to the exact WAL prefix
// like any other op.
func crashWorkload() []scriptOp {
	return []scriptOp{
		{"create authors", exec1(`CREATE TABLE authors (id INTEGER PRIMARY KEY, name TEXT NOT NULL, age INTEGER)`)},
		{"create books", exec1(`CREATE TABLE books (id INTEGER PRIMARY KEY, title TEXT NOT NULL, author INTEGER, year INTEGER, FOREIGN KEY (author) REFERENCES authors (id))`)},
		{"insert smith", exec1(`INSERT INTO authors VALUES (1, 'Smith', 40)`)},
		{"insert brown", exec1(`INSERT INTO authors VALUES (2, 'Brown', 35)`)},
		{"batch books", func(db *DB) error {
			_, err := db.InsertBatch("books", [][]any{
				{10, "XML RDBMS", 1, 1999},
				{11, "Go Systems", 2, 2005},
				{12, "Data Models", 1, 2001},
			})
			return err
		}},
		{"multi author+book", func(db *DB) error {
			_, err := db.InsertBatchMulti(
				[]string{"authors", "books"},
				[][][]any{{{3, "Lee", 50}}, {{13, "Orphanless", 3, 1999}}},
			)
			return err
		}},
		{"index books_year", exec1(`CREATE INDEX books_year ON books (year)`)},
		{"ordered books_ord", exec1(`CREATE ORDERED INDEX books_ord ON books (year)`)},
		{"update year", exec1(`UPDATE books SET year = 2002 WHERE id = 12`)},
		{"delete book", exec1(`DELETE FROM books WHERE id = 11`)},
		// Compaction renumbers the rows; every later frame references the
		// renumbered positions, so a torn compact frame that replays
		// half-heartedly would corrupt everything after it.
		{"compact books", func(db *DB) error {
			_, err := db.CompactTable("books")
			return err
		}},
		// One frameStats before the checkpoint (so the snapshot's
		// dictionary sections and stats header get torn) and one after
		// (so WAL replay of the combined dictionaries+statistics frame
		// does). A crash mid-write must recover to the pre-ANALYZE
		// dictionaries and statistics, never a partial blend of either.
		{"analyze books", func(db *DB) error { return db.AnalyzeTable("books") }},
		{"checkpoint", func(db *DB) error {
			if err := db.Checkpoint(); err != nil && !errors.Is(err, ErrNotDurable) {
				return err
			}
			return nil
		}},
		{"insert wu", exec1(`INSERT INTO authors VALUES (4, 'Wu', 29)`)},
		{"batch more books", func(db *DB) error {
			_, err := db.InsertBatch("books", [][]any{
				{20, "After Snapshot", 4, 2010},
				{21, "Tail Frames", 4, 2011},
			})
			return err
		}},
		{"update post-snapshot", exec1(`UPDATE books SET year = 2012 WHERE id = 21`)},
		{"analyze authors", func(db *DB) error { return db.AnalyzeTable("authors") }},
		{"drop ordered", exec1(`DROP INDEX books_ord`)},
		{"drop index", exec1(`DROP INDEX books_year`)},
		{"delete author-less", exec1(`DELETE FROM books WHERE id = 20`)},
		// The background vacuum's entry point; only books has a hole at
		// this point, so the sweep commits exactly one frame.
		{"vacuum", func(db *DB) error {
			_, err := db.Vacuum()
			return err
		}},
	}
}

// referenceStates returns the dump after each op of an in-memory run:
// states[i] is the state once ops[0:i] have committed.
func referenceStates(t *testing.T, ops []scriptOp) []string {
	t.Helper()
	ref := Open()
	states := []string{dumpState(ref)}
	for _, op := range ops {
		if err := op.run(ref); err != nil {
			t.Fatalf("reference run: op %q: %v", op.name, err)
		}
		states = append(states, dumpState(ref))
	}
	return states
}

// runUntilCrash drives ops through a durable DB on fs and returns how
// many committed before the first error (all of them if none fails).
func runUntilCrash(t *testing.T, fs *faultfs.Mem, ops []scriptOp) int {
	t.Helper()
	db, err := OpenAtOpts("data", DurabilityOptions{FS: fs})
	if err != nil {
		return 0 // crashed during open of the fresh segment
	}
	for i, op := range ops {
		if err := op.run(db); err != nil {
			return i
		}
	}
	db.Close()
	return len(ops)
}

// recoverAndCheck reopens after the injected crash and asserts the
// recovered state is exactly the committed prefix.
func recoverAndCheck(t *testing.T, fs *faultfs.Mem, states []string, committed int, point string) {
	t.Helper()
	fs.ClearCrash()
	db, err := OpenAtOpts("data", DurabilityOptions{FS: fs, VerifyOnRecover: true})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", point, err)
	}
	defer db.Close()
	if got, want := dumpState(db), states[committed]; got != want {
		t.Fatalf("%s: recovered state is not the committed prefix (%d ops):\n--- want ---\n%s--- got ---\n%s",
			point, committed, want, got)
	}
	if err := db.CheckAllFKs(); err != nil {
		t.Fatalf("%s: foreign keys violated after recovery: %v", point, err)
	}
}

func TestCrashMatrixByteOffsets(t *testing.T) {
	ops := crashWorkload()
	states := referenceStates(t, ops)

	// Clean run to size the matrix.
	clean := faultfs.NewMem()
	if got := runUntilCrash(t, clean, ops); got != len(ops) {
		t.Fatalf("clean run stopped at op %d", got)
	}
	total := clean.BytesWritten()
	if total == 0 {
		t.Fatal("workload wrote no bytes")
	}

	for budget := int64(0); budget <= total; budget++ {
		fs := faultfs.NewMem()
		fs.SetWriteBudget(budget)
		committed := runUntilCrash(t, fs, ops)
		recoverAndCheck(t, fs, states, committed, fmt.Sprintf("byte-offset %d", budget))
	}
}

func TestCrashMatrixFsyncBoundaries(t *testing.T) {
	ops := crashWorkload()
	states := referenceStates(t, ops)

	clean := faultfs.NewMem()
	if got := runUntilCrash(t, clean, ops); got != len(ops) {
		t.Fatalf("clean run stopped at op %d", got)
	}
	total := clean.Syncs()
	if total == 0 {
		t.Fatal("workload issued no syncs")
	}

	for budget := int64(0); budget <= total; budget++ {
		fs := faultfs.NewMem()
		fs.DropUnsynced = true // power loss: unsynced page cache is gone
		fs.SetSyncBudget(budget)
		committed := runUntilCrash(t, fs, ops)
		recoverAndCheck(t, fs, states, committed, fmt.Sprintf("fsync-boundary %d", budget))
	}
}

// TestCrashDuringRecovery re-crashes while the torn store is being read
// back: recovery must fail cleanly (the reopened-again store is intact).
func TestCrashDuringRecovery(t *testing.T) {
	ops := crashWorkload()
	states := referenceStates(t, ops)
	fs := faultfs.NewMem()
	if got := runUntilCrash(t, fs, ops); got != len(ops) {
		t.Fatalf("clean run stopped at op %d", got)
	}
	// OpenAt reads files and writes only the fresh segment header
	// (zero bytes), so a tiny write budget crashes segment creation.
	fs.SetWriteBudget(0)
	if _, err := OpenAtOpts("data", DurabilityOptions{FS: fs}); err == nil {
		// Creating the new segment wrote nothing, so the open may
		// legitimately succeed; nothing further to assert.
		return
	}
	recoverAndCheck(t, fs, states, len(ops), "post-recovery-crash")
}
