package engine

import (
	"path/filepath"
	"testing"

	"xmlrdb/internal/faultfs"
)

// validWALBytes produces the segment bytes of a real workload — the
// honest starting point the fuzzer mutates.
func validWALBytes(t testing.TB) []byte {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("data", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db)
	db.Close()
	segs, _, err := listWALFiles(fs, "data")
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	data, err := readAll(fs, filepath.Join("data", segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// recoverFromBytes plants data as the only WAL segment and recovers.
// It reports whether the open succeeded; any panic fails the test.
func recoverFromBytes(t testing.TB, data []byte) bool {
	fs := faultfs.NewMem()
	fs.MkdirAll("data")
	f, err := fs.Create(filepath.Join("data", segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	f.Write(data)
	f.Close()
	db, err := OpenAtOpts("data", DurabilityOptions{FS: fs, VerifyOnRecover: true})
	if err != nil {
		return false // clean failure is an acceptable outcome
	}
	// A successful recovery must hand back an internally consistent
	// database (VerifyOnRecover already cross-checked indexes and FKs).
	if err := db.CheckAllFKs(); err != nil {
		t.Fatalf("recovery accepted a constraint-violating state: %v", err)
	}
	db.Close()
	return true
}

// FuzzWALReplay mutates and truncates real WAL bytes: recovery must
// either succeed on a valid prefix or fail cleanly — never panic,
// never load a constraint-violating state.
func FuzzWALReplay(f *testing.F) {
	valid := validWALBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3]) // torn final frame
	for _, i := range []int{0, 1, 4, 12, len(valid) / 3, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		recoverFromBytes(t, data)
	})
}

// TestWALReplayEveryBitflip deterministically corrupts each byte of a
// valid log: the CRC must stop replay at (or before) the damaged frame
// and recovery must stay clean.
func TestWALReplayEveryBitflip(t *testing.T) {
	valid := validWALBytes(t)
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xFF
		recoverFromBytes(t, mut)
	}
}

// TestSnapshotEveryBitflip corrupts each byte of a snapshot file:
// recovery falls back to replaying the log from scratch (same final
// state) or fails cleanly — it must never trust a damaged snapshot.
func TestSnapshotEveryBitflip(t *testing.T) {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("data", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := dumpState(db)
	db.Close()
	_, snaps, err := listWALFiles(fs, "data")
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want one snapshot, got %v (%v)", snaps, err)
	}
	snapPath := filepath.Join("data", snaps[0])
	valid, err := readAll(fs, snapPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xFF
		fs2 := faultfs.NewMem()
		fs2.MkdirAll("data")
		f, _ := fs2.Create(snapPath)
		f.Write(mut)
		f.Close()
		db2, err := OpenAtOpts("data", DurabilityOptions{FS: fs2, VerifyOnRecover: true})
		if err != nil {
			continue
		}
		// The checkpoint deleted the pre-snapshot segments, so a rejected
		// snapshot recovers to an empty (but consistent) database; an
		// accepted one must carry the exact state. Either way no panic and
		// no constraint violation.
		got := dumpState(db2)
		if got != want && got != "" {
			t.Fatalf("bitflip at %d: snapshot recovered to a third state:\n%s", i, got)
		}
		db2.Close()
	}
}
