package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmlrdb/internal/faultfs"
	"xmlrdb/internal/obs"
	"xmlrdb/internal/rel"
	"xmlrdb/internal/sqldb"
)

// Common engine errors.
var (
	// ErrNoTable is returned for operations on unknown tables.
	ErrNoTable = errors.New("engine: no such table")
	// ErrNoIndex is returned for operations on unknown indexes (hash or
	// ordered).
	ErrNoIndex = errors.New("engine: no such index")
	// ErrConstraint is returned when an insert or update violates a
	// declared constraint.
	ErrConstraint = errors.New("engine: constraint violation")
)

// DB is an in-memory relational database. It is safe for concurrent
// use, with two locking tiers: db.mu guards the catalog (the table map,
// creation order, and the FK-enforcement flag) and is held exclusively
// for DDL; row operations hold it shared and take the per-table locks
// of the tables they touch, so writers to different tables proceed in
// parallel. Multi-table operations acquire their per-table locks in
// sorted name order, which makes deadlock impossible.
type DB struct {
	mu        sync.RWMutex
	tables    map[string]*table
	order     []string
	enforceFK bool

	// obs, tracer and slowQuery are the observability hooks (see
	// observe.go); all nil/zero by default and set before concurrent use.
	obs       *obs.Metrics
	tracer    obs.Tracer
	slowQuery time.Duration

	// wal, walFS, walDir and snapshotEvery are the durability hooks (see
	// durable.go, wal.go): all nil/zero for a purely in-memory database
	// — every hook then reduces to one nil check — and set once by
	// OpenAtOpts before the DB is shared.
	wal           *walWriter
	walFS         faultfs.FS
	walDir        string
	snapshotEvery int

	// vecOff disables the vectorized batch executor (vector.go); the
	// zero value keeps it on. costOff disables the statistics-driven
	// cost-based planner (plan.go, stats.go): with it off the planner
	// keeps the structural left-to-right join order and index-first
	// access paths the seed planner used.
	vecOff  bool
	costOff bool

	// statsClock is the statistics epoch: it advances every time any
	// table's ANALYZE statistics are (re)installed, so plan caches can
	// age out entries compiled against stale statistics. See stats.go.
	statsClock atomic.Uint64

	// clock is the snapshot epoch clock: it advances on every committed
	// mutation (in lockstep with WAL appends on durable stores, up to
	// batching) and cursors pin its value at open. pins registers those
	// pins so the vacuum and the observability surface can see the
	// oldest snapshot still being read. See version.go.
	clock atomic.Uint64
	pins  pinSet
}

// SetVectorized toggles the vectorized batch executor (on by default).
// With it off every plan runs row-at-a-time; the equivalence tests use
// the toggle to pin both paths to identical results.
func (db *DB) SetVectorized(on bool) {
	db.mu.Lock()
	db.vecOff = !on
	db.mu.Unlock()
}

// SetCostBased toggles the statistics-driven cost-based planner (on by
// default). With it off the planner keeps the structural left-to-right
// join order; the plan-equivalence tests and the E13 experiment use the
// toggle to compare both planners on identical data.
func (db *DB) SetCostBased(on bool) {
	db.mu.Lock()
	db.costOff = !on
	db.mu.Unlock()
}

type table struct {
	// mu guards rows, indexes and ordered; def is immutable after DDL.
	mu      sync.RWMutex
	def     *rel.Table
	rows    [][]any
	indexes map[string]*index
	ordered map[string]*orderedIndex
	// dicts holds the persisted per-column dictionaries built by ANALYZE
	// (nil slice until then; nil entries for unencoded columns). Mutated
	// only under the table's write lock.
	dicts []*colDict
	// stats holds the table's ANALYZE statistics (stats.go), nil until
	// the first ANALYZE; mutated only under the table's write lock and
	// treated as immutable once installed. statsMuts counts committed
	// mutations since the statistics were installed — the staleness
	// signal surfaced by StatsFreshnessReport.
	stats     *TableStats
	statsMuts atomic.Int64
	// MVCC state (version.go): cur caches the immutable snapshot cursors
	// capture at open (nil after every mutation; verMu serializes its
	// lazy re-creation between concurrent readers), liveRefs counts open
	// captures of the current rows backing array — writers consult it to
	// decide copy-on-write — and clock points at the owning DB's epoch
	// clock.
	cur      *tableVersion
	verMu    sync.Mutex
	liveRefs *atomic.Int64
	clock    *atomic.Uint64
	// obs holds the table's metrics, nil when collection is off; set
	// under db.mu exclusive, read under db.mu shared.
	obs *obs.TableMetrics
}

type index struct {
	name   string
	cols   []int
	unique bool
	// constraint marks an index that backs a declared constraint (the
	// auto-created <table>_pk and <table>_uN indexes): it is what makes
	// applyRowLocked reject duplicate keys, so it cannot be dropped.
	constraint bool
	m          map[string][]int
}

// Open returns an empty database with foreign-key enforcement enabled.
func Open() *DB {
	return &DB{tables: make(map[string]*table), enforceFK: true}
}

// SetEnforceFK toggles foreign-key checking on insert (bulk loaders that
// insert parents before children can leave it on; loaders with forward
// references may disable it and call CheckAllFKs afterwards).
func (db *DB) SetEnforceFK(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.enforceFK = on
}

// CreateTable registers a table from a rel definition and builds indexes
// for its primary key and unique constraints.
func (db *DB) CreateTable(def *rel.Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.createTableLocked(def); err != nil {
		return err
	}
	if err := db.logDDL(ddlRecord{Op: "create_table", Def: def}); err != nil {
		db.undoCreateTableLocked(def.Name)
		return err
	}
	return nil
}

// undoCreateTableLocked removes a table that was registered moments ago
// but whose DDL could not be logged.
func (db *DB) undoCreateTableLocked(name string) {
	delete(db.tables, name)
	if n := len(db.order); n > 0 && db.order[n-1] == name {
		db.order = db.order[:n-1]
	}
}

func (db *DB) createTableLocked(def *rel.Table) error {
	if _, dup := db.tables[def.Name]; dup {
		return fmt.Errorf("engine: table %q already exists", def.Name)
	}
	t := &table{def: def, indexes: make(map[string]*index), liveRefs: &atomic.Int64{}, clock: &db.clock}
	if db.obs != nil {
		t.obs = db.obs.Table(def.Name)
	}
	if len(def.PrimaryKey) > 0 {
		if err := t.addIndex(def.Name+"_pk", def.PrimaryKey, true, true); err != nil {
			return err
		}
	}
	for i, u := range def.Uniques {
		if err := t.addIndex(fmt.Sprintf("%s_u%d", def.Name, i), u, true, true); err != nil {
			return err
		}
	}
	db.tables[def.Name] = t
	db.order = append(db.order, def.Name)
	return nil
}

// CreateSchema registers every table of a schema.
func (db *DB) CreateSchema(s *rel.Schema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range s.Tables {
		if err := db.createTableLocked(t); err != nil {
			return err
		}
		if err := db.logDDL(ddlRecord{Op: "create_table", Def: t}); err != nil {
			db.undoCreateTableLocked(t.Name)
			return err
		}
	}
	return nil
}

// CreateIndex builds a secondary index.
func (db *DB) CreateIndex(name, tableName string, cols []string, unique bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[tableName]
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	if _, dup := t.indexes[name]; dup {
		return fmt.Errorf("engine: index %q already exists", name)
	}
	if err := t.addIndex(name, cols, unique, false); err != nil {
		return err
	}
	// Populate from existing rows.
	ix := t.indexes[name]
	for pos, row := range t.rows {
		if row == nil {
			continue
		}
		key := ix.keyOf(row)
		if unique && len(ix.m[key]) > 0 {
			delete(t.indexes, name)
			return fmt.Errorf("%w: duplicate key for unique index %q", ErrConstraint, name)
		}
		ix.m[key] = append(ix.m[key], pos)
	}
	if err := db.logDDL(ddlRecord{Op: "create_index", Name: name, Table: tableName, Cols: cols, Unique: unique}); err != nil {
		delete(t.indexes, name)
		return err
	}
	return nil
}

// DropIndex removes a secondary index. Indexes that back a declared
// constraint — the auto-created <table>_pk and <table>_uN indexes — are
// not droppable: they are what enforces uniqueness on insert, and
// removing one would let duplicate keys slip in silently.
func (db *DB) DropIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range db.tables {
		ix, ok := t.indexes[name]
		if !ok {
			continue
		}
		if ix.constraint {
			return fmt.Errorf("engine: cannot drop index %q: it enforces a constraint of table %q (drop the table instead)",
				name, t.def.Name)
		}
		if err := db.logDDL(ddlRecord{Op: "drop_index", Name: name}); err != nil {
			return err
		}
		delete(t.indexes, name)
		return nil
	}
	return fmt.Errorf("%w: %q", ErrNoIndex, name)
}

// DependencyError reports a DropTable refused because other tables
// still reference the target through foreign keys: dropping it would
// leave dangling references while enforcement is on.
type DependencyError struct {
	// Table is the table whose drop was refused.
	Table string
	// ReferencedBy lists the tables with foreign keys into Table, in
	// creation order.
	ReferencedBy []string
}

func (e *DependencyError) Error() string {
	return fmt.Sprintf("engine: cannot drop table %q: referenced by foreign keys from %s",
		e.Table, strings.Join(e.ReferencedBy, ", "))
}

// DropTable removes a table. While foreign-key enforcement is on, a
// table that other tables reference cannot be dropped — that would
// silently turn their FK columns into dangling references — and the
// call fails with a *DependencyError naming the referencing tables.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	if db.enforceFK {
		var refs []string
		for _, other := range db.order {
			if other == name {
				continue // a self-reference dies with the table
			}
			for _, fk := range db.tables[other].def.ForeignKeys {
				if fk.RefTable == name {
					refs = append(refs, other)
					break
				}
			}
		}
		if len(refs) > 0 {
			return &DependencyError{Table: name, ReferencedBy: refs}
		}
	}
	if err := db.logDDL(ddlRecord{Op: "drop_table", Name: name}); err != nil {
		return err
	}
	delete(db.tables, name)
	for i, n := range db.order {
		if n == name {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	return nil
}

func (t *table) addIndex(name string, colNames []string, unique, constraint bool) error {
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		_, pos := t.def.Column(cn)
		if pos < 0 {
			return fmt.Errorf("engine: table %q has no column %q", t.def.Name, cn)
		}
		cols[i] = pos
	}
	t.indexes[name] = &index{name: name, cols: cols, unique: unique, constraint: constraint, m: make(map[string][]int)}
	return nil
}

func (ix *index) keyOf(row []any) string {
	return encodeKeyCols(row, ix.cols)
}

// findIndex returns an index whose columns are exactly cols (order
// matters), or nil.
func (t *table) findIndex(cols []int) *index {
	for _, ix := range t.indexes {
		if len(ix.cols) != len(cols) {
			continue
		}
		match := true
		for i := range cols {
			if ix.cols[i] != cols[i] {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// lockRows acquires per-table row locks — write locks for the tables
// named in writes, read locks for those in reads — in sorted name
// order, so concurrent operations over overlapping table sets never
// deadlock. A table appearing in both sets is write-locked once;
// unknown names are skipped (the caller reports them). The caller must
// hold db.mu (shared or exclusive) and call the returned function to
// release.
func (db *DB) lockRows(writes, reads []string) func() {
	type tlock struct {
		name  string
		t     *table
		write bool
	}
	set := make(map[string]*tlock, len(writes)+len(reads))
	for _, n := range writes {
		if t := db.tables[n]; t != nil {
			set[n] = &tlock{name: n, t: t, write: true}
		}
	}
	for _, n := range reads {
		if set[n] != nil {
			continue
		}
		if t := db.tables[n]; t != nil {
			set[n] = &tlock{name: n, t: t}
		}
	}
	locks := make([]*tlock, 0, len(set))
	for _, l := range set {
		locks = append(locks, l)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i].name < locks[j].name })
	for _, l := range locks {
		var t0 time.Time
		if l.t.obs != nil {
			t0 = time.Now()
		}
		if l.write {
			l.t.mu.Lock()
		} else {
			l.t.mu.RLock()
		}
		if l.t.obs != nil {
			l.t.obs.LockWaits.Inc()
			l.t.obs.LockWaitNanos.Add(int64(time.Since(t0)))
		}
	}
	return func() {
		for i := len(locks) - 1; i >= 0; i-- {
			if locks[i].write {
				locks[i].t.mu.Unlock()
			} else {
				locks[i].t.mu.RUnlock()
			}
		}
	}
}

// fkReads returns the tables an insert into t must read-lock for
// foreign-key checks (none when enforcement is off).
func (db *DB) fkReads(t *table) []string {
	if !db.enforceFK || len(t.def.ForeignKeys) == 0 {
		return nil
	}
	reads := make([]string, 0, len(t.def.ForeignKeys))
	for _, fk := range t.def.ForeignKeys {
		reads = append(reads, fk.RefTable)
	}
	return reads
}

// Insert appends one row given in column order, enforcing constraints.
// It returns the row position.
func (db *DB) Insert(tableName string, row []any) (int, error) {
	pos, err := db.insertOne(tableName, row)
	if err == nil {
		db.maybeCheckpoint()
	}
	return pos, err
}

func (db *DB) insertOne(tableName string, row []any) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[tableName]
	if t == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	unlock := db.lockRows([]string{tableName}, db.fkReads(t))
	defer unlock()
	return db.insertLocked(context.Background(), tableName, row)
}

// InsertMap appends one row given as a column->value map; omitted
// columns are NULL.
func (db *DB) InsertMap(tableName string, vals map[string]any) (int, error) {
	pos, err := db.insertMap(tableName, vals)
	if err == nil {
		db.maybeCheckpoint()
	}
	return pos, err
}

func (db *DB) insertMap(tableName string, vals map[string]any) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[tableName]
	if t == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	row := make([]any, len(t.def.Columns))
	for k, v := range vals {
		_, pos := t.def.Column(k)
		if pos < 0 {
			return 0, fmt.Errorf("engine: table %q has no column %q", tableName, k)
		}
		row[pos] = v
	}
	unlock := db.lockRows([]string{tableName}, db.fkReads(t))
	defer unlock()
	return db.insertLocked(context.Background(), tableName, row)
}

// InsertBatch appends many rows (in column order) under a single lock
// acquisition. The batch is atomic: on any error no row is kept and all
// index state is restored. Rows are applied in order, so a row may
// satisfy the foreign keys of later rows in the same batch; within one
// table, parents must precede their children. It returns the number of
// rows inserted (len(rows) on success).
func (db *DB) InsertBatch(tableName string, rows [][]any) (int, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	n, err := db.insertBatch(tableName, rows)
	if err == nil {
		db.maybeCheckpoint()
	}
	return n, err
}

func (db *DB) insertBatch(tableName string, rows [][]any) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[tableName]
	if t == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	// Coerce and validate every row before taking row locks: a doomed
	// batch does no work under contention.
	staged := make([][]any, len(rows))
	for i, row := range rows {
		s, err := coerceRow(t, tableName, row)
		if err != nil {
			return 0, fmt.Errorf("engine: batch row %d: %w", i, err)
		}
		staged[i] = s
	}
	unlock := db.lockRows([]string{tableName}, db.fkReads(t))
	defer unlock()
	start := len(t.rows)
	for i, s := range staged {
		if _, err := db.applyRowLocked(t, tableName, s); err != nil {
			db.rollbackToLocked(t, start)
			return 0, fmt.Errorf("engine: batch row %d: %w", i, err)
		}
	}
	if werr := db.logBatch(tableName, staged); werr != nil {
		// An aborted batch must never reach the log, and logged state must
		// never trail the applied state: unwind the whole batch.
		db.rollbackToLocked(t, start)
		return 0, werr
	}
	if t.obs != nil {
		t.obs.Batches.Inc()
		t.obs.BatchRows.Observe(int64(len(staged)))
		t.obs.RowsInserted.Add(int64(len(staged)))
	}
	return len(staged), nil
}

// InsertBatchMulti appends batches to several tables under one lock
// acquisition and, when the database is durable, one WAL frame — the
// unit the corpus loader uses to make each document atomic: after a
// crash, a document's rows are either present in every table or in
// none. Batches are applied in slice order (parent tables before
// children), the same table may appear more than once, and the whole
// operation is atomic. It returns the total number of rows inserted.
func (db *DB) InsertBatchMulti(tables []string, batches [][][]any) (int, error) {
	if len(tables) != len(batches) {
		return 0, fmt.Errorf("engine: InsertBatchMulti got %d tables but %d batches", len(tables), len(batches))
	}
	if len(tables) == 0 {
		return 0, nil
	}
	n, err := db.insertBatchMulti(tables, batches)
	if err == nil {
		db.maybeCheckpoint()
	}
	return n, err
}

func (db *DB) insertBatchMulti(tables []string, batches [][][]any) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var reads []string
	staged := make([][][]any, len(tables))
	tabs := make([]*table, len(tables))
	for i, name := range tables {
		t := db.tables[name]
		if t == nil {
			return 0, fmt.Errorf("%w: %q", ErrNoTable, name)
		}
		tabs[i] = t
		reads = append(reads, db.fkReads(t)...)
		staged[i] = make([][]any, len(batches[i]))
		for j, row := range batches[i] {
			s, err := coerceRow(t, name, row)
			if err != nil {
				return 0, fmt.Errorf("engine: batch %s row %d: %w", name, j, err)
			}
			staged[i][j] = s
		}
	}
	unlock := db.lockRows(tables, reads)
	defer unlock()
	starts := make(map[string]int, len(tables))
	for i, name := range tables {
		if _, ok := starts[name]; !ok {
			starts[name] = len(tabs[i].rows)
		}
	}
	total := 0
	for i, name := range tables {
		for j, s := range staged[i] {
			if _, err := db.applyRowLocked(tabs[i], name, s); err != nil {
				db.rollbackMulti(starts)
				return 0, fmt.Errorf("engine: batch %s row %d: %w", name, j, err)
			}
			total++
		}
	}
	if werr := db.logMulti(tables, staged); werr != nil {
		db.rollbackMulti(starts)
		return 0, werr
	}
	for i, t := range tabs {
		if t.obs != nil && len(staged[i]) > 0 {
			t.obs.Batches.Inc()
			t.obs.BatchRows.Observe(int64(len(staged[i])))
			t.obs.RowsInserted.Add(int64(len(staged[i])))
		}
	}
	return total, nil
}

// rollbackToLocked removes the rows appended at or after start together
// with their index entries; the table's write lock must be held.
func (db *DB) rollbackToLocked(t *table, start int) {
	for pos := len(t.rows) - 1; pos >= start; pos-- {
		row := t.rows[pos]
		for _, ix := range t.indexes {
			key := ix.keyOf(row)
			ix.m[key] = removeInt(ix.m[key], pos)
			if len(ix.m[key]) == 0 {
				delete(ix.m, key)
			}
		}
	}
	t.rows = t.rows[:start]
	t.markOrderedDirty()
}

// coerceRow converts one row to the table's column types and checks
// width and NOT NULL; it touches only the immutable table definition,
// so no locks are required.
func coerceRow(t *table, tableName string, row []any) ([]any, error) {
	if len(row) != len(t.def.Columns) {
		return nil, fmt.Errorf("engine: table %q expects %d values, got %d",
			tableName, len(t.def.Columns), len(row))
	}
	stored := make([]any, len(row))
	for i, v := range row {
		cv, err := coerce(v, t.def.Columns[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %q: %w", t.def.Columns[i].Name, err)
		}
		if cv == nil && t.def.Columns[i].NotNull {
			return nil, fmt.Errorf("%w: column %s.%s is NOT NULL",
				ErrConstraint, tableName, t.def.Columns[i].Name)
		}
		stored[i] = cv
	}
	return stored, nil
}

// applyRowLocked runs the unique and foreign-key checks and appends an
// already-coerced row with its index entries. The table's write lock
// and read locks on its FK-referenced tables must be held. Each index
// key is encoded once and reused for both the unique check and the
// index append.
func (db *DB) applyRowLocked(t *table, tableName string, stored []any) (int, error) {
	type ixEntry struct {
		ix  *index
		key string
	}
	keys := make([]ixEntry, 0, len(t.indexes))
	for _, ix := range t.indexes {
		key := ix.keyOf(stored)
		if ix.unique && len(ix.m[key]) > 0 {
			return 0, fmt.Errorf("%w: duplicate key in %s (index %s)",
				ErrConstraint, tableName, ix.name)
		}
		keys = append(keys, ixEntry{ix, key})
	}
	if db.enforceFK {
		for _, fk := range t.def.ForeignKeys {
			if err := db.checkFKLocked(t, stored, fk); err != nil {
				return 0, err
			}
		}
	}
	pos := len(t.rows)
	oldCap := cap(t.rows)
	t.rows = append(t.rows, stored)
	t.noteAppend(oldCap)
	for _, e := range keys {
		e.ix.m[e.key] = append(e.ix.m[e.key], pos)
	}
	t.markOrderedDirty()
	return pos, nil
}

func (db *DB) insertLocked(ctx context.Context, tableName string, row []any) (int, error) {
	t := db.tables[tableName]
	if t == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	stored, err := coerceRow(t, tableName, row)
	if err != nil {
		return 0, err
	}
	pos, err := db.applyRowLocked(t, tableName, stored)
	if err != nil {
		return pos, err
	}
	if werr := db.logInsert(ctx, tableName, stored); werr != nil {
		// The log rejected the row: unwind the in-memory apply so the
		// applied state never runs ahead of the durable state.
		db.rollbackToLocked(t, pos)
		return 0, werr
	}
	if t.obs != nil {
		t.obs.Inserts.Inc()
		t.obs.RowsInserted.Inc()
	}
	return pos, nil
}

func (db *DB) checkFKLocked(t *table, row []any, fk rel.ForeignKey) error {
	vals := make([]any, len(fk.Columns))
	anyNull := false
	for i, cn := range fk.Columns {
		_, pos := t.def.Column(cn)
		vals[i] = row[pos]
		if row[pos] == nil {
			anyNull = true
		}
	}
	if anyNull {
		return nil // NULL FK values are permitted
	}
	ref := db.tables[fk.RefTable]
	if ref == nil {
		return fmt.Errorf("%w: %q (referenced by %s)", ErrNoTable, fk.RefTable, t.def.Name)
	}
	cols := make([]int, len(fk.RefColumns))
	for i, cn := range fk.RefColumns {
		_, pos := ref.def.Column(cn)
		if pos < 0 {
			return fmt.Errorf("engine: referenced column %s.%s missing", fk.RefTable, cn)
		}
		cols[i] = pos
	}
	if ix := ref.findIndex(cols); ix != nil {
		if len(ix.m[encodeKey(vals)]) > 0 {
			return nil
		}
	} else {
		for _, rrow := range ref.rows {
			if rrow == nil {
				continue
			}
			all := true
			for i, c := range cols {
				if !equalVals(rrow[c], vals[i]) {
					all = false
					break
				}
			}
			if all {
				return nil
			}
		}
	}
	return fmt.Errorf("%w: foreign key %s(%v) -> %s has no matching row",
		ErrConstraint, t.def.Name, vals, fk.RefTable)
}

// CheckAllFKs verifies every foreign key of every table, for loaders
// that disabled enforcement during bulk insert.
func (db *DB) CheckAllFKs() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	unlock := db.lockRows(nil, db.order)
	defer unlock()
	for _, name := range db.order {
		t := db.tables[name]
		for _, fk := range t.def.ForeignKeys {
			for _, row := range t.rows {
				if row == nil {
					continue
				}
				if err := db.checkFKLocked(t, row, fk); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// TableNames returns the table names in creation order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.order...)
}

// TableDef returns the schema of a table, or nil.
func (db *DB) TableDef(name string) *rel.Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if t := db.tables[name]; t != nil {
		return t.def
	}
	return nil
}

// RowCount returns the number of live rows in a table.
func (db *DB) RowCount(name string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[name]
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, r := range t.rows {
		if r != nil {
			n++
		}
	}
	return n
}

// TotalRows returns the number of live rows across all tables.
func (db *DB) TotalRows() int {
	total := 0
	for _, name := range db.TableNames() {
		total += db.RowCount(name)
	}
	return total
}

// ApproxBytes estimates the storage footprint of all live rows.
func (db *DB) ApproxBytes() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	unlock := db.lockRows(nil, db.order)
	defer unlock()
	total := 0
	for _, t := range db.tables {
		for _, row := range t.rows {
			if row == nil {
				continue
			}
			for _, v := range row {
				switch x := v.(type) {
				case string:
					total += 16 + len(x)
				case nil:
					total += 8
				default:
					total += 16
				}
			}
		}
	}
	return total
}

// Result reports the effect of a non-query statement.
type Result struct {
	// RowsAffected counts inserted, updated or deleted rows.
	RowsAffected int
}

// Rows is a fully materialized query result.
type Rows struct {
	// Cols are the output column names.
	Cols []string
	// Data holds the rows.
	Data [][]any
}

// Exec parses and executes one statement. SELECT statements return
// (nil-Result, rows); others return (result, nil).
func (db *DB) Exec(sql string) (Result, *Rows, error) {
	st, err := sqldb.Parse(sql)
	if err != nil {
		return Result{}, nil, err
	}
	return db.execStmtObserved(context.Background(), st, sql)
}

// Query parses and executes a SELECT, returning its rows.
func (db *DB) Query(sql string) (*Rows, error) {
	_, rows, err := db.Exec(sql)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		return nil, errors.New("engine: statement is not a query")
	}
	return rows, nil
}

// MustQuery is Query but panics on error; for tests and examples.
func (db *DB) MustQuery(sql string) *Rows {
	rows, err := db.Query(sql)
	if err != nil {
		panic(err)
	}
	return rows
}

// ExecScript parses and executes a semicolon-separated script, returning
// the result of the last statement.
func (db *DB) ExecScript(sql string) (Result, *Rows, error) {
	stmts, err := sqldb.ParseScript(sql)
	if err != nil {
		return Result{}, nil, err
	}
	var res Result
	var rows *Rows
	for _, st := range stmts {
		res, rows, err = db.ExecStmt(st)
		if err != nil {
			return Result{}, nil, err
		}
	}
	return res, rows, nil
}

// ExecStmt executes a parsed statement.
func (db *DB) ExecStmt(st sqldb.Stmt) (Result, *Rows, error) {
	return db.execStmtObserved(context.Background(), st, "")
}

// dispatchStmt routes a parsed statement to its executor. The context
// cancels SELECT execution at row-stride checkpoints; mutations and DDL
// are checked once up front and then run to completion, so a statement
// is either never started or fully applied under the engine's usual
// atomicity rules.
func (db *DB) dispatchStmt(ctx context.Context, st sqldb.Stmt) (Result, *Rows, error) {
	cc := newCancelCheck(ctx)
	if err := cc.now(); err != nil {
		return Result{}, nil, err
	}
	switch s := st.(type) {
	case *sqldb.Select:
		rows, err := db.execSelect(ctx, s, cc)
		return Result{}, rows, err
	case *sqldb.Insert:
		n, err := db.execInsert(ctx, s)
		return Result{RowsAffected: n}, nil, err
	case *sqldb.CreateTable:
		return Result{}, nil, db.CreateTable(s.Def)
	case *sqldb.CreateIndex:
		if s.Ordered {
			if len(s.Columns) != 1 {
				return Result{}, nil, fmt.Errorf("engine: ordered indexes take exactly one column")
			}
			return Result{}, nil, db.CreateOrderedIndex(s.Name, s.Table, s.Columns[0])
		}
		return Result{}, nil, db.CreateIndex(s.Name, s.Table, s.Columns, s.Unique)
	case *sqldb.DropTable:
		err := db.DropTable(s.Table)
		if err != nil && s.IfExists && errors.Is(err, ErrNoTable) {
			err = nil
		}
		return Result{}, nil, err
	case *sqldb.DropIndex:
		// Only a not-found falls through to the ordered-index namespace
		// (mirroring the DropTable/ErrNoTable path): a WAL failure or a
		// constraint-backed refusal must surface, and IF EXISTS forgives
		// a missing index, not a failed drop.
		err := db.DropIndex(s.Name)
		if errors.Is(err, ErrNoIndex) {
			err = db.DropOrderedIndex(s.Name)
		}
		if err != nil && s.IfExists && errors.Is(err, ErrNoIndex) {
			err = nil
		}
		return Result{}, nil, err
	case *sqldb.Update:
		n, err := db.execUpdate(ctx, s)
		return Result{RowsAffected: n}, nil, err
	case *sqldb.Delete:
		n, err := db.execDelete(ctx, s)
		return Result{RowsAffected: n}, nil, err
	default:
		return Result{}, nil, fmt.Errorf("engine: unsupported statement %T", st)
	}
}

func (db *DB) execInsert(ctx context.Context, ins *sqldb.Insert) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[ins.Table]
	if t == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, ins.Table)
	}
	unlock := db.lockRows([]string{ins.Table}, db.fkReads(t))
	defer unlock()
	colPos := make([]int, 0, len(ins.Columns))
	if len(ins.Columns) == 0 {
		for i := range t.def.Columns {
			colPos = append(colPos, i)
		}
	} else {
		for _, cn := range ins.Columns {
			_, pos := t.def.Column(cn)
			if pos < 0 {
				return 0, fmt.Errorf("engine: table %q has no column %q", ins.Table, cn)
			}
			colPos = append(colPos, pos)
		}
	}
	inserted := 0
	for _, exprRow := range ins.Rows {
		if len(exprRow) != len(colPos) {
			return inserted, fmt.Errorf("engine: INSERT expects %d values, got %d", len(colPos), len(exprRow))
		}
		row := make([]any, len(t.def.Columns))
		for i, e := range exprRow {
			v, err := evalConst(e)
			if err != nil {
				return inserted, err
			}
			row[colPos[i]] = v
		}
		if _, err := db.insertLocked(ctx, ins.Table, row); err != nil {
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}

func (db *DB) execUpdate(ctx context.Context, up *sqldb.Update) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[up.Table]
	if t == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, up.Table)
	}
	unlock := db.lockRows([]string{up.Table}, nil)
	defer unlock()
	env := newSingleTableEnv(t, up.Table)
	changed := 0
	// UPDATE is not atomic: an evaluation error keeps the rows changed so
	// far, and exactly those (position + post-image) go to the WAL on the
	// way out. A failed WAL append, though, unwinds them all — the live
	// state must never run ahead of the durable state.
	var walPos []int
	var walRows [][]any
	var oldRows [][]any
	finish := func(err error) (int, error) {
		if werr := db.logUpdate(ctx, up.Table, walPos, walRows); werr != nil {
			for i := len(walPos) - 1; i >= 0; i-- {
				pos, old, applied := walPos[i], oldRows[i], walRows[i]
				for _, ix := range t.indexes {
					oldKey, newKey := ix.keyOf(old), ix.keyOf(applied)
					if oldKey == newKey {
						continue
					}
					ix.m[newKey] = removeInt(ix.m[newKey], pos)
					ix.m[oldKey] = append(ix.m[oldKey], pos)
				}
				t.rows[pos] = old
			}
			if len(walPos) > 0 {
				t.markOrderedDirty()
			}
			changed = 0
			if err == nil {
				err = werr
			}
		}
		return changed, err
	}
	for pos, row := range t.rows {
		if row == nil {
			continue
		}
		env.row = row
		if up.Where != nil {
			v, err := evalExpr(up.Where, env)
			if err != nil {
				return finish(err)
			}
			if !truthy(v) {
				continue
			}
		}
		newRow := append([]any(nil), row...)
		for _, as := range up.Set {
			_, cp := t.def.Column(as.Column)
			if cp < 0 {
				return finish(fmt.Errorf("engine: table %q has no column %q", up.Table, as.Column))
			}
			v, err := evalExpr(as.Value, env)
			if err != nil {
				return finish(err)
			}
			cv, err := coerce(v, t.def.Columns[cp].Type)
			if err != nil {
				return finish(err)
			}
			if cv == nil && t.def.Columns[cp].NotNull {
				return finish(fmt.Errorf("%w: column %s.%s is NOT NULL", ErrConstraint, up.Table, as.Column))
			}
			newRow[cp] = cv
		}
		// Reindex: check uniques first, then swap keys, encoding each
		// key exactly once.
		type rekey struct {
			ix             *index
			oldKey, newKey string
		}
		var rekeys []rekey
		for _, ix := range t.indexes {
			oldKey := ix.keyOf(row)
			newKey := ix.keyOf(newRow)
			if oldKey == newKey {
				continue
			}
			if ix.unique && len(ix.m[newKey]) > 0 {
				return finish(fmt.Errorf("%w: duplicate key in %s (index %s)", ErrConstraint, up.Table, ix.name))
			}
			rekeys = append(rekeys, rekey{ix, oldKey, newKey})
		}
		for _, rk := range rekeys {
			rk.ix.m[rk.oldKey] = removeInt(rk.ix.m[rk.oldKey], pos)
			rk.ix.m[rk.newKey] = append(rk.ix.m[rk.newKey], pos)
		}
		t.prepareWrite()
		t.rows[pos] = newRow
		t.markOrderedDirty()
		changed++
		walPos = append(walPos, pos)
		walRows = append(walRows, newRow)
		oldRows = append(oldRows, row)
	}
	return finish(nil)
}

func (db *DB) execDelete(ctx context.Context, del *sqldb.Delete) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[del.Table]
	if t == nil {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, del.Table)
	}
	unlock := db.lockRows([]string{del.Table}, nil)
	defer unlock()
	env := newSingleTableEnv(t, del.Table)
	deleted := 0
	// Like UPDATE, DELETE is not atomic: the positions removed so far go
	// to the WAL on every exit path — but a failed WAL append restores
	// them, so the live state never runs ahead of the durable state.
	var walPos []int
	var oldRows [][]any
	finish := func(err error) (int, error) {
		if werr := db.logDelete(ctx, del.Table, walPos); werr != nil {
			for i := len(walPos) - 1; i >= 0; i-- {
				pos, old := walPos[i], oldRows[i]
				t.rows[pos] = old
				for _, ix := range t.indexes {
					key := ix.keyOf(old)
					ix.m[key] = append(ix.m[key], pos)
				}
			}
			if len(walPos) > 0 {
				t.markOrderedDirty()
			}
			deleted = 0
			if err == nil {
				err = werr
			}
		}
		return deleted, err
	}
	for pos, row := range t.rows {
		if row == nil {
			continue
		}
		env.row = row
		if del.Where != nil {
			v, err := evalExpr(del.Where, env)
			if err != nil {
				return finish(err)
			}
			if !truthy(v) {
				continue
			}
		}
		for _, ix := range t.indexes {
			key := ix.keyOf(row)
			ix.m[key] = removeInt(ix.m[key], pos)
		}
		t.prepareWrite()
		t.rows[pos] = nil
		t.markOrderedDirty()
		deleted++
		walPos = append(walPos, pos)
		oldRows = append(oldRows, row)
	}
	return finish(nil)
}

func removeInt(xs []int, x int) []int {
	for i, v := range xs {
		if v == x {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// ScanTable visits every live row of a table (as a copy); returning
// false stops the scan.
func (db *DB) ScanTable(name string, fn func(row []any) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(append([]any(nil), row...)) {
			return nil
		}
	}
	return nil
}

// Lookup returns copies of the rows whose named columns equal the given
// values, using a matching index when one exists.
func (db *DB) Lookup(tableName string, colNames []string, vals []any) ([][]any, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[tableName]
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		_, pos := t.def.Column(cn)
		if pos < 0 {
			return nil, fmt.Errorf("engine: table %q has no column %q", tableName, cn)
		}
		cols[i] = pos
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out [][]any
	if ix := t.findIndex(cols); ix != nil {
		hits := ix.m[encodeKey(vals)]
		if t.obs != nil {
			t.obs.IndexHits.Inc()
			t.obs.RowsScanned.Add(int64(len(hits)))
		}
		for _, pos := range hits {
			if row := t.rows[pos]; row != nil {
				out = append(out, append([]any(nil), row...))
			}
		}
		return out, nil
	}
	if t.obs != nil {
		t.obs.Scans.Inc()
		t.obs.RowsScanned.Add(int64(len(t.rows)))
	}
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		match := true
		for i, c := range cols {
			if !equalVals(row[c], vals[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, append([]any(nil), row...))
		}
	}
	return out, nil
}
