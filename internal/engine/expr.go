package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"xmlrdb/internal/sqldb"
)

// rowEnv resolves column references against a flat joined row.
type rowEnv struct {
	bindings []envBinding
	row      []any
}

type envBinding struct {
	name   string
	cols   []string
	offset int
}

func newSingleTableEnv(t *table, name string) *rowEnv {
	return &rowEnv{bindings: []envBinding{{name: name, cols: t.def.ColumnNames()}}}
}

// resolve returns the flat index of a column reference.
func (e *rowEnv) resolve(tableName, col string) (int, error) {
	if tableName != "" {
		for _, b := range e.bindings {
			if b.name != tableName {
				continue
			}
			for i, c := range b.cols {
				if c == col {
					return b.offset + i, nil
				}
			}
			return 0, fmt.Errorf("engine: table %q has no column %q", tableName, col)
		}
		return 0, fmt.Errorf("engine: unknown table %q in expression", tableName)
	}
	found := -1
	for _, b := range e.bindings {
		for i, c := range b.cols {
			if c == col {
				if found >= 0 {
					return 0, fmt.Errorf("engine: ambiguous column %q", col)
				}
				found = b.offset + i
			}
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("engine: unknown column %q", col)
	}
	return found, nil
}

// width returns the total number of flat columns.
func (e *rowEnv) width() int {
	if len(e.bindings) == 0 {
		return 0
	}
	last := e.bindings[len(e.bindings)-1]
	return last.offset + len(last.cols)
}

// evalConst evaluates an expression with no row context (INSERT values).
func evalConst(e sqldb.Expr) (any, error) {
	return evalExpr(e, &rowEnv{})
}

// evalExpr evaluates an expression against a row environment. Aggregate
// calls are rejected here; the select executor evaluates them in group
// context.
func evalExpr(e sqldb.Expr, env *rowEnv) (any, error) {
	switch x := e.(type) {
	case *sqldb.Lit:
		return x.Value, nil
	case *sqldb.Col:
		idx, err := env.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		if env.row == nil || idx >= len(env.row) {
			return nil, fmt.Errorf("engine: column %q referenced outside row context", x.Name)
		}
		return env.row[idx], nil
	case *sqldb.Bin:
		return evalBin(x, env)
	case *sqldb.Not:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		return !truthy(v), nil
	case *sqldb.IsNull:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		return (v == nil) != x.Negate, nil
	case *sqldb.In:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return false, nil
		}
		for _, cand := range x.List {
			cv, err := evalExpr(cand, env)
			if err != nil {
				return nil, err
			}
			if equalVals(v, cv) {
				return !x.Negate, nil
			}
		}
		return x.Negate, nil
	case *sqldb.Like:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return nil, err
		}
		s, ok := v.(string)
		if !ok {
			return false, nil
		}
		return likeMatch(s, x.Pattern) != x.Negate, nil
	case *sqldb.Call:
		if x.IsAggregate() {
			return nil, fmt.Errorf("engine: aggregate %s outside GROUP BY context", x.Fn)
		}
		return evalScalarFn(x, env)
	default:
		return nil, fmt.Errorf("engine: unsupported expression %T", e)
	}
}

func evalBin(b *sqldb.Bin, env *rowEnv) (any, error) {
	// Short-circuit logic operators.
	switch b.Op {
	case sqldb.OpAnd:
		l, err := evalExpr(b.L, env)
		if err != nil {
			return nil, err
		}
		if !truthy(l) {
			return false, nil
		}
		r, err := evalExpr(b.R, env)
		if err != nil {
			return nil, err
		}
		return truthy(r), nil
	case sqldb.OpOr:
		l, err := evalExpr(b.L, env)
		if err != nil {
			return nil, err
		}
		if truthy(l) {
			return true, nil
		}
		r, err := evalExpr(b.R, env)
		if err != nil {
			return nil, err
		}
		return truthy(r), nil
	}
	l, err := evalExpr(b.L, env)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(b.R, env)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case sqldb.OpEq:
		return equalVals(l, r), nil
	case sqldb.OpNe:
		if l == nil || r == nil {
			return false, nil
		}
		return compare(l, r) != 0, nil
	case sqldb.OpLt, sqldb.OpLe, sqldb.OpGt, sqldb.OpGe:
		if l == nil || r == nil {
			return false, nil
		}
		c := compare(l, r)
		switch b.Op {
		case sqldb.OpLt:
			return c < 0, nil
		case sqldb.OpLe:
			return c <= 0, nil
		case sqldb.OpGt:
			return c > 0, nil
		default:
			return c >= 0, nil
		}
	case sqldb.OpAdd, sqldb.OpSub, sqldb.OpMul, sqldb.OpDiv, sqldb.OpMod:
		return arith(b.Op, l, r)
	default:
		return nil, fmt.Errorf("engine: unknown operator %q", b.Op)
	}
}

func arith(op string, l, r any) (any, error) {
	if l == nil || r == nil {
		return nil, nil
	}
	if op == sqldb.OpAdd {
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				return ls + rs, nil // string concatenation
			}
		}
	}
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case sqldb.OpAdd:
			return li + ri, nil
		case sqldb.OpSub:
			return li - ri, nil
		case sqldb.OpMul:
			return li * ri, nil
		case sqldb.OpDiv:
			if ri == 0 {
				return nil, fmt.Errorf("engine: division by zero")
			}
			return li / ri, nil
		case sqldb.OpMod:
			if ri == 0 {
				return nil, fmt.Errorf("engine: division by zero")
			}
			return li % ri, nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, fmt.Errorf("engine: cannot apply %q to %T and %T", op, l, r)
	}
	switch op {
	case sqldb.OpAdd:
		return lf + rf, nil
	case sqldb.OpSub:
		return lf - rf, nil
	case sqldb.OpMul:
		return lf * rf, nil
	case sqldb.OpDiv:
		if rf == 0 {
			return nil, fmt.Errorf("engine: division by zero")
		}
		return lf / rf, nil
	case sqldb.OpMod:
		return math.Mod(lf, rf), nil
	}
	return nil, fmt.Errorf("engine: unknown operator %q", op)
}

func evalScalarFn(c *sqldb.Call, env *rowEnv) (any, error) {
	args := make([]any, len(c.Args))
	for i, a := range c.Args {
		v, err := evalExpr(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch c.Fn {
	case "LENGTH":
		if len(args) != 1 {
			return nil, fmt.Errorf("engine: LENGTH takes 1 argument")
		}
		if s, ok := args[0].(string); ok {
			return int64(len(s)), nil
		}
		return nil, nil
	case "LOWER":
		if s, ok := args[0].(string); ok {
			return strings.ToLower(s), nil
		}
		return args[0], nil
	case "UPPER":
		if s, ok := args[0].(string); ok {
			return strings.ToUpper(s), nil
		}
		return args[0], nil
	case "ABS":
		switch x := args[0].(type) {
		case int64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case float64:
			return math.Abs(x), nil
		}
		return nil, nil
	case "COALESCE":
		for _, a := range args {
			if a != nil {
				return a, nil
			}
		}
		return nil, nil
	case "NUM":
		// NUM casts text to a number (integer when exact), for arithmetic
		// over the TEXT columns XML shredding produces.
		if len(args) != 1 {
			return nil, fmt.Errorf("engine: NUM takes 1 argument")
		}
		switch x := args[0].(type) {
		case nil:
			return nil, nil
		case int64, float64:
			return x, nil
		case string:
			if n, err := strconv.ParseInt(x, 10, 64); err == nil {
				return n, nil
			}
			f, err := strconv.ParseFloat(x, 64)
			if err != nil {
				return nil, fmt.Errorf("engine: NUM(%q): not a number", x)
			}
			return f, nil
		default:
			return nil, fmt.Errorf("engine: NUM(%T): not a number", x)
		}
	default:
		return nil, fmt.Errorf("engine: unknown function %s", c.Fn)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one byte).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over bytes.
	m, n := len(s), len(pattern)
	prev := make([]bool, m+1)
	cur := make([]bool, m+1)
	prev[0] = true
	for j := 1; j <= n; j++ {
		pc := pattern[j-1]
		cur[0] = prev[0] && pc == '%'
		for i := 1; i <= m; i++ {
			switch pc {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == pc
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// exprRefs returns the set of binding names an expression references;
// unqualified columns resolve against the environment metadata.
func exprRefs(e sqldb.Expr, env *rowEnv) (map[string]bool, error) {
	out := make(map[string]bool)
	var walk func(sqldb.Expr) error
	walk = func(x sqldb.Expr) error {
		switch v := x.(type) {
		case nil:
			return nil
		case *sqldb.Lit:
			return nil
		case *sqldb.Col:
			if v.Table != "" {
				out[v.Table] = true
				return nil
			}
			// Resolve unqualified name to its binding.
			found := ""
			for _, b := range env.bindings {
				for _, c := range b.cols {
					if c == v.Name {
						if found != "" && found != b.name {
							return fmt.Errorf("engine: ambiguous column %q", v.Name)
						}
						found = b.name
					}
				}
			}
			if found == "" {
				return fmt.Errorf("engine: unknown column %q", v.Name)
			}
			out[found] = true
			return nil
		case *sqldb.Bin:
			if err := walk(v.L); err != nil {
				return err
			}
			return walk(v.R)
		case *sqldb.Not:
			return walk(v.X)
		case *sqldb.IsNull:
			return walk(v.X)
		case *sqldb.In:
			if err := walk(v.X); err != nil {
				return err
			}
			for _, c := range v.List {
				if err := walk(c); err != nil {
					return err
				}
			}
			return nil
		case *sqldb.Like:
			return walk(v.X)
		case *sqldb.Call:
			for _, a := range v.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("engine: unsupported expression %T", x)
		}
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	return out, nil
}

// hasAggregate reports whether the expression contains an aggregate call.
func hasAggregate(e sqldb.Expr) bool {
	switch v := e.(type) {
	case nil:
		return false
	case *sqldb.Call:
		if v.IsAggregate() {
			return true
		}
		for _, a := range v.Args {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	case *sqldb.Bin:
		return hasAggregate(v.L) || hasAggregate(v.R)
	case *sqldb.Not:
		return hasAggregate(v.X)
	case *sqldb.IsNull:
		return hasAggregate(v.X)
	case *sqldb.In:
		if hasAggregate(v.X) {
			return true
		}
		for _, c := range v.List {
			if hasAggregate(c) {
				return true
			}
		}
		return false
	case *sqldb.Like:
		return hasAggregate(v.X)
	default:
		return false
	}
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e sqldb.Expr) []sqldb.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqldb.Bin); ok && b.Op == sqldb.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sqldb.Expr{e}
}
