package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"xmlrdb/internal/faultfs"
)

// MVCC snapshot-read tests: cursors hold no locks while streaming, so
// writers, Checkpoint and the vacuum proceed freely under an open
// cursor, and the cursor's rows are exactly the tables' state at open.

// drainRows pulls a cursor to completion without closing it early.
func drainRows(t *testing.T, cur Cursor) [][]any {
	t.Helper()
	var out [][]any
	for cur.Next() {
		out = append(out, cur.Row())
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor failed: %v", err)
	}
	return out
}

// TestSnapshotStableUnderWrites is the core MVCC contract: a cursor
// opened before a mix of INSERT, UPDATE and DELETE statements streams
// exactly the rows that existed at open, while the writes commit
// immediately (no blocking) and later readers see them.
func TestSnapshotStableUnderWrites(t *testing.T) {
	db := testDB(t)
	before := queryData(t, db, `SELECT id, name, age FROM authors ORDER BY id`)

	cur, err := db.QueryCursorContext(context.Background(), `SELECT id, name, age FROM authors ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	// Writers must commit while the cursor is open (pre-MVCC these would
	// deadlock against the cursor's read locks once a writer queued).
	for _, stmt := range []string{
		`UPDATE authors SET age = 99 WHERE id = 1`,
		`DELETE FROM authors WHERE id = 2`,
		`INSERT INTO authors VALUES (4, 'New', 20)`,
	} {
		if _, _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}

	got := drainRows(t, cur)
	if !reflect.DeepEqual(got, before) {
		t.Errorf("snapshot drifted:\n got %v\nwant %v", got, before)
	}
	after := queryData(t, db, `SELECT id, name, age FROM authors ORDER BY id`)
	if len(after) != 3 || after[0][2] != int64(99) || after[2][0] != int64(4) {
		t.Errorf("writes not visible to a fresh reader: %v", after)
	}
}

// TestWriterAndCheckpointProceedMidStream is the acceptance scenario: a
// reader cursor is mid-stream on a table while a writer commits to the
// same table AND a checkpoint completes — all concurrently — and the
// reader's full result is identical to its open-time snapshot.
func TestWriterAndCheckpointProceedMidStream(t *testing.T) {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("mvcc", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`CREATE TABLE ev (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	var want [][]any
	for i := 0; i < 200; i++ {
		if _, _, err := db.Exec(fmt.Sprintf(`INSERT INTO ev VALUES (%d, %d)`, i, i*i)); err != nil {
			t.Fatal(err)
		}
		want = append(want, []any{int64(i), int64(i * i)})
	}

	cur, err := db.QueryCursorContext(context.Background(), `SELECT id, v FROM ev ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// Pull a few rows so the cursor is genuinely mid-stream.
	var got [][]any
	for i := 0; i < 10 && cur.Next(); i++ {
		got = append(got, cur.Row())
	}

	// Writer and checkpoint run concurrently with the open cursor; both
	// must finish promptly (pre-MVCC the checkpoint queued behind the
	// cursor's read lock and the writer behind the checkpoint).
	done := make(chan error, 2)
	go func() {
		_, _, err := db.Exec(`UPDATE ev SET v = 0 WHERE id < 100`)
		done <- err
	}()
	go func() { done <- db.Checkpoint() }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("concurrent op failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("writer or checkpoint blocked behind the open cursor")
		}
	}

	for cur.Next() {
		got = append(got, cur.Row())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reader saw writer's rows: got %d rows, first diff hunt: %v", len(got), got[:minInt(5, len(got))])
	}
	// The update really committed.
	if rows := queryData(t, db, `SELECT COUNT(*) FROM ev WHERE v = 0`); rows[0][0] != int64(100) {
		t.Errorf("update lost: %v", rows)
	}
}

// TestCheckpointWithOpenCursor is the regression for the reported bug:
// with a streaming cursor open (and idle), Checkpoint must complete
// rather than deadlock, and the cursor must still drain afterwards.
func TestCheckpointWithOpenCursor(t *testing.T) {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("ckpt", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db)
	before := queryData(t, db, `SELECT id, title FROM books ORDER BY id`)

	cur, err := db.QueryCursorContext(context.Background(), `SELECT id, title FROM books ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Next() {
		t.Fatal("no rows")
	}

	ckpt := make(chan error, 1)
	go func() { ckpt <- db.Checkpoint() }()
	select {
	case err := <-ckpt:
		if err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("checkpoint deadlocked behind the open cursor")
	}

	got := [][]any{cur.Row()}
	got = append(got, drainRows(t, cur)...)
	if !reflect.DeepEqual(got, before) {
		t.Errorf("cursor broken by checkpoint: got %v want %v", got, before)
	}
}

// TestPinBookkeeping checks the snapshot-pin registry the vacuum and
// the serve guard read: pins appear at open, disappear at Close (or
// end-of-stream), and the oldest pinned epoch is the earliest open.
func TestPinBookkeeping(t *testing.T) {
	db := testDB(t)
	if n := db.PinnedCursors(); n != 0 {
		t.Fatalf("idle database pins %d cursors", n)
	}
	c1, err := db.QueryCursorContext(context.Background(), `SELECT id FROM authors`)
	if err != nil {
		t.Fatal(err)
	}
	e1, ok := db.OldestPinnedEpoch()
	if !ok || db.PinnedCursors() != 1 {
		t.Fatalf("after open: pins=%d ok=%v", db.PinnedCursors(), ok)
	}
	if _, _, err := db.Exec(`INSERT INTO authors VALUES (7, 'Seven', 7)`); err != nil {
		t.Fatal(err)
	}
	c2, err := db.QueryCursorContext(context.Background(), `SELECT id FROM authors`)
	if err != nil {
		t.Fatal(err)
	}
	if db.PinnedCursors() != 2 {
		t.Fatalf("pins=%d, want 2", db.PinnedCursors())
	}
	if oldest, _ := db.OldestPinnedEpoch(); oldest != e1 {
		t.Errorf("oldest pinned epoch %d, want first cursor's %d", oldest, e1)
	}
	if db.Epoch() <= e1 {
		t.Errorf("epoch clock did not advance past %d on write", e1)
	}
	c1.Close()
	c1.Close() // idempotent
	if db.PinnedCursors() != 1 {
		t.Fatalf("pins=%d after first close, want 1", db.PinnedCursors())
	}
	drainRows(t, c2) // EOF self-closes
	if db.PinnedCursors() != 0 {
		t.Fatalf("pins=%d after drain, want 0", db.PinnedCursors())
	}
	if _, ok := db.OldestPinnedEpoch(); ok {
		t.Error("OldestPinnedEpoch reports a pin with no cursor open")
	}
}

// TestConcurrentCloseAndNext exercises the serve watchdog's contract
// under the race detector: Close arriving from another goroutine while
// the consumer loops on Next must be safe and must terminate the
// stream.
func TestConcurrentCloseAndNext(t *testing.T) {
	db := testDB(t)
	for round := 0; round < 50; round++ {
		cur, err := db.QueryCursorContext(context.Background(), `SELECT id, name FROM authors`)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur.Close()
		}()
		for cur.Next() {
			_ = cur.Row()
		}
		wg.Wait()
	}
	if db.PinnedCursors() != 0 {
		t.Fatalf("leaked %d pins", db.PinnedCursors())
	}
}

// hintedCursor wraps a Cursor with an inflated cardinality hint.
type hintedCursor struct {
	Cursor
	hint int
}

func (h *hintedCursor) CardinalityHint() int { return h.hint }

// TestDrainPreallocClamp: a wildly overestimated plan cardinality must
// not translate into an equally wild preallocation.
func TestDrainPreallocClamp(t *testing.T) {
	db := testDB(t)
	cur, err := db.QueryCursorContext(context.Background(), `SELECT id FROM authors`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DrainCursor(&hintedCursor{Cursor: cur, hint: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Data))
	}
	if c := cap(res.Data); c > drainPreallocCap {
		t.Errorf("hint of 1<<30 preallocated cap %d, want <= %d", c, drainPreallocCap)
	}
}

// TestCompactTableReclaimsDeletedSlots: compaction drops the nil slots
// DELETE leaves behind, rebuilds the hash indexes for the renumbered
// positions, and leaves query results and integrity intact.
func TestCompactTableReclaimsDeletedSlots(t *testing.T) {
	db := testDB(t)
	if _, _, err := db.Exec(`DELETE FROM books WHERE year = 1999`); err != nil {
		t.Fatal(err)
	}
	removed, err := db.CompactTable("books")
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("reclaimed %d slots, want 2", removed)
	}
	db.mu.RLock()
	nrows := len(db.tables["books"].rows)
	db.mu.RUnlock()
	if nrows != 2 {
		t.Fatalf("%d slots after compaction, want 2", nrows)
	}
	got := queryData(t, db, `SELECT id, title FROM books ORDER BY id`)
	want := [][]any{{int64(11), "Go Systems"}, {int64(12), "Data Models"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-compaction rows: got %v want %v", got, want)
	}
	// The PRIMARY KEY index must resolve at the new positions.
	if got := queryData(t, db, `SELECT title FROM books WHERE id = 12`); len(got) != 1 || got[0][0] != "Data Models" {
		t.Errorf("index probe after compaction: %v", got)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Errorf("integrity after compaction: %v", err)
	}
	// Already-compact tables are a no-op.
	if n, err := db.CompactTable("books"); err != nil || n != 0 {
		t.Errorf("second compaction: n=%d err=%v", n, err)
	}
}

// TestCompactionUnderOpenCursor: an open cursor streams its captured
// snapshot even when the table is compacted (rows renumbered, slice
// replaced) underneath it.
func TestCompactionUnderOpenCursor(t *testing.T) {
	db := testDB(t)
	before := queryData(t, db, `SELECT id FROM books ORDER BY id`)
	cur, err := db.QueryCursorContext(context.Background(), `SELECT id FROM books ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, _, err := db.Exec(`DELETE FROM books WHERE id = 10`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CompactTable("books"); err != nil {
		t.Fatal(err)
	}
	if got := drainRows(t, cur); !reflect.DeepEqual(got, before) {
		t.Errorf("cursor saw compaction: got %v want %v", got, before)
	}
	if got := queryData(t, db, `SELECT id FROM books ORDER BY id`); len(got) != len(before)-1 {
		t.Errorf("fresh reader after compaction: %v", got)
	}
}

// TestVacuumAndStartVacuum: Vacuum sweeps every table; the background
// runner compacts on its own and stops cleanly (stop is idempotent).
func TestVacuumAndStartVacuum(t *testing.T) {
	db := testDB(t)
	for _, stmt := range []string{
		`DELETE FROM books WHERE id = 10`,
		`DELETE FROM books WHERE id = 11`,
		`DELETE FROM authors WHERE id = 2`, // now unreferenced
	} {
		if _, _, err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	total, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Fatalf("vacuum reclaimed %d slots, want 3", total)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Fatal(err)
	}

	if _, _, err := db.Exec(`DELETE FROM books WHERE id = 12`); err != nil {
		t.Fatal(err)
	}
	stop := db.StartVacuum(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		db.mu.RLock()
		tbl := db.tables["books"]
		tbl.mu.RLock()
		holes := 0
		for _, row := range tbl.rows {
			if row == nil {
				holes++
			}
		}
		tbl.mu.RUnlock()
		db.mu.RUnlock()
		if holes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background vacuum never compacted the table")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

// TestCompactionRecovery: the frameCompact WAL record replays to the
// exact same renumbered state — the recovered store is dump-identical
// to the live one, including writes after the compaction.
func TestCompactionRecovery(t *testing.T) {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("compact", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db)
	if _, _, err := db.Exec(`DELETE FROM books WHERE id = 10`); err != nil {
		t.Fatal(err)
	}
	// runWorkload's own deletes may have left additional holes.
	if n, err := db.CompactTable("books"); err != nil || n < 1 {
		t.Fatalf("compact: n=%d err=%v", n, err)
	}
	// Writes after the compaction reference the renumbered positions.
	if _, _, err := db.Exec(`INSERT INTO books VALUES (14, 'Post Compact', 1, 2020)`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`UPDATE books SET year = 2021 WHERE id = 11`); err != nil {
		t.Fatal(err)
	}
	want := dumpState(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenAtOpts("compact", DurabilityOptions{FS: fs, VerifyOnRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := dumpState(db2); got != want {
		t.Errorf("recovered state differs:\n got %s\nwant %s", got, want)
	}
	// The recovered store accepts snapshot reads and writes as usual.
	if got := queryData(t, db2, `SELECT title FROM books WHERE id = 14`); len(got) != 1 || got[0][0] != "Post Compact" {
		t.Errorf("post-recovery probe: %v", got)
	}
}

// TestSnapshotStableAcrossJoin: multi-table cursors capture all their
// sources at one instant (under the same lock window), so a join
// stream is consistent even when both tables churn mid-stream.
func TestSnapshotStableAcrossJoin(t *testing.T) {
	db := testDB(t)
	q := `SELECT b.title, a.name FROM books b JOIN authors a ON b.author = a.id ORDER BY b.id`
	before := queryData(t, db, q)
	cur, err := db.QueryCursorContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, _, err := db.Exec(`UPDATE authors SET name = 'Changed' WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`DELETE FROM books WHERE id = 13`); err != nil {
		t.Fatal(err)
	}
	if got := drainRows(t, cur); !reflect.DeepEqual(got, before) {
		t.Errorf("join snapshot drifted:\n got %v\nwant %v", got, before)
	}
}

// BenchmarkWriterWithPinnedReaders measures writer throughput (one
// INSERT plus one UPDATE per iteration, exercising both the append and
// the copy-on-write path) while open cursors sit mid-stream on the
// same table — the EXPERIMENTS.md E16 scenario. Before MVCC a single
// open cursor stalled every writer indefinitely (throughput zero until
// the client finished streaming); now writers pay only the
// copy-on-write of the outer row slice.
func BenchmarkWriterWithPinnedReaders(b *testing.B) {
	for _, pinned := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("cursors=%d", pinned), func(b *testing.B) {
			db := Open()
			if _, _, err := db.Exec(`CREATE TABLE ev (id INTEGER PRIMARY KEY, v INTEGER)`); err != nil {
				b.Fatal(err)
			}
			rows := make([][]any, 10000)
			for i := range rows {
				rows[i] = []any{int64(i), int64(i)}
			}
			if _, err := db.InsertBatch("ev", rows); err != nil {
				b.Fatal(err)
			}
			cursors := make([]Cursor, pinned)
			for i := range cursors {
				cur, err := db.QueryCursorContext(context.Background(), `SELECT id, v FROM ev`)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 5 && cur.Next(); j++ {
				}
				cursors[i] = cur
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := int64(100000 + i)
				if _, _, err := db.Exec(fmt.Sprintf(`INSERT INTO ev VALUES (%d, 0)`, id)); err != nil {
					b.Fatal(err)
				}
				if _, _, err := db.Exec(fmt.Sprintf(`UPDATE ev SET v = 1 WHERE id = %d`, id)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, cur := range cursors {
				cur.Close()
			}
		})
	}
}
