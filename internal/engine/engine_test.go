package engine

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"xmlrdb/internal/rel"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	_, _, err := db.ExecScript(`
CREATE TABLE authors (id INTEGER PRIMARY KEY, name TEXT NOT NULL, age INTEGER);
CREATE TABLE books (id INTEGER PRIMARY KEY, title TEXT NOT NULL, author INTEGER,
  year INTEGER, FOREIGN KEY (author) REFERENCES authors (id));
INSERT INTO authors (id, name, age) VALUES (1, 'Smith', 40), (2, 'Brown', 35), (3, 'Lee', 50);
INSERT INTO books VALUES (10, 'XML RDBMS', 1, 1999), (11, 'Go Systems', 2, 2005),
  (12, 'Data Models', 1, 2001), (13, 'Orphanless', 3, 1999);
`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func queryData(t *testing.T, db *DB, sql string) [][]any {
	t.Helper()
	rows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows.Data
}

func TestBasicSelect(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `SELECT name FROM authors ORDER BY name`)
	want := [][]any{{"Brown"}, {"Lee"}, {"Smith"}}
	if !reflect.DeepEqual(data, want) {
		t.Errorf("got %v, want %v", data, want)
	}
}

func TestWhereAndProjection(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `SELECT title, year FROM books WHERE year > 2000 ORDER BY year DESC`)
	if len(data) != 2 || data[0][0] != "Go Systems" || data[1][1] != int64(2001) {
		t.Errorf("got %v", data)
	}
}

func TestJoin(t *testing.T) {
	db := testDB(t)
	for _, sql := range []string{
		`SELECT b.title, a.name FROM books b JOIN authors a ON b.author = a.id WHERE a.name = 'Smith' ORDER BY b.title`,
		`SELECT b.title, a.name FROM books b, authors a WHERE b.author = a.id AND a.name = 'Smith' ORDER BY b.title`,
	} {
		data := queryData(t, db, sql)
		if len(data) != 2 || data[0][0] != "Data Models" || data[1][0] != "XML RDBMS" {
			t.Errorf("%s:\n got %v", sql, data)
		}
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := testDB(t)
	_, _, err := db.ExecScript(`
CREATE TABLE awards (book INTEGER, prize TEXT);
INSERT INTO awards VALUES (10, 'Best Paper'), (12, 'Honorable');
`)
	if err != nil {
		t.Fatal(err)
	}
	data := queryData(t, db, `
SELECT a.name, w.prize FROM authors a
JOIN books b ON b.author = a.id
JOIN awards w ON w.book = b.id
ORDER BY w.prize`)
	if len(data) != 2 || data[0][0] != "Smith" || data[0][1] != "Best Paper" {
		t.Errorf("got %v", data)
	}
}

func TestLeftJoin(t *testing.T) {
	db := testDB(t)
	_, _, err := db.ExecScript(`
CREATE TABLE reviews (book INTEGER, stars INTEGER);
INSERT INTO reviews VALUES (10, 5);
`)
	if err != nil {
		t.Fatal(err)
	}
	data := queryData(t, db, `
SELECT b.title, r.stars FROM books b LEFT JOIN reviews r ON r.book = b.id ORDER BY b.id`)
	if len(data) != 4 {
		t.Fatalf("got %d rows", len(data))
	}
	if data[0][1] != int64(5) {
		t.Errorf("matched row = %v", data[0])
	}
	if data[1][1] != nil {
		t.Errorf("unmatched row should have NULL stars: %v", data[1])
	}
	// WHERE IS NULL over left join finds unmatched rows.
	data = queryData(t, db, `
SELECT b.title FROM books b LEFT JOIN reviews r ON r.book = b.id WHERE r.stars IS NULL ORDER BY b.id`)
	if len(data) != 3 {
		t.Errorf("anti-join rows = %v", data)
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `
SELECT a.name, COUNT(*) n, MIN(b.year), MAX(b.year)
FROM authors a JOIN books b ON b.author = a.id
GROUP BY a.name ORDER BY n DESC, a.name`)
	if len(data) != 3 {
		t.Fatalf("groups = %v", data)
	}
	if data[0][0] != "Smith" || data[0][1] != int64(2) ||
		data[0][2] != int64(1999) || data[0][3] != int64(2001) {
		t.Errorf("smith row = %v", data[0])
	}
}

func TestHaving(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `
SELECT author, COUNT(*) FROM books GROUP BY author HAVING COUNT(*) > 1`)
	if len(data) != 1 || data[0][0] != int64(1) {
		t.Errorf("got %v", data)
	}
}

func TestGlobalAggregates(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `SELECT COUNT(*), SUM(year), AVG(age) FROM books, authors WHERE books.author = authors.id`)
	if len(data) != 1 {
		t.Fatalf("got %v", data)
	}
	if data[0][0] != int64(4) {
		t.Errorf("count = %v", data[0][0])
	}
	if data[0][1] != int64(1999+2005+2001+1999) {
		t.Errorf("sum = %v", data[0][1])
	}
	// Aggregate over empty input yields one row.
	data = queryData(t, db, `SELECT COUNT(*), MAX(year) FROM books WHERE year > 3000`)
	if len(data) != 1 || data[0][0] != int64(0) || data[0][1] != nil {
		t.Errorf("empty agg = %v", data)
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `SELECT COUNT(DISTINCT year) FROM books`)
	if data[0][0] != int64(3) {
		t.Errorf("distinct years = %v", data[0][0])
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `SELECT DISTINCT year FROM books ORDER BY year`)
	if len(data) != 3 || data[0][0] != int64(1999) {
		t.Errorf("got %v", data)
	}
}

func TestLimitOffset(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `SELECT id FROM books ORDER BY id LIMIT 2 OFFSET 1`)
	if len(data) != 2 || data[0][0] != int64(11) || data[1][0] != int64(12) {
		t.Errorf("got %v", data)
	}
	if got := queryData(t, db, `SELECT id FROM books ORDER BY id LIMIT 0`); len(got) != 0 {
		t.Errorf("limit 0 = %v", got)
	}
	if _, err := db.Query(`SELECT id FROM books OFFSET`); err == nil {
		t.Error("bad syntax accepted")
	}
}

func TestExpressionsAndFunctions(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `
SELECT UPPER(name), LENGTH(name), age * 2 + 1 FROM authors WHERE name = 'Lee'`)
	if data[0][0] != "LEE" || data[0][1] != int64(3) || data[0][2] != int64(101) {
		t.Errorf("got %v", data[0])
	}
	data = queryData(t, db, `SELECT name FROM authors WHERE name LIKE '%e%' ORDER BY name`)
	if len(data) != 1 || data[0][0] != "Lee" {
		t.Errorf("like = %v", data)
	}
	data = queryData(t, db, `SELECT name FROM authors WHERE age IN (35, 50) ORDER BY age`)
	if len(data) != 2 || data[0][0] != "Brown" {
		t.Errorf("in = %v", data)
	}
	data = queryData(t, db, `SELECT COALESCE(NULL, 'x'), 'a' + 'b' FROM authors LIMIT 1`)
	if data[0][0] != "x" || data[0][1] != "ab" {
		t.Errorf("coalesce/concat = %v", data[0])
	}
}

func TestOrderByPositionAndAlias(t *testing.T) {
	db := testDB(t)
	a := queryData(t, db, `SELECT name, age FROM authors ORDER BY 2 DESC`)
	if a[0][0] != "Lee" {
		t.Errorf("positional order = %v", a)
	}
	b := queryData(t, db, `SELECT name, age AS years FROM authors ORDER BY years`)
	if b[0][0] != "Brown" {
		t.Errorf("alias order = %v", b)
	}
}

func TestConstraints(t *testing.T) {
	db := testDB(t)
	// PK duplicate.
	_, _, err := db.Exec(`INSERT INTO authors VALUES (1, 'Dup', 1)`)
	if !errors.Is(err, ErrConstraint) {
		t.Errorf("pk dup err = %v", err)
	}
	// NOT NULL.
	_, _, err = db.Exec(`INSERT INTO authors (id, age) VALUES (9, 3)`)
	if !errors.Is(err, ErrConstraint) {
		t.Errorf("not null err = %v", err)
	}
	// FK violation.
	_, _, err = db.Exec(`INSERT INTO books VALUES (20, 'Ghost', 99, 2000)`)
	if !errors.Is(err, ErrConstraint) {
		t.Errorf("fk err = %v", err)
	}
	// NULL FK allowed.
	if _, _, err = db.Exec(`INSERT INTO books VALUES (21, 'NoAuthor', NULL, 2000)`); err != nil {
		t.Errorf("null fk: %v", err)
	}
	// FK enforcement off.
	db.SetEnforceFK(false)
	if _, _, err = db.Exec(`INSERT INTO books VALUES (22, 'Ghost2', 99, 2000)`); err != nil {
		t.Errorf("fk off: %v", err)
	}
	if err := db.CheckAllFKs(); err == nil {
		t.Error("CheckAllFKs should report the dangling row")
	}
}

func TestUniqueConstraint(t *testing.T) {
	db := Open()
	err := db.CreateTable(&rel.Table{
		Name: "t",
		Columns: []rel.Column{
			{Name: "a", Type: rel.TypeInt},
			{Name: "b", Type: rel.TypeText},
		},
		Uniques: [][]string{{"a", "b"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", []any{1, "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", []any{1, "y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", []any{1, "x"}); !errors.Is(err, ErrConstraint) {
		t.Errorf("unique dup err = %v", err)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := testDB(t)
	res, _, err := db.Exec(`UPDATE authors SET age = age + 1 WHERE name = 'Lee'`)
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("update: %v %v", res, err)
	}
	if data := queryData(t, db, `SELECT age FROM authors WHERE name = 'Lee'`); data[0][0] != int64(51) {
		t.Errorf("age = %v", data[0][0])
	}
	res, _, err = db.Exec(`DELETE FROM books WHERE year = 1999`)
	if err != nil || res.RowsAffected != 2 {
		t.Fatalf("delete: %v %v", res, err)
	}
	if db.RowCount("books") != 2 {
		t.Errorf("rows = %d", db.RowCount("books"))
	}
	// Updating a PK to a duplicate must fail.
	_, _, err = db.Exec(`UPDATE authors SET id = 2 WHERE id = 1`)
	if !errors.Is(err, ErrConstraint) {
		t.Errorf("pk update err = %v", err)
	}
	// Index consistency after delete: the unique scan still works.
	if _, _, err = db.Exec(`INSERT INTO books VALUES (10, 'Reused', 1, 2024)`); err != nil {
		t.Errorf("reuse deleted pk: %v", err)
	}
}

func TestIndexScanMatchesFullScan(t *testing.T) {
	db := Open()
	if err := db.CreateTable(&rel.Table{
		Name: "n",
		Columns: []rel.Column{
			{Name: "k", Type: rel.TypeInt},
			{Name: "v", Type: rel.TypeText},
		},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := db.Insert("n", []any{i % 50, fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := queryData(t, db, `SELECT v FROM n WHERE k = 7 ORDER BY v`)
	if err := db.CreateIndex("n_k", "n", []string{"k"}, false); err != nil {
		t.Fatal(err)
	}
	after := queryData(t, db, `SELECT v FROM n WHERE k = 7 ORDER BY v`)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("index scan differs: %d vs %d rows", len(before), len(after))
	}
	if len(after) != 10 {
		t.Errorf("rows = %d, want 10", len(after))
	}
	if err := db.DropIndex("n_k"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("n_k"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestSelfJoinAliases(t *testing.T) {
	db := testDB(t)
	data := queryData(t, db, `
SELECT b1.title, b2.title FROM books b1, books b2
WHERE b1.year = b2.year AND b1.id < b2.id`)
	if len(data) != 1 || data[0][0] != "XML RDBMS" || data[0][1] != "Orphanless" {
		t.Errorf("self join = %v", data)
	}
}

func TestStarForms(t *testing.T) {
	db := testDB(t)
	rows, err := db.Query(`SELECT * FROM authors WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Cols) != 3 || rows.Cols[0] != "id" {
		t.Errorf("cols = %v", rows.Cols)
	}
	rows, err = db.Query(`SELECT a.* FROM authors a JOIN books b ON b.author = a.id WHERE b.id = 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Cols) != 3 || len(rows.Data) != 1 {
		t.Errorf("qualified star = %v %v", rows.Cols, rows.Data)
	}
}

func TestErrors(t *testing.T) {
	db := testDB(t)
	cases := []string{
		`SELECT * FROM nope`,
		`SELECT nope FROM authors`,
		`SELECT id FROM authors, books`, // ambiguous id
		`SELECT * FROM authors a, authors a`,
		`INSERT INTO authors VALUES (1)`,
		`SELECT SUM(name) FROM authors GROUP BY name HAVING SUM(name) > 0`,
	}
	for _, sql := range cases {
		if _, _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", sql)
		}
	}
	if _, err := db.Query(`DELETE FROM books`); err == nil {
		t.Error("Query of non-select should fail")
	}
}

func TestDropTableIfExists(t *testing.T) {
	db := testDB(t)
	if _, _, err := db.Exec(`DROP TABLE IF EXISTS nope`); err != nil {
		t.Errorf("if exists: %v", err)
	}
	if _, _, err := db.Exec(`DROP TABLE nope`); err == nil {
		t.Error("drop missing should fail")
	}
	if _, _, err := db.Exec(`DROP TABLE books`); err != nil {
		t.Fatal(err)
	}
	if db.TableDef("books") != nil {
		t.Error("books should be gone")
	}
}

func TestStatsHelpers(t *testing.T) {
	db := testDB(t)
	if db.TotalRows() != 7 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
	if db.ApproxBytes() <= 0 {
		t.Error("ApproxBytes = 0")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "authors" {
		t.Errorf("names = %v", names)
	}
}

func TestNullSemantics(t *testing.T) {
	db := testDB(t)
	if _, _, err := db.Exec(`INSERT INTO authors VALUES (9, 'NoAge', NULL)`); err != nil {
		t.Fatal(err)
	}
	// NULL never compares equal.
	if got := queryData(t, db, `SELECT name FROM authors WHERE age = NULL`); len(got) != 0 {
		t.Errorf("= NULL matched %v", got)
	}
	if got := queryData(t, db, `SELECT name FROM authors WHERE age IS NULL`); len(got) != 1 {
		t.Errorf("IS NULL = %v", got)
	}
	// Aggregates skip NULLs.
	if got := queryData(t, db, `SELECT COUNT(age), COUNT(*) FROM authors`); got[0][0] != int64(3) || got[0][1] != int64(4) {
		t.Errorf("count null = %v", got)
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"abc", "a%c%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestInsertMap(t *testing.T) {
	db := testDB(t)
	if _, err := db.InsertMap("authors", map[string]any{"id": 50, "name": "MapRow"}); err != nil {
		t.Fatal(err)
	}
	got := queryData(t, db, `SELECT age FROM authors WHERE id = 50`)
	if got[0][0] != nil {
		t.Errorf("omitted column = %v", got[0][0])
	}
	if _, err := db.InsertMap("authors", map[string]any{"nope": 1}); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestConcurrentReads(t *testing.T) {
	db := testDB(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				if _, err := db.Query(`SELECT COUNT(*) FROM books JOIN authors ON books.author = authors.id`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestTypeCoercion(t *testing.T) {
	db := Open()
	if err := db.CreateTable(&rel.Table{
		Name: "t",
		Columns: []rel.Column{
			{Name: "i", Type: rel.TypeInt},
			{Name: "f", Type: rel.TypeFloat},
			{Name: "s", Type: rel.TypeText},
			{Name: "b", Type: rel.TypeBool},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", []any{"42", 7, 99, "true"}); err != nil {
		t.Fatal(err)
	}
	got := queryData(t, db, `SELECT i, f, s, b FROM t`)
	if got[0][0] != int64(42) || got[0][1] != float64(7) || got[0][2] != "99" || got[0][3] != true {
		t.Errorf("coerced row = %v", got[0])
	}
	if _, err := db.Insert("t", []any{"notanint", 0, "", false}); err == nil {
		t.Error("bad int coercion should fail")
	}
}

func TestOrderByNullsFirst(t *testing.T) {
	db := testDB(t)
	if _, _, err := db.Exec(`INSERT INTO authors VALUES (8, 'Null Age', NULL)`); err != nil {
		t.Fatal(err)
	}
	got := queryData(t, db, `SELECT name FROM authors ORDER BY age, name`)
	if got[0][0] != "Null Age" {
		t.Errorf("nulls should sort first: %v", got)
	}
}

func TestStringsOrderingInWhere(t *testing.T) {
	db := testDB(t)
	got := queryData(t, db, `SELECT name FROM authors WHERE name >= 'L' AND name < 'S' ORDER BY name`)
	if len(got) != 1 || got[0][0] != "Lee" {
		t.Errorf("range = %v", got)
	}
}
