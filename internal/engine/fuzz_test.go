package engine

import (
	"math/rand"
	"strings"
	"testing"
)

// TestExecutorNeverPanics runs token-soup statements against a populated
// database: parse or execution errors are fine; panics are not.
func TestExecutorNeverPanics(t *testing.T) {
	db := testDB(t)
	rng := rand.New(rand.NewSource(31))
	pieces := []string{
		"SELECT", "FROM", "WHERE", "GROUP BY", "ORDER BY", "HAVING",
		"LIMIT", "OFFSET", "DISTINCT", "authors", "books", "id", "name",
		"age", "title", "year", "author", "*", ",", "(", ")", "=", "<",
		">", "1", "'x'", "NULL", "AND", "OR", "NOT", "COUNT(*)",
		"SUM(age)", "b", "a", ".", "JOIN", "ON", "LEFT", "IS", "IN",
		"LIKE 'a%'", "+", "-",
	}
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		b.WriteString("SELECT ")
		n := 1 + rng.Intn(12)
		for j := 0; j < n; j++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _, _ = db.Exec(src)
		}()
	}
}

// TestWriteStatementsNeverPanic does the same for writes, then checks
// the store is still internally consistent.
func TestWriteStatementsNeverPanic(t *testing.T) {
	db := testDB(t)
	rng := rand.New(rand.NewSource(32))
	stmts := []string{
		`INSERT INTO authors VALUES (%d, 'n%d', %d)`,
		`UPDATE authors SET age = age + 1 WHERE id = %d`,
		`DELETE FROM books WHERE id = %d`,
		`INSERT INTO books VALUES (%d, 't', 1, 2000)`,
		`UPDATE books SET year = %d WHERE author = 1`,
	}
	for i := 0; i < 500; i++ {
		src := stmts[rng.Intn(len(stmts))]
		filled := strings.ReplaceAll(src, "%d", "")
		_ = filled
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			// Substitute a random id everywhere.
			s := src
			for strings.Contains(s, "%d") {
				s = strings.Replace(s, "%d", itoa(rng.Intn(2000)), 1)
			}
			_, _, _ = db.Exec(s)
		}()
	}
	// The store still answers queries consistently.
	if err := db.CheckAllFKs(); err == nil {
		// FK errors are possible if enforcement allowed NULLs; either
		// outcome is fine as long as nothing panicked and counts agree.
		_ = err
	}
	all := db.MustQuery(`SELECT COUNT(*) FROM authors`)
	if all.Data[0][0].(int64) < 3 {
		t.Errorf("authors shrank unexpectedly: %v", all.Data[0][0])
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
