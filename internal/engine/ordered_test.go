package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func rangeDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := Open()
	if _, _, err := db.Exec(`CREATE TABLE m (k INTEGER, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < rows; i++ {
		if _, err := db.Insert("m", []any{rng.Intn(1000), fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestOrderedIndexMatchesFullScan(t *testing.T) {
	db := rangeDB(t, 2000)
	queries := []string{
		`SELECT v FROM m WHERE k >= 100 AND k < 200 ORDER BY v`,
		`SELECT v FROM m WHERE k > 990 ORDER BY v`,
		`SELECT v FROM m WHERE k <= 5 ORDER BY v`,
		`SELECT v FROM m WHERE k = 500 ORDER BY v`,
		`SELECT COUNT(*) FROM m WHERE k >= 250 AND k <= 750`,
		`SELECT v FROM m WHERE k >= 200 AND k < 100 ORDER BY v`, // empty window
	}
	var before [][][]any
	for _, q := range queries {
		rows, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		before = append(before, rows.Data)
	}
	if _, _, err := db.Exec(`CREATE ORDERED INDEX m_k ON m (k)`); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		rows, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !reflect.DeepEqual(rows.Data, before[i]) {
			t.Errorf("%s: index scan differs (%d vs %d rows)", q, len(rows.Data), len(before[i]))
		}
	}
}

func TestOrderedIndexSurvivesWrites(t *testing.T) {
	db := rangeDB(t, 200)
	if err := db.CreateOrderedIndex("m_k", "m", "k"); err != nil {
		t.Fatal(err)
	}
	baseline := func() int64 {
		rows := db.MustQuery(`SELECT COUNT(*) FROM m WHERE k >= 0 AND k <= 1000`)
		return rows.Data[0][0].(int64)
	}
	n0 := baseline()
	if _, err := db.Insert("m", []any{500, "new"}); err != nil {
		t.Fatal(err)
	}
	if got := baseline(); got != n0+1 {
		t.Errorf("after insert: %d, want %d", got, n0+1)
	}
	if _, _, err := db.Exec(`DELETE FROM m WHERE v = 'new'`); err != nil {
		t.Fatal(err)
	}
	if got := baseline(); got != n0 {
		t.Errorf("after delete: %d, want %d", got, n0)
	}
	if _, _, err := db.Exec(`UPDATE m SET k = 2000 WHERE k < 10`); err != nil {
		t.Fatal(err)
	}
	high := db.MustQuery(`SELECT COUNT(*) FROM m WHERE k >= 2000`)
	if high.Data[0][0].(int64) == 0 {
		t.Skip("no rows below 10 in this seed") // deterministic seed makes this unlikely
	}
	all := db.MustQuery(`SELECT COUNT(*) FROM m`)
	ranged := db.MustQuery(`SELECT COUNT(*) FROM m WHERE k >= 0 AND k <= 3000`)
	if all.Data[0][0] != ranged.Data[0][0] {
		t.Errorf("range covering everything = %v, total = %v", ranged.Data[0][0], all.Data[0][0])
	}
}

func TestOrderedIndexNullsExcluded(t *testing.T) {
	db := Open()
	if _, _, err := db.ExecScript(`
CREATE TABLE t (k INTEGER, v TEXT);
INSERT INTO t VALUES (1, 'a'), (NULL, 'b'), (3, 'c');
CREATE ORDERED INDEX t_k ON t (k);
`); err != nil {
		t.Fatal(err)
	}
	rows := db.MustQuery(`SELECT v FROM t WHERE k >= 0 ORDER BY v`)
	if len(rows.Data) != 2 {
		t.Errorf("rows = %v (NULL must not match a range)", rows.Data)
	}
}

func TestOrderedIndexErrors(t *testing.T) {
	db := rangeDB(t, 10)
	if err := db.CreateOrderedIndex("ix", "nope", "k"); err == nil {
		t.Error("missing table")
	}
	if err := db.CreateOrderedIndex("ix", "m", "nope"); err == nil {
		t.Error("missing column")
	}
	if err := db.CreateOrderedIndex("ix", "m", "k"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateOrderedIndex("ix", "m", "k"); err == nil {
		t.Error("duplicate name")
	}
	if err := db.DropOrderedIndex("ix"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropOrderedIndex("ix"); err == nil {
		t.Error("double drop")
	}
	// DROP INDEX also reaches ordered indexes.
	if err := db.CreateOrderedIndex("ix2", "m", "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`DROP INDEX ix2`); err != nil {
		t.Errorf("drop via SQL: %v", err)
	}
	if _, _, err := db.Exec(`CREATE ORDERED INDEX ix3 ON m (k, v)`); err == nil {
		t.Error("multi-column ordered index should fail")
	}
}

func TestOrderedStringRange(t *testing.T) {
	db := Open()
	if _, _, err := db.ExecScript(`
CREATE TABLE s (name TEXT);
INSERT INTO s VALUES ('alpha'), ('beta'), ('gamma'), ('delta');
CREATE ORDERED INDEX s_n ON s (name);
`); err != nil {
		t.Fatal(err)
	}
	rows := db.MustQuery(`SELECT name FROM s WHERE name >= 'b' AND name < 'e' ORDER BY name`)
	if len(rows.Data) != 2 || rows.Data[0][0] != "beta" || rows.Data[1][0] != "delta" {
		t.Errorf("string range = %v", rows.Data)
	}
}
