package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Vacuum. MVCC reclaims superseded row versions automatically — when
// the last cursor pinning a backing array closes, the garbage collector
// takes it — but deleted rows are a different leak: DELETE nils the
// slot (positions are baked into WAL frames and index postings) and
// nothing ever reclaims it. CompactTable rewrites a table without its
// dead slots, logged as its own WAL frame so recovery reproduces the
// renumbering deterministically, and StartVacuum runs it periodically
// in the background. Snapshot reads make compaction always safe for
// concurrent cursors: an open cursor keeps reading the array and
// positions it captured, regardless of how the table is rewritten
// underneath it.

// CompactTable reclaims the dead slots DELETE leaves behind in one
// table: live rows are packed in order, hash indexes are rebuilt for
// the new positions, and on a durable store the operation is logged as
// one WAL frame before it is published (recovery recomputes the same
// deterministic drop-the-nils mapping). Open cursors are unaffected —
// they stream their captured snapshot. It returns the number of slots
// reclaimed; zero means the table was already compact and nothing was
// logged.
func (db *DB) CompactTable(name string) (int, error) {
	db.mu.RLock()
	t := db.tables[name]
	if t == nil {
		db.mu.RUnlock()
		return 0, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	unlock := db.lockRows([]string{name}, nil)
	removed, err := db.compactLocked(name, t)
	unlock()
	db.mu.RUnlock()
	if err == nil && removed > 0 {
		db.maybeCheckpoint()
	}
	return removed, err
}

// compactLocked does the work of CompactTable under the caller's locks
// (the table's write lock; db.mu shared — or nothing during recovery,
// when the database is not yet shared). The new rows and index maps are
// built privately and published only after the WAL append succeeds, so
// a failed append leaves the table untouched.
func (db *DB) compactLocked(name string, t *table) (int, error) {
	dead := 0
	for _, row := range t.rows {
		if row == nil {
			dead++
		}
	}
	if dead == 0 {
		return 0, nil
	}
	newRows := make([][]any, 0, len(t.rows)-dead)
	for _, row := range t.rows {
		if row != nil {
			newRows = append(newRows, row)
		}
	}
	newMaps := make(map[string]map[string][]int, len(t.indexes))
	for iname, ix := range t.indexes {
		m := make(map[string][]int, len(ix.m))
		for pos, row := range newRows {
			key := ix.keyOf(row)
			m[key] = append(m[key], pos)
		}
		newMaps[iname] = m
	}
	if err := db.logCompact(name, len(newRows)); err != nil {
		return 0, err
	}
	t.rows = newRows
	t.liveRefs = &atomic.Int64{} // fresh array: no capture references it
	for iname, ix := range t.indexes {
		ix.m = newMaps[iname]
	}
	t.markOrderedDirty()
	return dead, nil
}

// Vacuum compacts every table that has dead slots, in creation order,
// and returns the total number of slots reclaimed. A table dropped
// concurrently is skipped.
func (db *DB) Vacuum() (int, error) {
	total := 0
	for _, name := range db.TableNames() {
		n, err := db.CompactTable(name)
		if err != nil {
			if errors.Is(err, ErrNoTable) {
				continue
			}
			return total, err
		}
		total += n
	}
	return total, nil
}

// StartVacuum launches a background goroutine that runs Vacuum every
// interval until the returned stop function is called (stop is
// idempotent and waits for an in-flight pass to finish). Errors from a
// background pass are dropped: a broken WAL surfaces on the next
// foreground write, and an in-memory store cannot fail.
func (db *DB) StartVacuum(every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	var once sync.Once
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				_, _ = db.Vacuum()
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
