package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// cboDB builds the skewed three-table chain the cost-based planner
// tests run on: a tiny docs table, a large elems table whose rows pile
// onto doc 1, and an even larger attrs table fanning out from elems.
// Written as FROM elems JOIN attrs JOIN docs, the structural planner
// hashes the biggest table first; the cost-based planner should start
// from the one-row docs probe instead.
func cboDB(tb testing.TB) *DB {
	tb.Helper()
	db := Open()
	_, _, err := db.ExecScript(`
CREATE TABLE docs (id INTEGER PRIMARY KEY, name TEXT NOT NULL);
CREATE TABLE elems (id INTEGER PRIMARY KEY, doc INTEGER NOT NULL, type TEXT NOT NULL,
  val INTEGER, FOREIGN KEY (doc) REFERENCES docs (id));
CREATE TABLE attrs (id INTEGER PRIMARY KEY, elem INTEGER NOT NULL, kind TEXT NOT NULL,
  FOREIGN KEY (elem) REFERENCES elems (id));
CREATE INDEX docs_name ON docs (name);
CREATE ORDERED INDEX elems_val ON elems (val);
`)
	if err != nil {
		tb.Fatal(err)
	}
	var docs [][]any
	for i := 1; i <= 4; i++ {
		docs = append(docs, []any{int64(i), fmt.Sprintf("d%d", i)})
	}
	if _, err := db.InsertBatch("docs", docs); err != nil {
		tb.Fatal(err)
	}
	// 3000 elems: docs 2-4 get 30 each, doc 1 hoards the other 2910.
	var elems [][]any
	for i := 0; i < 3000; i++ {
		doc := int64(1)
		if i < 90 {
			doc = int64(2 + i/30)
		}
		elems = append(elems, []any{int64(i), doc, fmt.Sprintf("t%d", i%5), int64(i % 1000)})
	}
	if _, err := db.InsertBatch("elems", elems); err != nil {
		tb.Fatal(err)
	}
	// 9000 attrs, three per elem.
	var attrs [][]any
	for i := 0; i < 9000; i++ {
		attrs = append(attrs, []any{int64(i), int64(i / 3), fmt.Sprintf("k%d", i%3)})
	}
	if _, err := db.InsertBatch("attrs", attrs); err != nil {
		tb.Fatal(err)
	}
	return db
}

// cboChainSQL is the skewed 3-join chain: written biggest-first, with a
// highly selective predicate on the far end of the chain.
const cboChainSQL = `SELECT COUNT(*) AS n FROM elems e` +
	` JOIN attrs a ON a.elem = e.id` +
	` JOIN docs d ON e.doc = d.id WHERE d.name = 'd3'`

// TestExplainGoldenPlansCBO pins the cost-based planner's choices on
// the skewed chain: the reordered join starting from the one-row docs
// index probe, the small-side hash builds ([build=outer]), the
// structural plan for contrast, and the range-scan demotion boundary.
// Regenerate with:
// go test ./internal/engine -run TestExplainGoldenPlansCBO -update
func TestExplainGoldenPlansCBO(t *testing.T) {
	db := cboDB(t)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		sql        string
		structural bool
	}{
		{"cbo_chain", cboChainSQL, false},
		{"cbo_chain_structural", cboChainSQL, true},
		// val >= 0 keeps every row: the ordered-index window covers the
		// table, so the cost-based planner demotes to a sequential scan.
		{"cbo_range_demote", `SELECT COUNT(*) AS n FROM elems WHERE val >= 0`, false},
		// val < 40 keeps 120 of 3000 rows: the window stays worthwhile.
		{"cbo_range_keep", `SELECT COUNT(*) AS n FROM elems WHERE val < 40`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db.SetCostBased(!tc.structural)
			defer db.SetCostBased(true)
			got := planRows(t, db, tc.sql)
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("plan drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// cboEquivalenceQueries exercises every reordering-sensitive shape:
// multi-join chains, cross joins, LEFT joins above and below inner
// joins, multi-column equis, residual and pushed predicates, ranges,
// DISTINCT and aggregation.
var cboEquivalenceQueries = []string{
	cboChainSQL,
	`SELECT e.id, a.kind, d.name FROM elems e JOIN attrs a ON a.elem = e.id` +
		` JOIN docs d ON e.doc = d.id WHERE d.name = 'd2' AND a.kind = 'k1'`,
	`SELECT d.name, COUNT(*) AS n FROM elems e JOIN attrs a ON a.elem = e.id` +
		` JOIN docs d ON e.doc = d.id GROUP BY d.name ORDER BY d.name`,
	`SELECT COUNT(*) AS n FROM docs d, elems e WHERE e.doc = d.id AND e.val < 10`,
	`SELECT COUNT(*) AS n FROM docs d, elems e, attrs a` +
		` WHERE e.doc = d.id AND a.elem = e.id AND d.name != 'd1'`,
	`SELECT d.name, e.type FROM docs d JOIN elems e ON e.doc = d.id` +
		` WHERE e.val >= 995 ORDER BY d.name, e.type`,
	`SELECT DISTINCT e.type FROM elems e JOIN attrs a ON a.elem = e.id` +
		` WHERE a.kind = 'k2' AND e.val < 5 ORDER BY e.type`,
	`SELECT d.name, e.id FROM docs d LEFT JOIN elems e ON e.doc = d.id AND e.val < 2` +
		` ORDER BY d.name, e.id`,
	`SELECT COUNT(*) AS n FROM elems e JOIN attrs a ON a.elem = e.id` +
		` LEFT JOIN docs d ON e.doc = d.id WHERE e.val < 30`,
	`SELECT COUNT(*) AS n FROM elems e JOIN attrs a ON a.elem = e.id AND a.kind = 'k0'` +
		` JOIN docs d ON e.doc = d.id AND d.name = 'd4'`,
	`SELECT COUNT(*) AS n FROM elems e JOIN elems2 f ON f.val = e.val` +
		` JOIN docs d ON e.doc = d.id WHERE d.name = 'd3' AND f.id < 100`,
	`SELECT e.id FROM elems e JOIN attrs a ON a.elem = e.id` +
		` JOIN docs d ON e.doc = d.id WHERE d.name = 'd3' AND a.kind IN ('k0', 'k1')` +
		` ORDER BY e.id LIMIT 25`,
}

// TestCBORowEquivalence is the planner-equivalence battery: every query
// must return the same row multiset under the structural planner, the
// cost-based planner without statistics, and the cost-based planner
// with fresh ANALYZE statistics. Reordered plans may emit rows in a
// different order, so comparisons sort the rendered rows (queries with
// ORDER BY still agree on the sorted rendering).
func TestCBORowEquivalence(t *testing.T) {
	db := cboDB(t)
	// A second large table for the self-join-shaped chain.
	if _, _, err := db.Exec(`CREATE TABLE elems2 (id INTEGER PRIMARY KEY, val INTEGER)`); err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	for i := 0; i < 500; i++ {
		rows = append(rows, []any{int64(i), int64(i % 97)})
	}
	if _, err := db.InsertBatch("elems2", rows); err != nil {
		t.Fatal(err)
	}

	sortedRows := func(sql string) []string {
		t.Helper()
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("Query(%q): %v", sql, err)
		}
		out := make([]string, len(res.Data))
		for i, r := range res.Data {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(b)
		}
		sort.Strings(out)
		return out
	}
	type variant struct {
		name      string
		costBased bool
		analyze   bool
	}
	variants := []variant{
		{"cost_no_stats", true, false},
		{"cost_with_stats", true, true},
	}
	for _, sql := range cboEquivalenceQueries {
		db.SetCostBased(false)
		want := sortedRows(sql)
		for _, v := range variants {
			if v.analyze {
				if err := db.Analyze(); err != nil {
					t.Fatal(err)
				}
			}
			db.SetCostBased(v.costBased)
			got := sortedRows(sql)
			db.SetCostBased(true)
			if len(got) != len(want) {
				t.Errorf("%s: %q returned %d rows, structural returned %d",
					v.name, sql, len(got), len(want))
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: %q row %d = %s, structural %s", v.name, sql, i, got[i], want[i])
					break
				}
			}
		}
	}
}

// TestCBOPicksCheaperOrder is the bench-cbo-smoke acceptance check: on
// the skewed chain the cost-based planner must produce a different plan
// than the structural one — starting from the selective docs index
// probe with a small-side hash build — and both must agree on the
// result.
func TestCBOPicksCheaperOrder(t *testing.T) {
	db := cboDB(t)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	db.SetCostBased(false)
	structural := planRows(t, db, cboChainSQL)
	wantRows := queryData(t, db, cboChainSQL)
	db.SetCostBased(true)
	costed := planRows(t, db, cboChainSQL)
	gotRows := queryData(t, db, cboChainSQL)
	if costed == structural {
		t.Fatalf("cost-based planner kept the structural join order:\n%s", costed)
	}
	if !strings.Contains(costed, "IndexScan(docs AS d via docs_name)") {
		t.Errorf("cost-based plan does not probe the selective docs index:\n%s", costed)
	}
	if !strings.Contains(costed, "[build=outer]") {
		t.Errorf("cost-based plan never builds on the smaller outer side:\n%s", costed)
	}
	if len(gotRows) != 1 || len(wantRows) != 1 || gotRows[0][0] != wantRows[0][0] {
		t.Fatalf("planners disagree: cost=%v structural=%v", gotRows, wantRows)
	}
	// The structural plan hashes the 9000-row attrs table under the
	// chain; the reordered plan must estimate its largest intermediate
	// well below that.
	if !strings.Contains(structural, "SeqScan(elems AS e) (est=3000") {
		t.Errorf("structural plan no longer anchors on the elems scan:\n%s", structural)
	}
}

// BenchmarkCBOJoinChain measures the skewed chain under both planners;
// bench-cbo-smoke runs one iteration of each as a CI gate, and E13
// reports the full numbers.
func BenchmarkCBOJoinChain(b *testing.B) {
	db := cboDB(b)
	if err := db.Analyze(); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(cboChainSQL)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows.Data) != 1 || rows.Data[0][0] != int64(90) {
				b.Fatalf("got %v, want count 90", rows.Data)
			}
		}
	}
	b.Run("structural", func(b *testing.B) {
		db.SetCostBased(false)
		defer db.SetCostBased(true)
		run(b)
	})
	b.Run("costbased", func(b *testing.B) {
		run(b)
	})
}

// TestStatsBuild pins the ANALYZE statistics themselves: row counts,
// distinct and NULL counts, min/max bounds and the equi-depth
// histogram invariants.
func TestStatsBuild(t *testing.T) {
	db := Open()
	_, _, err := db.ExecScript(`
CREATE TABLE t (id INTEGER PRIMARY KEY, grp TEXT, score INTEGER);
`)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	for i := 0; i < 200; i++ {
		var grp any
		if i%10 != 0 { // 20 NULLs
			grp = fmt.Sprintf("g%d", i%7)
		}
		rows = append(rows, []any{int64(i), grp, int64(i * 2)})
	}
	if _, err := db.InsertBatch("t", rows); err != nil {
		t.Fatal(err)
	}
	if err := db.AnalyzeTable("t"); err != nil {
		t.Fatal(err)
	}
	ts := db.TableStatsSnapshot("t")
	if ts == nil || ts.Rows != 200 {
		t.Fatalf("stats = %+v, want 200 rows", ts)
	}
	id, grp, score := ts.Cols[0], ts.Cols[1], ts.Cols[2]
	if id.Distinct != 200 || *id.NumMin != 0 || *id.NumMax != 199 {
		t.Errorf("id stats = %+v", id)
	}
	if grp.Distinct != 7 || grp.Nulls != 20 {
		t.Errorf("grp stats = %+v, want 7 distinct / 20 nulls", grp)
	}
	if grp.StrMin != "g0" || grp.StrMax != "g6" || !grp.HasStr {
		t.Errorf("grp bounds = %q..%q", grp.StrMin, grp.StrMax)
	}
	if *score.NumMax != 398 {
		t.Errorf("score max = %v, want 398", *score.NumMax)
	}
	// Histogram: counts sum to the non-NULL numeric count, His strictly
	// increase, last Hi is the max.
	var sum int64
	lastHi := *score.NumMin - 1
	for _, b := range score.Hist {
		if b.Hi <= lastHi {
			t.Fatalf("histogram His not increasing: %v", score.Hist)
		}
		lastHi = b.Hi
		sum += b.Count
	}
	if sum != 200 || lastHi != *score.NumMax {
		t.Errorf("histogram sum=%d lastHi=%v, want 200 / %v", sum, lastHi, *score.NumMax)
	}
	// fracLE is monotone and hits the extremes.
	if f, ok := score.fracLE(*score.NumMin - 1); !ok || f != 0 {
		t.Errorf("fracLE(min-1) = %v, %v", f, ok)
	}
	if f, ok := score.fracLE(*score.NumMax); !ok || f != 1 {
		t.Errorf("fracLE(max) = %v, %v", f, ok)
	}
	if lo, _ := score.fracLE(100); lo < 0.2 || lo > 0.32 {
		t.Errorf("fracLE(100) = %v, want ~0.25", lo)
	}
}

// TestStatsDurability proves statistics survive both recovery paths:
// WAL replay of the combined frameStats record, and the snapshot
// header after a checkpoint.
func TestStatsDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'n%d')`, i, i%5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AnalyzeTable("t"); err != nil {
		t.Fatal(err)
	}
	want := db.TableStatsSnapshot("t")
	if want == nil {
		t.Fatal("no stats after ANALYZE")
	}
	if db.StatsEpoch() == 0 {
		t.Fatal("stats epoch did not advance on ANALYZE")
	}
	fresh := db.StatsFreshnessReport()["t"]
	if !fresh.Analyzed || fresh.ChangesSince != 0 || fresh.Rows != 50 {
		t.Fatalf("freshness after ANALYZE = %+v", fresh)
	}
	if _, _, err := db.Exec(`INSERT INTO t VALUES (50, 'later')`); err != nil {
		t.Fatal(err)
	}
	if got := db.StatsFreshnessReport()["t"].ChangesSince; got != 1 {
		t.Fatalf("ChangesSince after one insert = %d, want 1", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	assertStats := func(step string, db *DB) {
		t.Helper()
		got := db.TableStatsSnapshot("t")
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if string(gb) != string(wb) {
			t.Fatalf("%s: stats = %s, want %s", step, gb, wb)
		}
	}
	// WAL replay path.
	db, err = OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertStats("after WAL replay", db)
	// Snapshot path: checkpoint truncates the log, so the reopened store
	// reads the stats out of the snapshot header.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	assertStats("after snapshot load", db)
}

// TestPredSelectivity pins the selectivity model the join ordering and
// scan hints run on.
func TestPredSelectivity(t *testing.T) {
	db := cboDB(t)
	if err := db.Analyze(); err != nil {
		t.Fatal(err)
	}
	// Estimates surface through plan hints; check them end to end via
	// EXPLAIN rather than poking internals: an equality on a 5-distinct
	// column over 3000 rows should estimate ~600.
	plan := planRows(t, db, `SELECT id FROM elems WHERE type = 't0'`)
	if !strings.Contains(plan, "est=600") {
		t.Errorf("equality estimate missing (want est=600):\n%s", plan)
	}
	// A histogram range: val < 100 keeps ~300 of 3000 (val cycles
	// 0..999); the window stays an index range scan with an exact count.
	plan = planRows(t, db, `SELECT id FROM elems WHERE val < 100 AND type = 't1'`)
	if !strings.Contains(plan, "RangeScan(elems via elems_val)") {
		t.Errorf("selective range not scanned via ordered index:\n%s", plan)
	}
}
