package engine

import (
	"reflect"
	"testing"

	"xmlrdb/internal/rel"
)

func TestScanTableAndLookup(t *testing.T) {
	db := testDB(t)
	var titles []string
	err := db.ScanTable("books", func(row []any) bool {
		titles = append(titles, row[1].(string))
		return len(titles) < 3 // early stop
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(titles) != 3 {
		t.Errorf("scan visited %d rows", len(titles))
	}
	if err := db.ScanTable("nope", func([]any) bool { return true }); err == nil {
		t.Error("missing table should fail")
	}

	// Lookup via the PK index.
	rows, err := db.Lookup("books", []string{"id"}, []any{int64(10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != "XML RDBMS" {
		t.Errorf("lookup = %v", rows)
	}
	// Lookup without an index (full scan path).
	rows, err = db.Lookup("books", []string{"year"}, []any{int64(1999)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("year lookup = %v", rows)
	}
	if _, err := db.Lookup("books", []string{"nope"}, []any{1}); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := db.Lookup("nope", []string{"id"}, []any{1}); err == nil {
		t.Error("missing table should fail")
	}
	// Returned rows are copies: mutating them must not corrupt storage.
	rows, _ = db.Lookup("books", []string{"id"}, []any{int64(10)})
	rows[0][1] = "MUTATED"
	fresh := db.MustQuery(`SELECT title FROM books WHERE id = 10`)
	if fresh.Data[0][0] != "XML RDBMS" {
		t.Error("Lookup leaked internal row storage")
	}
}

func TestCreateSchemaAndDuplicate(t *testing.T) {
	db := Open()
	s := rel.NewSchema("s")
	if err := s.AddTable(&rel.Table{Name: "a", Columns: []rel.Column{{Name: "x", Type: rel.TypeInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSchema(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSchema(s); err == nil {
		t.Error("duplicate schema creation should fail")
	}
}

func TestCreateIndexOnPopulatedTableWithDuplicates(t *testing.T) {
	db := testDB(t)
	// Non-unique index over existing rows works.
	if err := db.CreateIndex("ix_year", "books", []string{"year"}, false); err != nil {
		t.Fatal(err)
	}
	// Unique index over duplicate years must fail and roll back.
	if err := db.CreateIndex("ux_year", "books", []string{"year"}, true); err == nil {
		t.Error("unique index over duplicates should fail")
	}
	if err := db.CreateIndex("ix_year", "books", []string{"year"}, false); err == nil {
		t.Error("duplicate index name should fail")
	}
	if err := db.CreateIndex("ix_bad", "books", []string{"nope"}, false); err == nil {
		t.Error("bad column should fail")
	}
	if err := db.CreateIndex("ix", "nope", []string{"x"}, false); err == nil {
		t.Error("bad table should fail")
	}
}

func TestExpressionEdgeCases(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want any
	}{
		{`SELECT 7 % 3 FROM authors LIMIT 1`, int64(1)},
		{`SELECT 7.5 / 2.5 FROM authors LIMIT 1`, 3.0},
		{`SELECT 2 + 0.5 FROM authors LIMIT 1`, 2.5},
		{`SELECT -age FROM authors WHERE name = 'Lee'`, int64(-50)},
		{`SELECT NOT (age > 100) FROM authors WHERE name = 'Lee'`, true},
		{`SELECT age >= 50 AND age <= 50 FROM authors WHERE name = 'Lee'`, true},
		{`SELECT age != 50 OR FALSE FROM authors WHERE name = 'Lee'`, false},
		{`SELECT ABS(0 - 4) FROM authors LIMIT 1`, int64(4)},
		{`SELECT ABS(0.5 - 1.0) FROM authors LIMIT 1`, 0.5},
		{`SELECT LOWER('ABC') FROM authors LIMIT 1`, "abc"},
		{`SELECT LENGTH(NULL) FROM authors LIMIT 1`, nil},
		{`SELECT COALESCE(NULL, NULL) FROM authors LIMIT 1`, nil},
		{`SELECT name NOT IN ('Smith') FROM authors WHERE name = 'Lee'`, true},
		{`SELECT name NOT LIKE 'S%' FROM authors WHERE name = 'Lee'`, true},
		{`SELECT age IS NOT NULL FROM authors WHERE name = 'Lee'`, true},
		{`SELECT 1 + NULL FROM authors LIMIT 1`, nil},
	}
	for _, c := range cases {
		rows, err := db.Query(c.sql)
		if err != nil {
			t.Errorf("%s: %v", c.sql, err)
			continue
		}
		if !reflect.DeepEqual(rows.Data[0][0], c.want) {
			t.Errorf("%s = %#v, want %#v", c.sql, rows.Data[0][0], c.want)
		}
	}
}

func TestExpressionErrors(t *testing.T) {
	db := testDB(t)
	cases := []string{
		`SELECT 1 / 0 FROM authors`,
		`SELECT 1 % 0 FROM authors`,
		`SELECT name * 2 FROM authors`,
		`SELECT UNKNOWNFN(1) FROM authors`,
		`SELECT LENGTH(1, 2) FROM authors`,
		`SELECT SUM(name) FROM authors`,
		`SELECT MIN(*) FROM authors`,
		`SELECT NUM(name) FROM authors WHERE name = 'Lee'`,
	}
	for _, sql := range cases {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("%s should fail", sql)
		}
	}
}

func TestAggregateExpressions(t *testing.T) {
	db := testDB(t)
	// Arithmetic over aggregates and NOT in group context.
	rows := db.MustQuery(`
SELECT author, MAX(year) - MIN(year) spread, NOT (COUNT(*) > 1)
FROM books GROUP BY author ORDER BY author`)
	if len(rows.Data) != 3 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[0][1] != int64(2) || rows.Data[0][2] != false {
		t.Errorf("author 1 = %v", rows.Data[0])
	}
	// AVG over floats.
	avg := db.MustQuery(`SELECT AVG(year) FROM books`)
	if avg.Data[0][0] != float64(1999+2005+2001+1999)/4 {
		t.Errorf("avg = %v", avg.Data[0][0])
	}
	// HAVING with arithmetic.
	rows = db.MustQuery(`SELECT author FROM books GROUP BY author HAVING MAX(year) - MIN(year) > 1`)
	if len(rows.Data) != 1 {
		t.Errorf("having = %v", rows.Data)
	}
}

func TestHasAggregateOnAllForms(t *testing.T) {
	db := testDB(t)
	// Aggregates inside IN / LIKE / IS NULL positions of HAVING.
	rows := db.MustQuery(`
SELECT author FROM books GROUP BY author HAVING COUNT(*) IN (2)`)
	if len(rows.Data) != 1 {
		t.Errorf("agg-in-IN = %v", rows.Data)
	}
	rows = db.MustQuery(`
SELECT author FROM books GROUP BY author HAVING MAX(title) LIKE 'X%'`)
	if len(rows.Data) != 1 {
		t.Errorf("agg-in-LIKE = %v", rows.Data)
	}
	rows = db.MustQuery(`
SELECT author FROM books GROUP BY author HAVING MIN(year) IS NOT NULL ORDER BY author`)
	if len(rows.Data) != 3 {
		t.Errorf("agg-in-ISNULL = %v", rows.Data)
	}
}

func TestFKToMissingColumnAndTable(t *testing.T) {
	db := Open()
	if err := db.CreateTable(&rel.Table{
		Name:    "child",
		Columns: []rel.Column{{Name: "p", Type: rel.TypeInt}},
		ForeignKeys: []rel.ForeignKey{
			{Columns: []string{"p"}, RefTable: "ghost", RefColumns: []string{"id"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("child", []any{1}); err == nil {
		t.Error("FK to missing table should fail on insert")
	}
	// FK check against an unindexed referenced column (scan path).
	if err := db.CreateTable(&rel.Table{
		Name:    "parent2",
		Columns: []rel.Column{{Name: "k", Type: rel.TypeInt}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(&rel.Table{
		Name:    "child2",
		Columns: []rel.Column{{Name: "p", Type: rel.TypeInt}},
		ForeignKeys: []rel.ForeignKey{
			{Columns: []string{"p"}, RefTable: "parent2", RefColumns: []string{"k"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("parent2", []any{7}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("child2", []any{7}); err != nil {
		t.Errorf("scan-path FK check: %v", err)
	}
	if _, err := db.Insert("child2", []any{8}); err == nil {
		t.Error("scan-path FK violation not caught")
	}
}

func TestJoinOnNonEquiCondition(t *testing.T) {
	db := testDB(t)
	// Nested-loop join with an inequality ON condition.
	rows := db.MustQuery(`
SELECT a.name, b.title FROM authors a JOIN books b ON b.year > 2000 + a.age - 40
WHERE a.name = 'Smith' ORDER BY b.title`)
	if len(rows.Data) != 2 {
		t.Errorf("non-equi join = %v", rows.Data)
	}
}

func TestLeftJoinWithExtraOnCondition(t *testing.T) {
	db := testDB(t)
	// LEFT JOIN where the ON carries a non-equi residual condition.
	rows := db.MustQuery(`
SELECT a.name, b.title FROM authors a
LEFT JOIN books b ON b.author = a.id AND b.year > 2000
ORDER BY a.name, b.title`)
	// Brown: Go Systems (2005); Lee: NULL; Smith: Data Models (2001).
	if len(rows.Data) != 3 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[1][0] != "Lee" || rows.Data[1][1] != nil {
		t.Errorf("Lee row = %v", rows.Data[1])
	}
}

// TestIndexMissReturnsNoRows is the regression test for the index-miss
// scan bug: an equality lookup on an indexed column with a value absent
// from the index must return zero rows, not fall through to an
// unfiltered full scan (the consumed equality predicate is no longer in
// restPreds there, so every row came back).
func TestIndexMissReturnsNoRows(t *testing.T) {
	db := testDB(t)
	rows := db.MustQuery("SELECT * FROM authors WHERE id = 999999")
	if len(rows.Data) != 0 {
		t.Fatalf("index miss returned %d rows: %v", len(rows.Data), rows.Data)
	}
	// Same via a secondary index path, combined with another predicate.
	if _, _, err := db.Exec("CREATE INDEX authors_age ON authors (age)"); err != nil {
		t.Fatal(err)
	}
	rows = db.MustQuery("SELECT * FROM authors WHERE age = -1 AND id > 0")
	if len(rows.Data) != 0 {
		t.Fatalf("secondary index miss returned %d rows: %v", len(rows.Data), rows.Data)
	}
}
