package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// bigDB builds a table large enough that a cross join crosses many
// cancellation checkpoints.
func bigDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := Open()
	if _, _, err := db.Exec("CREATE TABLE nums (n INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("INSERT INTO nums VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d)", i, i%97)
	}
	if _, _, err := db.Exec(b.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryContextCancelled(t *testing.T) {
	db := bigDB(t, 4096)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the query starts
	rows, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM nums a, nums b WHERE a.v = b.v")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rows != nil {
		t.Fatalf("cancelled query returned rows: %v", rows)
	}
}

func TestQueryContextDeadline(t *testing.T) {
	db := bigDB(t, 4096)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	_, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM nums a, nums b WHERE a.v = b.v")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryContextBackgroundUnaffected(t *testing.T) {
	db := bigDB(t, 512)
	rows, err := db.QueryContext(context.Background(), "SELECT COUNT(*) FROM nums")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0]; got != int64(512) {
		t.Fatalf("COUNT(*) = %v, want 512", got)
	}
}

func TestExecContextRefusesCancelledMutation(t *testing.T) {
	db := bigDB(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.ExecContext(ctx, "INSERT INTO nums VALUES (1000, 1)"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The insert must not have happened.
	rows := db.MustQuery("SELECT COUNT(*) FROM nums WHERE n = 1000")
	if got := rows.Data[0][0]; got != int64(0) {
		t.Fatalf("cancelled INSERT applied %v rows", got)
	}
}

// TestQueryContextMidFlightCancel cancels while a heavy join is
// running; the statement must abort with context.Canceled, never a
// partial result set.
func TestQueryContextMidFlightCancel(t *testing.T) {
	db := bigDB(t, 8192)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
		close(done)
	}()
	rows, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM nums a, nums b, nums c WHERE a.v = b.v AND b.v = c.v")
	<-done
	if err == nil {
		// The query legitimately beat the cancel; nothing to assert.
		if rows == nil {
			t.Fatal("nil rows with nil error")
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rows != nil {
		t.Fatalf("cancelled query returned a partial result: %v", rows)
	}
}
