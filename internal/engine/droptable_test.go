package engine

import (
	"errors"
	"testing"
)

func TestDropTableRefusesFKReferenced(t *testing.T) {
	db := testDB(t) // books has a foreign key into authors
	err := db.DropTable("authors")
	var dep *DependencyError
	if !errors.As(err, &dep) {
		t.Fatalf("DropTable(authors) = %v, want *DependencyError", err)
	}
	if dep.Table != "authors" || len(dep.ReferencedBy) != 1 || dep.ReferencedBy[0] != "books" {
		t.Errorf("DependencyError = %+v, want authors referenced by [books]", dep)
	}
	if db.TableDef("authors") == nil {
		t.Fatal("refused drop still removed the table")
	}
	// Dropping the referencing table first unblocks the parent.
	if err := db.DropTable("books"); err != nil {
		t.Fatalf("DropTable(books): %v", err)
	}
	if err := db.DropTable("authors"); err != nil {
		t.Fatalf("DropTable(authors) after books gone: %v", err)
	}
}

func TestDropTableAllowedWithEnforcementOff(t *testing.T) {
	db := testDB(t)
	db.SetEnforceFK(false)
	if err := db.DropTable("authors"); err != nil {
		t.Fatalf("DropTable with enforcement off: %v", err)
	}
}

func TestDropTableSelfReferenceAllowed(t *testing.T) {
	db := Open()
	if _, _, err := db.Exec(`CREATE TABLE nodes (id INTEGER PRIMARY KEY, parent INTEGER,
  FOREIGN KEY (parent) REFERENCES nodes (id))`); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("nodes"); err != nil {
		t.Fatalf("DropTable on self-referencing table: %v", err)
	}
}
