package engine

import (
	"encoding/binary"
	"fmt"

	"xmlrdb/internal/rel"
)

// Dictionary encoding for shredded string columns. XML shredding
// produces TEXT columns dominated by a small set of repeated values
// (element names, attribute names, enumerated PCDATA), so a per-column
// dictionary turns them into small integer codes: snapshots store the
// code instead of the string, and the vectorized executor (vector.go)
// compares and groups by code instead of by string.
//
// Dictionaries are built explicitly by Analyze/AnalyzeTable over the
// rows present at that moment and are part of the durable engine state:
// an ANALYZE is logged as a WAL frame and the dictionary travels inside
// snapshots, so recovery reproduces it exactly (codes are assigned in
// first-seen row order, which is deterministic).
//
// Strings inserted after ANALYZE are handled by an in-memory overlay:
// the lazily rebuilt vecCache extends a copy of the persisted
// dictionary with any unseen values, so code comparisons stay exact
// without mutating durable state. Snapshots encode only values found in
// the persisted dictionary and fall back to plain strings for the rest.

// dictMaxSize caps a column dictionary; columns with more distinct
// values than this are left unencoded (the dictionary would not pay for
// itself).
const dictMaxSize = 1 << 16

// dictNull is the sentinel code for NULL (and deleted slots) in the
// codes sidecar.
const dictNull = ^uint32(0)

// colDict maps the distinct strings of one TEXT column to dense codes
// in first-seen order. Immutable once published on a table; the overlay
// path clones before extending.
type colDict struct {
	vals []string
	code map[string]uint32
}

func newColDict(capHint int) *colDict {
	return &colDict{code: make(map[string]uint32, capHint)}
}

// add interns s, returning its code.
func (d *colDict) add(s string) uint32 {
	if c, ok := d.code[s]; ok {
		return c
	}
	c := uint32(len(d.vals))
	d.vals = append(d.vals, s)
	d.code[s] = c
	return c
}

// lookup returns the code for s.
func (d *colDict) lookup(s string) (uint32, bool) {
	c, ok := d.code[s]
	return c, ok
}

func (d *colDict) size() int { return len(d.vals) }

// clone returns an independent copy (for the overlay extension).
func (d *colDict) clone() *colDict {
	c := &colDict{
		vals: append([]string(nil), d.vals...),
		code: make(map[string]uint32, len(d.code)),
	}
	for s, v := range d.code {
		c.code[s] = v
	}
	return c
}

// vecCache is the derived columnar sidecar the vectorized executor
// reads: for every dictionary-encoded column, the effective dictionary
// (persisted + overlay) and a per-position code vector aligned to the
// captured rows (dictNull for NULL values, holes, and values of deleted
// rows). Since MVCC it is owned by a tableVersion (version.go) rather
// than the table: the version's rows are immutable, so the sidecar is
// built lazily without locks and retires with the version — writes
// invalidate the cached version via markOrderedDirty and the next
// cursor's capture rebuilds against the new rows.
type vecCache struct {
	dicts []*colDict // per column; nil = column not encoded
	codes [][]uint32 // per column; nil = column not encoded
}

// buildVecCache derives the sidecar from one immutable row capture and
// its dictionaries; ncols is the table's column count (a dicts slice of
// any other length means the table was never analyzed).
func buildVecCache(rows [][]any, tdicts []*colDict, ncols int) *vecCache {
	vc := &vecCache{}
	if len(tdicts) != ncols {
		return vc // never analyzed
	}
	vc.dicts = make([]*colDict, len(tdicts))
	vc.codes = make([][]uint32, len(tdicts))
	for c, d := range tdicts {
		if d == nil {
			continue
		}
		eff := d
		codes := make([]uint32, len(rows))
		bad := false
		for pos, row := range rows {
			if row == nil || row[c] == nil {
				codes[pos] = dictNull
				continue
			}
			s, ok := row[c].(string)
			if !ok {
				// A non-string in a TEXT column cannot happen after coerce,
				// but the code vector's invariant (dictNull ⇔ SQL NULL) must
				// hold exactly, so disable encoding for the column entirely.
				bad = true
				break
			}
			code, ok := eff.lookup(s)
			if !ok {
				// Value inserted after ANALYZE: extend a private overlay copy.
				if eff == d {
					eff = d.clone()
				}
				code = eff.add(s)
			}
			codes[pos] = code
		}
		if bad {
			continue
		}
		vc.dicts[c] = eff
		vc.codes[c] = codes
	}
	return vc
}

// buildDictsLocked constructs fresh dictionaries from the table's live
// rows: one per TEXT column, in first-seen row order, skipping columns
// whose cardinality exceeds dictMaxSize. The result is aligned to the
// column list (nil for unencoded columns).
func buildDictsLocked(t *table) []*colDict {
	dicts := make([]*colDict, len(t.def.Columns))
	for c, col := range t.def.Columns {
		if col.Type != rel.TypeText {
			continue
		}
		d := newColDict(64)
		over := false
		for _, row := range t.rows {
			if row == nil || row[c] == nil {
				continue
			}
			s, ok := row[c].(string)
			if !ok {
				continue
			}
			d.add(s)
			if d.size() > dictMaxSize {
				over = true
				break
			}
		}
		if !over {
			dicts[c] = d
		}
	}
	return dicts
}

// AnalyzeTable builds per-column dictionaries for the TEXT columns of
// one table from its current rows, and collects the table statistics
// (row count, per-column distinct/null counts, min/max, equi-depth
// histograms — stats.go) the cost-based planner runs on. On a durable
// database both are logged to the WAL as one frameStats record before
// they are installed, so they survive crashes exactly like row data.
// Re-running ANALYZE replaces the previous dictionaries and statistics.
func (db *DB) AnalyzeTable(name string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	unlock := db.lockRows([]string{name}, nil)
	defer unlock()
	return db.analyzeLocked(name, t)
}

// Analyze runs AnalyzeTable over every table in creation order.
func (db *DB) Analyze() error {
	for _, name := range db.TableNames() {
		if err := db.AnalyzeTable(name); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) analyzeLocked(name string, t *table) error {
	dicts := buildDictsLocked(t)
	ts := buildStatsLocked(t)
	if err := db.logStats(name, dicts, ts); err != nil {
		return err
	}
	t.dicts = dicts
	t.invalidateVersion()
	db.installStatsLocked(t, ts)
	return nil
}

// DictStats reports the dictionary state of one table for tooling and
// tests: column name -> distinct-value count, only for encoded columns.
// Nil when the table was never analyzed (or does not exist).
func (db *DB) DictStats(name string) map[string]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[name]
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.dicts) == 0 {
		return nil
	}
	out := make(map[string]int)
	for c, d := range t.dicts {
		if d != nil {
			out[t.def.Columns[c].Name] = d.size()
		}
	}
	return out
}

// ---- WAL frame ----

// encodeAnalyzeFrame serializes an ANALYZE: table name, column count,
// then per column a presence byte and (when present) the dictionary
// values in code order.
func encodeAnalyzeFrame(table string, dicts []*colDict) []byte {
	buf := appendWALString(nil, table)
	buf = binary.AppendUvarint(buf, uint64(len(dicts)))
	for _, d := range dicts {
		if d == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(d.vals)))
		for _, s := range d.vals {
			buf = appendWALString(buf, s)
		}
	}
	return buf
}

// decodeAnalyzePayload is the inverse, validated defensively like every
// other WAL payload.
func decodeAnalyzePayload(r *walReader) (string, []*colDict, error) {
	name, err := r.str()
	if err != nil {
		return "", nil, err
	}
	ncols, err := r.uvarint()
	if err != nil {
		return "", nil, err
	}
	if ncols > uint64(len(r.data)-r.pos)+1 {
		return "", nil, errWALCorrupt
	}
	dicts := make([]*colDict, ncols)
	for i := range dicts {
		tag, err := r.byte1()
		if err != nil {
			return "", nil, err
		}
		switch tag {
		case 0:
		case 1:
			nvals, err := r.uvarint()
			if err != nil {
				return "", nil, err
			}
			if nvals > uint64(len(r.data)-r.pos)+1 {
				return "", nil, errWALCorrupt
			}
			d := newColDict(int(nvals))
			for j := uint64(0); j < nvals; j++ {
				s, err := r.str()
				if err != nil {
					return "", nil, err
				}
				d.add(s)
			}
			dicts[i] = d
		default:
			return "", nil, errWALCorrupt
		}
	}
	return name, dicts, nil
}

// applyAnalyzeFrame re-installs logged dictionaries during recovery.
// New ANALYZE ops log the combined frameStats record (stats.go); this
// replays the dictionary-only frames older WALs still carry.
func (db *DB) applyAnalyzeFrame(r *walReader) error {
	name, dicts, err := decodeAnalyzePayload(r)
	if err != nil {
		return err
	}
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	if len(dicts) != len(t.def.Columns) {
		return errWALCorrupt
	}
	t.dicts = dicts
	t.invalidateVersion()
	return nil
}
