package engine

import (
	"fmt"
	"sort"
	"sync"

	"xmlrdb/internal/sqldb"
)

// orderedIndex is a single-column sorted index supporting range scans —
// the engine's answer to the paper's §5 question about index structures
// for XML data: ordinary ordered indexes over the shredded columns.
//
// The index is maintained lazily: writes mark it dirty and the next
// range scan rebuilds it from the live rows. That favors the
// load-then-analyze workloads of the experiment suite.
type orderedIndex struct {
	name string
	col  int
	// mu serializes lazy rebuilds: scans run under the table's shared
	// row lock, so two readers may race to rebuild a dirty index.
	mu      sync.Mutex
	entries []ordEntry
	dirty   bool
}

type ordEntry struct {
	val any
	pos int
}

// CreateOrderedIndex builds a sorted single-column index for range
// predicates (<, <=, >, >=, =) on the column.
func (db *DB) CreateOrderedIndex(name, tableName, col string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[tableName]
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	if t.ordered == nil {
		t.ordered = make(map[string]*orderedIndex)
	}
	if _, dup := t.ordered[name]; dup {
		return fmt.Errorf("engine: ordered index %q already exists", name)
	}
	if _, dup := t.indexes[name]; dup {
		return fmt.Errorf("engine: index %q already exists", name)
	}
	_, pos := t.def.Column(col)
	if pos < 0 {
		return fmt.Errorf("engine: table %q has no column %q", tableName, col)
	}
	ix := &orderedIndex{name: name, col: pos, dirty: true}
	t.ordered[name] = ix
	ix.rebuild(t)
	if err := db.logDDL(ddlRecord{Op: "create_index", Name: name, Table: tableName, Cols: []string{col}, Ordered: true}); err != nil {
		delete(t.ordered, name)
		return err
	}
	return nil
}

// DropOrderedIndex removes an ordered index.
func (db *DB) DropOrderedIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range db.tables {
		if _, ok := t.ordered[name]; ok {
			if err := db.logDDL(ddlRecord{Op: "drop_index", Name: name, Ordered: true}); err != nil {
				return err
			}
			delete(t.ordered, name)
			return nil
		}
	}
	return fmt.Errorf("%w: no ordered index %q", ErrNoIndex, name)
}

func (ix *orderedIndex) rebuild(t *table) {
	ix.entries = ix.entries[:0]
	for pos, row := range t.rows {
		if row == nil || row[ix.col] == nil {
			continue
		}
		ix.entries = append(ix.entries, ordEntry{val: row[ix.col], pos: pos})
	}
	sort.SliceStable(ix.entries, func(i, j int) bool {
		return compare(ix.entries[i].val, ix.entries[j].val) < 0
	})
	ix.dirty = false
}

// rangeBounds is an extracted window: lo/hi may be nil (unbounded);
// loStrict/hiStrict select open bounds.
type rangeBounds struct {
	lo, hi             any
	loStrict, hiStrict bool
}

// scan returns the row positions inside the bounds.
func (ix *orderedIndex) scan(t *table, b rangeBounds) []int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.dirty {
		ix.rebuild(t)
	}
	n := len(ix.entries)
	start := 0
	if b.lo != nil {
		start = sort.Search(n, func(i int) bool {
			c := compare(ix.entries[i].val, b.lo)
			if b.loStrict {
				return c > 0
			}
			return c >= 0
		})
	}
	end := n
	if b.hi != nil {
		end = sort.Search(n, func(i int) bool {
			c := compare(ix.entries[i].val, b.hi)
			if b.hiStrict {
				return c >= 0
			}
			return c > 0
		})
	}
	if start >= end {
		return nil
	}
	out := make([]int, 0, end-start)
	for _, e := range ix.entries[start:end] {
		out = append(out, e.pos)
	}
	return out
}

// markOrderedDirty flags every ordered index of the table after a
// write. It is the single choke point every mutation path goes through,
// so the MVCC version cache is invalidated here too (which also retires
// the version-owned columnar sidecar) and the epoch clock advances.
func (t *table) markOrderedDirty() {
	for _, ix := range t.ordered {
		ix.mu.Lock()
		ix.dirty = true
		ix.mu.Unlock()
	}
	t.invalidateVersion()
}

// findOrdered returns an ordered index on the column, or nil.
func (t *table) findOrdered(col int) *orderedIndex {
	for _, ix := range t.ordered {
		if ix.col == col {
			return ix
		}
	}
	return nil
}

// extractRange inspects single-table predicates for range conditions
// (col < lit etc.) on one ordered-indexed column. It returns the index,
// the bounds, and whether anything usable was found; the predicates are
// all left in place (they are re-checked per row), so using the window
// is purely an optimization.
func extractRange(preds []sqldb.Expr, src source) (*orderedIndex, rangeBounds, bool) {
	var target *orderedIndex
	var bounds rangeBounds
	found := false
	consider := func(col *sqldb.Col, lit sqldb.Expr, op string) {
		if col.Table != "" && col.Table != src.ref.Name() {
			return
		}
		_, pos := src.t.def.Column(col.Name)
		if pos < 0 {
			return
		}
		ix := src.t.findOrdered(pos)
		if ix == nil || (target != nil && ix != target) {
			return
		}
		v, err := evalConst(lit)
		if err != nil || v == nil {
			return
		}
		switch op {
		case sqldb.OpEq:
			bounds.lo, bounds.hi = v, v
			bounds.loStrict, bounds.hiStrict = false, false
		case sqldb.OpLt:
			if bounds.hi == nil || compare(v, bounds.hi) <= 0 {
				bounds.hi, bounds.hiStrict = v, true
			}
		case sqldb.OpLe:
			if bounds.hi == nil || compare(v, bounds.hi) < 0 {
				bounds.hi, bounds.hiStrict = v, false
			}
		case sqldb.OpGt:
			if bounds.lo == nil || compare(v, bounds.lo) >= 0 {
				bounds.lo, bounds.loStrict = v, true
			}
		case sqldb.OpGe:
			if bounds.lo == nil || compare(v, bounds.lo) > 0 {
				bounds.lo, bounds.loStrict = v, false
			}
		default:
			return
		}
		target = ix
		found = true
	}
	flip := map[string]string{
		sqldb.OpLt: sqldb.OpGt, sqldb.OpLe: sqldb.OpGe,
		sqldb.OpGt: sqldb.OpLt, sqldb.OpGe: sqldb.OpLe,
		sqldb.OpEq: sqldb.OpEq,
	}
	for _, p := range preds {
		bin, ok := p.(*sqldb.Bin)
		if !ok {
			continue
		}
		switch bin.Op {
		case sqldb.OpEq, sqldb.OpLt, sqldb.OpLe, sqldb.OpGt, sqldb.OpGe:
		default:
			continue
		}
		if col, lit := asColLit(bin.L, bin.R); col != nil {
			consider(col, lit, bin.Op)
			continue
		}
		if col, lit := asColLit(bin.R, bin.L); col != nil {
			consider(col, lit, flip[bin.Op])
		}
	}
	return target, bounds, found
}
