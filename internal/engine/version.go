package engine

import (
	"sync"
	"sync/atomic"
)

// MVCC snapshot reads. Cursors used to hold db.mu shared plus per-table
// read locks from open until Close, which made a single slow streaming
// client block every writer (and, because Go's RWMutex queues writers,
// every later reader — including Checkpoint) on the tables it touched.
// Instead, a cursor now pins an immutable *version* of each source
// table at open and holds no locks at all while streaming:
//
//   - At open the cursor briefly takes the usual read locks, captures
//     each source's current tableVersion (lazily created and cached on
//     the table until the next mutation) and pins the epoch clock, then
//     releases the locks before the iterator tree opens.
//   - Writers install new state under the table's write lock exactly as
//     before, but copy the outer row slice first (copy-on-write) when
//     any capture still references the current backing array, so a
//     version's rows never change underneath an open cursor. Appends
//     never need the copy: a version only reads up to its captured
//     length, and row value slices are immutable once stored (UPDATE
//     builds a fresh row, DELETE nils the slot).
//   - Close drops the version references and unpins the epoch. Old
//     backing arrays are reclaimed by the garbage collector as soon as
//     the last capture drops; the background vacuum (vacuum.go)
//     additionally compacts the deleted-row slots the engine itself
//     never reclaims.
//
// The epoch clock advances on every committed mutation (in lockstep
// with WAL appends on durable stores, up to batching) and exists for
// observability and the vacuum: the pin registry answers "what is the
// oldest snapshot still being read".

// tableVersion is one immutable capture of a table's row state. rows
// and dicts are frozen: no mutation path ever writes through them while
// a capture exists (see prepareWrite). The version owns its lazily
// built columnar sidecar, so the vectorized executor reads codes that
// are exactly aligned with the captured rows — the old invalidate-on-
// write protocol rides version lifetimes instead.
type tableVersion struct {
	rows  [][]any
	dicts []*colDict
	ncols int
	epoch uint64
	// refs counts open captures of the rows backing array. Versions that
	// share a backing array (appends without reallocation) share the
	// counter; writers consult it through table.liveRefs to decide
	// copy-on-write.
	refs *atomic.Int64

	vecMu sync.Mutex
	vec   *vecCache
}

// sidecar returns the version's columnar sidecar, building it on first
// use. The version's rows are immutable, so the build needs no table
// locks; vecMu serializes racing builders between concurrent cursors.
func (v *tableVersion) sidecar() *vecCache {
	v.vecMu.Lock()
	defer v.vecMu.Unlock()
	if v.vec == nil {
		v.vec = buildVecCache(v.rows, v.dicts, v.ncols)
	}
	return v.vec
}

// release drops one capture reference.
func (v *tableVersion) release() { v.refs.Add(-1) }

// capture returns the table's current version, creating and caching it
// on first use after a mutation, and takes a reference the caller must
// release. The caller must hold the table's row lock (shared or
// exclusive); verMu serializes lazy creation between concurrent
// readers.
func (t *table) capture(epoch uint64) *tableVersion {
	t.verMu.Lock()
	defer t.verMu.Unlock()
	if t.liveRefs == nil {
		t.liveRefs = &atomic.Int64{}
	}
	if t.cur == nil {
		t.cur = &tableVersion{
			rows:  t.rows,
			dicts: t.dicts,
			ncols: len(t.def.Columns),
			epoch: epoch,
			refs:  t.liveRefs,
		}
	}
	t.cur.refs.Add(1)
	return t.cur
}

// invalidateVersion drops the cached capture after a mutation (new
// captures will see the new state) and advances the epoch clock. Called
// with the table's write lock held; every mutation path funnels through
// markOrderedDirty, which calls this.
func (t *table) invalidateVersion() {
	t.verMu.Lock()
	t.cur = nil
	t.verMu.Unlock()
	if t.clock != nil {
		t.clock.Add(1)
	}
	// Any committed mutation ages the table's ANALYZE statistics; the
	// counter feeds StatsFreshnessReport and resets when new statistics
	// are installed (installStatsLocked runs after this on the ANALYZE
	// path itself).
	t.statsMuts.Add(1)
}

// prepareWrite makes t.rows safe to mutate in place. When an open
// capture still references the current backing array, the outer slice
// is copied first — after that the statement owns a private array and
// every capture stays frozen. Called under the table's write lock
// before the first in-place slot write of a statement; writes to slots
// the copy created are then invisible to all captures.
func (t *table) prepareWrite() {
	if t.liveRefs == nil || t.liveRefs.Load() == 0 {
		return
	}
	t.rows = append(make([][]any, 0, len(t.rows)+len(t.rows)/4+1), t.rows...)
	t.liveRefs = &atomic.Int64{}
}

// noteAppend records that an append to t.rows may have reallocated the
// backing array: a reallocated array is private to the table, so it
// gets a fresh reference counter and later in-place writes skip the
// copy-on-write. Captures keep the counter of the array they hold.
func (t *table) noteAppend(oldCap int) {
	if cap(t.rows) != oldCap && t.liveRefs != nil && t.liveRefs.Load() != 0 {
		t.liveRefs = &atomic.Int64{}
	}
}

// pinSet is the registry of pinned snapshot epochs: one pin per open
// cursor, keyed by the epoch captured at open. The vacuum and the
// observability surface read it to find the oldest snapshot still in
// use.
type pinSet struct {
	mu   sync.Mutex
	pins map[uint64]int
}

func (p *pinSet) pin(epoch uint64) {
	p.mu.Lock()
	if p.pins == nil {
		p.pins = make(map[uint64]int)
	}
	p.pins[epoch]++
	p.mu.Unlock()
}

func (p *pinSet) unpin(epoch uint64) {
	p.mu.Lock()
	if n := p.pins[epoch]; n <= 1 {
		delete(p.pins, epoch)
	} else {
		p.pins[epoch] = n - 1
	}
	p.mu.Unlock()
}

// oldest returns the smallest pinned epoch; ok is false when nothing is
// pinned.
func (p *pinSet) oldest() (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var min uint64
	found := false
	for e := range p.pins {
		if !found || e < min {
			min, found = e, true
		}
	}
	return min, found
}

func (p *pinSet) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.pins {
		n += c
	}
	return n
}

// Epoch returns the current value of the mutation epoch clock; it
// advances on every committed mutation.
func (db *DB) Epoch() uint64 { return db.clock.Load() }

// PinnedCursors returns the number of open cursors currently pinning a
// snapshot epoch. Serving code and tests use it to verify that closed
// or abandoned cursors released their pins.
func (db *DB) PinnedCursors() int { return db.pins.count() }

// OldestPinnedEpoch returns the oldest epoch an open cursor still pins
// (ok=false when no cursor is open). State from epochs at or after the
// returned value must be retained; everything older is reclaimable.
func (db *DB) OldestPinnedEpoch() (uint64, bool) { return db.pins.oldest() }
