package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"xmlrdb/internal/faultfs"
	"xmlrdb/internal/obs"
)

// dumpState renders the full logical state — catalog, index definitions
// and the row slice with its holes (positions are part of the durable
// contract: WAL update/delete frames reference them) — as a canonical
// string, so two databases are behaviorally identical iff their dumps
// are equal.
func dumpState(db *DB) string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sb strings.Builder
	for _, name := range db.order {
		t := db.tables[name]
		def, _ := json.Marshal(t.def)
		fmt.Fprintf(&sb, "table %s def=%s\n", name, def)
		ixNames := make([]string, 0, len(t.indexes))
		for n := range t.indexes {
			ixNames = append(ixNames, n)
		}
		sort.Strings(ixNames)
		for _, n := range ixNames {
			ix := t.indexes[n]
			fmt.Fprintf(&sb, "  index %s cols=%v unique=%v\n", n, ix.cols, ix.unique)
		}
		oxNames := make([]string, 0, len(t.ordered))
		for n := range t.ordered {
			oxNames = append(oxNames, n)
		}
		sort.Strings(oxNames)
		for _, n := range oxNames {
			fmt.Fprintf(&sb, "  ordered %s col=%d\n", n, t.ordered[n].col)
		}
		if t.dicts != nil {
			fmt.Fprintf(&sb, "  analyzed cols=%d\n", len(t.dicts))
			for c, d := range t.dicts {
				if d != nil {
					fmt.Fprintf(&sb, "  dict %s vals=%q\n", t.def.Columns[c].Name, d.vals)
				}
			}
		}
		if t.stats != nil {
			// ANALYZE statistics ride the same frame as the dictionaries
			// and the snapshot header, so they are part of the durable
			// contract: a crash must recover exactly the logged statistics
			// or none (never a blend).
			stats, _ := json.Marshal(t.stats)
			fmt.Fprintf(&sb, "  stats %s\n", stats)
		}
		for pos, row := range t.rows {
			fmt.Fprintf(&sb, "  row %d %#v\n", pos, row)
		}
	}
	return sb.String()
}

// runWorkload drives a representative mix of mutations through db.
func runWorkload(t testing.TB, db *DB) {
	t.Helper()
	_, _, err := db.ExecScript(`
CREATE TABLE authors (id INTEGER PRIMARY KEY, name TEXT NOT NULL, age INTEGER);
CREATE TABLE books (id INTEGER PRIMARY KEY, title TEXT NOT NULL, author INTEGER,
  year INTEGER, FOREIGN KEY (author) REFERENCES authors (id));
INSERT INTO authors VALUES (1, 'Smith', 40);
INSERT INTO authors VALUES (2, 'Brown', 35);
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertBatch("books", [][]any{
		{10, "XML RDBMS", 1, 1999},
		{11, "Go Systems", 2, 2005},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertBatchMulti(
		[]string{"authors", "books"},
		[][][]any{{{3, "Lee", 50}}, {{12, "Data Models", 3, 2001}}},
	); err != nil {
		t.Fatal(err)
	}
	_, _, err = db.ExecScript(`
CREATE INDEX books_year ON books (year);
UPDATE books SET year = 2002 WHERE id = 12;
DELETE FROM books WHERE id = 11;
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDurableReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db)
	want := dumpState(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenAtOpts(dir, DurabilityOptions{VerifyOnRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dumpState(db2); got != want {
		t.Errorf("state changed across reopen:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	rows := db2.MustQuery(`SELECT title FROM books WHERE year > 2000 ORDER BY title`)
	if len(rows.Data) != 1 || rows.Data[0][0] != "Data Models" {
		t.Errorf("post-recovery query got %v", rows.Data)
	}
	// The recovered database accepts new durable writes.
	if _, err := db2.Insert("authors", []any{4, "Wu", 29}); err != nil {
		t.Fatal(err)
	}
}

func TestDurableTornTailTolerated(t *testing.T) {
	fs := faultfs.NewMem()
	dir := "data"
	db, err := OpenAtOpts(dir, DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db)
	full := dumpState(db)
	db.Close()

	segs, _, err := listWALFiles(fs, dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one segment, got %v (%v)", segs, err)
	}
	seg := filepath.Join(dir, segs[0])
	data, err := readAll(fs, seg)
	if err != nil {
		t.Fatal(err)
	}
	// Reference states: the dump after each frame of the intact log.
	ref := Open()
	ref.enforceFK = false
	states := []string{dumpState(ref)}
	for _, fr := range decodeFrames(data) {
		if err := ref.applyFrame(fr); err != nil {
			t.Fatal(err)
		}
		states = append(states, dumpState(ref))
	}
	if states[len(states)-1] != full {
		t.Fatal("frame-by-frame replay of the intact log diverged from the live state")
	}
	// Chop the tail at every length: recovery must never error, and must
	// land exactly on the state of the last frame still fully contained.
	for cut := 0; cut <= len(data); cut++ {
		fs2 := faultfs.NewMem()
		fs2.MkdirAll(dir)
		f, _ := fs2.Create(seg)
		f.Write(data[:cut])
		f.Close()
		db2, err := OpenAtOpts(dir, DurabilityOptions{FS: fs2, VerifyOnRecover: true})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		if got, want := dumpState(db2), states[len(decodeFrames(data[:cut]))]; got != want {
			t.Fatalf("cut=%d: recovered state is not the longest valid prefix:\n--- want ---\n%s--- got ---\n%s", cut, want, got)
		}
		db2.Close()
	}
}

func TestDurableSnapshotRotation(t *testing.T) {
	fs := faultfs.NewMem()
	dir := "data"
	m := obs.New()
	db, err := OpenAtOpts(dir, DurabilityOptions{FS: fs, SnapshotEvery: 10, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 95; i++ {
		if _, err := db.Insert("kv", []any{i, fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	want := dumpState(db)
	db.Close()

	segs, snaps, err := listWALFiles(fs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Errorf("want exactly one surviving snapshot, got %v", snaps)
	}
	if len(segs) != 1 {
		t.Errorf("want exactly one surviving segment, got %v", segs)
	}
	snap := m.Snapshot()
	if snap.WAL.Snapshots == 0 || snap.WAL.Frames == 0 {
		t.Errorf("metrics not recorded: %+v", snap.WAL)
	}

	db2, err := OpenAtOpts(dir, DurabilityOptions{FS: fs, VerifyOnRecover: true, Metrics: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dumpState(db2); got != want {
		t.Errorf("snapshot+tail recovery diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestDurableExplicitCheckpointAndContinue(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Mutations after the checkpoint land in the fresh segment.
	if _, err := db.Insert("authors", []any{4, "Wu", 29}); err != nil {
		t.Fatal(err)
	}
	want := dumpState(db)
	db.Close()

	db2, err := OpenAtOpts(dir, DurabilityOptions{VerifyOnRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := dumpState(db2); got != want {
		t.Errorf("checkpoint+tail recovery diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

func TestDurableConcurrentInserts(t *testing.T) {
	fs := faultfs.NewMem()
	dir := "data"
	db, err := OpenAtOpts(dir, DurabilityOptions{FS: fs, SnapshotEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []string{"a", "b", "c"} {
		if _, _, err := db.Exec(`CREATE TABLE ` + tb + ` (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
			t.Fatal(err)
		}
	}
	const perTable = 120
	var wg sync.WaitGroup
	for _, tb := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(tb string) {
			defer wg.Done()
			for i := 0; i < perTable; i++ {
				if _, err := db.Insert(tb, []any{i, tb}); err != nil {
					t.Errorf("insert %s/%d: %v", tb, i, err)
					return
				}
			}
		}(tb)
	}
	wg.Wait()
	db.Close()

	db2, err := OpenAtOpts(dir, DurabilityOptions{FS: fs, VerifyOnRecover: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, tb := range []string{"a", "b", "c"} {
		if n := db2.RowCount(tb); n != perTable {
			t.Errorf("table %s: recovered %d rows, want %d", tb, n, perTable)
		}
	}
}

// TestStaleSnapshotFallbackRefused: when the newest snapshot is corrupt
// and the WAL no longer covers its frames (they were deleted at
// checkpoint), recovery must fail loudly instead of silently handing
// back a much older state — unless AllowStale opts into the loss, which
// is then counted.
func TestStaleSnapshotFallbackRefused(t *testing.T) {
	fs := faultfs.NewMem()
	dir := "data"
	db, err := OpenAtOpts(dir, DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	runWorkload(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("authors", []any{4, "Wu", 29}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	_, snaps, err := listWALFiles(fs, dir)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want one snapshot, got %v (%v)", snaps, err)
	}
	snap := filepath.Join(dir, snaps[0])
	data, err := readAll(fs, snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff // corrupt the snapshot body
	f, err := fs.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(data)
	f.Close()

	if _, err := OpenAtOpts(dir, DurabilityOptions{FS: fs}); err == nil {
		t.Fatal("open silently recovered past an unreadable snapshot the WAL does not cover")
	} else if !strings.Contains(err.Error(), "AllowStale") {
		t.Fatalf("refusal should point at AllowStale, got: %v", err)
	}

	m := obs.New()
	db2, err := OpenAtOpts(dir, DurabilityOptions{FS: fs, AllowStale: true, Metrics: m})
	if err != nil {
		t.Fatalf("AllowStale open failed: %v", err)
	}
	defer db2.Close()
	if got := m.Snapshot().WAL.StaleFallbacks; got != 1 {
		t.Errorf("StaleFallbacks = %d, want 1", got)
	}
}

// TestUpdateDeleteRollbackOnWALFailure: when the WAL append fails, the
// in-memory changes of the UPDATE/DELETE are unwound — the live state
// must never run ahead of the durable state.
func TestUpdateDeleteRollbackOnWALFailure(t *testing.T) {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("data", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Insert("kv", []any{i, fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	want := dumpState(db)

	fs.SetSyncBudget(0) // the next WAL barrier fails
	res, _, err := db.Exec(`UPDATE kv SET v = 'changed' WHERE k >= 0`)
	if err == nil {
		t.Fatal("UPDATE with a failing WAL append reported success")
	}
	if res.RowsAffected != 0 {
		t.Errorf("UPDATE reported %d rows changed after rollback", res.RowsAffected)
	}
	if got := dumpState(db); got != want {
		t.Errorf("UPDATE left in-memory state ahead of the WAL:\n--- want ---\n%s--- got ---\n%s", want, got)
	}

	// The writer is now broken; DELETE must also fail and unwind.
	res, _, err = db.Exec(`DELETE FROM kv WHERE k = 1`)
	if err == nil {
		t.Fatal("DELETE with a broken WAL reported success")
	}
	if res.RowsAffected != 0 {
		t.Errorf("DELETE reported %d rows removed after rollback", res.RowsAffected)
	}
	if got := dumpState(db); got != want {
		t.Errorf("DELETE left in-memory state ahead of the WAL:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if err := db.VerifyIntegrity(); err != nil {
		t.Errorf("indexes inconsistent after rollback: %v", err)
	}
}

func TestCheckpointOnInMemoryDB(t *testing.T) {
	db := Open()
	if err := db.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Errorf("Checkpoint on in-memory DB: got %v, want ErrNotDurable", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("Close on in-memory DB: %v", err)
	}
}
