package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xmlrdb/internal/faultfs"
)

// TestServingMixStress exercises the serving workload shape against one
// engine under -race: concurrent SELECTs (plain and context-bounded),
// pair-atomic inserts, CREATE/DROP INDEX churn and checkpoints. The
// invariants:
//
//   - no torn reads: every INSERT adds two rows in one statement, so
//     COUNT(*) is always even under the statement-level row locks;
//   - cancelled requests return the context's error and never a
//     partial result (rows and error are mutually exclusive).
func TestServingMixStress(t *testing.T) {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("store", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("CREATE TABLE pts (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
		t.Fatal(err)
	}
	// Seed with one pair so COUNT(*) starts even and non-zero.
	if _, _, err := db.Exec("INSERT INTO pts VALUES (1, 1), (2, 1)"); err != nil {
		t.Fatal(err)
	}

	const (
		inserters    = 4
		readers      = 4
		pairsPerGoro = 200
		readsPerGoro = 300
	)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	report := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}
	stop := make(chan struct{})

	// Pair-atomic inserters with disjoint id ranges.
	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(1_000_000 * (w + 1))
			for i := int64(0); i < pairsPerGoro; i++ {
				id := base + 2*i
				stmt := fmt.Sprintf("INSERT INTO pts VALUES (%d, %d), (%d, %d)", id, i%97, id+1, i%97)
				if _, _, err := db.Exec(stmt); err != nil {
					report("insert: %v", err)
					return
				}
			}
		}(w)
	}

	// Readers asserting the pair invariant.
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerGoro; i++ {
				rows, err := db.Query("SELECT COUNT(*) FROM pts")
				if err != nil {
					report("count: %v", err)
					return
				}
				if n := rows.Data[0][0].(int64); n%2 != 0 {
					report("torn read: COUNT(*) = %d is odd", n)
					return
				}
			}
		}()
	}

	// Context-bounded readers: tiny deadlines race real execution; the
	// outcome must be a complete result or the context's error, nothing
	// in between.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%200)*time.Microsecond)
			rows, err := db.QueryContext(ctx, "SELECT COUNT(*) FROM pts a, pts b WHERE a.v = b.v")
			cancel()
			switch {
			case err == nil:
				if rows == nil || len(rows.Data) != 1 {
					report("bounded query: nil/partial rows with nil error")
					return
				}
			case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
				if rows != nil {
					report("bounded query: partial result alongside %v", err)
					return
				}
			default:
				report("bounded query: %v", err)
				return
			}
		}
	}()

	// Index churn on a non-constraint index.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := db.Exec("CREATE INDEX pts_v ON pts (v)"); err != nil {
				report("create index: %v", err)
				return
			}
			if _, _, err := db.Exec("DROP INDEX pts_v"); err != nil {
				report("drop index: %v", err)
				return
			}
			// The constraint index must refuse drops throughout the churn.
			if err := db.DropIndex("pts_pk"); err == nil || errors.Is(err, ErrNoIndex) {
				report("constraint index dropped mid-stress: %v", err)
				return
			}
		}
	}()

	// Periodic checkpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if err := db.Checkpoint(); err != nil {
				report("checkpoint: %v", err)
				return
			}
		}
	}()

	// Poll until the inserters have landed every pair (or something
	// failed), then stop the open-ended workers.
	doneCh := make(chan struct{})
	go func() {
		wg.Wait()
		close(doneCh)
	}()
	want := int64(2 + 2*inserters*pairsPerGoro)
	deadline := time.After(60 * time.Second)
poll:
	for {
		select {
		case <-deadline:
			break poll
		case <-time.After(10 * time.Millisecond):
		}
		rows, err := db.Query("SELECT COUNT(*) FROM pts")
		if err != nil {
			break poll
		}
		if rows.Data[0][0].(int64) == want {
			break poll
		}
		select {
		case e := <-errCh:
			close(stop)
			<-doneCh
			t.Fatal(e)
		default:
		}
	}
	close(stop)
	<-doneCh
	select {
	case e := <-errCh:
		t.Fatal(e)
	default:
	}

	rows, err := db.Query("SELECT COUNT(*) FROM pts")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].(int64); got != want {
		t.Fatalf("final COUNT(*) = %d, want %d", got, want)
	}
	// The store must recover to the same state after the churn.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rdb, err := OpenAtOpts("store", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	rrows, err := rdb.Query("SELECT COUNT(*) FROM pts")
	if err != nil {
		t.Fatal(err)
	}
	if got := rrows.Data[0][0].(int64); got != want {
		t.Fatalf("recovered COUNT(*) = %d, want %d", got, want)
	}
	if !strings.Contains(fmt.Sprint(rdb.TableNames()), "pts") {
		t.Fatal("recovered store lost the table")
	}
}

// TestSnapshotStressUnderChurn extends the serving mix with the MVCC
// invariants, under -race:
//
//   - snapshot stability: a cursor opened between whole-table UPDATEs
//     streams one uniform generation — it never mixes pre- and
//     post-update rows, no matter how many updates commit mid-stream;
//   - torn-read freedom: every streamed row is a complete generation
//     value, asserted by the uniformity check itself;
//   - vacuum safety: concurrent DELETE/INSERT churn plus explicit
//     compaction never perturbs an open cursor.
func TestSnapshotStressUnderChurn(t *testing.T) {
	db := Open()
	if _, _, err := db.Exec("CREATE TABLE gens (id INTEGER PRIMARY KEY, gen INTEGER)"); err != nil {
		t.Fatal(err)
	}
	const stable = 50 // rows carrying the generation invariant (id < 100)
	for i := 0; i < stable; i++ {
		if _, _, err := db.Exec(fmt.Sprintf("INSERT INTO gens VALUES (%d, 0)", i)); err != nil {
			t.Fatal(err)
		}
	}

	var writersWg, readersWg sync.WaitGroup
	errCh := make(chan error, 16)
	report := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}
	stop := make(chan struct{})

	// Writer: bump every stable row to a fresh generation in one
	// statement, as fast as the engine allows.
	writersWg.Add(1)
	go func() {
		defer writersWg.Done()
		for k := int64(1); ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := db.Exec(fmt.Sprintf("UPDATE gens SET gen = %d WHERE id < 100", k)); err != nil {
				report("update: %v", err)
				return
			}
		}
	}()

	// Hole churn + vacuum: transient rows (id >= 1000) appear and
	// disappear, and compaction renumbers the table underneath any open
	// cursor.
	writersWg.Add(1)
	go func() {
		defer writersWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := 1000 + i%32
			if _, _, err := db.Exec(fmt.Sprintf("INSERT INTO gens VALUES (%d, -1)", id)); err != nil {
				report("churn insert: %v", err)
				return
			}
			if _, _, err := db.Exec(fmt.Sprintf("DELETE FROM gens WHERE id = %d", id)); err != nil {
				report("churn delete: %v", err)
				return
			}
			if i%8 == 0 {
				if _, err := db.CompactTable("gens"); err != nil {
					report("compact: %v", err)
					return
				}
			}
		}
	}()

	// Snapshot readers: each opens a cursor, dawdles mid-stream so many
	// updates commit underneath it, and requires every streamed gen to
	// be the same value — the statement-atomic snapshot contract.
	const readers = 4
	for w := 0; w < readers; w++ {
		readersWg.Add(1)
		go func() {
			defer readersWg.Done()
			for r := 0; r < 40; r++ {
				cur, err := db.QueryCursorContext(context.Background(), "SELECT gen FROM gens WHERE id < 100 ORDER BY id")
				if err != nil {
					report("open: %v", err)
					return
				}
				var first int64
				n := 0
				for cur.Next() {
					g := cur.Row()[0].(int64)
					if n == 0 {
						first = g
					} else if g != first {
						report("snapshot mixed generations: row %d has gen %d, first was %d", n, g, first)
						cur.Close()
						return
					}
					n++
					if n%16 == 0 {
						time.Sleep(200 * time.Microsecond)
					}
				}
				if err := cur.Err(); err != nil {
					report("stream: %v", err)
					return
				}
				if n != stable {
					report("snapshot saw %d stable rows, want %d", n, stable)
					return
				}
			}
		}()
	}

	// The readers are the bounded part of the workload: wait for them,
	// then stop the open-ended writers.
	readersDone := make(chan struct{})
	go func() {
		readersWg.Wait()
		close(readersDone)
	}()
	select {
	case <-readersDone:
	case <-time.After(120 * time.Second):
		t.Error("readers did not finish in time")
	}
	close(stop)
	writersWg.Wait()
	select {
	case e := <-errCh:
		t.Fatal(e)
	default:
	}
	if db.PinnedCursors() != 0 {
		t.Fatalf("stress leaked %d cursor pins", db.PinnedCursors())
	}
}

