package engine

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"xmlrdb/internal/obs"
	"xmlrdb/internal/sqldb"
)

var updateGolden = flag.Bool("update", false, "rewrite the EXPLAIN golden files")

// planRows renders a SELECT's executed plan in the deterministic
// rows-only form the golden files pin.
func planRows(t *testing.T, db *DB, sql string) string {
	t.Helper()
	st, err := sqldb.Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	out, err := db.explainRowsString(context.Background(), st.(*sqldb.Select))
	if err != nil {
		t.Fatalf("explain %q: %v", sql, err)
	}
	return out
}

// TestDuplicateBindingRejected pins the plan-time error for two FROM
// items resolving to the same binding name: previously the second
// silently shadowed the first in the row environment.
func TestDuplicateBindingRejected(t *testing.T) {
	db := testDB(t)
	for _, sql := range []string{
		`SELECT * FROM authors a, books a`,
		`SELECT * FROM authors, authors`,
		`SELECT * FROM authors a JOIN authors a ON 1 = 1`,
	} {
		_, err := db.Query(sql)
		if err == nil || !strings.Contains(err.Error(), "duplicate table binding") {
			t.Errorf("%s: err = %v, want duplicate table binding", sql, err)
		}
	}
	// Distinct aliases over the same table stay legal (self join).
	if _, err := db.Query(`SELECT a.name FROM authors a, authors b WHERE a.id = b.id`); err != nil {
		t.Errorf("self join with distinct aliases failed: %v", err)
	}
}

// TestOrderByExprLimitSemantics pins that ORDER BY <expr> LIMIT k runs
// as a bounded top-k heap yet returns exactly what a full sort
// truncated to k would — same rows, same order, ties broken by input
// order (the stable-sort contract).
func TestOrderByExprLimitSemantics(t *testing.T) {
	db := testDB(t)
	full := queryData(t, db, `SELECT title, year * 2 AS yy FROM books ORDER BY yy DESC, title`)
	for k := 0; k <= len(full)+1; k++ {
		sql := fmt.Sprintf(`SELECT title, year * 2 AS yy FROM books ORDER BY yy DESC, title LIMIT %d`, k)
		got := queryData(t, db, sql)
		want := full
		if k < len(full) {
			want = full[:k]
		}
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Errorf("LIMIT %d: got %v, want %v", k, got, want)
		}
		if k > 0 {
			if plan := planRows(t, db, sql); !strings.Contains(plan, "TopK") {
				t.Errorf("LIMIT %d plan lacks TopK:\n%s", k, plan)
			}
		}
	}
	// Ties: every book maps to the same key; LIMIT must keep input order.
	got := queryData(t, db, `SELECT id FROM books ORDER BY 1 = 1 LIMIT 3`)
	want := [][]any{{int64(10)}, {int64(11)}, {int64(12)}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tied top-k = %v, want %v", got, want)
	}
	// OFFSET composes: the heap keeps limit+offset rows.
	got = queryData(t, db, `SELECT title FROM books ORDER BY year, title LIMIT 2 OFFSET 1`)
	fullOrdered := queryData(t, db, `SELECT title FROM books ORDER BY year, title`)
	if !reflect.DeepEqual(got, fullOrdered[1:3]) {
		t.Errorf("LIMIT 2 OFFSET 1 = %v, want %v", got, fullOrdered[1:3])
	}
}

// TestDistinctOrderByExprSemantics pins DISTINCT + ORDER BY over an
// expression: distinct applies to the projected values (not the sort
// keys), keeps the first occurrence in sort order, and never uses the
// top-k heap (which would drop rows before dedup sees them).
func TestDistinctOrderByExprSemantics(t *testing.T) {
	db := testDB(t)
	got := queryData(t, db, `SELECT DISTINCT year + 0 AS y FROM books ORDER BY y DESC`)
	want := [][]any{{int64(2005)}, {int64(2001)}, {int64(1999)}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DISTINCT ORDER BY expr = %v, want %v", got, want)
	}
	sql := `SELECT DISTINCT year + 0 AS y FROM books ORDER BY y DESC LIMIT 2`
	got = queryData(t, db, sql)
	if !reflect.DeepEqual(got, want[:2]) {
		t.Errorf("DISTINCT ... LIMIT = %v, want %v", got, want[:2])
	}
	plan := planRows(t, db, sql)
	if strings.Contains(plan, "TopK") {
		t.Errorf("DISTINCT plan must not use TopK:\n%s", plan)
	}
	for _, op := range []string{"Limit(2)", "Distinct", "Sort"} {
		if !strings.Contains(plan, op) {
			t.Errorf("DISTINCT plan lacks %s:\n%s", op, plan)
		}
	}
}

// limitDB builds a wide table (plus a small dimension table) with a
// metrics hub attached, for the short-circuit proofs.
func limitDB(tb testing.TB, rows int) (*DB, *obs.Metrics) {
	tb.Helper()
	db := Open()
	m := obs.New()
	db.SetMetrics(m)
	_, _, err := db.ExecScript(`
CREATE TABLE big (id INTEGER PRIMARY KEY, d INTEGER NOT NULL, val TEXT NOT NULL);
CREATE TABLE dims (id INTEGER PRIMARY KEY, name TEXT NOT NULL);
`)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := db.InsertBatch("dims", [][]any{{i, fmt.Sprintf("dim-%d", i)}}); err != nil {
			tb.Fatal(err)
		}
	}
	const chunk = 5000
	for at := 0; at < rows; at += chunk {
		n := chunk
		if at+n > rows {
			n = rows - at
		}
		batch := make([][]any, n)
		for i := range batch {
			id := at + i
			batch[i] = []any{id, id % 8, fmt.Sprintf("v%d", id)}
		}
		if _, err := db.InsertBatch("big", batch); err != nil {
			tb.Fatal(err)
		}
	}
	return db, m
}

// TestLimitShortCircuitsScan is the iterator-model proof: LIMIT 10
// over a 100k-row table must visit ~10 rows, not 100k — unjoined, and
// on the probe side of a hash join (the build side still reads its
// whole, small input).
func TestLimitShortCircuitsScan(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 100k-row table")
	}
	const total = 100_000
	db, m := limitDB(t, total)

	rows, err := db.Query(`SELECT id FROM big LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows.Data))
	}
	scanned := m.Snapshot().Tables["big"].RowsScanned
	if scanned > 32 {
		t.Errorf("unjoined LIMIT 10 scanned %d rows of big, want ~10", scanned)
	}

	rows, err = db.Query(`SELECT b.id, d.name FROM big b JOIN dims d ON b.d = d.id LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 10 {
		t.Fatalf("joined: got %d rows, want 10", len(rows.Data))
	}
	s := m.Snapshot()
	joinScanned := s.Tables["big"].RowsScanned - scanned
	if joinScanned > 64 {
		t.Errorf("joined LIMIT 10 scanned %d rows of big, want ~10", joinScanned)
	}
	if s.Tables["dims"].RowsScanned != 8 {
		t.Errorf("build side scanned %d rows of dims, want all 8", s.Tables["dims"].RowsScanned)
	}
	if s.Engine.RowsOut < 20 {
		t.Errorf("RowsOut = %d, want >= 20", s.Engine.RowsOut)
	}
	if s.Engine.OpRows.Limit != 20 {
		t.Errorf("limit operator rows = %d, want 20", s.Engine.OpRows.Limit)
	}
}

// TestCursorReleasesLocksOnClose abandons a cursor mid-stream and
// checks Close releases the read locks: a write to the scanned table
// must succeed afterwards (it would deadlock against a leaked lock).
func TestCursorReleasesLocksOnClose(t *testing.T) {
	db := testDB(t)
	cur, err := db.QueryCursorContext(context.Background(), `SELECT name FROM authors`)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("no first row: %v", cur.Err())
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if cur.Next() {
		t.Fatal("Next after Close returned a row")
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := db.Exec(`INSERT INTO authors VALUES (9, 'Late', 20)`)
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("write after cursor Close: %v", err)
	}
}

// TestCursorCancellationMidStream cancels the context after the first
// rows arrive; the iterator core's poll must abort the scan and
// surface the context error through Err.
func TestCursorCancellationMidStream(t *testing.T) {
	db, _ := limitDB(t, 5_000)
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := db.QueryCursorContext(ctx, `SELECT id FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < 3; i++ {
		if !cur.Next() {
			t.Fatalf("row %d missing: %v", i, cur.Err())
		}
	}
	cancel()
	n := 0
	for cur.Next() {
		n++
	}
	if n >= 5_000 {
		t.Fatalf("scan ran to completion (%d rows) after cancel", n)
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	// A cancelled cursor must still have released its locks.
	if _, _, err := db.Exec(`INSERT INTO big VALUES (1000000, 0, 'after')`); err != nil {
		t.Fatalf("write after cancelled cursor: %v", err)
	}
}

// TestExplainGoldenPlans pins the executed physical plan (operators,
// cardinality hints, actual row counts) for the planner's main shapes.
// Regenerate with: go test ./internal/engine -run TestExplainGoldenPlans -update
func TestExplainGoldenPlans(t *testing.T) {
	db := testDB(t)
	if _, _, err := db.Exec(`CREATE INDEX books_year ON books (year)`); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		sql  string
	}{
		{"point_lookup", `SELECT title FROM books WHERE year = 1999`},
		{"hash_join", `SELECT b.title, a.name FROM books b JOIN authors a ON b.author = a.id ORDER BY b.title`},
		{"left_join", `SELECT a.name, b.title FROM authors a LEFT JOIN books b ON b.author = a.id ORDER BY a.name, b.title`},
		{"topk", `SELECT title FROM books ORDER BY year DESC, title LIMIT 2`},
		{"aggregate", `SELECT a.name, COUNT(*) AS n FROM books b JOIN authors a ON b.author = a.id GROUP BY a.name ORDER BY a.name`},
		// Vectorized pipelines and the fallback boundary (vector.go):
		// grouped aggregation over a scan batches; a LIKE predicate is
		// outside the compiled kernels and keeps the row-at-a-time tree;
		// a LIMIT above a vectorized projection bounds the first batch.
		{"vec_aggregate", `SELECT author, COUNT(*) AS n, MAX(year) AS y FROM books GROUP BY author ORDER BY author`},
		{"vec_fallback", `SELECT title FROM books WHERE title LIKE 'X%'`},
		{"vec_limit", `SELECT title FROM books WHERE year >= 1999 LIMIT 2`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := planRows(t, db, tc.sql)
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("plan drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// BenchmarkStreamingLimit measures SELECT ... LIMIT 10 over a 100k-row
// table, unjoined and joined: with the streaming iterator path this is
// O(k + matched), independent of table size (E9b).
func BenchmarkStreamingLimit(b *testing.B) {
	const total = 100_000
	db, _ := limitDB(b, total)
	bench := func(b *testing.B, sql string) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(sql)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows.Data) != 10 {
				b.Fatalf("got %d rows", len(rows.Data))
			}
		}
	}
	b.Run("unjoined", func(b *testing.B) {
		bench(b, `SELECT id, val FROM big LIMIT 10`)
	})
	b.Run("joined", func(b *testing.B) {
		bench(b, `SELECT b.id, d.name FROM big b JOIN dims d ON b.d = d.id LIMIT 10`)
	})
	b.Run("unjoined-full", func(b *testing.B) {
		// The O(n) baseline the LIMIT runs must beat by orders of magnitude.
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(`SELECT COUNT(*) FROM big`)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows.Data) != 1 {
				b.Fatal("bad count result")
			}
		}
	})
}
