package engine

import (
	"context"
	"fmt"
	"time"

	"xmlrdb/internal/obs"
	"xmlrdb/internal/sqldb"
)

// SetMetrics attaches a metrics hub: per-table counters (inserts,
// scans, index hits, lock waits) and per-statement execution latency
// are recorded into it. Attach before issuing concurrent operations; a
// nil hub (the default) disables collection.
func (db *DB) SetMetrics(m *obs.Metrics) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.obs = m
	for name, t := range db.tables {
		if m != nil {
			t.obs = m.Table(name)
		} else {
			t.obs = nil
		}
	}
	if db.wal != nil {
		db.wal.mu.Lock()
		db.wal.obs = m
		db.wal.mu.Unlock()
	}
}

// SetTracer attaches a tracer for structured events (slow queries).
// Attach before issuing concurrent operations.
func (db *DB) SetTracer(t obs.Tracer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tracer = t
}

// SetSlowQueryThreshold enables the slow-query log: statements whose
// execution exceeds d emit a structured event through the tracer (and
// count in the metrics). Zero disables it (the default). Configure
// before issuing concurrent operations.
func (db *DB) SetSlowQueryThreshold(d time.Duration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.slowQuery = d
}

// execStmtObserved dispatches one parsed statement, recording latency,
// statement-kind counters and the slow-query trace when observability
// is attached. sql is the original text when known (for trace detail).
// Observed SELECTs route through the cursor path so telemetry — the
// executed-plan digest, the fingerprint aggregate, operator spans —
// comes from one place regardless of whether the caller streams or
// materializes.
func (db *DB) execStmtObserved(ctx context.Context, st sqldb.Stmt, sql string) (Result, *Rows, error) {
	if db.obs == nil && db.tracer == nil && obs.TraceFrom(ctx) == nil {
		res, rows, err := db.dispatchStmt(ctx, st)
		db.maybeCheckpoint()
		return res, rows, err
	}
	if sel, ok := st.(*sqldb.Select); ok {
		return db.execSelectObserved(ctx, sel, sql)
	}
	start := time.Now()
	res, rows, err := db.dispatchStmt(ctx, st)
	d := time.Since(start)
	db.maybeCheckpoint()
	if db.obs != nil {
		db.obs.ExecLatency.ObserveDuration(d)
		switch st.(type) {
		case *sqldb.Insert:
			db.obs.InsertStmts.Inc()
		case *sqldb.Update:
			db.obs.Updates.Inc()
		case *sqldb.Delete:
			db.obs.Deletes.Inc()
		default:
			db.obs.OtherStmts.Inc()
		}
	}
	if thr := db.slowQuery; thr > 0 && d >= thr {
		if db.obs != nil {
			db.obs.SlowQueries.Inc()
		}
		if db.tracer != nil {
			detail := sql
			if detail == "" {
				detail = fmt.Sprintf("%T", st)
			}
			ev := obs.Event{Scope: "engine", Name: "slow-query", Detail: detail, Dur: d}
			if sql != "" {
				ev.Attrs = []obs.Attr{{Key: "fingerprint", Val: obs.Fingerprint(sql)}}
			}
			if err != nil {
				ev.Err = err.Error()
			}
			db.tracer.Emit(ev)
		}
	}
	return res, rows, err
}

// execSelectObserved is the observed materialized-SELECT path: a
// cursor is opened, wired into the observability hooks (observeCursor)
// and drained. A statement that fails before a cursor exists — parse
// binding, planning, context already cancelled — is still counted, so
// the statement counters keep their one-per-execution meaning.
func (db *DB) execSelectObserved(ctx context.Context, sel *sqldb.Select, sql string) (Result, *Rows, error) {
	start := time.Now()
	cc := newCancelCheck(ctx)
	err := cc.now()
	if err == nil {
		var cur *selectCursor
		cur, err = db.openSelect(ctx, sel, cc, false)
		if err == nil {
			db.observeCursor(cur, sql)
			rows, derr := DrainCursor(cur)
			db.maybeCheckpoint()
			return Result{}, rows, derr
		}
	}
	db.maybeCheckpoint()
	d := time.Since(start)
	if db.obs != nil {
		db.obs.Selects.Inc()
		db.obs.ExecLatency.ObserveDuration(d)
		if sql != "" {
			db.obs.Queries.Observe(sql, d, 0, err, nil)
		}
	}
	return Result{}, nil, err
}
