package engine

import (
	"context"
	"fmt"
	"time"

	"xmlrdb/internal/obs"
	"xmlrdb/internal/sqldb"
)

// SetMetrics attaches a metrics hub: per-table counters (inserts,
// scans, index hits, lock waits) and per-statement execution latency
// are recorded into it. Attach before issuing concurrent operations; a
// nil hub (the default) disables collection.
func (db *DB) SetMetrics(m *obs.Metrics) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.obs = m
	for name, t := range db.tables {
		if m != nil {
			t.obs = m.Table(name)
		} else {
			t.obs = nil
		}
	}
	if db.wal != nil {
		db.wal.mu.Lock()
		db.wal.obs = m
		db.wal.mu.Unlock()
	}
}

// SetTracer attaches a tracer for structured events (slow queries).
// Attach before issuing concurrent operations.
func (db *DB) SetTracer(t obs.Tracer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tracer = t
}

// SetSlowQueryThreshold enables the slow-query log: statements whose
// execution exceeds d emit a structured event through the tracer (and
// count in the metrics). Zero disables it (the default). Configure
// before issuing concurrent operations.
func (db *DB) SetSlowQueryThreshold(d time.Duration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.slowQuery = d
}

// execStmtObserved dispatches one parsed statement, recording latency,
// statement-kind counters and the slow-query trace when observability
// is attached. sql is the original text when known (for trace detail).
func (db *DB) execStmtObserved(ctx context.Context, st sqldb.Stmt, sql string) (Result, *Rows, error) {
	if db.obs == nil && db.tracer == nil {
		res, rows, err := db.dispatchStmt(ctx, st)
		db.maybeCheckpoint()
		return res, rows, err
	}
	start := time.Now()
	res, rows, err := db.dispatchStmt(ctx, st)
	d := time.Since(start)
	db.maybeCheckpoint()
	if db.obs != nil {
		db.obs.ExecLatency.ObserveDuration(d)
		switch st.(type) {
		case *sqldb.Select:
			db.obs.Selects.Inc()
		case *sqldb.Insert:
			db.obs.InsertStmts.Inc()
		case *sqldb.Update:
			db.obs.Updates.Inc()
		case *sqldb.Delete:
			db.obs.Deletes.Inc()
		default:
			db.obs.OtherStmts.Inc()
		}
	}
	if thr := db.slowQuery; thr > 0 && d >= thr {
		if db.obs != nil {
			db.obs.SlowQueries.Inc()
		}
		if db.tracer != nil {
			detail := sql
			if detail == "" {
				detail = fmt.Sprintf("%T", st)
			}
			ev := obs.Event{Scope: "engine", Name: "slow-query", Detail: detail, Dur: d}
			if err != nil {
				ev.Err = err.Error()
			}
			db.tracer.Emit(ev)
		}
	}
	return res, rows, err
}
