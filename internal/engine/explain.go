package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"xmlrdb/internal/sqldb"
)

// EXPLAIN rendering for physical plans: one line per operator, indented
// two spaces per tree level, with the planner's cardinality hint and —
// after execution — the actual rows each operator emitted and the time
// spent in it.

type explainMode int

const (
	// explainEst renders estimates only (plan not executed).
	explainEst explainMode = iota
	// explainRows adds actual per-operator row counts (deterministic;
	// what the golden tests pin).
	explainRows
	// explainTimed adds per-operator wall clock.
	explainTimed
)

// renderPlan renders the operator tree, root first.
func renderPlan(p *physPlan, mode explainMode) string {
	var b strings.Builder
	walkPlan(p.root, 0, func(n planNode, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.describe())
		fmt.Fprintf(&b, " (est=%d", n.estimate())
		if mode >= explainRows {
			fmt.Fprintf(&b, " rows=%d", n.stats().rows)
			if v, ok := n.(*vecNode); ok {
				fmt.Fprintf(&b, " batches=%d rows/batch=%d", v.batches, v.rowsPerBatch())
			}
		}
		if mode >= explainTimed {
			st := n.stats()
			fmt.Fprintf(&b, " time=%s", time.Duration(st.openNanos+st.nanos).Round(time.Microsecond))
		}
		b.WriteString(")\n")
	})
	return b.String()
}

// ExplainQueryContext executes a SELECT with per-operator timing on and
// renders its physical plan tree with actual row counts and operator
// times. The query runs to completion (the row counts are real); its
// rows are discarded.
func (db *DB) ExplainQueryContext(ctx context.Context, sql string) (string, error) {
	st, err := sqldb.Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := st.(*sqldb.Select)
	if !ok {
		return "", errors.New("engine: EXPLAIN requires a SELECT")
	}
	cc := newCancelCheck(ctx)
	if err := cc.now(); err != nil {
		return "", err
	}
	cur, err := db.openSelect(ctx, sel, cc, true)
	if err != nil {
		return "", err
	}
	defer cur.Close()
	for cur.Next() {
	}
	if err := cur.Err(); err != nil {
		return "", err
	}
	return renderPlan(cur.plan, explainTimed), nil
}

// explainRowsString runs a SELECT and renders its plan with row counts
// but no timings — the deterministic form the golden tests pin.
func (db *DB) explainRowsString(ctx context.Context, sel *sqldb.Select) (string, error) {
	cc := newCancelCheck(ctx)
	cur, err := db.openSelect(ctx, sel, cc, false)
	if err != nil {
		return "", err
	}
	defer cur.Close()
	for cur.Next() {
	}
	if err := cur.Err(); err != nil {
		return "", err
	}
	return renderPlan(cur.plan, explainRows), nil
}
