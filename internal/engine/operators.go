package engine

import (
	"container/heap"
	"fmt"
	"io"
	"sort"
	"time"

	"xmlrdb/internal/sqldb"
)

// The executor half of the Volcano split: every plan node opens into a
// rowIter and rows are pulled one at a time from the root, so a LIMIT
// short-circuits the scans below it and a cancelled context stops the
// pipeline at the next poll. Pipeline breakers (hash-join build,
// aggregation, sort, top-k) consume their input when opened; everything
// else is fully streaming.
//
// Rows flow in the wide layout the row environment describes: each scan
// allocates a full-width row with its binding's columns at its offset,
// and joins merge the inner binding's columns into a copy of the outer
// row. Iterators share ec.env and set env.row immediately before every
// expression evaluation, so evaluations never see a stale row.

// rowIter is the streaming iterator contract. Next returns io.EOF when
// the stream is exhausted; any other error is terminal.
type rowIter interface {
	Next() ([]any, error)
}

// execCtx is the shared per-execution state: the row environment the
// planner built, the cancellation poller (nil when the context can
// never cancel) and whether per-operator timing is on (EXPLAIN runs
// and traced requests). sampleMask selects which Next calls are timed:
// 0 times every call (EXPLAIN); a power-of-two-minus-one mask times
// one call in mask+1, trading timer precision for per-row overhead on
// traced production queries.
type execCtx struct {
	env        *rowEnv
	cc         *cancelCheck
	timing     bool
	sampleMask int64
}

// openNode opens a plan node and wraps its iterator with the node's
// stats accounting — row counting, cancellation polling and (when
// timing) per-Next wall clock. All operators open children through
// here, so the wrapping nests and cancellation is polled at every level
// of the pipeline.
func openNode(n planNode, ec *execCtx) (rowIter, error) {
	var t0 time.Time
	if ec.timing {
		t0 = time.Now()
	}
	it, err := n.open(ec)
	if err != nil {
		return nil, err
	}
	if ec.timing {
		n.stats().openNanos = int64(time.Since(t0))
	}
	return &statIter{it: it, st: n.stats(), cc: ec.cc, timing: ec.timing, mask: ec.sampleMask}, nil
}

// statIter is the accounting wrapper around every operator.
type statIter struct {
	it     rowIter
	st     *opStats
	cc     *cancelCheck
	timing bool
	mask   int64
}

func (s *statIter) Next() ([]any, error) {
	if err := s.cc.step(); err != nil {
		return nil, err
	}
	if s.timing {
		s.st.calls++
		if s.mask != 0 && s.st.calls&s.mask != 0 {
			// Sampled-out call: count the row, skip the clock.
			row, err := s.it.Next()
			if err == nil {
				s.st.rows++
			}
			return row, err
		}
		t0 := time.Now()
		row, err := s.it.Next()
		s.st.nanos += int64(time.Since(t0))
		s.st.timedCalls++
		if err == nil {
			s.st.rows++
		}
		return row, err
	}
	row, err := s.it.Next()
	if err == nil {
		s.st.rows++
	}
	return row, err
}

// sliceIter replays an already-materialized slice of rows; the output
// side of every pipeline breaker.
type sliceIter struct {
	rows [][]any
	i    int
}

func (s *sliceIter) Next() ([]any, error) {
	if s.i >= len(s.rows) {
		return nil, io.EOF
	}
	row := s.rows[s.i]
	s.i++
	return row, nil
}

// drainIter pulls an iterator to exhaustion.
func drainIter(it rowIter, fn func([]any) error) error {
	for {
		row, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// --- scan ---

// Scan access paths.
const (
	accessSeq   = "seq"
	accessIndex = "index"
	accessRange = "range"
)

// scanNode reads one source table, emitting full-width rows with its
// binding's columns at the binding offset. positions (index and range
// scans) pins the row positions resolved at plan time; a sequential
// scan leaves it nil and walks the captured version's rows. Execution
// never touches the live table — the iterator reads the immutable
// snapshot in src.ver, so no locks are held while the cursor streams.
// Pushed predicates not consumed by the access path are re-checked per
// emitted row.
type scanNode struct {
	nodeBase
	src       source
	bind      envBinding
	width     int
	access    string
	indexName string
	positions []int
	preds     []sqldb.Expr

	// visited counts live rows the scan actually touched; flushed into
	// the table's RowsScanned when the plan finishes, so a LIMIT that
	// stops the scan early is visible in the metrics.
	visited int64
}

func (n *scanNode) kind() string         { return "scan" }
func (n *scanNode) children() []planNode { return nil }

func (n *scanNode) describe() string {
	name := n.src.ref.Table
	if alias := n.src.ref.Name(); alias != name {
		name += " AS " + alias
	}
	var label string
	switch n.access {
	case accessIndex:
		label = fmt.Sprintf("IndexScan(%s via %s)", name, n.indexName)
	case accessRange:
		label = fmt.Sprintf("RangeScan(%s via %s)", name, n.indexName)
	default:
		label = fmt.Sprintf("SeqScan(%s)", name)
	}
	if len(n.preds) > 0 {
		label += fmt.Sprintf(" [preds=%d]", len(n.preds))
	}
	return label
}

func (n *scanNode) open(ec *execCtx) (rowIter, error) {
	if n.src.t.obs != nil {
		if n.access == accessSeq {
			n.src.t.obs.Scans.Inc()
		} else {
			n.src.t.obs.IndexHits.Inc()
		}
	}
	return &scanIter{n: n, ec: ec, rows: n.src.ver.rows}, nil
}

type scanIter struct {
	n    *scanNode
	ec   *execCtx
	rows [][]any // the open-time snapshot (src.ver.rows)
	pos  int
}

func (it *scanIter) Next() ([]any, error) {
	n := it.n
	for {
		var row []any
		if n.positions != nil {
			if it.pos >= len(n.positions) {
				return nil, io.EOF
			}
			row = it.rows[n.positions[it.pos]]
		} else {
			if it.pos >= len(it.rows) {
				return nil, io.EOF
			}
			row = it.rows[it.pos]
		}
		it.pos++
		if row == nil {
			continue // deleted slot
		}
		n.visited++
		if err := it.ec.cc.step(); err != nil {
			return nil, err
		}
		wide := make([]any, n.width)
		copy(wide[n.bind.offset:], row)
		ok, err := evalPreds(n.preds, wide, it.ec)
		if err != nil {
			return nil, err
		}
		if ok {
			return wide, nil
		}
	}
}

// evalPreds evaluates a conjunct list against one row.
func evalPreds(preds []sqldb.Expr, row []any, ec *execCtx) (bool, error) {
	if len(preds) == 0 {
		return true, nil
	}
	ec.env.row = row
	for _, p := range preds {
		v, err := evalExpr(p, ec.env)
		if err != nil {
			return false, err
		}
		if !truthy(v) {
			return false, nil
		}
	}
	return true, nil
}

// --- filter ---

// filterNode applies residual predicates above the join tree.
type filterNode struct {
	nodeBase
	child planNode
	preds []sqldb.Expr
}

func (n *filterNode) kind() string         { return "filter" }
func (n *filterNode) children() []planNode { return []planNode{n.child} }
func (n *filterNode) describe() string     { return fmt.Sprintf("Filter [preds=%d]", len(n.preds)) }

func (n *filterNode) open(ec *execCtx) (rowIter, error) {
	child, err := openNode(n.child, ec)
	if err != nil {
		return nil, err
	}
	return &filterIter{n: n, ec: ec, child: child}, nil
}

type filterIter struct {
	n     *filterNode
	ec    *execCtx
	child rowIter
}

func (it *filterIter) Next() ([]any, error) {
	for {
		row, err := it.child.Next()
		if err != nil {
			return nil, err
		}
		ok, err := evalPreds(it.n.preds, row, it.ec)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

// --- joins ---

// mergeRow copies the inner binding's columns into a copy of the outer
// row (both are full-width).
func mergeRow(o, in []any, b envBinding) []any {
	m := append([]any(nil), o...)
	copy(m[b.offset:b.offset+len(b.cols)], in[b.offset:b.offset+len(b.cols)])
	return m
}

// hashJoinNode joins the streamed outer side against a hash table built
// from the inner side on open. LEFT joins emit the unmatched outer row
// as-is: the inner binding's columns stay NULL in the wide layout.
type hashJoinNode struct {
	nodeBase
	outer, inner planNode
	equis        []equiPair
	others       []sqldb.Expr
	left         bool
	bind         envBinding
	keysDesc     string
	// buildOuter flips the build side: the hash table is built from the
	// outer input and the inner side streams through it. Set by the
	// cost-based planner when the outer's estimated cardinality is the
	// smaller; never set on LEFT joins (unmatched-outer emission needs
	// the outer side streamed). The merged output rows are identical
	// either way — only emission order and build memory change.
	buildOuter bool
}

func (n *hashJoinNode) kind() string         { return "join" }
func (n *hashJoinNode) children() []planNode { return []planNode{n.outer, n.inner} }

func (n *hashJoinNode) describe() string {
	label := "HashJoin"
	if n.left {
		label = "HashJoin(LEFT)"
	}
	label += " on " + n.keysDesc
	if len(n.others) > 0 {
		label += fmt.Sprintf(" [conds=%d]", len(n.others))
	}
	if n.buildOuter {
		label += " [build=outer]"
	}
	return label
}

func (n *hashJoinNode) open(ec *execCtx) (rowIter, error) {
	buildChild, streamChild := n.inner, n.outer
	if n.buildOuter {
		buildChild, streamChild = n.outer, n.inner
	}
	buildIt, err := openNode(buildChild, ec)
	if err != nil {
		return nil, err
	}
	build := make(map[string][][]any)
	keyBuf := make([]any, len(n.equis))
	err = drainIter(buildIt, func(in []any) error {
		for i, e := range n.equis {
			keyBuf[i] = in[n.buildKeyIdx(e)]
		}
		if anyNil(keyBuf) {
			return nil // NULL never equals anything
		}
		k := encodeKey(keyBuf)
		build[k] = append(build[k], in)
		return nil
	})
	if err != nil {
		return nil, err
	}
	streamIt, err := openNode(streamChild, ec)
	if err != nil {
		return nil, err
	}
	return &hashJoinIter{n: n, ec: ec, outer: streamIt, build: build,
		keyBuf: make([]any, len(n.equis))}, nil
}

// buildKeyIdx / probeKeyIdx pick each equi pair's flat column index for
// the built and streamed sides respectively.
func (n *hashJoinNode) buildKeyIdx(e equiPair) int {
	if n.buildOuter {
		return e.outerIdx
	}
	return e.innerIdx
}

func (n *hashJoinNode) probeKeyIdx(e equiPair) int {
	if n.buildOuter {
		return e.innerIdx
	}
	return e.outerIdx
}

type hashJoinIter struct {
	n      *hashJoinNode
	ec     *execCtx
	outer  rowIter // the streamed side (the inner input when buildOuter)
	build  map[string][][]any
	keyBuf []any

	cur     []any   // current streamed row, nil when a new one is needed
	matches [][]any // hash bucket for cur
	mi      int
	matched bool
}

func (it *hashJoinIter) Next() ([]any, error) {
	n := it.n
	for {
		if it.cur != nil {
			for it.mi < len(it.matches) {
				if err := it.ec.cc.step(); err != nil {
					return nil, err
				}
				in := it.matches[it.mi]
				it.mi++
				// mergeRow wants (outer row, inner row): when the build side
				// is the outer, the bucket row is the outer one.
				var m []any
				if n.buildOuter {
					m = mergeRow(in, it.cur, n.bind)
				} else {
					m = mergeRow(it.cur, in, n.bind)
				}
				ok, err := evalPreds(n.others, m, it.ec)
				if err != nil {
					return nil, err
				}
				if ok {
					it.matched = true
					return m, nil
				}
			}
			o := it.cur
			it.cur = nil
			if n.left && !it.matched {
				return o, nil
			}
		}
		row, err := it.outer.Next()
		if err != nil {
			return nil, err
		}
		it.cur, it.mi, it.matched = row, 0, false
		for i, e := range n.equis {
			it.keyBuf[i] = row[n.probeKeyIdx(e)]
		}
		if anyNil(it.keyBuf) {
			it.matches = nil
		} else {
			it.matches = it.build[encodeKey(it.keyBuf)]
		}
	}
}

// nlJoinNode is the fallback filtered nested loop; the inner side is
// materialized on open and rescanned per outer row.
type nlJoinNode struct {
	nodeBase
	outer, inner planNode
	conds        []sqldb.Expr
	left         bool
	bind         envBinding
}

func (n *nlJoinNode) kind() string         { return "join" }
func (n *nlJoinNode) children() []planNode { return []planNode{n.outer, n.inner} }

func (n *nlJoinNode) describe() string {
	label := "NestedLoopJoin"
	if n.left {
		label = "NestedLoopJoin(LEFT)"
	}
	if len(n.conds) > 0 {
		label += fmt.Sprintf(" [conds=%d]", len(n.conds))
	}
	return label
}

func (n *nlJoinNode) open(ec *execCtx) (rowIter, error) {
	innerIt, err := openNode(n.inner, ec)
	if err != nil {
		return nil, err
	}
	var inner [][]any
	if err := drainIter(innerIt, func(in []any) error {
		inner = append(inner, in)
		return nil
	}); err != nil {
		return nil, err
	}
	outerIt, err := openNode(n.outer, ec)
	if err != nil {
		return nil, err
	}
	return &nlJoinIter{n: n, ec: ec, outer: outerIt, inner: inner}, nil
}

type nlJoinIter struct {
	n     *nlJoinNode
	ec    *execCtx
	outer rowIter
	inner [][]any

	cur     []any
	ii      int
	matched bool
}

func (it *nlJoinIter) Next() ([]any, error) {
	n := it.n
	for {
		if it.cur != nil {
			for it.ii < len(it.inner) {
				if err := it.ec.cc.step(); err != nil {
					return nil, err
				}
				in := it.inner[it.ii]
				it.ii++
				m := mergeRow(it.cur, in, n.bind)
				ok, err := evalPreds(n.conds, m, it.ec)
				if err != nil {
					return nil, err
				}
				if ok {
					it.matched = true
					return m, nil
				}
			}
			o := it.cur
			it.cur = nil
			if n.left && !it.matched {
				return o, nil
			}
		}
		row, err := it.outer.Next()
		if err != nil {
			return nil, err
		}
		it.cur, it.ii, it.matched = row, 0, false
	}
}

// --- aggregate / project ---

// aggNode groups its input on open (a pipeline breaker by nature) and
// emits one row per surviving group: the projected values followed by
// the ORDER BY keys.
type aggNode struct {
	nodeBase
	child planNode
	sel   *sqldb.Select
	items []sqldb.SelectItem
	cols  []string
}

func (n *aggNode) kind() string         { return "aggregate" }
func (n *aggNode) children() []planNode { return []planNode{n.child} }

func (n *aggNode) describe() string {
	return fmt.Sprintf("Aggregate [group_by=%d, items=%d]", len(n.sel.GroupBy), len(n.items))
}

func (n *aggNode) open(ec *execCtx) (rowIter, error) {
	child, err := openNode(n.child, ec)
	if err != nil {
		return nil, err
	}
	groups := make(map[string][][]any)
	var order []string
	keyVals := make([]any, len(n.sel.GroupBy))
	err = drainIter(child, func(row []any) error {
		ec.env.row = row
		for i, g := range n.sel.GroupBy {
			v, err := evalExpr(g, ec.env)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		k := encodeKey(keyVals)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(n.sel.GroupBy) == 0 && len(order) == 0 {
		// Aggregate over an empty input still yields one group.
		order = append(order, "")
		groups[""] = nil
	}
	var outs [][]any
	for _, k := range order {
		genv := &aggEnv{env: ec.env, rows: groups[k]}
		if n.sel.Having != nil {
			v, err := genv.eval(n.sel.Having)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		out := make([]any, len(n.items)+len(n.sel.OrderBy))
		for i, it := range n.items {
			v, err := genv.eval(it.Expr)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		for j, oi := range n.sel.OrderBy {
			v, err := orderKey(oi, n.items, n.cols, out[:len(n.items)],
				func(e sqldb.Expr) (any, error) { return genv.eval(e) })
			if err != nil {
				return nil, err
			}
			out[len(n.items)+j] = v
		}
		outs = append(outs, out)
	}
	return &sliceIter{rows: outs}, nil
}

// projectNode evaluates the projection per input row, emitting the
// projected values followed by the ORDER BY keys (stripped again by the
// sort/top-k operator, or by the cursor when no ordering is present).
type projectNode struct {
	nodeBase
	child planNode
	sel   *sqldb.Select
	items []sqldb.SelectItem
	cols  []string
}

func (n *projectNode) kind() string         { return "project" }
func (n *projectNode) children() []planNode { return []planNode{n.child} }

func (n *projectNode) describe() string {
	return "Project(" + joinCols(n.cols) + ")"
}

// joinCols renders output column names, elided past the first few.
func joinCols(cols []string) string {
	const show = 6
	if len(cols) <= show {
		return joinStrings(cols)
	}
	return joinStrings(cols[:show]) + fmt.Sprintf(", +%d", len(cols)-show)
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

func (n *projectNode) open(ec *execCtx) (rowIter, error) {
	child, err := openNode(n.child, ec)
	if err != nil {
		return nil, err
	}
	return &projectIter{n: n, ec: ec, child: child}, nil
}

type projectIter struct {
	n     *projectNode
	ec    *execCtx
	child rowIter
}

func (it *projectIter) Next() ([]any, error) {
	n := it.n
	row, err := it.child.Next()
	if err != nil {
		return nil, err
	}
	env := it.ec.env
	out := make([]any, len(n.items)+len(n.sel.OrderBy))
	env.row = row
	for i, item := range n.items {
		v, err := evalExpr(item.Expr, env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	for j, oi := range n.sel.OrderBy {
		v, err := orderKey(oi, n.items, n.cols, out[:len(n.items)],
			func(e sqldb.Expr) (any, error) {
				env.row = row
				return evalExpr(e, env)
			})
		if err != nil {
			return nil, err
		}
		out[len(n.items)+j] = v
	}
	return out, nil
}

// --- order ---

// lessByKeys compares two projected rows on the ORDER BY keys stored at
// keyOffset. Returns -1/0/+1.
func lessByKeys(a, b []any, orderBy []sqldb.OrderItem, keyOffset int) int {
	for k, oi := range orderBy {
		c := compare(a[keyOffset+k], b[keyOffset+k])
		if c != 0 {
			if oi.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// sortNode is the full stable sort; it strips the sort keys on emit.
type sortNode struct {
	nodeBase
	child     planNode
	orderBy   []sqldb.OrderItem
	keyOffset int
}

func (n *sortNode) kind() string         { return "sort" }
func (n *sortNode) children() []planNode { return []planNode{n.child} }
func (n *sortNode) describe() string     { return fmt.Sprintf("Sort [keys=%d]", len(n.orderBy)) }

func (n *sortNode) open(ec *execCtx) (rowIter, error) {
	child, err := openNode(n.child, ec)
	if err != nil {
		return nil, err
	}
	var buf [][]any
	if err := drainIter(child, func(row []any) error {
		buf = append(buf, row)
		return nil
	}); err != nil {
		return nil, err
	}
	sort.SliceStable(buf, func(i, j int) bool {
		return lessByKeys(buf[i], buf[j], n.orderBy, n.keyOffset) < 0
	})
	for i, row := range buf {
		buf[i] = row[:n.keyOffset]
	}
	return &sliceIter{rows: buf}, nil
}

// topKNode is the bounded ORDER BY … LIMIT heap: it keeps only the k
// best rows (k = limit + offset) while consuming its input, so memory
// is O(k) instead of O(input). An input sequence number breaks ties, so
// the output is byte-identical to a stable full sort followed by LIMIT.
// The planner never chooses it under DISTINCT, which must deduplicate
// over the fully sorted stream.
type topKNode struct {
	nodeBase
	child     planNode
	orderBy   []sqldb.OrderItem
	keyOffset int
	k         int
}

func (n *topKNode) kind() string         { return "sort" }
func (n *topKNode) children() []planNode { return []planNode{n.child} }

func (n *topKNode) describe() string {
	return fmt.Sprintf("TopK [k=%d, keys=%d]", n.k, len(n.orderBy))
}

type topkEntry struct {
	row []any
	seq int64
}

// topkHeap orders worst-first (a max-heap under the final ordering), so
// the root is the row to evict when a better candidate arrives.
type topkHeap struct {
	entries []topkEntry
	n       *topKNode
}

// before reports whether a sorts before b in the final output order.
func (h *topkHeap) before(a, b topkEntry) bool {
	c := lessByKeys(a.row, b.row, h.n.orderBy, h.n.keyOffset)
	if c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

func (h *topkHeap) Len() int           { return len(h.entries) }
func (h *topkHeap) Less(i, j int) bool { return h.before(h.entries[j], h.entries[i]) }
func (h *topkHeap) Swap(i, j int)      { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *topkHeap) Push(x any)         { h.entries = append(h.entries, x.(topkEntry)) }
func (h *topkHeap) Pop() any {
	last := len(h.entries) - 1
	e := h.entries[last]
	h.entries = h.entries[:last]
	return e
}

func (n *topKNode) open(ec *execCtx) (rowIter, error) {
	if n.k <= 0 {
		return &sliceIter{}, nil // LIMIT 0: nothing to produce, nothing to read
	}
	child, err := openNode(n.child, ec)
	if err != nil {
		return nil, err
	}
	h := &topkHeap{n: n}
	var seq int64
	if err := drainIter(child, func(row []any) error {
		e := topkEntry{row: row, seq: seq}
		seq++
		if h.Len() < n.k {
			heap.Push(h, e)
		} else if h.before(e, h.entries[0]) {
			h.entries[0] = e
			heap.Fix(h, 0)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	sort.Slice(h.entries, func(i, j int) bool { return h.before(h.entries[i], h.entries[j]) })
	rows := make([][]any, len(h.entries))
	for i, e := range h.entries {
		rows[i] = e.row[:n.keyOffset]
	}
	return &sliceIter{rows: rows}, nil
}

// --- distinct / offset / limit ---

// distinctNode keeps the first occurrence of each projected row.
type distinctNode struct {
	nodeBase
	child planNode
}

func (n *distinctNode) kind() string         { return "distinct" }
func (n *distinctNode) children() []planNode { return []planNode{n.child} }
func (n *distinctNode) describe() string     { return "Distinct" }

func (n *distinctNode) open(ec *execCtx) (rowIter, error) {
	child, err := openNode(n.child, ec)
	if err != nil {
		return nil, err
	}
	return &distinctIter{child: child, seen: make(map[string]bool)}, nil
}

type distinctIter struct {
	child rowIter
	seen  map[string]bool
}

func (it *distinctIter) Next() ([]any, error) {
	for {
		row, err := it.child.Next()
		if err != nil {
			return nil, err
		}
		k := encodeKey(row)
		if !it.seen[k] {
			it.seen[k] = true
			return row, nil
		}
	}
}

// offsetNode skips the first n rows.
type offsetNode struct {
	nodeBase
	child planNode
	n     int
}

func (n *offsetNode) kind() string         { return "limit" }
func (n *offsetNode) children() []planNode { return []planNode{n.child} }
func (n *offsetNode) describe() string     { return fmt.Sprintf("Offset(%d)", n.n) }

func (n *offsetNode) open(ec *execCtx) (rowIter, error) {
	child, err := openNode(n.child, ec)
	if err != nil {
		return nil, err
	}
	return &offsetIter{child: child, skip: n.n}, nil
}

type offsetIter struct {
	child rowIter
	skip  int
}

func (it *offsetIter) Next() ([]any, error) {
	for it.skip > 0 {
		if _, err := it.child.Next(); err != nil {
			return nil, err
		}
		it.skip--
	}
	return it.child.Next()
}

// limitNode stops pulling its child after n rows — the short-circuit
// that makes SELECT … LIMIT k read O(k) input.
type limitNode struct {
	nodeBase
	child planNode
	n     int
}

func (n *limitNode) kind() string         { return "limit" }
func (n *limitNode) children() []planNode { return []planNode{n.child} }
func (n *limitNode) describe() string     { return fmt.Sprintf("Limit(%d)", n.n) }

func (n *limitNode) open(ec *execCtx) (rowIter, error) {
	child, err := openNode(n.child, ec)
	if err != nil {
		return nil, err
	}
	return &limitIter{child: child, left: n.n}, nil
}

type limitIter struct {
	child rowIter
	left  int
}

func (it *limitIter) Next() ([]any, error) {
	if it.left <= 0 {
		return nil, io.EOF
	}
	row, err := it.child.Next()
	if err != nil {
		return nil, err
	}
	it.left--
	return row, nil
}
