package engine

import (
	"encoding/json"
	"fmt"
	"sort"

	"xmlrdb/internal/sqldb"
)

// Table statistics for the cost-based planner. ANALYZE walks each
// table's live rows once and records, per column, the distinct-value
// and NULL counts, the min/max, and a small equi-depth histogram over
// the numeric values. The planner (plan.go) turns these into
// selectivity estimates for pushed predicates and into join-output
// cardinalities for reordering multi-join chains; without them it falls
// back to live row counts and fixed default selectivities.
//
// Statistics are durable exactly like the dictionaries built by the
// same ANALYZE pass: the combined result is logged as one frameStats
// WAL record before installation (one frame per ANALYZE keeps the
// crash matrix's op-level atomicity), and travels inside snapshots as
// part of the per-table JSON header. Old stores recover fine — a
// legacy frameAnalyze replays dictionaries only, and a header without
// a stats field simply leaves the table unanalyzed for costing.

// statsHistBuckets is the equi-depth histogram resolution. Sixteen
// buckets bound the per-column footprint while still resolving the
// skew the shredded corpora exhibit (document-id clustering, hot
// element types).
const statsHistBuckets = 16

// Default selectivities when no statistic can answer (matching the
// planner's historical shrink(in)=in/3 temperament for ranges).
const (
	defaultEqSel    = 0.1
	defaultRangeSel = 1.0 / 3
	defaultLikeSel  = 0.25
	minSelectivity  = 1e-4
)

// HistBucket is one equi-depth histogram bucket: Count values fall in
// (previous bucket's Hi, Hi]; the first bucket's lower bound is the
// column minimum.
type HistBucket struct {
	Hi    float64 `json:"hi"`
	Count int64   `json:"n"`
}

// ColumnStats summarizes one column's value distribution at ANALYZE
// time.
type ColumnStats struct {
	// Distinct counts distinct non-NULL values; Nulls counts NULL ones.
	Distinct int64 `json:"distinct"`
	Nulls    int64 `json:"nulls,omitempty"`
	// NumMin/NumMax bound the numeric values (INTEGER and REAL columns,
	// or the numeric values of a mixed column); nil when none exist.
	NumMin *float64 `json:"num_min,omitempty"`
	NumMax *float64 `json:"num_max,omitempty"`
	// StrMin/StrMax bound the string values ("" when none exist —
	// HasStr disambiguates a genuine empty-string bound).
	StrMin string `json:"str_min,omitempty"`
	StrMax string `json:"str_max,omitempty"`
	HasStr bool   `json:"has_str,omitempty"`
	// Hist is the equi-depth histogram over the numeric values.
	Hist []HistBucket `json:"hist,omitempty"`
}

// TableStats is the ANALYZE result for one table.
type TableStats struct {
	// Rows counts live rows at ANALYZE time.
	Rows int64 `json:"rows"`
	// Cols is aligned to the table's column list; nil entries mean the
	// column had no analyzable values.
	Cols []*ColumnStats `json:"cols"`
}

// clone returns an independent copy (accessors hand copies out so the
// installed stats stay immutable).
func (ts *TableStats) clone() *TableStats {
	if ts == nil {
		return nil
	}
	cp := &TableStats{Rows: ts.Rows, Cols: make([]*ColumnStats, len(ts.Cols))}
	for i, cs := range ts.Cols {
		if cs == nil {
			continue
		}
		c := *cs
		c.Hist = append([]HistBucket(nil), cs.Hist...)
		if cs.NumMin != nil {
			v := *cs.NumMin
			c.NumMin = &v
		}
		if cs.NumMax != nil {
			v := *cs.NumMax
			c.NumMax = &v
		}
		cp.Cols[i] = &c
	}
	return cp
}

// buildStatsLocked computes fresh statistics from the table's live
// rows. Deterministic for a given row state (counts and sorted
// quantiles only), so WAL replay installing the logged copy and a
// hypothetical rebuild agree. Caller holds the table's write lock.
func buildStatsLocked(t *table) *TableStats {
	ncols := len(t.def.Columns)
	ts := &TableStats{Cols: make([]*ColumnStats, ncols)}
	type colAcc struct {
		distinct map[any]struct{}
		nulls    int64
		nums     []float64
		strMin   string
		strMax   string
		hasStr   bool
	}
	accs := make([]colAcc, ncols)
	for c := range accs {
		accs[c].distinct = make(map[any]struct{})
	}
	for _, row := range t.rows {
		if row == nil {
			continue
		}
		ts.Rows++
		for c := 0; c < ncols && c < len(row); c++ {
			v := row[c]
			a := &accs[c]
			if v == nil {
				a.nulls++
				continue
			}
			a.distinct[v] = struct{}{}
			switch x := v.(type) {
			case int64:
				a.nums = append(a.nums, float64(x))
			case float64:
				a.nums = append(a.nums, x)
			case string:
				if !a.hasStr || x < a.strMin {
					a.strMin = x
				}
				if !a.hasStr || x > a.strMax {
					a.strMax = x
				}
				a.hasStr = true
			}
		}
	}
	for c := range accs {
		a := &accs[c]
		if len(a.distinct) == 0 && a.nulls == 0 {
			continue // column never held a value
		}
		cs := &ColumnStats{Distinct: int64(len(a.distinct)), Nulls: a.nulls}
		if a.hasStr {
			cs.StrMin, cs.StrMax, cs.HasStr = a.strMin, a.strMax, true
		}
		if len(a.nums) > 0 {
			sort.Float64s(a.nums)
			lo, hi := a.nums[0], a.nums[len(a.nums)-1]
			cs.NumMin, cs.NumMax = &lo, &hi
			cs.Hist = buildHistogram(a.nums)
		}
		ts.Cols[c] = cs
	}
	return ts
}

// buildHistogram builds an equi-depth histogram over sorted values:
// each bucket holds roughly len(vals)/statsHistBuckets values, with
// runs of one value never split across buckets (so a bucket boundary
// is always the last occurrence of its Hi).
func buildHistogram(vals []float64) []HistBucket {
	n := len(vals)
	buckets := statsHistBuckets
	if buckets > n {
		buckets = n
	}
	var hist []HistBucket
	start := 0
	for b := 0; b < buckets && start < n; b++ {
		end := (b + 1) * n / buckets
		if end <= start {
			end = start + 1
		}
		hi := vals[end-1]
		// Extend over the rest of the run so Hi bounds its bucket.
		for end < n && vals[end] == hi {
			end++
		}
		hist = append(hist, HistBucket{Hi: hi, Count: int64(end - start)})
		start = end
	}
	return hist
}

// fracLE estimates the fraction of the column's non-NULL numeric
// values that are <= x, interpolating linearly inside the containing
// bucket. ok is false when the column has no histogram.
func (cs *ColumnStats) fracLE(x float64) (float64, bool) {
	if cs == nil || len(cs.Hist) == 0 || cs.NumMin == nil {
		return 0, false
	}
	var total int64
	for _, b := range cs.Hist {
		total += b.Count
	}
	if total == 0 {
		return 0, false
	}
	if x < *cs.NumMin {
		return 0, true
	}
	lo := *cs.NumMin
	var below int64
	for _, b := range cs.Hist {
		if x >= b.Hi {
			below += b.Count
			lo = b.Hi
			continue
		}
		frac := 1.0
		if b.Hi > lo {
			frac = (x - lo) / (b.Hi - lo)
		}
		return (float64(below) + frac*float64(b.Count)) / float64(total), true
	}
	return 1, true
}

// ---- installation, durability and bookkeeping ----

// StatsEpoch returns the database's statistics epoch: it advances every
// time any table's statistics are (re)installed — by ANALYZE, WAL
// replay or snapshot load. Plan caches key on it so plans compiled
// against stale statistics age out the moment fresher ones land.
func (db *DB) StatsEpoch() uint64 { return db.statsClock.Load() }

// TableStatsSnapshot returns a copy of one table's ANALYZE statistics,
// or nil when the table does not exist or was never analyzed.
func (db *DB) TableStatsSnapshot(name string) *TableStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t := db.tables[name]
	if t == nil {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats.clone()
}

// StatsFreshness reports how stale one table's statistics are.
type StatsFreshness struct {
	// Analyzed reports whether the table has statistics at all.
	Analyzed bool `json:"analyzed"`
	// Rows is the statistics' recorded live-row count (0 when not
	// analyzed).
	Rows int64 `json:"rows,omitempty"`
	// ChangesSince counts committed mutations against the table since
	// its last ANALYZE (every mutation since open when never analyzed).
	ChangesSince int64 `json:"changes_since_analyze"`
}

// StatsFreshnessReport returns per-table statistics freshness, keyed by
// table name, for every table in creation order.
func (db *DB) StatsFreshnessReport() map[string]StatsFreshness {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]StatsFreshness, len(db.order))
	for _, name := range db.order {
		t := db.tables[name]
		t.mu.RLock()
		fr := StatsFreshness{ChangesSince: t.statsMuts.Load()}
		if t.stats != nil {
			fr.Analyzed = true
			fr.Rows = t.stats.Rows
		}
		t.mu.RUnlock()
		out[name] = fr
	}
	return out
}

// installStatsLocked publishes new statistics on a table: resets the
// staleness counter and advances the database's stats epoch. Caller
// holds the table's write lock.
func (db *DB) installStatsLocked(t *table, ts *TableStats) {
	t.stats = ts
	t.statsMuts.Store(0)
	db.statsClock.Add(1)
}

// ---- WAL frame (frameStats) ----

// statsPayload is the JSON tail of a frameStats record. The dictionary
// section reuses the binary frameAnalyze codec; statistics are rare and
// self-describing JSON keeps them debuggable, like DDL records.
type statsPayload struct {
	Stats *TableStats `json:"stats"`
}

// encodeStatsFrame serializes one ANALYZE result: the frameAnalyze
// layout (table, per-column dictionaries) followed by a length-prefixed
// JSON statsPayload. One frame carries the whole ANALYZE so recovery
// can never observe dictionaries without their statistics.
func encodeStatsFrame(table string, dicts []*colDict, ts *TableStats) ([]byte, error) {
	buf := encodeAnalyzeFrame(table, dicts)
	js, err := json.Marshal(statsPayload{Stats: ts})
	if err != nil {
		return nil, err
	}
	buf = appendWALString(buf, string(js))
	return buf, nil
}

func (db *DB) logStats(table string, dicts []*colDict, ts *TableStats) error {
	if db.wal == nil {
		return nil
	}
	payload, err := encodeStatsFrame(table, dicts, ts)
	if err != nil {
		return err
	}
	return db.wal.append(frameStats, payload)
}

// applyStatsFrame re-installs a logged ANALYZE (dictionaries plus
// statistics) during recovery.
func (db *DB) applyStatsFrame(r *walReader) error {
	name, dicts, err := decodeAnalyzePayload(r)
	if err != nil {
		return err
	}
	js, err := r.str()
	if err != nil {
		return err
	}
	var p statsPayload
	if err := json.Unmarshal([]byte(js), &p); err != nil {
		return fmt.Errorf("engine: corrupt stats frame: %w", err)
	}
	t := db.tables[name]
	if t == nil {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	if len(dicts) != len(t.def.Columns) {
		return errWALCorrupt
	}
	if p.Stats != nil && len(p.Stats.Cols) != len(t.def.Columns) {
		return errWALCorrupt
	}
	t.dicts = dicts
	t.invalidateVersion()
	db.installStatsLocked(t, p.Stats)
	return nil
}

// ---- selectivity estimation (used by plan.go) ----

// colStatsFor resolves a column name on a source to its statistics (nil
// when unanalyzed). Caller holds the open-time locks.
func colStatsFor(src source, colName string) (*ColumnStats, int64) {
	ts := src.t.stats
	if ts == nil {
		return nil, 0
	}
	_, pos := src.t.def.Column(colName)
	if pos < 0 || pos >= len(ts.Cols) {
		return nil, ts.Rows
	}
	return ts.Cols[pos], ts.Rows
}

// distinctOf estimates a column's distinct-value count: ANALYZE
// statistics first, the column's dictionary second, the source's live
// row count (every-value-distinct, the right guess for keys) last.
func distinctOf(src source, colName string) float64 {
	if cs, _ := colStatsFor(src, colName); cs != nil && cs.Distinct > 0 {
		return float64(cs.Distinct)
	}
	if _, pos := src.t.def.Column(colName); pos >= 0 && pos < len(src.t.dicts) {
		if d := src.t.dicts[pos]; d != nil && d.size() > 0 {
			return float64(d.size())
		}
	}
	if n := len(src.ver.rows); n > 0 {
		return float64(n)
	}
	return 1
}

// predSelectivity estimates the fraction of a source's rows one pushed
// predicate keeps. Conjunct lists multiply (independence assumption);
// the result is clamped to [minSelectivity, 1].
func predSelectivity(p sqldb.Expr, src source) float64 {
	sel := rawPredSelectivity(p, src)
	if sel < minSelectivity {
		sel = minSelectivity
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

func rawPredSelectivity(p sqldb.Expr, src source) float64 {
	switch x := p.(type) {
	case *sqldb.Bin:
		return binSelectivity(x, src)
	case *sqldb.Not:
		return 1 - predSelectivity(x.X, src)
	case *sqldb.IsNull:
		c, ok := x.X.(*sqldb.Col)
		if !ok {
			return defaultRangeSel
		}
		cs, rows := colStatsFor(src, c.Name)
		if cs == nil || rows == 0 {
			return defaultEqSel
		}
		frac := float64(cs.Nulls) / float64(rows)
		if x.Negate {
			return 1 - frac
		}
		return frac
	case *sqldb.In:
		c, ok := x.X.(*sqldb.Col)
		if !ok {
			return defaultRangeSel
		}
		sel := float64(len(x.List)) / distinctOf(src, c.Name)
		if x.Negate {
			return 1 - sel
		}
		return sel
	case *sqldb.Like:
		if x.Negate {
			return 1 - defaultLikeSel
		}
		return defaultLikeSel
	}
	return defaultRangeSel
}

func binSelectivity(b *sqldb.Bin, src source) float64 {
	switch b.Op {
	case sqldb.OpAnd:
		return predSelectivity(b.L, src) * predSelectivity(b.R, src)
	case sqldb.OpOr:
		l, r := predSelectivity(b.L, src), predSelectivity(b.R, src)
		return l + r - l*r
	}
	col, lit := asColLit(b.L, b.R)
	flipped := false
	if col == nil {
		col, lit = asColLit(b.R, b.L)
		flipped = true
	}
	if col == nil {
		return defaultRangeSel
	}
	op := b.Op
	if flipped {
		// lit OP col: mirror the comparison so col is on the left.
		switch op {
		case sqldb.OpLt:
			op = sqldb.OpGt
		case sqldb.OpLe:
			op = sqldb.OpGe
		case sqldb.OpGt:
			op = sqldb.OpLt
		case sqldb.OpGe:
			op = sqldb.OpLe
		}
	}
	switch op {
	case sqldb.OpEq:
		return 1 / distinctOf(src, col.Name)
	case sqldb.OpNe:
		return 1 - 1/distinctOf(src, col.Name)
	case sqldb.OpLt, sqldb.OpLe, sqldb.OpGt, sqldb.OpGe:
		cs, _ := colStatsFor(src, col.Name)
		v, err := evalConst(lit)
		if err != nil || cs == nil {
			return defaultRangeSel
		}
		var x float64
		switch n := v.(type) {
		case int64:
			x = float64(n)
		case float64:
			x = n
		default:
			return defaultRangeSel
		}
		frac, ok := cs.fracLE(x)
		if !ok {
			return defaultRangeSel
		}
		if op == sqldb.OpLt || op == sqldb.OpLe {
			return frac
		}
		return 1 - frac
	}
	return defaultRangeSel
}

// predsSelectivity multiplies the conjuncts' selectivities.
func predsSelectivity(preds []sqldb.Expr, src source) float64 {
	sel := 1.0
	for _, p := range preds {
		sel *= predSelectivity(p, src)
	}
	if sel < minSelectivity {
		sel = minSelectivity
	}
	return sel
}
