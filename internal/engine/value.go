// Package engine is an embedded, in-memory relational engine executing
// the sqldb SQL subset over rel schemas: row storage with hash indexes,
// constraint enforcement (NOT NULL, PRIMARY KEY, UNIQUE, FOREIGN KEY),
// and a query planner with predicate pushdown, index scans, and hash
// joins. It is the substrate standing in for the commercial RDBMS of the
// paper's §5 experiments.
//
// Values are Go dynamic values: int64, float64, string, bool, or nil for
// SQL NULL. Comparisons involving NULL are false (a simplification of
// three-valued logic, documented in DESIGN.md); aggregates ignore NULLs.
package engine

import (
	"fmt"
	"strconv"
	"strings"

	"xmlrdb/internal/rel"
)

// coerce converts a Go value to the column type, returning an error for
// incompatible values. nil passes through (NULL).
func coerce(v any, t rel.Type) (any, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case rel.TypeInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case float64:
			return int64(x), nil
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		case string:
			n, err := strconv.ParseInt(x, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("engine: cannot store %q in INTEGER column", x)
			}
			return n, nil
		}
	case rel.TypeFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		case string:
			f, err := strconv.ParseFloat(x, 64)
			if err != nil {
				return nil, fmt.Errorf("engine: cannot store %q in FLOAT column", x)
			}
			return f, nil
		}
	case rel.TypeText:
		switch x := v.(type) {
		case string:
			return x, nil
		case int64:
			return strconv.FormatInt(x, 10), nil
		case int:
			return strconv.Itoa(x), nil
		case float64:
			return strconv.FormatFloat(x, 'g', -1, 64), nil
		case bool:
			return strconv.FormatBool(x), nil
		}
	case rel.TypeBool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case int64:
			return x != 0, nil
		case int:
			return x != 0, nil
		case string:
			b, err := strconv.ParseBool(x)
			if err != nil {
				return nil, fmt.Errorf("engine: cannot store %q in BOOLEAN column", x)
			}
			return b, nil
		}
	}
	return nil, fmt.Errorf("engine: cannot store %T in %s column", v, t)
}

// compare orders two non-NULL values: -1, 0, 1. Numeric types compare
// numerically across int64/float64; otherwise values must share a type.
// NULL sorts before everything (only reachable from ORDER BY).
func compare(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	if na, aok := toFloat(a); aok {
		if nb, bok := toFloat(b); bok {
			switch {
			case na < nb:
				return -1
			case na > nb:
				return 1
			default:
				return 0
			}
		}
	}
	switch x := a.(type) {
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y)
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case x == y:
				return 0
			case !x:
				return -1
			default:
				return 1
			}
		}
	}
	// Incomparable types: order by type name for stability.
	return strings.Compare(fmt.Sprintf("%T", a), fmt.Sprintf("%T", b))
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case int:
		return float64(x), true
	default:
		return 0, false
	}
}

// equalVals reports SQL equality of two non-NULL values; any NULL makes
// it false.
func equalVals(a, b any) bool {
	if a == nil || b == nil {
		return false
	}
	return compare(a, b) == 0
}

// encodeKey builds a collision-free string key from values, for hash
// indexes and grouping.
func encodeKey(vals []any) string {
	buf := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		buf = appendKeyVal(buf, v)
	}
	return string(buf)
}

// encodeKeyCols encodes the selected columns of a row directly,
// avoiding the intermediate value slice encodeKey would need.
func encodeKeyCols(row []any, cols []int) string {
	buf := make([]byte, 0, 16*len(cols))
	for _, c := range cols {
		buf = appendKeyVal(buf, row[c])
	}
	return string(buf)
}

// appendKeyVal appends one value's key encoding, using the append-style
// strconv functions so no intermediate strings are allocated.
func appendKeyVal(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, 'n', ';')
	case int64:
		buf = append(buf, 'i')
		buf = strconv.AppendInt(buf, x, 10)
		return append(buf, ';')
	case float64:
		buf = append(buf, 'f')
		buf = strconv.AppendFloat(buf, x, 'g', -1, 64)
		return append(buf, ';')
	case string:
		buf = append(buf, 's')
		buf = strconv.AppendInt(buf, int64(len(x)), 10)
		buf = append(buf, ':')
		buf = append(buf, x...)
		return append(buf, ';')
	case bool:
		if x {
			return append(buf, 'b', 't', ';')
		}
		return append(buf, 'b', 'f', ';')
	default:
		return append(buf, fmt.Sprintf("?%v;", x)...)
	}
}

// truthy interprets a value as a predicate result.
func truthy(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != ""
	default:
		return false
	}
}
