package engine

import (
	"errors"
	"strings"
	"testing"

	"xmlrdb/internal/faultfs"
	"xmlrdb/internal/rel"
)

// TestDropIndexRefusesConstraintIndexes is the regression test for the
// DropIndex hole: the auto-created <table>_pk and <table>_uN indexes
// enforce uniqueness on insert, so dropping one silently disabled the
// primary-key check. The drop must fail and the duplicate insert after
// the attempted drop must still be rejected.
func TestDropIndexRefusesConstraintIndexes(t *testing.T) {
	db := testDB(t)
	for _, name := range []string{"authors_pk", "books_pk"} {
		if err := db.DropIndex(name); err == nil {
			t.Fatalf("DropIndex(%q) succeeded on a constraint-backed index", name)
		} else if errors.Is(err, ErrNoIndex) {
			t.Fatalf("DropIndex(%q) = %v, want a constraint refusal, not not-found", name, err)
		}
		// The statement path must refuse too — with and without IF EXISTS
		// (the index exists; the drop is forbidden, not missing).
		if _, _, err := db.Exec("DROP INDEX " + name); err == nil {
			t.Fatalf("DROP INDEX %s succeeded on a constraint-backed index", name)
		}
		if _, _, err := db.Exec("DROP INDEX IF EXISTS " + name); err == nil {
			t.Fatalf("DROP INDEX IF EXISTS %s swallowed a constraint refusal", name)
		}
	}
	// The constraint must still hold after the attempted drops.
	if _, err := db.Insert("authors", []any{int64(1), "Duplicate Smith", int64(99)}); !errors.Is(err, ErrConstraint) {
		t.Fatalf("duplicate PK insert after attempted drop: err = %v, want ErrConstraint", err)
	}
}

// TestDropIndexRefusesUniqueConstraintIndexes covers the <table>_uN
// indexes created for UNIQUE constraints.
func TestDropIndexRefusesUniqueConstraintIndexes(t *testing.T) {
	db := Open()
	def := &rel.Table{
		Name: "users",
		Columns: []rel.Column{
			{Name: "id", Type: rel.TypeInt},
			{Name: "email", Type: rel.TypeText},
		},
		PrimaryKey: []string{"id"},
		Uniques:    [][]string{{"email"}},
	}
	if err := db.CreateTable(def); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("users", []any{int64(1), "a@example.com"}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("users_u0"); err == nil {
		t.Fatal("DropIndex(users_u0) succeeded on a unique-constraint index")
	}
	if _, err := db.Insert("users", []any{int64(2), "a@example.com"}); !errors.Is(err, ErrConstraint) {
		t.Fatalf("duplicate unique insert after attempted drop: err = %v, want ErrConstraint", err)
	}
}

// TestDropIndexNotFoundSentinel pins the ErrNoIndex sentinel on both
// index namespaces so callers can distinguish not-found from a failed
// or refused drop.
func TestDropIndexNotFoundSentinel(t *testing.T) {
	db := testDB(t)
	if err := db.DropIndex("nope"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("DropIndex(nope) = %v, want ErrNoIndex", err)
	}
	if err := db.DropOrderedIndex("nope"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("DropOrderedIndex(nope) = %v, want ErrNoIndex", err)
	}
	if _, _, err := db.Exec("DROP INDEX IF EXISTS nope"); err != nil {
		t.Errorf("DROP INDEX IF EXISTS nope = %v, want nil", err)
	}
	if _, _, err := db.Exec("DROP INDEX nope"); !errors.Is(err, ErrNoIndex) {
		t.Errorf("DROP INDEX nope = %v, want ErrNoIndex", err)
	}
}

// TestDropIndexIfExistsSurfacesWALFailure is the regression test for
// the IF EXISTS error swallowing: a DROP INDEX whose WAL append fails
// must report the failure — the index lives on, and claiming success
// would let the caller believe the DDL is durable.
func TestDropIndexIfExistsSurfacesWALFailure(t *testing.T) {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("store", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ExecScript(`
CREATE TABLE pts (id INTEGER PRIMARY KEY, x INTEGER);
CREATE INDEX pts_x ON pts (x);
INSERT INTO pts VALUES (1, 10), (2, 20);
`); err != nil {
		t.Fatal(err)
	}
	fs.SetWriteBudget(0) // next WAL append tears and crashes the disk
	_, _, err = db.Exec("DROP INDEX IF EXISTS pts_x")
	if err == nil {
		t.Fatal("DROP INDEX IF EXISTS reported success while the WAL append failed")
	}
	if errors.Is(err, ErrNoIndex) {
		t.Fatalf("WAL failure reported as not-found: %v", err)
	}
	// The index must still exist: the drop did not commit.
	db.mu.RLock()
	_, ok := db.tables["pts"].indexes["pts_x"]
	db.mu.RUnlock()
	if !ok {
		t.Fatal("index pts_x was deleted although its drop failed to log")
	}
}

// TestDropOrderedIndexFallbackPreservesError checks that the ordered
// fallback runs only on not-found: a hash index whose drop fails for a
// real reason must not be masked by "no such ordered index".
func TestDropOrderedIndexFallbackPreservesError(t *testing.T) {
	db := testDB(t)
	err := func() error {
		_, _, err := db.Exec("DROP INDEX authors_pk")
		return err
	}()
	if err == nil {
		t.Fatal("DROP INDEX authors_pk succeeded")
	}
	if strings.Contains(err.Error(), "ordered") {
		t.Fatalf("constraint refusal was masked by the ordered-index fallback: %v", err)
	}
}

// TestConstraintIndexSurvivesRecovery checks that the undroppable
// origin of pk/unique indexes is preserved across snapshot+WAL
// recovery: a recovered store must refuse the same drops.
func TestConstraintIndexSurvivesRecovery(t *testing.T) {
	fs := faultfs.NewMem()
	db, err := OpenAtOpts("store", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.ExecScript(`
CREATE TABLE pts (id INTEGER PRIMARY KEY, x INTEGER);
INSERT INTO pts VALUES (1, 10);
`); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil { // pk index now lives in the snapshot
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rdb, err := OpenAtOpts("store", DurabilityOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := rdb.DropIndex("pts_pk"); err == nil || errors.Is(err, ErrNoIndex) {
		t.Fatalf("recovered store: DropIndex(pts_pk) = %v, want a constraint refusal", err)
	}
	if _, err := rdb.Insert("pts", []any{int64(1), int64(99)}); !errors.Is(err, ErrConstraint) {
		t.Fatalf("recovered store accepted a duplicate PK: %v", err)
	}
}
