package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// batchDB builds a two-table schema with a self-referencing FK on nodes
// (parent may be NULL) and a cross-table FK from tags to nodes.
func batchDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	_, _, err := db.ExecScript(`
CREATE TABLE nodes (id INTEGER PRIMARY KEY, label TEXT NOT NULL, parent INTEGER,
  FOREIGN KEY (parent) REFERENCES nodes (id));
CREATE TABLE tags (node INTEGER NOT NULL, tag TEXT NOT NULL,
  FOREIGN KEY (node) REFERENCES nodes (id));
`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInsertBatchEmpty(t *testing.T) {
	db := batchDB(t)
	for _, rows := range [][][]any{nil, {}} {
		n, err := db.InsertBatch("nodes", rows)
		if n != 0 || err != nil {
			t.Errorf("InsertBatch(empty) = (%d, %v), want (0, nil)", n, err)
		}
	}
	if got := db.RowCount("nodes"); got != 0 {
		t.Errorf("RowCount = %d after empty batches, want 0", got)
	}
}

func TestInsertBatchBasic(t *testing.T) {
	db := batchDB(t)
	n, err := db.InsertBatch("nodes", [][]any{
		{1, "root", nil},
		{2, "left", 1},
		{3, "right", 1},
	})
	if err != nil || n != 3 {
		t.Fatalf("InsertBatch = (%d, %v), want (3, nil)", n, err)
	}
	data := queryData(t, db, `SELECT label FROM nodes WHERE parent = 1 ORDER BY label`)
	if len(data) != 2 || data[0][0] != "left" || data[1][0] != "right" {
		t.Errorf("children = %v", data)
	}
}

func TestInsertBatchUnknownTable(t *testing.T) {
	db := batchDB(t)
	if _, err := db.InsertBatch("nope", [][]any{{1}}); err == nil {
		t.Fatal("InsertBatch on unknown table succeeded")
	}
}

// TestInsertBatchAtomicUnique checks that a mid-batch unique violation
// rejects the whole batch: no rows appended and no index entries left
// behind for the rows that preceded the bad one.
func TestInsertBatchAtomicUnique(t *testing.T) {
	db := batchDB(t)
	if _, err := db.Insert("nodes", []any{1, "existing", nil}); err != nil {
		t.Fatal(err)
	}
	_, err := db.InsertBatch("nodes", [][]any{
		{10, "a", nil},
		{11, "b", nil},
		{1, "dup", nil}, // violates PRIMARY KEY on id
	})
	if err == nil {
		t.Fatal("batch with duplicate key succeeded")
	}
	if !strings.Contains(err.Error(), "batch row 2") {
		t.Errorf("error %q does not name the offending row", err)
	}
	if got := db.RowCount("nodes"); got != 1 {
		t.Errorf("RowCount = %d after rejected batch, want 1", got)
	}
	// The rolled-back rows must have left no stale index entries: both a
	// unique-key probe and a fresh insert of id 10 must behave as if the
	// batch never happened.
	if rows, err := db.Lookup("nodes", []string{"id"}, []any{10}); err != nil || len(rows) != 0 {
		t.Errorf("Lookup(id=10) = (%v, %v), want no rows", rows, err)
	}
	if _, err := db.Insert("nodes", []any{10, "again", nil}); err != nil {
		t.Errorf("re-insert of rolled-back key failed: %v", err)
	}
}

// TestInsertBatchCoercionRejectedBeforeApply checks that width and NOT
// NULL problems anywhere in the batch reject it before any row lands.
func TestInsertBatchCoercionRejectedBeforeApply(t *testing.T) {
	db := batchDB(t)
	cases := map[string][][]any{
		"wrong width": {{1, "ok", nil}, {2, "short"}},
		"not null":    {{1, "ok", nil}, {2, nil, nil}},
	}
	for name, rows := range cases {
		if _, err := db.InsertBatch("nodes", rows); err == nil {
			t.Errorf("%s: batch succeeded", name)
		}
		if got := db.RowCount("nodes"); got != 0 {
			t.Errorf("%s: RowCount = %d, want 0", name, got)
		}
	}
}

// TestInsertBatchFKWithinBatch checks that a row may reference a key
// inserted earlier in the same batch, and that order still matters:
// a child before its parent fails and rolls back.
func TestInsertBatchFKWithinBatch(t *testing.T) {
	db := batchDB(t)
	if _, err := db.InsertBatch("nodes", [][]any{
		{1, "root", nil},
		{2, "child", 1}, // parent inserted by the previous batch row
	}); err != nil {
		t.Fatalf("parent-before-child batch failed: %v", err)
	}
	_, err := db.InsertBatch("nodes", [][]any{
		{4, "orphan", 5}, // parent 5 comes later — rejected
		{5, "late-parent", nil},
	})
	if err == nil {
		t.Fatal("child-before-parent batch succeeded")
	}
	if got := db.RowCount("nodes"); got != 2 {
		t.Errorf("RowCount = %d after rejected batch, want 2", got)
	}
}

// TestInsertBatchCrossTableFK checks FK enforcement from a batched
// table into another table, both the passing and failing direction.
func TestInsertBatchCrossTableFK(t *testing.T) {
	db := batchDB(t)
	if _, err := db.InsertBatch("nodes", [][]any{{1, "root", nil}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertBatch("tags", [][]any{{1, "red"}, {1, "blue"}}); err != nil {
		t.Fatalf("valid tag batch failed: %v", err)
	}
	if _, err := db.InsertBatch("tags", [][]any{{1, "ok"}, {99, "dangling"}}); err == nil {
		t.Fatal("dangling tag batch succeeded")
	}
	if got := db.RowCount("tags"); got != 2 {
		t.Errorf("RowCount(tags) = %d after rejected batch, want 2", got)
	}
}

// TestConcurrentBatchesAndReads drives concurrent batched writers over
// two tables while readers scan and query; run under -race this proves
// the per-table locking has no data races.
func TestConcurrentBatchesAndReads(t *testing.T) {
	db := batchDB(t)
	if _, err := db.Insert("nodes", []any{0, "root", nil}); err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := 1 + w*perWriter + i
				if _, err := db.InsertBatch("nodes", [][]any{{id, fmt.Sprintf("n%d", id), 0}}); err != nil {
					t.Errorf("nodes batch: %v", err)
					return
				}
				if _, err := db.InsertBatch("tags", [][]any{{id, "t"}, {0, "root-tag"}}); err != nil {
					t.Errorf("tags batch: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Query(`SELECT n.label FROM nodes n JOIN tags g ON g.node = n.id WHERE n.parent = 0`); err != nil {
					t.Errorf("query: %v", err)
					return
				}
				db.RowCount("nodes")
			}
		}()
	}
	wg.Wait()
	if got, want := db.RowCount("nodes"), 1+writers*perWriter; got != want {
		t.Errorf("RowCount(nodes) = %d, want %d", got, want)
	}
	if err := db.CheckAllFKs(); err != nil {
		t.Errorf("CheckAllFKs: %v", err)
	}
}
