package engine

import (
	"fmt"
	"strings"

	"xmlrdb/internal/obs"
	"xmlrdb/internal/sqldb"
)

// The planner half of the Volcano split: planSelect binds a SELECT's
// sources, classifies its predicates (pushdown, join, residual) and
// produces a physical plan tree — SeqScan / IndexScan / RangeScan,
// Filter, HashJoin / NestedLoopJoin, Aggregate, Project, Sort / TopK,
// Distinct, Offset and Limit nodes, each carrying a cardinality hint.
// The tree executes as streaming iterators (operators.go); nothing is
// materialized here beyond index posting lists.
//
// Planning runs under db.mu shared and the statement's row locks — the
// catalog and index postings it consults cannot change underneath it —
// but the locks drop as soon as the plan is built: execution reads the
// immutable table versions captured into each source (version.go), and
// any posting list the plan keeps is copied here because writers mutate
// the live posting slices in place after the locks release.

// physPlan is a planned SELECT: the operator tree, the output column
// names and the shared row environment the iterators evaluate in.
type physPlan struct {
	root planNode
	cols []string
	env  *rowEnv

	finished bool
	dig      *obs.PlanDigest // memoized at cursor close; see digest()
}

// opStats is the per-operator runtime accounting: rows emitted and —
// on timed (EXPLAIN or traced) runs — cumulative time spent in the
// operator and its children. Traced cursors time a 1-in-N sample of
// Next calls, so calls/timedCalls record how to scale nanos back up;
// EXPLAIN times every call and the two counters match.
type opStats struct {
	rows       int64
	nanos      int64
	openNanos  int64
	calls      int64
	timedCalls int64
}

// estNanos returns the operator's estimated total Next time, scaling
// the sampled measurement up to the full call count.
func (st *opStats) estNanos() int64 {
	if st.timedCalls > 0 && st.calls > st.timedCalls {
		return st.nanos * st.calls / st.timedCalls
	}
	return st.nanos
}

// planNode is one physical operator. describe returns the stable label
// EXPLAIN renders, kind the obs accounting bucket, estimate the
// planner's cardinality hint; open builds the node's iterator (opening
// children through openNode so stats wrappers nest).
type planNode interface {
	describe() string
	kind() string
	estimate() int
	children() []planNode
	open(ec *execCtx) (rowIter, error)
	stats() *opStats
}

// nodeBase carries the fields every operator shares.
type nodeBase struct {
	st   opStats
	hint int
}

func (n *nodeBase) estimate() int   { return n.hint }
func (n *nodeBase) stats() *opStats { return &n.st }

// walkPlan visits the tree pre-order with depth.
func walkPlan(n planNode, depth int, fn func(planNode, int)) {
	fn(n, depth)
	for _, c := range n.children() {
		walkPlan(c, depth+1, fn)
	}
}

// bindSelect resolves the FROM and JOIN items against the catalog and
// builds the flat row environment. Two items resolving to the same
// binding name are rejected here, at plan time: silent last-wins
// shadowing in the row environment would misattribute every column
// reference.
func (db *DB) bindSelect(s *sqldb.Select) ([]source, *rowEnv, error) {
	var srcs []source
	for _, ref := range s.From {
		t := db.tables[ref.Table]
		if t == nil {
			return nil, nil, fmt.Errorf("%w: %q", ErrNoTable, ref.Table)
		}
		srcs = append(srcs, source{ref: ref, t: t})
	}
	for _, j := range s.Joins {
		t := db.tables[j.Ref.Table]
		if t == nil {
			return nil, nil, fmt.Errorf("%w: %q", ErrNoTable, j.Ref.Table)
		}
		srcs = append(srcs, source{ref: j.Ref, t: t, on: j.On, left: j.Left})
	}
	if len(srcs) == 0 {
		return nil, nil, fmt.Errorf("engine: SELECT without FROM")
	}
	env := &rowEnv{}
	offset := 0
	seen := make(map[string]bool)
	for _, src := range srcs {
		name := src.ref.Name()
		if seen[name] {
			return nil, nil, fmt.Errorf("engine: duplicate table binding %q", name)
		}
		seen[name] = true
		env.bindings = append(env.bindings, envBinding{
			name: name, cols: src.t.def.ColumnNames(), offset: offset,
		})
		offset += len(src.t.def.Columns)
	}
	return srcs, env, nil
}

// classifiedConj is one WHERE conjunct routed to the join pipeline.
type classifiedConj struct {
	expr    sqldb.Expr
	maxBind int // highest binding index referenced
}

// buildPlan turns a bound SELECT into the physical tree. The caller
// holds db.mu shared and the statement's row locks (index postings are
// consulted here).
func (db *DB) buildPlan(s *sqldb.Select, srcs []source, env *rowEnv) (*physPlan, error) {
	// Classify WHERE conjuncts: single-binding predicates push into
	// their scan, two-sided equalities drive joins, the rest are
	// residual filters above the join tree.
	whereConjs := splitAnd(s.Where)
	bindingIdx := make(map[string]int, len(srcs))
	for i, src := range srcs {
		bindingIdx[src.ref.Name()] = i
	}
	leftProtected := make([]bool, len(srcs))
	for i, src := range srcs {
		if src.left {
			leftProtected[i] = true
		}
	}
	pushed := make([][]sqldb.Expr, len(srcs))
	var joinConjs []classifiedConj
	var residual []sqldb.Expr
	for _, c := range whereConjs {
		refs, err := exprRefs(c, env)
		if err != nil {
			return nil, err
		}
		maxB, only := -1, -1
		for name := range refs {
			bi, ok := bindingIdx[name]
			if !ok {
				return nil, fmt.Errorf("engine: unknown table %q in WHERE", name)
			}
			if bi > maxB {
				maxB = bi
			}
			only = bi
		}
		switch {
		case len(refs) == 0:
			residual = append(residual, c)
		case len(refs) == 1 && !leftProtected[only]:
			pushed[only] = append(pushed[only], c)
		case anyLeftAtOrBelow(leftProtected, maxB):
			// Mixed predicates involving LEFT-join sides stay residual to
			// preserve outer-join semantics.
			residual = append(residual, c)
		default:
			joinConjs = append(joinConjs, classifiedConj{expr: c, maxBind: maxB})
		}
	}

	// Scan + join pipeline: the structural planner joins left to right
	// exactly as written; the cost-based planner (default) reorders the
	// inner-join prefix by estimated cardinality, picks access paths and
	// hash build sides by cost, and estimates every operator's output
	// from ANALYZE statistics. Both return the conjuncts they could not
	// consume, which become residual filters.
	var node planNode
	var leftoverConjs []classifiedConj
	var err error
	if db.costOff {
		node, leftoverConjs, err = db.planPipelineStructural(srcs, env, pushed, joinConjs)
	} else {
		node, leftoverConjs, err = db.planPipelineCost(srcs, env, pushed, joinConjs)
	}
	if err != nil {
		return nil, err
	}
	for _, jc := range leftoverConjs {
		residual = append(residual, jc.expr)
	}
	if len(residual) > 0 {
		node = &filterNode{child: node, preds: residual,
			nodeBase: nodeBase{hint: shrink(node.estimate())}}
	}

	// Projection or aggregation: both emit len(items) output values
	// followed by len(OrderBy) sort keys.
	items, cols, err := expandItems(s, env)
	if err != nil {
		return nil, err
	}
	aggregated := len(s.GroupBy) > 0 || hasAggregate(s.Having)
	for _, it := range items {
		if it.Expr != nil && hasAggregate(it.Expr) {
			aggregated = true
		}
	}
	for _, oi := range s.OrderBy {
		if hasAggregate(oi.Expr) {
			aggregated = true
		}
	}
	if aggregated {
		hint := 1
		if len(s.GroupBy) > 0 {
			hint = shrink(node.estimate())
		}
		node = &aggNode{child: node, sel: s, items: items, cols: cols,
			nodeBase: nodeBase{hint: hint}}
	} else {
		node = &projectNode{child: node, sel: s, items: items, cols: cols,
			nodeBase: nodeBase{hint: node.estimate()}}
	}

	// Order: full sort, or a bounded top-k heap when a LIMIT caps the
	// output and no DISTINCT must run over the fully sorted stream.
	if len(s.OrderBy) > 0 {
		if s.Limit >= 0 && !s.Distinct {
			k := s.Limit + s.Offset
			node = &topKNode{child: node, orderBy: s.OrderBy, keyOffset: len(items), k: k,
				nodeBase: nodeBase{hint: minInt(k, node.estimate())}}
		} else {
			node = &sortNode{child: node, orderBy: s.OrderBy, keyOffset: len(items),
				nodeBase: nodeBase{hint: node.estimate()}}
		}
	}
	if s.Distinct {
		node = &distinctNode{child: node, nodeBase: nodeBase{hint: node.estimate()}}
	}
	if s.Offset > 0 {
		node = &offsetNode{child: node, n: s.Offset,
			nodeBase: nodeBase{hint: maxInt(node.estimate()-s.Offset, 0)}}
	}
	if s.Limit >= 0 {
		node = &limitNode{child: node, n: s.Limit,
			nodeBase: nodeBase{hint: minInt(s.Limit, node.estimate())}}
	}
	// Batch-at-a-time rewrite of vectorizable pipelines (vector.go);
	// vecOff is written under db.mu exclusive and read here under shared.
	if !db.vecOff {
		node = db.vectorize(node)
	}
	return &physPlan{root: node, cols: cols, env: env}, nil
}

// planPipelineStructural is the seed planner's join pipeline: scan and
// join strictly left to right as the query was written, consuming join
// conjuncts at the first join whose binding completes them. Kept intact
// behind SetCostBased(false) as the baseline the equivalence battery
// and the E13 experiment compare against.
func (db *DB) planPipelineStructural(srcs []source, env *rowEnv, pushed [][]sqldb.Expr, joinConjs []classifiedConj) (planNode, []classifiedConj, error) {
	root, err := db.planScan(srcs[0], env, pushed[0])
	if err != nil {
		return nil, nil, err
	}
	var node planNode = root
	for bi := 1; bi < len(srcs); bi++ {
		src := srcs[bi]
		var conds []sqldb.Expr
		conds = append(conds, splitAnd(src.on)...)
		if !src.left {
			rest := joinConjs[:0]
			for _, jc := range joinConjs {
				if jc.maxBind == bi {
					conds = append(conds, jc.expr)
				} else {
					rest = append(rest, jc)
				}
			}
			joinConjs = rest
		}
		inner, err := db.planScan(src, env, pushed[bi])
		if err != nil {
			return nil, nil, err
		}
		node = planJoin(node, inner, bi, conds, env, src.left)
	}
	// Join conjuncts never consumed (e.g. referencing only later
	// bindings under LEFT joins) become residual filters.
	return node, joinConjs, nil
}

// poolCond is one reorderable join condition: the conjunct, the bitset
// of bindings it references, and its estimated selectivity.
type poolCond struct {
	expr sqldb.Expr
	mask uint64
	sel  float64
}

// planPipelineCost is the statistics-driven join pipeline. The
// inner-join prefix (every source before the first LEFT join) is
// reorderable: its join conjuncts and inner ON conditions form one
// condition pool keyed by binding bitsets, a greedy ordering starts
// from the smallest estimated scan and repeatedly joins the connected
// source with the smallest estimated output, and each condition is
// applied at the first join that covers its bindings. LEFT joins and
// everything after them keep their written order. The flat row layout
// makes all of this safe: every binding owns fixed column offsets, so
// join order never changes the output shape — only how many rows flow
// through the middle of the tree.
func (db *DB) planPipelineCost(srcs []source, env *rowEnv, pushed [][]sqldb.Expr, joinConjs []classifiedConj) (planNode, []classifiedConj, error) {
	prefix := len(srcs)
	for i, src := range srcs {
		if src.left {
			prefix = i
			break
		}
	}
	if prefix == 0 || len(srcs) > 64 {
		// Nothing reorderable (or too many sources for the bitsets):
		// the structural pipeline with cost-refined scans still applies,
		// but keeping the seed path exactly is simpler and just as good.
		return db.planPipelineStructural(srcs, env, pushed, joinConjs)
	}
	bindIdx := make(map[string]int, len(env.bindings))
	for i, b := range env.bindings {
		bindIdx[b.name] = i
	}
	// Local pushdown lists: single-binding inner ON conditions fold into
	// their source's scan so selectivity estimation and index selection
	// see them (semantically identical for inner joins).
	pushedLoc := make([][]sqldb.Expr, len(srcs))
	for i := range pushed {
		pushedLoc[i] = append([]sqldb.Expr(nil), pushed[i]...)
	}
	var pool []poolCond
	var constConds []sqldb.Expr
	addCond := func(c sqldb.Expr) error {
		refs, err := exprRefs(c, env)
		if err != nil {
			return err
		}
		mask, only := uint64(0), -1
		for name := range refs {
			bi, ok := bindIdx[name]
			if !ok {
				return fmt.Errorf("engine: unknown table %q in join condition", name)
			}
			mask |= 1 << bi
			only = bi
		}
		switch {
		case len(refs) == 0:
			constConds = append(constConds, c)
		case len(refs) == 1 && !srcs[only].left:
			pushedLoc[only] = append(pushedLoc[only], c)
		default:
			pool = append(pool, poolCond{expr: c, mask: mask, sel: condSelectivity(c, env, srcs)})
		}
		return nil
	}
	for _, jc := range joinConjs {
		if err := addCond(jc.expr); err != nil {
			return nil, nil, err
		}
	}
	for i := 1; i < prefix; i++ {
		for _, c := range splitAnd(srcs[i].on) {
			if err := addCond(c); err != nil {
				return nil, nil, err
			}
		}
	}

	// Estimated post-pushdown scan outputs drive the ordering.
	est := make([]float64, prefix)
	for i := 0; i < prefix; i++ {
		est[i] = float64(len(srcs[i].ver.rows)) * predsSelectivity(pushedLoc[i], srcs[i])
	}
	order := make([]int, 0, prefix)
	if prefix >= 3 {
		order = greedyJoinOrder(prefix, est, pool)
	} else {
		for i := 0; i < prefix; i++ {
			order = append(order, i)
		}
	}

	// Build the tree in the chosen order, consuming each pool condition
	// at the first join that covers it.
	consumed := make([]bool, len(pool))
	first := order[0]
	firstPreds := append(append([]sqldb.Expr(nil), pushedLoc[first]...), constConds...)
	root, err := db.planScanCost(srcs[first], env, firstPreds)
	if err != nil {
		return nil, nil, err
	}
	var node planNode = root
	curMask := uint64(1) << first
	for _, idx := range order[1:] {
		newMask := curMask | 1<<idx
		var conds []sqldb.Expr
		for ci := range pool {
			if !consumed[ci] && pool[ci].mask&^newMask == 0 {
				consumed[ci] = true
				conds = append(conds, pool[ci].expr)
			}
		}
		scan, err := db.planScanCost(srcs[idx], env, pushedLoc[idx])
		if err != nil {
			return nil, nil, err
		}
		node = db.planJoinCost(node, scan, idx, conds, env, false, srcs)
		curMask = newMask
	}
	// The LEFT-join suffix keeps the written order; pushed predicates on
	// left-protected sources were already routed to residual upstream.
	for bi := prefix; bi < len(srcs); bi++ {
		src := srcs[bi]
		scan, err := db.planScanCost(src, env, pushedLoc[bi])
		if err != nil {
			return nil, nil, err
		}
		node = db.planJoinCost(node, scan, bi, splitAnd(src.on), env, src.left, srcs)
	}
	// Pool conditions never covered (defensive: conjuncts over suffix
	// bindings) surface as residual filters, same as the structural path.
	var leftover []classifiedConj
	for ci := range pool {
		if !consumed[ci] {
			leftover = append(leftover, classifiedConj{expr: pool[ci].expr})
		}
	}
	return node, leftover, nil
}

// greedyJoinOrder orders the reorderable prefix: start at the smallest
// estimated scan, then repeatedly add the source with the smallest
// estimated join output, preferring sources connected to the joined set
// by at least one pool condition (cross products only when forced).
func greedyJoinOrder(prefix int, est []float64, pool []poolCond) []int {
	order := make([]int, 0, prefix)
	used := make([]bool, prefix)
	start := 0
	for i := 1; i < prefix; i++ {
		if est[i] < est[start] {
			start = i
		}
	}
	order = append(order, start)
	used[start] = true
	curMask := uint64(1) << start
	curEst := est[start]
	consumed := make([]bool, len(pool))
	for len(order) < prefix {
		bestIdx, bestEst, bestConn := -1, 0.0, false
		for i := 0; i < prefix; i++ {
			if used[i] {
				continue
			}
			newMask := curMask | 1<<i
			join := curEst * est[i]
			conn := false
			for ci := range pool {
				if consumed[ci] || pool[ci].mask&(1<<i) == 0 || pool[ci].mask&^newMask != 0 {
					continue
				}
				conn = true
				join *= pool[ci].sel
			}
			better := bestIdx == -1 ||
				(conn && !bestConn) ||
				(conn == bestConn && join < bestEst)
			if better {
				bestIdx, bestEst, bestConn = i, join, conn
			}
		}
		order = append(order, bestIdx)
		used[bestIdx] = true
		curMask |= 1 << bestIdx
		curEst = bestEst
		for ci := range pool {
			if !consumed[ci] && pool[ci].mask&^curMask == 0 {
				consumed[ci] = true
			}
		}
	}
	return order
}

// planScan chooses the access path for one source: an index probe for
// an equality predicate set covered by a hash index, a window over an
// ordered index for range predicates, else a sequential scan. Pushed
// predicates not consumed by the access path are re-checked per row.
func (db *DB) planScan(src source, env *rowEnv, preds []sqldb.Expr) (*scanNode, error) {
	bi := -1
	for i, b := range env.bindings {
		if b.name == src.ref.Name() {
			bi = i
			break
		}
	}
	n := &scanNode{src: src, bind: env.bindings[bi], width: env.width()}
	eqCols, eqVals, restPreds, err := extractEqualities(preds, src, env)
	if err != nil {
		return nil, err
	}
	if len(eqCols) > 0 {
		if ix := src.t.findIndex(eqCols); ix != nil {
			// A consulted index with no postings must yield an empty scan,
			// not a fallback to the full scan: the consumed equality
			// predicates are gone from restPreds. The postings are copied —
			// writers extend and compact the live slice in place after the
			// open-time locks release, and this plan outlives them.
			pos := append([]int(nil), ix.m[encodeKey(eqVals)]...)
			if pos == nil {
				pos = []int{}
			}
			n.access, n.indexName, n.positions, n.preds = accessIndex, ix.name, pos, restPreds
		}
	}
	if n.access == "" {
		// Range scan via an ordered index; every predicate is still
		// re-checked per row, so the window is purely an optimization.
		if ix, bounds, ok := extractRange(preds, src); ok {
			pos := ix.scan(src.t, bounds)
			if pos == nil {
				pos = []int{}
			}
			n.access, n.indexName, n.positions, n.preds = accessRange, ix.name, pos, preds
		} else {
			n.access, n.preds = accessSeq, preds
		}
	}
	if n.positions != nil {
		n.hint = len(n.positions)
	} else {
		n.hint = len(src.ver.rows)
	}
	return n, nil
}

// planScanCost is planScan with two cost-based refinements: a range
// window covering most of the table demotes to a plain sequential scan
// (the position indirection buys nothing at that point), and the
// cardinality hint reflects the pushed predicates' estimated
// selectivity instead of the raw input size, so executed EXPLAIN
// compares a real estimate against the actual row count.
func (db *DB) planScanCost(src source, env *rowEnv, preds []sqldb.Expr) (*scanNode, error) {
	bi := -1
	for i, b := range env.bindings {
		if b.name == src.ref.Name() {
			bi = i
			break
		}
	}
	n := &scanNode{src: src, bind: env.bindings[bi], width: env.width()}
	live := len(src.ver.rows)
	eqCols, eqVals, restPreds, err := extractEqualities(preds, src, env)
	if err != nil {
		return nil, err
	}
	if len(eqCols) > 0 {
		if ix := src.t.findIndex(eqCols); ix != nil {
			// Same copied-postings contract as planScan.
			pos := append([]int(nil), ix.m[encodeKey(eqVals)]...)
			if pos == nil {
				pos = []int{}
			}
			n.access, n.indexName, n.positions, n.preds = accessIndex, ix.name, pos, restPreds
			n.hint = clampEst(float64(len(pos)) * predsSelectivity(restPreds, src))
			return n, nil
		}
	}
	if ix, bounds, ok := extractRange(preds, src); ok {
		pos := ix.scan(src.t, bounds)
		if pos == nil {
			pos = []int{}
		}
		// Demote wide windows: when the range keeps most of the table, a
		// sequential scan reads the same rows without the indirection.
		if float64(len(pos)) <= rangeDemoteFrac*float64(live) {
			n.access, n.indexName, n.positions, n.preds = accessRange, ix.name, pos, preds
			n.hint = len(pos)
			return n, nil
		}
	}
	n.access, n.preds = accessSeq, preds
	n.hint = clampEst(float64(live) * predsSelectivity(preds, src))
	return n, nil
}

// rangeDemoteFrac is the window-coverage fraction past which a range
// scan demotes to a sequential scan under cost-based planning.
const rangeDemoteFrac = 0.8

// planJoinCost builds the join operator for the cost-based pipeline:
// the same hash-vs-nested-loop split as planJoin, but the cardinality
// hint is the estimated join output (outer x inner scaled by each
// condition's selectivity) and the hash build side goes to whichever
// input is estimated smaller (LEFT joins always stream the outer —
// unmatched-row emission depends on it).
func (db *DB) planJoinCost(outer planNode, inner *scanNode, bi int, conds []sqldb.Expr, env *rowEnv, left bool, srcs []source) planNode {
	b := env.bindings[bi]
	equis, others := classifyJoinConds(conds, b, env)
	oe, ie := float64(outer.estimate()), float64(inner.estimate())
	out := oe * ie
	for _, e := range equis {
		out *= equiSelectivity(env, srcs, e)
	}
	for range others {
		out *= defaultRangeSel
	}
	if left && out < oe {
		out = oe // every outer row is emitted at least once
	}
	if len(equis) > 0 {
		n := &hashJoinNode{
			outer: outer, inner: inner, equis: equis, others: others,
			left: left, bind: b, keysDesc: equiKeysDesc(env, equis),
			nodeBase: nodeBase{hint: clampEst(out)},
		}
		if !left && oe < ie {
			n.buildOuter = true
		}
		return n
	}
	return &nlJoinNode{
		outer: outer, inner: inner, conds: conds, left: left, bind: b,
		nodeBase: nodeBase{hint: clampEst(out)},
	}
}

// planJoin builds the join operator for the structural pipeline: a hash
// join when at least one equi-condition links it to earlier bindings,
// else a (filtered) nested loop.
func planJoin(outer planNode, inner *scanNode, bi int, conds []sqldb.Expr, env *rowEnv, left bool) planNode {
	b := env.bindings[bi]
	equis, others := classifyJoinConds(conds, b, env)
	if len(equis) > 0 {
		return &hashJoinNode{
			outer: outer, inner: inner, equis: equis, others: others,
			left: left, bind: b, keysDesc: equiKeysDesc(env, equis),
			nodeBase: nodeBase{hint: maxInt(outer.estimate(), inner.estimate())},
		}
	}
	hint := outer.estimate() * inner.estimate()
	if outer.estimate() != 0 && hint/outer.estimate() != inner.estimate() {
		hint = int(^uint(0) >> 1) // overflow: saturate
	}
	return &nlJoinNode{
		outer: outer, inner: inner, conds: conds, left: left, bind: b,
		nodeBase: nodeBase{hint: hint},
	}
}

// classifyJoinConds splits join conditions into equi pairs keyed for
// hashing (one side in the inner binding b, the other outside it) and
// the rest, which re-check per merged row.
func classifyJoinConds(conds []sqldb.Expr, b envBinding, env *rowEnv) ([]equiPair, []sqldb.Expr) {
	var equis []equiPair
	var others []sqldb.Expr
	for _, c := range conds {
		bin, ok := c.(*sqldb.Bin)
		if !ok || bin.Op != sqldb.OpEq {
			others = append(others, c)
			continue
		}
		lc, lok := bin.L.(*sqldb.Col)
		rc, rok := bin.R.(*sqldb.Col)
		if !lok || !rok {
			others = append(others, c)
			continue
		}
		li, lerr := env.resolve(lc.Table, lc.Name)
		ri, rerr := env.resolve(rc.Table, rc.Name)
		if lerr != nil || rerr != nil {
			others = append(others, c)
			continue
		}
		lIsInner := li >= b.offset && li < b.offset+len(b.cols)
		rIsInner := ri >= b.offset && ri < b.offset+len(b.cols)
		switch {
		case lIsInner && !rIsInner:
			equis = append(equis, equiPair{outerIdx: ri, innerIdx: li})
		case rIsInner && !lIsInner:
			equis = append(equis, equiPair{outerIdx: li, innerIdx: ri})
		default:
			others = append(others, c)
		}
	}
	return equis, others
}

// equiKeysDesc renders the hash keys for EXPLAIN.
func equiKeysDesc(env *rowEnv, equis []equiPair) string {
	keys := make([]string, len(equis))
	for i, e := range equis {
		keys[i] = flatColName(env, e.outerIdx) + " = " + flatColName(env, e.innerIdx)
	}
	return strings.Join(keys, ", ")
}

// flatBindingIdx maps a flat row index back to its binding index.
func flatBindingIdx(env *rowEnv, idx int) int {
	for i, b := range env.bindings {
		if idx >= b.offset && idx < b.offset+len(b.cols) {
			return i
		}
	}
	return -1
}

// equiSelectivity estimates a column-equality join condition as
// 1/max(distinct(left), distinct(right)) — the textbook estimate, with
// distinct counts from ANALYZE statistics, dictionaries or live row
// counts (distinctOf's fallback chain).
func equiSelectivity(env *rowEnv, srcs []source, e equiPair) float64 {
	d := 1.0
	for _, idx := range [2]int{e.outerIdx, e.innerIdx} {
		bi := flatBindingIdx(env, idx)
		if bi < 0 || bi >= len(srcs) {
			continue
		}
		b := env.bindings[bi]
		if dv := distinctOf(srcs[bi], b.cols[idx-b.offset]); dv > d {
			d = dv
		}
	}
	return 1 / d
}

// condSelectivity estimates one pool condition for join ordering.
func condSelectivity(c sqldb.Expr, env *rowEnv, srcs []source) float64 {
	if bin, ok := c.(*sqldb.Bin); ok && bin.Op == sqldb.OpEq {
		lc, lok := bin.L.(*sqldb.Col)
		rc, rok := bin.R.(*sqldb.Col)
		if lok && rok {
			li, lerr := env.resolve(lc.Table, lc.Name)
			ri, rerr := env.resolve(rc.Table, rc.Name)
			if lerr == nil && rerr == nil {
				return equiSelectivity(env, srcs, equiPair{outerIdx: li, innerIdx: ri})
			}
		}
	}
	return defaultRangeSel
}

// clampEst rounds a float estimate into a non-negative int hint.
func clampEst(f float64) int {
	const maxHint = int(^uint(0) >> 1)
	if f <= 0 {
		return 0
	}
	if f >= float64(maxHint) {
		return maxHint
	}
	return int(f + 0.5)
}

// equiPair links an outer-side flat column to an inner-side flat
// column for hash-join keying.
type equiPair struct{ outerIdx, innerIdx int }

// flatColName renders a flat row index as binding.column for EXPLAIN.
func flatColName(env *rowEnv, idx int) string {
	for _, b := range env.bindings {
		if idx >= b.offset && idx < b.offset+len(b.cols) {
			return b.name + "." + b.cols[idx-b.offset]
		}
	}
	return fmt.Sprintf("col#%d", idx)
}

// shrink is the planner's guess for a filtering operator's output.
func shrink(in int) int {
	out := in / 3
	if out < 1 {
		out = 1
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func anyLeftAtOrBelow(leftProtected []bool, maxB int) bool {
	for i := 0; i <= maxB && i < len(leftProtected); i++ {
		if leftProtected[i] {
			return true
		}
	}
	return false
}
