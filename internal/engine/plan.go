package engine

import (
	"fmt"
	"strings"

	"xmlrdb/internal/obs"
	"xmlrdb/internal/sqldb"
)

// The planner half of the Volcano split: planSelect binds a SELECT's
// sources, classifies its predicates (pushdown, join, residual) and
// produces a physical plan tree — SeqScan / IndexScan / RangeScan,
// Filter, HashJoin / NestedLoopJoin, Aggregate, Project, Sort / TopK,
// Distinct, Offset and Limit nodes, each carrying a cardinality hint.
// The tree executes as streaming iterators (operators.go); nothing is
// materialized here beyond index posting lists.
//
// Planning runs under db.mu shared and the statement's row locks — the
// catalog and index postings it consults cannot change underneath it —
// but the locks drop as soon as the plan is built: execution reads the
// immutable table versions captured into each source (version.go), and
// any posting list the plan keeps is copied here because writers mutate
// the live posting slices in place after the locks release.

// physPlan is a planned SELECT: the operator tree, the output column
// names and the shared row environment the iterators evaluate in.
type physPlan struct {
	root planNode
	cols []string
	env  *rowEnv

	finished bool
	dig      *obs.PlanDigest // memoized at cursor close; see digest()
}

// opStats is the per-operator runtime accounting: rows emitted and —
// on timed (EXPLAIN or traced) runs — cumulative time spent in the
// operator and its children. Traced cursors time a 1-in-N sample of
// Next calls, so calls/timedCalls record how to scale nanos back up;
// EXPLAIN times every call and the two counters match.
type opStats struct {
	rows       int64
	nanos      int64
	openNanos  int64
	calls      int64
	timedCalls int64
}

// estNanos returns the operator's estimated total Next time, scaling
// the sampled measurement up to the full call count.
func (st *opStats) estNanos() int64 {
	if st.timedCalls > 0 && st.calls > st.timedCalls {
		return st.nanos * st.calls / st.timedCalls
	}
	return st.nanos
}

// planNode is one physical operator. describe returns the stable label
// EXPLAIN renders, kind the obs accounting bucket, estimate the
// planner's cardinality hint; open builds the node's iterator (opening
// children through openNode so stats wrappers nest).
type planNode interface {
	describe() string
	kind() string
	estimate() int
	children() []planNode
	open(ec *execCtx) (rowIter, error)
	stats() *opStats
}

// nodeBase carries the fields every operator shares.
type nodeBase struct {
	st   opStats
	hint int
}

func (n *nodeBase) estimate() int   { return n.hint }
func (n *nodeBase) stats() *opStats { return &n.st }

// walkPlan visits the tree pre-order with depth.
func walkPlan(n planNode, depth int, fn func(planNode, int)) {
	fn(n, depth)
	for _, c := range n.children() {
		walkPlan(c, depth+1, fn)
	}
}

// bindSelect resolves the FROM and JOIN items against the catalog and
// builds the flat row environment. Two items resolving to the same
// binding name are rejected here, at plan time: silent last-wins
// shadowing in the row environment would misattribute every column
// reference.
func (db *DB) bindSelect(s *sqldb.Select) ([]source, *rowEnv, error) {
	var srcs []source
	for _, ref := range s.From {
		t := db.tables[ref.Table]
		if t == nil {
			return nil, nil, fmt.Errorf("%w: %q", ErrNoTable, ref.Table)
		}
		srcs = append(srcs, source{ref: ref, t: t})
	}
	for _, j := range s.Joins {
		t := db.tables[j.Ref.Table]
		if t == nil {
			return nil, nil, fmt.Errorf("%w: %q", ErrNoTable, j.Ref.Table)
		}
		srcs = append(srcs, source{ref: j.Ref, t: t, on: j.On, left: j.Left})
	}
	if len(srcs) == 0 {
		return nil, nil, fmt.Errorf("engine: SELECT without FROM")
	}
	env := &rowEnv{}
	offset := 0
	seen := make(map[string]bool)
	for _, src := range srcs {
		name := src.ref.Name()
		if seen[name] {
			return nil, nil, fmt.Errorf("engine: duplicate table binding %q", name)
		}
		seen[name] = true
		env.bindings = append(env.bindings, envBinding{
			name: name, cols: src.t.def.ColumnNames(), offset: offset,
		})
		offset += len(src.t.def.Columns)
	}
	return srcs, env, nil
}

// classifiedConj is one WHERE conjunct routed to the join pipeline.
type classifiedConj struct {
	expr    sqldb.Expr
	maxBind int // highest binding index referenced
}

// buildPlan turns a bound SELECT into the physical tree. The caller
// holds db.mu shared and the statement's row locks (index postings are
// consulted here).
func (db *DB) buildPlan(s *sqldb.Select, srcs []source, env *rowEnv) (*physPlan, error) {
	// Classify WHERE conjuncts: single-binding predicates push into
	// their scan, two-sided equalities drive joins, the rest are
	// residual filters above the join tree.
	whereConjs := splitAnd(s.Where)
	bindingIdx := make(map[string]int, len(srcs))
	for i, src := range srcs {
		bindingIdx[src.ref.Name()] = i
	}
	leftProtected := make([]bool, len(srcs))
	for i, src := range srcs {
		if src.left {
			leftProtected[i] = true
		}
	}
	pushed := make([][]sqldb.Expr, len(srcs))
	var joinConjs []classifiedConj
	var residual []sqldb.Expr
	for _, c := range whereConjs {
		refs, err := exprRefs(c, env)
		if err != nil {
			return nil, err
		}
		maxB, only := -1, -1
		for name := range refs {
			bi, ok := bindingIdx[name]
			if !ok {
				return nil, fmt.Errorf("engine: unknown table %q in WHERE", name)
			}
			if bi > maxB {
				maxB = bi
			}
			only = bi
		}
		switch {
		case len(refs) == 0:
			residual = append(residual, c)
		case len(refs) == 1 && !leftProtected[only]:
			pushed[only] = append(pushed[only], c)
		case anyLeftAtOrBelow(leftProtected, maxB):
			// Mixed predicates involving LEFT-join sides stay residual to
			// preserve outer-join semantics.
			residual = append(residual, c)
		default:
			joinConjs = append(joinConjs, classifiedConj{expr: c, maxBind: maxB})
		}
	}

	// Scan + join pipeline, left to right.
	root, err := db.planScan(srcs[0], env, pushed[0])
	if err != nil {
		return nil, err
	}
	var node planNode = root
	for bi := 1; bi < len(srcs); bi++ {
		src := srcs[bi]
		var conds []sqldb.Expr
		conds = append(conds, splitAnd(src.on)...)
		if !src.left {
			rest := joinConjs[:0]
			for _, jc := range joinConjs {
				if jc.maxBind == bi {
					conds = append(conds, jc.expr)
				} else {
					rest = append(rest, jc)
				}
			}
			joinConjs = rest
		}
		inner, err := db.planScan(src, env, pushed[bi])
		if err != nil {
			return nil, err
		}
		node = planJoin(node, inner, bi, conds, env, src.left)
	}
	// Join conjuncts never consumed (e.g. referencing only later
	// bindings under LEFT joins) become residual filters.
	for _, jc := range joinConjs {
		residual = append(residual, jc.expr)
	}
	if len(residual) > 0 {
		node = &filterNode{child: node, preds: residual,
			nodeBase: nodeBase{hint: shrink(node.estimate())}}
	}

	// Projection or aggregation: both emit len(items) output values
	// followed by len(OrderBy) sort keys.
	items, cols, err := expandItems(s, env)
	if err != nil {
		return nil, err
	}
	aggregated := len(s.GroupBy) > 0 || hasAggregate(s.Having)
	for _, it := range items {
		if it.Expr != nil && hasAggregate(it.Expr) {
			aggregated = true
		}
	}
	for _, oi := range s.OrderBy {
		if hasAggregate(oi.Expr) {
			aggregated = true
		}
	}
	if aggregated {
		hint := 1
		if len(s.GroupBy) > 0 {
			hint = shrink(node.estimate())
		}
		node = &aggNode{child: node, sel: s, items: items, cols: cols,
			nodeBase: nodeBase{hint: hint}}
	} else {
		node = &projectNode{child: node, sel: s, items: items, cols: cols,
			nodeBase: nodeBase{hint: node.estimate()}}
	}

	// Order: full sort, or a bounded top-k heap when a LIMIT caps the
	// output and no DISTINCT must run over the fully sorted stream.
	if len(s.OrderBy) > 0 {
		if s.Limit >= 0 && !s.Distinct {
			k := s.Limit + s.Offset
			node = &topKNode{child: node, orderBy: s.OrderBy, keyOffset: len(items), k: k,
				nodeBase: nodeBase{hint: minInt(k, node.estimate())}}
		} else {
			node = &sortNode{child: node, orderBy: s.OrderBy, keyOffset: len(items),
				nodeBase: nodeBase{hint: node.estimate()}}
		}
	}
	if s.Distinct {
		node = &distinctNode{child: node, nodeBase: nodeBase{hint: node.estimate()}}
	}
	if s.Offset > 0 {
		node = &offsetNode{child: node, n: s.Offset,
			nodeBase: nodeBase{hint: maxInt(node.estimate()-s.Offset, 0)}}
	}
	if s.Limit >= 0 {
		node = &limitNode{child: node, n: s.Limit,
			nodeBase: nodeBase{hint: minInt(s.Limit, node.estimate())}}
	}
	// Batch-at-a-time rewrite of vectorizable pipelines (vector.go);
	// vecOff is written under db.mu exclusive and read here under shared.
	if !db.vecOff {
		node = db.vectorize(node)
	}
	return &physPlan{root: node, cols: cols, env: env}, nil
}

// planScan chooses the access path for one source: an index probe for
// an equality predicate set covered by a hash index, a window over an
// ordered index for range predicates, else a sequential scan. Pushed
// predicates not consumed by the access path are re-checked per row.
func (db *DB) planScan(src source, env *rowEnv, preds []sqldb.Expr) (*scanNode, error) {
	bi := -1
	for i, b := range env.bindings {
		if b.name == src.ref.Name() {
			bi = i
			break
		}
	}
	n := &scanNode{src: src, bind: env.bindings[bi], width: env.width()}
	eqCols, eqVals, restPreds, err := extractEqualities(preds, src, env)
	if err != nil {
		return nil, err
	}
	if len(eqCols) > 0 {
		if ix := src.t.findIndex(eqCols); ix != nil {
			// A consulted index with no postings must yield an empty scan,
			// not a fallback to the full scan: the consumed equality
			// predicates are gone from restPreds. The postings are copied —
			// writers extend and compact the live slice in place after the
			// open-time locks release, and this plan outlives them.
			pos := append([]int(nil), ix.m[encodeKey(eqVals)]...)
			if pos == nil {
				pos = []int{}
			}
			n.access, n.indexName, n.positions, n.preds = accessIndex, ix.name, pos, restPreds
		}
	}
	if n.access == "" {
		// Range scan via an ordered index; every predicate is still
		// re-checked per row, so the window is purely an optimization.
		if ix, bounds, ok := extractRange(preds, src); ok {
			pos := ix.scan(src.t, bounds)
			if pos == nil {
				pos = []int{}
			}
			n.access, n.indexName, n.positions, n.preds = accessRange, ix.name, pos, preds
		} else {
			n.access, n.preds = accessSeq, preds
		}
	}
	if n.positions != nil {
		n.hint = len(n.positions)
	} else {
		n.hint = len(src.ver.rows)
	}
	return n, nil
}

// planJoin builds the join operator for the next source: a hash join
// when at least one equi-condition links it to earlier bindings, else
// a (filtered) nested loop.
func planJoin(outer planNode, inner *scanNode, bi int, conds []sqldb.Expr, env *rowEnv, left bool) planNode {
	b := env.bindings[bi]
	var equis []equiPair
	var others []sqldb.Expr
	for _, c := range conds {
		bin, ok := c.(*sqldb.Bin)
		if !ok || bin.Op != sqldb.OpEq {
			others = append(others, c)
			continue
		}
		lc, lok := bin.L.(*sqldb.Col)
		rc, rok := bin.R.(*sqldb.Col)
		if !lok || !rok {
			others = append(others, c)
			continue
		}
		li, lerr := env.resolve(lc.Table, lc.Name)
		ri, rerr := env.resolve(rc.Table, rc.Name)
		if lerr != nil || rerr != nil {
			others = append(others, c)
			continue
		}
		lIsInner := li >= b.offset && li < b.offset+len(b.cols)
		rIsInner := ri >= b.offset && ri < b.offset+len(b.cols)
		switch {
		case lIsInner && !rIsInner:
			equis = append(equis, equiPair{outerIdx: ri, innerIdx: li})
		case rIsInner && !lIsInner:
			equis = append(equis, equiPair{outerIdx: li, innerIdx: ri})
		default:
			others = append(others, c)
		}
	}
	if len(equis) > 0 {
		keys := make([]string, len(equis))
		for i, e := range equis {
			keys[i] = flatColName(env, e.outerIdx) + " = " + flatColName(env, e.innerIdx)
		}
		return &hashJoinNode{
			outer: outer, inner: inner, equis: equis, others: others,
			left: left, bind: b, keysDesc: strings.Join(keys, ", "),
			nodeBase: nodeBase{hint: maxInt(outer.estimate(), inner.estimate())},
		}
	}
	hint := outer.estimate() * inner.estimate()
	if outer.estimate() != 0 && hint/outer.estimate() != inner.estimate() {
		hint = int(^uint(0) >> 1) // overflow: saturate
	}
	return &nlJoinNode{
		outer: outer, inner: inner, conds: conds, left: left, bind: b,
		nodeBase: nodeBase{hint: hint},
	}
}

// equiPair links an outer-side flat column to an inner-side flat
// column for hash-join keying.
type equiPair struct{ outerIdx, innerIdx int }

// flatColName renders a flat row index as binding.column for EXPLAIN.
func flatColName(env *rowEnv, idx int) string {
	for _, b := range env.bindings {
		if idx >= b.offset && idx < b.offset+len(b.cols) {
			return b.name + "." + b.cols[idx-b.offset]
		}
	}
	return fmt.Sprintf("col#%d", idx)
}

// shrink is the planner's guess for a filtering operator's output.
func shrink(in int) int {
	out := in / 3
	if out < 1 {
		out = 1
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func anyLeftAtOrBelow(leftProtected []bool, maxB int) bool {
	for i := 0; i <= maxB && i < len(leftProtected); i++ {
		if leftProtected[i] {
			return true
		}
	}
	return false
}
