package ermap

import (
	"strings"
	"testing"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/paper"
)

func paperMapping(t *testing.T, opts Options) *Mapping {
	t.Helper()
	res, err := core.Map(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(res.Model, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestJunctionSchema(t *testing.T) {
	m := paperMapping(t, Options{})
	// 8 entities + 8 relationships + 2 system tables.
	if got := len(m.Schema.Tables); got != 18 {
		t.Fatalf("tables = %d, want 18:\n%s", got, m.Schema.DDL())
	}

	book := m.Schema.Table("e_book")
	if book == nil {
		t.Fatal("e_book missing")
	}
	if _, i := book.Column("a_booktitle"); i < 0 {
		t.Error("e_book.a_booktitle missing")
	}
	if c, _ := book.Column("a_booktitle"); !c.NotNull {
		t.Error("required distilled attribute should be NOT NULL")
	}

	author := m.Schema.Table("e_author")
	if len(author.Uniques) != 1 || strings.Join(author.Uniques[0], ",") != "doc,a_id" {
		t.Errorf("author uniques = %v", author.Uniques)
	}

	name := m.Schema.Table("e_name")
	if c, _ := name.Column("a_firstname"); c.NotNull {
		t.Error("optional attribute should be nullable")
	}

	aff := m.Schema.Table("e_affiliation")
	if _, i := aff.Column("raw"); i < 0 {
		t.Error("ANY entity should have a raw column")
	}

	ng1 := m.Schema.Table("r_NG1")
	if _, i := ng1.Column("target"); i < 0 {
		t.Error("multi-target relationship needs a target column")
	}
	ng2 := m.Schema.Table("r_NG2")
	if _, i := ng2.Column("grp"); i < 0 {
		t.Error("repeating group needs a grp column")
	}
	if _, i := ng1.Column("grp"); i >= 0 {
		t.Error("non-repeating group should not have grp")
	}

	nname := m.Schema.Table("r_Nname")
	if _, i := nname.Column("target"); i >= 0 {
		t.Error("single-target relationship should omit target column")
	}
	foundFK := false
	for _, fk := range nname.ForeignKeys {
		if fk.RefTable == "e_name" {
			foundFK = true
		}
	}
	if !foundFK {
		t.Error("single-target relationship should have child FK")
	}

	ref := m.Schema.Table("r_authorid")
	for _, col := range []string{"source", "refvalue", "target_type", "target", "ord"} {
		if _, i := ref.Column(col); i < 0 {
			t.Errorf("r_authorid missing %s", col)
		}
	}

	if m.Schema.Table("x_docs") == nil || m.Schema.Table("x_text") == nil {
		t.Error("system tables missing")
	}
	if err := m.Schema.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFoldFKStrategy(t *testing.T) {
	m := paperMapping(t, Options{Strategy: StrategyFoldFK})
	// name has exactly one nesting parent (author via Nname): folded.
	if m.Schema.Table("r_Nname") != nil {
		t.Error("Nname should be folded under fold-fk")
	}
	nameT := m.Schema.Table("e_name")
	if _, i := nameT.Column("parent"); i < 0 {
		t.Error("folded child should gain parent column")
	}
	if m.Entities["name"].FoldedRel != "Nname" {
		t.Errorf("FoldedRel = %q", m.Entities["name"].FoldedRel)
	}
	if rm := m.Rels["Nname"]; !rm.Folded || rm.Table != "" {
		t.Errorf("Nname RelMap = %+v", rm)
	}
	// author participates in three nesting relationships: not folded.
	if m.Schema.Table("r_Nauthor") == nil {
		t.Error("Nauthor must stay a junction table")
	}
	// contactauthor has one nesting parent (Ncontactauthor): folded.
	if m.Schema.Table("r_Ncontactauthor") != nil {
		t.Error("Ncontactauthor should be folded")
	}
	// References never fold.
	if m.Schema.Table("r_authorid") == nil {
		t.Error("reference table missing under fold-fk")
	}
	if err := m.Schema.Validate(); err != nil {
		t.Error(err)
	}
	junction := paperMapping(t, Options{})
	if len(m.Schema.Tables) >= len(junction.Schema.Tables) {
		t.Errorf("fold-fk should produce fewer tables: %d vs %d",
			len(m.Schema.Tables), len(junction.Schema.Tables))
	}
}

func TestNoSystemTables(t *testing.T) {
	m := paperMapping(t, Options{NoSystemTables: true})
	if m.Schema.Table("x_docs") != nil {
		t.Error("x_docs should be omitted")
	}
}

func TestDDLOutput(t *testing.T) {
	m := paperMapping(t, Options{})
	ddl := m.Schema.DDL()
	for _, want := range []string{
		"CREATE TABLE e_book",
		"a_booktitle TEXT NOT NULL",
		"PRIMARY KEY (id)",
		"CREATE TABLE r_NG1",
		"FOREIGN KEY (parent) REFERENCES e_book (id)",
		"UNIQUE (doc, a_id)",
		"-- entity author",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q", want)
		}
	}
	// Round-trip sanity: stats count what the DDL shows.
	st := m.Schema.ComputeStats()
	if st.Tables != strings.Count(ddl, "CREATE TABLE") {
		t.Errorf("stats tables = %d, DDL has %d", st.Tables, strings.Count(ddl, "CREATE TABLE"))
	}
}

func TestEntityTableLookup(t *testing.T) {
	m := paperMapping(t, Options{})
	if got := m.EntityTable("book"); got != "e_book" {
		t.Errorf("EntityTable(book) = %q", got)
	}
	if got := m.EntityTable("ghost"); got != "" {
		t.Errorf("EntityTable(ghost) = %q", got)
	}
}

func TestMixedContentSchema(t *testing.T) {
	res, err := core.Map(dtd.MustParse(`
<!ELEMENT para (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>
`))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(res.Model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	paraT := m.Schema.Table("e_para")
	if _, i := paraT.Column("txt"); i < 0 {
		t.Error("mixed entity needs txt column")
	}
	emT := m.Schema.Table("e_em")
	if _, i := emT.Column("txt"); i < 0 {
		t.Error("PCDATA leaf entity needs txt column")
	}
}
