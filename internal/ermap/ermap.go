// Package ermap translates the ER models produced by the core mapping
// into relational schemas, following the classic textbook translation
// the paper cites ([EN89]): entities become tables with surrogate keys,
// relationships become junction tables keyed by the participating
// entities — or, under the fold strategy, collapse into a foreign key on
// the child table when the child participates in exactly one nesting
// relationship with a single target.
//
// Naming conventions (chosen so generated names can never collide with
// XML names): entity tables are "e_<element>", relationship tables
// "r_<relationship>", attribute columns "a_<attribute>". System columns
// are unprefixed: id, doc, parent, child, target, ord, grp, source,
// refvalue, txt, raw.
package ermap

import (
	"fmt"

	"xmlrdb/internal/er"
	"xmlrdb/internal/rel"
)

// Strategy selects how nesting relationships map to tables.
type Strategy int

// Translation strategies.
const (
	// StrategyJunction gives every relationship its own table — the
	// uniform translation, faithful to the paper's relationship-centric
	// diagrams.
	StrategyJunction Strategy = iota + 1
	// StrategyFoldFK folds a nesting relationship into parent-reference
	// columns on the child table when the child entity has exactly one
	// possible nesting parent relationship with a single target — the
	// [EN89] 1:N optimization. Other relationships still get junction
	// tables.
	StrategyFoldFK
)

// String returns a short strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyJunction:
		return "junction"
	case StrategyFoldFK:
		return "fold-fk"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures translation.
type Options struct {
	// Strategy defaults to StrategyJunction.
	Strategy Strategy
	// NoSystemTables omits the x_docs/x_text bookkeeping tables (used by
	// schema-size experiments that count only data tables).
	NoSystemTables bool
}

func (o Options) strategy() Strategy {
	if o.Strategy == 0 {
		return StrategyJunction
	}
	return o.Strategy
}

// EntityMap records how one entity maps to its table.
type EntityMap struct {
	// Entity is the mapped ER entity.
	Entity *er.Entity
	// Table is the entity table name.
	Table string
	// AttrCols maps attribute names to column names.
	AttrCols map[string]string
	// HasText marks a txt column (PCDATA or mixed text content).
	HasText bool
	// HasRaw marks a raw column (ANY content stored as serialized XML).
	HasRaw bool
	// FoldedRel is the relationship folded into this table under
	// StrategyFoldFK ("" when none): the parent/ord columns then live
	// here.
	FoldedRel string
}

// RelMap records how one relationship maps to storage.
type RelMap struct {
	// Rel is the mapped ER relationship.
	Rel *er.Relationship
	// Table is the junction table name; empty when folded.
	Table string
	// Folded marks relationships folded into the child entity table.
	Folded bool
	// SingleTarget is set when the relationship has exactly one possible
	// target entity, allowing an enforced foreign key and omitting the
	// target discriminator column.
	SingleTarget bool
}

// Mapping ties an ER model to its relational schema.
type Mapping struct {
	// Model is the source ER model.
	Model *er.Model
	// Schema is the generated relational schema.
	Schema *rel.Schema
	// Entities and Rels index the mapping by name.
	Entities map[string]*EntityMap
	Rels     map[string]*RelMap
	// Strategy records the translation strategy used.
	Strategy Strategy
}

// EntityTable returns the table name for an entity.
func (m *Mapping) EntityTable(entity string) string {
	if em := m.Entities[entity]; em != nil {
		return em.Table
	}
	return ""
}

// Build translates an ER model into a relational schema.
func Build(model *er.Model, opts Options) (*Mapping, error) {
	strat := opts.strategy()
	m := &Mapping{
		Model:    model,
		Schema:   rel.NewSchema(model.Name),
		Entities: make(map[string]*EntityMap),
		Rels:     make(map[string]*RelMap),
		Strategy: strat,
	}

	// Decide folding first: child -> the single relationship folded into
	// it.
	foldedInto := make(map[string]*er.Relationship) // child entity -> rel
	if strat == StrategyFoldFK {
		for _, e := range model.Entities {
			parents := model.NestingParentsOf(e.Name)
			if len(parents) != 1 {
				continue
			}
			r := parents[0]
			if len(r.Arcs) != 1 {
				continue // the relationship also nests other entities
			}
			foldedInto[e.Name] = r
		}
	}

	// Entity tables.
	for _, e := range model.Entities {
		em := &EntityMap{
			Entity:   e,
			Table:    "e_" + e.Name,
			AttrCols: make(map[string]string, len(e.Attributes)),
			HasText:  e.PCDataText,
			HasRaw:   e.AnyContent,
		}
		t := &rel.Table{
			Name:    em.Table,
			Comment: fmt.Sprintf("entity %s", e.Name),
			Columns: []rel.Column{
				{Name: "id", Type: rel.TypeInt, NotNull: true},
				{Name: "doc", Type: rel.TypeInt, NotNull: true},
			},
			PrimaryKey: []string{"id"},
		}
		for _, a := range e.Attributes {
			col := "a_" + a.Name
			em.AttrCols[a.Name] = col
			t.Columns = append(t.Columns, rel.Column{
				Name: col, Type: rel.TypeText, NotNull: a.Required,
			})
			if a.Key {
				// XML IDs are unique per document.
				t.Uniques = append(t.Uniques, []string{"doc", col})
			}
		}
		if em.HasText {
			t.Columns = append(t.Columns, rel.Column{Name: "txt", Type: rel.TypeText})
		}
		if em.HasRaw {
			t.Columns = append(t.Columns, rel.Column{Name: "raw", Type: rel.TypeText})
		}
		if r, folded := foldedInto[e.Name]; folded {
			em.FoldedRel = r.Name
			t.Columns = append(t.Columns,
				rel.Column{Name: "parent", Type: rel.TypeInt},
				rel.Column{Name: "ord", Type: rel.TypeInt},
			)
			t.ForeignKeys = append(t.ForeignKeys, rel.ForeignKey{
				Columns: []string{"parent"}, RefTable: "e_" + r.Parent, RefColumns: []string{"id"},
			})
		}
		if err := m.Schema.AddTable(t); err != nil {
			return nil, err
		}
		m.Entities[e.Name] = em
	}

	// Relationship tables.
	for _, r := range model.Relationships {
		rm := &RelMap{Rel: r, SingleTarget: len(r.Arcs) == 1}
		if r.Kind != er.RelReference {
			if child, folded := singleFolded(foldedInto, r); folded {
				rm.Folded = true
				rm.Table = ""
				m.Rels[r.Name] = rm
				_ = child
				continue
			}
		}
		rm.Table = "r_" + r.Name
		t := &rel.Table{Name: rm.Table}
		switch r.Kind {
		case er.RelReference:
			t.Comment = fmt.Sprintf("reference %s: %s/@%s", r.Name, r.Parent, r.ViaAttr)
			t.Columns = []rel.Column{
				{Name: "doc", Type: rel.TypeInt, NotNull: true},
				{Name: "source", Type: rel.TypeInt, NotNull: true},
				{Name: "refvalue", Type: rel.TypeText, NotNull: true},
				{Name: "target_type", Type: rel.TypeText},
				{Name: "target", Type: rel.TypeInt},
				{Name: "ord", Type: rel.TypeInt, NotNull: true},
			}
			t.ForeignKeys = append(t.ForeignKeys, rel.ForeignKey{
				Columns: []string{"source"}, RefTable: "e_" + r.Parent, RefColumns: []string{"id"},
			})
		default:
			t.Comment = fmt.Sprintf("%s %s: %s", r.Kind, r.Name, r.Parent)
			t.Columns = []rel.Column{
				{Name: "doc", Type: rel.TypeInt, NotNull: true},
				{Name: "parent", Type: rel.TypeInt, NotNull: true},
				{Name: "child", Type: rel.TypeInt, NotNull: true},
				{Name: "ord", Type: rel.TypeInt, NotNull: true},
			}
			if !rm.SingleTarget {
				t.Columns = append(t.Columns, rel.Column{Name: "target", Type: rel.TypeText, NotNull: true})
			}
			if r.Kind == er.RelNestedGroup && r.GroupOcc.Repeatable() {
				t.Columns = append(t.Columns, rel.Column{Name: "grp", Type: rel.TypeInt})
			}
			t.ForeignKeys = append(t.ForeignKeys, rel.ForeignKey{
				Columns: []string{"parent"}, RefTable: "e_" + r.Parent, RefColumns: []string{"id"},
			})
			if rm.SingleTarget {
				t.ForeignKeys = append(t.ForeignKeys, rel.ForeignKey{
					Columns: []string{"child"}, RefTable: "e_" + r.Arcs[0].Target, RefColumns: []string{"id"},
				})
			}
		}
		if err := m.Schema.AddTable(t); err != nil {
			return nil, err
		}
		m.Rels[r.Name] = rm
	}

	if !opts.NoSystemTables {
		if err := m.Schema.AddTable(&rel.Table{
			Name:    "x_docs",
			Comment: "document registry",
			Columns: []rel.Column{
				{Name: "doc", Type: rel.TypeInt, NotNull: true},
				{Name: "name", Type: rel.TypeText},
				{Name: "root_type", Type: rel.TypeText, NotNull: true},
				{Name: "root", Type: rel.TypeInt, NotNull: true},
			},
			PrimaryKey: []string{"doc"},
		}); err != nil {
			return nil, err
		}
		if err := m.Schema.AddTable(&rel.Table{
			Name:    "x_text",
			Comment: "mixed-content text chunks, ordered among their element siblings",
			Columns: []rel.Column{
				{Name: "doc", Type: rel.TypeInt, NotNull: true},
				{Name: "ptype", Type: rel.TypeText, NotNull: true},
				{Name: "pid", Type: rel.TypeInt, NotNull: true},
				{Name: "ord", Type: rel.TypeInt, NotNull: true},
				{Name: "txt", Type: rel.TypeText, NotNull: true},
			},
		}); err != nil {
			return nil, err
		}
	}

	if err := m.Schema.Validate(); err != nil {
		return nil, fmt.Errorf("ermap: generated schema invalid: %w", err)
	}
	return m, nil
}

// singleFolded reports whether r is the relationship folded into its
// single child.
func singleFolded(foldedInto map[string]*er.Relationship, r *er.Relationship) (string, bool) {
	if len(r.Arcs) != 1 {
		return "", false
	}
	child := r.Arcs[0].Target
	if fr, ok := foldedInto[child]; ok && fr == r {
		return child, true
	}
	return "", false
}
