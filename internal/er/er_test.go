package er

import (
	"strings"
	"testing"

	"xmlrdb/internal/dtd"
)

func sampleModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel("sample")
	for _, e := range []*Entity{
		{Name: "book", Attributes: []Attribute{
			{Name: "booktitle", Required: true, Origin: Distilled, XMLType: dtd.AttPCData},
		}},
		{Name: "author", Attributes: []Attribute{
			{Name: "id", Required: true, Key: true, Origin: FromXMLAttr, XMLType: dtd.AttID},
		}},
		{Name: "editor"},
		{Name: "note", Existence: true},
	} {
		if err := m.AddEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddRelationship(&Relationship{
		Name: "NG1", Kind: RelNestedGroup, Parent: "book", Choice: true,
		Arcs: []Arc{{Target: "author", Occ: dtd.OccZeroPlus}, {Target: "editor", Occ: dtd.OccOnce}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddRelationship(&Relationship{
		Name: "ref", Kind: RelReference, Parent: "note", ViaAttr: "who", Choice: true,
		Arcs: []Arc{{Target: "author", Occ: dtd.OccOnce}},
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelAccessors(t *testing.T) {
	m := sampleModel(t)
	if m.Entity("book") == nil || m.Entity("ghost") != nil {
		t.Error("Entity lookup")
	}
	if m.Relationship("NG1") == nil || m.Relationship("nope") != nil {
		t.Error("Relationship lookup")
	}
	if got := len(m.RelationshipsOf("book")); got != 1 {
		t.Errorf("RelationshipsOf(book) = %d", got)
	}
	parents := m.NestingParentsOf("author")
	if len(parents) != 1 || parents[0].Name != "NG1" {
		t.Errorf("NestingParentsOf = %+v", parents)
	}
	// References are not nesting parents.
	if got := m.NestingParentsOf("editor"); len(got) != 1 {
		t.Errorf("editor parents = %+v", got)
	}
	if got := m.Relationship("NG1").Targets(); strings.Join(got, ",") != "author,editor" {
		t.Errorf("Targets = %v", got)
	}
	if key, ok := m.Entity("author").KeyAttribute(); !ok || key.Name != "id" {
		t.Errorf("KeyAttribute = %+v %v", key, ok)
	}
	if _, ok := m.Entity("book").KeyAttribute(); ok {
		t.Error("book has no key")
	}
	if a, ok := m.Entity("book").Attribute("booktitle"); !ok || a.Origin != Distilled {
		t.Errorf("Attribute = %+v %v", a, ok)
	}
}

func TestModelDuplicates(t *testing.T) {
	m := sampleModel(t)
	if err := m.AddEntity(&Entity{Name: "book"}); err == nil {
		t.Error("duplicate entity should fail")
	}
	if err := m.AddRelationship(&Relationship{Name: "NG1", Parent: "book", Arcs: []Arc{{Target: "author"}}}); err == nil {
		t.Error("duplicate relationship should fail")
	}
}

func TestModelValidate(t *testing.T) {
	m := sampleModel(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewModel("bad")
	if err := bad.AddEntity(&Entity{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := bad.AddRelationship(&Relationship{Name: "r", Parent: "missing", Arcs: []Arc{{Target: "a"}}}); err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil {
		t.Error("unknown parent should fail validation")
	}

	bad2 := NewModel("bad2")
	if err := bad2.AddEntity(&Entity{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := bad2.AddRelationship(&Relationship{Name: "r", Parent: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := bad2.Validate(); err == nil {
		t.Error("relationship without arcs should fail validation")
	}

	bad3 := NewModel("bad3")
	if err := bad3.AddEntity(&Entity{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := bad3.AddRelationship(&Relationship{Name: "r", Parent: "a", Arcs: []Arc{{Target: "zz"}}}); err != nil {
		t.Fatal(err)
	}
	if err := bad3.Validate(); err == nil {
		t.Error("unknown target should fail validation")
	}
}

func TestComputeStats(t *testing.T) {
	m := sampleModel(t)
	s := m.ComputeStats()
	if s.Entities != 4 || s.Relationships != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.NestedGroups != 1 || s.References != 1 || s.Nested != 0 {
		t.Errorf("kind breakdown = %+v", s)
	}
	if s.EntityAttrs != 2 {
		t.Errorf("entity attrs = %d", s.EntityAttrs)
	}
}

func TestInventoryFormat(t *testing.T) {
	m := sampleModel(t)
	inv := m.Inventory()
	for _, want := range []string{
		"model sample: 4 entities, 2 relationships",
		"entity book { booktitle }",
		"entity author { id* }",
		"entity note [existence]",
		"nested_group NG1: book -> (author* | editor)",
		"reference ref: note -> (author) via @who",
	} {
		if !strings.Contains(inv, want) {
			t.Errorf("inventory missing %q:\n%s", want, inv)
		}
	}
}

func TestDOTWellFormed(t *testing.T) {
	m := sampleModel(t)
	dot := m.DOT()
	if !strings.HasPrefix(dot, "graph ER {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Errorf("DOT framing:\n%s", dot)
	}
	// Balanced structure: every entity and relationship node declared.
	for _, want := range []string{`"book" [shape=box`, `"NG1" [shape=diamond]`, `"ref" [shape=diamond]`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Key attributes are underlined.
	if !strings.Contains(dot, "<<u>id</u>>") {
		t.Error("key attribute not underlined in DOT")
	}
}

func TestSortedEntityNames(t *testing.T) {
	m := sampleModel(t)
	names := m.SortedEntityNames()
	if strings.Join(names, ",") != "author,book,editor,note" {
		t.Errorf("sorted = %v", names)
	}
}

func TestKindStrings(t *testing.T) {
	if RelNested.String() != "NESTED" || RelNestedGroup.String() != "NESTED_GROUP" || RelReference.String() != "REFERENCE" {
		t.Error("RelKind strings")
	}
	if FromXMLAttr.String() != "xml-attribute" || Distilled.String() != "distilled" || Synthetic.String() != "synthetic" {
		t.Error("AttrOrigin strings")
	}
}
