// Package er models Entity-Relationship diagrams of the specific shape
// produced by the Lee–Mitchell–Zhang DTD mapping: entities with
// attributes, and three kinds of relationship nodes (nested group,
// nesting, and inter-element reference) whose outgoing arcs may form a
// choice (the circled-plus marking in the paper's Figure 2).
//
// The package also renders diagrams as Graphviz DOT and as a stable text
// inventory used by golden tests, and computes the relationship
// cardinalities the ER-to-relational translation needs.
package er

import (
	"fmt"
	"sort"
	"strings"

	"xmlrdb/internal/dtd"
)

// AttrOrigin records where an entity attribute came from.
type AttrOrigin int

// Attribute origins.
const (
	// FromXMLAttr means the attribute was declared in an ATTLIST.
	FromXMLAttr AttrOrigin = iota + 1
	// Distilled means the attribute was a (#PCDATA) subelement folded in
	// by step 2 of the mapping algorithm.
	Distilled
	// Synthetic means the mapping layer created the attribute (e.g. text
	// content of a PCDATA-only entity that could not be distilled).
	Synthetic
)

// String returns a short origin name.
func (o AttrOrigin) String() string {
	switch o {
	case FromXMLAttr:
		return "xml-attribute"
	case Distilled:
		return "distilled"
	case Synthetic:
		return "synthetic"
	default:
		return fmt.Sprintf("AttrOrigin(%d)", int(o))
	}
}

// Attribute is one attribute of an entity or relationship.
type Attribute struct {
	// Name is the attribute name.
	Name string
	// Required reports whether a value must be present.
	Required bool
	// Key marks the identifying attribute (from an XML ID attribute).
	Key bool
	// Origin records how the attribute arose.
	Origin AttrOrigin
	// XMLType is the declared DTD attribute type (AttPCData for
	// distilled subelements).
	XMLType dtd.AttType
}

// Entity is an ER entity (one per element type in the converted DTD).
type Entity struct {
	// Name is the entity name (the element type name).
	Name string
	// Attributes lists the entity's attributes in declaration order.
	Attributes []Attribute
	// Existence marks entities that arose from EMPTY element types: pure
	// existence declarations carrying only attributes or references.
	Existence bool
	// AnyContent marks entities from ANY element types.
	AnyContent bool
	// PCDataText marks entities that retain unstructured #PCDATA text
	// content (mixed content, or PCDATA leaves that were not distilled).
	PCDataText bool
}

// Attribute returns the named attribute and whether it exists.
func (e *Entity) Attribute(name string) (Attribute, bool) {
	for _, a := range e.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// KeyAttribute returns the entity's ID-derived key attribute, if any.
func (e *Entity) KeyAttribute() (Attribute, bool) {
	for _, a := range e.Attributes {
		if a.Key {
			return a, true
		}
	}
	return Attribute{}, false
}

// RelKind is the kind of a relationship node.
type RelKind int

// Relationship kinds, mirroring the converted-DTD declarations.
const (
	// RelNested is a NESTED declaration: parent element to one subelement.
	RelNested RelKind = iota + 1
	// RelNestedGroup is a NESTED_GROUP declaration: parent element to the
	// members of a group extracted in step 1.
	RelNestedGroup
	// RelReference is a REFERENCE declaration: an IDREF(S) attribute to
	// the choice of all ID-carrying element types.
	RelReference
)

// String returns the converted-DTD keyword for the kind.
func (k RelKind) String() string {
	switch k {
	case RelNested:
		return "NESTED"
	case RelNestedGroup:
		return "NESTED_GROUP"
	case RelReference:
		return "REFERENCE"
	default:
		return fmt.Sprintf("RelKind(%d)", int(k))
	}
}

// Arc is one outgoing arc of a relationship node.
type Arc struct {
	// Target is the entity the arc points to.
	Target string
	// Occ is the occurrence indicator the target carried inside the
	// original group (metadata; OccOnce for nesting and references).
	Occ dtd.Occurrence
}

// Relationship is an ER relationship node.
type Relationship struct {
	// Name is the relationship name (NG1, Nauthor, authorid, ...).
	Name string
	// Kind discriminates nested group / nested / reference.
	Kind RelKind
	// Parent is the entity on the incoming-arc side: the nesting parent,
	// or the referencing entity for RelReference.
	Parent string
	// Arcs are the outgoing arcs, in declaration order.
	Arcs []Arc
	// Choice marks the outgoing arcs as alternatives (the paper's
	// circled-plus): choice groups and reference target sets.
	Choice bool
	// GroupOcc is the occurrence indicator of the whole group within the
	// parent (metadata; e.g. + for (author, affiliation?)+).
	GroupOcc dtd.Occurrence
	// Attributes are relationship attributes (IDREF attribute name, or
	// attributes attached to a group).
	Attributes []Attribute
	// ViaAttr names the IDREF attribute for RelReference.
	ViaAttr string
	// Multiple marks IDREFS references (many targets per instance).
	Multiple bool
}

// Targets returns the arc target names in order.
func (r *Relationship) Targets() []string {
	out := make([]string, len(r.Arcs))
	for i, a := range r.Arcs {
		out[i] = a.Target
	}
	return out
}

// Model is a complete ER diagram.
type Model struct {
	// Name labels the model (typically the DTD/doctype name).
	Name string
	// Entities in declaration order.
	Entities []*Entity
	// Relationships in creation order.
	Relationships []*Relationship

	byEntity map[string]*Entity
	byRel    map[string]*Relationship
}

// NewModel returns an empty model.
func NewModel(name string) *Model {
	return &Model{
		Name:     name,
		byEntity: make(map[string]*Entity),
		byRel:    make(map[string]*Relationship),
	}
}

// AddEntity appends an entity; the name must be unique.
func (m *Model) AddEntity(e *Entity) error {
	if _, dup := m.byEntity[e.Name]; dup {
		return fmt.Errorf("er: entity %q already defined", e.Name)
	}
	m.Entities = append(m.Entities, e)
	m.byEntity[e.Name] = e
	return nil
}

// AddRelationship appends a relationship; the name must be unique.
func (m *Model) AddRelationship(r *Relationship) error {
	if _, dup := m.byRel[r.Name]; dup {
		return fmt.Errorf("er: relationship %q already defined", r.Name)
	}
	m.Relationships = append(m.Relationships, r)
	m.byRel[r.Name] = r
	return nil
}

// Entity returns the named entity, or nil.
func (m *Model) Entity(name string) *Entity { return m.byEntity[name] }

// Relationship returns the named relationship, or nil.
func (m *Model) Relationship(name string) *Relationship { return m.byRel[name] }

// RelationshipsOf returns every relationship whose parent is the entity,
// in creation order.
func (m *Model) RelationshipsOf(parent string) []*Relationship {
	var out []*Relationship
	for _, r := range m.Relationships {
		if r.Parent == parent {
			out = append(out, r)
		}
	}
	return out
}

// NestingParentsOf returns the relationships (nested or nested-group)
// that can contain the entity as a child.
func (m *Model) NestingParentsOf(child string) []*Relationship {
	var out []*Relationship
	for _, r := range m.Relationships {
		if r.Kind == RelReference {
			continue
		}
		for _, a := range r.Arcs {
			if a.Target == child {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// Validate checks internal consistency: every arc and parent must name a
// known entity, and relationship attributes must not clash.
func (m *Model) Validate() error {
	for _, r := range m.Relationships {
		if m.Entity(r.Parent) == nil {
			return fmt.Errorf("er: relationship %q has unknown parent %q", r.Name, r.Parent)
		}
		if len(r.Arcs) == 0 {
			return fmt.Errorf("er: relationship %q has no arcs", r.Name)
		}
		for _, a := range r.Arcs {
			if m.Entity(a.Target) == nil {
				return fmt.Errorf("er: relationship %q targets unknown entity %q", r.Name, a.Target)
			}
		}
	}
	return nil
}

// Stats summarizes a model for reporting.
type Stats struct {
	// Entities and Relationships count the diagram nodes.
	Entities, Relationships int
	// EntityAttrs and RelAttrs count attributes.
	EntityAttrs, RelAttrs int
	// Nested, NestedGroups and References break down relationship kinds.
	Nested, NestedGroups, References int
}

// ComputeStats returns size statistics for the model.
func (m *Model) ComputeStats() Stats {
	var s Stats
	s.Entities = len(m.Entities)
	s.Relationships = len(m.Relationships)
	for _, e := range m.Entities {
		s.EntityAttrs += len(e.Attributes)
	}
	for _, r := range m.Relationships {
		s.RelAttrs += len(r.Attributes)
		switch r.Kind {
		case RelNested:
			s.Nested++
		case RelNestedGroup:
			s.NestedGroups++
		case RelReference:
			s.References++
		}
	}
	return s
}

// Inventory renders a deterministic, diff-friendly text description of
// the model: one line per entity (with attributes) and per relationship.
// Golden tests compare against it, and the dtd2er CLI prints it.
func (m *Model) Inventory() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %s: %d entities, %d relationships\n",
		m.Name, len(m.Entities), len(m.Relationships))
	for _, e := range m.Entities {
		b.WriteString("entity " + e.Name)
		var flags []string
		if e.Existence {
			flags = append(flags, "existence")
		}
		if e.AnyContent {
			flags = append(flags, "any")
		}
		if e.PCDataText {
			flags = append(flags, "pcdata")
		}
		if len(flags) > 0 {
			b.WriteString(" [" + strings.Join(flags, ",") + "]")
		}
		if len(e.Attributes) > 0 {
			b.WriteString(" { ")
			for i, a := range e.Attributes {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(a.Name)
				if a.Key {
					b.WriteString("*")
				}
				if !a.Required {
					b.WriteString("?")
				}
			}
			b.WriteString(" }")
		}
		b.WriteByte('\n')
	}
	for _, r := range m.Relationships {
		sep := ", "
		if r.Choice {
			sep = " | "
		}
		var targets []string
		for _, a := range r.Arcs {
			targets = append(targets, a.Target+a.Occ.String())
		}
		fmt.Fprintf(&b, "%s %s: %s -> (%s)%s",
			strings.ToLower(r.Kind.String()), r.Name, r.Parent,
			strings.Join(targets, sep), r.GroupOcc.String())
		if r.ViaAttr != "" {
			fmt.Fprintf(&b, " via @%s", r.ViaAttr)
		}
		if r.Multiple {
			b.WriteString(" [multiple]")
		}
		if len(r.Attributes) > 0 {
			var names []string
			for _, a := range r.Attributes {
				names = append(names, a.Name)
			}
			fmt.Fprintf(&b, " { %s }", strings.Join(names, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT renders the model as a Graphviz diagram: rectangles for entities,
// diamonds for relationships, ellipses for attributes, with choice arcs
// labeled by the paper's circled-plus convention.
func (m *Model) DOT() string {
	var b strings.Builder
	b.WriteString("graph ER {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontsize=10];\n")
	for _, e := range m.Entities {
		fmt.Fprintf(&b, "  %q [shape=box, style=bold];\n", e.Name)
		for _, a := range e.Attributes {
			id := e.Name + "." + a.Name
			label := a.Name
			if a.Key {
				label = "<<u>" + a.Name + "</u>>"
				fmt.Fprintf(&b, "  %q [shape=ellipse, label=%s];\n", id, label)
			} else {
				fmt.Fprintf(&b, "  %q [shape=ellipse, label=%q];\n", id, label)
			}
			fmt.Fprintf(&b, "  %q -- %q;\n", e.Name, id)
		}
	}
	for _, r := range m.Relationships {
		fmt.Fprintf(&b, "  %q [shape=diamond];\n", r.Name)
		fmt.Fprintf(&b, "  %q -- %q;\n", r.Parent, r.Name)
		for _, a := range r.Arcs {
			attrs := []string{}
			if r.Choice {
				attrs = append(attrs, `label="⊕"`)
			}
			if a.Occ != dtd.OccOnce {
				attrs = append(attrs, fmt.Sprintf("taillabel=%q", a.Occ.String()))
			}
			suffix := ""
			if len(attrs) > 0 {
				suffix = " [" + strings.Join(attrs, ", ") + "]"
			}
			fmt.Fprintf(&b, "  %q -- %q%s;\n", r.Name, a.Target, suffix)
		}
		for _, a := range r.Attributes {
			id := r.Name + "." + a.Name
			fmt.Fprintf(&b, "  %q [shape=ellipse, label=%q];\n", id, a.Name)
			fmt.Fprintf(&b, "  %q -- %q;\n", r.Name, id)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// SortedEntityNames returns entity names sorted alphabetically, for
// reporting.
func (m *Model) SortedEntityNames() []string {
	names := make([]string, len(m.Entities))
	for i, e := range m.Entities {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}
