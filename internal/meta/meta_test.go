package meta

import (
	"fmt"
	"testing"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/rel"
)

// fakeDB records inserts without a real engine, to test Store in
// isolation and to inject failures.
type fakeDB struct {
	tables  map[string][][]any
	created []string
	failOn  string
}

func newFakeDB() *fakeDB { return &fakeDB{tables: make(map[string][][]any)} }

func (f *fakeDB) CreateTable(def *rel.Table) error {
	if f.failOn == "create:"+def.Name {
		return fmt.Errorf("injected failure on %s", def.Name)
	}
	f.created = append(f.created, def.Name)
	return nil
}

func (f *fakeDB) Insert(table string, row []any) (int, error) {
	if f.failOn == "insert:"+table {
		return 0, fmt.Errorf("injected failure on %s", table)
	}
	f.tables[table] = append(f.tables[table], row)
	return len(f.tables[table]) - 1, nil
}

func mapped(t *testing.T) (*core.Result, *ermap.Mapping) {
	t.Helper()
	res, err := core.Map(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, ermap.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, m
}

func TestTablesComplete(t *testing.T) {
	defs := Tables()
	if len(defs) != len(TableNames) {
		t.Fatalf("defs = %d, names = %d", len(defs), len(TableNames))
	}
	for i, def := range defs {
		if def.Name != TableNames[i] {
			t.Errorf("def %d = %q, want %q", i, def.Name, TableNames[i])
		}
		if len(def.Columns) == 0 {
			t.Errorf("%s has no columns", def.Name)
		}
	}
}

func TestStorePopulates(t *testing.T) {
	res, m := mapped(t)
	db := newFakeDB()
	if err := Store(db, res, m); err != nil {
		t.Fatal(err)
	}
	if len(db.created) != len(TableNames) {
		t.Errorf("created = %v", db.created)
	}
	if n := len(db.tables["meta_elements"]); n != 12 {
		t.Errorf("meta_elements rows = %d", n)
	}
	// 8 entities + 8 relationships.
	if n := len(db.tables["meta_mapping"]); n != 16 {
		t.Errorf("meta_mapping rows = %d", n)
	}
	if n := len(db.tables["meta_distilled"]); n != 5 {
		t.Errorf("meta_distilled rows = %d", n)
	}
	if n := len(db.tables["meta_existence"]); n != 1 {
		t.Errorf("meta_existence rows = %d", n)
	}
	// Distilled rows carry the required flag.
	foundOptional := false
	for _, row := range db.tables["meta_distilled"] {
		if row[1] == "firstname" && row[3] == false {
			foundOptional = true
		}
	}
	if !foundOptional {
		t.Error("firstname should be recorded as optional")
	}
}

func TestStoreDeterministic(t *testing.T) {
	res, m := mapped(t)
	a := newFakeDB()
	b := newFakeDB()
	if err := Store(a, res, m); err != nil {
		t.Fatal(err)
	}
	if err := Store(b, res, m); err != nil {
		t.Fatal(err)
	}
	for _, name := range TableNames {
		if fmt.Sprint(a.tables[name]) != fmt.Sprint(b.tables[name]) {
			t.Errorf("%s rows differ between runs", name)
		}
	}
}

func TestStoreFailurePropagation(t *testing.T) {
	res, m := mapped(t)
	for _, failOn := range []string{
		"create:meta_elements",
		"insert:meta_elements",
		"insert:meta_mapping",
		"insert:meta_order",
		"insert:meta_distilled",
	} {
		db := newFakeDB()
		db.failOn = failOn
		if err := Store(db, res, m); err == nil {
			t.Errorf("failure %q not propagated", failOn)
		}
	}
}

func TestStoreFoldedRelationshipMapsToChildTable(t *testing.T) {
	res, err := core.Map(dtd.MustParse(paper.Example1DTD))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ermap.Build(res.Model, ermap.Options{Strategy: ermap.StrategyFoldFK})
	if err != nil {
		t.Fatal(err)
	}
	db := newFakeDB()
	if err := Store(db, res, m); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range db.tables["meta_mapping"] {
		if row[0] == "relationship" && row[1] == "Nname" {
			found = true
			if row[2] != "e_name" {
				t.Errorf("folded Nname maps to %v, want e_name", row[2])
			}
		}
	}
	if !found {
		t.Error("Nname mapping row missing")
	}
}
