// Package meta materializes the paper's §5 metadata — the DTD
// information a relational schema cannot express — as ordinary
// relational tables in the engine, exactly as the paper prescribes
// ("metadata can be collected at the time of DTD to relational mapping
// and stored as relational tables"). The tables drive data loading,
// document reconstruction and query translation.
package meta

import (
	"fmt"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/ermap"
	"xmlrdb/internal/rel"
)

// TableNames lists the metadata tables, in creation order.
var TableNames = []string{
	"meta_elements", "meta_mapping", "meta_order",
	"meta_occurrence", "meta_distilled", "meta_existence",
}

// Tables returns the metadata table definitions.
func Tables() []*rel.Table {
	return []*rel.Table{
		{
			Name:    "meta_elements",
			Comment: "original element declarations (content-model text preserves full schema ordering)",
			Columns: []rel.Column{
				{Name: "name", Type: rel.TypeText, NotNull: true},
				{Name: "kind", Type: rel.TypeText, NotNull: true},
				{Name: "model_text", Type: rel.TypeText},
			},
			PrimaryKey: []string{"name"},
		},
		{
			Name:    "meta_mapping",
			Comment: "model object to table mapping",
			Columns: []rel.Column{
				{Name: "kind", Type: rel.TypeText, NotNull: true},
				{Name: "name", Type: rel.TypeText, NotNull: true},
				{Name: "table_name", Type: rel.TypeText, NotNull: true},
			},
		},
		{
			Name:    "meta_order",
			Comment: "schema ordering of content items within each parent",
			Columns: []rel.Column{
				{Name: "parent", Type: rel.TypeText, NotNull: true},
				{Name: "pos", Type: rel.TypeInt, NotNull: true},
				{Name: "item", Type: rel.TypeText, NotNull: true},
				{Name: "kind", Type: rel.TypeText, NotNull: true},
			},
		},
		{
			Name:    "meta_occurrence",
			Comment: "occurrence indicators dropped from the relational schema",
			Columns: []rel.Column{
				{Name: "parent", Type: rel.TypeText, NotNull: true},
				{Name: "item", Type: rel.TypeText, NotNull: true},
				{Name: "occ", Type: rel.TypeText, NotNull: true},
			},
		},
		{
			Name:    "meta_distilled",
			Comment: "step-2 attribute distillings (subelement folded into parent attribute)",
			Columns: []rel.Column{
				{Name: "parent", Type: rel.TypeText, NotNull: true},
				{Name: "attr", Type: rel.TypeText, NotNull: true},
				{Name: "pos", Type: rel.TypeInt, NotNull: true},
				{Name: "required", Type: rel.TypeBool, NotNull: true},
			},
		},
		{
			Name:    "meta_existence",
			Comment: "existence-only (EMPTY) element types",
			Columns: []rel.Column{
				{Name: "element", Type: rel.TypeText, NotNull: true},
			},
			PrimaryKey: []string{"element"},
		},
	}
}

// Inserter abstracts the engine's insert surface, so this package does
// not depend on the engine directly.
type Inserter interface {
	// Insert appends one row (in column order) to the named table.
	Insert(table string, row []any) (int, error)
	// CreateTable registers a table definition.
	CreateTable(def *rel.Table) error
}

// Store creates the metadata tables and fills them from a mapping result.
func Store(db Inserter, res *core.Result, m *ermap.Mapping) error {
	for _, def := range Tables() {
		if err := db.CreateTable(def); err != nil {
			return fmt.Errorf("meta: %w", err)
		}
	}
	md := res.Metadata
	logical := res.Original
	for _, name := range logical.ElementOrder {
		decl := logical.Elements[name]
		if _, err := db.Insert("meta_elements", []any{
			name, decl.Content.Kind.String(), md.ModelText[name],
		}); err != nil {
			return fmt.Errorf("meta: %w", err)
		}
	}
	for _, e := range m.Model.Entities {
		em := m.Entities[e.Name]
		if _, err := db.Insert("meta_mapping", []any{"entity", em.Entity.Name, em.Table}); err != nil {
			return fmt.Errorf("meta: %w", err)
		}
	}
	for _, r := range m.Model.Relationships {
		rm := m.Rels[r.Name]
		tableName := rm.Table
		if rm.Folded {
			tableName = m.EntityTable(rm.Rel.Arcs[0].Target)
		}
		if _, err := db.Insert("meta_mapping", []any{"relationship", rm.Rel.Name, tableName}); err != nil {
			return fmt.Errorf("meta: %w", err)
		}
	}
	for _, e := range md.SchemaOrder {
		if _, err := db.Insert("meta_order", []any{e.Parent, e.Pos, e.Item, e.Kind.String()}); err != nil {
			return fmt.Errorf("meta: %w", err)
		}
	}
	for _, e := range md.Occurrence {
		if _, err := db.Insert("meta_occurrence", []any{e.Parent, e.Item, e.Occ.String()}); err != nil {
			return fmt.Errorf("meta: %w", err)
		}
	}
	for _, e := range md.Distilled {
		if _, err := db.Insert("meta_distilled", []any{e.Parent, e.Attr, e.Pos, e.Default == dtd.DefRequired}); err != nil {
			return fmt.Errorf("meta: %w", err)
		}
	}
	for _, el := range md.Existence {
		if _, err := db.Insert("meta_existence", []any{el}); err != nil {
			return fmt.Errorf("meta: %w", err)
		}
	}
	return nil
}
