package wgen

import (
	"math/rand"
	"strings"
	"testing"

	"xmlrdb/internal/core"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/paper"
	"xmlrdb/internal/pathquery"
	"xmlrdb/internal/validate"
	"xmlrdb/internal/xmltree"
)

func TestGenerateDTDDeterministic(t *testing.T) {
	cfg := DTDConfig{Elements: 30, Seed: 42, AttrsPerElement: 2, IDProb: 0.2, IDREFProb: 0.2,
		OptionalProb: 0.2, RepeatProb: 0.2}
	a := GenerateDTD(cfg).String()
	b := GenerateDTD(cfg).String()
	if a != b {
		t.Error("same seed should give the same DTD")
	}
	c := GenerateDTD(DTDConfig{Elements: 30, Seed: 43}).String()
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestGeneratedDTDParsesAndMaps(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		d := GenerateDTD(DTDConfig{
			Elements: 25, Seed: seed, AttrsPerElement: 2,
			IDProb: 0.3, IDREFProb: 0.3, OptionalProb: 0.3, RepeatProb: 0.3,
		})
		// Round-trips through text.
		if _, err := dtd.Parse(d.String()); err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, d.String())
		}
		// Maps through the paper's algorithm.
		if _, err := core.Map(d); err != nil {
			t.Fatalf("seed %d: map: %v", seed, err)
		}
		// Content models are deterministic (validator finds no schema
		// violations beyond attribute quirks).
		v := validate.New(d)
		for _, viol := range v.SchemaViolations() {
			if strings.Contains(viol.Msg, "nondeterministic") {
				t.Fatalf("seed %d: %s", seed, viol)
			}
		}
	}
}

func TestGeneratedDocsAreValid(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := GenerateDTD(DTDConfig{
			Elements: 20, Seed: seed, AttrsPerElement: 1,
			IDProb: 0.3, IDREFProb: 0.3, OptionalProb: 0.3, RepeatProb: 0.3,
		})
		v := validate.New(d)
		docs, err := Corpus(d, 10, seed, DocConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, doc := range docs {
			var viols []string
			for _, viol := range v.Validate(doc) {
				// Generated mixed leaves have no declared names; schema
				// violations about the DTD itself are filtered by using
				// only document-level messages.
				if viol.Path == "<dtd>" {
					continue
				}
				viols = append(viols, viol.String())
			}
			if len(viols) > 0 {
				t.Fatalf("seed %d doc %d invalid:\n%s\n%s",
					seed, i, strings.Join(viols, "\n"), doc.Root.XMLIndent("  "))
			}
		}
	}
}

func TestGeneratedDocsForPaperDTD(t *testing.T) {
	d := dtd.MustParse(paper.Example1DTD)
	v := validate.New(d)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		doc, err := GenerateDoc(d, "article", rng, DocConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if viols := v.Validate(doc); len(viols) > 0 {
			t.Fatalf("doc %d: %v\n%s", i, viols, doc.Root.XMLIndent("  "))
		}
	}
	// Recursive root also terminates.
	for i := 0; i < 20; i++ {
		if _, err := GenerateDoc(d, "editor", rng, DocConfig{}); err != nil {
			t.Fatalf("editor doc %d: %v", i, err)
		}
	}
}

func TestDocSerializationParses(t *testing.T) {
	d := GenerateDTD(DTDConfig{Elements: 15, Seed: 3, AttrsPerElement: 2})
	docs, err := Corpus(d, 5, 3, DocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		out := doc.Render(xmltree.WriteOptions{})
		if _, err := xmltree.Parse(out); err != nil {
			t.Fatalf("reparse: %v\n%s", err, out)
		}
	}
}

func TestGenerateQueries(t *testing.T) {
	d := dtd.MustParse(paper.Example1DTD)
	qs := GenerateQueries(d, 20, 1, QueryConfig{Depth: 3, PredProb: 0.5})
	if len(qs) != 20 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if _, err := pathquery.Parse(q); err != nil {
			t.Errorf("generated query %q does not parse: %v", q, err)
		}
	}
	again := GenerateQueries(d, 20, 1, QueryConfig{Depth: 3, PredProb: 0.5})
	if strings.Join(qs, ";") != strings.Join(again, ";") {
		t.Error("query generation not deterministic")
	}
}

func TestCorpusSizeAndIDs(t *testing.T) {
	d := GenerateDTD(DTDConfig{Elements: 12, Seed: 9, IDProb: 1})
	docs, err := Corpus(d, 7, 9, DocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 7 {
		t.Fatalf("docs = %d", len(docs))
	}
	// All IDs within a document are unique.
	for _, doc := range docs {
		seen := map[string]bool{}
		doc.Root.Descendants(func(n *xmltree.Node) bool {
			if v, ok := n.Attr("id"); ok {
				if seen[v] {
					t.Fatalf("duplicate id %q", v)
				}
				seen[v] = true
			}
			return true
		})
	}
}
