// Package wgen generates synthetic workloads for the experiment
// harness: parameterized random DTDs (layered, deterministic content
// models by construction), random documents conforming to a DTD (via
// derivable content-model walks), and path-query workloads. All
// generators are seeded and deterministic, standing in for the
// proprietary business corpora the paper's authors had at GTE (see
// DESIGN.md, substitutions).
package wgen

import (
	"fmt"
	"math/rand"
	"strings"

	"xmlrdb/internal/cmodel"
	"xmlrdb/internal/dtd"
	"xmlrdb/internal/xmltree"
)

// DTDConfig parameterizes synthetic DTD generation.
type DTDConfig struct {
	// Elements is the number of element types (>= 2).
	Elements int
	// Levels is the number of nesting layers (acyclic: each element
	// references only deeper layers). Default 4.
	Levels int
	// MaxChildren caps content-model width. Default 4.
	MaxChildren int
	// ChoiceProb is the probability an embedded group is generated
	// (as a choice) inside a content model. Default 0.3.
	ChoiceProb float64
	// PCDataRatio is the fraction of leaf elements that are (#PCDATA)
	// (the rest are EMPTY). Default 0.7.
	PCDataRatio float64
	// AttrsPerElement caps the random CDATA attributes per element.
	AttrsPerElement int
	// IDProb is the probability an element declares an ID attribute.
	IDProb float64
	// IDREFProb is the probability an element declares an IDREF attribute
	// (only meaningful when IDProb > 0).
	IDREFProb float64
	// OptionalProb and RepeatProb set occurrence indicators on children.
	OptionalProb, RepeatProb float64
	// Seed drives the generator.
	Seed int64
}

func (c DTDConfig) withDefaults() DTDConfig {
	if c.Elements < 2 {
		c.Elements = 2
	}
	if c.Levels <= 0 {
		c.Levels = 4
	}
	if c.MaxChildren <= 0 {
		c.MaxChildren = 4
	}
	if c.ChoiceProb == 0 {
		c.ChoiceProb = 0.3
	}
	if c.PCDataRatio == 0 {
		c.PCDataRatio = 0.7
	}
	return c
}

// GenerateDTD produces a synthetic DTD. The result is acyclic and its
// content models are deterministic by construction (children within one
// model are distinct).
func GenerateDTD(cfg DTDConfig) *dtd.DTD {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := dtd.New()
	d.Name = "synthetic"

	// Assign elements to levels: level 0 is the root layer.
	levelOf := make([]int, cfg.Elements)
	names := make([]string, cfg.Elements)
	byLevel := make([][]int, cfg.Levels)
	for i := 0; i < cfg.Elements; i++ {
		names[i] = fmt.Sprintf("el%d", i)
		lvl := 0
		if i > 0 {
			lvl = 1 + rng.Intn(cfg.Levels-1)
			if cfg.Levels == 1 {
				lvl = 0
			}
		}
		levelOf[i] = lvl
		byLevel[lvl] = append(byLevel[lvl], i)
	}

	occ := func() dtd.Occurrence {
		r := rng.Float64()
		switch {
		case r < cfg.RepeatProb/2:
			return dtd.OccZeroPlus
		case r < cfg.RepeatProb:
			return dtd.OccOnePlus
		case r < cfg.RepeatProb+cfg.OptionalProb:
			return dtd.OccOptional
		default:
			return dtd.OccOnce
		}
	}

	// deeper returns candidate children strictly below the level.
	deeper := func(lvl int) []int {
		var out []int
		for l := lvl + 1; l < cfg.Levels; l++ {
			out = append(out, byLevel[l]...)
		}
		return out
	}

	for i := 0; i < cfg.Elements; i++ {
		name := names[i]
		cands := deeper(levelOf[i])
		if len(cands) == 0 {
			// Leaf layer.
			if rng.Float64() < cfg.PCDataRatio {
				mustAdd(d, &dtd.ElementDecl{Name: name, Content: dtd.ContentModel{Kind: dtd.ContentMixed}})
			} else {
				mustAdd(d, &dtd.ElementDecl{Name: name, Content: dtd.ContentModel{Kind: dtd.ContentEmpty}})
			}
		} else {
			k := 1 + rng.Intn(cfg.MaxChildren)
			if k > len(cands) {
				k = len(cands)
			}
			perm := rng.Perm(len(cands))[:k]
			root := &dtd.Particle{Kind: dtd.PKSequence, Occ: dtd.OccOnce}
			groupBudget := 0
			if rng.Float64() < cfg.ChoiceProb && k >= 2 {
				groupBudget = 1
			}
			for j, pi := range perm {
				child := names[cands[pi]]
				if groupBudget > 0 && j+2 <= len(perm) && j == 0 && k >= 2 {
					// Emit a choice group of the first two children.
					g := &dtd.Particle{Kind: dtd.PKChoice, Occ: occ()}
					g.Children = append(g.Children,
						&dtd.Particle{Kind: dtd.PKName, Name: child, Occ: occ()},
						&dtd.Particle{Kind: dtd.PKName, Name: names[cands[perm[1]]], Occ: occ()})
					root.Children = append(root.Children, g)
					groupBudget--
					continue
				}
				if groupBudget == 0 && j == 1 && len(root.Children) == 1 && root.Children[0].Kind == dtd.PKChoice {
					continue // second child already consumed by the group
				}
				root.Children = append(root.Children, &dtd.Particle{Kind: dtd.PKName, Name: child, Occ: occ()})
			}
			mustAdd(d, &dtd.ElementDecl{Name: name, Content: dtd.ContentModel{Kind: dtd.ContentChildren, Particle: root}})
		}
		// Attributes.
		var atts []dtd.AttDef
		if cfg.AttrsPerElement > 0 {
			for a := 0; a < rng.Intn(cfg.AttrsPerElement+1); a++ {
				def := dtd.AttDef{Name: fmt.Sprintf("at%d", a), Type: dtd.AttCDATA, Default: dtd.DefImplied}
				if rng.Float64() < 0.3 {
					def.Default = dtd.DefRequired
				}
				atts = append(atts, def)
			}
		}
		if rng.Float64() < cfg.IDProb {
			atts = append(atts, dtd.AttDef{Name: "id", Type: dtd.AttID, Default: dtd.DefRequired})
		} else if rng.Float64() < cfg.IDREFProb {
			atts = append(atts, dtd.AttDef{Name: "ref", Type: dtd.AttIDREF, Default: dtd.DefImplied})
		}
		if len(atts) > 0 {
			d.AddAttDefs(name, atts)
		}
	}
	return d
}

func mustAdd(d *dtd.DTD, decl *dtd.ElementDecl) {
	if err := d.AddElement(decl); err != nil {
		panic(err) // generated names are unique by construction
	}
}

// DocConfig parameterizes document generation.
type DocConfig struct {
	// MaxRepeat caps "*"/"+" repetitions. Default 3.
	MaxRepeat int
	// OptionalProb is the chance optional content is generated. Default 0.5.
	OptionalProb float64
	// MaxDepth hard-bounds recursion for recursive DTDs. Default 12.
	MaxDepth int
	// TextWords sets the words per text leaf. Default 3.
	TextWords int
}

func (c DocConfig) withDefaults() DocConfig {
	if c.MaxRepeat <= 0 {
		c.MaxRepeat = 3
	}
	if c.OptionalProb == 0 {
		c.OptionalProb = 0.5
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.TextWords <= 0 {
		c.TextWords = 3
	}
	return c
}

var words = []string{
	"xml", "data", "relational", "schema", "order", "commerce", "model",
	"system", "query", "index", "tuple", "join", "entity", "document",
}

// GenerateDoc produces a random document conforming to the DTD with the
// given root element. IDREF attributes are wired to randomly chosen IDs
// issued in the same document (or omitted when no ID exists yet and the
// attribute is optional).
func GenerateDoc(d *dtd.DTD, root string, rng *rand.Rand, cfg DocConfig) (*xmltree.Document, error) {
	cfg = cfg.withDefaults()
	g := &docGen{d: d, rng: rng, cfg: cfg}
	rootEl, err := g.element(root, 0)
	if err != nil {
		return nil, err
	}
	g.wireRefs(rootEl)
	return &xmltree.Document{Root: rootEl, Children: []*xmltree.Node{rootEl}, Version: "1.0"}, nil
}

type docGen struct {
	d      *dtd.DTD
	rng    *rand.Rand
	cfg    DocConfig
	nextID int
	ids    []string
	refs   []*xmltree.Node // elements with a pending IDREF attribute
}

func (g *docGen) element(name string, depth int) (*xmltree.Node, error) {
	if depth > g.cfg.MaxDepth {
		return nil, fmt.Errorf("wgen: recursion exceeds depth %d at %q", g.cfg.MaxDepth, name)
	}
	decl := g.d.Element(name)
	if decl == nil {
		return nil, fmt.Errorf("wgen: element %q not declared", name)
	}
	el := xmltree.NewElement(name)
	// Attributes.
	for _, att := range g.d.Atts(name) {
		switch att.Type {
		case dtd.AttID:
			id := fmt.Sprintf("id%d", g.nextID)
			g.nextID++
			g.ids = append(g.ids, id)
			el.SetAttr(att.Name, id)
		case dtd.AttIDREF, dtd.AttIDREFS:
			if att.Default == dtd.DefRequired || g.rng.Float64() < 0.5 {
				el.SetAttr(att.Name, "@pending@")
				g.refs = append(g.refs, el)
			}
		default:
			if att.Default == dtd.DefRequired || g.rng.Float64() < 0.5 {
				el.SetAttr(att.Name, g.text(2))
			}
		}
	}
	// Content.
	switch decl.Content.Kind {
	case dtd.ContentEmpty:
		// nothing
	case dtd.ContentAny:
		el.AppendText(g.text(g.cfg.TextWords))
	case dtd.ContentMixed:
		el.AppendText(g.text(g.cfg.TextWords))
		for _, n := range decl.Content.MixedNames {
			if g.rng.Float64() < g.optProb(depth) {
				child, err := g.element(n, depth+1)
				if err != nil {
					return nil, err
				}
				el.AppendChild(child)
				el.AppendText(g.text(1))
			}
		}
	case dtd.ContentChildren:
		opts := cmodel.GenOptions{MaxRepeat: g.cfg.MaxRepeat, OptionalProb: g.optProb(depth)}
		seq := cmodel.Generate(decl.Content.Particle, g.rng, opts)
		for _, childName := range seq {
			child, err := g.element(childName, depth+1)
			if err != nil {
				return nil, err
			}
			el.AppendChild(child)
		}
	}
	return el, nil
}

// optProb decays with depth so recursive DTDs terminate.
func (g *docGen) optProb(depth int) float64 {
	p := g.cfg.OptionalProb
	for d := 0; d < depth; d++ {
		p *= 0.6
	}
	if p < 0.01 {
		p = 0.01
	}
	return p
}

func (g *docGen) text(n int) string {
	out := make([]string, n)
	for i := range out {
		out[i] = words[g.rng.Intn(len(words))]
	}
	return strings.Join(out, " ")
}

// wireRefs replaces pending IDREF markers with real IDs (or drops the
// attribute when the document has none).
func (g *docGen) wireRefs(root *xmltree.Node) {
	for _, el := range g.refs {
		for i := range el.Attrs {
			if el.Attrs[i].Value != "@pending@" {
				continue
			}
			if len(g.ids) == 0 {
				el.Attrs = append(el.Attrs[:i], el.Attrs[i+1:]...)
				break
			}
			el.Attrs[i].Value = g.ids[g.rng.Intn(len(g.ids))]
		}
	}
}

// Corpus generates n documents for the DTD's first root candidate.
func Corpus(d *dtd.DTD, n int, seed int64, cfg DocConfig) ([]*xmltree.Document, error) {
	roots := d.Roots()
	if len(roots) == 0 {
		roots = d.ElementOrder
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("wgen: DTD has no elements")
	}
	rng := rand.New(rand.NewSource(seed))
	docs := make([]*xmltree.Document, 0, n)
	for i := 0; i < n; i++ {
		doc, err := GenerateDoc(d, roots[0], rng, cfg)
		if err != nil {
			return nil, err
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

// QueryConfig parameterizes path-query generation.
type QueryConfig struct {
	// Depth is the number of location steps.
	Depth int
	// PredProb is the chance the final step gets an attribute predicate.
	PredProb float64
}

// GenerateQueries derives path queries of the requested depth by walking
// the DTD's child graph from a root. Only element names are used, so the
// queries are valid for every mapping.
func GenerateQueries(d *dtd.DTD, n int, seed int64, cfg QueryConfig) []string {
	if cfg.Depth <= 0 {
		cfg.Depth = 2
	}
	rng := rand.New(rand.NewSource(seed))
	children := childGraph(d)
	roots := d.Roots()
	if len(roots) == 0 {
		roots = d.ElementOrder
	}
	var out []string
	for len(out) < n {
		root := roots[rng.Intn(len(roots))]
		path := []string{root}
		cur := root
		ok := true
		for len(path) < cfg.Depth {
			cands := children[cur]
			if len(cands) == 0 {
				ok = false
				break
			}
			next := cands[rng.Intn(len(cands))]
			path = append(path, next)
			cur = next
		}
		if !ok {
			// Shorter paths are acceptable when the schema is shallow.
			if len(path) == 0 {
				continue
			}
		}
		q := "/" + strings.Join(path, "/")
		if cfg.PredProb > 0 && rng.Float64() < cfg.PredProb {
			if atts := d.Atts(cur); len(atts) > 0 {
				q += "[@" + atts[rng.Intn(len(atts))].Name + "]"
			}
		}
		out = append(out, q)
	}
	return out
}

// childGraph returns element -> distinct child names.
func childGraph(d *dtd.DTD) map[string][]string {
	out := make(map[string][]string)
	for _, name := range d.ElementOrder {
		decl := d.Elements[name]
		seen := make(map[string]bool)
		add := func(n string) {
			if !seen[n] && d.Element(n) != nil {
				seen[n] = true
				out[name] = append(out[name], n)
			}
		}
		switch decl.Content.Kind {
		case dtd.ContentMixed:
			for _, n := range decl.Content.MixedNames {
				add(n)
			}
		case dtd.ContentChildren:
			decl.Content.Particle.Walk(func(p *dtd.Particle) bool {
				if p.Kind == dtd.PKName {
					add(p.Name)
				}
				return true
			})
		}
	}
	return out
}
